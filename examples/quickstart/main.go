// Quickstart: build a tiny subjective database over a handful of
// hand-written hotel reviews and ask one mixed objective/subjective query.
// This demonstrates the minimal public API surface: core.Build with a
// designer schema, then DB.Query with subjective SQL.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	// 1. Raw data: entities with objective attributes + their reviews.
	entities := []core.EntityData{
		{ID: "ritz", Objective: map[string]interface{}{"price_pn": 450.0, "city": "london"}},
		{ID: "budget-inn", Objective: map[string]interface{}{"price_pn": 80.0, "city": "london"}},
		{ID: "mid-hotel", Objective: map[string]interface{}{"price_pn": 140.0, "city": "london"}},
	}
	reviews := []core.ReviewData{
		// The Ritz: spotless but pricey.
		{ID: "r1", EntityID: "ritz", Reviewer: "alice", Day: 100, Text: "The room was spotless. The staff was exceptional. The bathroom was luxurious."},
		{ID: "r2", EntityID: "ritz", Reviewer: "bob", Day: 200, Text: "Immaculate room and very kind staff. The bed was very comfortable."},
		{ID: "r3", EntityID: "ritz", Reviewer: "carol", Day: 220, Text: "The carpet was very clean. The service was outstanding."},
		// Budget Inn: cheap and dirty — note the negated positives that
		// defeat keyword search ("not clean at all").
		{ID: "r4", EntityID: "budget-inn", Reviewer: "dave", Day: 150, Text: "The room was not clean at all. The carpet was stained. The staff was rude."},
		{ID: "r5", EntityID: "budget-inn", Reviewer: "erin", Day: 210, Text: "The room was filthy. The bed was worn out."},
		{ID: "r6", EntityID: "budget-inn", Reviewer: "alice", Day: 300, Text: "The bathroom was dirty and the room was far from clean."},
		// Mid Hotel: clean enough, fair price.
		{ID: "r7", EntityID: "mid-hotel", Reviewer: "bob", Day: 130, Text: "The room was very clean. The staff was friendly."},
		{ID: "r8", EntityID: "mid-hotel", Reviewer: "carol", Day: 250, Text: "The room was clean and tidy. The bed was comfortable."},
		{ID: "r9", EntityID: "mid-hotel", Reviewer: "frank", Day: 310, Text: "Spotlessly clean room and a helpful receptionist."},
	}

	// 2. The designer's subjective schema: attributes with seed terms
	//    (§4.2 — a few seeds per attribute are enough).
	attrs := []core.AttrSpec{
		{Name: "room_cleanliness", Seeds: classify.SeedSet{
			Attribute: "room_cleanliness",
			Aspects:   []string{"room", "carpet", "bathroom"},
			Opinions:  []string{"clean", "spotless", "dirty", "filthy", "stained", "immaculate", "tidy"},
		}},
		{Name: "staff", Seeds: classify.SeedSet{
			Attribute: "staff",
			Aspects:   []string{"staff", "receptionist", "service"},
			Opinions:  []string{"friendly", "kind", "rude", "exceptional", "helpful", "outstanding"},
		}},
		{Name: "comfort", Seeds: classify.SeedSet{
			Attribute: "comfort",
			Aspects:   []string{"bed", "mattress"},
			Opinions:  []string{"comfortable", "worn out", "luxurious"},
		}},
	}

	// 3. A small labeled tagging set for the extractor. Real deployments
	//    label ~900 sentences (§4.1); generated ones work for the demo.
	rng := rand.New(rand.NewSource(1))
	tagged := corpus.TaggedFromAspects(corpus.HotelAspects(), corpus.HotelFillers(), 400, rng)

	cfg := core.DefaultConfig()
	cfg.MarkersPerAttr = 3 // tiny linguistic domains here
	// θ1 calibration scales with corpus size: nine reviews train word
	// vectors too coarse for the production threshold (0.75), so the
	// demo accepts looser matches — sentiment-consistent matching still
	// keeps "really clean" away from "not clean at all".
	cfg.W2VThreshold = 0.45
	db, err := core.Build(core.BuildInput{
		Name:           "quickstart",
		Entities:       entities,
		Reviews:        reviews,
		Attributes:     attrs,
		TaggedTraining: tagged,
	}, cfg)
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	// 4. Ask the paper's style of query: an objective price filter plus a
	//    natural-language subjective predicate.
	res, err := db.Query(`select * from Hotels where price_pn < 200 and "has really clean rooms" limit 3`)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Println("query: hotels under 200/night with really clean rooms")
	fmt.Println("rewritten:", res.Rewritten)
	for _, row := range res.Rows {
		fmt.Printf("  %-11s score %.3f\n", row.EntityID, row.Score)
	}
	fmt.Println()
	fmt.Println("Expected: mid-hotel ranks first (clean AND under 200);")
	fmt.Println("budget-inn is cheap but dirty; the ritz is spotless but filtered by price.")

	// 5. Every answer is explainable: provenance back to review phrases.
	attr := db.Attr("room_cleanliness")
	if len(res.Rows) > 0 && attr != nil {
		top := res.Rows[0].EntityID
		fmt.Printf("\nevidence for %s.room_cleanliness:\n", top)
		for mi := range attr.Markers {
			for _, ext := range db.ProvenanceOf("room_cleanliness", top, mi) {
				fmt.Printf("  review %s: %q\n", ext.ReviewID, ext.Phrase)
			}
		}
	}
}
