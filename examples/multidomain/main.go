// Multidomain: the Table 1 / Figure 3 scenario — queries spanning two
// subjective databases. OpineDB leaves join semantics to future work
// (§2), so this example composes the two domains the way an application
// would: evaluate a subjective query in each database and combine the
// degrees of truth with the same product t-norm used inside each engine.
//
//	"a hotel with a lively bar scene AND, in the same city, a
//	 restaurant with a relaxing atmosphere"
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fuzzy"
	"repro/internal/harness"
)

func main() {
	genCfg := corpus.SmallConfig()
	genCfg.HotelsLondon, genCfg.HotelsAmsterdam = 60, 25
	genCfg.ReviewsPerHotel = 20
	genCfg.Restaurants = 90
	genCfg.ReviewsPerRestaurant = 12

	fmt.Println("building hotel and restaurant subjective databases...")
	start := time.Now()
	hotels := corpus.GenerateHotels(genCfg)
	restaurants := corpus.GenerateRestaurants(genCfg)
	hotelDB, err := harness.BuildDB(hotels, core.DefaultConfig(), 700, 700)
	if err != nil {
		log.Fatalf("hotel build: %v", err)
	}
	restDB, err := harness.BuildDB(restaurants, core.DefaultConfig(), 700, 700)
	if err != nil {
		log.Fatalf("restaurant build: %v", err)
	}
	fmt.Printf("built both in %.1fs\n\n", time.Since(start).Seconds())

	opts := core.DefaultQueryOptions()
	opts.TopK = 0 // need full rankings to join

	hotelQ, err := hotelDB.RankPredicates([]string{"has a lively bar scene"}, nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	restQ, err := restDB.RankPredicates([]string{"a relaxing atmosphere"}, nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hotel predicate interpreted as:      %s\n",
		hotelQ.Interpretations["has a lively bar scene"].String())
	fmt.Printf("restaurant predicate interpreted as: %s\n\n",
		restQ.Interpretations["a relaxing atmosphere"].String())

	// Combine: for every (hotel, restaurant) pair in the same budget tier
	// — the trip planner's join key, since the hotel corpus covers London
	// and Amsterdam while the restaurant corpus covers Toronto — the
	// pair's degree of truth is hotelScore ⊗ restaurantScore.
	type pair struct {
		hotel, rest string
		score       float64
	}
	hotelTier := func(e *corpus.Entity) int { // quartiles of price/night
		switch {
		case e.PricePerNight < 120:
			return 1
		case e.PricePerNight < 220:
			return 2
		case e.PricePerNight < 350:
			return 3
		default:
			return 4
		}
	}
	restByTier := map[int][]core.ResultRow{}
	for _, r := range restQ.Rows {
		tier := restaurants.EntityByID(r.EntityID).PriceRange
		restByTier[tier] = append(restByTier[tier], r)
	}
	v := fuzzy.Product
	var pairs []pair
	for _, h := range hotelQ.Rows {
		tier := hotelTier(hotels.EntityByID(h.EntityID))
		for _, r := range restByTier[tier] {
			pairs = append(pairs, pair{
				hotel: h.EntityID,
				rest:  r.EntityID,
				score: v.And(h.Score, r.Score),
			})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		if pairs[i].hotel != pairs[j].hotel {
			return pairs[i].hotel < pairs[j].hotel
		}
		return pairs[i].rest < pairs[j].rest
	})
	fmt.Println("top (hotel, restaurant) pairs in the same budget tier:")
	for i, p := range pairs {
		if i >= 5 {
			break
		}
		h := hotels.EntityByID(p.hotel)
		r := restaurants.EntityByID(p.rest)
		fmt.Printf("  %-22s ⨝ %-20s (tier %d) score %.3f (bar=%.2f vibe=%.2f)\n",
			h.Name, r.Name, r.PriceRange, p.score, h.Latent["bar"], r.Latent["vibe"])
	}

	// Cross-domain experiential queries from Table 1, one per domain.
	fmt.Println("\nother Table 1 experiential queries:")
	for _, q := range []struct {
		db   *core.DB
		text string
	}{
		{hotelDB, "has a stunning view"},
		{hotelDB, "good for business trips"},
		{restDB, "serves generous portions"},
		{restDB, "good for groups"},
	} {
		res, err := q.db.RankPredicates([]string{q.text}, nil, core.DefaultQueryOptions())
		if err != nil || len(res.Rows) == 0 {
			fmt.Printf("  %-28q → no results (%v)\n", q.text, err)
			continue
		}
		in := res.Interpretations[q.text]
		fmt.Printf("  %-28q → [%s] %-34s top=%s (%.3f)\n",
			q.text, in.Method, in.String(), res.Rows[0].EntityID, res.Rows[0].Score)
	}
}
