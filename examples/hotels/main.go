// Hotels: the paper's running example (§1.1, §2, §3) on a generated
// Booking.com-style corpus — a London hotel under £150/night with really
// clean rooms that works as a romantic getaway.
//
// The example walks the full Figure 4 flow and shows each Figure 5
// interpreter stage firing: word2vec for "has really clean rooms",
// co-occurrence for "is a romantic getaway" (no schema attribute is
// called romantic), and the text-retrieval fallback for "good for
// motorcyclists". It finishes with a review-qualified query (§1.1's
// "only consider opinions of people who reviewed at least 10 hotels").
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
)

func main() {
	genCfg := corpus.SmallConfig()
	genCfg.HotelsLondon, genCfg.HotelsAmsterdam = 80, 30
	genCfg.ReviewsPerHotel = 24
	fmt.Println("generating hotel corpus and building the subjective database...")
	start := time.Now()
	d := corpus.GenerateHotels(genCfg)
	db, err := harness.BuildDB(d, core.DefaultConfig(), 800, 800)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("built in %.1fs: %d hotels, %d reviews, %d extractions\n\n",
		time.Since(start).Seconds(), len(d.Entities), len(d.Reviews), len(db.Extractions))

	// The paper's schema (Figure 2): objective attributes plus subjective
	// attributes with markers.
	fmt.Println("— subjective schema (discovered markers, worst → best) —")
	for _, name := range []string{"room_cleanliness", "service", "style"} {
		attr := db.Attr(name)
		fmt.Printf("  * %s:", name)
		for _, m := range attr.Markers {
			fmt.Printf(" [%s]", m.Name)
		}
		fmt.Println()
	}
	fmt.Println()

	// The running example query.
	sql := `select * from Hotels
	        where price_pn < 150 and "has really clean rooms" and "is a romantic getaway"
	        limit 5`
	fmt.Println("— query:", sql)
	res, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewritten fuzzy SQL:", res.Rewritten)
	for text, in := range res.Interpretations {
		fmt.Printf("  %-28q interpreted by %-8s as %s\n", text, in.Method, in.String())
	}
	fmt.Println("top answers:")
	for _, row := range res.Rows {
		e := d.EntityByID(row.EntityID)
		fmt.Printf("  %-7s %-22s £%-5.0f score %.3f (latent: clean=%.2f service=%.2f style=%s)\n",
			row.EntityID, e.Name, e.PricePerNight, row.Score,
			e.Latent["room_cleanliness"], e.Latent["service"], e.LatentCat["style"])
	}
	fmt.Println()

	// Out-of-schema predicate → text-retrieval fallback.
	fmt.Println(`— query: hotels "good for motorcyclists" (no schema attribute exists)`)
	res2, err := db.Query(`select * from Hotels where "good for motorcyclists" limit 3`)
	if err != nil {
		log.Fatal(err)
	}
	for text, in := range res2.Interpretations {
		fmt.Printf("  %q handled by the %s stage\n", text, in.Method)
	}
	for _, row := range res2.Rows {
		e := d.EntityByID(row.EntityID)
		fmt.Printf("  %-7s score %.3f motorcycle-friendly=%v\n", row.EntityID, row.Score, e.Flags["motorcycle"])
	}
	fmt.Println()

	// Review qualification: recompute degrees over prolific reviewers only.
	fmt.Println("— same cleanliness query, counting only reviewers with >= 10 reviews —")
	opts := core.DefaultQueryOptions()
	opts.TopK = 5
	opts.ReviewFilter = func(reviewer string, day int) bool {
		return db.ReviewerReviewCount(reviewer) >= 10
	}
	res3, err := db.QueryWithOptions(`select * from Hotels where "has really clean rooms" limit 5`, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res3.Rows {
		fmt.Printf("  %-7s score %.3f\n", row.EntityID, row.Score)
	}

	// Evidence: provenance for the top romantic answer.
	if len(res.Rows) > 0 {
		top := res.Rows[0].EntityID
		fmt.Printf("\n— why %s? service evidence from its reviews —\n", top)
		attr := db.Attr("service")
		shown := 0
		for mi := len(attr.Markers) - 1; mi >= 0 && shown < 4; mi-- {
			for _, ext := range db.ProvenanceOf("service", top, mi) {
				fmt.Printf("  review %s: %q\n", ext.ReviewID, ext.Phrase)
				if shown++; shown >= 4 {
					break
				}
			}
		}
	}
}
