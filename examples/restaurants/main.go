// Restaurants: Yelp-style experiential search over a generated Toronto
// restaurant corpus, combining objective filters (cuisine, price range)
// with subjective predicates, including a composite concept resolved by
// co-occurrence and an out-of-schema amenity resolved by text retrieval.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
)

func main() {
	genCfg := corpus.SmallConfig()
	genCfg.Restaurants = 120
	genCfg.ReviewsPerRestaurant = 14
	fmt.Println("generating restaurant corpus and building the subjective database...")
	start := time.Now()
	d := corpus.GenerateRestaurants(genCfg)
	db, err := harness.BuildDB(d, core.DefaultConfig(), 800, 800)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("built in %.1fs: %d restaurants, %d reviews, %d extractions\n\n",
		time.Since(start).Seconds(), len(d.Entities), len(d.Reviews), len(db.Extractions))

	// Japanese restaurants with delicious food and a quiet room for
	// conversation — Table 1's "quiet Thai restaurant" pattern.
	sql := `select * from Restaurants
	        where cuisine = 'japanese' and "serves delicious food" and "a quiet place"
	        limit 5`
	fmt.Println("— query:", sql)
	res, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewritten:", res.Rewritten)
	for text, in := range res.Interpretations {
		fmt.Printf("  %-24q → [%s] %s\n", text, in.Method, in.String())
	}
	for _, row := range res.Rows {
		e := d.EntityByID(row.EntityID)
		fmt.Printf("  %-7s %-20s %s score %.3f (latent: food=%.2f vibe=%.2f)\n",
			row.EntityID, e.Name, dollars(e.PriceRange), row.Score,
			e.Latent["food"], e.Latent["vibe"])
	}
	fmt.Println()

	// A composite concept: "perfect for a romantic dinner" has no schema
	// attribute; the co-occurrence method finds its proxies (charming
	// ambience + quiet vibe) in the review corpus.
	fmt.Println(`— query: low-price spots "perfect for a romantic dinner"`)
	res2, err := db.Query(`select * from Restaurants
		where price_range <= 2 and "perfect for a romantic dinner" limit 5`)
	if err != nil {
		log.Fatal(err)
	}
	for text, in := range res2.Interpretations {
		fmt.Printf("  %-32q → [%s] %s\n", text, in.Method, in.String())
	}
	for _, row := range res2.Rows {
		e := d.EntityByID(row.EntityID)
		fmt.Printf("  %-7s score %.3f (ambience=%.2f vibe=%.2f)\n",
			row.EntityID, row.Score, e.Latent["ambience"], e.Latent["vibe"])
	}
	fmt.Println()

	// Out-of-schema amenity → fallback: "a sunset view from the terrace"
	// (the paper's "sunset view of Tokyo Tower" motif).
	fmt.Println(`— query: "a sunset view from the terrace" (raw-text fallback)`)
	res3, err := db.Query(`select * from Restaurants where "a sunset view from the terrace" limit 3`)
	if err != nil {
		log.Fatal(err)
	}
	for text, in := range res3.Interpretations {
		fmt.Printf("  %q handled by the %s stage\n", text, in.Method)
	}
	for _, row := range res3.Rows {
		e := d.EntityByID(row.EntityID)
		fmt.Printf("  %-7s score %.3f sunset-view=%v\n", row.EntityID, row.Score, e.Flags["sunset_view"])
	}
	fmt.Println()

	// Categorical markers: bathroom style's analogue here is the vibe
	// attribute; show a categorical attribute's discovered clusters.
	fmt.Println("— discovered markers (k-means medoids) for two attributes —")
	for _, name := range []string{"food", "vibe"} {
		attr := db.Attr(name)
		fmt.Printf("  * %s:", name)
		for _, m := range attr.Markers {
			fmt.Printf(" [%s %.2f]", m.Name, m.Sentiment)
		}
		fmt.Println()
	}
}

func dollars(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += "$"
	}
	return out
}
