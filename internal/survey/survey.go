// Package survey simulates the Mechanical Turk user study of §5.1
// (Table 3): workers are asked to list the criteria they value when
// choosing an entity in a domain, and each criterion is judged subjective
// or objective. The paper's finding — a clear majority of search criteria
// are subjective in every domain — emerges from the composition of the
// criteria banks, which encode what real users mention (wifi is objective,
// cleanliness subjective, etc.).
package survey

import (
	"math/rand"
	"sort"
)

// Criterion is one thing users say they value, with its subjectivity
// label (assigned conservatively, as §5.1 does: "wifi" counts as objective
// even though users may mean "fast and reliable wifi").
type Criterion struct {
	Name       string
	Subjective bool
	// Weight is the relative popularity of the criterion among workers.
	Weight float64
}

// Domain is one survey domain with its criteria bank.
type Domain struct {
	Name     string
	Criteria []Criterion
}

// Domains returns the seven survey domains of Table 3. The subjective
// share of each bank is calibrated to the user study's findings
// (Hotel 69%, Restaurant 64%, Vacation 83%, College 77%, Home 69%,
// Career 66%, Car 56%) by construction: the banks contain realistic
// criteria whose labels produce those proportions under weighted sampling.
func Domains() []Domain {
	return []Domain{
		{Name: "Hotel", Criteria: []Criterion{
			{"cleanliness", true, 3.0}, {"comfortable beds", true, 2.5},
			{"friendly staff", true, 2.2}, {"good food", true, 2.0},
			{"quiet rooms", true, 1.8}, {"nice view", true, 1.2},
			{"romantic atmosphere", true, 0.8}, {"spacious rooms", true, 1.5},
			{"good service", true, 2.3},
			{"wifi", false, 2.0}, {"parking", false, 1.5},
			{"pool", false, 1.2}, {"distance to center", false, 2.2},
			{"pet policy", false, 0.8}, {"free breakfast included", false, 1.6},
		}},
		{Name: "Restaurant", Criteria: []Criterion{
			{"delicious food", true, 3.0}, {"ambiance", true, 2.0},
			{"friendly service", true, 2.2}, {"variety of menu", true, 1.6},
			{"freshness", true, 1.8}, {"romantic setting", true, 0.9},
			{"generous portions", true, 1.4},
			{"cuisine type", false, 2.4}, {"hours", false, 1.2},
			{"parking", false, 1.0}, {"accepts reservations", false, 1.1},
			{"distance", false, 1.8}, {"outdoor seating", false, 0.9},
		}},
		{Name: "Vacation", Criteria: []Criterion{
			{"good weather", true, 2.8}, {"safety", true, 2.5},
			{"interesting culture", true, 2.2}, {"nightlife", true, 1.6},
			{"beautiful scenery", true, 2.4}, {"relaxing beaches", true, 2.0},
			{"friendly locals", true, 1.8}, {"good food scene", true, 2.0},
			{"visa requirements", false, 1.0}, {"flight time", false, 1.6},
			{"language spoken", false, 1.2},
		}},
		{Name: "College", Criteria: []Criterion{
			{"dorm quality", true, 2.2}, {"faculty quality", true, 2.6},
			{"campus diversity", true, 1.8}, {"social life", true, 2.0},
			{"safety of campus", true, 1.9}, {"teaching quality", true, 2.4},
			{"career support", true, 1.7},
			{"tuition", false, 2.4}, {"location", false, 1.8},
			{"majors offered", false, 2.0},
		}},
		{Name: "Home", Criteria: []Criterion{
			{"quiet neighborhood", true, 2.6}, {"good schools nearby", true, 2.4},
			{"feeling of space", true, 2.2}, {"safety", true, 2.6},
			{"natural light", true, 1.8}, {"charm", true, 1.2},
			{"friendly neighbors", true, 1.4},
			{"square footage", false, 2.2}, {"number of bedrooms", false, 2.4},
			{"year built", false, 1.0}, {"commute distance", false, 2.0},
		}},
		{Name: "Career", Criteria: []Criterion{
			{"work-life balance", true, 2.8}, {"great colleagues", true, 2.4},
			{"company culture", true, 2.6}, {"interesting work", true, 2.2},
			{"growth opportunities", true, 2.0}, {"supportive manager", true, 1.8},
			{"salary", false, 3.0}, {"benefits", false, 2.2},
			{"remote policy", false, 2.0}, {"job title", false, 1.0},
			{"office location", false, 1.8},
		}},
		{Name: "Car", Criteria: []Criterion{
			{"comfortable ride", true, 2.4}, {"perceived safety", true, 2.2},
			{"reliability", true, 2.6}, {"looks", true, 1.8},
			{"fun to drive", true, 1.6}, {"build quality", true, 1.6},
			{"smooth handling", true, 1.4}, {"quiet cabin", true, 1.3},
			{"fuel economy", false, 2.6}, {"price", false, 3.0},
			{"cargo space", false, 1.8}, {"warranty", false, 1.4},
			{"seating capacity", false, 2.0},
		}},
	}
}

// Result is the Table 3 row for one domain.
type Result struct {
	Domain        string
	SubjectivePct float64
	Examples      []string // most-cited subjective criteria
}

// Run simulates the study: workers per domain each list criteriaPerWorker
// distinct criteria drawn from the bank proportionally to popularity; the
// subjective percentage is computed over all listed criteria.
func Run(workers, criteriaPerWorker int, rng *rand.Rand) []Result {
	var out []Result
	for _, dom := range Domains() {
		subj, total := 0, 0
		cited := map[string]int{}
		for w := 0; w < workers; w++ {
			listed := sampleDistinct(dom.Criteria, criteriaPerWorker, rng)
			for _, c := range listed {
				total++
				cited[c.Name]++
				if c.Subjective {
					subj++
				}
			}
		}
		out = append(out, Result{
			Domain:        dom.Name,
			SubjectivePct: 100 * float64(subj) / float64(total),
			Examples:      topSubjective(dom.Criteria, cited, 4),
		})
	}
	return out
}

// sampleDistinct draws k distinct criteria, weighted by popularity.
func sampleDistinct(bank []Criterion, k int, rng *rand.Rand) []Criterion {
	if k >= len(bank) {
		k = len(bank)
	}
	remaining := append([]Criterion(nil), bank...)
	var out []Criterion
	for len(out) < k && len(remaining) > 0 {
		var total float64
		for _, c := range remaining {
			total += c.Weight
		}
		r := rng.Float64() * total
		var acc float64
		idx := len(remaining) - 1
		for i, c := range remaining {
			acc += c.Weight
			if acc >= r {
				idx = i
				break
			}
		}
		out = append(out, remaining[idx])
		remaining = append(remaining[:idx], remaining[idx+1:]...)
	}
	return out
}

// topSubjective returns the names of the most-cited subjective criteria.
func topSubjective(bank []Criterion, cited map[string]int, k int) []string {
	subjByName := map[string]bool{}
	for _, c := range bank {
		if c.Subjective {
			subjByName[c.Name] = true
		}
	}
	type nc struct {
		name string
		n    int
	}
	var items []nc
	for name, n := range cited {
		if subjByName[name] {
			items = append(items, nc{name, n})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].name < items[j].name
	})
	if len(items) > k {
		items = items[:k]
	}
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.name
	}
	return out
}
