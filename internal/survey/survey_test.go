package survey

import (
	"math/rand"
	"testing"
)

func TestDomainsCount(t *testing.T) {
	doms := Domains()
	if len(doms) != 7 {
		t.Fatalf("got %d domains, want 7 (Table 3)", len(doms))
	}
	names := map[string]bool{}
	for _, d := range doms {
		names[d.Name] = true
		if len(d.Criteria) < 8 {
			t.Errorf("domain %s has only %d criteria", d.Name, len(d.Criteria))
		}
		hasSubj, hasObj := false, false
		for _, c := range d.Criteria {
			if c.Subjective {
				hasSubj = true
			} else {
				hasObj = true
			}
			if c.Weight <= 0 {
				t.Errorf("%s criterion %q has non-positive weight", d.Name, c.Name)
			}
		}
		if !hasSubj || !hasObj {
			t.Errorf("domain %s bank is not mixed", d.Name)
		}
	}
	for _, want := range []string{"Hotel", "Restaurant", "Vacation", "College", "Home", "Career", "Car"} {
		if !names[want] {
			t.Errorf("missing domain %s", want)
		}
	}
}

func TestRunMajoritySubjective(t *testing.T) {
	// The Table 3 finding: a majority of criteria are subjective in every
	// domain, between roughly 55% and 85%.
	rng := rand.New(rand.NewSource(1))
	results := Run(30, 7, rng)
	if len(results) != 7 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.SubjectivePct < 50 || r.SubjectivePct > 90 {
			t.Errorf("%s: %.1f%% subjective, outside the Table 3 band", r.Domain, r.SubjectivePct)
		}
		if len(r.Examples) == 0 {
			t.Errorf("%s: no example criteria", r.Domain)
		}
	}
}

func TestRunVacationMostSubjective(t *testing.T) {
	// Table 3's extremes: Vacation (82.6%) highest, Car (56.0%) lowest.
	rng := rand.New(rand.NewSource(2))
	results := Run(50, 7, rng)
	pct := map[string]float64{}
	for _, r := range results {
		pct[r.Domain] = r.SubjectivePct
	}
	if pct["Vacation"] <= pct["Car"] {
		t.Errorf("Vacation (%.1f%%) should exceed Car (%.1f%%)", pct["Vacation"], pct["Car"])
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bank := []Criterion{
		{"a", true, 1}, {"b", false, 1}, {"c", true, 1},
	}
	got := sampleDistinct(bank, 2, rng)
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
	if got[0].Name == got[1].Name {
		t.Error("duplicate criteria sampled")
	}
	// k > bank size clamps.
	got = sampleDistinct(bank, 10, rng)
	if len(got) != 3 {
		t.Errorf("clamped sample = %d", len(got))
	}
}

func TestSampleWeighting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bank := []Criterion{
		{"popular", true, 10}, {"rare", false, 0.1},
	}
	first := 0
	for i := 0; i < 200; i++ {
		got := sampleDistinct(bank, 1, rng)
		if got[0].Name == "popular" {
			first++
		}
	}
	if first < 180 {
		t.Errorf("popular criterion sampled only %d/200 times", first)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(10, 5, rand.New(rand.NewSource(5)))
	b := Run(10, 5, rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i].SubjectivePct != b[i].SubjectivePct {
			t.Fatal("same seed must give same survey results")
		}
	}
}
