// Package obs is a dependency-free metrics registry for the opinedb
// serving stack: counters, gauges, and log-bucketed latency histograms
// with streaming p50/p95/p99 estimates, exposed in the Prometheus text
// exposition format on GET /metrics.
//
// Design constraints, in order:
//
//   - Zero dependencies. The repo is stdlib-only; this package must be
//     importable from the server hot path without pulling anything in.
//   - Lock-free on the hot path. Counter/Gauge/Histogram updates are
//     single atomic ops (plus one CAS loop for the histogram sum);
//     registry locks are taken only at series-creation and scrape time.
//   - Deterministic exposition. Families and series render in sorted
//     order so scrapes diff cleanly and tests can assert on output.
//
// Histograms use log-spaced (doubling) buckets from 1µs to ~9 minutes,
// which keeps relative quantile-estimation error bounded (< one octave)
// across the six decades a serving stack actually spans — a 60µs memo
// hit and a 30s repair pass land in meaningfully different buckets.
// Quantiles are estimated by linear interpolation inside the target
// bucket and exported as derived gauge families (`<name>_p50` etc.),
// since the Prometheus histogram type has no quantile series of its own.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates what a family holds; a name registered as one
// kind cannot be reused as another.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into log-spaced buckets and keeps an
// exact sum/count. All methods are safe for concurrent use and lock-free.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-added
	// ex is the last traced observation — the exemplar joining this
	// series to /debug/traces on a trace id. One atomic pointer swap per
	// traced observation; plain Observe never touches it.
	ex atomic.Pointer[exemplar]
}

// exemplar joins one observation to the request trace that produced it.
type exemplar struct {
	traceID string
	v       float64
}

// defaultBounds: 1µs doubling through ~9m (1e-6 * 2^29 ≈ 537s), 30
// buckets + the implicit +Inf. Covers everything from a cache hit to a
// full-journal repair pass.
func defaultBounds() []float64 {
	bounds := make([]float64, 30)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// Observe records one observation (in seconds for latency histograms,
// but the unit is the caller's).
func (h *Histogram) Observe(v float64) {
	// Find the first bucket whose upper bound admits v. Linear scan: 30
	// comparisons worst case, branch-predictable, no allocation — faster
	// in practice than sort.SearchFloat64s for this bucket count.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// ObserveWithExemplar records v and, when traceID is non-empty, stores
// (traceID, v) as the series' exemplar — rendered as an `# EXEMPLAR`
// comment in the exposition so an operator can jump from a latency
// series straight to the trace behind its most recent traced request.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID != "" {
		h.ex.Store(&exemplar{traceID: traceID, v: v})
	}
}

// ObserveSinceWithExemplar is ObserveWithExemplar over elapsed seconds.
func (h *Histogram) ObserveSinceWithExemplar(t0 time.Time, traceID string) {
	h.ObserveWithExemplar(time.Since(t0).Seconds(), traceID)
}

// Exemplar returns the last traced observation, if any.
func (h *Histogram) Exemplar() (traceID string, v float64, ok bool) {
	e := h.ex.Load()
	if e == nil {
		return "", 0, false
	}
	return e.traceID, e.v, true
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket containing the target rank. Returns 0 with no
// observations. Values in the +Inf bucket clamp to the largest finite
// bound — the estimate is a floor, not a fabrication.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= target {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (target - float64(cum)) / float64(n)
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// series is one labeled instance inside a family.
type series struct {
	labels  []Label
	key     string // canonical sorted k="v" join, used for ordering
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes a label set: sorted by key, escaped, joined.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// lookup get-or-creates the (family, series) pair, panicking on a kind
// mismatch — reusing a metric name across kinds is a programming error
// the process should fail loudly on, exactly like a duplicate route.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...), key: key}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			bounds := defaultBounds()
			s.hist = &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// Counter get-or-creates a counter series. Calling again with the same
// name and labels returns the same instance.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, labels).counter
}

// Gauge get-or-creates a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, labels).gauge
}

// Histogram get-or-creates a histogram series with the default
// log-spaced latency buckets.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.lookup(name, help, kindHistogram, labels).hist
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders name{labels} with an optional extra label appended
// (used for the histogram le bound).
func seriesName(name string, labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return name
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// quantileExports are the derived per-histogram gauge families.
var quantileExports = []struct {
	suffix string
	q      float64
}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered: families by name,
// series by canonical label key. Histogram families additionally emit
// `<name>_p50/_p95/_p99` gauge families with interpolated quantile
// estimates.
func (r *Registry) WriteText(w *strings.Builder) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.Lock()
		ordered := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ordered = append(ordered, s)
		}
		f.mu.Unlock()
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })

		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ordered {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s %d\n", seriesName(f.name, s.labels), s.counter.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s %s\n", seriesName(f.name, s.labels), formatFloat(s.gauge.Value()))
			case kindHistogram:
				h := s.hist
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.buckets[i].Load()
					fmt.Fprintf(w, "%s %d\n",
						seriesName(f.name+"_bucket", s.labels, L("le", formatFloat(bound))), cum)
				}
				cum += h.buckets[len(h.bounds)].Load()
				fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_bucket", s.labels, L("le", "+Inf")), cum)
				fmt.Fprintf(w, "%s %s\n", seriesName(f.name+"_sum", s.labels), formatFloat(h.Sum()))
				fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_count", s.labels), h.Count())
				// Exemplars ride in comments: the 0.0.4 text format has no
				// exemplar syntax, and comments are ignored by scrapers.
				if tid, v, ok := h.Exemplar(); ok {
					fmt.Fprintf(w, "# EXEMPLAR %s trace_id=%q %s\n",
						seriesName(f.name, s.labels), tid, formatFloat(v))
				}
			}
		}
		if f.kind == kindHistogram {
			for _, qe := range quantileExports {
				fmt.Fprintf(w, "# TYPE %s%s gauge\n", f.name, qe.suffix)
				for _, s := range ordered {
					fmt.Fprintf(w, "%s %s\n",
						seriesName(f.name+qe.suffix, s.labels), formatFloat(s.hist.Quantile(qe.q)))
				}
			}
		}
	}
}

// Text renders the registry to a string (scrape body).
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		body := r.Text()
		if req.Method == http.MethodHead {
			return
		}
		_, _ = w.Write([]byte(body))
	})
}
