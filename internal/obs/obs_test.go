package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketMath: table-driven placement of observations into
// the log-spaced buckets, including the exact-boundary and +Inf cases.
func TestHistogramBucketMath(t *testing.T) {
	cases := []struct {
		name       string
		value      float64
		wantBucket int // index into buckets (len(bounds) == +Inf)
	}{
		{"below first bound", 5e-7, 0},
		{"exactly first bound", 1e-6, 0},
		{"just past first bound", 1.1e-6, 1},
		{"mid range", 3e-6, 2}, // bounds: 1e-6, 2e-6, 4e-6 ...
		{"exactly 4us bound", 4e-6, 2},
		{"one millisecond", 1e-3, 10}, // 1e-6*2^10 = 1.024e-3 >= 1e-3
		{"one second", 1.0, 20},       // 1e-6*2^20 ≈ 1.049 >= 1
		{"nine minutes", 530, 29},     // last finite bound ≈ 536.87
		{"past last bound", 1e4, 30},  // +Inf bucket
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewRegistry().Histogram("h", "")
			h.Observe(tc.value)
			for i := range h.buckets {
				got := h.buckets[i].Load()
				want := uint64(0)
				if i == tc.wantBucket {
					want = 1
				}
				if got != want {
					t.Fatalf("bucket[%d] = %d, want %d (value %g)", i, got, want, tc.value)
				}
			}
			if h.Count() != 1 || h.Sum() != tc.value {
				t.Fatalf("count=%d sum=%g", h.Count(), h.Sum())
			}
		})
	}
}

// TestHistogramQuantiles: table-driven percentile estimation. Estimates
// interpolate within a bucket, so assertions allow one-bucket tolerance.
func TestHistogramQuantiles(t *testing.T) {
	cases := []struct {
		name    string
		observe func(h *Histogram)
		q       float64
		wantLo  float64 // inclusive bounds on the estimate
		wantHi  float64
	}{
		{
			name:    "empty histogram",
			observe: func(h *Histogram) {},
			q:       0.99, wantLo: 0, wantHi: 0,
		},
		{
			name:    "single value p50 lands in its bucket",
			observe: func(h *Histogram) { h.Observe(3e-6) },
			q:       0.50, wantLo: 2e-6, wantHi: 4e-6,
		},
		{
			name: "uniform 1..100ms p50 near 50ms",
			observe: func(h *Histogram) {
				for i := 1; i <= 100; i++ {
					h.Observe(float64(i) * 1e-3)
				}
			},
			// p50 rank falls in the (32.768ms, 65.536ms] bucket.
			q: 0.50, wantLo: 32.768e-3, wantHi: 65.536e-3,
		},
		{
			name: "bimodal p99 picks the slow mode",
			observe: func(h *Histogram) {
				for i := 0; i < 95; i++ {
					h.Observe(1e-4) // fast mode: 100µs
				}
				for i := 0; i < 5; i++ {
					h.Observe(2.0) // slow mode: 2s
				}
			},
			// p99 rank (99 of 100) falls among the five slow samples, so
			// the estimate must land in the 2s bucket (1.049s, 2.097s].
			q: 0.99, wantLo: 1.048576, wantHi: 2.097152,
		},
		{
			name: "values past +Inf clamp to last finite bound",
			observe: func(h *Histogram) {
				for i := 0; i < 10; i++ {
					h.Observe(1e6)
				}
			},
			q: 0.99, wantLo: 536.870912, wantHi: 536.870912,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewRegistry().Histogram("h", "")
			tc.observe(h)
			got := h.Quantile(tc.q)
			if got < tc.wantLo || got > tc.wantHi {
				t.Fatalf("Quantile(%g) = %g, want in [%g, %g]", tc.q, got, tc.wantLo, tc.wantHi)
			}
		})
	}
}

// TestConcurrentIncrements: hammer one counter, gauge, and histogram
// from many goroutines; totals must be exact (run under -race).
func TestConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-iteration lookups exercise the get-or-create path
			// concurrently, not just the instrument atomics.
			for i := 0; i < perWorker; i++ {
				reg.Counter("ops_total", "ops").Inc()
				reg.Gauge("level", "level").Add(1)
				reg.Histogram("lat_seconds", "latency").Observe(1e-3)
			}
		}()
	}
	wg.Wait()
	const want = workers * perWorker
	if got := reg.Counter("ops_total", "ops").Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := reg.Gauge("level", "level").Value(); got != want {
		t.Fatalf("gauge = %g, want %d", got, want)
	}
	h := reg.Histogram("lat_seconds", "latency")
	if h.Count() != want {
		t.Fatalf("histogram count = %d, want %d", h.Count(), want)
	}
	if math.Abs(h.Sum()-want*1e-3) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want*1e-3)
	}
}

// TestSameInstanceForSameSeries: get-or-create must hand back the same
// instrument for an identical (name, labels) pair, independent of label
// order, and distinct instruments for distinct labels.
func TestSameInstanceForSameSeries(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c", "", L("shard", "0"), L("op", "q"))
	b := reg.Counter("c", "", L("op", "q"), L("shard", "0"))
	if a != b {
		t.Fatal("label order produced distinct series")
	}
	c := reg.Counter("c", "", L("shard", "1"), L("op", "q"))
	if a == c {
		t.Fatal("distinct labels shared a series")
	}
}

// TestKindMismatchPanics: reusing a name across kinds is a programming
// error and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	reg.Gauge("m", "")
}

// TestWriteTextFormat: the exposition output is deterministic, carries
// HELP/TYPE lines, cumulative le buckets ending at +Inf, and the derived
// quantile gauges.
func TestWriteTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "Requests served.", L("endpoint", "query")).Add(3)
	reg.Gauge("dirty_shards", "Dirty shard count.").Set(2)
	h := reg.Histogram("stage_seconds", "Stage latency.", L("stage", "merge"))
	h.Observe(3e-6)
	h.Observe(3e-6)
	h.Observe(5.0)

	text := reg.Text()
	for _, want := range []string{
		"# HELP requests_total Requests served.\n# TYPE requests_total counter\nrequests_total{endpoint=\"query\"} 3\n",
		"# TYPE dirty_shards gauge\ndirty_shards 2\n",
		"# TYPE stage_seconds histogram\n",
		"stage_seconds_bucket{le=\"2e-06\",stage=\"merge\"} 0\n",
		"stage_seconds_bucket{le=\"4e-06\",stage=\"merge\"} 2\n",
		"stage_seconds_bucket{le=\"+Inf\",stage=\"merge\"} 3\n",
		"stage_seconds_count{stage=\"merge\"} 3\n",
		"# TYPE stage_seconds_p50 gauge\n",
		"# TYPE stage_seconds_p99 gauge\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q; got:\n%s", want, text)
		}
	}
	if again := reg.Text(); again != text {
		t.Fatal("exposition is not deterministic across renders")
	}
	// Cumulative counts never decrease across le bounds.
	var prev uint64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "stage_seconds_bucket{") {
			continue
		}
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = n
	}
}
