package fleet

// Anti-entropy write-repair. Every node of a routed fleet journals every
// replicated write in one fleet-wide order, so a healthy fleet's
// journals are byte-identical record sequences. A node that was down (or
// dropped requests) holds a strict prefix of that sequence; the repair
// pass proves the prefix relationship with a hash chain and backfills
// the missing suffix through the ordinary replica-write path, so the
// laggard journals and applies exactly the deltas it missed, in fleet
// order — converging it to byte-identical interpretation state.
//
// When a node's journal is NOT a prefix of the reference's (transient
// per-request faults carved a mid-stream gap, and no repair ran before
// later writes landed), the pass falls back to a full sync: every
// reference record is offered to the node (duplicates answer 409 and
// cost nothing), and records the reference itself is missing are pushed
// back from the divergent node. That converges the fleet's review *set*
// in one pass; the divergent node's apply order then differs from fleet
// order, which the report surfaces as FullSync so an operator knows a
// compaction or restart is what restores byte-level provenance ordering.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/server"
)

// ErrNoJournalSurface reports a fleet whose nodes all answered 404 for
// /journal/status — volatile (unjournaled) ingestion. Such a fleet has
// no anti-entropy substrate: there is no fleet-ordered log to diff or
// backfill from, so callers should stop scheduling repair passes
// (the router disables its auto-heal hook on this error).
var ErrNoJournalSurface = errors.New("fleet: nodes have no journal surface (volatile ingestion)")

// RepairOptions configure a Repair pass.
type RepairOptions struct {
	// Only restricts which node indexes may be backfilled (the reference
	// and status collection still span every node). nil repairs every
	// lagging node — the standalone anti-entropy pass. The router's
	// post-partial-write hook passes just the shards whose replication
	// failed.
	Only map[int]bool
	// PageSize bounds one /journal/records fetch. 0 means 256.
	PageSize int
}

// NodeRepair reports one node's outcome in a repair pass.
type NodeRepair struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Before and After are the node's journal last-sequences around the
	// pass.
	Before uint64 `json:"before"`
	After  uint64 `json:"after"`
	// Backfilled counts records the node accepted; AlreadyPresent counts
	// records it answered 409 for (it had them all along); Failed counts
	// records it rejected or could not receive.
	Backfilled     int `json:"backfilled"`
	AlreadyPresent int `json:"already_present,omitempty"`
	Failed         int `json:"failed,omitempty"`
	// FullSync is true when the node's journal had diverged beyond a pure
	// prefix and the pass fell back to offering the full record set;
	// ReverseBackfilled counts records this node pushed back INTO the
	// reference during that sync (the reference was missing them).
	FullSync          bool `json:"full_sync,omitempty"`
	ReverseBackfilled int  `json:"reverse_backfilled,omitempty"`
	// InSync is true when the node needed nothing.
	InSync bool `json:"in_sync,omitempty"`
	// Err is the terminal failure that stopped this node's repair, "" on
	// success.
	Err string `json:"error,omitempty"`
}

// RepairReport is the outcome of one anti-entropy pass.
type RepairReport struct {
	// Reference is the node whose journal served as the backfill source
	// (the longest journal; ties break to the lowest index).
	Reference    int    `json:"reference"`
	ReferenceSeq uint64 `json:"reference_seq"`
	// InSync is true when every probed node already matched the reference.
	InSync bool `json:"in_sync"`
	// Nodes reports per-node outcomes, ordered by node index.
	Nodes []NodeRepair `json:"nodes"`
}

// Healed returns the indexes of nodes this pass actually converged: they
// needed repair (or were dirty) and finished without failures.
func (r *RepairReport) Healed() []int {
	var out []int
	for _, n := range r.Nodes {
		if n.Err == "" && n.Failed == 0 && !n.InSync {
			out = append(out, n.Index)
		}
	}
	return out
}

// Converged reports whether node idx ended the pass in a known-good
// state: in sync already, or repaired without failures.
func (r *RepairReport) Converged(idx int) bool {
	for _, n := range r.Nodes {
		if n.Index == idx {
			return n.Err == "" && n.Failed == 0
		}
	}
	return false
}

// Repair runs one anti-entropy pass over the fleet's nodes. It never
// mutates the reference's choice of order: laggards are driven toward
// the longest journal. The caller is responsible for serializing the
// pass against routed writes (the router runs it under its write mutex)
// — concurrent writes would interleave with the backfill and the healed
// order would no longer be the fleet order.
func Repair(ctx context.Context, nodes []Backend, opts RepairOptions) (*RepairReport, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: repair over zero nodes")
	}
	pageSize := opts.PageSize
	if pageSize <= 0 {
		pageSize = 256
	}

	// Probe every node concurrently (like the router's own fan-outs): a
	// pass often runs under the router's write mutex, so it should cost
	// the slowest probe, not the sum.
	statuses := make([]server.JournalStatusResponse, len(nodes))
	statusErr := make([]error, len(nodes))
	httpStatus := make([]int, len(nodes))
	var wg sync.WaitGroup
	for i, b := range nodes {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			statuses[i], httpStatus[i], statusErr[i] = journalStatus(ctx, b, 0)
		}(i, b)
	}
	wg.Wait()
	noJournal := 0
	for i := range nodes {
		if statusErr[i] != nil && httpStatus[i] == http.StatusNotFound {
			noJournal++
		}
	}
	if noJournal == len(nodes) {
		return nil, ErrNoJournalSurface
	}
	ref := -1
	for i := range nodes {
		if statusErr[i] != nil {
			continue
		}
		if ref < 0 || statuses[i].LastSeq > statuses[ref].LastSeq {
			ref = i
		}
	}
	if ref < 0 {
		return nil, fmt.Errorf("fleet: repair: no node answered /journal/status (first error: %v)", statusErr[0])
	}
	report := &RepairReport{Reference: ref, ReferenceSeq: statuses[ref].LastSeq, InSync: true}

	for i, b := range nodes {
		nr := NodeRepair{Index: i, Name: b.Name()}
		switch {
		case statusErr[i] != nil:
			nr.Err = statusErr[i].Error()
			report.InSync = false
		case statuses[i].LastAppliedSeq < statuses[i].LastSeq:
			// The append-without-apply window: the record is durable in the
			// node's journal (so journal diffing sees nothing to backfill)
			// but its serving state is behind. A backfill POST cannot heal
			// this without duplicating the journaled record; a restart
			// replays the journal and converges. Never report such a node
			// in sync — drift must not hide.
			nr.Before, nr.After = statuses[i].LastSeq, statuses[i].LastSeq
			nr.Err = fmt.Sprintf("applied state (seq %d) is behind the journal (seq %d): an append succeeded but its apply failed; restart the node to replay",
				statuses[i].LastAppliedSeq, statuses[i].LastSeq)
			report.InSync = false
		case i == ref:
			nr.InSync = true
			nr.Before, nr.After = statuses[i].LastSeq, statuses[i].LastSeq
		case statuses[i].LastSeq == statuses[ref].LastSeq && statuses[i].PrefixHash == statuses[ref].PrefixHash:
			nr.InSync = true
			nr.Before, nr.After = statuses[i].LastSeq, statuses[i].LastSeq
		case opts.Only != nil && !opts.Only[i]:
			// Lagging but out of scope for this pass.
			nr.Before, nr.After = statuses[i].LastSeq, statuses[i].LastSeq
			report.InSync = false
		default:
			nr = repairNode(ctx, nodes, ref, i, statuses, pageSize)
			report.InSync = false
		}
		report.Nodes = append(report.Nodes, nr)
	}
	return report, nil
}

// repairNode converges one lagging node toward the reference.
func repairNode(ctx context.Context, nodes []Backend, ref, idx int, statuses []server.JournalStatusResponse, pageSize int) NodeRepair {
	b := nodes[idx]
	nr := NodeRepair{Index: idx, Name: b.Name(), Before: statuses[idx].LastSeq}
	nr.After = nr.Before

	// Prefix proof: the laggard's whole journal must hash like the
	// reference's first lastSeq records.
	prefix := statuses[idx].LastSeq <= statuses[ref].LastSeq
	if prefix && statuses[idx].LastSeq > 0 {
		refAt, _, err := journalStatus(ctx, nodes[ref], statuses[idx].LastSeq)
		if err != nil {
			nr.Err = fmt.Sprintf("reference prefix hash: %v", err)
			return nr
		}
		prefix = refAt.PrefixHash == statuses[idx].PrefixHash
	}

	from := statuses[idx].LastSeq + 1
	if !prefix {
		// Divergence: offer everything; 409s absorb the overlap.
		nr.FullSync = true
		from = 1
	}
	if err := streamInto(ctx, nodes[ref], b, from, pageSize, &nr); err != nil {
		nr.Err = err.Error()
		return nr
	}
	if nr.FullSync {
		// The reference may itself be missing records the divergent node
		// holds (disjoint transient faults); push them back so the pass
		// converges the union, not just the reference's view.
		back := NodeRepair{}
		if err := streamInto(ctx, b, nodes[ref], 1, pageSize, &back); err != nil {
			nr.Err = fmt.Sprintf("reverse sync into reference: %v", err)
			return nr
		}
		nr.Failed += back.Failed
		nr.ReverseBackfilled = back.Backfilled
	}
	if st, _, err := journalStatus(ctx, b, 0); err == nil {
		nr.After = st.LastSeq
	}
	return nr
}

// streamInto pages src's journal records from seq `from` and offers each
// to dst through the replica-write path, accumulating counts into nr.
func streamInto(ctx context.Context, src, dst Backend, from uint64, pageSize int, nr *NodeRepair) error {
	for {
		page, err := journalRecords(ctx, src, from, pageSize)
		if err != nil {
			return fmt.Errorf("read source journal: %v", err)
		}
		for _, rec := range page.Records {
			body, err := json.Marshal(server.ReviewRequest{
				ID: rec.ID, EntityID: rec.EntityID, Reviewer: rec.Reviewer,
				Day: rec.Day, Text: rec.Text, Replica: true,
			})
			if err != nil {
				return fmt.Errorf("encode record seq %d: %v", rec.Seq, err)
			}
			status, _, err := dst.Do(ctx, "POST", "/reviews", body)
			switch {
			case err != nil:
				return fmt.Errorf("backfill seq %d: %v", rec.Seq, err)
			case status == http.StatusOK:
				nr.Backfilled++
			case status == http.StatusConflict:
				nr.AlreadyPresent++
			default:
				// A deliberate rejection (e.g. a ghost entity this node will
				// never accept) is counted, not fatal: the rest of the tail
				// may still land.
				nr.Failed++
			}
			from = rec.Seq + 1
		}
		if !page.More || len(page.Records) == 0 {
			return nil
		}
	}
}
