package fleet_test

// End-to-end contracts of the fleet control plane, over real snapshots,
// journals and the HTTP shard API:
//
//   - Rebalance: an M-shard fleet derived from an N-shard fleet
//     (snapshots + unreplayed journals, N,M ∈ {1,2,4,8}) answers the
//     full harness query fingerprint byte-identically to the enriched
//     monolith — which is what a fresh M-shard build serves — including
//     after a simulated crash + retry at every failpoint of the commit
//     protocol.
//
//   - Repair: a replica that missed K replicated writes (fault-injecting
//     backend) converges after one anti-entropy pass to the exact
//     fingerprint of an always-healthy replica, both live and after a
//     restart from its healed journal.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/snapshot"
)

const fleetDeltas = 10

var (
	fixOnce     sync.Once
	fixErr      error
	fixData     *corpus.Dataset
	fixDeltas   []core.ReviewData
	fixBaseSnap string // monolithic base snapshot (pre-delta)
	fixWantFP   string // fingerprint of the enriched monolith
	fixN        int    // fingerprint entries covered
)

// fixture builds the shared base: a small hotel corpus held short of its
// last reviews, a monolithic base snapshot, and the fingerprint of the
// monolith after applying the held-out deltas — the answer every healed
// or rebalanced fleet must reproduce byte for byte.
func fixture(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() { fixErr = buildFixture() })
	if fixErr != nil {
		t.Fatalf("fleet fixture: %v", fixErr)
	}
}

func buildFixture() error {
	genCfg := corpus.SmallConfig()
	genCfg.Seed = 1
	fixData = corpus.GenerateHotels(genCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.UseSubstitutionIndex = true
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	in := harness.BuildInputFromDataset(fixData, 400, 300, rng)
	split := len(in.Reviews) - fleetDeltas
	fixDeltas = append([]core.ReviewData(nil), in.Reviews[split:]...)
	in.Reviews = in.Reviews[:split]
	base, err := core.Build(in, cfg)
	if err != nil {
		return fmt.Errorf("base build: %w", err)
	}
	dir, err := os.MkdirTemp("", "fleet-base-*")
	if err != nil {
		return err
	}
	fixBaseSnap = filepath.Join(dir, "hotel-base.snap")
	if _, err := snapshot.Save(fixBaseSnap, base); err != nil {
		return err
	}
	// The reference: a clone of the base monolith that ingested every
	// delta in order.
	reference, _, err := snapshot.Load(fixBaseSnap)
	if err != nil {
		return err
	}
	for _, rv := range fixDeltas {
		if err := reference.ApplyReview(rv); err != nil {
			return err
		}
	}
	fixWantFP, fixN = harness.QueryFingerprint(fixData, reference)
	if fixN != 948 {
		return fmt.Errorf("fingerprint covers %d query-set entries, want 948", fixN)
	}
	return nil
}

// writeFleet partitions the base snapshot's database into n shards and
// writes snapshots + manifest into dir, returning the manifest path.
func writeFleet(t *testing.T, dir string, n int) string {
	t.Helper()
	base, _, err := snapshot.Load(fixBaseSnap)
	if err != nil {
		t.Fatal(err)
	}
	shardDBs, parts, err := base.Shards(n)
	if err != nil {
		t.Fatal(err)
	}
	m := &snapshot.Manifest{
		FormatVersion: snapshot.FormatVersion,
		Name:          base.Name,
		BuildSeed:     1,
		Shards:        n,
		TotalEntities: len(base.EntityIDs()),
		CreatedUnix:   1,
	}
	for i, sdb := range shardDBs {
		ids := parts[i]
		path := filepath.Join(dir, fmt.Sprintf("hotel-shard%d.snap", i))
		meta, err := snapshot.SaveShard(path, sdb, &snapshot.ShardMeta{
			Index: i, Count: n,
			Entities: len(ids), TotalEntities: len(base.EntityIDs()),
			FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
		})
		if err != nil {
			t.Fatalf("shard %d save: %v", i, err)
		}
		m.Shard = append(m.Shard, snapshot.ManifestShard{
			Index: i, Path: filepath.Base(path),
			Entities: len(ids), FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
			SnapshotSHA256: meta.SHA256, SnapshotBytes: meta.FileBytes,
		})
	}
	manifestPath := filepath.Join(dir, "hotel.manifest.json")
	if err := snapshot.WriteManifest(manifestPath, m); err != nil {
		t.Fatal(err)
	}
	return manifestPath
}

// liveShard is one serving node of an in-process fleet: a loaded shard
// database behind the real HTTP handler, journaled.
type liveShard struct {
	db      *core.DB
	journal *journal.Journal
	backend *router.LocalBackend
}

// serveFleet loads every shard of a manifest with a journal and returns
// the live nodes plus a router over them (auto-repair configured by the
// caller through opts).
func serveFleet(t *testing.T, manifestPath string, opts router.Options) (*snapshot.Manifest, []*liveShard, *router.Router) {
	t.Helper()
	m, err := snapshot.LoadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*liveShard, m.Shards)
	shards := make([]router.Shard, m.Shards)
	for i := range m.Shard {
		db, _, err := snapshot.LoadVerifiedShard(manifestPath, m, i)
		if err != nil {
			t.Fatalf("shard %d load: %v", i, err)
		}
		jdir := journal.Dir(snapshot.ShardPath(manifestPath, m.Shard[i]))
		j, err := journal.Open(jdir, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := journal.ApplyAll(db, jdir)
		if err != nil {
			t.Fatalf("shard %d replay: %v", i, err)
		}
		backend := router.NewLocalBackend(fmt.Sprintf("shard%d", i), db, server.Options{
			Ingest: &server.IngestOptions{
				AcceptUnowned:  true,
				JournalDir:     jdir,
				JournalLastSeq: st.LastSeq,
				Append: func(rv core.ReviewData) (uint64, error) {
					return j.Append(journal.Review{
						ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
					})
				},
			},
		})
		nodes[i] = &liveShard{db: db, journal: j, backend: backend}
		shards[i] = router.Shard{
			Backend:     backend,
			FirstEntity: m.Shard[i].FirstEntity,
			LastEntity:  m.Shard[i].LastEntity,
		}
	}
	rt, err := router.New(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.journal.Close()
		}
	})
	return m, nodes, rt
}

// ingestThrough routes the fixture deltas through the router's write
// path.
func ingestThrough(t *testing.T, rt *router.Router, deltas []core.ReviewData) {
	t.Helper()
	for _, rv := range deltas {
		_, err := rt.AddReview(context.Background(), server.ReviewRequest{
			ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
		})
		if err != nil {
			t.Fatalf("write %s: %v", rv.ID, err)
		}
	}
}

// enrichedFleet builds an N-shard fleet dir whose snapshots hold the
// base build and whose journals hold every delta — the rebalance input
// shape ("snapshots + unreplayed journals").
func enrichedFleet(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	manifestPath := writeFleet(t, dir, n)
	_, nodes, rt := serveFleet(t, manifestPath, router.Options{})
	ingestThrough(t, rt, fixDeltas)
	for _, node := range nodes {
		if err := node.journal.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return manifestPath
}

// copyFleet clones a fleet directory (snapshots, journals, manifest) so
// destructive operations run on a throwaway copy.
func copyFleet(t *testing.T, manifestPath string) string {
	t.Helper()
	src := filepath.Dir(manifestPath)
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dst, filepath.Base(manifestPath))
}

// routedFingerprint loads a fleet from its manifest behind an in-process
// router and fingerprints it.
func routedFingerprint(t *testing.T, manifestPath string) string {
	t.Helper()
	rt, _, err := router.FromManifest(manifestPath, router.ManifestOptions{})
	if err != nil {
		t.Fatalf("load fleet %s: %v", manifestPath, err)
	}
	fp, n := harness.QueryFingerprint(fixData, rt.Engine(context.Background()))
	if n != fixN {
		t.Fatalf("fingerprint covers %d entries, want %d", n, fixN)
	}
	return fp
}

// TestRebalanceMatrix is the rebalance contract: every N→M over
// {1,2,4,8} serves the enriched monolith's exact fingerprint from the
// rebalanced snapshots, with journals folded away.
func TestRebalanceMatrix(t *testing.T) {
	fixture(t)
	sizes := []int{1, 2, 4, 8}
	if testing.Short() {
		sizes = []int{1, 4}
	}
	for _, n := range sizes {
		n := n
		src := enrichedFleet(t, n)
		for _, m := range sizes {
			if m == n {
				continue
			}
			t.Run(fmt.Sprintf("%dto%d", n, m), func(t *testing.T) {
				manifestPath := copyFleet(t, src)
				report, err := fleet.Rebalance(manifestPath, m, fleet.RebalanceOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if report.FromShards != n || report.ToShards != m || report.ReplayedRecords != fleetDeltas {
					t.Fatalf("report = %+v", report)
				}
				got, err := snapshot.LoadManifest(manifestPath)
				if err != nil {
					t.Fatal(err)
				}
				if got.Shards != m {
					t.Fatalf("manifest has %d shards, want %d", got.Shards, m)
				}
				// Old artifacts and journals are gone; the new fleet starts
				// with empty delta logs.
				for _, p := range report.RemovedPaths {
					if _, err := os.Stat(p); !os.IsNotExist(err) {
						t.Errorf("old artifact %s survived", p)
					}
				}
				for _, s := range got.Shard {
					if _, err := os.Stat(journal.Dir(snapshot.ShardPath(manifestPath, s))); !os.IsNotExist(err) {
						t.Errorf("new shard %d has a journal before any write", s.Index)
					}
				}
				if fp := routedFingerprint(t, manifestPath); fp != fixWantFP {
					t.Fatalf("%d→%d rebalanced fleet diverges from the enriched monolith", n, m)
				}
			})
		}
	}
}

// TestRebalanceCrashRetry drives the commit protocol into a simulated
// crash at every failpoint; the retried rebalance must converge to the
// same byte-identical fleet with nothing leaked.
func TestRebalanceCrashRetry(t *testing.T) {
	fixture(t)
	src := enrichedFleet(t, 4)
	for _, stage := range []string{"staged", "published", "committed"} {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			manifestPath := copyFleet(t, src)
			crash := fmt.Errorf("injected crash at %s", stage)
			_, err := fleet.Rebalance(manifestPath, 2, fleet.RebalanceOptions{
				Failpoint: func(s string) error {
					if s == stage {
						return crash
					}
					return nil
				},
			})
			if err == nil {
				t.Fatal("failpoint did not fire")
			}
			// Whatever the crash left behind, the fleet on disk must load:
			// either the old 4-shard generation or the committed 2-shard one.
			m, err := snapshot.LoadManifest(manifestPath)
			if err != nil {
				t.Fatalf("manifest unusable after crash at %s: %v", stage, err)
			}
			if _, _, err := router.FromManifest(manifestPath, router.ManifestOptions{}); err != nil {
				t.Fatalf("fleet unloadable after crash at %s (manifest %d shards): %v", stage, m.Shards, err)
			}
			// Retry converges.
			report, err := fleet.Rebalance(manifestPath, 2, fleet.RebalanceOptions{})
			if err != nil {
				t.Fatalf("retry after crash at %s: %v", stage, err)
			}
			if report.ToShards != 2 {
				t.Fatalf("retry report = %+v", report)
			}
			if fp := routedFingerprint(t, manifestPath); fp != fixWantFP {
				t.Fatalf("retried rebalance after crash at %s diverges", stage)
			}
			// Nothing of either generation leaked: the directory holds the
			// committed shards, the manifest, and nothing else.
			m2, err := snapshot.LoadManifest(manifestPath)
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]bool{filepath.Base(manifestPath): true}
			for _, s := range m2.Shard {
				want[s.Path] = true
			}
			entries, err := os.ReadDir(filepath.Dir(manifestPath))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if !want[e.Name()] {
					t.Errorf("leaked artifact %s after crash at %s", e.Name(), stage)
				}
			}
		})
	}
}

// faultyBackend wraps a Backend, dropping POST /reviews while tripped —
// the fault injection of the repair contract.
type faultyBackend struct {
	router.Shard
	mu      sync.Mutex
	tripped bool
}

func (f *faultyBackend) Name() string { return f.Shard.Backend.Name() + "(faulty)" }

func (f *faultyBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	f.mu.Lock()
	tripped := f.tripped
	f.mu.Unlock()
	if tripped && method == http.MethodPost && target == "/reviews" {
		return 0, nil, fmt.Errorf("injected fault: %s is down for writes", f.Shard.Backend.Name())
	}
	return f.Shard.Backend.Do(ctx, method, target, body)
}

func (f *faultyBackend) setTripped(v bool) {
	f.mu.Lock()
	f.tripped = v
	f.mu.Unlock()
}

// TestRepairConvergesDownReplica is the repair contract: shard 2 misses
// the last K replicated writes (its backend drops them), one anti-entropy
// pass backfills it, and both its live state and its
// restart-from-journal state fingerprint exactly like an always-healthy
// replica's.
func TestRepairConvergesDownReplica(t *testing.T) {
	fixture(t)
	// The fixture's held-out deltas all land in the LAST shard's entity
	// range (reviews are grouped by entity), so shard 0 sees them purely
	// as replicated traffic — the down-replica drift scenario.
	const faultyIdx = 0
	dir := t.TempDir()
	manifestPath := writeFleet(t, dir, 3)
	m, nodes, _ := serveFleet(t, manifestPath, router.Options{})

	// Rebuild the router with shard 2 behind a fault injector, healing
	// disabled — this test exercises the standalone anti-entropy pass.
	shards := make([]router.Shard, len(nodes))
	faulty := &faultyBackend{}
	for i, node := range nodes {
		shards[i] = router.Shard{
			Backend:     node.backend,
			FirstEntity: m.Shard[i].FirstEntity,
			LastEntity:  m.Shard[i].LastEntity,
		}
		if i == faultyIdx {
			faulty.Shard = shards[i]
			shards[i].Backend = faulty
		}
	}
	rt, err := router.New(shards, router.Options{DisableAutoRepair: true})
	if err != nil {
		t.Fatal(err)
	}

	// A down replica misses replicated (non-owned) writes; a write whose
	// OWNER is down aborts fleet-wide and drifts nobody. Guard the
	// premise: the faulty shard owns none of the deltas it will miss.
	ordered := fixDeltas
	split := len(ordered) - 6
	missed := len(ordered) - split
	for _, rv := range ordered[split:] {
		if rv.EntityID >= m.Shard[faultyIdx].FirstEntity && rv.EntityID <= m.Shard[faultyIdx].LastEntity {
			t.Fatalf("delta %s is owned by the faulty shard; the scenario needs replicated traffic", rv.ID)
		}
	}

	ingestThrough(t, rt, ordered[:split])
	faulty.setTripped(true)
	for _, rv := range ordered[split:] {
		res, err := rt.AddReview(context.Background(), server.ReviewRequest{
			ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
		})
		if err != nil {
			t.Fatalf("write %s: %v", rv.ID, err)
		}
		if !res.Partial {
			t.Fatalf("write %s: faulty replica did not produce a partial report", rv.ID)
		}
	}
	faulty.setTripped(false)

	backends := make([]fleet.Backend, len(nodes))
	for i, node := range nodes {
		backends[i] = node.backend
	}
	report, err := fleet.Repair(context.Background(), backends, fleet.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.InSync {
		t.Fatal("repair found nothing to do on a lagging fleet")
	}
	var nr *fleet.NodeRepair
	for i := range report.Nodes {
		if report.Nodes[i].Index == faultyIdx {
			nr = &report.Nodes[i]
		}
	}
	if nr == nil || nr.Backfilled != missed || nr.FullSync || nr.Err != "" || nr.Failed != 0 {
		t.Fatalf("faulty node repair = %+v, want %d tail backfills", nr, missed)
	}
	if nr.Before != uint64(split) || nr.After != uint64(len(ordered)) {
		t.Fatalf("faulty node moved %d→%d, want %d→%d", nr.Before, nr.After, split, len(ordered))
	}

	// A second pass is a no-op: the fleet is in sync.
	again, err := fleet.Repair(context.Background(), backends, fleet.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.InSync {
		t.Fatalf("fleet still out of sync after repair: %+v", again.Nodes)
	}

	// The healthy twin: shard 2 reloaded from its snapshot with every
	// delta applied directly, in fleet order — what an always-healthy
	// replica holds.
	twin, _, err := snapshot.LoadVerifiedShard(manifestPath, m, faultyIdx)
	if err != nil {
		t.Fatal(err)
	}
	for _, rv := range ordered {
		if err := twin.ApplyReview(rv); err != nil {
			t.Fatal(err)
		}
	}
	wantFP, _ := harness.QueryFingerprint(fixData, twin)

	// Live convergence: the repaired replica's in-memory state.
	if gotFP, _ := harness.QueryFingerprint(fixData, nodes[faultyIdx].db); gotFP != wantFP {
		t.Fatal("repaired replica's live state diverges from the always-healthy replica")
	}
	// Restart convergence: its journal now carries the missed suffix in
	// fleet order, so snapshot + replay reproduces the same state.
	restarted, _, err := snapshot.LoadVerifiedShard(manifestPath, m, faultyIdx)
	if err != nil {
		t.Fatal(err)
	}
	jdir := journal.Dir(snapshot.ShardPath(manifestPath, m.Shard[faultyIdx]))
	st, err := journal.ApplyAll(restarted, jdir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != len(ordered) {
		t.Fatalf("restart replayed %d deltas, want %d", st.Applied, len(ordered))
	}
	if gotFP, _ := harness.QueryFingerprint(fixData, restarted); gotFP != wantFP {
		t.Fatal("repaired replica's restart state diverges from the always-healthy replica")
	}
}

// TestRepairFullSyncAfterMidStreamGap: a transient per-write fault
// carves a gap in the middle of a replica's journal; repair detects the
// broken prefix, falls back to a full sync, and converges the review
// set.
func TestRepairFullSyncAfterMidStreamGap(t *testing.T) {
	fixture(t)
	const faultyIdx = 0
	dir := t.TempDir()
	manifestPath := writeFleet(t, dir, 3)
	m, nodes, _ := serveFleet(t, manifestPath, router.Options{})
	shards := make([]router.Shard, len(nodes))
	faulty := &faultyBackend{}
	for i, node := range nodes {
		shards[i] = router.Shard{Backend: node.backend, FirstEntity: m.Shard[i].FirstEntity, LastEntity: m.Shard[i].LastEntity}
		if i == faultyIdx {
			faulty.Shard = shards[i]
			shards[i].Backend = faulty
		}
	}
	rt, err := router.New(shards, router.Options{DisableAutoRepair: true})
	if err != nil {
		t.Fatal(err)
	}

	// Drop exactly one mid-stream REPLICATED write on shard 1: the gap
	// must be a write shard 1 does not own (an owned write would abort
	// fleet-wide instead of drifting), and must not be the last write, so
	// later records bury the gap mid-journal.
	gapAt := -1
	for wi, rv := range fixDeltas[:len(fixDeltas)-1] {
		if wi > 0 && !(rv.EntityID >= m.Shard[faultyIdx].FirstEntity && rv.EntityID <= m.Shard[faultyIdx].LastEntity) {
			gapAt = wi
			break
		}
	}
	if gapAt < 0 {
		t.Fatal("fixture has no mid-stream replicated delta for the faulty shard")
	}
	for wi, rv := range fixDeltas {
		faulty.setTripped(wi == gapAt)
		if _, err := rt.AddReview(context.Background(), server.ReviewRequest{
			ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
		}); err != nil {
			t.Fatalf("write %s: %v", rv.ID, err)
		}
	}
	faulty.setTripped(false)

	backends := make([]fleet.Backend, len(nodes))
	for i, node := range nodes {
		backends[i] = node.backend
	}
	report, err := fleet.Repair(context.Background(), backends, fleet.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var nr *fleet.NodeRepair
	for i := range report.Nodes {
		if report.Nodes[i].Index == faultyIdx {
			nr = &report.Nodes[i]
		}
	}
	if nr == nil || !nr.FullSync || nr.Backfilled != 1 || nr.Err != "" {
		t.Fatalf("gap repair = %+v, want a full sync backfilling the one missed record", nr)
	}
	// Set convergence: the replica now holds every delta.
	for _, rv := range fixDeltas {
		if !nodes[faultyIdx].db.HasReview(rv.ID) {
			t.Fatalf("review %s still missing after full sync", rv.ID)
		}
	}
	// And its journal carries all records.
	jdir := journal.Dir(snapshot.ShardPath(manifestPath, m.Shard[faultyIdx]))
	jst, err := journal.StatDir(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if jst.Records != len(fixDeltas) {
		t.Fatalf("journal holds %d records after full sync, want %d", jst.Records, len(fixDeltas))
	}
}

// TestAutoRepairHealsPartialWrite is the router-integration contract: a
// reported `partial` write triggers healing automatically. A transient
// fault drops one replication; the next write's heal-before-write pass
// backfills the missed record FIRST, so the healed replica's journal
// keeps the fleet order and its state converges byte-identically — no
// operator action involved.
func TestAutoRepairHealsPartialWrite(t *testing.T) {
	fixture(t)
	const faultyIdx = 0
	dir := t.TempDir()
	manifestPath := writeFleet(t, dir, 3)
	m, nodes, _ := serveFleet(t, manifestPath, router.Options{})
	shards := make([]router.Shard, len(nodes))
	faulty := &faultyBackend{}
	for i, node := range nodes {
		shards[i] = router.Shard{Backend: node.backend, FirstEntity: m.Shard[i].FirstEntity, LastEntity: m.Shard[i].LastEntity}
		if i == faultyIdx {
			faulty.Shard = shards[i]
			shards[i].Backend = faulty
		}
	}
	// Auto-repair stays at its default: enabled.
	rt, err := router.New(shards, router.Options{})
	if err != nil {
		t.Fatal(err)
	}

	write := func(rv core.ReviewData) *router.ReviewResult {
		t.Helper()
		res, err := rt.AddReview(context.Background(), server.ReviewRequest{
			ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
		})
		if err != nil {
			t.Fatalf("write %s: %v", rv.ID, err)
		}
		return res
	}

	ingestThrough(t, rt, fixDeltas[:4])
	// One dropped replication: the write is partial and the immediate
	// repair attempt fails too (the backend is still down for writes).
	faulty.setTripped(true)
	res := write(fixDeltas[4])
	if !res.Partial || len(res.Healed) != 0 {
		t.Fatalf("tripped write = %+v, want partial and unhealed", res)
	}
	if got := rt.DirtyShards(); len(got) != 1 || got[0] != faultyIdx {
		t.Fatalf("dirty shards = %v", got)
	}
	faulty.setTripped(false)

	// The next write heals BEFORE it fans out: the missed record lands
	// first, so the journal keeps the fleet order.
	res = write(fixDeltas[5])
	if res.Partial || len(res.Healed) != 1 || res.Healed[0] != faultyIdx {
		t.Fatalf("healing write = %+v, want healed=[%d]", res, faultyIdx)
	}
	if got := rt.DirtyShards(); len(got) != 0 {
		t.Fatalf("dirty shards after heal = %v", got)
	}
	ingestThrough(t, rt, fixDeltas[6:])

	// Every journal converged to the same record sequence.
	want, err := journal.StatDir(journal.Dir(snapshot.ShardPath(manifestPath, m.Shard[1])))
	if err != nil {
		t.Fatal(err)
	}
	got, err := journal.StatDir(journal.Dir(snapshot.ShardPath(manifestPath, m.Shard[faultyIdx])))
	if err != nil {
		t.Fatal(err)
	}
	if got.Records != len(fixDeltas) || got.Records != want.Records || got.PrefixHash != want.PrefixHash {
		t.Fatalf("journals diverge after auto-heal: faulty %+v vs healthy %+v", got, want)
	}

	// Byte identity: the auto-healed replica matches an always-healthy
	// twin that applied every delta in fleet order.
	twin, _, err := snapshot.LoadVerifiedShard(manifestPath, m, faultyIdx)
	if err != nil {
		t.Fatal(err)
	}
	for _, rv := range fixDeltas {
		if err := twin.ApplyReview(rv); err != nil {
			t.Fatal(err)
		}
	}
	wantFP, _ := harness.QueryFingerprint(fixData, twin)
	if gotFP, _ := harness.QueryFingerprint(fixData, nodes[faultyIdx].db); gotFP != wantFP {
		t.Fatal("auto-healed replica diverges from the always-healthy twin")
	}

	// The operator trigger agrees: POST /repair reports the fleet in sync.
	front := httptest.NewServer(router.NewHandler(rt))
	defer front.Close()
	resp, err := http.Post(front.URL+"/repair", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var report fleet.RepairReport
	decErr := json.NewDecoder(resp.Body).Decode(&report)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decErr != nil {
		t.Fatalf("POST /repair: status %d (%v)", resp.StatusCode, decErr)
	}
	if !report.InSync {
		t.Fatalf("POST /repair reports out-of-sync fleet: %+v", report.Nodes)
	}
}

// TestRepairReportsUnreachableNode: a node that cannot even answer
// /journal/status is reported, not silently skipped.
func TestRepairReportsUnreachableNode(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	manifestPath := writeFleet(t, dir, 2)
	_, nodes, rt := serveFleet(t, manifestPath, router.Options{})
	ingestThrough(t, rt, fixDeltas[:3])

	dead := deadBackend{}
	report, err := fleet.Repair(context.Background(), []fleet.Backend{nodes[0].backend, dead}, fleet.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.InSync {
		t.Fatal("a fleet with a dead node is not in sync")
	}
	if report.Nodes[1].Err == "" {
		t.Fatalf("dead node not reported: %+v", report.Nodes[1])
	}
	if !report.Converged(0) || report.Converged(1) {
		t.Fatalf("convergence misreported: %+v", report.Nodes)
	}
}

type deadBackend struct{}

func (deadBackend) Name() string { return "dead" }
func (deadBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	return 0, nil, fmt.Errorf("connection refused")
}

// volatileBackend models a node serving with unjournaled ingestion: the
// journal surface answers 404.
type volatileBackend struct{}

func (volatileBackend) Name() string { return "volatile" }
func (volatileBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	return http.StatusNotFound, []byte(`{"error":"this node has no journal"}`), nil
}

// TestRepairVolatileFleet: a fleet with no journal surface has no
// anti-entropy substrate; Repair says so with a typed error instead of
// pretending to converge anything.
func TestRepairVolatileFleet(t *testing.T) {
	_, err := fleet.Repair(context.Background(), []fleet.Backend{volatileBackend{}, volatileBackend{}}, fleet.RepairOptions{})
	if !errors.Is(err, fleet.ErrNoJournalSurface) {
		t.Fatalf("err = %v, want ErrNoJournalSurface", err)
	}
}

// TestRebalanceRefusesDriftedFleet: journals that disagree fail the
// consistency gate with a message pointing at repair.
func TestRebalanceRefusesDriftedFleet(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	manifestPath := writeFleet(t, dir, 2)
	m, nodes, rt := serveFleet(t, manifestPath, router.Options{})
	ingestThrough(t, rt, fixDeltas[:4])
	// Carve shard 1's journal: drop its last record by truncating the
	// journal directory and rewriting one record fewer.
	_ = m
	for _, node := range nodes {
		_ = node.journal.Close()
	}
	jdir := journal.Dir(snapshot.ShardPath(manifestPath, m.Shard[1]))
	if err := os.RemoveAll(jdir); err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rv := range fixDeltas[:3] {
		if _, err := j.Append(journal.Review{ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = fleet.Rebalance(manifestPath, 1, fleet.RebalanceOptions{})
	if err == nil {
		t.Fatal("rebalance accepted a drifted fleet")
	}
	var manifestAfter *snapshot.Manifest
	if manifestAfter, _ = snapshot.LoadManifest(manifestPath); manifestAfter == nil || manifestAfter.Shards != 2 {
		t.Fatal("failed rebalance mutated the manifest")
	}
}
