package fleet

// Live replica join: bring a fresh node up to the fleet's exact journal
// position so a router can admit it to a range's replica set with the
// byte-identity guarantee intact. The node starts from the range's
// digest-verified snapshot (snapshot.LoadVerifiedShard — the same trust
// chain every fleet node boots through) and an empty or
// prefix-contained journal; the join proves the prefix relationship
// with the repair pass's hash chain, streams the missing suffix
// through the ordinary replica-write path (streamInto — no new sync
// protocol), and then proves the joiner reached the reference position
// with a byte-identical record sequence.
//
// Join is stricter than repair: repair tolerates divergence (full-sync
// fallback trades away provenance order to converge the review set),
// but a joiner has no history worth saving — anything but a clean
// prefix is an error telling the operator to wipe the node and retry.
// Likewise a deliberate per-record rejection during the backfill fails
// the join outright: a node that refused part of the suffix can never
// be byte-identical.

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/server"
)

// JoinOptions configure a JoinReplica pass.
type JoinOptions struct {
	// PageSize bounds one /journal/records fetch. 0 means 256.
	PageSize int
}

// JoinReport is the outcome of one join pass.
type JoinReport struct {
	// Reference is the fleet node whose journal served as the source
	// (the longest; ties break to the lowest index); ReferenceSeq its
	// last sequence when the pass started.
	Reference    int    `json:"reference"`
	ReferenceSeq uint64 `json:"reference_seq"`
	// Before and After are the joiner's journal last-sequences around
	// the pass.
	Before uint64 `json:"before"`
	After  uint64 `json:"after"`
	// Backfilled counts records the joiner accepted; AlreadyPresent
	// counts records it answered 409 for.
	Backfilled     int `json:"backfilled"`
	AlreadyPresent int `json:"already_present,omitempty"`
	// Identical is true when the joiner ended the pass at ReferenceSeq
	// with a prefix hash equal to the reference's — its journal holds
	// byte-for-byte the fleet's record sequence — and has applied
	// everything it journaled. Callers admitting the joiner to a pick
	// must require it. (It can be false without error when writes kept
	// landing on the fleet during the pass; a second pass under the
	// fleet's write mutex closes the gap.)
	Identical bool `json:"identical"`
}

// JoinReplica catches joiner up to the fleet's journal position. nodes
// is the existing fleet (every replica of every range — the reference
// is chosen fleet-wide exactly like a repair pass); joiner is the
// fresh node, NOT part of nodes. Returns ErrNoJournalSurface when the
// fleet has no journal to ship — a volatile fleet cannot prove a
// joiner identical, so it cannot take one.
func JoinReplica(ctx context.Context, nodes []Backend, joiner Backend, opts JoinOptions) (*JoinReport, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: join against zero nodes")
	}
	pageSize := opts.PageSize
	if pageSize <= 0 {
		pageSize = 256
	}

	// Reference election, exactly like Repair: probe every fleet node,
	// take the longest journal.
	probes := make([]probeResult, len(nodes))
	var wg sync.WaitGroup
	for i, b := range nodes {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			probes[i].st, probes[i].http, probes[i].err = journalStatus(ctx, b, 0)
		}(i, b)
	}
	wg.Wait()
	noJournal := 0
	ref := -1
	for i := range nodes {
		if probes[i].err != nil {
			if probes[i].http == http.StatusNotFound {
				noJournal++
			}
			continue
		}
		if ref < 0 || probes[i].st.LastSeq > probes[ref].st.LastSeq {
			ref = i
		}
	}
	if noJournal == len(nodes) {
		return nil, ErrNoJournalSurface
	}
	if ref < 0 {
		return nil, fmt.Errorf("fleet: join: no fleet node answered /journal/status (first error: %v)", probes[0].err)
	}
	report := &JoinReport{Reference: ref, ReferenceSeq: probes[ref].st.LastSeq}

	// The joiner must expose a journal — it will carry the fleet order
	// from here on — and must have applied everything it journaled
	// (an append-without-apply gap needs a restart, not a backfill).
	jst, jhttp, err := journalStatus(ctx, joiner, 0)
	if err != nil {
		if jhttp == http.StatusNotFound {
			return nil, fmt.Errorf("fleet: join: joiner %s has no journal surface; a joiner must journal to hold the fleet order", joiner.Name())
		}
		return nil, fmt.Errorf("fleet: join: joiner %s journal status: %v", joiner.Name(), err)
	}
	if jst.LastAppliedSeq < jst.LastSeq {
		return nil, fmt.Errorf("fleet: join: joiner %s applied state (seq %d) is behind its journal (seq %d); restart it to replay first",
			joiner.Name(), jst.LastAppliedSeq, jst.LastSeq)
	}
	report.Before = jst.LastSeq
	report.After = jst.LastSeq

	// Prefix proof (PR 5's containment chain): whatever the joiner
	// already holds must be byte-identical to the reference's first
	// LastSeq records. A joiner ahead of the fleet or diverged from it
	// is not a joiner — refuse, never full-sync.
	if jst.LastSeq > report.ReferenceSeq {
		return nil, fmt.Errorf("fleet: join: joiner %s journal (seq %d) is ahead of the fleet (seq %d); it belongs to another fleet",
			joiner.Name(), jst.LastSeq, report.ReferenceSeq)
	}
	if jst.LastSeq > 0 {
		refAt, _, err := journalStatus(ctx, nodes[ref], jst.LastSeq)
		if err != nil {
			return nil, fmt.Errorf("fleet: join: reference prefix hash at seq %d: %v", jst.LastSeq, err)
		}
		if refAt.PrefixHash != jst.PrefixHash {
			return nil, fmt.Errorf("fleet: join: joiner %s journal diverges from the fleet at or before seq %d; wipe the node and rejoin from the snapshot",
				joiner.Name(), jst.LastSeq)
		}
	}

	// Backfill the suffix through the replica-write path.
	nr := NodeRepair{}
	if err := streamInto(ctx, nodes[ref], joiner, jst.LastSeq+1, pageSize, &nr); err != nil {
		return nil, fmt.Errorf("fleet: join: backfill into %s: %v", joiner.Name(), err)
	}
	report.Backfilled = nr.Backfilled
	report.AlreadyPresent = nr.AlreadyPresent
	if nr.Failed > 0 {
		return nil, fmt.Errorf("fleet: join: joiner %s rejected %d of the fleet's records; it can never be byte-identical",
			joiner.Name(), nr.Failed)
	}

	// Identity verification: the joiner must now hold exactly the
	// reference sequence through ReferenceSeq, applied. Prove it with
	// the same hash chain, not just a length check.
	fst, _, err := journalStatus(ctx, joiner, 0)
	if err != nil {
		return nil, fmt.Errorf("fleet: join: joiner %s post-backfill status: %v", joiner.Name(), err)
	}
	report.After = fst.LastSeq
	if fst.LastSeq < report.ReferenceSeq || fst.LastAppliedSeq < fst.LastSeq {
		return report, nil // not identical (yet); a pass under the write mutex finishes the job
	}
	refFinal, _, err := journalStatus(ctx, nodes[ref], fst.LastSeq)
	if err != nil {
		return nil, fmt.Errorf("fleet: join: reference final hash at seq %d: %v", fst.LastSeq, err)
	}
	if refFinal.PrefixHash != fst.PrefixHash {
		return nil, fmt.Errorf("fleet: join: joiner %s reached seq %d but its journal hash differs from the fleet's — byte identity broken",
			joiner.Name(), fst.LastSeq)
	}
	report.Identical = true
	return report, nil
}

// probeResult is one fleet node's journal-status probe.
type probeResult struct {
	st   server.JournalStatusResponse
	http int
	err  error
}
