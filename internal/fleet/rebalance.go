package fleet

// Online N→M shard rebalancing. The snapshot is the sharding substrate
// (ROADMAP, PR 3): a shard's replicated global state is byte-identical
// to the monolith's and its partitioned state is a contiguous slice of
// the entity space. Rebalance therefore never rebuilds the corpus — it
// loads the N shards (snapshot → journal replay, exactly the serving
// cold-start path), merges them back into the monolith-equivalent
// database (core.MergeShards), re-partitions M ways (core.Shards), and
// writes a fresh M-shard snapshot set + manifest. The journals are
// folded into the new snapshots, so the new fleet starts with empty
// delta logs.
//
// # Crash safety
//
// The commit point is the atomic manifest rename; everything before it
// is invisible to a loader, everything after it is cleanup. The steps:
//
//  1. Sweep: if a cleanup-intent sidecar from a crashed run exists,
//     remove every listed path the *current* manifest does not
//     reference, then the sidecar.
//  2. Load + gate: every shard loads digest-verified, its journal locked
//     (a live server makes rebalancing fail fast), and the fleet's
//     journals must agree (record count + prefix hash) — a drifted
//     replica needs an anti-entropy Repair pass first.
//  3. Stage: the M new snapshots are written into a temp dir with
//     generation-tagged names — g<hash(source manifest, M)> — so they
//     can never collide with a name any manifest references.
//  4. Intent: the sidecar is written listing every path that must not
//     outlive the run: the old shard files, their journals, the new
//     files, and the temp dir. "Referenced by the current manifest"
//     decides keep-vs-remove at sweep time, which is what makes the
//     sidecar correct on both sides of the commit point.
//  5. Publish: the staged files rename into the manifest's directory,
//     then the manifest itself is rewritten atomically — the commit.
//  6. Cleanup: old shard files + journals, the temp dir and the sidecar
//     are removed.
//
// A crash anywhere leaves either the old fleet or the new fleet fully
// loadable, and re-running Rebalance (with any target M) first sweeps
// the leftovers. Replays are idempotent (reviews skip by id), so even
// the stale-journal window — crash after the manifest rename, before
// journal removal — is absorbed.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/snapshot"
)

// RebalanceOptions configure Rebalance.
type RebalanceOptions struct {
	// Failpoint, when non-nil, is called at the protocol's named stages —
	// "staged" (new snapshots written to the temp dir), "published" (new
	// snapshots renamed next to the manifest, commit not yet written) and
	// "committed" (manifest renamed, cleanup not yet run) — and aborts the
	// run as a simulated crash when it returns an error. It exists for
	// crash drills (the e2e suite proves a retry after any failpoint
	// converges); production callers leave it nil.
	Failpoint func(stage string) error
}

// RebalanceReport describes a completed rebalance.
type RebalanceReport struct {
	FromShards, ToShards int
	Entities             int
	// ReplayedRecords is how many journal records each source shard
	// carried (the fleet-consistency gate guarantees they are equal).
	ReplayedRecords int
	// Manifest is the committed M-shard manifest.
	Manifest *snapshot.Manifest
	// NewPaths and RemovedPaths list the published artifacts and the old
	// generation's files that were cleaned up.
	NewPaths     []string
	RemovedPaths []string
}

// cleanupSidecar is the crash-recovery intent log written next to the
// manifest before anything renames.
type cleanupSidecar struct {
	// Remove lists paths (relative to the manifest directory) that must
	// not survive the rebalance; the sweep keeps any that the current
	// manifest still references.
	Remove []string `json:"remove"`
}

func sidecarPath(manifestPath string) string { return manifestPath + ".rebalance-cleanup.json" }

// manifestBase strips the manifest naming convention: hotel.manifest.json
// → hotel.
func manifestBase(manifestPath string) string {
	name := filepath.Base(manifestPath)
	if strings.HasSuffix(name, ".manifest.json") {
		return strings.TrimSuffix(name, ".manifest.json")
	}
	return strings.TrimSuffix(name, filepath.Ext(name))
}

// generation derives the deterministic tag new artifacts carry: a hash
// of the source manifest's checksum and the target shard count. A retry
// of the same rebalance overwrites its own staging output; a rebalance
// from a *different* source (including the committed result of a crashed
// run) can never collide with referenced names, because committing
// changes the manifest checksum.
func generation(sourceChecksum string, m int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s:%d", sourceChecksum, m)))
	return hex.EncodeToString(sum[:])[:10]
}

// sweepSidecar applies a crashed run's cleanup intent: every listed path
// not referenced by the current manifest is removed.
func sweepSidecar(manifestPath string, m *snapshot.Manifest) ([]string, error) {
	b, err := os.ReadFile(sidecarPath(manifestPath))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: rebalance sweep: %w", err)
	}
	var sc cleanupSidecar
	if err := json.Unmarshal(b, &sc); err != nil {
		return nil, fmt.Errorf("fleet: rebalance sweep: bad sidecar: %v", err)
	}
	referenced := map[string]bool{}
	for _, s := range m.Shard {
		p := snapshot.ShardPath(manifestPath, s)
		referenced[p] = true
		referenced[journal.Dir(p)] = true
	}
	dir := filepath.Dir(manifestPath)
	var removed []string
	for _, rel := range sc.Remove {
		p := filepath.Join(dir, rel)
		if referenced[p] {
			continue
		}
		if err := os.RemoveAll(p); err != nil {
			return removed, fmt.Errorf("fleet: rebalance sweep: %w", err)
		}
		removed = append(removed, p)
	}
	if err := os.Remove(sidecarPath(manifestPath)); err != nil {
		return removed, fmt.Errorf("fleet: rebalance sweep: %w", err)
	}
	return removed, nil
}

// writeSidecar atomically writes the cleanup intent.
func writeSidecar(manifestPath string, sc cleanupSidecar) error {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: rebalance: encode sidecar: %w", err)
	}
	tmp := sidecarPath(manifestPath) + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("fleet: rebalance: write sidecar: %w", err)
	}
	if err := os.Rename(tmp, sidecarPath(manifestPath)); err != nil {
		return fmt.Errorf("fleet: rebalance: write sidecar: %w", err)
	}
	return nil
}

// Rebalance derives an M-shard fleet from the N-shard fleet described by
// manifestPath, in place (the new manifest replaces the old at the same
// path). See the file comment for the crash-safety protocol. It returns
// a report naming the published and removed artifacts.
func Rebalance(manifestPath string, m int, opts RebalanceOptions) (*RebalanceReport, error) {
	if m <= 0 {
		return nil, fmt.Errorf("fleet: rebalance to %d shards", m)
	}
	hook := opts.Failpoint
	if hook == nil {
		hook = func(string) error { return nil }
	}
	src, err := snapshot.LoadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	if _, err := sweepSidecar(manifestPath, src); err != nil {
		return nil, err
	}
	// Stale staging dirs from runs that crashed before writing their
	// sidecar are always unpublished; sweep the whole namespace.
	if stale, err := filepath.Glob(filepath.Join(filepath.Dir(manifestPath), ".rebalance-*.tmp")); err == nil {
		for _, p := range stale {
			_ = os.RemoveAll(p)
		}
	}

	report := &RebalanceReport{FromShards: src.Shards, ToShards: m}

	// Load every shard (digest-verified) and replay its journal, holding
	// each journal's exclusive lock for the duration — a live fleet must
	// be stopped before its artifacts are rewritten under it.
	dbs := make([]*core.DB, 0, src.Shards)
	var wantStat *journal.Stat
	for i := range src.Shard {
		shardPath := snapshot.ShardPath(manifestPath, src.Shard[i])
		release, err := journal.ExclusiveLock(journal.Dir(shardPath))
		if err != nil {
			return nil, fmt.Errorf("fleet: rebalance: shard %d: is a server still serving this journal? %w", i, err)
		}
		defer release()
		st, err := journal.StatDir(journal.Dir(shardPath))
		if err != nil {
			return nil, fmt.Errorf("fleet: rebalance: shard %d journal: %w", i, err)
		}
		if wantStat == nil {
			wantStat = &st
			report.ReplayedRecords = st.Records
		} else if st.Records != wantStat.Records || st.PrefixHash != wantStat.PrefixHash {
			return nil, fmt.Errorf("fleet: rebalance: shard %d journal diverges from shard 0 (%d records vs %d, or differing prefix) — run an anti-entropy repair pass first",
				i, st.Records, wantStat.Records)
		}
		db, _, err := snapshot.LoadVerifiedShard(manifestPath, src, i)
		if err != nil {
			return nil, fmt.Errorf("fleet: rebalance: %w", err)
		}
		if _, err := journal.ApplyAll(db, journal.Dir(shardPath)); err != nil {
			return nil, fmt.Errorf("fleet: rebalance: shard %d replay: %w", i, err)
		}
		dbs = append(dbs, db)
	}

	merged, err := core.MergeShards(dbs)
	if err != nil {
		return nil, fmt.Errorf("fleet: rebalance: %w", err)
	}
	report.Entities = len(merged.EntityIDs())
	if report.Entities != src.TotalEntities {
		return nil, fmt.Errorf("fleet: rebalance: merged fleet serves %d entities, manifest says %d",
			report.Entities, src.TotalEntities)
	}

	newDBs, parts, err := merged.Shards(m)
	if err != nil {
		return nil, fmt.Errorf("fleet: rebalance: %w", err)
	}

	// Stage the new generation in a temp dir.
	dir := filepath.Dir(manifestPath)
	gen := generation(src.Checksum, m)
	base := manifestBase(manifestPath)
	tmpDir := filepath.Join(dir, fmt.Sprintf(".rebalance-%s.tmp", gen))
	if err := os.RemoveAll(tmpDir); err != nil {
		return nil, fmt.Errorf("fleet: rebalance: %w", err)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: rebalance: %w", err)
	}
	next := &snapshot.Manifest{
		FormatVersion: snapshot.FormatVersion,
		Name:          merged.Name,
		BuildSeed:     src.BuildSeed,
		Shards:        m,
		TotalEntities: report.Entities,
		CreatedUnix:   time.Now().Unix(),
	}
	names := make([]string, 0, m)
	for i, sdb := range newDBs {
		ids := parts[i]
		name := fmt.Sprintf("%s-g%s-shard%d.snap", base, gen, i)
		meta, err := snapshot.SaveShard(filepath.Join(tmpDir, name), sdb, &snapshot.ShardMeta{
			Index:         i,
			Count:         m,
			Entities:      len(ids),
			TotalEntities: report.Entities,
			FirstEntity:   ids[0],
			LastEntity:    ids[len(ids)-1],
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: rebalance: stage shard %d: %w", i, err)
		}
		next.Shard = append(next.Shard, snapshot.ManifestShard{
			Index:          i,
			Path:           name,
			Entities:       len(ids),
			FirstEntity:    ids[0],
			LastEntity:     ids[len(ids)-1],
			SnapshotSHA256: meta.SHA256,
			SnapshotBytes:  meta.FileBytes,
		})
		names = append(names, name)
	}
	if err := hook("staged"); err != nil {
		return nil, err
	}

	// Intent: everything this run must not leak, old generation and new.
	sc := cleanupSidecar{}
	for _, s := range src.Shard {
		sc.Remove = append(sc.Remove, s.Path, filepath.Base(journal.Dir(snapshot.ShardPath(manifestPath, s))))
	}
	sc.Remove = append(sc.Remove, names...)
	sc.Remove = append(sc.Remove, filepath.Base(tmpDir))
	if err := writeSidecar(manifestPath, sc); err != nil {
		return nil, err
	}

	// Publish: rename the staged files next to the manifest, then commit.
	for _, name := range names {
		if err := os.Rename(filepath.Join(tmpDir, name), filepath.Join(dir, name)); err != nil {
			return nil, fmt.Errorf("fleet: rebalance: publish %s: %w", name, err)
		}
		report.NewPaths = append(report.NewPaths, filepath.Join(dir, name))
	}
	if err := hook("published"); err != nil {
		return nil, err
	}
	if err := snapshot.WriteManifest(manifestPath, next); err != nil {
		return nil, fmt.Errorf("fleet: rebalance: commit: %w", err)
	}
	report.Manifest = next
	if err := hook("committed"); err != nil {
		return report, err
	}

	// Cleanup the old generation (crash-safe: the sidecar re-runs this).
	for _, s := range src.Shard {
		old := snapshot.ShardPath(manifestPath, s)
		for _, p := range []string{old, journal.Dir(old)} {
			if err := os.RemoveAll(p); err != nil {
				return report, fmt.Errorf("fleet: rebalance: cleanup: %w", err)
			}
			report.RemovedPaths = append(report.RemovedPaths, p)
		}
	}
	if err := os.RemoveAll(tmpDir); err != nil {
		return report, fmt.Errorf("fleet: rebalance: cleanup: %w", err)
	}
	if err := os.Remove(sidecarPath(manifestPath)); err != nil {
		return report, fmt.Errorf("fleet: rebalance: cleanup: %w", err)
	}
	return report, nil
}
