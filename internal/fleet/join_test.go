package fleet_test

// Live-join contracts: a fresh node starting from the range's verified
// snapshot catches up to the fleet's exact journal position with the
// byte-identity proof, and anything that cannot end byte-identical —
// a joiner without a journal, a joiner whose journal diverges from the
// fleet's prefix — is refused outright rather than full-synced.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/snapshot"
)

// newJoiner loads shard index from the manifest into a fresh node with
// its own journal in jdir, returning the backend and its live pieces.
func newJoiner(t *testing.T, manifestPath string, m *snapshot.Manifest, index int, jdir string) (*router.LocalBackend, *core.DB, *journal.Journal) {
	t.Helper()
	db, _, err := snapshot.LoadVerifiedShard(manifestPath, m, index)
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := journal.ApplyAll(db, jdir)
	if err != nil {
		t.Fatal(err)
	}
	b := router.NewLocalBackend(fmt.Sprintf("joiner%d", index), db, server.Options{
		Ingest: &server.IngestOptions{
			AcceptUnowned:  true,
			JournalDir:     jdir,
			JournalLastSeq: st.LastSeq,
			Append: func(rv core.ReviewData) (uint64, error) {
				return j.Append(journal.Review{
					ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
				})
			},
		},
	})
	t.Cleanup(func() { _ = j.Close() })
	return b, db, j
}

func TestJoinReplicaCatchesUpFreshNode(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	manifestPath := writeFleet(t, dir, 2)
	m, nodes, rt := serveFleet(t, manifestPath, router.Options{})
	ingestThrough(t, rt, fixDeltas)

	backends := make([]fleet.Backend, len(nodes))
	for i, node := range nodes {
		backends[i] = node.backend
	}
	joiner, jdb, _ := newJoiner(t, manifestPath, m, 0, t.TempDir())

	report, err := fleet.JoinReplica(context.Background(), backends, joiner, fleet.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(len(fixDeltas))
	if report.ReferenceSeq != want || report.Before != 0 || report.After != want {
		t.Fatalf("join moved %d→%d against reference seq %d, want 0→%d", report.Before, report.After, report.ReferenceSeq, want)
	}
	if report.Backfilled != len(fixDeltas) || !report.Identical {
		t.Fatalf("report = %+v, want %d backfilled and identical", report, len(fixDeltas))
	}

	// The joiner's state must equal an always-healthy replica of the
	// range: snapshot + every delta applied directly in fleet order.
	twin, _, err := snapshot.LoadVerifiedShard(manifestPath, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rv := range fixDeltas {
		if err := twin.ApplyReview(rv); err != nil {
			t.Fatal(err)
		}
	}
	wantFP, _ := harness.QueryFingerprint(fixData, twin)
	if gotFP, _ := harness.QueryFingerprint(fixData, jdb); gotFP != wantFP {
		t.Fatal("joined node's state diverges from an always-healthy replica")
	}

	// A second pass is a no-op that still proves identity.
	again, err := fleet.JoinReplica(context.Background(), backends, joiner, fleet.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Backfilled != 0 || !again.Identical {
		t.Fatalf("second pass = %+v, want nothing to do and identical", again)
	}
}

func TestJoinReplicaRefusesUnfit(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	manifestPath := writeFleet(t, dir, 2)
	m, nodes, rt := serveFleet(t, manifestPath, router.Options{})
	ingestThrough(t, rt, fixDeltas)
	backends := make([]fleet.Backend, len(nodes))
	for i, node := range nodes {
		backends[i] = node.backend
	}

	// A joiner without a journal surface can never carry the fleet order.
	db, _, err := snapshot.LoadVerifiedShard(manifestPath, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	bare := router.NewLocalBackend("bare", db, server.Options{})
	if _, err := fleet.JoinReplica(context.Background(), backends, bare, fleet.JoinOptions{}); err == nil ||
		!strings.Contains(err.Error(), "must journal") {
		t.Fatalf("journal-less joiner: got %v, want a must-journal refusal", err)
	}

	// A joiner whose journal holds a record the fleet never saw has
	// diverged; join refuses rather than full-syncing away its history.
	diverged, _, _ := newJoiner(t, manifestPath, m, 0, t.TempDir())
	rogue, err := json.Marshal(server.ReviewRequest{
		ID: "rogue-1", EntityID: m.Shard[0].FirstEntity, Reviewer: "rogue", Day: 1, Text: "not the fleet's record",
	})
	if err != nil {
		t.Fatal(err)
	}
	if status, body, err := diverged.Do(context.Background(), "POST", "/reviews", rogue); err != nil || status != http.StatusOK {
		t.Fatalf("seeding rogue write: status %d err %v body %s", status, err, body)
	}
	if _, err := fleet.JoinReplica(context.Background(), backends, diverged, fleet.JoinOptions{}); err == nil ||
		!strings.Contains(err.Error(), "diverges") {
		t.Fatalf("diverged joiner: got %v, want a divergence refusal", err)
	}
}
