// Package fleet is the control plane of a sharded OpineDB deployment —
// the first subsystem that treats the fleet, not one process, as the
// unit of correctness.
//
// The data plane (internal/router over internal/server replicas) keeps a
// healthy fleet byte-identical to the monolith: every replicated write
// lands on every shard in one fleet-wide order, journaled per node
// (internal/journal). This package closes the two gaps that remain when
// the fleet is not healthy:
//
//   - Anti-entropy write-repair (repair.go). A replica that missed
//     replicated writes — reported `partial` by the router — drifts in
//     its corpus-global interpretation state. Repair diffs last-applied
//     journal sequences across the fleet (GET /journal/status), proves
//     prefix containment with a hash chain, streams the missing tail
//     from the most advanced replica (GET /journal/records), and
//     backfills laggards through the existing replica-write path
//     (POST /reviews with the replica flag), which re-applies each delta
//     under the target's write lock and journals it locally. A laggard
//     that was simply down converges to byte-identical interpretation
//     state, because the backfill replays the exact missed suffix in
//     fleet order.
//
//   - Online N→M shard rebalancing (rebalance.go). Rebalance loads an
//     N-shard fleet (snapshots + unreplayed journals), merges it back
//     into the monolith-equivalent database (core.MergeShards — the
//     replicated global state comes from any shard, the partitioned
//     state is the union), re-partitions the entity space M ways
//     (core.Shards), and commits a fresh M-shard snapshot set + manifest
//     crash-safely: generation-named artifacts, a cleanup-intent sidecar,
//     temp-dir + rename, and a single manifest-rename commit point, so
//     the operation is idempotent on retry after a crash at any step —
//     with no full corpus rebuild.
//
// Both operations preserve the repo's standing contract: a repaired or
// rebalanced fleet answers the full harness query fingerprint
// byte-identically to the monolith (enforced end to end in
// internal/fleet/e2e_test.go).
package fleet

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/server"
)

// Backend executes one node-API request — the HTTP JSON surface of
// internal/server. It is structurally identical to internal/router's
// Backend, so a router's shard backends satisfy it directly (the router
// hands its own backends to Repair after a partial write).
type Backend interface {
	// Name identifies the node in reports ("shard 2 @ :8082").
	Name() string
	// Do performs method on target (path + raw query) with an optional
	// JSON body, returning the status code and response body.
	Do(ctx context.Context, method, target string, body []byte) (status int, respBody []byte, err error)
}

// getJSON performs a GET against a node and decodes the JSON response,
// reporting the HTTP status alongside any error (callers distinguish a
// deliberate 404 — no journal surface — from a transport failure).
func getJSON(ctx context.Context, b Backend, target string, out interface{}) (int, error) {
	status, body, err := b.Do(ctx, "GET", target, nil)
	if err != nil {
		return 0, err
	}
	if status != 200 {
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &env) == nil && env.Error != "" {
			return status, fmt.Errorf("status %d: %s", status, env.Error)
		}
		return status, fmt.Errorf("status %d", status)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return status, fmt.Errorf("bad response: %v", err)
	}
	return status, nil
}

// journalStatus fetches a node's journal introspection report; at > 0
// bounds the prefix hash at that sequence.
func journalStatus(ctx context.Context, b Backend, at uint64) (server.JournalStatusResponse, int, error) {
	target := "/journal/status"
	if at > 0 {
		target = fmt.Sprintf("/journal/status?at=%d", at)
	}
	var st server.JournalStatusResponse
	status, err := getJSON(ctx, b, target, &st)
	return st, status, err
}

// journalRecords fetches one page of a node's journal records starting
// at from.
func journalRecords(ctx context.Context, b Backend, from uint64, limit int) (server.JournalRecordsResponse, error) {
	var page server.JournalRecordsResponse
	_, err := getJSON(ctx, b, fmt.Sprintf("/journal/records?from=%d&limit=%d", from, limit), &page)
	return page, err
}
