package ir

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: a constant boost of 1 leaves the ranking identical to
// unboosted search.
func TestUnitBoostIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ix := NewIndex()
	vocab := []string{"clean", "dirty", "room", "staff", "noise", "view"}
	for d := 0; d < 40; d++ {
		n := 2 + rng.Intn(15)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = vocab[rng.Intn(len(vocab))]
		}
		ix.Add(fmt.Sprintf("doc%02d", d), toks)
	}
	one := func(string) float64 { return 1 }
	f := func(q1, q2 uint8) bool {
		query := []string{vocab[int(q1)%len(vocab)], vocab[int(q2)%len(vocab)]}
		a := ix.Search(query, 10)
		b := ix.SearchBoosted(query, 10, one)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaling every boost by a positive constant preserves the
// ranking order (scores scale, order does not change).
func TestBoostScaleInvariance(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", []string{"clean", "room", "clean"})
	ix.Add("b", []string{"clean", "staff"})
	ix.Add("c", []string{"room", "room"})
	base := func(id string) float64 {
		return map[string]float64{"a": 0.9, "b": 0.5, "c": 0.7}[id]
	}
	doubled := func(id string) float64 { return 2 * base(id) }
	r1 := ix.SearchBoosted([]string{"clean", "room"}, 10, base)
	r2 := ix.SearchBoosted([]string{"clean", "room"}, 10, doubled)
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].ID != r2[i].ID {
			t.Errorf("pos %d: %s vs %s", i, r1[i].ID, r2[i].ID)
		}
	}
}

// Property: zero boost removes a document entirely regardless of its
// BM25 score.
func TestZeroBoostExcludes(t *testing.T) {
	ix := NewIndex()
	ix.Add("strong", []string{"clean", "clean", "clean"})
	ix.Add("weak", []string{"clean", "filler", "filler", "filler"})
	boost := func(id string) float64 {
		if id == "strong" {
			return 0
		}
		return 1
	}
	res := ix.SearchBoosted([]string{"clean"}, 10, boost)
	for _, r := range res {
		if r.ID == "strong" {
			t.Error("zero-boosted doc returned")
		}
	}
	if len(res) != 1 {
		t.Errorf("got %d results", len(res))
	}
}

func TestDFAndIDF(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", []string{"x", "y"})
	ix.Add("b", []string{"x"})
	ix.Add("c", []string{"z"})
	if ix.DF("x") != 2 || ix.DF("y") != 1 || ix.DF("missing") != 0 {
		t.Errorf("DF wrong: x=%d y=%d", ix.DF("x"), ix.DF("y"))
	}
	if ix.IDF("y") <= ix.IDF("x") {
		t.Error("rarer term should have higher IDF")
	}
	if ix.IDF("missing") <= ix.IDF("y") {
		t.Error("missing term should have the highest IDF")
	}
}
