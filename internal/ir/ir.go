// Package ir implements the information-retrieval substrate of OpineDB:
// an inverted index with Okapi BM25 ranking and heap-based top-k retrieval.
//
// The paper uses BM25 in three roles, all served by this package:
//  1. the co-occurrence interpreter ranks reviews by BM25(d,q)·senti(d)
//     (Eq. 3);
//  2. the text-retrieval fallback scores entity documents by
//     sigmoid(BM25(D,q) − c);
//  3. the GZ12 baseline (opinion-based entity ranking) is pure BM25 over
//     per-entity concatenated review documents.
package ir

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/textproc"
)

// BM25 free parameters; the classic defaults from Robertson et al.
const (
	k1 = 1.2
	b  = 0.75
)

// Posting records one document's term frequency for a term. Exported
// (with exported fields) so the index state can be serialized by the
// snapshot layer without conversion.
type Posting struct {
	Doc int
	TF  int
}

// Index is an inverted index over documents added with Add. The zero value
// is not usable; call NewIndex.
type Index struct {
	postings map[string][]Posting
	docLen   []int
	docIDs   []string // external ids, parallel to internal doc numbers
	byExtID  map[string]int
	totalLen int64
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string][]Posting),
		byExtID:  make(map[string]int),
	}
}

// Add indexes a document under the external id. Adding the same id twice
// creates two separate documents; callers are expected to use unique ids.
// It returns the internal document number.
func (ix *Index) Add(id string, tokens []string) int {
	doc := len(ix.docLen)
	ix.docIDs = append(ix.docIDs, id)
	ix.byExtID[id] = doc
	ix.docLen = append(ix.docLen, len(tokens))
	ix.totalLen += int64(len(tokens))
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	for t, n := range tf {
		ix.postings[t] = append(ix.postings[t], Posting{Doc: doc, TF: n})
	}
	return doc
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docLen) }

// DF returns the number of indexed documents containing term.
func (ix *Index) DF(term string) int { return len(ix.postings[term]) }

// IDF exposes the BM25 idf of a term for callers that gate on term
// informativeness (the co-occurrence interpreter).
func (ix *Index) IDF(term string) float64 { return ix.idf(term) }

// AvgDocLen returns the mean document length.
func (ix *Index) AvgDocLen() float64 {
	if len(ix.docLen) == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(len(ix.docLen))
}

// idf is the BM25 idf with the standard +1 floor to keep scores
// non-negative.
func (ix *Index) idf(term string) float64 {
	n := float64(len(ix.postings[term]))
	N := float64(len(ix.docLen))
	return math.Log(1 + (N-n+0.5)/(n+0.5))
}

// Result is a scored document.
type Result struct {
	ID    string
	Score float64
}

// resultHeap is a min-heap on Score used for top-k selection. Ties break
// by id — the worst element among equals is the lexicographically largest
// id — so the retained top-k set is deterministic even though candidates
// arrive in map-iteration order.
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search returns the top-k documents by BM25 score for the query tokens,
// sorted by descending score (ties broken by id for determinism).
// Documents with zero score are omitted.
func (ix *Index) Search(query []string, k int) []Result {
	return ix.SearchBoosted(query, k, nil)
}

// SearchBoosted is Search with an optional per-document multiplicative
// boost (by external id). This implements Eq. 3's BM25(d,q)·senti(d)
// without a second pass: the co-occurrence interpreter passes the
// precomputed positive-sentiment weight of each review as the boost.
// A nil boost function means no boosting. Documents whose boosted score is
// <= 0 are omitted.
func (ix *Index) SearchBoosted(query []string, k int, boost func(id string) float64) []Result {
	if k <= 0 || len(ix.docLen) == 0 {
		return nil
	}
	scores := make(map[int]float64)
	avg := ix.AvgDocLen()
	seen := make(map[string]bool, len(query))
	for _, term := range query {
		if seen[term] {
			continue // query terms are deduplicated, standard BM25 practice
		}
		seen[term] = true
		plist, ok := ix.postings[term]
		if !ok {
			continue
		}
		idf := ix.idf(term)
		for _, p := range plist {
			tf := float64(p.TF)
			dl := float64(ix.docLen[p.Doc])
			scores[p.Doc] += idf * tf * (k1 + 1) / (tf + k1*(1-b+b*dl/avg))
		}
	}
	h := make(resultHeap, 0, k+1)
	heap.Init(&h)
	for doc, s := range scores {
		id := ix.docIDs[doc]
		if boost != nil {
			s *= boost(id)
		}
		if s <= 0 {
			continue
		}
		heap.Push(&h, Result{ID: id, Score: s})
		if h.Len() > k {
			heap.Pop(&h)
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Result)
	}
	// Stable ordering for equal scores.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Score returns the BM25 score of a single document (by external id) for
// the query tokens; 0 if the id is unknown. Used by the text-retrieval
// fallback, which scores one entity document at a time.
func (ix *Index) Score(id string, query []string) float64 {
	doc, ok := ix.byExtID[id]
	if !ok {
		return 0
	}
	avg := ix.AvgDocLen()
	var s float64
	seen := make(map[string]bool, len(query))
	for _, term := range query {
		if seen[term] {
			continue
		}
		seen[term] = true
		for _, p := range ix.postings[term] {
			if p.Doc != doc {
				continue
			}
			tf := float64(p.TF)
			dl := float64(ix.docLen[doc])
			s += ix.idf(term) * tf * (k1 + 1) / (tf + k1*(1-b+b*dl/avg))
			break
		}
	}
	return s
}

// Sigmoid converts a BM25 score into a pseudo degree of truth,
// sigmoid(score − c), as the text-retrieval fallback of §3.2 prescribes.
func Sigmoid(score, c float64) float64 {
	x := score - c
	if x > 20 {
		return 1
	}
	if x < -20 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// IndexState is the exported serialization seam for Index: the complete
// inverted-index state except byExtID, which is rebuilt from DocIDs on
// reconstruction. Slices and maps are shared with the live index, not
// copied — treat a state taken from a live Index as read-only.
type IndexState struct {
	Postings map[string][]Posting
	DocLen   []int
	DocIDs   []string
	TotalLen int64
}

// State exports the index for serialization.
func (ix *Index) State() IndexState {
	return IndexState{Postings: ix.postings, DocLen: ix.docLen, DocIDs: ix.docIDs, TotalLen: ix.totalLen}
}

// NewIndexFromState reconstructs an index from exported state. BM25 scores
// from the reconstructed index are bit-identical to the original's: every
// statistic entering the formula (tf, df, doc lengths, totals) is restored
// exactly, and posting-list order is preserved.
func NewIndexFromState(st IndexState) (*Index, error) {
	if len(st.DocLen) != len(st.DocIDs) {
		return nil, fmt.Errorf("ir: state has %d doc lengths but %d doc ids", len(st.DocLen), len(st.DocIDs))
	}
	n := len(st.DocIDs)
	for term, plist := range st.Postings {
		for _, p := range plist {
			if p.Doc < 0 || p.Doc >= n {
				return nil, fmt.Errorf("ir: state posting for %q references doc %d of %d", term, p.Doc, n)
			}
		}
	}
	ix := &Index{
		postings: st.Postings,
		docLen:   st.DocLen,
		docIDs:   st.DocIDs,
		byExtID:  make(map[string]int, n),
		totalLen: st.TotalLen,
	}
	if ix.postings == nil {
		ix.postings = make(map[string][]Posting)
	}
	// Rebuild the external-id lookup exactly as repeated Add calls would:
	// later duplicates win.
	for doc, id := range ix.docIDs {
		ix.byExtID[id] = doc
	}
	return ix, nil
}

// EntityDocs builds one concatenated document per entity from its reviews,
// following GZ12's entity-document model ("represents each entity by a
// single document D obtained by combining all source reviews").
func EntityDocs(reviewsByEntity map[string][]string) *Index {
	ix := NewIndex()
	ids := make([]string, 0, len(reviewsByEntity))
	for id := range reviewsByEntity {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic internal numbering
	for _, id := range ids {
		var tokens []string
		for _, rv := range reviewsByEntity[id] {
			tokens = append(tokens, textproc.Tokenize(rv)...)
		}
		ix.Add(id, tokens)
	}
	return ix
}
