package ir

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

func buildIndex() *Index {
	ix := NewIndex()
	ix.Add("h1", textproc.Tokenize("the room was clean and the staff was friendly"))
	ix.Add("h2", textproc.Tokenize("dirty room dirty bathroom dirty everything"))
	ix.Add("h3", textproc.Tokenize("clean clean clean room spotless"))
	ix.Add("h4", textproc.Tokenize("the breakfast was delicious and generous"))
	return ix
}

func TestSearchRanking(t *testing.T) {
	ix := buildIndex()
	res := ix.Search([]string{"clean"}, 10)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2 (h1, h3)", len(res))
	}
	if res[0].ID != "h3" {
		t.Errorf("top result = %s, want h3 (highest tf)", res[0].ID)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Error("results not sorted descending")
		}
	}
}

func TestSearchTopK(t *testing.T) {
	ix := buildIndex()
	res := ix.Search([]string{"room"}, 2)
	if len(res) != 2 {
		t.Fatalf("k=2 returned %d", len(res))
	}
	all := ix.Search([]string{"room"}, 100)
	if res[0].ID != all[0].ID || res[1].ID != all[1].ID {
		t.Error("top-2 disagrees with full ranking prefix")
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := buildIndex()
	if res := ix.Search([]string{"nonexistentterm"}, 5); len(res) != 0 {
		t.Errorf("got %v for unseen term", res)
	}
	if res := ix.Search([]string{"room"}, 0); res != nil {
		t.Errorf("k=0 should return nil")
	}
}

func TestSearchEmptyIndex(t *testing.T) {
	ix := NewIndex()
	if res := ix.Search([]string{"x"}, 3); len(res) != 0 {
		t.Errorf("empty index returned %v", res)
	}
	if ix.AvgDocLen() != 0 {
		t.Error("AvgDocLen on empty index should be 0")
	}
}

func TestQueryTermDedup(t *testing.T) {
	ix := buildIndex()
	a := ix.Search([]string{"clean"}, 10)
	b := ix.Search([]string{"clean", "clean", "clean"}, 10)
	if len(a) != len(b) {
		t.Fatal("dedup changed result count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("duplicate query terms changed scores: %v vs %v", a[i], b[i])
		}
	}
}

func TestBM25NonNegative(t *testing.T) {
	ix := buildIndex()
	f := func(terms []string) bool {
		for _, r := range ix.Search(terms, 10) {
			if r.Score < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreSingleDoc(t *testing.T) {
	ix := buildIndex()
	res := ix.Search([]string{"clean", "room"}, 10)
	for _, r := range res {
		if s := ix.Score(r.ID, []string{"clean", "room"}); s != r.Score {
			t.Errorf("Score(%s) = %v, Search gave %v", r.ID, s, r.Score)
		}
	}
	if s := ix.Score("unknown", []string{"clean"}); s != 0 {
		t.Errorf("unknown doc score = %v", s)
	}
}

func TestSearchBoosted(t *testing.T) {
	ix := buildIndex()
	// Boost h1 heavily; suppress h3 to zero.
	boost := func(id string) float64 {
		switch id {
		case "h1":
			return 10
		case "h3":
			return 0
		default:
			return 1
		}
	}
	res := ix.SearchBoosted([]string{"clean"}, 10, boost)
	if len(res) != 1 || res[0].ID != "h1" {
		t.Errorf("boosted search = %v, want only h1", res)
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	// Property: heap top-k must equal the first k of the fully sorted list.
	rng := rand.New(rand.NewSource(11))
	ix := NewIndex()
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for d := 0; d < 60; d++ {
		n := 3 + rng.Intn(20)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = vocab[rng.Intn(len(vocab))]
		}
		ix.Add(fmt.Sprintf("d%02d", d), toks)
	}
	query := []string{"alpha", "gamma"}
	full := ix.Search(query, 1000)
	for _, k := range []int{1, 3, 7, 20} {
		got := ix.Search(query, k)
		want := full
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("k=%d pos %d: got %v want %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := NewIndex()
	ix.Add("b", []string{"x", "pad"})
	ix.Add("a", []string{"x", "pad"})
	res := ix.Search([]string{"x"}, 10)
	if len(res) != 2 || res[0].ID != "a" {
		t.Errorf("ties must break by id: %v", res)
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(5, 5); s != 0.5 {
		t.Errorf("Sigmoid(5,5) = %v, want 0.5", s)
	}
	if s := Sigmoid(100, 0); s != 1 {
		t.Errorf("saturated high = %v", s)
	}
	if s := Sigmoid(-100, 0); s != 0 {
		t.Errorf("saturated low = %v", s)
	}
	// Monotone.
	prev := -1.0
	for x := -10.0; x <= 10; x += 0.5 {
		v := Sigmoid(x, 0)
		if v < prev {
			t.Fatal("sigmoid not monotone")
		}
		prev = v
	}
}

func TestEntityDocs(t *testing.T) {
	docs := map[string][]string{
		"hotelA": {"The room was clean.", "Great breakfast."},
		"hotelB": {"Dirty bathroom."},
	}
	ix := EntityDocs(docs)
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
	res := ix.Search([]string{"clean"}, 5)
	if len(res) != 1 || res[0].ID != "hotelA" {
		t.Errorf("Search(clean) = %v", res)
	}
	res = ix.Search([]string{"dirty"}, 5)
	if len(res) != 1 || res[0].ID != "hotelB" {
		t.Errorf("Search(dirty) = %v", res)
	}
}

func TestEntityDocsDeterministicOrder(t *testing.T) {
	docs := map[string][]string{"z": {"a b"}, "a": {"a b"}, "m": {"a b"}}
	ix1 := EntityDocs(docs)
	ix2 := EntityDocs(docs)
	r1 := ix1.Search([]string{"a"}, 10)
	r2 := ix2.Search([]string{"a"}, 10)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("EntityDocs is nondeterministic")
		}
	}
	ids := []string{r1[0].ID, r1[1].ID, r1[2].ID}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("equal-score ids not sorted: %v", ids)
	}
}

func TestAvgDocLen(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", []string{"x", "y"})
	ix.Add("b", []string{"x", "y", "z", "w"})
	if got := ix.AvgDocLen(); got != 3 {
		t.Errorf("AvgDocLen = %v, want 3", got)
	}
}
