package snapshot_test

// Round-trip determinism and corruption handling of the snapshot layer.
//
// The contract under test is the tentpole guarantee: build → save → load
// must yield a database whose Query, TopKThreshold and Interpret answers
// are byte-identical (exact float bits) to the freshly built one, under
// concurrent readers, and every way a file can be unusable — truncation,
// bit rot, wrong version, wrong magic, missing file — must surface as a
// typed error, never a panic.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/snapshot"
)

// Shared fixture: one small hotel corpus + built DB + saved snapshot.
var (
	fixOnce   sync.Once
	fixData   *corpus.Dataset
	fixDB     *core.DB
	fixBytes  []byte
	fixErr    error
	fixErrCtx string
)

func fixtures(t *testing.T) (*corpus.Dataset, *core.DB, []byte) {
	t.Helper()
	fixOnce.Do(func() {
		genCfg := corpus.SmallConfig()
		fixData = corpus.GenerateHotels(genCfg)
		cfg := core.DefaultConfig()
		cfg.MarkersPerAttr = 6
		cfg.UseSubstitutionIndex = true // exercise the optional section
		fixDB, fixErr = harness.BuildDB(fixData, cfg, 400, 300)
		if fixErr != nil {
			fixErrCtx = "build"
			return
		}
		dir, err := os.MkdirTemp("", "snapshot-fixture-*")
		if err != nil {
			fixErr, fixErrCtx = err, "tempdir"
			return
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "fixture.snap")
		if _, fixErr = snapshot.Save(path, fixDB); fixErr != nil {
			fixErrCtx = "save"
			return
		}
		fixBytes, fixErr = os.ReadFile(path)
		if fixErr != nil {
			fixErrCtx = "read"
		}
	})
	if fixErr != nil {
		t.Fatalf("fixture %s: %v", fixErrCtx, fixErr)
	}
	return fixData, fixDB, fixBytes
}

// writeSnap materializes raw snapshot bytes as a file for Load.
func writeSnap(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadFixture loads the fixture snapshot from a fresh file.
func loadFixture(t *testing.T) (*core.DB, *snapshot.Meta) {
	t.Helper()
	_, _, raw := fixtures(t)
	db, meta, err := snapshot.Load(writeSnap(t, raw))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return db, meta
}

// TestRoundTripEquivalence is the tentpole acceptance check: the loaded
// database answers the full harness query set — every bank predicate's
// interpretation, ranked query and TA top-k — byte-identically to the
// built one.
func TestRoundTripEquivalence(t *testing.T) {
	d, built, _ := fixtures(t)
	loaded, _ := loadFixture(t)
	builtFP, n := harness.QueryFingerprint(d, built)
	loadedFP, _ := harness.QueryFingerprint(d, loaded)
	if n == 0 {
		t.Fatal("query fingerprint covered nothing")
	}
	if builtFP != loadedFP {
		t.Fatalf("loaded DB diverges from built DB over %d query-set entries:\n%s",
			n, firstDiff(builtFP, loadedFP))
	}
	t.Logf("loaded DB byte-identical to built DB over %d query-set entries", n)
}

// TestRoundTripMeta checks the stored metadata round-trips and the load
// path reports its own timing and layout.
func TestRoundTripMeta(t *testing.T) {
	d, built, _ := fixtures(t)
	_, meta := loadFixture(t)
	if meta.FormatVersion != snapshot.FormatVersion {
		t.Errorf("format version %d, want %d", meta.FormatVersion, snapshot.FormatVersion)
	}
	if meta.Name != "hotel" {
		t.Errorf("name %q, want hotel", meta.Name)
	}
	if meta.BuildSeed != built.Config().Seed {
		t.Errorf("build seed %d, want %d", meta.BuildSeed, built.Config().Seed)
	}
	if meta.Entities != len(d.Entities) || meta.Reviews != len(d.Reviews) {
		t.Errorf("corpus size %d/%d, want %d/%d", meta.Entities, meta.Reviews, len(d.Entities), len(d.Reviews))
	}
	if meta.Extractions != len(built.Extractions) {
		t.Errorf("extractions %d, want %d", meta.Extractions, len(built.Extractions))
	}
	if meta.LoadDuration <= 0 {
		t.Error("load duration not recorded")
	}
	want := map[string]bool{
		snapshot.SectionMeta: true, snapshot.SectionRel: true, snapshot.SectionCore: true,
		snapshot.SectionEmbedding: true, snapshot.SectionReviewIndex: true,
		snapshot.SectionEntityIndex: true, snapshot.SectionExtractor: true,
		snapshot.SectionSubIndex: true,
	}
	for _, s := range meta.Sections {
		if !want[s.Name] {
			t.Errorf("unexpected section %q", s.Name)
		}
		delete(want, s.Name)
	}
	for name := range want {
		t.Errorf("missing section %q", name)
	}
}

// TestLoadedConcurrentReads drives the loaded database from many
// goroutines under the race detector: the reconstructed caches must
// uphold core's unlimited-concurrent-readers contract, and every
// goroutine must see the same answers.
func TestLoadedConcurrentReads(t *testing.T) {
	d, _, _ := fixtures(t)
	loaded, _ := loadFixture(t)
	preds := make([]string, 0, 8)
	for _, p := range d.Predicates {
		if p.Kind == corpus.KindMarker || p.Kind == corpus.KindParaphrase {
			preds = append(preds, p.Text)
			if len(preds) == 8 {
				break
			}
		}
	}
	if len(preds) < 2 {
		t.Skip("predicate bank too small")
	}
	opts := core.DefaultQueryOptions()
	sequential := make([]string, len(preds))
	for i, p := range preds {
		res, err := loaded.RankPredicates([]string{p}, nil, opts)
		if err != nil {
			t.Fatalf("sequential %q: %v", p, err)
		}
		sequential[i] = renderRows(res)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(preds)*3; i++ {
				pi := (g + i) % len(preds)
				res, err := loaded.RankPredicates([]string{preds[pi]}, nil, opts)
				if err != nil {
					errs <- err
					return
				}
				if got := renderRows(res); got != sequential[pi] {
					errs <- errors.New("concurrent result diverged from sequential: " + preds[pi])
					return
				}
				if _, _, err := loaded.TopKThreshold(preds[pi:pi+1], 5); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func renderRows(res *core.QueryResult) string {
	out := ""
	for _, r := range res.Rows {
		out += r.EntityID + "," // scores compared via fingerprint test
	}
	return out
}

// parseLayout walks the documented container layout (magic, version,
// count, section table, payloads) independently of the package's own
// parser, returning section name → (payload, crc). It doubles as a
// format-layout regression test: if the writer's layout drifts from the
// documented one, this parser breaks.
func parseLayout(t *testing.T, data []byte) map[string]struct {
	payload []byte
	crc     uint32
} {
	t.Helper()
	if string(data[:8]) != snapshot.Magic {
		t.Fatalf("magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != snapshot.FormatVersion {
		t.Fatalf("version %d", v)
	}
	count := int(binary.LittleEndian.Uint32(data[12:]))
	off := 16
	type entry struct {
		name string
		size int
		crc  uint32
	}
	var entries []entry
	for i := 0; i < count; i++ {
		nameLen := int(binary.LittleEndian.Uint16(data[off:]))
		name := string(data[off+2 : off+2+nameLen])
		size := int(binary.LittleEndian.Uint64(data[off+2+nameLen:]))
		crc := binary.LittleEndian.Uint32(data[off+10+nameLen:])
		off += 14 + nameLen
		entries = append(entries, entry{name: name, size: size, crc: crc})
	}
	out := map[string]struct {
		payload []byte
		crc     uint32
	}{}
	for _, e := range entries {
		out[e.name] = struct {
			payload []byte
			crc     uint32
		}{payload: data[off : off+e.size], crc: e.crc}
		off += e.size
	}
	if off != len(data) {
		t.Fatalf("layout accounts for %d of %d bytes", off, len(data))
	}
	return out
}

// TestArtifactByteStability: two saves of the same built DB produce
// byte-identical payloads for every section except meta (which carries
// the creation timestamp), so operators can hash artifacts to confirm
// replicas serve the same build.
func TestArtifactByteStability(t *testing.T) {
	_, _, raw := fixtures(t)
	_, db, _ := fixtures(t)
	path := filepath.Join(t.TempDir(), "again.snap")
	if _, err := snapshot.Save(path, db); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := parseLayout(t, raw), parseLayout(t, raw2)
	if len(a) != len(b) {
		t.Fatalf("section counts differ: %d vs %d", len(a), len(b))
	}
	for name, sa := range a {
		sb, ok := b[name]
		if !ok {
			t.Fatalf("second save lacks section %q", name)
		}
		if name == snapshot.SectionMeta {
			continue // creation timestamp varies
		}
		if sa.crc != sb.crc || !bytes.Equal(sa.payload, sb.payload) {
			t.Errorf("section %q is not byte-stable across identical saves", name)
		}
	}
}

// TestCorruptionTruncated: every truncation point must produce a typed
// error (ErrTruncated, or ErrBadMagic when even the magic is cut), and
// never a panic or a silently wrong database.
func TestCorruptionTruncated(t *testing.T) {
	_, _, raw := fixtures(t)
	for _, n := range []int{0, 3, 7, 8, 11, 15, 40, len(raw) / 2, len(raw) - 1} {
		if n >= len(raw) {
			continue
		}
		_, _, err := snapshot.Load(writeSnap(t, raw[:n]))
		if err == nil {
			t.Fatalf("truncation to %d bytes loaded successfully", n)
		}
		if !errors.Is(err, snapshot.ErrTruncated) && !errors.Is(err, snapshot.ErrBadMagic) {
			t.Errorf("truncation to %d bytes: got %v, want ErrTruncated/ErrBadMagic", n, err)
		}
	}
}

// TestCorruptionChecksum: a flipped payload bit fails the section CRC.
func TestCorruptionChecksum(t *testing.T) {
	_, _, raw := fixtures(t)
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0x40 // last payload byte
	_, _, err := snapshot.Load(writeSnap(t, bad))
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
	bad = append([]byte(nil), raw...)
	bad[len(raw)/2] ^= 0x01 // a middle payload byte
	if _, _, err := snapshot.Load(writeSnap(t, bad)); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("middle flip: got %v, want ErrChecksum", err)
	}
}

// TestCorruptionVersion: a future format version is refused up front.
func TestCorruptionVersion(t *testing.T) {
	_, _, raw := fixtures(t)
	bad := append([]byte(nil), raw...)
	bad[8] = 0x63 // version field little-endian low byte → 99
	_, _, err := snapshot.Load(writeSnap(t, bad))
	if !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestCorruptionMagic: a non-snapshot file is identified as such.
func TestCorruptionMagic(t *testing.T) {
	_, _, raw := fixtures(t)
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, _, err := snapshot.Load(writeSnap(t, bad)); !errors.Is(err, snapshot.ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	if _, _, err := snapshot.Load(writeSnap(t, []byte("definitely not a snapshot file"))); !errors.Is(err, snapshot.ErrBadMagic) {
		t.Fatalf("text file: got %v, want ErrBadMagic", err)
	}
}

// TestCorruptionTrailing: trailing garbage after the declared sections is
// rejected with the typed error rather than ignored.
func TestCorruptionTrailing(t *testing.T) {
	_, _, raw := fixtures(t)
	bad := append(append([]byte(nil), raw...), "extra"...)
	if _, _, err := snapshot.Load(writeSnap(t, bad)); !errors.Is(err, snapshot.ErrTrailingData) {
		t.Fatalf("got %v, want ErrTrailingData", err)
	}
}

// TestRandomMutationsReturnTypedErrors: single-byte mutations of a valid
// snapshot at 300 seeded-random positions must every one surface as a
// typed snapshot error — never a panic, never a silently loaded database.
// (FuzzSnapshotLoad explores arbitrary inputs; this pins the specific
// random-bit-rot contract deterministically in the regular suite.)
func TestRandomMutationsReturnTypedErrors(t *testing.T) {
	_, _, raw := fixtures(t)
	rng := rand.New(rand.NewSource(42))
	typed := []error{
		snapshot.ErrBadMagic, snapshot.ErrVersion, snapshot.ErrTruncated,
		snapshot.ErrChecksum, snapshot.ErrMissingSection, snapshot.ErrTrailingData,
	}
	bad := append([]byte(nil), raw...)
	for trial := 0; trial < 300; trial++ {
		pos := rng.Intn(len(bad))
		old := bad[pos]
		flip := byte(1 + rng.Intn(255))
		bad[pos] = old ^ flip
		_, _, err := snapshot.Load(writeSnap(t, bad))
		bad[pos] = old // restore for the next independent trial
		if err == nil {
			t.Fatalf("mutation at offset %d (^%02x) loaded successfully", pos, flip)
		}
		isTyped := false
		for _, want := range typed {
			if errors.Is(err, want) {
				isTyped = true
				break
			}
		}
		if !isTyped {
			t.Fatalf("mutation at offset %d (^%02x): untyped error %v", pos, flip, err)
		}
	}
}

// TestMissingFile: a nonexistent path surfaces fs.ErrNotExist so the
// daemon can distinguish "no snapshot yet" (fall back to building) from
// "snapshot corrupt" (operator error).
func TestMissingFile(t *testing.T) {
	_, _, err := snapshot.Load(filepath.Join(t.TempDir(), "nope.snap"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("got %v, want fs.ErrNotExist", err)
	}
}

// firstDiff returns the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  built:  %s\n  loaded: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(al), len(bl))
}
