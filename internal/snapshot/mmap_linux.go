//go:build linux

package snapshot

import (
	"os"
	"syscall"
)

// readSnapshotFile maps the file read-only when the platform allows it,
// avoiding a full read-syscall copy of the artifact on the serving cold
// path; gob decoding copies everything it keeps, so the mapping is
// released as soon as loading finishes. Falls back to a plain read when
// mmap fails (e.g. special filesystems).
func readSnapshotFile(path string) (data []byte, cleanup func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if int64(int(size)) == size {
		m, merr := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
		if merr == nil {
			return m, func() { _ = syscall.Munmap(m) }, nil
		}
	}
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
