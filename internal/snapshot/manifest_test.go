package snapshot_test

// Shard-manifest integrity: round-trip, self-checksum tamper detection,
// structural validation, and snapshot digest verification.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

func validManifest() *snapshot.Manifest {
	return &snapshot.Manifest{
		FormatVersion: snapshot.FormatVersion,
		Name:          "hotel",
		BuildSeed:     1,
		Shards:        2,
		TotalEntities: 45,
		CreatedUnix:   1700000000,
		Shard: []snapshot.ManifestShard{
			{Index: 0, Path: "hotel-shard0.snap", Entities: 22, FirstEntity: "h0000", LastEntity: "h0021",
				SnapshotSHA256: "aa", SnapshotBytes: 10},
			{Index: 1, Path: "hotel-shard1.snap", Entities: 23, FirstEntity: "h0022", LastEntity: "h0044",
				SnapshotSHA256: "bb", SnapshotBytes: 10},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := snapshot.WriteManifest(path, validManifest()); err != nil {
		t.Fatal(err)
	}
	m, err := snapshot.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 2 || m.TotalEntities != 45 || m.Shard[1].FirstEntity != "h0022" {
		t.Errorf("round trip lost data: %+v", m)
	}
	if m.Checksum == "" {
		t.Error("checksum not recorded")
	}
}

func TestManifestTamperDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := snapshot.WriteManifest(path, validManifest()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the entity range of shard 1 without updating the checksum.
	tampered := strings.Replace(string(b), "h0022", "h0023", 1)
	if tampered == string(b) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.LoadManifest(path); !errors.Is(err, snapshot.ErrManifestChecksum) {
		t.Fatalf("got %v, want ErrManifestChecksum", err)
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	for name, mutate := range map[string]func(*snapshot.Manifest){
		"wrong version":     func(m *snapshot.Manifest) { m.FormatVersion = 99 },
		"count mismatch":    func(m *snapshot.Manifest) { m.Shards = 3 },
		"bad index":         func(m *snapshot.Manifest) { m.Shard[1].Index = 5 },
		"missing path":      func(m *snapshot.Manifest) { m.Shard[0].Path = "" },
		"missing digest":    func(m *snapshot.Manifest) { m.Shard[0].SnapshotSHA256 = "" },
		"empty shard":       func(m *snapshot.Manifest) { m.Shard[0].Entities = 0 },
		"entity accounting": func(m *snapshot.Manifest) { m.TotalEntities = 99 },
		"per-range length":  func(m *snapshot.Manifest) { m.ReplicasPerRange = []int{2} },
		"per-range sign":    func(m *snapshot.Manifest) { m.ReplicasPerRange = []int{2, -1} },
	} {
		m := validManifest()
		mutate(m)
		path := filepath.Join(dir, "bad.json")
		if err := snapshot.WriteManifest(path, m); err == nil {
			t.Errorf("%s: write accepted an invalid manifest", name)
		} else if !errors.Is(err, snapshot.ErrManifest) {
			t.Errorf("%s: got %v, want ErrManifest", name, err)
		}
	}
}

// TestReplicaCountNormalization pins the backward-compatible replica
// shape: bare manifests are single-replica, the uniform field applies
// everywhere, and per-range entries win over it.
func TestReplicaCountNormalization(t *testing.T) {
	cases := []struct {
		name     string
		uniform  int
		perRange []int
		want     []int // per shard of a 2-shard manifest
	}{
		{"bare", 0, nil, []int{1, 1}},
		{"uniform", 3, nil, []int{3, 3}},
		{"per-range", 0, []int{3, 1}, []int{3, 1}},
		{"per-range wins over uniform", 2, []int{3, 0}, []int{3, 1}},
	}
	for _, tc := range cases {
		m := validManifest()
		m.Replicas = tc.uniform
		m.ReplicasPerRange = tc.perRange
		path := filepath.Join(t.TempDir(), "m.json")
		if err := snapshot.WriteManifest(path, m); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		loaded, err := snapshot.LoadManifest(path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for shard, want := range tc.want {
			if got := loaded.ReplicaCount(shard); got != want {
				t.Errorf("%s: ReplicaCount(%d) = %d, want %d", tc.name, shard, got, want)
			}
		}
		// Out-of-range shards normalize rather than panic.
		if got := loaded.ReplicaCount(99); got < 1 {
			t.Errorf("%s: ReplicaCount(99) = %d", tc.name, got)
		}
	}
}

func TestParseReplicaSpec(t *testing.T) {
	cases := []struct {
		spec        string
		shards      int
		wantPer     []int
		wantUniform int
		wantErr     bool
	}{
		{"", 3, nil, 0, false},
		{"0", 3, nil, 0, false},
		{"3", 3, nil, 3, false},
		{" 2 ", 3, nil, 2, false},
		{"0=3,2=2", 3, []int{3, 1, 2}, 0, false},
		{"1=2", 3, []int{1, 2, 1}, 0, false},
		{"-1", 3, nil, 0, true},
		{"x", 3, nil, 0, true},
		{"3,0=2", 3, nil, 0, true},   // mixed forms
		{"0=2,1", 3, nil, 0, true},   // mixed forms, pair first
		{"3=2", 3, nil, 0, true},     // shard out of range
		{"0=0", 3, nil, 0, true},     // per-range count must be >= 1
		{"0=2,0=3", 3, nil, 0, true}, // duplicate shard
	}
	for _, tc := range cases {
		per, uniform, err := snapshot.ParseReplicaSpec(tc.spec, tc.shards)
		if tc.wantErr {
			if err == nil {
				t.Errorf("spec %q: accepted, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("spec %q: %v", tc.spec, err)
			continue
		}
		if uniform != tc.wantUniform {
			t.Errorf("spec %q: uniform = %d, want %d", tc.spec, uniform, tc.wantUniform)
		}
		if len(per) != len(tc.wantPer) {
			t.Errorf("spec %q: perRange = %v, want %v", tc.spec, per, tc.wantPer)
			continue
		}
		for i := range per {
			if per[i] != tc.wantPer[i] {
				t.Errorf("spec %q: perRange = %v, want %v", tc.spec, per, tc.wantPer)
				break
			}
		}
	}
}

func TestManifestNotJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.LoadManifest(path); !errors.Is(err, snapshot.ErrManifest) {
		t.Fatalf("got %v, want ErrManifest", err)
	}
}

func TestManifestMissingFile(t *testing.T) {
	if _, err := snapshot.LoadManifest(filepath.Join(t.TempDir(), "nope.json")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("got %v, want fs.ErrNotExist", err)
	}
}

func TestLoadVerifiedDigest(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "s0.snap")
	if err := os.WriteFile(snapPath, []byte("not a real snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	digest := hex.EncodeToString(sum[:])
	// The digest gate runs before any decoding: a wrong digest is
	// ErrShardDigest, a right digest proceeds into the parser (which
	// rejects this non-snapshot with ErrBadMagic).
	if _, _, err := snapshot.LoadVerified(snapPath, "0badd1ge5t"); !errors.Is(err, snapshot.ErrShardDigest) {
		t.Fatalf("got %v, want ErrShardDigest", err)
	}
	if _, _, err := snapshot.LoadVerified(snapPath, digest); !errors.Is(err, snapshot.ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic past the digest gate", err)
	}
}

// TestShardSectionRoundTrip checks the shard identity survives
// save → load on a real database.
func TestShardSectionRoundTrip(t *testing.T) {
	_, db, _ := fixtures(t)
	parts, err := db.PartitionEntities(2)
	if err != nil {
		t.Fatal(err)
	}
	keep := map[string]bool{}
	for _, id := range parts[0] {
		keep[id] = true
	}
	shardDB, err := db.ShardDB(func(id string) bool { return keep[id] })
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard0.snap")
	sm := &snapshot.ShardMeta{
		Index: 0, Count: 2,
		Entities: len(parts[0]), TotalEntities: len(db.EntityIDs()),
		FirstEntity: parts[0][0], LastEntity: parts[0][len(parts[0])-1],
	}
	if _, err := snapshot.SaveShard(path, shardDB, sm); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Shard == nil {
		t.Fatal("shard identity lost in round trip")
	}
	if *meta.Shard != *sm {
		t.Errorf("shard meta %+v, want %+v", *meta.Shard, *sm)
	}
	if got, want := len(loaded.EntityIDs()), len(parts[0]); got != want {
		t.Errorf("loaded shard serves %d entities, want %d", got, want)
	}
}
