package snapshot

// The shard manifest ties a sharded build together: one JSON document
// naming every per-shard snapshot with its entity range and content
// digest, self-checksummed so a torn or hand-edited manifest is detected
// before a router trusts it. opinedbb -shards writes it next to the shard
// snapshots; opinedbd (shard or router mode) loads it, verifies it, and
// verifies each snapshot file against its recorded digest before serving.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Typed manifest errors; match with errors.Is. Manifest loads can also
// return fs.ErrNotExist for a missing file.
var (
	// ErrManifest: the manifest is structurally invalid (bad shard count,
	// non-contiguous indices, missing fields, wrong version).
	ErrManifest = errors.New("snapshot: invalid shard manifest")
	// ErrManifestChecksum: the manifest's self-checksum does not match its
	// contents.
	ErrManifestChecksum = errors.New("snapshot: shard manifest checksum mismatch")
	// ErrShardDigest: a shard snapshot file does not match the digest the
	// manifest records for it.
	ErrShardDigest = errors.New("snapshot: shard snapshot digest mismatch")
)

// ManifestShard describes one shard's snapshot artifact.
type ManifestShard struct {
	// Index is the shard's position in [0, Shards).
	Index int `json:"index"`
	// Path is the snapshot file, relative to the manifest's directory.
	Path string `json:"path"`
	// Entities is the number of entities the shard owns.
	Entities int `json:"entities"`
	// FirstEntity and LastEntity bound the shard's contiguous id range
	// (inclusive).
	FirstEntity string `json:"first_entity"`
	LastEntity  string `json:"last_entity"`
	// SnapshotSHA256 is the hex SHA-256 of the snapshot file.
	SnapshotSHA256 string `json:"snapshot_sha256"`
	// SnapshotBytes is the snapshot file size.
	SnapshotBytes int64 `json:"snapshot_bytes"`
}

// Manifest describes a complete sharded build.
type Manifest struct {
	// FormatVersion is the snapshot format version of the shard files.
	FormatVersion uint32 `json:"format_version"`
	// Name is the database name ("hotel", "restaurant").
	Name string `json:"name"`
	// BuildSeed is the Config.Seed of the build.
	BuildSeed int64 `json:"build_seed"`
	// Shards is the fleet size.
	Shards int `json:"shards"`
	// Replicas is the per-range replica-set size: how many equivalent
	// serving backends each shard range is deployed with. Every replica
	// of a range serves the same snapshot artifact (same digest), so the
	// field changes deployment shape, not the artifact set. 0 or absent
	// means single-replica — manifests written before replication
	// existed load (and checksum-verify) unchanged.
	Replicas int `json:"replicas,omitempty"`
	// ReplicasPerRange, when present, gives each shard range its own
	// replica-set size (index-aligned with Shard) so a hot range can run
	// R=3 while a cold one runs R=1. It takes precedence over Replicas;
	// entries <= 0 normalize to single-replica. Absent means the uniform
	// Replicas field (or single-replica) applies to every range, so
	// manifests from uniform builds load unchanged.
	ReplicasPerRange []int `json:"replicas_per_range,omitempty"`
	// TotalEntities is the monolithic entity count (sum over shards).
	TotalEntities int `json:"total_entities"`
	// CreatedUnix is when the manifest was written (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// Shard lists the per-shard artifacts, ordered by index.
	Shard []ManifestShard `json:"shard"`
	// Checksum is the hex SHA-256 of the manifest's canonical JSON with
	// this field empty; WriteManifest fills it, LoadManifest verifies it.
	Checksum string `json:"checksum"`
}

// ReplicaCount normalizes the replica-count fields for one shard range:
// a per-range entry wins when present, the uniform Replicas field
// applies otherwise, and manifests written before replication existed
// (and explicit 0/1 builds) are single-replica. Out-of-range shard
// indices normalize like absent entries rather than panicking, so
// callers can ask about a shard before validating.
func (m *Manifest) ReplicaCount(shard int) int {
	n := m.Replicas
	if shard >= 0 && shard < len(m.ReplicasPerRange) {
		n = m.ReplicasPerRange[shard]
	}
	if n < 1 {
		return 1
	}
	return n
}

// ParseReplicaSpec parses the -replicas flag grammar shared by opinedbb
// and opinedbd. Two forms:
//
//	"3"              uniform: every range gets 3 replicas → (nil, 3)
//	"0=3,2=2"        per-range: listed ranges get the given count, the
//	                 rest default to 1 → ([]int of length shards, 0)
//
// "" and "0" mean "follow the manifest / single-replica" → (nil, 0).
// The two forms cannot be mixed ("3,0=2" is an error): a bare count is
// a fleet-wide statement and a pair list is a complete per-range
// assignment; mixing them has no unambiguous reading.
func ParseReplicaSpec(spec string, shards int) (perRange []int, uniform int, err error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, 0, nil
	}
	parts := strings.Split(spec, ",")
	pairs := strings.Contains(parts[0], "=")
	if !pairs {
		if len(parts) > 1 {
			return nil, 0, fmt.Errorf("replica spec %q mixes a bare count with more fields; use N or shard=N pairs", spec)
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil || n < 0 {
			return nil, 0, fmt.Errorf("replica spec %q: want a non-negative count or shard=N pairs", spec)
		}
		return nil, n, nil
	}
	perRange = make([]int, shards)
	for i := range perRange {
		perRange[i] = 1
	}
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
		if !ok {
			return nil, 0, fmt.Errorf("replica spec %q mixes shard=N pairs with a bare count", spec)
		}
		shard, err := strconv.Atoi(k)
		if err != nil || shard < 0 || shard >= shards {
			return nil, 0, fmt.Errorf("replica spec %q: shard %q out of range [0,%d)", spec, k, shards)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, 0, fmt.Errorf("replica spec %q: count %q for shard %d must be >= 1", spec, v, shard)
		}
		if seen[shard] {
			return nil, 0, fmt.Errorf("replica spec %q assigns shard %d twice", spec, shard)
		}
		seen[shard] = true
		perRange[shard] = n
	}
	return perRange, 0, nil
}

// checksum computes the manifest's self-checksum: SHA-256 over the
// canonical JSON encoding with the Checksum field blanked.
func (m *Manifest) checksum() (string, error) {
	cp := *m
	cp.Checksum = ""
	b, err := json.Marshal(&cp)
	if err != nil {
		return "", fmt.Errorf("snapshot: manifest checksum: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// validate checks structural integrity: version, shard count, contiguous
// indices, entity accounting, and per-shard fields.
func (m *Manifest) validate() error {
	if m.FormatVersion != FormatVersion {
		return fmt.Errorf("%w: format version %d, this build reads %d", ErrManifest, m.FormatVersion, FormatVersion)
	}
	if m.Shards <= 0 || len(m.Shard) != m.Shards {
		return fmt.Errorf("%w: declares %d shards but lists %d", ErrManifest, m.Shards, len(m.Shard))
	}
	if m.Replicas < 0 {
		return fmt.Errorf("%w: negative replica count %d", ErrManifest, m.Replicas)
	}
	if len(m.ReplicasPerRange) > 0 && len(m.ReplicasPerRange) != m.Shards {
		return fmt.Errorf("%w: replicas_per_range lists %d ranges for %d shards",
			ErrManifest, len(m.ReplicasPerRange), m.Shards)
	}
	for i, n := range m.ReplicasPerRange {
		if n < 0 {
			return fmt.Errorf("%w: negative replica count %d for range %d", ErrManifest, n, i)
		}
	}
	total := 0
	for i, s := range m.Shard {
		if s.Index != i {
			return fmt.Errorf("%w: shard at position %d carries index %d", ErrManifest, i, s.Index)
		}
		if s.Path == "" {
			return fmt.Errorf("%w: shard %d has no snapshot path", ErrManifest, i)
		}
		if s.SnapshotSHA256 == "" {
			return fmt.Errorf("%w: shard %d has no snapshot digest", ErrManifest, i)
		}
		if s.Entities <= 0 {
			return fmt.Errorf("%w: shard %d owns %d entities", ErrManifest, i, s.Entities)
		}
		total += s.Entities
	}
	if total != m.TotalEntities {
		return fmt.Errorf("%w: shards account for %d of %d entities", ErrManifest, total, m.TotalEntities)
	}
	return nil
}

// WriteManifest validates m, fills its checksum, and writes it atomically
// (temp file + rename, like Save) to path.
func WriteManifest(path string, m *Manifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	sum, err := m.checksum()
	if err != nil {
		return err
	}
	m.Checksum = sum
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: write manifest: %w", err)
	}
	b = append(b, '\n')
	f, err := os.CreateTemp(filepath.Dir(path), ".opinedb-manifest-*")
	if err != nil {
		return fmt.Errorf("snapshot: write manifest: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(b)
	if err == nil {
		err = f.Chmod(0o644)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot: write manifest: %w", err)
	}
	return nil
}

// LoadManifest reads, checksum-verifies and validates a shard manifest.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	want, err := m.checksum()
	if err != nil {
		return nil, err
	}
	if m.Checksum != want {
		return nil, fmt.Errorf("%w: stored %s, computed %s", ErrManifestChecksum, m.Checksum, want)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ShardPath resolves a shard's snapshot path relative to the manifest
// file's location.
func ShardPath(manifestPath string, s ManifestShard) string {
	if filepath.IsAbs(s.Path) {
		return s.Path
	}
	return filepath.Join(filepath.Dir(manifestPath), s.Path)
}

// LoadVerifiedShard loads shard index of a manifest with the full trust
// chain every serving path must apply: the snapshot file is checked
// against the manifest's digest, loaded, and required to carry the shard
// identity the manifest assigns it. Both opinedbd's shard-replica role
// and the in-process router fleet go through here. Digest verification
// happens over the bytes the loader already mapped (LoadVerified), so
// fleet bring-up reads every snapshot exactly once instead of streaming
// each file twice.
func LoadVerifiedShard(manifestPath string, m *Manifest, index int) (*core.DB, *Meta, error) {
	if index < 0 || index >= len(m.Shard) {
		return nil, nil, fmt.Errorf("%w: shard index %d of %d", ErrManifest, index, len(m.Shard))
	}
	ms := m.Shard[index]
	path := ShardPath(manifestPath, ms)
	db, meta, err := LoadVerified(path, ms.SnapshotSHA256)
	if err != nil {
		if errors.Is(err, ErrShardDigest) {
			return nil, nil, fmt.Errorf("%w (shard %d, manifest %s)", err, index, manifestPath)
		}
		return nil, nil, fmt.Errorf("snapshot: shard %d: %w", index, err)
	}
	if meta.Shard == nil || meta.Shard.Index != index || meta.Shard.Count != m.Shards {
		return nil, nil, fmt.Errorf("%w: snapshot %s does not identify as shard %d/%d",
			ErrManifest, path, index, m.Shards)
	}
	return db, meta, nil
}
