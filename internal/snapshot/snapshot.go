package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/kdtree"
	"repro/internal/relstore"
)

// Section names of format version 2. SectionSubIndex is present only when
// the database was built with the Appendix B substitution index, and
// SectionShard only in per-shard snapshots written by a sharded build;
// every other section is required.
const (
	SectionMeta        = "meta"
	SectionRel         = "rel"
	SectionCore        = "core"
	SectionEmbedding   = "embedding"
	SectionReviewIndex = "reviewindex"
	SectionEntityIndex = "entityindex"
	SectionExtractor   = "extractor"
	SectionSubIndex    = "subindex"
	SectionShard       = "shard"
)

// ShardMeta identifies one shard of a horizontally partitioned build: its
// position in the fleet and the contiguous entity range it owns. It is
// stored as the snapshot's "shard" section so a serving process can verify
// it was handed the shard it was configured for.
type ShardMeta struct {
	// Index is this shard's position in [0, Count).
	Index int
	// Count is the fleet size the build was partitioned into.
	Count int
	// Entities is the number of entities this shard owns.
	Entities int
	// TotalEntities is the monolithic build's entity count.
	TotalEntities int
	// FirstEntity and LastEntity bound the shard's contiguous id range
	// (inclusive, over the sorted entity id space).
	FirstEntity string
	LastEntity  string
}

// metaPayload is the stored form of the metadata section.
type metaPayload struct {
	Name        string
	BuildSeed   int64
	Entities    int
	Reviews     int
	Extractions int
	Attributes  int
	CreatedUnix int64
}

// toMeta lifts the stored metadata into the public Meta; the single
// conversion point shared by Write and Load, so the two can never
// disagree about what a field means.
func (mp metaPayload) toMeta() *Meta {
	return &Meta{
		FormatVersion: FormatVersion,
		Name:          mp.Name,
		BuildSeed:     mp.BuildSeed,
		Entities:      mp.Entities,
		Reviews:       mp.Reviews,
		Extractions:   mp.Extractions,
		Attributes:    mp.Attributes,
		CreatedUnix:   mp.CreatedUnix,
	}
}

// SectionInfo describes one section of a loaded or written snapshot.
type SectionInfo struct {
	Name  string
	Bytes int
}

// Meta describes a snapshot: the stored build metadata plus, after Load,
// how the file was read. It backs the /healthz snapshot report.
type Meta struct {
	// FormatVersion is the container version of the file.
	FormatVersion uint32
	// Name is the database name ("hotel", "restaurant").
	Name string
	// BuildSeed is the Config.Seed the corpus was built with.
	BuildSeed int64
	// Entities, Reviews, Extractions, Attributes size the corpus.
	Entities    int
	Reviews     int
	Extractions int
	Attributes  int
	// CreatedUnix is when the snapshot was written (Unix seconds).
	CreatedUnix int64
	// SHA256 is the hex content digest of the whole artifact. Save fills
	// it from a hash computed while writing (io.MultiWriter — the file is
	// never re-read); Load fills it from the already-mapped bytes, so
	// digest-verified serving (LoadVerified) reads each snapshot exactly
	// once.
	SHA256 string
	// Shard identifies the entity partition this snapshot carries; nil for
	// a monolithic snapshot.
	Shard *ShardMeta
	// Sections lists the file's sections with payload sizes.
	Sections []SectionInfo
	// FileBytes is the total artifact size. Filled by Save and Load.
	FileBytes int64
	// LoadDuration is how long Load took. Filled by Load only.
	LoadDuration time.Duration
}

// encodeSection gobs v into a named section.
func encodeSection(name string, v interface{}) (Section, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return Section{}, fmt.Errorf("snapshot: encode %s: %w", name, err)
	}
	return Section{Name: name, Payload: buf.Bytes()}, nil
}

// decodeSection gobs a section payload into out.
func decodeSection(s Section, out interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(s.Payload)).Decode(out); err != nil {
		return fmt.Errorf("snapshot: decode %s: %w", s.Name, err)
	}
	return nil
}

// Write serializes a built database to w. The database must not be
// mutated (AddReview, RebuildSummaries, ...) until Write returns. It
// returns the written metadata, including the per-section layout
// (FileBytes is left zero; Save fills it from the artifact).
func Write(w io.Writer, db *core.DB) (*Meta, error) {
	return WriteShard(w, db, nil)
}

// WriteShard is Write plus shard identity: a non-nil shard is stored as
// the snapshot's "shard" section, marking the artifact as one partition
// of a sharded build.
func WriteShard(w io.Writer, db *core.DB, shard *ShardMeta) (*Meta, error) {
	if db == nil {
		return nil, fmt.Errorf("snapshot: nil database")
	}
	tagger, ok := db.Extractor.Tagger.(*extract.PerceptronTagger)
	if !ok {
		return nil, fmt.Errorf("snapshot: unsupported tagger %T (format %d serializes the perceptron tagger)",
			db.Extractor.Tagger, FormatVersion)
	}
	st := db.State()
	mp := metaPayload{
		Name:        db.Name,
		BuildSeed:   db.Config().Seed,
		Entities:    len(db.EntityIDs()),
		Reviews:     len(db.ReviewSentiments),
		Extractions: len(db.Extractions),
		Attributes:  len(db.Attrs),
		CreatedUnix: time.Now().Unix(),
	}
	metaSec, err := encodeSection(SectionMeta, mp)
	if err != nil {
		return nil, err
	}
	relPayload, err := encodeRelState(db.Rel.State())
	if err != nil {
		return nil, err
	}
	// Every section except the tiny gob-encoded meta uses the hand-rolled
	// codecs of codec.go (fast, byte-stable).
	sections := []Section{
		metaSec,
		{Name: SectionRel, Payload: relPayload},
		{Name: SectionCore, Payload: encodeCoreState(st)},
		{Name: SectionEmbedding, Payload: encodeEmbeddingState(db.Embed.State())},
		{Name: SectionReviewIndex, Payload: encodeIndexState(db.ReviewIndex.State())},
		{Name: SectionEntityIndex, Payload: encodeIndexState(db.EntityIndex.State())},
	}
	sections = append(sections, Section{Name: SectionExtractor, Payload: encodeExtractorState(tagger.State())})
	if db.SubIndex != nil {
		sections = append(sections, Section{Name: SectionSubIndex, Payload: encodeSubIndexState(db.SubIndex.State())})
	}
	if shard != nil {
		shardSec, err := encodeSection(SectionShard, *shard)
		if err != nil {
			return nil, err
		}
		sections = append(sections, shardSec)
	}
	meta := mp.toMeta()
	if shard != nil {
		cp := *shard
		meta.Shard = &cp
	}
	for _, sec := range sections {
		meta.Sections = append(meta.Sections, SectionInfo{Name: sec.Name, Bytes: len(sec.Payload)})
	}
	if err := writeContainer(w, sections); err != nil {
		return nil, err
	}
	return meta, nil
}

// Save writes a snapshot atomically: to a uniquely named temp file in
// path's directory first, fsynced, then renamed over path, so neither a
// crashed build nor two builders racing on the same output path can
// leave a half-written artifact where a server might mmap it. It returns
// metadata describing the written file.
func Save(path string, db *core.DB) (*Meta, error) {
	return SaveShard(path, db, nil)
}

// SaveShard is Save plus shard identity (see WriteShard). The artifact's
// SHA-256 is computed while the bytes stream out (io.MultiWriter), so
// builders get the digest the shard manifest records without re-reading
// the file they just wrote.
func SaveShard(path string, db *core.DB, shard *ShardMeta) (*Meta, error) {
	f, err := os.CreateTemp(filepath.Dir(path), ".opinedb-snap-*")
	if err != nil {
		return nil, fmt.Errorf("snapshot: save: %w", err)
	}
	tmp := f.Name()
	h := sha256.New()
	meta, err := WriteShard(io.MultiWriter(f, h), db, shard)
	if err == nil {
		meta.SHA256 = hex.EncodeToString(h.Sum(nil))
	}
	if err == nil {
		// CreateTemp makes the file 0600; the artifact is meant to be read
		// by serving processes running as other users.
		err = f.Chmod(0o644)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("snapshot: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("snapshot: save: %w", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: save: %w", err)
	}
	meta.FileBytes = fi.Size()
	return meta, nil
}

// Load reads a snapshot file (mmap when the platform supports it, plain
// read otherwise) and reconstructs a query-ready database. The returned
// DB answers every query byte-identically to the freshly built database
// the snapshot was taken from. Corrupt or incompatible files return the
// package's typed errors; a missing file returns an error satisfying
// errors.Is(err, fs.ErrNotExist).
func Load(path string) (*core.DB, *Meta, error) {
	return LoadVerified(path, "")
}

// LoadVerified is Load plus content verification: when wantSHA256 is
// non-empty, the artifact's digest — computed over the already-mapped
// bytes, so the file is still read exactly once — must match it or the
// load fails with ErrShardDigest before any decoding happens; the
// computed digest is then reported in Meta.SHA256. An empty wantSHA256
// skips hashing entirely (plain Load): unverified cold starts should not
// pay an extra pass over the artifact for a digest nobody reads.
func LoadVerified(path, wantSHA256 string) (*core.DB, *Meta, error) {
	start := time.Now()
	data, cleanup, err := readSnapshotFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: load: %w", err)
	}
	defer cleanup()

	var digest string
	if wantSHA256 != "" {
		sum := sha256.Sum256(data)
		digest = hex.EncodeToString(sum[:])
		if digest != wantSHA256 {
			return nil, nil, fmt.Errorf("%w: file %s has %s, caller expects %s",
				ErrShardDigest, path, digest, wantSHA256)
		}
	}

	sections, err := parseContainer(data)
	if err != nil {
		return nil, nil, err
	}
	byName := make(map[string]Section, len(sections))
	infos := make([]SectionInfo, 0, len(sections))
	for _, s := range sections {
		byName[s.Name] = s
		infos = append(infos, SectionInfo{Name: s.Name, Bytes: len(s.Payload)})
	}
	need := func(name string) (Section, error) {
		s, ok := byName[name]
		if !ok {
			return Section{}, fmt.Errorf("%w: %s", ErrMissingSection, name)
		}
		return s, nil
	}

	var mp metaPayload
	if s, err := need(SectionMeta); err != nil {
		return nil, nil, err
	} else if err := decodeSection(s, &mp); err != nil {
		return nil, nil, err
	}
	s, err := need(SectionRel)
	if err != nil {
		return nil, nil, err
	}
	relState, err := decodeRelState(s.Payload)
	if err != nil {
		return nil, nil, err
	}
	if s, err = need(SectionCore); err != nil {
		return nil, nil, err
	}
	coreState, err := decodeCoreState(s.Payload)
	if err != nil {
		return nil, nil, err
	}
	if s, err = need(SectionEmbedding); err != nil {
		return nil, nil, err
	}
	embedState, err := decodeEmbeddingState(s.Payload)
	if err != nil {
		return nil, nil, err
	}
	if s, err = need(SectionReviewIndex); err != nil {
		return nil, nil, err
	}
	reviewIdxState, err := decodeIndexState(s.Payload, SectionReviewIndex)
	if err != nil {
		return nil, nil, err
	}
	if s, err = need(SectionEntityIndex); err != nil {
		return nil, nil, err
	}
	entityIdxState, err := decodeIndexState(s.Payload, SectionEntityIndex)
	if err != nil {
		return nil, nil, err
	}
	if s, err = need(SectionExtractor); err != nil {
		return nil, nil, err
	}
	taggerState, err := decodeExtractorState(s.Payload)
	if err != nil {
		return nil, nil, err
	}
	var subState *kdtree.SubstitutionIndexState
	if s, ok := byName[SectionSubIndex]; ok {
		decoded, err := decodeSubIndexState(s.Payload)
		if err != nil {
			return nil, nil, err
		}
		subState = &decoded
	}
	var shard *ShardMeta
	if s, ok := byName[SectionShard]; ok {
		var sm ShardMeta
		if err := decodeSection(s, &sm); err != nil {
			return nil, nil, err
		}
		shard = &sm
	}

	rel, err := relstore.FromState(relState)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %s: %w", SectionRel, err)
	}
	embed, err := embedding.NewModelFromState(embedState)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %s: %w", SectionEmbedding, err)
	}
	reviewIdx, err := ir.NewIndexFromState(reviewIdxState)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %s: %w", SectionReviewIndex, err)
	}
	entityIdx, err := ir.NewIndexFromState(entityIdxState)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %s: %w", SectionEntityIndex, err)
	}
	db, err := core.FromState(coreState, core.Components{
		Rel:         rel,
		Embed:       embed,
		ReviewIndex: reviewIdx,
		EntityIndex: entityIdx,
		Tagger:      extract.NewPerceptronFromState(taggerState),
		SubIndex:    subState,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %s: %w", SectionCore, err)
	}

	meta := mp.toMeta()
	meta.Shard = shard
	meta.Sections = infos
	meta.FileBytes = int64(len(data))
	meta.SHA256 = digest
	meta.LoadDuration = time.Since(start)
	return db, meta, nil
}
