package snapshot

// FuzzSnapshotLoad: feeding Load arbitrary bytes — truncations, bit
// flips, forged headers, garbage payloads behind valid CRCs — must yield
// an error, never a panic or a half-built database. White-box (package
// snapshot) so the seeds can be built with writeContainer, giving the
// fuzzer structurally valid containers whose payloads it can mutate
// behind recomputed... no: mutated payloads fail CRC, so the interesting
// seeds below carry VALID CRCs over adversarial payloads, driving the
// section decoders directly. testdata/fuzz/FuzzSnapshotLoad holds
// additional checked-in seeds.

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// containerBytes builds a syntactically valid container (header + CRCs)
// around the given sections.
func containerBytes(sections []Section) []byte {
	var buf bytes.Buffer
	if err := writeContainer(&buf, sections); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzSnapshotLoad(f *testing.F) {
	// Empty container.
	f.Add(containerBytes(nil))
	// All required sections present with short garbage payloads: every
	// CRC is valid, so the per-section decoders run on hostile input.
	garbage := [][]byte{{}, {0x01}, {0xff, 0xff, 0xff, 0xff, 0xff}, []byte("hello"), {0x96, 0x01, 0x00}}
	for _, g := range garbage {
		secs := make([]Section, 0, 7)
		for _, name := range []string{
			SectionMeta, SectionRel, SectionCore, SectionEmbedding,
			SectionReviewIndex, SectionEntityIndex, SectionExtractor,
		} {
			secs = append(secs, Section{Name: name, Payload: g})
		}
		f.Add(containerBytes(secs))
	}
	// Huge declared counts inside a CRC-valid payload (allocation bombs
	// the decoders must bound).
	bomb := binary.AppendUvarint(nil, 1<<60)
	f.Add(containerBytes([]Section{
		{Name: SectionMeta, Payload: bomb},
		{Name: SectionRel, Payload: bomb},
		{Name: SectionCore, Payload: bomb},
		{Name: SectionEmbedding, Payload: bomb},
		{Name: SectionReviewIndex, Payload: bomb},
		{Name: SectionEntityIndex, Payload: bomb},
		{Name: SectionExtractor, Payload: bomb},
		{Name: SectionSubIndex, Payload: bomb},
		{Name: SectionShard, Payload: bomb},
	}))
	// Header-level adversaries.
	f.Add([]byte(Magic))
	f.Add([]byte(Magic + "\x02\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte("not a snapshot at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		db, meta, err := Load(path) // must not panic
		if err == nil && (db == nil || meta == nil) {
			t.Fatal("Load returned success without a database")
		}
	})
}
