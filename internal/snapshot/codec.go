package snapshot

// Hand-rolled binary codecs for the snapshot sections. gob's
// reflection-driven decoding was ~70% of snapshot load time (the whole
// point of a snapshot is a millisecond cold start), so every section
// except the tiny metadata one uses an explicit length-prefixed encoding
// over the packages' exported state seams. All integers are
// uvarint/varint, floats are fixed 8-byte IEEE-754 bits (bit-exact
// round-trip, which the byte-identical query guarantee depends on),
// strings and slices are length-prefixed. Maps are written in sorted key
// order, so every section payload is byte-stable across identical builds
// — operators can diff or hash artifacts to confirm replicas carry the
// same build (only the meta section varies, by its creation timestamp).
//
// These codecs decode payloads that already passed the container CRC, so
// a decode failure means a format bug or a version mismatch the header
// check missed; they still fail with errors, never panics, via the
// sticky-error reader.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/extract"
	"repro/internal/fuzzy"
	"repro/internal/ir"
	"repro/internal/kdtree"
	"repro/internal/relstore"
)

// enc is an append-only binary writer.
type enc struct {
	b   []byte
	err error
}

func (e *enc) u8(v byte)        { e.b = append(e.b, v) }
func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f64(v float64)    { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) f64s(v []float64) {
	e.uvarint(uint64(len(v)))
	for _, f := range v {
		e.f64(f)
	}
}
func (e *enc) ints(v []int) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.varint(int64(x))
	}
}
func (e *enc) strs(v []string) {
	e.uvarint(uint64(len(v)))
	for _, s := range v {
		e.str(s)
	}
}

// dec is a sticky-error binary reader over one section payload.
type dec struct {
	b       []byte
	off     int
	section string
	err     error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: decode %s: malformed %s at offset %d", d.section, what, d.off)
	}
}
func (d *dec) u8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}
func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}
func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}
func (d *dec) f64() float64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}
func (d *dec) boolean() bool { return d.u8() != 0 }

// count reads a length prefix and sanity-bounds it by the bytes left
// (every counted element occupies at least one byte), so a corrupt
// length cannot drive a huge allocation.
func (d *dec) count(what string) int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.b)-d.off) {
		d.fail(what + " count")
		return 0
	}
	return int(v)
}
func (d *dec) str() string {
	n := d.count("string")
	if d.err != nil || d.off+n > len(d.b) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
func (d *dec) f64s() []float64 {
	n := d.uvarint()
	if d.err != nil || n > uint64((len(d.b)-d.off)/8) {
		d.fail("float64 slice")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}
func (d *dec) ints() []int {
	n := d.count("int slice")
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.varint())
	}
	return out
}
func (d *dec) strs() []string {
	n := d.count("string slice")
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("snapshot: decode %s: %d trailing bytes", d.section, len(d.b)-d.off)
	}
	return nil
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (e *enc) stringIntMap(m map[string]int) {
	e.uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.str(k)
		e.varint(int64(m[k]))
	}
}
func (d *dec) stringIntMap() map[string]int {
	n := d.count("map")
	m := make(map[string]int, n)
	for i := 0; i < n; i++ {
		k := d.str()
		m[k] = int(d.varint())
	}
	return m
}

func (e *enc) stringF64Map(m map[string]float64) {
	e.uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.str(k)
		e.f64(m[k])
	}
}
func (d *dec) stringF64Map() map[string]float64 {
	n := d.count("map")
	m := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k := d.str()
		m[k] = d.f64()
	}
	return m
}

// ---- relstore.DBState ----

func encodeRelState(st relstore.DBState) ([]byte, error) {
	e := &enc{}
	e.uvarint(uint64(len(st.Schemas)))
	for _, schema := range st.Schemas {
		e.str(schema.Name)
		e.str(schema.Key)
		e.uvarint(uint64(len(schema.Columns)))
		for _, col := range schema.Columns {
			e.str(col.Name)
			e.uvarint(uint64(col.Type))
		}
		rows := st.Rows[schema.Name]
		e.uvarint(uint64(len(rows)))
		for _, row := range rows {
			if len(row) != len(schema.Columns) {
				return nil, fmt.Errorf("snapshot: encode rel: %s row arity %d, want %d",
					schema.Name, len(row), len(schema.Columns))
			}
			for ci, v := range row {
				if v == nil {
					e.u8(0)
					continue
				}
				e.u8(1)
				switch schema.Columns[ci].Type {
				case relstore.TString:
					s, ok := v.(string)
					if !ok {
						return nil, fmt.Errorf("snapshot: encode rel: %s.%s holds %T", schema.Name, schema.Columns[ci].Name, v)
					}
					e.str(s)
				case relstore.TInt:
					x, ok := v.(int64)
					if !ok {
						return nil, fmt.Errorf("snapshot: encode rel: %s.%s holds %T", schema.Name, schema.Columns[ci].Name, v)
					}
					e.varint(x)
				case relstore.TFloat:
					f, ok := v.(float64)
					if !ok {
						return nil, fmt.Errorf("snapshot: encode rel: %s.%s holds %T", schema.Name, schema.Columns[ci].Name, v)
					}
					e.f64(f)
				case relstore.TBool:
					bv, ok := v.(bool)
					if !ok {
						return nil, fmt.Errorf("snapshot: encode rel: %s.%s holds %T", schema.Name, schema.Columns[ci].Name, v)
					}
					e.boolean(bv)
				default:
					return nil, fmt.Errorf("snapshot: encode rel: unknown column type %v", schema.Columns[ci].Type)
				}
			}
		}
	}
	return e.b, nil
}

func decodeRelState(payload []byte) (relstore.DBState, error) {
	d := &dec{b: payload, section: SectionRel}
	st := relstore.DBState{Rows: map[string][]relstore.Row{}}
	nschemas := d.count("schema")
	for i := 0; i < nschemas && d.err == nil; i++ {
		schema := relstore.Schema{Name: d.str(), Key: d.str()}
		ncols := d.count("column")
		for c := 0; c < ncols && d.err == nil; c++ {
			schema.Columns = append(schema.Columns, relstore.Column{
				Name: d.str(),
				Type: relstore.Type(d.uvarint()),
			})
		}
		nrows := d.count("row")
		rows := make([]relstore.Row, 0, nrows)
		for r := 0; r < nrows && d.err == nil; r++ {
			row := make(relstore.Row, len(schema.Columns))
			for ci := range schema.Columns {
				if d.u8() == 0 {
					continue // NULL
				}
				switch schema.Columns[ci].Type {
				case relstore.TString:
					row[ci] = d.str()
				case relstore.TInt:
					row[ci] = d.varint()
				case relstore.TFloat:
					row[ci] = d.f64()
				case relstore.TBool:
					row[ci] = d.boolean()
				default:
					d.fail("column type")
				}
			}
			rows = append(rows, row)
		}
		st.Schemas = append(st.Schemas, schema)
		st.Rows[schema.Name] = rows
	}
	return st, d.finish()
}

// ---- embedding.ModelState ----

func encodeEmbeddingState(st embedding.ModelState) []byte {
	e := &enc{}
	e.uvarint(uint64(st.Dim))
	e.uvarint(uint64(len(st.Vecs)))
	for _, w := range sortedKeys(st.Vecs) {
		e.str(w)
		e.f64s(st.Vecs[w])
	}
	e.uvarint(uint64(st.Stats.DocCount))
	e.stringIntMap(st.Stats.DF)
	e.stringIntMap(st.Stats.TermCount)
	e.varint(st.Stats.Total)
	return e.b
}

func decodeEmbeddingState(payload []byte) (embedding.ModelState, error) {
	d := &dec{b: payload, section: SectionEmbedding}
	st := embedding.ModelState{Dim: int(d.uvarint())}
	nvecs := d.count("vector")
	st.Vecs = make(map[string]embedding.Vector, nvecs)
	for i := 0; i < nvecs && d.err == nil; i++ {
		w := d.str()
		st.Vecs[w] = d.f64s()
	}
	st.Stats.DocCount = int(d.uvarint())
	st.Stats.DF = d.stringIntMap()
	st.Stats.TermCount = d.stringIntMap()
	st.Stats.Total = d.varint()
	return st, d.finish()
}

// ---- ir.IndexState ----

func encodeIndexState(st ir.IndexState) []byte {
	e := &enc{}
	e.strs(st.DocIDs)
	e.ints(st.DocLen)
	e.varint(st.TotalLen)
	e.uvarint(uint64(len(st.Postings)))
	for _, term := range sortedKeys(st.Postings) {
		e.str(term)
		plist := st.Postings[term]
		e.uvarint(uint64(len(plist)))
		for _, p := range plist {
			e.varint(int64(p.Doc))
			e.varint(int64(p.TF))
		}
	}
	return e.b
}

func decodeIndexState(payload []byte, section string) (ir.IndexState, error) {
	d := &dec{b: payload, section: section}
	st := ir.IndexState{
		DocIDs:   d.strs(),
		DocLen:   d.ints(),
		TotalLen: d.varint(),
	}
	nterms := d.count("term")
	st.Postings = make(map[string][]ir.Posting, nterms)
	for i := 0; i < nterms && d.err == nil; i++ {
		term := d.str()
		nposts := d.count("posting")
		plist := make([]ir.Posting, 0, nposts)
		for p := 0; p < nposts && d.err == nil; p++ {
			plist = append(plist, ir.Posting{Doc: int(d.varint()), TF: int(d.varint())})
		}
		st.Postings[term] = plist
	}
	return st, d.finish()
}

// ---- core.DBState ----

func (e *enc) config(cfg core.Config) {
	e.varint(int64(cfg.MarkersPerAttr))
	e.f64(cfg.W2VThreshold)
	e.f64(cfg.CooccurThreshold)
	e.varint(int64(cfg.CooccurTopK))
	e.varint(int64(cfg.CooccurTopN))
	e.f64(cfg.CooccurMinIDF)
	e.f64(cfg.FallbackCenter)
	e.f64(cfg.MinClassifierConfidence)
	e.f64(cfg.MinPhraseCoverage)
	e.varint(int64(cfg.FuzzyVariant))
	e.varint(int64(cfg.MinPhraseCount))
	e.boolean(cfg.UseSubstitutionIndex)
	e.varint(int64(cfg.Embedding.Dim))
	e.varint(int64(cfg.Embedding.Window))
	e.varint(int64(cfg.Embedding.Negatives))
	e.varint(int64(cfg.Embedding.Epochs))
	e.f64(cfg.Embedding.LR)
	e.varint(int64(cfg.Embedding.MinCount))
	e.varint(int64(cfg.TaggerEpochs))
	e.varint(cfg.Seed)
	e.varint(int64(cfg.BuildWorkers))
}

func (d *dec) config() core.Config {
	var cfg core.Config
	cfg.MarkersPerAttr = int(d.varint())
	cfg.W2VThreshold = d.f64()
	cfg.CooccurThreshold = d.f64()
	cfg.CooccurTopK = int(d.varint())
	cfg.CooccurTopN = int(d.varint())
	cfg.CooccurMinIDF = d.f64()
	cfg.FallbackCenter = d.f64()
	cfg.MinClassifierConfidence = d.f64()
	cfg.MinPhraseCoverage = d.f64()
	cfg.FuzzyVariant = fuzzy.Variant(d.varint())
	cfg.MinPhraseCount = int(d.varint())
	cfg.UseSubstitutionIndex = d.boolean()
	cfg.Embedding.Dim = int(d.varint())
	cfg.Embedding.Window = int(d.varint())
	cfg.Embedding.Negatives = int(d.varint())
	cfg.Embedding.Epochs = int(d.varint())
	cfg.Embedding.LR = d.f64()
	cfg.Embedding.MinCount = int(d.varint())
	cfg.TaggerEpochs = int(d.varint())
	cfg.Seed = d.varint()
	cfg.BuildWorkers = int(d.varint())
	return cfg
}

func (e *enc) logReg(m *classify.LogReg) {
	if m == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.f64s(m.W)
	e.f64(m.Bias)
}

func (e *enc) summary(s *core.MarkerSummary) {
	e.f64s(s.Counts)
	e.f64s(s.SentSum)
	e.uvarint(uint64(len(s.VecSum)))
	for _, v := range s.VecSum {
		e.f64s(v)
	}
	e.f64(s.Total)
	e.uvarint(uint64(len(s.Provenance)))
	for _, ids := range s.Provenance {
		e.ints(ids)
	}
}

func (d *dec) summary() *core.MarkerSummary {
	s := &core.MarkerSummary{
		Counts:  d.f64s(),
		SentSum: d.f64s(),
	}
	nvec := d.count("vecsum")
	s.VecSum = make([]embedding.Vector, nvec)
	for i := 0; i < nvec && d.err == nil; i++ {
		s.VecSum[i] = d.f64s()
	}
	s.Total = d.f64()
	nprov := d.count("provenance")
	s.Provenance = make([][]int, nprov)
	for i := 0; i < nprov && d.err == nil; i++ {
		s.Provenance[i] = d.ints()
	}
	return s
}

func encodeCoreState(st *core.DBState) []byte {
	e := &enc{}
	e.str(st.Name)
	e.config(st.Cfg)

	e.uvarint(uint64(len(st.Attrs)))
	for _, a := range st.Attrs {
		e.str(a.Name)
		e.boolean(a.Categorical)
		e.uvarint(uint64(len(a.Markers)))
		for _, m := range a.Markers {
			e.str(m.Name)
			e.f64(m.Sentiment)
			e.f64s(m.Centroid)
		}
		e.stringIntMap(a.DomainPhrases)
		e.stringIntMap(a.PhraseMarker)
	}

	e.uvarint(uint64(len(st.Summaries)))
	for _, attr := range sortedKeys(st.Summaries) {
		e.str(attr)
		byEntity := st.Summaries[attr]
		e.uvarint(uint64(len(byEntity)))
		for _, entity := range sortedKeys(byEntity) {
			e.str(entity)
			e.summary(byEntity[entity])
		}
	}

	e.uvarint(uint64(len(st.Extractions)))
	for i := range st.Extractions {
		x := &st.Extractions[i]
		e.varint(int64(x.ID))
		e.str(x.EntityID)
		e.str(x.ReviewID)
		e.str(x.Reviewer)
		e.varint(int64(x.Day))
		e.str(x.Attribute)
		e.str(x.Aspect)
		e.str(x.Phrase)
		e.varint(int64(x.Marker))
		e.f64(x.Sentiment)
	}

	e.stringF64Map(st.ReviewSentiments)

	e.logReg(st.Membership.MarkerLR)
	e.logReg(st.Membership.ScanLR)
	e.f64(st.Membership.MarkerAccuracy)
	e.f64(st.Membership.ScanAccuracy)
	return e.b
}

func decodeCoreState(payload []byte) (*core.DBState, error) {
	d := &dec{b: payload, section: SectionCore}
	st := &core.DBState{Name: d.str(), Cfg: d.config()}

	nattrs := d.count("attribute")
	for i := 0; i < nattrs && d.err == nil; i++ {
		a := core.AttributeState{Name: d.str(), Categorical: d.boolean()}
		nmarkers := d.count("marker")
		for m := 0; m < nmarkers && d.err == nil; m++ {
			a.Markers = append(a.Markers, core.Marker{
				Name:      d.str(),
				Sentiment: d.f64(),
				Centroid:  d.f64s(),
			})
		}
		a.DomainPhrases = d.stringIntMap()
		a.PhraseMarker = d.stringIntMap()
		st.Attrs = append(st.Attrs, a)
	}

	nsum := d.count("summary attribute")
	st.Summaries = make(map[string]map[string]*core.MarkerSummary, nsum)
	for i := 0; i < nsum && d.err == nil; i++ {
		attr := d.str()
		nent := d.count("summary entity")
		byEntity := make(map[string]*core.MarkerSummary, nent)
		for j := 0; j < nent && d.err == nil; j++ {
			entity := d.str()
			byEntity[entity] = d.summary()
		}
		st.Summaries[attr] = byEntity
	}

	next := d.count("extraction")
	st.Extractions = make([]core.Extraction, 0, next)
	for i := 0; i < next && d.err == nil; i++ {
		st.Extractions = append(st.Extractions, core.Extraction{
			ID:        int(d.varint()),
			EntityID:  d.str(),
			ReviewID:  d.str(),
			Reviewer:  d.str(),
			Day:       int(d.varint()),
			Attribute: d.str(),
			Aspect:    d.str(),
			Phrase:    d.str(),
			Marker:    int(d.varint()),
			Sentiment: d.f64(),
		})
	}

	st.ReviewSentiments = d.stringF64Map()

	st.Membership.MarkerLR = d.decodeLogReg()
	st.Membership.ScanLR = d.decodeLogReg()
	st.Membership.MarkerAccuracy = d.f64()
	st.Membership.ScanAccuracy = d.f64()
	return st, d.finish()
}

func (d *dec) decodeLogReg() *classify.LogReg {
	if d.u8() == 0 {
		return nil
	}
	return &classify.LogReg{W: d.f64s(), Bias: d.f64()}
}

// ---- extract.PerceptronState ----

func encodeExtractorState(st extract.PerceptronState) []byte {
	e := &enc{}
	e.uvarint(extract.NumTags)
	e.uvarint(uint64(len(st.Weights)))
	for _, feat := range sortedKeys(st.Weights) {
		e.str(feat)
		w := st.Weights[feat]
		for t := 0; t < extract.NumTags; t++ {
			e.f64(w[t])
		}
	}
	for i := 0; i < extract.NumTags; i++ {
		for j := 0; j < extract.NumTags; j++ {
			e.f64(st.Trans[i][j])
		}
	}
	return e.b
}

func decodeExtractorState(payload []byte) (extract.PerceptronState, error) {
	d := &dec{b: payload, section: SectionExtractor}
	var st extract.PerceptronState
	if n := d.uvarint(); d.err == nil && n != extract.NumTags {
		d.err = fmt.Errorf("snapshot: decode %s: tag alphabet size %d, this build uses %d",
			SectionExtractor, n, extract.NumTags)
	}
	nfeats := d.count("feature")
	st.Weights = make(map[string][extract.NumTags]float64, nfeats)
	for i := 0; i < nfeats && d.err == nil; i++ {
		feat := d.str()
		var w [extract.NumTags]float64
		for t := 0; t < extract.NumTags; t++ {
			w[t] = d.f64()
		}
		st.Weights[feat] = w
	}
	for i := 0; i < extract.NumTags; i++ {
		for j := 0; j < extract.NumTags; j++ {
			st.Trans[i][j] = d.f64()
		}
	}
	return st, d.finish()
}

// ---- kdtree.SubstitutionIndexState ----

func encodeSubIndexState(st kdtree.SubstitutionIndexState) []byte {
	e := &enc{}
	e.uvarint(uint64(len(st.Substitute)))
	for _, w := range sortedKeys(st.Substitute) {
		e.str(w)
		e.str(st.Substitute[w])
	}
	e.uvarint(uint64(len(st.Phrases)))
	for _, norm := range sortedKeys(st.Phrases) {
		e.str(norm)
		e.str(st.Phrases[norm])
	}
	e.strs(st.Labels)
	return e.b
}

func decodeSubIndexState(payload []byte) (kdtree.SubstitutionIndexState, error) {
	d := &dec{b: payload, section: SectionSubIndex}
	var st kdtree.SubstitutionIndexState
	nsub := d.count("substitute")
	st.Substitute = make(map[string]string, nsub)
	for i := 0; i < nsub && d.err == nil; i++ {
		w := d.str()
		st.Substitute[w] = d.str()
	}
	nphr := d.count("phrase")
	st.Phrases = make(map[string]string, nphr)
	for i := 0; i < nphr && d.err == nil; i++ {
		norm := d.str()
		st.Phrases[norm] = d.str()
	}
	st.Labels = d.strs()
	return st, d.finish()
}
