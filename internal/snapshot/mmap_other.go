//go:build !linux

package snapshot

import "os"

// readSnapshotFile reads the whole file; the mmap fast path is
// linux-only (see mmap_linux.go).
func readSnapshotFile(path string) (data []byte, cleanup func(), err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
