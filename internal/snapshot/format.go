// Package snapshot persists a fully built core.DB as a single versioned
// binary artifact — the build-once / serve-many split: cmd/opinedbb runs
// the expensive construction pipeline (§4) and writes a snapshot; any
// number of cmd/opinedbd servers load it and answer queries immediately,
// byte-identically to a fresh build.
//
// # Container format (version 1)
//
// A snapshot is a length-prefixed section container. All integers are
// little-endian.
//
//	offset 0   magic "OPDBSNAP" (8 bytes)
//	offset 8   uint32 format version
//	offset 12  uint32 section count
//	           section table, one entry per section:
//	             uint16 name length, name bytes,
//	             uint64 payload length, uint32 CRC-32 (IEEE) of payload
//	           section payloads, concatenated in table order
//
// Section payloads are the hand-rolled length-prefixed encodings of
// codec.go over the exported state structs each subsystem package
// provides (core.DBState, relstore.DBState, embedding.ModelState,
// ir.IndexState, extract.PerceptronState, kdtree.SubstitutionIndexState);
// only the tiny meta section uses encoding/gob. New sections should use
// the codec.go primitives too — sorted-map, fixed-float encoding is what
// keeps artifacts byte-stable across identical builds and decoding fast.
// The container does framing, versioning and integrity only; the owning
// packages define what state means.
//
// Corrupt or incompatible files yield typed errors — ErrBadMagic,
// ErrVersion, ErrTruncated, ErrChecksum, ErrMissingSection,
// ErrTrailingData — never panics, so a serving fleet can fall back to an
// in-process build when a snapshot is unusable.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a snapshot file; it is the first 8 bytes.
const Magic = "OPDBSNAP"

// FormatVersion is the container version this package writes and the only
// one it accepts; bump it on any incompatible layout or state change.
// Version 2 added the optional "shard" section (horizontal sharding) and
// the shard manifest format.
const FormatVersion uint32 = 2

// Typed errors for unusable snapshot files. Wrapped with context by the
// parser; match with errors.Is.
var (
	// ErrBadMagic: the file does not start with the snapshot magic.
	ErrBadMagic = errors.New("snapshot: bad magic (not a snapshot file)")
	// ErrVersion: the file's format version differs from FormatVersion.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated: the file ends before its declared contents do.
	ErrTruncated = errors.New("snapshot: truncated file")
	// ErrChecksum: a section's payload does not match its stored CRC.
	ErrChecksum = errors.New("snapshot: section checksum mismatch")
	// ErrMissingSection: a required section is absent.
	ErrMissingSection = errors.New("snapshot: missing section")
	// ErrTrailingData: the file continues past the last declared section.
	ErrTrailingData = errors.New("snapshot: trailing data after the last section")
)

// Section is one named, checksummed payload of the container.
type Section struct {
	Name    string
	Payload []byte
}

// maxSections bounds the declared section count so a corrupt header
// cannot drive a huge allocation before the size checks run.
const maxSections = 1024

// writeContainer emits the container: header, section table, payloads.
func writeContainer(w io.Writer, sections []Section) error {
	if len(sections) > maxSections {
		return fmt.Errorf("snapshot: %d sections exceeds the format limit %d", len(sections), maxSections)
	}
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	var u32 [4]byte
	var u64 [8]byte
	var u16 [2]byte
	binary.LittleEndian.PutUint32(u32[:], FormatVersion)
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(sections)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	for _, s := range sections {
		if len(s.Name) > 0xffff {
			return fmt.Errorf("snapshot: section name %q too long", s.Name[:32])
		}
		binary.LittleEndian.PutUint16(u16[:], uint16(len(s.Name)))
		if _, err := w.Write(u16[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s.Name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(u64[:], uint64(len(s.Payload)))
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(s.Payload))
		if _, err := w.Write(u32[:]); err != nil {
			return err
		}
	}
	for _, s := range sections {
		if _, err := w.Write(s.Payload); err != nil {
			return err
		}
	}
	return nil
}

// parseContainer validates the header and every section checksum, and
// returns the sections with payloads aliasing data (zero-copy; callers
// decode before releasing the backing buffer).
func parseContainer(data []byte) ([]Section, error) {
	if len(data) < len(Magic)+8 {
		if len(data) >= len(Magic) && string(data[:len(Magic)]) != Magic {
			return nil, fmt.Errorf("%w: got %q", ErrBadMagic, data[:len(Magic)])
		}
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, data[:len(Magic)])
	}
	off := len(Magic)
	version := binary.LittleEndian.Uint32(data[off:])
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, version, FormatVersion)
	}
	count := binary.LittleEndian.Uint32(data[off+4:])
	if count > maxSections {
		return nil, fmt.Errorf("%w: header declares %d sections (limit %d)", ErrTruncated, count, maxSections)
	}
	off += 8

	type entry struct {
		name string
		size uint64
		crc  uint32
	}
	entries := make([]entry, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+2 > len(data) {
			return nil, fmt.Errorf("%w: section table ends at entry %d", ErrTruncated, i)
		}
		nameLen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+nameLen+12 > len(data) {
			return nil, fmt.Errorf("%w: section table ends at entry %d", ErrTruncated, i)
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		size := binary.LittleEndian.Uint64(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+8:])
		off += 12
		entries = append(entries, entry{name: name, size: size, crc: crc})
	}

	sections := make([]Section, 0, len(entries))
	for _, e := range entries {
		if e.size > uint64(len(data)-off) {
			return nil, fmt.Errorf("%w: section %q declares %d bytes but %d remain",
				ErrTruncated, e.name, e.size, len(data)-off)
		}
		payload := data[off : off+int(e.size)]
		off += int(e.size)
		if got := crc32.ChecksumIEEE(payload); got != e.crc {
			return nil, fmt.Errorf("%w: section %q has crc %08x, want %08x", ErrChecksum, e.name, got, e.crc)
		}
		sections = append(sections, Section{Name: e.name, Payload: payload})
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailingData, len(data)-off)
	}
	return sections, nil
}
