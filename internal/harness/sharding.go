package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/router"
	"repro/internal/server"
)

// ShardingLevel reports one fleet size of the sharding experiment.
type ShardingLevel struct {
	// Shards is the fleet size (1 = a router over a single shard).
	Shards int
	// PartitionSeconds is the time to derive the shard databases.
	PartitionSeconds float64
	// QueryMicros / TopKMicros are mean per-request latencies through the
	// router (scatter + JSON hop + merge included).
	QueryMicros float64
	TopKMicros  float64
	// Identical reports whether the routed fleet matched the monolith
	// byte-for-byte over the full harness query fingerprint.
	Identical bool
	// QueriesChecked counts fingerprint entries compared.
	QueriesChecked int
}

// ShardingResult reports the sharding experiment: router overhead and
// answer identity versus the monolith at increasing fleet sizes.
type ShardingResult struct {
	Entities    int
	Extractions int
	// MonolithQueryMicros / MonolithTopKMicros are the direct-engine
	// baselines for the same workload.
	MonolithQueryMicros float64
	MonolithTopKMicros  float64
	Levels              []ShardingLevel
	// Err is non-empty when the experiment itself failed.
	Err string
}

// shardingWorkload samples the latency workload: every schema-targeting
// bank predicate alone, capped for runtime.
func shardingWorkload(d *corpus.Dataset, limit int) [][]string {
	var out [][]string
	for _, p := range d.Predicates {
		if p.Kind == corpus.KindOutOfSchema {
			continue
		}
		out = append(out, []string{p.Text})
		if len(out) == limit {
			break
		}
	}
	return out
}

// RunSharding builds a small hotel corpus, derives router fleets of
// 1/2/4/8 in-process shards, and measures scatter-gather overhead and
// byte-identity against the monolithic engine. ctx bounds every routed
// call.
func RunSharding(ctx context.Context, seed int64) ShardingResult {
	var res ShardingResult
	genCfg := corpus.SmallConfig()
	genCfg.Seed = seed
	d := corpus.GenerateHotels(genCfg)

	cfg := core.DefaultConfig()
	cfg.Seed = seed
	db, err := BuildDB(d, cfg, 400, 300)
	if err != nil {
		res.Err = fmt.Sprintf("build: %v", err)
		return res
	}
	res.Entities = len(d.Entities)
	res.Extractions = len(db.Extractions)

	workload := shardingWorkload(d, 40)
	opts := core.DefaultQueryOptions()
	timeEngine := func(eng QueryEngine) (qMicros, tMicros float64, err error) {
		start := time.Now()
		for _, q := range workload {
			if _, err := eng.RankPredicates(q, nil, opts); err != nil {
				return 0, 0, err
			}
		}
		qMicros = float64(time.Since(start).Microseconds()) / float64(len(workload))
		start = time.Now()
		for _, q := range workload {
			if _, _, err := eng.TopKThreshold(q, 10); err != nil {
				return 0, 0, err
			}
		}
		tMicros = float64(time.Since(start).Microseconds()) / float64(len(workload))
		return qMicros, tMicros, nil
	}

	// Warm the monolith's caches, then take the baseline.
	if _, _, err := timeEngine(db); err != nil {
		res.Err = fmt.Sprintf("warmup: %v", err)
		return res
	}
	if res.MonolithQueryMicros, res.MonolithTopKMicros, err = timeEngine(db); err != nil {
		res.Err = fmt.Sprintf("monolith: %v", err)
		return res
	}
	monolithFP, n := QueryFingerprint(d, db)

	for _, shards := range []int{1, 2, 4, 8} {
		if shards > res.Entities {
			continue
		}
		lv := ShardingLevel{Shards: shards, QueriesChecked: n}
		start := time.Now()
		rt, err := shardedRouter(db, shards)
		if err != nil {
			res.Err = fmt.Sprintf("%d shards: %v", shards, err)
			return res
		}
		lv.PartitionSeconds = time.Since(start).Seconds()
		eng := rt.Engine(ctx)
		routedFP, _ := QueryFingerprint(d, eng)
		lv.Identical = routedFP == monolithFP
		if lv.QueryMicros, lv.TopKMicros, err = timeEngine(eng); err != nil {
			res.Err = fmt.Sprintf("%d shards: %v", shards, err)
			return res
		}
		res.Levels = append(res.Levels, lv)
	}
	return res
}

// shardedRouter partitions db into n in-process shards behind a router.
func shardedRouter(db *core.DB, n int) (*router.Router, error) {
	shardDBs, parts, err := db.Shards(n)
	if err != nil {
		return nil, err
	}
	shards := make([]router.Shard, 0, n)
	for i, sdb := range shardDBs {
		ids := parts[i]
		shards = append(shards, router.Shard{
			Backend:     router.NewLocalBackend(fmt.Sprintf("shard%d", i), sdb, server.Options{}),
			FirstEntity: ids[0],
			LastEntity:  ids[len(ids)-1],
		})
	}
	return router.New(shards, router.Options{})
}

// FormatSharding renders the sharding experiment.
func FormatSharding(r ShardingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharding (scatter-gather router vs monolith; %d entities, %d extractions)\n",
		r.Entities, r.Extractions)
	if r.Err != "" {
		fmt.Fprintf(&b, "  FAILED: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  monolith (direct engine):    query %8.0f µs   topk %8.0f µs\n",
		r.MonolithQueryMicros, r.MonolithTopKMicros)
	for _, lv := range r.Levels {
		verdict := "IDENTICAL"
		if !lv.Identical {
			verdict = "MISMATCH (sharding contract broken)"
		}
		fmt.Fprintf(&b, "  %d shard(s) via router:       query %8.0f µs   topk %8.0f µs   partition %5.2fs   %d entries: %s\n",
			lv.Shards, lv.QueryMicros, lv.TopKMicros, lv.PartitionSeconds, lv.QueriesChecked, verdict)
	}
	return b.String()
}
