// Package harness wires the synthetic corpora into OpineDB builds and
// implements the experiment runners that regenerate every table and
// figure of the paper's evaluation (§5). cmd/benchall and the root
// bench_test.go are thin wrappers over this package.
package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
)

// BuildInputFromDataset assembles the construction input for a dataset:
// objective entity records, raw reviews, the designer's attribute specs
// with seeds, taggedN gold sentences for the extractor, and labelsN
// membership labels derived from latent ground truth (standing in for the
// paper's 1,000 hand-labeled tuples).
func BuildInputFromDataset(d *corpus.Dataset, taggedN, labelsN int, rng *rand.Rand) core.BuildInput {
	in := core.BuildInput{Name: d.Domain}
	for _, e := range d.Entities {
		obj := map[string]interface{}{
			"name": e.Name,
			"city": e.City,
		}
		if d.Domain == "hotel" {
			obj["price_pn"] = e.PricePerNight
			obj["capacity"] = int64(e.Capacity)
		} else {
			obj["price_range"] = int64(e.PriceRange)
			obj["cuisine"] = e.Cuisine
			obj["stars"] = e.Stars
		}
		in.Entities = append(in.Entities, core.EntityData{ID: e.ID, Objective: obj})
	}
	for _, rv := range d.Reviews {
		in.Reviews = append(in.Reviews, core.ReviewData{
			ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
			Day: rv.Day, Text: rv.Text,
		})
	}
	seeds := d.Seeds()
	for i, a := range d.Aspects {
		in.Attributes = append(in.Attributes, core.AttrSpec{
			Name:        a.Name,
			Categorical: a.Categorical,
			Seeds:       seeds[i],
		})
	}
	in.TaggedTraining = d.TaggedSentences(taggedN, rng)
	in.MembershipLabels = MembershipLabels(d, labelsN, rng)
	return in
}

// MembershipLabels samples labeled (entity, attribute, phrase) tuples from
// the latent ground truth: the phrase is a bank predicate over a schema
// attribute, the label is whether the entity's latent quality clears the
// predicate's threshold.
func MembershipLabels(d *corpus.Dataset, n int, rng *rand.Rand) []core.MembershipLabel {
	var inSchema []corpus.Predicate
	for _, p := range d.Predicates {
		if p.Kind == corpus.KindMarker || p.Kind == corpus.KindParaphrase {
			inSchema = append(inSchema, p)
		}
	}
	if len(inSchema) == 0 || len(d.Entities) == 0 {
		return nil
	}
	out := make([]core.MembershipLabel, 0, n)
	for i := 0; i < n; i++ {
		p := inSchema[rng.Intn(len(inSchema))]
		e := d.Entities[rng.Intn(len(d.Entities))]
		out = append(out, core.MembershipLabel{
			EntityID:  e.ID,
			Attribute: p.GoldAttribute,
			Phrase:    p.Text,
			Y:         p.Satisfied(e),
		})
	}
	return out
}

// BuildDB generates a dataset's database with the given config.
func BuildDB(d *corpus.Dataset, cfg core.Config, taggedN, labelsN int) (*core.DB, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	in := BuildInputFromDataset(d, taggedN, labelsN, rng)
	return core.Build(in, cfg)
}

// BuildDomain generates the named domain's corpus and builds its database
// with the serving defaults. It is the single construction path shared by
// cmd/opinedbb and cmd/opinedbd's build-in-process fallback: a replica
// that cannot find its snapshot builds exactly the corpus shape and
// config a snapshot-writing builder uses, so (by the build-determinism
// guarantee) it serves the same answers as its snapshot-loaded peers for
// the same seed.
func BuildDomain(domain string, small bool, seed int64, workers, taggedN, labelsN int, subindex bool) (*corpus.Dataset, *core.DB, error) {
	genCfg := corpus.DefaultConfig()
	if small {
		genCfg = corpus.SmallConfig()
	}
	genCfg.Seed = seed
	var d *corpus.Dataset
	switch domain {
	case "hotel":
		d = corpus.GenerateHotels(genCfg)
	case "restaurant":
		d = corpus.GenerateRestaurants(genCfg)
	default:
		return nil, nil, fmt.Errorf("harness: unknown domain %q (want hotel or restaurant)", domain)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.BuildWorkers = workers
	cfg.UseSubstitutionIndex = subindex
	db, err := BuildDB(d, cfg, taggedN, labelsN)
	if err != nil {
		return nil, nil, err
	}
	return d, db, nil
}

// Setting is one objective-filter query setting of Table 4/5.
type Setting struct {
	Name   string
	Domain string // "hotel" or "restaurant"
	Filter func(*corpus.Entity) bool
}

// Settings returns the four settings of the evaluation.
func Settings() []Setting {
	return []Setting{
		{
			Name: "London,<$300", Domain: "hotel",
			Filter: func(e *corpus.Entity) bool { return e.City == "london" && e.PricePerNight < 300 },
		},
		{
			Name: "Amsterdam", Domain: "hotel",
			Filter: func(e *corpus.Entity) bool { return e.City == "amsterdam" },
		},
		{
			Name: "Low Price", Domain: "restaurant",
			Filter: func(e *corpus.Entity) bool { return e.PriceRange == 1 },
		},
		{
			Name: "JP Cuisine", Domain: "restaurant",
			Filter: func(e *corpus.Entity) bool { return e.Cuisine == "japanese" },
		},
	}
}

// Candidates returns the entity-id set passing a setting's filter.
func Candidates(d *corpus.Dataset, s Setting) map[string]bool {
	out := map[string]bool{}
	for _, e := range d.Entities {
		if s.Filter(e) {
			out[e.ID] = true
		}
	}
	return out
}

// QuerySet is one generated workload: conjunctions of subjective
// predicates.
type QuerySet struct {
	// Difficulty is "easy" (2 conjuncts), "medium" (4) or "hard" (7).
	Difficulty string
	// Queries[i] is one conjunction (indices into the dataset's bank).
	Queries [][]int
}

// Difficulties maps names to conjunct counts (§5.2.2).
var Difficulties = []struct {
	Name      string
	Conjuncts int
}{
	{"easy", 2}, {"medium", 4}, {"hard", 7},
}

// SampleQueries draws n random conjunctions of the given size from the
// predicate bank by uniform sampling without replacement within a query.
func SampleQueries(bank []corpus.Predicate, n, conjuncts int, rng *rand.Rand) [][]int {
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		perm := rng.Perm(len(bank))
		q := make([]int, 0, conjuncts)
		for _, idx := range perm {
			// Exclude out-of-schema predicates from sampled workloads, as
			// the paper's collected predicates target schema aspects.
			if bank[idx].Kind == corpus.KindOutOfSchema {
				continue
			}
			q = append(q, idx)
			if len(q) == conjuncts {
				break
			}
		}
		out = append(out, q)
	}
	return out
}

// QueryQuality evaluates one ranking against ground truth: the §5.2.3
// sat(Q,E)/sat-max(Q) ratio.
func QueryQuality(d *corpus.Dataset, predIdx []int, ranking []string, candidates map[string]bool, k int) float64 {
	satFn := func(pi int, entityID string) bool {
		e := d.EntityByID(entityID)
		if e == nil {
			return false
		}
		return d.Predicates[predIdx[pi]].Satisfied(e)
	}
	var cands []string
	for id := range candidates {
		cands = append(cands, id)
	}
	if len(ranking) > k {
		ranking = ranking[:k]
	}
	s := eval.Sat(len(predIdx), ranking, satFn)
	m := eval.SatMax(len(predIdx), cands, k, satFn)
	if m <= 0 {
		return -1 // signal: skip this query
	}
	q := s / m
	if q > 1 {
		q = 1
	}
	return q
}

// PredTexts resolves predicate indices to their texts.
func PredTexts(d *corpus.Dataset, idx []int) []string {
	out := make([]string, len(idx))
	for i, pi := range idx {
		out[i] = d.Predicates[pi].Text
	}
	return out
}
