package harness

// Load-harness tests: the mixed-traffic runner against a real journaled
// fleet, and the byte-identity contract with /topk fragment memoization
// enabled — the full 948-entry harness fingerprint must be unchanged
// whether fragments come from the memo or from fresh Threshold-Algorithm
// runs.

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestFingerprintUnchangedWithTopKMemo runs the full 948-entry harness
// fingerprint against a memoizing fleet twice (the second pass answers
// /topk from memo fragments) and against a memo-disabled control fleet,
// and requires all three byte-identical.
func TestFingerprintUnchangedWithTopKMemo(t *testing.T) {
	ctx := context.Background()
	memoFl, err := BuildLoadFleet(t.TempDir(), LoadFleetOptions{Shards: 3, Seed: 7})
	if err != nil {
		t.Fatalf("memo fleet: %v", err)
	}
	controlFl, err := BuildLoadFleet(t.TempDir(), LoadFleetOptions{Shards: 3, Seed: 7, DisableTopKMemo: true})
	if err != nil {
		t.Fatalf("control fleet: %v", err)
	}

	cold, n := QueryFingerprint(memoFl.Dataset, memoFl.Router.Engine(ctx))
	if n != 948 {
		t.Errorf("fingerprint covers %d query-set entries, want the full 948", n)
	}
	warm, _ := QueryFingerprint(memoFl.Dataset, memoFl.Router.Engine(ctx))
	if warm != cold {
		t.Errorf("memoized fingerprint differs from cold fingerprint:\n  cold %s\n  warm %s", cold, warm)
	}
	control, cn := QueryFingerprint(controlFl.Dataset, controlFl.Router.Engine(ctx))
	if cn != n {
		t.Errorf("control fingerprint covers %d entries, memo fleet covered %d", cn, n)
	}
	if control != cold {
		t.Errorf("memo-enabled fingerprint differs from memo-disabled control:\n  memo    %s\n  control %s", cold, control)
	}

	// The warm pass must actually have been served from the memo —
	// otherwise this test proves nothing.
	hits := memoFl.Registry.Counter(server.MetricTopKMemoHits, "").Value()
	if hits == 0 {
		t.Error("memo fleet reports zero topk memo hits after a repeated fingerprint pass")
	}
	if got := controlFl.Registry.Counter(server.MetricTopKMemoHits, "").Value(); got != 0 {
		t.Errorf("memo-disabled fleet reports %d memo hits, want 0", got)
	}
}

// TestRunLoadMixJournaledFleet drives a short mixed run — all four op
// kinds — against an in-process journaled fleet and requires clean
// serving with measured latencies.
func TestRunLoadMixJournaledFleet(t *testing.T) {
	fl, err := BuildLoadFleet(t.TempDir(), LoadFleetOptions{Shards: 2, Seed: 3})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	res := RunLoadMix(context.Background(), HandlerLoadTarget(fl.Handler), fl.Dataset, LoadOptions{
		Mix:         DefaultLoadMix(),
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		Seed:        3,
	})
	if res.Err != "" {
		t.Fatalf("run: %s", res.Err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
	if res.TotalErrors != 0 {
		t.Fatalf("%d request errors: %+v", res.TotalErrors, res.PerOp)
	}
	for _, op := range []string{"query", "topk", "interpret", "reviews"} {
		st, ok := res.PerOp[op]
		if !ok || st.Ops == 0 {
			t.Errorf("op %s: no traffic driven", op)
			continue
		}
		if st.P99Micros <= 0 || st.P50Micros <= 0 {
			t.Errorf("op %s: zero percentiles over %d ops: %+v", op, st.Ops, st)
		}
		if st.P50Micros > st.P99Micros {
			t.Errorf("op %s: p50 %.0f > p99 %.0f", op, st.P50Micros, st.P99Micros)
		}
	}
	// The ingested reviews must have reached the shard journals.
	var journaled bool
	for _, set := range fl.JournalDirs {
		for _, dir := range set {
			if dir != "" {
				journaled = true
			}
		}
	}
	if !journaled {
		t.Error("no shard journal directories were wired")
	}
	// And the shared registry saw the traffic: requests, fsyncs, stages.
	text := fl.Registry.Text()
	for _, want := range []string{
		server.MetricRequestsTotal,
		server.MetricFsyncSeconds,
		server.MetricStageSeconds,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry text missing %s after load run", want)
		}
	}
}

// TestRunLoadMixRejectsEmptyMix guards the runner's input validation.
func TestRunLoadMixRejectsEmptyMix(t *testing.T) {
	res := RunLoadMix(context.Background(), nil, nil, LoadOptions{})
	if res.Err == "" {
		t.Fatal("empty mix accepted")
	}
}

// TestPercentile pins the nearest-rank percentile arithmetic.
func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want float64
	}{
		// Nearest-rank: ceil(q*n)-th smallest — p95 of 10 samples is the
		// 10th value, not an interpolation.
		{0.50, 50}, {0.90, 90}, {0.95, 100}, {0.99, 100}, {1.0, 100},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.q); got != c.want {
			t.Errorf("percentile(q=%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}
