package harness

// The benchall "load" experiment: one short mixed-traffic run against a
// journaled in-process fleet for SLO percentiles, plus targeted A/Bs of
// the two hot-path wins this repo carries — per-shard /topk fragment
// memoization, and the incremental journal prefix-hash chain that spares
// fleet.Repair its per-probe segment rescans.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/journal"
	"repro/internal/server"
)

// TopKMemoBench compares repeated /topk serving with fragment
// memoization on vs off over byte-identical request streams.
type TopKMemoBench struct {
	Requests      int     `json:"requests"`
	Predicates    int     `json:"predicates"`
	MemoOnMicros  float64 `json:"memo_on_micros_per_req"`
	MemoOffMicros float64 `json:"memo_off_micros_per_req"`
	Speedup       float64 `json:"speedup"`
	// BytesIdentical confirms both arms returned byte-identical bodies
	// for every predicate — memoization must not change answers.
	BytesIdentical bool `json:"bytes_identical"`
}

// PrefixHashBench compares repair-style prefix-hash probes served from
// the in-memory chain vs the on-disk segment rescan it replaced.
type PrefixHashBench struct {
	JournalRecords int     `json:"journal_records"`
	Probes         int     `json:"probes"`
	ChainMicros    float64 `json:"chain_micros_per_probe"`
	RescanMicros   float64 `json:"rescan_micros_per_probe"`
	Speedup        float64 `json:"speedup"`
	// HashesMatch confirms the chain and the rescan agree at every
	// probed sequence.
	HashesMatch bool `json:"hashes_match"`
}

// LoadBenchResult is the full "load" experiment.
type LoadBenchResult struct {
	Mixed      LoadResult      `json:"mixed"`
	TopKMemo   TopKMemoBench   `json:"topk_memo"`
	PrefixHash PrefixHashBench `json:"prefix_hash"`
	Err        string          `json:"error,omitempty"`
}

// RunLoad builds a journaled 4-shard fleet, drives it with the default
// mixed workload, then measures the two hot-path wins in isolation.
func RunLoad(ctx context.Context, seed int64) LoadBenchResult {
	var res LoadBenchResult
	dir, err := os.MkdirTemp("", "opinedb-load-*")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer os.RemoveAll(dir)

	fl, err := BuildLoadFleet(dir+"/fleet", LoadFleetOptions{Shards: 4, Seed: seed})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Mixed = RunLoadMix(ctx, HandlerLoadTarget(fl.Handler), fl.Dataset, LoadOptions{
		Mix:         DefaultLoadMix(),
		Concurrency: 8,
		Duration:    2 * time.Second,
		Seed:        seed,
	})

	memo, err := benchTopKMemo(ctx, dir, seed)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.TopKMemo = memo

	ph, err := benchPrefixHash(dir, seed)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.PrefixHash = ph
	return res
}

// benchTopKMemo replays the same /topk request stream against one
// shard server with fragment memoization on and one with it off —
// the memo is a per-shard win, so the bench hits the shard surface
// directly rather than burying the delta under router scatter
// overhead. Bodies are cross-checked byte-for-byte after zeroing the
// elapsed_ms wall-clock field (the one legitimately nondeterministic
// byte range in the payload).
func benchTopKMemo(ctx context.Context, dir string, seed int64) (TopKMemoBench, error) {
	var b TopKMemoBench
	genCfg := corpus.SmallConfig()
	genCfg.Seed = seed
	d := corpus.GenerateHotels(genCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	db, err := BuildDB(d, cfg, 400, 300)
	if err != nil {
		return b, err
	}
	memoOn := server.New(db, server.Options{})
	control := server.New(db, server.Options{DisableTopKMemo: true})

	var preds []string
	for _, p := range d.Predicates {
		if p.Kind == corpus.KindOutOfSchema {
			continue
		}
		preds = append(preds, p.Text)
		if len(preds) == 8 {
			break
		}
	}
	const rounds = 40
	b.Predicates = len(preds)
	b.Requests = rounds * len(preds)

	run := func(h http.Handler) (time.Duration, [][]byte, error) {
		do := HandlerLoadTarget(h)
		var bodies [][]byte
		// Warm-up round: populates the memo (treatment) and warms both
		// arms so the timed rounds compare steady state.
		for _, p := range preds {
			target := "/topk?predicate=" + url.QueryEscape(p) + "&k=10"
			status, body, err := do(ctx, http.MethodGet, target, nil)
			if err != nil {
				return 0, nil, err
			}
			if status != http.StatusOK {
				return 0, nil, fmt.Errorf("topk bench: status %d: %s", status, body)
			}
			bodies = append(bodies, body)
		}
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			for _, p := range preds {
				target := "/topk?predicate=" + url.QueryEscape(p) + "&k=10"
				if status, body, err := do(ctx, http.MethodGet, target, nil); err != nil {
					return 0, nil, err
				} else if status != http.StatusOK {
					return 0, nil, fmt.Errorf("topk bench: status %d: %s", status, body)
				}
			}
		}
		return time.Since(t0), bodies, nil
	}

	onDur, onBodies, err := run(memoOn)
	if err != nil {
		return b, err
	}
	offDur, offBodies, err := run(control)
	if err != nil {
		return b, err
	}
	b.BytesIdentical = len(onBodies) == len(offBodies)
	for i := 0; b.BytesIdentical && i < len(onBodies); i++ {
		b.BytesIdentical = bytes.Equal(stripElapsed(onBodies[i]), stripElapsed(offBodies[i]))
	}
	b.MemoOnMicros = float64(onDur.Microseconds()) / float64(b.Requests)
	b.MemoOffMicros = float64(offDur.Microseconds()) / float64(b.Requests)
	if b.MemoOnMicros > 0 {
		b.Speedup = b.MemoOffMicros / b.MemoOnMicros
	}
	return b, nil
}

// stripElapsed zeroes the elapsed_ms wall-clock field so two /topk
// payloads can be compared byte-for-byte. Unparseable bodies come back
// unchanged (the comparison then fails loudly, which is correct).
func stripElapsed(body []byte) []byte {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	m["elapsed_ms"] = json.RawMessage("0")
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return out
}

// benchPrefixHash writes a synthetic journal, then answers the same
// repair-style probes from the in-memory chain and from per-probe
// on-disk rescans.
func benchPrefixHash(dir string, seed int64) (PrefixHashBench, error) {
	var b PrefixHashBench
	jdir := dir + "/probe.journal"
	j, err := journal.Open(jdir, journal.Options{SyncEvery: 64})
	if err != nil {
		return b, err
	}
	const records = 2000
	for i := 0; i < records; i++ {
		_, err := j.Append(journal.Review{
			ID:       fmt.Sprintf("bench-%d-%d", seed, i),
			EntityID: fmt.Sprintf("h%03d", i%100),
			Reviewer: "bench",
			Day:      9000 + i,
			Text:     reviewPhrases[i%len(reviewPhrases)],
		})
		if err != nil {
			return b, err
		}
	}
	if err := j.Close(); err != nil {
		return b, err
	}
	b.JournalRecords = records

	ph, err := journal.NewPrefixHashes(jdir)
	if err != nil {
		return b, err
	}
	// Repair probes ask for the hash at the peer's sequence — spread the
	// probes across the journal the way a mixed-progress fleet would.
	const probes = 200
	seqs := make([]uint64, probes)
	for i := range seqs {
		seqs[i] = uint64(1 + (i*997)%records)
	}
	b.Probes = probes

	b.HashesMatch = true
	t0 := time.Now()
	chainHashes := make([]string, probes)
	for i, s := range seqs {
		chainHashes[i], _ = ph.At(s)
	}
	chainDur := time.Since(t0)

	t0 = time.Now()
	for i, s := range seqs {
		h, _, err := journal.PrefixHashAt(jdir, s)
		if err != nil {
			return b, err
		}
		if h != chainHashes[i] {
			b.HashesMatch = false
		}
	}
	rescanDur := time.Since(t0)

	b.ChainMicros = float64(chainDur.Microseconds()) / float64(probes)
	b.RescanMicros = float64(rescanDur.Microseconds()) / float64(probes)
	if b.ChainMicros > 0 {
		b.Speedup = b.RescanMicros / b.ChainMicros
	}
	return b, nil
}

// FormatLoadBench renders the load experiment for benchall's stdout.
func FormatLoadBench(r LoadBenchResult) string {
	var b strings.Builder
	if r.Err != "" {
		fmt.Fprintf(&b, "  FAILED: %s\n", r.Err)
		return b.String()
	}
	b.WriteString("  mixed traffic (4 journaled shards, default mix):\n")
	b.WriteString(FormatLoad(r.Mixed))
	fmt.Fprintf(&b, "  topk memoization: %d repeated requests over %d predicates\n",
		r.TopKMemo.Requests, r.TopKMemo.Predicates)
	fmt.Fprintf(&b, "    memo on %7.0f µs/req   memo off %7.0f µs/req   speedup %.2fx   bytes identical: %v\n",
		r.TopKMemo.MemoOnMicros, r.TopKMemo.MemoOffMicros, r.TopKMemo.Speedup, r.TopKMemo.BytesIdentical)
	fmt.Fprintf(&b, "  prefix-hash probes: %d probes over a %d-record journal\n",
		r.PrefixHash.Probes, r.PrefixHash.JournalRecords)
	fmt.Fprintf(&b, "    chain %7.2f µs/probe   rescan %7.2f µs/probe   speedup %.1fx   hashes match: %v\n",
		r.PrefixHash.ChainMicros, r.PrefixHash.RescanMicros, r.PrefixHash.Speedup, r.PrefixHash.HashesMatch)
	return b.String()
}
