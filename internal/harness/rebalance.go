package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fleet"
	"repro/internal/router"
	"repro/internal/snapshot"
)

// WriteFleet partitions a built database into n shards and writes the
// per-shard snapshots plus the checksummed manifest into dir (file names
// "<base>-shardK.snap", "<base>.manifest.json"), returning the manifest
// path. It is the one fleet-layout writer shared by the experiments and
// the smoke drills.
func WriteFleet(db *core.DB, dir, base string, n int, seed int64) (string, error) {
	return WriteReplicatedFleet(db, dir, base, n, 1, seed)
}

// WriteReplicatedFleet is WriteFleet with a uniform replica-set size
// recorded in the manifest. Replicas serve the same snapshot artifacts
// (one file per shard regardless of R — the digest chain covers every
// replica equally), so only the manifest changes shape.
func WriteReplicatedFleet(db *core.DB, dir, base string, n, replicas int, seed int64) (string, error) {
	if replicas < 0 {
		return "", fmt.Errorf("fleet: negative replica count %d", replicas)
	}
	if replicas == 1 {
		replicas = 0 // canonical single-replica manifest: field absent
	}
	return writeFleetManifest(db, dir, base, n, replicas, nil, seed)
}

// WritePerRangeFleet is WriteFleet with an explicit replica-set size per
// shard range (index-aligned; entries <= 0 mean 1), the deployment shape
// where a hot range runs R=3 while cold ranges stay single-replica. An
// all-ones assignment canonicalizes to the plain single-replica manifest.
func WritePerRangeFleet(db *core.DB, dir, base string, n int, perRange []int, seed int64) (string, error) {
	if len(perRange) != n {
		return "", fmt.Errorf("fleet: %d replica counts for %d shards", len(perRange), n)
	}
	uniform := true
	counts := make([]int, n)
	for i, r := range perRange {
		if r < 0 {
			return "", fmt.Errorf("fleet: negative replica count %d for range %d", r, i)
		}
		if r < 1 {
			r = 1
		}
		counts[i] = r
		if r != 1 {
			uniform = false
		}
	}
	if uniform {
		counts = nil
	}
	return writeFleetManifest(db, dir, base, n, 0, counts, seed)
}

// writeFleetManifest shards db and writes the snapshots plus a manifest
// carrying the given replica shape (uniform count, per-range counts, or
// neither for single-replica).
func writeFleetManifest(db *core.DB, dir, base string, n, replicas int, perRange []int, seed int64) (string, error) {
	shardDBs, parts, err := db.Shards(n)
	if err != nil {
		return "", err
	}
	m := &snapshot.Manifest{
		FormatVersion:    snapshot.FormatVersion,
		Name:             db.Name,
		BuildSeed:        seed,
		Shards:           n,
		Replicas:         replicas,
		ReplicasPerRange: perRange,
		TotalEntities:    len(db.EntityIDs()),
		CreatedUnix:      time.Now().Unix(),
	}
	for i, sdb := range shardDBs {
		ids := parts[i]
		path := filepath.Join(dir, fmt.Sprintf("%s-shard%d.snap", base, i))
		meta, err := snapshot.SaveShard(path, sdb, &snapshot.ShardMeta{
			Index: i, Count: n,
			Entities: len(ids), TotalEntities: len(db.EntityIDs()),
			FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
		})
		if err != nil {
			return "", fmt.Errorf("shard %d: %w", i, err)
		}
		m.Shard = append(m.Shard, snapshot.ManifestShard{
			Index: i, Path: filepath.Base(path),
			Entities: len(ids), FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
			SnapshotSHA256: meta.SHA256, SnapshotBytes: meta.FileBytes,
		})
	}
	manifestPath := filepath.Join(dir, base+".manifest.json")
	if err := snapshot.WriteManifest(manifestPath, m); err != nil {
		return "", err
	}
	return manifestPath, nil
}

// RebalanceStep reports one N→M rebalance of the experiment.
type RebalanceStep struct {
	From, To int
	// RebalanceSeconds is fleet.Rebalance's wall time (merge loaded
	// shards → re-partition → write M snapshots + manifest).
	RebalanceSeconds float64
	// Identical reports whether the rebalanced fleet matched the monolith
	// byte-for-byte over the full harness query fingerprint.
	Identical bool
}

// RebalanceResult reports the rebalance experiment: wall time of online
// N→M rebalancing versus the full-rebuild alternative (rebuild the
// corpus pipeline, then partition).
type RebalanceResult struct {
	Entities    int
	Extractions int
	// RebuildSeconds is the baseline: run the §4 construction pipeline
	// from the corpus again, then partition and write the target fleet.
	RebuildSeconds float64
	Steps          []RebalanceStep
	QueriesChecked int
	// Err is non-empty when the experiment itself failed.
	Err string
}

// RunRebalance builds a small hotel corpus, writes a 4-shard fleet, and
// measures online rebalancing (4→2, then 2→8) against the full-rebuild
// baseline, checking byte-identity at every step. ctx bounds every
// routed call.
func RunRebalance(ctx context.Context, seed int64) RebalanceResult {
	var res RebalanceResult
	genCfg := corpus.SmallConfig()
	genCfg.Seed = seed
	d := corpus.GenerateHotels(genCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	db, err := BuildDB(d, cfg, 400, 300)
	if err != nil {
		res.Err = fmt.Sprintf("build: %v", err)
		return res
	}
	res.Entities = len(d.Entities)
	res.Extractions = len(db.Extractions)
	monolithFP, n := QueryFingerprint(d, db)
	res.QueriesChecked = n

	dir, err := os.MkdirTemp("", "opinedb-rebalance-*")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer os.RemoveAll(dir)
	manifestPath, err := WriteFleet(db, dir, "hotel", 4, seed)
	if err != nil {
		res.Err = fmt.Sprintf("fleet: %v", err)
		return res
	}

	// Baseline: what reaching a 2-shard fleet costs without rebalancing —
	// the whole §4 pipeline again, then partition + write.
	start := time.Now()
	rebuilt, err := BuildDB(d, cfg, 400, 300)
	if err != nil {
		res.Err = fmt.Sprintf("rebuild: %v", err)
		return res
	}
	rdir, err := os.MkdirTemp("", "opinedb-rebuild-*")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer os.RemoveAll(rdir)
	if _, err := WriteFleet(rebuilt, rdir, "hotel", 2, seed); err != nil {
		res.Err = fmt.Sprintf("rebuild fleet: %v", err)
		return res
	}
	res.RebuildSeconds = time.Since(start).Seconds()

	for _, to := range []int{2, 8} {
		from := 4
		if len(res.Steps) > 0 {
			from = res.Steps[len(res.Steps)-1].To
		}
		step := RebalanceStep{From: from, To: to}
		start := time.Now()
		if _, err := fleet.Rebalance(manifestPath, to, fleet.RebalanceOptions{}); err != nil {
			res.Err = fmt.Sprintf("rebalance %d→%d: %v", from, to, err)
			return res
		}
		step.RebalanceSeconds = time.Since(start).Seconds()
		rt, _, err := router.FromManifest(manifestPath, router.ManifestOptions{})
		if err != nil {
			res.Err = fmt.Sprintf("load %d-shard fleet: %v", to, err)
			return res
		}
		fp, _ := QueryFingerprint(d, rt.Engine(ctx))
		step.Identical = fp == monolithFP
		res.Steps = append(res.Steps, step)
	}
	return res
}

// FormatRebalance renders the rebalance experiment.
func FormatRebalance(r RebalanceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rebalance (online N→M re-partitioning vs full rebuild; %d entities, %d extractions)\n",
		r.Entities, r.Extractions)
	if r.Err != "" {
		fmt.Fprintf(&b, "  FAILED: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  full rebuild → 2-shard fleet:  %6.2fs (pipeline + partition + write)\n", r.RebuildSeconds)
	for _, s := range r.Steps {
		verdict := "IDENTICAL"
		if !s.Identical {
			verdict = "MISMATCH (rebalance contract broken)"
		}
		speedup := 0.0
		if s.RebalanceSeconds > 0 {
			speedup = r.RebuildSeconds / s.RebalanceSeconds
		}
		fmt.Fprintf(&b, "  rebalance %d→%d shards:          %6.2fs (%4.1fx vs rebuild)   %d entries: %s\n",
			s.From, s.To, s.RebalanceSeconds, speedup, r.QueriesChecked, verdict)
	}
	return b.String()
}
