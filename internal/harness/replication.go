package harness

// The benchall "replication" experiment: what the replicated read fleet
// buys. Two arms:
//
//   - Throughput scaling: the same mixed read workload against fleets
//     whose every backend is paced to a fixed serial service time (a
//     sleeping mutex, so an in-process replica does not steal CPU from
//     its set-mates the way real compute would), at R=1/2/3. Read QPS
//     should scale ~linearly in R — the power-of-two-choices balancer
//     spreading scatter legs across the set is the whole mechanism.
//
//   - Hedging A/B: an R=2 fleet with one replica degraded by a fixed
//     per-request delay, driven with hedged scatter legs on vs off.
//     With hedging off, roughly half of the degraded shard's legs eat
//     the full delay; with it on, the adaptive (~p95) hedge fires a
//     second leg at the healthy replica and the tail collapses. The
//     A/B closes with the full query fingerprint against the monolith:
//     hedging under degradation must not change a byte.

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/router"
)

// pacedBackend serializes requests per backend behind a fixed service
// floor. The floor is slept, not computed, so R co-resident replicas
// genuinely serve in parallel — the capacity model the throughput arm
// needs.
type pacedBackend struct {
	inner   router.Backend
	service time.Duration
	mu      sync.Mutex
}

func (b *pacedBackend) Name() string { return b.inner.Name() }

func (b *pacedBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := time.NewTimer(b.service)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
	return b.inner.Do(ctx, method, target, body)
}

// ReplicaThroughput is one fleet size's read throughput.
type ReplicaThroughput struct {
	Replicas     int     `json:"replicas"`
	Nodes        int     `json:"nodes"`
	OpsPerSecond float64 `json:"ops_per_second"`
	TopKP99      float64 `json:"topk_p99_micros"`
	Errors       int     `json:"errors"`
}

// HedgeArm is one side of the slow-replica A/B.
type HedgeArm struct {
	Hedging      bool    `json:"hedging"`
	OpsPerSecond float64 `json:"ops_per_second"`
	TopKP50      float64 `json:"topk_p50_micros"`
	TopKP99      float64 `json:"topk_p99_micros"`
	QueryP99     float64 `json:"query_p99_micros"`
	HedgesFired  uint64  `json:"hedges_fired"`
	HedgeWins    uint64  `json:"hedge_wins"`
	Errors       int     `json:"errors"`
}

// ReplicationResult is the full "replication" experiment.
type ReplicationResult struct {
	// ServiceMillis is the paced per-request service floor of the
	// throughput arm's backends.
	ServiceMillis float64             `json:"service_millis"`
	Throughput    []ReplicaThroughput `json:"throughput"`
	// SlowReplicaMillis is the injected delay on the degraded replica of
	// the hedging A/B.
	SlowReplicaMillis float64  `json:"slow_replica_millis"`
	HedgeOff          HedgeArm `json:"hedge_off"`
	HedgeOn           HedgeArm `json:"hedge_on"`
	// Identical reports whether the degraded R=2 fleet, queried with
	// hedging enabled, matched the monolith byte-for-byte over the full
	// harness query fingerprint.
	Identical      bool   `json:"identical"`
	QueriesChecked int    `json:"queries_checked"`
	Err            string `json:"error,omitempty"`
}

const (
	replBenchShards  = 3
	replBenchService = 5 * time.Millisecond
	replBenchSlow    = 20 * time.Millisecond
)

// RunReplication measures read-throughput scaling at R=1/2/3 and the
// hedged-scatter tail win under a degraded replica, then closes with
// the byte-identity check. ctx bounds every routed call.
func RunReplication(ctx context.Context, seed int64) ReplicationResult {
	res := ReplicationResult{
		ServiceMillis:     float64(replBenchService.Microseconds()) / 1000,
		SlowReplicaMillis: float64(replBenchSlow.Microseconds()) / 1000,
	}
	dir, err := os.MkdirTemp("", "opinedb-replication-*")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer os.RemoveAll(dir)

	// Arm 1: throughput scaling. Hedging off — under saturation a hedge
	// is extra load, and this arm measures balancing, not tail rescue.
	for r := 1; r <= 3; r++ {
		fl, err := BuildLoadFleet(fmt.Sprintf("%s/r%d", dir, r), LoadFleetOptions{
			Shards:         replBenchShards,
			Replicas:       r,
			Seed:           seed,
			DisableHedging: true,
			WrapBackend: func(shard, replica int, b router.Backend) router.Backend {
				return &pacedBackend{inner: b, service: replBenchService}
			},
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		// A short discarded pass first: it warms the per-shard memo and lets
		// the freshly built fleet's allocation storm settle, so the measured
		// window sees steady-state pacing rather than cold-start stalls.
		RunLoadMix(ctx, HandlerLoadTarget(fl.Handler), fl.Dataset, LoadOptions{
			Mix:         LoadMix{TopK: 1},
			Concurrency: 8,
			Duration:    400 * time.Millisecond,
			Seed:        seed + 17,
			K:           5,
		})
		load := RunLoadMix(ctx, HandlerLoadTarget(fl.Handler), fl.Dataset, LoadOptions{
			Mix:         LoadMix{TopK: 1},
			Concurrency: 8,
			Duration:    1500 * time.Millisecond,
			Seed:        seed,
			K:           5,
		})
		if load.Err != "" {
			res.Err = load.Err
			return res
		}
		res.Throughput = append(res.Throughput, ReplicaThroughput{
			Replicas:     r,
			Nodes:        fl.Router.NumNodes(),
			OpsPerSecond: load.OpsPerSecond,
			TopKP99:      load.PerOp["topk"].P99Micros,
			Errors:       load.TotalErrors,
		})
	}

	// Arm 2: slow-replica A/B on identical R=2 fleets, read-only mix (a
	// write would serialize under the router's write mutex and smear
	// both arms equally but noisily).
	runArm := func(hedge bool) (HedgeArm, *LoadFleet, error) {
		arm := HedgeArm{Hedging: hedge}
		sub := "hedge-on"
		if !hedge {
			sub = "hedge-off"
		}
		fl, err := BuildLoadFleet(dir+"/"+sub, LoadFleetOptions{
			Shards:         replBenchShards,
			Replicas:       2,
			Seed:           seed,
			DisableHedging: !hedge,
			SlowReplica:    replBenchSlow,
		})
		if err != nil {
			return arm, nil, err
		}
		load := RunLoadMix(ctx, HandlerLoadTarget(fl.Handler), fl.Dataset, LoadOptions{
			Mix:         LoadMix{Query: 1, TopK: 1},
			Concurrency: 4,
			Duration:    1500 * time.Millisecond,
			Seed:        seed,
			K:           5,
		})
		if load.Err != "" {
			return arm, nil, fmt.Errorf("%s", load.Err)
		}
		arm.OpsPerSecond = load.OpsPerSecond
		arm.TopKP50 = load.PerOp["topk"].P50Micros
		arm.TopKP99 = load.PerOp["topk"].P99Micros
		arm.QueryP99 = load.PerOp["query"].P99Micros
		arm.HedgesFired, arm.HedgeWins = fl.Router.HedgeStats()
		arm.Errors = load.TotalErrors
		return arm, fl, nil
	}
	off, _, err := runArm(false)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.HedgeOff = off
	on, fl, err := runArm(true)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.HedgeOn = on

	// Byte-identity: the hedge-on fleet — one replica still slow, hedging
	// still firing — must reproduce the monolith exactly. The arm's mix
	// was read-only, so the build-time monolith is the reference as-is.
	monoFP, n := QueryFingerprint(fl.Dataset, fl.DB)
	routedFP, _ := QueryFingerprint(fl.Dataset, fl.Router.Engine(ctx))
	res.Identical = monoFP == routedFP
	res.QueriesChecked = n
	return res
}

// FormatReplication renders the replication experiment for benchall's
// stdout.
func FormatReplication(r ReplicationResult) string {
	var b strings.Builder
	if r.Err != "" {
		fmt.Fprintf(&b, "  FAILED: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  read throughput vs replica count (%d shards, %.0fms paced service time, hedging off):\n",
		replBenchShards, r.ServiceMillis)
	var base float64
	for _, t := range r.Throughput {
		if t.Replicas == 1 {
			base = t.OpsPerSecond
		}
		scale := 1.0
		if base > 0 {
			scale = t.OpsPerSecond / base
		}
		fmt.Fprintf(&b, "    R=%d (%d nodes): %7.0f ops/s (%.2fx)   topk p99 %8.0f µs   errors %d\n",
			t.Replicas, t.Nodes, t.OpsPerSecond, scale, t.TopKP99, t.Errors)
	}
	fmt.Fprintf(&b, "  hedging A/B (R=2, one replica +%.0fms):\n", r.SlowReplicaMillis)
	for _, a := range []HedgeArm{r.HedgeOff, r.HedgeOn} {
		mode := "off"
		if a.Hedging {
			mode = "on "
		}
		fmt.Fprintf(&b, "    hedge %s: %6.0f ops/s   topk p50 %8.0f µs   p99 %8.0f µs   query p99 %8.0f µs   hedges %d (won %d)   errors %d\n",
			mode, a.OpsPerSecond, a.TopKP50, a.TopKP99, a.QueryP99, a.HedgesFired, a.HedgeWins, a.Errors)
	}
	if r.HedgeOn.TopKP99 > 0 {
		fmt.Fprintf(&b, "    p99 win: %.1fx (topk)\n", r.HedgeOff.TopKP99/r.HedgeOn.TopKP99)
	}
	fmt.Fprintf(&b, "  byte-identity under degradation+hedging: %v (%d query-set entries)\n",
		r.Identical, r.QueriesChecked)
	return b.String()
}
