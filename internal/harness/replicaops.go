package harness

// The benchall "replicaops" experiment: what operable replica sets buy.
// Two arms over one fleet whose HOT range (shard 0) is paced to a fixed
// serial service time while the cold ranges serve at full speed — the
// skewed shape per-range replica counts exist for:
//
//   - Join vs rebuild: wall time of a live replica join on the hot
//     range (digest-verified snapshot load + journal-suffix catch-up +
//     admission under the write mutex) against the full
//     build-and-write-fleet path, the only alternative before live
//     membership changes existed.
//
//   - Targeted scaling: scatter read throughput before and after
//     growing ONLY the hot range 1→3 with live joins. The hot range
//     gates every scatter, so its capacity sets fleet throughput; the
//     cold ranges never pay for replicas they do not need.
//
// Closes with the byte-identity check: the scaled fleet, joiners load-
// bearing, must reproduce the write-enriched monolith exactly.

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/router"
)

// JoinTiming is one live join's cost.
type JoinTiming struct {
	Replica    int     `json:"replica"`
	Seconds    float64 `json:"seconds"`
	Backfilled int     `json:"backfilled"`
}

// ReplicaOpsArm is one side of the before/after throughput comparison.
type ReplicaOpsArm struct {
	HotReplicas  int     `json:"hot_replicas"`
	Nodes        int     `json:"nodes"`
	OpsPerSecond float64 `json:"ops_per_second"`
	TopKP99      float64 `json:"topk_p99_micros"`
	Errors       int     `json:"errors"`
}

// ReplicaOpsResult is the full "replicaops" experiment.
type ReplicaOpsResult struct {
	// ServiceMillis is the paced per-request service floor of the hot
	// range's backends; the cold ranges are unpaced.
	ServiceMillis float64 `json:"service_millis"`
	Shards        int     `json:"shards"`
	HotRange      int     `json:"hot_range"`
	// RebuildSeconds is the full corpus→build→write-fleet→serve path —
	// what adding a replica cost before live joins.
	RebuildSeconds float64       `json:"rebuild_seconds"`
	Joins          []JoinTiming  `json:"joins"`
	Before         ReplicaOpsArm `json:"before"`
	After          ReplicaOpsArm `json:"after"`
	// Identical reports whether the scaled fleet (joiners in the pick)
	// matched the write-enriched monolith byte-for-byte.
	Identical      bool   `json:"identical"`
	QueriesChecked int    `json:"queries_checked"`
	Err            string `json:"error,omitempty"`
}

const (
	replicaOpsShards  = 3
	replicaOpsHot     = 0
	replicaOpsService = 5 * time.Millisecond
)

// RunReplicaOps measures live-join cost against a full rebuild and the
// read-throughput win of scaling only the hot range 1→3, then closes
// with the byte-identity check. ctx bounds every routed call.
func RunReplicaOps(ctx context.Context, seed int64) ReplicaOpsResult {
	res := ReplicaOpsResult{
		ServiceMillis: float64(replicaOpsService.Microseconds()) / 1000,
		Shards:        replicaOpsShards,
		HotRange:      replicaOpsHot,
	}
	dir, err := os.MkdirTemp("", "opinedb-replicaops-*")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer os.RemoveAll(dir)

	buildStart := time.Now()
	fl, err := BuildLoadFleet(dir, LoadFleetOptions{
		Shards:         replicaOpsShards,
		Seed:           seed,
		DisableHedging: true, // this experiment measures capacity, not tail rescue
		WrapBackend: func(shard, replica int, b router.Backend) router.Backend {
			if shard == replicaOpsHot {
				return &pacedBackend{inner: b, service: replicaOpsService}
			}
			return b
		},
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.RebuildSeconds = time.Since(buildStart).Seconds()

	// Seed the journals with real write traffic (and warm the memo), so
	// the joins below catch up on an actual suffix rather than an empty
	// chain.
	RunLoadMix(ctx, HandlerLoadTarget(fl.Handler), fl.Dataset, LoadOptions{
		Mix:         LoadMix{TopK: 2, Reviews: 1},
		Concurrency: 4,
		Duration:    800 * time.Millisecond,
		Seed:        seed + 17,
		K:           5,
	})

	measure := func() (ReplicaOpsArm, error) {
		load := RunLoadMix(ctx, HandlerLoadTarget(fl.Handler), fl.Dataset, LoadOptions{
			Mix:         LoadMix{TopK: 1},
			Concurrency: 8,
			Duration:    1500 * time.Millisecond,
			Seed:        seed,
			K:           5,
		})
		if load.Err != "" {
			return ReplicaOpsArm{}, fmt.Errorf("%s", load.Err)
		}
		return ReplicaOpsArm{
			HotReplicas:  len(fl.JournalDirs[replicaOpsHot]),
			Nodes:        fl.Router.NumNodes(),
			OpsPerSecond: load.OpsPerSecond,
			TopKP99:      load.PerOp["topk"].P99Micros,
			Errors:       load.TotalErrors,
		}, nil
	}
	if res.Before, err = measure(); err != nil {
		res.Err = err.Error()
		return res
	}

	// Scale the hot range 1→3 with live joins, timing each.
	for len(fl.JournalDirs[replicaOpsHot]) < 3 {
		t0 := time.Now()
		joiner, err := fl.NewJoinerBackend(replicaOpsHot)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		rep, err := fl.Router.AdmitReplica(ctx, replicaOpsHot, joiner)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Joins = append(res.Joins, JoinTiming{
			Replica:    rep.Replica,
			Seconds:    time.Since(t0).Seconds(),
			Backfilled: rep.Presync.Backfilled + rep.Final.Backfilled,
		})
	}
	if res.After, err = measure(); err != nil {
		res.Err = err.Error()
		return res
	}

	// Byte-identity with the joiners load-bearing: fold the fleet-ordered
	// writes into the build-time monolith, then fingerprint both.
	if _, err := fl.ReplayOwnedWrites(); err != nil {
		res.Err = err.Error()
		return res
	}
	monoFP, n := QueryFingerprint(fl.Dataset, fl.DB)
	routedFP, _ := QueryFingerprint(fl.Dataset, fl.Router.Engine(ctx))
	res.Identical = monoFP == routedFP
	res.QueriesChecked = n
	return res
}

// FormatReplicaOps renders the replicaops experiment for benchall's
// stdout.
func FormatReplicaOps(r ReplicaOpsResult) string {
	var b strings.Builder
	if r.Err != "" {
		fmt.Fprintf(&b, "  FAILED: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  fleet: %d shards, hot range %d paced to %.0fms service, cold ranges unpaced\n",
		r.Shards, r.HotRange, r.ServiceMillis)
	var joinTotal float64
	for _, j := range r.Joins {
		fmt.Fprintf(&b, "  live join replica %d: %7.3fs (%d records backfilled)\n", j.Replica, j.Seconds, j.Backfilled)
		joinTotal += j.Seconds
	}
	if len(r.Joins) > 0 {
		avg := joinTotal / float64(len(r.Joins))
		fmt.Fprintf(&b, "  join vs full rebuild: %.3fs avg vs %.1fs (%.0fx faster)\n",
			avg, r.RebuildSeconds, r.RebuildSeconds/avg)
	}
	for _, a := range []ReplicaOpsArm{r.Before, r.After} {
		fmt.Fprintf(&b, "  hot range R=%d (%d nodes): %7.0f ops/s   topk p99 %8.0f µs   errors %d\n",
			a.HotReplicas, a.Nodes, a.OpsPerSecond, a.TopKP99, a.Errors)
	}
	if r.Before.OpsPerSecond > 0 {
		fmt.Fprintf(&b, "  scatter throughput win from scaling only the hot range: %.2fx\n",
			r.After.OpsPerSecond/r.Before.OpsPerSecond)
	}
	fmt.Fprintf(&b, "  byte-identity with joiners load-bearing: %v (%d query-set entries)\n",
		r.Identical, r.QueriesChecked)
	return b.String()
}
