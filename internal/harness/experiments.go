package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/extract"
	"repro/internal/sentiment"
	"repro/internal/survey"
	"repro/internal/textproc"
)

// ---------------------------------------------------------------------------
// Table 3 — the need for experiential search
// ---------------------------------------------------------------------------

// Table3Row is one domain row of Table 3.
type Table3Row struct {
	Domain        string
	SubjectivePct float64
	Examples      []string
}

// RunTable3 simulates the §5.1 user study: 30 workers, 7 criteria each.
func RunTable3(seed int64) []Table3Row {
	rng := rand.New(rand.NewSource(seed))
	var out []Table3Row
	for _, r := range survey.Run(30, 7, rng) {
		out = append(out, Table3Row{Domain: r.Domain, SubjectivePct: r.SubjectivePct, Examples: r.Examples})
	}
	return out
}

// FormatTable3 renders the rows paper-style.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Subjective attributes in different domains.\n")
	fmt.Fprintf(&b, "%-12s %-10s %s\n", "Domain", "%Subj.Attr", "Some examples")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10.1f %s\n", r.Domain, r.SubjectivePct, strings.Join(r.Examples, ", "))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 4 — review statistics per query setting
// ---------------------------------------------------------------------------

// Table4Row is one setting row of Table 4.
type Table4Row struct {
	Setting     string
	Entities    int
	Reviews     int
	AvgWords    float64
	AvgPolarity float64
}

// RunTable4 computes the corpus statistics of the four settings.
func RunTable4(hotels, restaurants *corpus.Dataset) []Table4Row {
	var out []Table4Row
	for _, s := range Settings() {
		d := hotels
		if s.Domain == "restaurant" {
			d = restaurants
		}
		cands := Candidates(d, s)
		var reviews, words int
		var pol float64
		for _, rv := range d.Reviews {
			if !cands[rv.EntityID] {
				continue
			}
			reviews++
			toks := textproc.Tokenize(rv.Text)
			words += len(toks)
			pol += sentiment.ScoreTokens(toks)
		}
		row := Table4Row{Setting: s.Name, Entities: len(cands), Reviews: reviews}
		if reviews > 0 {
			row.AvgWords = float64(words) / float64(reviews)
			row.AvgPolarity = pol / float64(reviews)
		}
		out = append(out, row)
	}
	return out
}

// FormatTable4 renders the rows paper-style.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Review statistics.\n")
	fmt.Fprintf(&b, "%-14s %9s %9s %10s %12s\n", "Setting", "#Entities", "#Reviews", "avg #words", "avg polarity")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %9d %10.2f %12.2f\n", r.Setting, r.Entities, r.Reviews, r.AvgWords, r.AvgPolarity)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 5 — query result quality vs baselines
// ---------------------------------------------------------------------------

// Table5Methods lists the compared systems in paper order.
var Table5Methods = []string{
	"GZ12 (IR-based)", "ByPrice", "ByRating", "1-Attribute", "2-Attribute", "OpineDB",
}

// Table5Cell is one mean ± CI entry.
type Table5Cell struct {
	Mean float64
	CI   float64
}

// Table5Result holds one setting's method × difficulty grid.
type Table5Result struct {
	Setting string
	// Cells[method][difficulty] — difficulties "easy", "medium", "hard".
	Cells map[string]map[string]Table5Cell
}

// Table5Config sizes the experiment (paper: 100 queries × 10 trials).
type Table5Config struct {
	QueriesPerSet int
	Trials        int
	TopK          int
	Seed          int64
}

// DefaultTable5Config returns a laptop-scale configuration.
func DefaultTable5Config() Table5Config {
	return Table5Config{QueriesPerSet: 40, Trials: 3, TopK: 10, Seed: 11}
}

// RunTable5 reproduces the §5.3 comparison for both domains.
func RunTable5(hotels, restaurants *corpus.Dataset, hotelDB, restDB *core.DB, cfg Table5Config) []Table5Result {
	var out []Table5Result
	for _, s := range Settings() {
		d, db := hotels, hotelDB
		if s.Domain == "restaurant" {
			d, db = restaurants, restDB
		}
		out = append(out, runTable5Setting(d, db, s, cfg))
	}
	return out
}

func runTable5Setting(d *corpus.Dataset, db *core.DB, s Setting, cfg Table5Config) Table5Result {
	res := Table5Result{Setting: s.Name, Cells: map[string]map[string]Table5Cell{}}
	for _, m := range Table5Methods {
		res.Cells[m] = map[string]Table5Cell{}
	}
	cands := Candidates(d, s)
	gz := baselines.NewGZ12(d)
	var attrScores map[string]map[string]float64
	if s.Domain == "hotel" {
		attrScores = baselines.HotelAttributeScores(d)
	} else {
		attrScores = baselines.RestaurantAttributeScores(d)
	}
	candFn := func(id string) bool { return cands[id] }
	opts := core.DefaultQueryOptions()
	opts.TopK = cfg.TopK

	for _, diff := range Difficulties {
		trialQ := map[string][]float64{}
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*1009 + int64(diff.Conjuncts)))
			queries := SampleQueries(d.Predicates, cfg.QueriesPerSet, diff.Conjuncts, rng)
			perMethod := map[string][]float64{}
			for _, q := range queries {
				texts := PredTexts(d, q)
				quality := func(ranking []string) float64 {
					v := QueryQuality(d, q, ranking, cands, cfg.TopK)
					if v < 0 {
						return 0
					}
					return v
				}
				rankings := map[string][]string{}
				rankings["GZ12 (IR-based)"] = gz.Rank(texts, cands, cfg.TopK)
				if s.Domain == "hotel" {
					rankings["ByPrice"] = baselines.RankByRating(d, func(e *corpus.Entity) float64 { return -e.PricePerNight }, cands, cfg.TopK)
					rankings["ByRating"] = baselines.RankByRating(d, avgPlatformRating, cands, cfg.TopK)
				} else {
					rankings["ByPrice"] = baselines.RankByRating(d, func(e *corpus.Entity) float64 { return -float64(e.PriceRange) }, cands, cfg.TopK)
					rankings["ByRating"] = baselines.RankByRating(d, func(e *corpus.Entity) float64 { return e.Stars }, cands, cfg.TopK)
				}
				rankings["1-Attribute"] = baselines.BestAttributeCombo(attrScores, 1, cfg.TopK, cands, quality)
				rankings["2-Attribute"] = baselines.BestAttributeCombo(attrScores, 2, cfg.TopK, cands, quality)
				if qr, err := db.RankPredicates(texts, candFn, opts); err == nil {
					ids := make([]string, len(qr.Rows))
					for i, r := range qr.Rows {
						ids[i] = r.EntityID
					}
					rankings["OpineDB"] = ids
				}
				for m, ranking := range rankings {
					if v := QueryQuality(d, q, ranking, cands, cfg.TopK); v >= 0 {
						perMethod[m] = append(perMethod[m], v)
					}
				}
			}
			for m, vals := range perMethod {
				mean, _ := eval.MeanCI(vals)
				trialQ[m] = append(trialQ[m], mean)
			}
		}
		for m, vals := range trialQ {
			mean, ci := eval.MeanCI(vals)
			res.Cells[m][diff.Name] = Table5Cell{Mean: mean, CI: ci}
		}
	}
	return res
}

func avgPlatformRating(e *corpus.Entity) float64 {
	var sum float64
	var n int
	for _, v := range e.PlatformRatings {
		sum += v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FormatTable5 renders the grids paper-style.
func FormatTable5(results []Table5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Query result quality (NDCG@10-style sat ratio).\n")
	for _, res := range results {
		fmt.Fprintf(&b, "\n[%s]\n%-18s %8s %8s %8s\n", res.Setting, "Method", "easy", "medium", "hard")
		for _, m := range Table5Methods {
			fmt.Fprintf(&b, "%-18s", m)
			for _, diff := range Difficulties {
				c := res.Cells[m][diff.Name]
				fmt.Fprintf(&b, " %8.2f", c.Mean)
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 6 — extractor quality vs prior state of the art
// ---------------------------------------------------------------------------

// Table6Row is one dataset row.
type Table6Row struct {
	Dataset string
	Train   int
	Test    int
	SOTAF1  float64 // rule-tagger baseline (prior-SOTA stand-in)
	OurF1   float64
	OurCI   float64
}

// RunTable6 evaluates the learned tagger against the rule baseline on the
// four tagging datasets, averaging trials training runs.
func RunTable6(trials int, seed int64) []Table6Row {
	datasets := []struct {
		name    string
		aspects []corpus.AspectSpec
		fillers []string
		train   int
		test    int
	}{
		{"SemEval-14 Restaurant", corpus.RestaurantAspects(), corpus.RestaurantFillers(), 3041, 800},
		{"SemEval-14 Laptop", corpus.LaptopAspects(), corpus.LaptopFillers(), 3045, 800},
		{"SemEval-15 Restaurant", corpus.RestaurantAspects(), corpus.RestaurantFillers(), 1315, 685},
		{"Booking.com Hotel", corpus.HotelAspects(), corpus.HotelFillers(), 800, 112},
	}
	var out []Table6Row
	for di, ds := range datasets {
		dataRng := rand.New(rand.NewSource(seed + int64(di)*31))
		train, test := corpus.TaggedSplit(ds.aspects, ds.fillers, ds.train, ds.test, dataRng)
		rule := extract.EvaluateTagger(extract.NewRuleTagger(), test)
		var f1s []float64
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(seed + int64(di)*31 + int64(trial)*101 + 1))
			m, err := extract.TrainPerceptron(train, 6, rng)
			if err != nil {
				continue
			}
			f1s = append(f1s, extract.EvaluateTagger(m, test).Combined*100)
		}
		mean, ci := eval.MeanCI(f1s)
		out = append(out, Table6Row{
			Dataset: ds.name, Train: ds.train, Test: ds.test,
			SOTAF1: rule.Combined * 100, OurF1: mean, OurCI: ci,
		})
	}
	return out
}

// FormatTable6 renders the rows paper-style.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: Extractor F1 (combined aspect/opinion).\n")
	fmt.Fprintf(&b, "%-24s %6s %6s %10s %16s\n", "Dataset", "Train", "Test", "SOTA", "Our Model")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %6d %6d %10.2f %10.2f ± %.2f\n",
			r.Dataset, r.Train, r.Test, r.SOTAF1, r.OurF1, r.OurCI)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 7 — marker summaries: accuracy and speedup
// ---------------------------------------------------------------------------

// Table7Column is one query-set column.
type Table7Column struct {
	Setting          string
	LRAccuracyMkrs   float64
	LRAccuracyNoMkrs float64
	NDCGMkrs         float64
	NDCGNoMkrs       float64
	RuntimeMkrs      time.Duration // per QueriesPerSet queries
	RuntimeNoMkrs    time.Duration
	Speedup          float64
}

// Table7Config sizes the ablation.
type Table7Config struct {
	QueriesPerSet int
	Conjuncts     int
	TopK          int
	Seed          int64
}

// DefaultTable7Config mirrors the paper's 100-query runtime unit.
func DefaultTable7Config() Table7Config {
	return Table7Config{QueriesPerSet: 100, Conjuncts: 4, TopK: 10, Seed: 23}
}

// RunTable7 compares the marker-summary membership path against the
// no-marker scan path on every query setting.
func RunTable7(hotels, restaurants *corpus.Dataset, hotelDB, restDB *core.DB, cfg Table7Config) []Table7Column {
	var out []Table7Column
	for _, s := range Settings() {
		d, db := hotels, hotelDB
		if s.Domain == "restaurant" {
			d, db = restaurants, restDB
		}
		cands := Candidates(d, s)
		candFn := func(id string) bool { return cands[id] }
		rng := rand.New(rand.NewSource(cfg.Seed))
		queries := SampleQueries(d.Predicates, cfg.QueriesPerSet, cfg.Conjuncts, rng)

		col := Table7Column{
			Setting:          s.Name,
			LRAccuracyMkrs:   db.Membership.MarkerAccuracy,
			LRAccuracyNoMkrs: db.Membership.ScanAccuracy,
		}
		for _, useMarkers := range []bool{true, false} {
			opts := core.DefaultQueryOptions()
			opts.TopK = cfg.TopK
			opts.UseMarkers = useMarkers
			var qualities []float64
			start := time.Now()
			for _, q := range queries {
				texts := PredTexts(d, q)
				qr, err := db.RankPredicates(texts, candFn, opts)
				if err != nil {
					continue
				}
				ids := make([]string, len(qr.Rows))
				for i, r := range qr.Rows {
					ids[i] = r.EntityID
				}
				if v := QueryQuality(d, q, ids, cands, cfg.TopK); v >= 0 {
					qualities = append(qualities, v)
				}
			}
			elapsed := time.Since(start)
			mean, _ := eval.MeanCI(qualities)
			if useMarkers {
				col.NDCGMkrs, col.RuntimeMkrs = mean, elapsed
			} else {
				col.NDCGNoMkrs, col.RuntimeNoMkrs = mean, elapsed
			}
		}
		if col.RuntimeMkrs > 0 {
			col.Speedup = float64(col.RuntimeNoMkrs) / float64(col.RuntimeMkrs)
		}
		out = append(out, col)
	}
	return out
}

// FormatTable7 renders the columns paper-style.
func FormatTable7(cols []Table7Column) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: OpineDB with markers (10-mkrs) vs no markers.\n")
	fmt.Fprintf(&b, "%-14s", "")
	for _, c := range cols {
		fmt.Fprintf(&b, " %14s", c.Setting)
	}
	fmt.Fprintf(&b, "\n10-mkrs LR-acc")
	for _, c := range cols {
		fmt.Fprintf(&b, " %14.2f", c.LRAccuracyMkrs)
	}
	fmt.Fprintf(&b, "\n        NDCG  ")
	for _, c := range cols {
		fmt.Fprintf(&b, " %14.2f", c.NDCGMkrs)
	}
	fmt.Fprintf(&b, "\n        Time  ")
	for _, c := range cols {
		fmt.Fprintf(&b, " %13.2fs", c.RuntimeMkrs.Seconds())
	}
	fmt.Fprintf(&b, "\nno-mkrs LR-acc")
	for _, c := range cols {
		fmt.Fprintf(&b, " %14.2f", c.LRAccuracyNoMkrs)
	}
	fmt.Fprintf(&b, "\n        NDCG  ")
	for _, c := range cols {
		fmt.Fprintf(&b, " %14.2f", c.NDCGNoMkrs)
	}
	fmt.Fprintf(&b, "\n        Time  ")
	for _, c := range cols {
		fmt.Fprintf(&b, " %13.2fs", c.RuntimeNoMkrs.Seconds())
	}
	fmt.Fprintf(&b, "\nSpeedup       ")
	for _, c := range cols {
		fmt.Fprintf(&b, " %13.2fx", c.Speedup)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 8 — predicate interpretation accuracy
// ---------------------------------------------------------------------------

// Table8Row is one query-set row.
type Table8Row struct {
	QuerySet string
	Size     int
	W2V      float64
	Cooccur  float64
	Combined float64
	MaxCI    float64
}

// RunTable8 measures interpretation accuracy of the two methods alone and
// combined (w2v with co-occurrence fallback). Out-of-schema predicates are
// excluded (they have no gold attribute). Confidence intervals come from
// bootstrap resampling of the predicate bank.
func RunTable8(hotels, restaurants *corpus.Dataset, hotelDB, restDB *core.DB, seed int64) []Table8Row {
	var out []Table8Row
	for _, dom := range []struct {
		name string
		d    *corpus.Dataset
		db   *core.DB
	}{
		{"Hotel queries", hotels, hotelDB},
		{"Restaurant queries", restaurants, restDB},
	} {
		var w2vHits, coHits, combHits []bool
		for _, p := range dom.d.Predicates {
			if p.GoldAttribute == "" {
				continue
			}
			w2vHits = append(w2vHits, primaryAttr(dom.db.InterpretW2VOnly(p.Text)) == p.GoldAttribute)
			coHits = append(coHits, interpContains(dom.db.InterpretCooccurOnly(p.Text), p.GoldAttribute))
			combHits = append(combHits, interpContains(dom.db.Interpret(p.Text), p.GoldAttribute))
		}
		row := Table8Row{
			QuerySet: dom.name,
			Size:     len(w2vHits),
			W2V:      eval.Accuracy(w2vHits) * 100,
			Cooccur:  eval.Accuracy(coHits) * 100,
			Combined: eval.Accuracy(combHits) * 100,
		}
		// Bootstrap CI over the predicate set.
		rng := rand.New(rand.NewSource(seed))
		var maxCI float64
		for _, hits := range [][]bool{w2vHits, coHits, combHits} {
			var means []float64
			for b := 0; b < 10; b++ {
				sample := make([]bool, len(hits))
				for i := range sample {
					sample[i] = hits[rng.Intn(len(hits))]
				}
				means = append(means, eval.Accuracy(sample)*100)
			}
			if _, ci := eval.MeanCI(means); ci > maxCI {
				maxCI = ci
			}
		}
		row.MaxCI = maxCI
		out = append(out, row)
	}
	return out
}

// primaryAttr returns the first interpreted attribute, or "".
func primaryAttr(in core.Interpretation) string {
	if len(in.Terms) == 0 {
		return ""
	}
	return in.Terms[0].Attr
}

// interpContains reports whether any interpreted term targets the gold
// attribute (the paper's labeling maps each predicate to its closest
// attribute; a co-occurrence disjunction containing it is correct).
func interpContains(in core.Interpretation, gold string) bool {
	for _, t := range in.Terms {
		if t.Attr == gold {
			return true
		}
	}
	return false
}

// FormatTable8 renders the rows paper-style.
func FormatTable8(rows []Table8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 8: Query interpretation accuracy (%%).\n")
	fmt.Fprintf(&b, "%-20s %5s %8s %10s %14s %7s\n", "Query set", "size", "w2v", "co-occur", "w2v+co-occur", "maxCI")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %5d %8.2f %10.2f %14.2f %7.2f\n",
			r.QuerySet, r.Size, r.W2V, r.Cooccur, r.Combined, r.MaxCI)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 7 (Appendix A) — fuzzy vs hard constraints
// ---------------------------------------------------------------------------

// Figure7Result compares the selection regions on real degree-of-truth
// pairs.
type Figure7Result struct {
	PredicateX, PredicateY string
	FuzzyThreshold         float64
	HardX, HardY           float64
	SelectedFuzzy          int
	SelectedHard           int
	FuzzyOnly              int // entities fuzzy admits but hard rejects
	HardOnly               int
}

// RunFigure7 evaluates two interpreted predicates on every hotel and
// counts the entities admitted by each semantics (Appendix A's shaded
// region is FuzzyOnly). The hard thresholds are set at the median degree
// of truth of each predicate and the fuzzy threshold at their product, so
// the rectangle's corner lies exactly on the x·y hyperbola — the
// geometry of the paper's Figure 7.
func RunFigure7(db *core.DB) Figure7Result {
	res := Figure7Result{
		PredicateX: "has really clean rooms",
		PredicateY: "has friendly staff",
	}
	opts := core.DefaultQueryOptions()
	opts.TopK = 0
	qr, err := db.RankPredicates([]string{res.PredicateX, res.PredicateY}, nil, opts)
	if err != nil {
		return res
	}
	var xs, ys []float64
	for _, row := range qr.Rows {
		if x := row.PredicateScores[res.PredicateX]; x > 0.01 {
			xs = append(xs, x)
		}
		if y := row.PredicateScores[res.PredicateY]; y > 0.01 {
			ys = append(ys, y)
		}
	}
	res.HardX = quantile(xs, 0.6)
	res.HardY = quantile(ys, 0.6)
	res.FuzzyThreshold = res.HardX * res.HardY
	for _, row := range qr.Rows {
		x := row.PredicateScores[res.PredicateX]
		y := row.PredicateScores[res.PredicateY]
		fz := x*y >= res.FuzzyThreshold
		hard := x > res.HardX && y > res.HardY
		if fz {
			res.SelectedFuzzy++
		}
		if hard {
			res.SelectedHard++
		}
		if fz && !hard {
			res.FuzzyOnly++
		}
		if hard && !fz {
			res.HardOnly++
		}
	}
	return res
}

// quantile returns the q-quantile of xs (0 for empty input).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	i := int(q * float64(len(cp)))
	if i >= len(cp) {
		i = len(cp) - 1
	}
	return cp[i]
}

// FormatFigure7 renders the comparison.
func FormatFigure7(r Figure7Result) string {
	return fmt.Sprintf(`Figure 7 (Appendix A): fuzzy vs hard constraints.
Predicates: %q ⊗ %q
Fuzzy (x·y >= %.3f) selects %d entities; hard (x > %.2f ∧ y > %.2f) selects %d.
Entities admitted by fuzzy but rejected by the hard constraint: %d (the shaded region).
Entities admitted by hard but not fuzzy: %d.
`, r.PredicateX, r.PredicateY, r.FuzzyThreshold, r.SelectedFuzzy, r.HardX, r.HardY,
		r.SelectedHard, r.FuzzyOnly, r.HardOnly)
}

// ---------------------------------------------------------------------------
// Figure 8 (Appendix D) — OpineDB vs the IR baseline on "quiet room"
// ---------------------------------------------------------------------------

// Figure8Result holds the quietness marker summaries of the two systems'
// top answers.
type Figure8Result struct {
	Query          string
	IRTop          string
	OpineTop       string
	IRSummary      map[string]float64 // marker name → count
	OpineSummary   map[string]float64
	IRQuietMass    float64 // fraction of mass at positive-sentiment markers
	OpineQuietMass float64
}

// RunFigure8 reproduces the Appendix D example: the IR baseline can rank a
// noisy hotel first because its reviews mention "quiet" inside negative
// phrases, while OpineDB's aggregation puts a genuinely quiet hotel first.
func RunFigure8(d *corpus.Dataset, db *core.DB) Figure8Result {
	const query = "quiet room"
	res := Figure8Result{Query: query}
	gz := baselines.NewGZ12(d)
	if ir := gz.Rank([]string{query}, nil, 1); len(ir) > 0 {
		res.IRTop = ir[0]
	}
	opts := core.DefaultQueryOptions()
	opts.TopK = 1
	if qr, err := db.RankPredicates([]string{query}, nil, opts); err == nil && len(qr.Rows) > 0 {
		res.OpineTop = qr.Rows[0].EntityID
	}
	attr := db.Attr("quietness")
	if attr == nil {
		return res
	}
	summarize := func(entity string) (map[string]float64, float64) {
		s := db.Summary("quietness", entity)
		if s == nil {
			return nil, 0
		}
		out := map[string]float64{}
		var quiet float64
		for i, m := range attr.Markers {
			out[m.Name] = s.Counts[i]
			if m.Sentiment > 0.2 {
				quiet += s.Counts[i]
			}
		}
		return out, quiet / s.Total
	}
	res.IRSummary, res.IRQuietMass = summarize(res.IRTop)
	res.OpineSummary, res.OpineQuietMass = summarize(res.OpineTop)
	return res
}

// FormatFigure8 renders the two summaries side by side.
func FormatFigure8(r Figure8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 (Appendix D): room quietness of top answers for %q.\n", r.Query)
	fmt.Fprintf(&b, "IR baseline top:  %s (quiet-mass %.2f): %v\n", r.IRTop, r.IRQuietMass, sortedHist(r.IRSummary))
	fmt.Fprintf(&b, "OpineDB top:      %s (quiet-mass %.2f): %v\n", r.OpineTop, r.OpineQuietMass, sortedHist(r.OpineSummary))
	return b.String()
}

func sortedHist(h map[string]float64) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%.0f", k, h[k])
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// ---------------------------------------------------------------------------
// Appendix B — the w2v substitution index
// ---------------------------------------------------------------------------

// AppendixBResult reports the fast-path fraction and speedup of the
// substitution index.
type AppendixBResult struct {
	Predicates   int
	FastFraction float64 // paper: 54.5% of queries avoid similarity search
	TimeIndexed  time.Duration
	TimeFull     time.Duration
	SpeedupPct   float64 // paper: 19.8%
}

// RunAppendixB interprets the whole predicate bank with and without the
// substitution index. The db must have been built with
// UseSubstitutionIndex enabled.
func RunAppendixB(d *corpus.Dataset, db *core.DB) AppendixBResult {
	res := AppendixBResult{Predicates: len(d.Predicates)}
	if db.SubIndex == nil {
		return res
	}
	// Indexed pass.
	start := time.Now()
	for _, p := range d.Predicates {
		db.InterpretW2VOnly(p.Text)
	}
	res.TimeIndexed = time.Since(start)
	res.FastFraction = db.SubIndex.FastFraction()
	// Full pass (index disabled).
	saved := db.SubIndex
	db.SubIndex = nil
	start = time.Now()
	for _, p := range d.Predicates {
		db.InterpretW2VOnly(p.Text)
	}
	res.TimeFull = time.Since(start)
	db.SubIndex = saved
	if res.TimeFull > 0 {
		res.SpeedupPct = 100 * (1 - float64(res.TimeIndexed)/float64(res.TimeFull))
	}
	return res
}

// FormatAppendixB renders the result.
func FormatAppendixB(r AppendixBResult) string {
	return fmt.Sprintf(`Appendix B: w2v substitution index over %d predicates.
Similarity search avoided on %.1f%% of lookups.
Interpretation time: %.3fs with index vs %.3fs full search (%.1f%% speedup).
`, r.Predicates, r.FastFraction*100, r.TimeIndexed.Seconds(), r.TimeFull.Seconds(), r.SpeedupPct)
}

// ---------------------------------------------------------------------------
// Appendix C — pairing models
// ---------------------------------------------------------------------------

// AppendixCResult compares the rule-based and supervised pairing models.
type AppendixCResult struct {
	Examples     int
	RuleAccuracy float64
	LearnedAcc   float64 // paper: 83.87% for the supervised model
}

// pairingSentence is one two-clause sentence with its full gold tags and
// the four labeled candidate pairs it contributes.
type pairingSentence struct {
	tokens     []string
	tags       []extract.Tag
	candidates []extract.PairExample
}

// RunAppendixC builds 1,000 labeled sentence-phrase pairs from two-clause
// synthetic sentences and evaluates both pairing models' link decisions.
func RunAppendixC(seed int64) AppendixCResult {
	rng := rand.New(rand.NewSource(seed))
	trainSents := pairingSentences(corpus.HotelAspects(), 125, rng)
	testSents := pairingSentences(corpus.HotelAspects(), 125, rng)
	var train, test []extract.PairExample
	for _, s := range trainSents {
		train = append(train, s.candidates...)
	}
	for _, s := range testSents {
		test = append(test, s.candidates...)
	}
	res := AppendixCResult{Examples: len(test)}
	lp, err := extract.TrainLearnedPairer(train, rng)
	if err == nil {
		res.LearnedAcc = lp.Accuracy(test) * 100
	}
	// The rule pairer runs once per sentence on the full tag sequence; a
	// candidate (a, o) is classified "linked" iff the pairer linked o to
	// exactly a.
	correct, total := 0, 0
	for _, s := range testSents {
		ops := (extract.RulePairer{}).Pair(s.tokens, s.tags)
		for _, ex := range s.candidates {
			linked := false
			for _, op := range ops {
				if op.PhraseSpan.Start == ex.Opinion.Start && op.PhraseSpan.End == ex.Opinion.End &&
					op.AspectSpan.Start == ex.Aspect.Start && op.AspectSpan.End == ex.Aspect.End {
					linked = true
				}
			}
			if linked == ex.Linked {
				correct++
			}
			total++
		}
	}
	if total > 0 {
		res.RuleAccuracy = 100 * float64(correct) / float64(total)
	}
	return res
}

// pairingSentences builds n two-clause sentences: mostly "the X was P and
// the Y was Q" (gold links (X,P) and (Y,Q); crossed pairs negatives), and
// ~35% of the time the harder distractor form "the X next to the Y was P
// and the Z was Q", where the aspect nearest to P (Y) is NOT its gold
// target — the construction that separates real pairing models from pure
// proximity (Appendix C's motivation for parse-tree distance).
func pairingSentences(aspects []corpus.AspectSpec, n int, rng *rand.Rand) []pairingSentence {
	var out []pairingSentence
	for len(out) < n {
		a1 := aspects[rng.Intn(len(aspects))]
		a2 := aspects[rng.Intn(len(aspects))]
		t1 := a1.AspectTerms[rng.Intn(len(a1.AspectTerms))]
		t2 := a2.AspectTerms[rng.Intn(len(a2.AspectTerms))]
		if t1 == t2 {
			continue
		}
		p1 := a1.Levels[rng.Intn(len(a1.Levels))].Phrases[0]
		p2 := a2.Levels[rng.Intn(len(a2.Levels))].Phrases[0]
		if p1 == p2 {
			continue
		}
		sent := "the " + t1 + " was " + p1 + " and the " + t2 + " was " + p2
		distractor := ""
		if rng.Float64() < 0.35 {
			ad := aspects[rng.Intn(len(aspects))]
			distractor = ad.AspectTerms[rng.Intn(len(ad.AspectTerms))]
			if distractor == t1 || distractor == t2 {
				distractor = ""
			} else {
				sent = "the " + t1 + " next to the " + distractor + " was " + p1 +
					" and the " + t2 + " was " + p2
			}
		}
		toks := textproc.Tokenize(sent)
		s1 := findSpan(toks, textproc.Tokenize(t1), 0)
		var sd extract.Span
		searchFrom := s1.End
		if distractor != "" {
			sd = findSpan(toks, textproc.Tokenize(distractor), s1.End)
			searchFrom = sd.End
		}
		o1 := findSpan(toks, textproc.Tokenize(p1), searchFrom)
		s2 := findSpan(toks, textproc.Tokenize(t2), o1.End)
		o2 := findSpan(toks, textproc.Tokenize(p2), s2.End)
		if s1.End == 0 || o1.End == 0 || s2.End == 0 || o2.End == 0 {
			continue
		}
		if distractor != "" && sd.End == 0 {
			continue
		}
		s1.Tag, s2.Tag = extract.AS, extract.AS
		o1.Tag, o2.Tag = extract.OP, extract.OP
		aspectSpans := []extract.Span{s1, s2}
		if distractor != "" {
			sd.Tag = extract.AS
			aspectSpans = append(aspectSpans, sd)
		}
		tags := make([]extract.Tag, len(toks))
		for _, sp := range aspectSpans {
			for i := sp.Start; i < sp.End; i++ {
				tags[i] = extract.AS
			}
		}
		for _, sp := range []extract.Span{o1, o2} {
			for i := sp.Start; i < sp.End; i++ {
				tags[i] = extract.OP
			}
		}
		candidates := []extract.PairExample{
			{Tokens: toks, Aspect: s1, Opinion: o1, Linked: true},
			{Tokens: toks, Aspect: s2, Opinion: o2, Linked: true},
			{Tokens: toks, Aspect: s1, Opinion: o2, Linked: false},
			{Tokens: toks, Aspect: s2, Opinion: o1, Linked: false},
		}
		if distractor != "" {
			candidates = append(candidates,
				extract.PairExample{Tokens: toks, Aspect: sd, Opinion: o1, Linked: false},
				extract.PairExample{Tokens: toks, Aspect: sd, Opinion: o2, Linked: false},
			)
		}
		out = append(out, pairingSentence{tokens: toks, tags: tags, candidates: candidates})
	}
	return out
}

// findSpan locates sub within toks starting at from.
func findSpan(toks, sub []string, from int) extract.Span {
	for i := from; i+len(sub) <= len(toks); i++ {
		ok := true
		for j := range sub {
			if toks[i+j] != sub[j] {
				ok = false
				break
			}
		}
		if ok {
			return extract.Span{Start: i, End: i + len(sub)}
		}
	}
	return extract.Span{}
}

// FormatAppendixC renders the comparison.
func FormatAppendixC(r AppendixCResult) string {
	return fmt.Sprintf(`Appendix C: pairing models on %d candidate pairs.
Rule-based pairer accuracy:  %.2f%%
Supervised pairer accuracy:  %.2f%%
`, r.Examples, r.RuleAccuracy, r.LearnedAcc)
}
