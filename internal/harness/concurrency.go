package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// ConcurrencyResult reports the serving-layer scaling experiment: query
// throughput single-goroutine vs parallel on one shared DB, and build
// wall-time sequential vs parallel-worker-pool. Both ride on the same
// guarantee — concurrent readers and parallel build workers produce
// results identical to the sequential run — so the only thing that
// changes is the clock.
type ConcurrencyResult struct {
	// Goroutines is the parallel fan-out used (GOMAXPROCS).
	Goroutines int
	// QueriesRun is the workload size per throughput measurement.
	QueriesRun int
	// SingleQPS / ParallelQPS are queries-per-second with 1 and
	// Goroutines callers respectively; QueryScaling is their ratio.
	SingleQPS    float64
	ParallelQPS  float64
	QueryScaling float64
	// BuildSeqSeconds / BuildParSeconds time a small-corpus database
	// construction with BuildWorkers=1 vs BuildWorkers=GOMAXPROCS;
	// BuildSpeedup is their ratio.
	BuildSeqSeconds float64
	BuildParSeconds float64
	BuildSpeedup    float64
	// Errors counts failed queries/builds; nonzero invalidates the run
	// (timing an error path is not a throughput measurement).
	Errors int
}

// RunConcurrency measures concurrent query throughput on the prebuilt
// hotel DB and parallel-build speedup on a fresh small corpus. On a
// single-CPU host both ratios hover around 1 by construction; the
// experiment reports the available parallelism alongside so trajectories
// across machines stay interpretable.
func RunConcurrency(hotels *corpus.Dataset, hotelDB *core.DB, seed int64) ConcurrencyResult {
	res := ConcurrencyResult{Goroutines: runtime.GOMAXPROCS(0)}

	// Query workload: in-schema predicate pairs, cycled. Warm every cache
	// first so the measurement sees the steady serving state.
	var preds []string
	for _, p := range hotels.Predicates {
		if p.Kind == corpus.KindMarker || p.Kind == corpus.KindParaphrase {
			preds = append(preds, p.Text)
		}
	}
	if len(preds) < 2 {
		preds = append(preds, "has really clean rooms", "has friendly staff")
	}
	opts := core.DefaultQueryOptions()
	var queryErrs atomic.Int64
	runOne := func(i int) {
		q := []string{preds[i%len(preds)], preds[(i+1)%len(preds)]}
		if _, err := hotelDB.RankPredicates(q, nil, opts); err != nil {
			queryErrs.Add(1)
		}
	}
	for i := 0; i < len(preds); i++ {
		runOne(i)
	}

	const queries = 192
	res.QueriesRun = queries
	start := time.Now()
	for i := 0; i < queries; i++ {
		runOne(i)
	}
	res.SingleQPS = queries / time.Since(start).Seconds()

	start = time.Now()
	var wg sync.WaitGroup
	per := queries / res.Goroutines
	if per == 0 {
		per = queries
	}
	for g := 0; g < res.Goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				runOne(g*per + i)
			}
		}()
	}
	wg.Wait()
	res.ParallelQPS = float64(per*res.Goroutines) / time.Since(start).Seconds()
	res.QueryScaling = res.ParallelQPS / res.SingleQPS

	// Build speedup on a fresh small corpus (excluded: corpus generation).
	genCfg := corpus.SmallConfig()
	genCfg.Seed = seed
	d := corpus.GenerateHotels(genCfg)
	buildWith := func(workers int) float64 {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.BuildWorkers = workers
		t0 := time.Now()
		if _, err := BuildDB(d, cfg, 400, 300); err != nil {
			res.Errors++
		}
		return time.Since(t0).Seconds()
	}
	res.BuildSeqSeconds = buildWith(1)
	res.BuildParSeconds = buildWith(0)
	if res.BuildParSeconds > 0 {
		res.BuildSpeedup = res.BuildSeqSeconds / res.BuildParSeconds
	}
	res.Errors += int(queryErrs.Load())
	return res
}

// FormatConcurrency renders the concurrency experiment.
func FormatConcurrency(r ConcurrencyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrency (GOMAXPROCS=%d, %d queries/run)\n", r.Goroutines, r.QueriesRun)
	fmt.Fprintf(&b, "  query throughput:  %8.1f qps single   %8.1f qps x%d goroutines   (%.2fx)\n",
		r.SingleQPS, r.ParallelQPS, r.Goroutines, r.QueryScaling)
	fmt.Fprintf(&b, "  build wall-time:   %8.2fs sequential %8.2fs parallel workers    (%.2fx)\n",
		r.BuildSeqSeconds, r.BuildParSeconds, r.BuildSpeedup)
	if r.Errors > 0 {
		fmt.Fprintf(&b, "  WARNING: %d queries/builds failed; timings above are invalid\n", r.Errors)
	}
	return b.String()
}
