package harness

// Mixed-traffic load harness: drive a routed fleet's HTTP surface with
// a configurable read/write mix (query / topk / interpret / reviews)
// at fixed concurrency for a fixed duration and report per-operation
// SLO percentiles from the exact recorded latencies (no bucketing —
// the sample counts here are small enough to sort). The same runner
// backs `opinedbload` (real TCP against a daemon or its own in-process
// fleet) and benchall's "load" experiment (in-process handler, plus
// the two hot-path A/Bs: /topk fragment memoization on vs off, and
// the incremental journal prefix-hash chain vs the per-probe segment
// rescan it replaced).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// LoadMix weights the four operation kinds. Zero-valued kinds are not
// driven; an all-zero mix is rejected.
type LoadMix struct {
	Query     int `json:"query"`
	TopK      int `json:"topk"`
	Interpret int `json:"interpret"`
	Reviews   int `json:"reviews"`
}

// DefaultLoadMix is read-heavy with a steady write trickle, the shape
// a serving fleet actually sees.
func DefaultLoadMix() LoadMix { return LoadMix{Query: 4, TopK: 3, Interpret: 2, Reviews: 1} }

func (m LoadMix) total() int { return m.Query + m.TopK + m.Interpret + m.Reviews }

// LoadOptions configure one load run.
type LoadOptions struct {
	Mix LoadMix
	// Concurrency is the number of workers driving requests. <= 0 means 4.
	Concurrency int
	// Duration bounds the run. <= 0 means 3s.
	Duration time.Duration
	// Seed makes the request sequence reproducible per worker.
	Seed int64
	// K is the result size requested by query/topk ops. <= 0 means 10.
	K int
}

// LoadOpStats are one operation kind's latency SLOs over a run.
type LoadOpStats struct {
	Ops        int     `json:"ops"`
	Errors     int     `json:"errors"`
	MeanMicros float64 `json:"mean_micros"`
	P50Micros  float64 `json:"p50_micros"`
	P95Micros  float64 `json:"p95_micros"`
	P99Micros  float64 `json:"p99_micros"`
	MaxMicros  float64 `json:"max_micros"`
}

// LoadResult is one mixed-traffic run's outcome.
type LoadResult struct {
	Concurrency  int                    `json:"concurrency"`
	Seconds      float64                `json:"seconds"`
	TotalOps     int                    `json:"total_ops"`
	TotalErrors  int                    `json:"total_errors"`
	OpsPerSecond float64                `json:"ops_per_second"`
	PerOp        map[string]LoadOpStats `json:"per_op"`
	// Err is non-empty when the run itself could not proceed (as opposed
	// to individual requests failing, which land in Errors).
	Err string `json:"error,omitempty"`
}

// LoadTarget executes one HTTP-shaped request against the system under
// load — the same signature as a router backend's Do, so an in-process
// handler and a real TCP endpoint are interchangeable.
type LoadTarget func(ctx context.Context, method, target string, body []byte) (status int, respBody []byte, err error)

// HTTPLoadTarget drives a live base URL ("http://127.0.0.1:8080")
// through client (nil uses http.DefaultClient's transport with a 30s
// timeout).
func HTTPLoadTarget(baseURL string, client *http.Client) LoadTarget {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	base := strings.TrimRight(baseURL, "/")
	return func(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
		var rd *bytes.Reader
		req, err := http.NewRequestWithContext(ctx, method, base+target, nil)
		if err != nil {
			return 0, nil, err
		}
		if body != nil {
			rd = bytes.NewReader(body)
			req.Body = nopCloser{rd}
			req.ContentLength = int64(len(body))
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return 0, nil, err
		}
		return resp.StatusCode, buf.Bytes(), nil
	}
}

type nopCloser struct{ *bytes.Reader }

func (nopCloser) Close() error { return nil }

// HandlerLoadTarget drives an http.Handler in process — no sockets, so
// the run measures serving work, not loopback.
func HandlerLoadTarget(h http.Handler) LoadTarget {
	return func(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
		var rd *bytes.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		var req *http.Request
		var err error
		if rd != nil {
			req, err = http.NewRequestWithContext(ctx, method, target, rd)
		} else {
			req, err = http.NewRequestWithContext(ctx, method, target, nil)
		}
		if err != nil {
			return 0, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := newRecorder()
		h.ServeHTTP(rec, req)
		return rec.status(), rec.buf.Bytes(), nil
	}
}

// recorder is a minimal in-memory http.ResponseWriter (the harness
// cannot import httptest outside tests).
type recorder struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func newRecorder() *recorder { return &recorder{header: http.Header{}} }

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(c int) {
	if r.code == 0 {
		r.code = c
	}
}
func (r *recorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.buf.Write(b)
}
func (r *recorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// loadVocabulary is the request vocabulary a run draws from.
type loadVocabulary struct {
	predicates []string
	entityIDs  []string
}

// loadVocab derives the vocabulary from a generated dataset: every
// schema-targeting bank predicate, and every entity id.
func loadVocab(d *corpus.Dataset) loadVocabulary {
	var v loadVocabulary
	for _, p := range d.Predicates {
		if p.Kind == corpus.KindOutOfSchema {
			continue
		}
		v.predicates = append(v.predicates, p.Text)
	}
	for _, e := range d.Entities {
		v.entityIDs = append(v.entityIDs, e.ID)
	}
	return v
}

// reviewPhrases seed the write traffic; they tokenize into the hotel
// schema's marker vocabulary so ingested reviews exercise the real
// enrichment path, not a stop-word fast path.
var reviewPhrases = []string{
	"The room was spotless and the staff were friendly.",
	"Terribly noisy at night but the breakfast was great.",
	"Lovely view, clean bathroom, very helpful reception.",
	"The bed was uncomfortable and the wifi kept dropping.",
	"Quiet floor, spacious room, excellent location.",
}

// loadSample is one recorded operation.
type loadSample struct {
	op     string
	micros float64
	err    bool
}

// RunLoadMix drives the target with the mixed workload and reports SLO
// percentiles per operation kind. Request errors (transport failures or
// any status >= 400) are counted, not fatal — a load run's job is to
// report them.
func RunLoadMix(ctx context.Context, do LoadTarget, vocabD *corpus.Dataset, opts LoadOptions) LoadResult {
	res := LoadResult{PerOp: map[string]LoadOpStats{}}
	if opts.Mix.total() <= 0 {
		res.Err = "load: mix has no operations"
		return res
	}
	vocab := loadVocab(vocabD)
	if len(vocab.predicates) == 0 || len(vocab.entityIDs) == 0 {
		res.Err = "load: empty request vocabulary"
		return res
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 4
	}
	dur := opts.Duration
	if dur <= 0 {
		dur = 3 * time.Second
	}
	k := opts.K
	if k <= 0 {
		k = 10
	}
	res.Concurrency = conc

	// The weighted op table: one entry per weight unit, indexed by a
	// uniform draw.
	var ops []string
	for _, w := range []struct {
		name   string
		weight int
	}{
		{"query", opts.Mix.Query}, {"topk", opts.Mix.TopK},
		{"interpret", opts.Mix.Interpret}, {"reviews", opts.Mix.Reviews},
	} {
		for i := 0; i < w.weight; i++ {
			ops = append(ops, w.name)
		}
	}

	runCtx, cancel := context.WithDeadline(ctx, time.Now().Add(dur))
	defer cancel()
	start := time.Now()
	samples := make([][]loadSample, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			day := 5000 + w
			for i := 0; runCtx.Err() == nil; i++ {
				op := ops[rng.Intn(len(ops))]
				var (
					method, target string
					body           []byte
				)
				switch op {
				case "query":
					pred := vocab.predicates[rng.Intn(len(vocab.predicates))]
					sql := `SELECT * FROM Entities WHERE "` + pred + `"`
					target = fmt.Sprintf("/query?sql=%s&k=%d", url.QueryEscape(sql), k)
					method = http.MethodGet
				case "topk":
					pred := vocab.predicates[rng.Intn(len(vocab.predicates))]
					target = fmt.Sprintf("/topk?predicate=%s&k=%d", url.QueryEscape(pred), k)
					method = http.MethodGet
				case "interpret":
					pred := vocab.predicates[rng.Intn(len(vocab.predicates))]
					target = "/interpret?predicate=" + url.QueryEscape(pred)
					method = http.MethodGet
				case "reviews":
					req := server.ReviewRequest{
						ID:       fmt.Sprintf("load-%d-%d-%d", opts.Seed, w, i),
						EntityID: vocab.entityIDs[rng.Intn(len(vocab.entityIDs))],
						Reviewer: fmt.Sprintf("loadgen-%d", w),
						Day:      day + i,
						Text:     reviewPhrases[rng.Intn(len(reviewPhrases))],
					}
					body, _ = json.Marshal(req)
					target, method = "/reviews", http.MethodPost
				}
				t0 := time.Now()
				status, _, err := do(runCtx, method, target, body)
				elapsed := time.Since(t0)
				if runCtx.Err() != nil && (err != nil || status >= 400) {
					// The deadline cut this request off mid-flight — whether the
					// failure surfaced as a transport error or as the router
					// reporting its cancelled scatter legs, it is the clock
					// ending the run, not a serving failure.
					break
				}
				samples[w] = append(samples[w], loadSample{
					op:     op,
					micros: float64(elapsed.Microseconds()),
					err:    err != nil || status >= 400,
				})
			}
		}(w)
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()

	byOp := map[string][]float64{}
	for _, ws := range samples {
		for _, s := range ws {
			st := res.PerOp[s.op]
			st.Ops++
			if s.err {
				st.Errors++
				res.TotalErrors++
			} else {
				byOp[s.op] = append(byOp[s.op], s.micros)
			}
			res.PerOp[s.op] = st
			res.TotalOps++
		}
	}
	for op, lat := range byOp {
		sort.Float64s(lat)
		st := res.PerOp[op]
		var sum float64
		for _, v := range lat {
			sum += v
		}
		st.MeanMicros = sum / float64(len(lat))
		st.P50Micros = percentile(lat, 0.50)
		st.P95Micros = percentile(lat, 0.95)
		st.P99Micros = percentile(lat, 0.99)
		st.MaxMicros = lat[len(lat)-1]
		res.PerOp[op] = st
	}
	if res.Seconds > 0 {
		res.OpsPerSecond = float64(res.TotalOps) / res.Seconds
	}
	return res
}

// percentile reads the exact q-quantile from sorted latencies (nearest-
// rank; the harness records every sample, so no interpolation needed).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// LoadFleet is an in-process journaled routed fleet assembled for load
// runs: the router's HTTP front door, the generated dataset behind it
// (the request vocabulary), the monolithic database the fleet was built
// from (the byte-identity reference), the shared metrics registry, and
// each node's journal directory, indexed [shard][replica]. Counts holds
// each range's replica-set size; a live join grows JournalDirs[shard]
// past Counts[shard].
type LoadFleet struct {
	Router      *router.Router
	Handler     http.Handler
	Dataset     *corpus.Dataset
	DB          *core.DB
	Registry    *obs.Registry
	JournalDirs [][]string
	Manifest    *snapshot.Manifest
	Counts      []int
	// Trace is the fleet's shared trace collector (nil when the fleet was
	// built without tracing). In-process fleets share ONE collector across
	// the router front door and every shard replica, so a routed request's
	// spans — front door, scatter legs, per-shard server work — land in a
	// single record exactly as a distributed fleet's would after
	// cross-process propagation.
	Trace *trace.Collector

	// The pieces a live join needs to assemble a fresh node exactly the
	// way BuildLoadFleet assembled the originals.
	manifestPath string
	shardServer  func(shard, replica int, path string, db *core.DB, meta *snapshot.Meta) server.Options
	wrap         func(shard, replica int, b router.Backend) router.Backend
}

// ReplayOwnedWrites folds every write the fleet journaled during a run
// into the pre-fleet monolith (fl.DB), each in its OWNER's commit order:
// shard by shard, replica 0's journal, applying only the writes that
// shard owns. Every node journals every routed write, but concurrent
// writers interleave differently at different nodes, and a summary's
// incremental centroid is floating-point order-sensitive — so byte
// identity with the live fleet (whose per-entity answers come from the
// owners) requires replaying each entity's writes in its owner's order,
// not any single node's. Corpus-global state is order-independent, so
// the shard-major replay order does not disturb it. Returns the number
// of writes applied.
func (fl *LoadFleet) ReplayOwnedWrites() (int, error) {
	applied := 0
	for s, ms := range fl.Manifest.Shard {
		jdir := fl.JournalDirs[s][0]
		_, err := journal.Replay(jdir, func(seq uint64, rv journal.Review) error {
			if rv.EntityID < ms.FirstEntity || rv.EntityID > ms.LastEntity {
				return nil
			}
			if err := fl.DB.ApplyReview(core.ReviewData{
				ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
				Day: rv.Day, Text: rv.Text,
			}); err != nil {
				return fmt.Errorf("shard %d seq %d: %w", s, seq, err)
			}
			applied++
			return nil
		})
		if err != nil {
			return applied, fmt.Errorf("replay owned writes: %w", err)
		}
	}
	return applied, nil
}

// LoadFleetOptions configure BuildLoadFleet.
type LoadFleetOptions struct {
	// Shards is the fleet size. <= 0 means 4.
	Shards int
	// Replicas is each shard range's replica-set size. <= 0 means 1.
	Replicas int
	// ReplicasPerRange gives each range its own replica-set size
	// (index-aligned with shards; entries <= 0 mean 1). Takes precedence
	// over Replicas, so a hot range can run R=3 while cold ranges stay
	// single-replica.
	ReplicasPerRange []int
	// Seed drives corpus generation and the build.
	Seed int64
	// DisableTopKMemo turns off per-shard /topk fragment memoization —
	// the control arm of the memoization A/B.
	DisableTopKMemo bool
	// DisableHedging turns off hedged scatter legs — the control arm of
	// the hedging A/B.
	DisableHedging bool
	// HedgeDelay fixes the hedge delay (0 = adaptive p95).
	HedgeDelay time.Duration
	// SlowReplica injects a fixed per-request delay in front of one
	// backend — the LAST replica of shard 0 — so a degraded replica's
	// tail (and hedging's answer to it) is reproducible on demand.
	SlowReplica time.Duration
	// WrapBackend, when non-nil, wraps each node's backend after any
	// SlowReplica delay — the kill-switch seam the replica smoke uses.
	WrapBackend func(shard, replica int, b router.Backend) router.Backend
	// DisableGroupCommit serializes each node's write path — the control
	// arm of the group-commit A/B.
	DisableGroupCommit bool
	// Trace, when non-nil, builds the fleet with request tracing: one
	// shared collector wired into the router and every shard server. The
	// collector's sampler RNG is its own (never the router's pick RNG), so
	// tracing cannot perturb replica choice or the query fingerprint.
	Trace *trace.Options
}

// BuildLoadFleet generates the small hotel corpus, builds the
// subjective database, writes an n-shard fleet under dir, and serves it
// through an in-process router — R replicas per range when requested —
// with per-node journals and one shared metrics registry, the same
// deployment shape as `opinedbd -router`.
func BuildLoadFleet(dir string, opts LoadFleetOptions) (*LoadFleet, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = 4
	}
	if n := len(opts.ReplicasPerRange); n > 0 && n != shards {
		return nil, fmt.Errorf("load fleet: %d replica counts for %d shards", n, shards)
	}
	counts := make([]int, shards)
	for i := range counts {
		counts[i] = opts.Replicas
		if i < len(opts.ReplicasPerRange) {
			counts[i] = opts.ReplicasPerRange[i]
		}
		if counts[i] <= 0 {
			counts[i] = 1
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("load fleet: %w", err)
	}
	genCfg := corpus.SmallConfig()
	genCfg.Seed = opts.Seed
	d := corpus.GenerateHotels(genCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	db, err := BuildDB(d, cfg, 400, 300)
	if err != nil {
		return nil, fmt.Errorf("load fleet: build: %w", err)
	}
	var manifestPath string
	if len(opts.ReplicasPerRange) > 0 {
		manifestPath, err = WritePerRangeFleet(db, dir, "load", shards, counts, opts.Seed)
	} else {
		manifestPath, err = WriteReplicatedFleet(db, dir, "load", shards, counts[0], opts.Seed)
	}
	if err != nil {
		return nil, fmt.Errorf("load fleet: %w", err)
	}

	reg := obs.NewRegistry()
	var tracer *trace.Collector
	if opts.Trace != nil {
		tracer = trace.New(*opts.Trace)
	}
	fl := &LoadFleet{Dataset: d, DB: db, Registry: reg, Trace: tracer, JournalDirs: make([][]string, shards), Counts: counts, manifestPath: manifestPath}
	for s := range fl.JournalDirs {
		fl.JournalDirs[s] = make([]string, counts[s])
	}
	fl.shardServer = func(shard, replica int, path string, sdb *core.DB, meta *snapshot.Meta) server.Options {
		// Replica 0 keeps the pre-replication journal dir name so
		// single-replica artifacts stay where tooling expects them.
		name := fmt.Sprintf("shard-%d.journal", shard)
		if replica > 0 {
			name = fmt.Sprintf("shard-%d-r%d.journal", shard, replica)
		}
		jdir := filepath.Join(dir, name)
		if err := os.MkdirAll(jdir, 0o755); err != nil {
			return server.Options{}
		}
		j, jerr := journal.Open(jdir, journal.Options{
			SyncEvery:    1,
			SyncObserver: server.FsyncObserver(reg),
		})
		if jerr != nil {
			return server.Options{}
		}
		for len(fl.JournalDirs[shard]) <= replica {
			fl.JournalDirs[shard] = append(fl.JournalDirs[shard], "")
		}
		fl.JournalDirs[shard][replica] = jdir
		return server.Options{
			Metrics:         reg,
			Trace:           tracer,
			DisableTopKMemo: opts.DisableTopKMemo,
			Ingest: &server.IngestOptions{
				AcceptUnowned:  true,
				JournalDir:     jdir,
				JournalLastSeq: j.NextSeq() - 1,
				Append: func(rv core.ReviewData) (uint64, error) {
					return j.Append(journal.Review{
						ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
						Day: rv.Day, Text: rv.Text,
					})
				},
				AppendBatch: func(rvs []core.ReviewData) (uint64, error) {
					batch := make([]journal.Review, len(rvs))
					for i, rv := range rvs {
						batch[i] = journal.Review{
							ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
							Day: rv.Day, Text: rv.Text,
						}
					}
					return j.AppendBatch(batch)
				},
				AppendDurable:      true, // SyncEvery: 1 above
				DisableGroupCommit: opts.DisableGroupCommit,
			},
		}
	}
	fl.wrap = func(shard, replica int, b router.Backend) router.Backend {
		if opts.SlowReplica > 0 && shard == 0 && replica == counts[0]-1 {
			b = &router.DelayBackend{Inner: b, Delay: opts.SlowReplica}
		}
		if opts.WrapBackend != nil {
			b = opts.WrapBackend(shard, replica, b)
		}
		return b
	}
	rt, m, err := router.FromManifest(manifestPath, router.ManifestOptions{
		Options: router.Options{
			Metrics:        reg,
			Trace:          tracer,
			DisableHedging: opts.DisableHedging,
			HedgeDelay:     opts.HedgeDelay,
		},
		ShardServer: fl.shardServer,
		WrapBackend: fl.wrap,
	})
	if err != nil {
		return nil, fmt.Errorf("load fleet: %w", err)
	}
	fl.Router = rt
	fl.Handler = router.NewHandler(rt)
	fl.Manifest = m
	return fl, nil
}

// NewJoinerBackend assembles a fresh node for one shard range exactly
// the way BuildLoadFleet assembled the originals: the digest-verified
// shard snapshot, its own journal directory (appended to
// JournalDirs[shard]), and the same wrapping. The node is live but NOT
// in the router — hand it to Router.AdmitReplica to join the range's
// replica set.
func (fl *LoadFleet) NewJoinerBackend(shard int) (router.Backend, error) {
	if shard < 0 || shard >= len(fl.Manifest.Shard) {
		return nil, fmt.Errorf("load fleet: joiner for shard %d of %d", shard, len(fl.Manifest.Shard))
	}
	db, meta, err := snapshot.LoadVerifiedShard(fl.manifestPath, fl.Manifest, shard)
	if err != nil {
		return nil, fmt.Errorf("load fleet: joiner: %w", err)
	}
	replica := len(fl.JournalDirs[shard])
	srvOpts := fl.shardServer(shard, replica, snapshot.ShardPath(fl.manifestPath, fl.Manifest.Shard[shard]), db, meta)
	if srvOpts.Ingest == nil {
		return nil, fmt.Errorf("load fleet: joiner for shard %d could not open a journal", shard)
	}
	name := fmt.Sprintf("shard%d.r%d", shard, replica)
	return fl.wrap(shard, replica, router.NewLocalBackend(name, db, srvOpts)), nil
}

// FormatLoad renders a load run as the SLO table operators read.
func FormatLoad(r LoadResult) string {
	var b strings.Builder
	if r.Err != "" {
		fmt.Fprintf(&b, "  FAILED: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  %d workers, %.1fs: %d ops (%.0f ops/s), %d errors\n",
		r.Concurrency, r.Seconds, r.TotalOps, r.OpsPerSecond, r.TotalErrors)
	for _, op := range []string{"query", "topk", "interpret", "reviews"} {
		st, ok := r.PerOp[op]
		if !ok || st.Ops == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-9s %6d ops   mean %8.0f µs   p50 %8.0f   p95 %8.0f   p99 %8.0f   max %8.0f   errors %d\n",
			op, st.Ops, st.MeanMicros, st.P50Micros, st.P95Micros, st.P99Micros, st.MaxMicros, st.Errors)
	}
	return b.String()
}
