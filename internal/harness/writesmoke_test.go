package harness

import (
	"context"
	"testing"
	"time"
)

// TestWriteHeavyFleetReplaysIdentically is the in-process half of the
// `make write-smoke` gate: a write-heavy mix drives a journaled routed
// fleet (group commit on) at high concurrency, then every journaled
// write replays into the pre-fleet monolith in its owner's commit order,
// and the fleet must answer the full query set byte-identically. This is
// the contract ReplayOwnedWrites documents — single-node journal order
// is NOT enough, because concurrent writers interleave differently at
// different nodes and summary centroids are float-order-sensitive.
func TestWriteHeavyFleetReplaysIdentically(t *testing.T) {
	ctx := context.Background()
	fl, err := BuildLoadFleet(t.TempDir(), LoadFleetOptions{Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := RunLoadMix(ctx, HandlerLoadTarget(fl.Handler), fl.Dataset, LoadOptions{
		Mix:         LoadMix{Query: 1, TopK: 1, Interpret: 1, Reviews: 6},
		Concurrency: 16,
		Duration:    1500 * time.Millisecond,
		Seed:        1,
		K:           10,
	})
	if res.Err != "" {
		t.Fatalf("load run: %s", res.Err)
	}
	if res.TotalErrors != 0 {
		t.Fatalf("%d request errors under write-heavy load", res.TotalErrors)
	}
	if res.PerOp["reviews"].Ops == 0 {
		t.Fatal("no writes flowed; the gate proved nothing")
	}
	applied, err := fl.ReplayOwnedWrites()
	if err != nil {
		t.Fatal(err)
	}
	if applied < res.PerOp["reviews"].Ops {
		t.Fatalf("replayed %d writes, but %d were acked", applied, res.PerOp["reviews"].Ops)
	}
	fleetFP, n := QueryFingerprint(fl.Dataset, fl.Router.Engine(ctx))
	if n != 948 {
		t.Errorf("fingerprint covers %d query-set entries, want the full 948", n)
	}
	monoFP, _ := QueryFingerprint(fl.Dataset, fl.DB)
	if fleetFP != monoFP {
		t.Fatalf("routed fleet diverges from the owner-order replayed monolith after %d concurrent writes", applied)
	}
}
