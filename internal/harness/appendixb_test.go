package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// TestRunAppendixB builds a small substitution-indexed database and
// verifies the Appendix B experiment's invariants: a meaningful fraction
// of predicate lookups avoid the similarity scan, and the indexed pass is
// not slower than the full pass by more than noise.
func TestRunAppendixB(t *testing.T) {
	if testing.Short() {
		t.Skip("appendix B needs a DB build")
	}
	cfg := corpus.SmallConfig()
	cfg.HotelsLondon, cfg.HotelsAmsterdam = 50, 20
	cfg.ReviewsPerHotel = 16
	d := corpus.GenerateHotels(cfg)
	c := core.DefaultConfig()
	c.UseSubstitutionIndex = true
	db, err := BuildDB(d, c, 500, 300)
	if err != nil {
		t.Fatal(err)
	}
	if db.SubIndex == nil {
		t.Fatal("substitution index not built")
	}
	res := RunAppendixB(d, db)
	if res.Predicates != len(d.Predicates) {
		t.Errorf("predicates = %d", res.Predicates)
	}
	if res.FastFraction <= 0.1 {
		t.Errorf("fast-path fraction %.2f too low; index ineffective", res.FastFraction)
	}
	if res.TimeIndexed <= 0 || res.TimeFull <= 0 {
		t.Error("timings not collected")
	}
	out := FormatAppendixB(res)
	if !strings.Contains(out, "substitution index") {
		t.Error("FormatAppendixB malformed")
	}
	// A DB without the index reports zeros gracefully.
	plain, err := BuildDB(d, core.DefaultConfig(), 300, 200)
	if err != nil {
		t.Fatal(err)
	}
	empty := RunAppendixB(d, plain)
	if empty.FastFraction != 0 || empty.TimeFull != 0 {
		t.Errorf("index-less run should be zeroed: %+v", empty)
	}
}

// TestTable5ConfigDefaults pins the experiment configuration shape.
func TestTable5ConfigDefaults(t *testing.T) {
	cfg := DefaultTable5Config()
	if cfg.QueriesPerSet <= 0 || cfg.Trials <= 0 || cfg.TopK != 10 {
		t.Errorf("suspicious defaults: %+v", cfg)
	}
	t7 := DefaultTable7Config()
	if t7.QueriesPerSet != 100 {
		t.Errorf("Table 7 runtime unit should be 100 queries, got %d", t7.QueriesPerSet)
	}
}

// TestQuantile pins the helper's behaviour.
func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := quantile(xs, 0.99); q != 5 {
		t.Errorf("q99 = %v", q)
	}
	if q := quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %v", q)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("quantile sorted the caller's slice")
	}
}
