package harness

// The benchall "groupcommit" experiment: sustained write throughput and
// tail latency of POST /reviews with the group-commit pipeline vs the
// serialized seed path, at 1, 4 and 16 concurrent writers — every ack
// durable in both arms (the serialized control fsyncs per record, the
// pipeline fsyncs per batch). The experiment also proves the pipeline
// changes scheduling, not state: the journal written under 16-writer
// group commit replays into a fresh snapshot load with a query
// fingerprint byte-identical to the live, concurrently written database.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/snapshot"
)

// GroupCommitCell is one (writers, arm) measurement.
type GroupCommitCell struct {
	Writers int `json:"writers"`
	// Arm is "serialized" (DisableGroupCommit; per-record fsync under the
	// lock, the seed write path) or "group" (shared-fsync pipeline).
	Arm     string  `json:"arm"`
	Seconds float64 `json:"seconds"`
	Acks    int     `json:"acks"`
	Errors  int     `json:"errors"`
	// EveryAckDurable: every 200 carried durable=true (the experiment's
	// ground rule — throughput wins that relax durability don't count).
	EveryAckDurable bool    `json:"every_ack_durable"`
	OpsPerSecond    float64 `json:"ops_per_second"`
	P50Micros       float64 `json:"p50_micros"`
	P99Micros       float64 `json:"p99_micros"`
	Fsyncs          int     `json:"fsyncs"`
	// MeanBatch is acks per fsync — 1.0 on the serialized arm by
	// construction, rising with writer concurrency under group commit.
	MeanBatch float64 `json:"mean_batch"`
}

// GroupCommitResult is the full experiment.
type GroupCommitResult struct {
	Cells []GroupCommitCell `json:"cells"`
	// SpeedupAt16 is group ops/s over serialized ops/s at 16 writers.
	SpeedupAt16 float64 `json:"speedup_at_16"`
	// FingerprintIdentical: replaying the 16-writer group-commit journal
	// into a fresh snapshot load fingerprints byte-identically to the
	// live database those writers mutated.
	FingerprintIdentical bool   `json:"fingerprint_identical"`
	FingerprintEntries   int    `json:"fingerprint_entries"`
	Err                  string `json:"error,omitempty"`
}

// RunGroupCommit builds the small hotel database once, snapshots it, and
// reloads the snapshot for every cell so each arm starts from identical
// state. Cells run the real HTTP handler (no network) under a fixed
// duration; acks must be durable or they count as errors.
func RunGroupCommit(ctx context.Context, seed int64) GroupCommitResult {
	var res GroupCommitResult
	dir, err := os.MkdirTemp("", "opinedb-groupcommit-*")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer os.RemoveAll(dir)

	genCfg := corpus.SmallConfig()
	genCfg.Seed = seed
	d := corpus.GenerateHotels(genCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	db, err := BuildDB(d, cfg, 400, 300)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	snapPath := filepath.Join(dir, "base.snap")
	if _, err := snapshot.Save(snapPath, db); err != nil {
		res.Err = err.Error()
		return res
	}

	const cellDuration = 2500 * time.Millisecond
	for _, writers := range []int{1, 4, 16} {
		for _, arm := range []string{"serialized", "group"} {
			cell, liveDB, jdir, err := runGroupCommitCell(ctx, snapPath, writers, arm, cellDuration)
			if err != nil {
				res.Err = err.Error()
				return res
			}
			res.Cells = append(res.Cells, cell)
			// The byte-identity gate rides on the most concurrent group
			// arm: replay its journal into a fresh snapshot load and
			// fingerprint both engines.
			if arm == "group" && writers == 16 {
				replayed, _, err := snapshot.Load(snapPath)
				if err != nil {
					res.Err = err.Error()
					return res
				}
				if _, err := journal.ApplyAll(replayed, jdir); err != nil {
					res.Err = err.Error()
					return res
				}
				liveFP, n := QueryFingerprint(d, liveDB)
				replayFP, _ := QueryFingerprint(d, replayed)
				res.FingerprintIdentical = liveFP == replayFP
				res.FingerprintEntries = n
			}
		}
	}

	var ser16, grp16 float64
	for _, c := range res.Cells {
		if c.Writers == 16 {
			switch c.Arm {
			case "serialized":
				ser16 = c.OpsPerSecond
			case "group":
				grp16 = c.OpsPerSecond
			}
		}
	}
	if ser16 > 0 {
		res.SpeedupAt16 = grp16 / ser16
	}
	return res
}

// runGroupCommitCell drives one (writers, arm) cell against a fresh
// snapshot load with a fresh journal, returning the live database and
// journal dir so the caller can run the replay-identity check.
func runGroupCommitCell(ctx context.Context, snapPath string, writers int, arm string, dur time.Duration) (GroupCommitCell, *core.DB, string, error) {
	cell := GroupCommitCell{Writers: writers, Arm: arm, EveryAckDurable: true}
	db, _, err := snapshot.Load(snapPath)
	if err != nil {
		return cell, nil, "", err
	}
	jdir := filepath.Join(filepath.Dir(snapPath), fmt.Sprintf("%s-%dw.journal", arm, writers))
	var fsyncs atomic.Int64
	j, err := journal.Open(jdir, journal.Options{
		SyncEvery:    1, // the serialized arm's per-record durability; batches always sync
		SyncObserver: func(time.Duration) { fsyncs.Add(1) },
	})
	if err != nil {
		return cell, nil, "", err
	}
	ingest := &server.IngestOptions{
		Append: func(rv core.ReviewData) (uint64, error) {
			return j.Append(journal.Review{
				ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
				Day: rv.Day, Text: rv.Text,
			})
		},
		AppendBatch: func(rvs []core.ReviewData) (uint64, error) {
			batch := make([]journal.Review, len(rvs))
			for i, rv := range rvs {
				batch[i] = journal.Review{
					ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
					Day: rv.Day, Text: rv.Text,
				}
			}
			return j.AppendBatch(batch)
		},
		AppendDurable:      true,
		DisableGroupCommit: arm == "serialized",
	}
	srv := server.New(db, server.Options{Ingest: ingest})
	do := HandlerLoadTarget(srv)
	entities := db.EntityIDs()

	deadline := time.Now().Add(dur)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []int64
		acks      int
		errors    int
		undurable int
	)
	t0 := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lats []int64
			myAcks, myErrs, myUndurable := 0, 0, 0
			for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				req := server.ReviewRequest{
					ID:       fmt.Sprintf("gcb-%s-%d-%d-%d", arm, writers, w, i),
					EntityID: entities[(w*7919+i)%len(entities)],
					Reviewer: fmt.Sprintf("bench-w%d", w),
					Day:      5000 + i,
					Text:     reviewPhrases[(w+i)%len(reviewPhrases)],
				}
				body, _ := json.Marshal(req)
				opStart := time.Now()
				status, respBody, err := do(ctx, http.MethodPost, "/reviews", body)
				lat := time.Since(opStart).Microseconds()
				if err != nil || status != http.StatusOK {
					myErrs++
					_ = respBody
					continue
				}
				var ack server.ReviewResponse
				if json.Unmarshal(respBody, &ack) != nil || ack.Seq == 0 {
					myErrs++
					continue
				}
				if !ack.Durable {
					myUndurable++
				}
				myAcks++
				lats = append(lats, lat)
			}
			mu.Lock()
			latencies = append(latencies, lats...)
			acks += myAcks
			errors += myErrs
			undurable += myUndurable
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if err := j.Close(); err != nil {
		return cell, nil, "", err
	}

	cell.Seconds = elapsed.Seconds()
	cell.Acks = acks
	cell.Errors = errors
	cell.EveryAckDurable = undurable == 0
	if elapsed > 0 {
		cell.OpsPerSecond = float64(acks) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
	if n := len(latencies); n > 0 {
		cell.P50Micros = float64(latencies[n/2])
		cell.P99Micros = float64(latencies[min(n-1, n*99/100)])
	}
	cell.Fsyncs = int(fsyncs.Load())
	if cell.Fsyncs > 0 {
		cell.MeanBatch = float64(acks) / float64(cell.Fsyncs)
	}
	return cell, db, jdir, nil
}

// FormatGroupCommit renders the experiment for benchall's stdout.
func FormatGroupCommit(r GroupCommitResult) string {
	var b strings.Builder
	if r.Err != "" {
		fmt.Fprintf(&b, "  FAILED: %s\n", r.Err)
		return b.String()
	}
	b.WriteString("  POST /reviews, every ack durable (serialized = per-record fsync, group = shared fsync):\n")
	b.WriteString("  writers  arm          ops/s      p50 µs     p99 µs   mean batch  durable  errors\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %7d  %-10s %8.0f  %9.0f  %9.0f  %10.1f  %7v  %6d\n",
			c.Writers, c.Arm, c.OpsPerSecond, c.P50Micros, c.P99Micros, c.MeanBatch,
			c.EveryAckDurable, c.Errors)
	}
	fmt.Fprintf(&b, "  speedup at 16 writers: %.2fx\n", r.SpeedupAt16)
	fmt.Fprintf(&b, "  16-writer group-commit journal replays byte-identically (%d-entry fingerprint): %v\n",
		r.FingerprintEntries, r.FingerprintIdentical)
	return b.String()
}
