package harness

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// Shared small fixture: generating corpora and building DBs dominates
// test time, so both domains are built once.
var (
	hOnce          sync.Once
	hHotels, hRest *corpus.Dataset
	hHotelDB       *core.DB
	hRestDB        *core.DB
	hErr           error
)

func fixtures(t *testing.T) (*corpus.Dataset, *corpus.Dataset, *core.DB, *core.DB) {
	t.Helper()
	hOnce.Do(func() {
		cfg := corpus.SmallConfig()
		cfg.HotelsLondon, cfg.HotelsAmsterdam = 50, 20
		cfg.ReviewsPerHotel = 18
		cfg.Restaurants = 60
		cfg.ReviewsPerRestaurant = 10
		hHotels = corpus.GenerateHotels(cfg)
		hRest = corpus.GenerateRestaurants(cfg)
		c := core.DefaultConfig()
		c.MarkersPerAttr = 6
		if hHotelDB, hErr = BuildDB(hHotels, c, 600, 500); hErr != nil {
			return
		}
		hRestDB, hErr = BuildDB(hRest, c, 600, 500)
	})
	if hErr != nil {
		t.Fatalf("fixture: %v", hErr)
	}
	return hHotels, hRest, hHotelDB, hRestDB
}

func TestBuildInputFromDataset(t *testing.T) {
	d := corpus.GenerateHotels(corpus.SmallConfig())
	rng := rand.New(rand.NewSource(1))
	in := BuildInputFromDataset(d, 100, 50, rng)
	if len(in.Entities) != len(d.Entities) {
		t.Errorf("entities = %d", len(in.Entities))
	}
	if len(in.Reviews) != len(d.Reviews) {
		t.Errorf("reviews = %d", len(in.Reviews))
	}
	if len(in.Attributes) != len(d.Aspects) {
		t.Errorf("attributes = %d", len(in.Attributes))
	}
	if len(in.TaggedTraining) != 100 {
		t.Errorf("tagged = %d", len(in.TaggedTraining))
	}
	if len(in.MembershipLabels) != 50 {
		t.Errorf("labels = %d", len(in.MembershipLabels))
	}
	if _, ok := in.Entities[0].Objective["price_pn"]; !ok {
		t.Error("hotel objective attributes missing price_pn")
	}
}

func TestMembershipLabelsGroundTruth(t *testing.T) {
	d := corpus.GenerateHotels(corpus.SmallConfig())
	rng := rand.New(rand.NewSource(2))
	labels := MembershipLabels(d, 200, rng)
	pos := 0
	for _, l := range labels {
		if l.Attribute == "" || l.Phrase == "" {
			t.Fatalf("malformed label %+v", l)
		}
		e := d.EntityByID(l.EntityID)
		if e == nil {
			t.Fatalf("unknown entity %s", l.EntityID)
		}
		if l.Y {
			pos++
		}
	}
	if pos == 0 || pos == len(labels) {
		t.Errorf("labels all one class (%d/%d positive)", pos, len(labels))
	}
}

func TestSettingsAndCandidates(t *testing.T) {
	hotels, rest, _, _ := fixtures(t)
	for _, s := range Settings() {
		d := hotels
		if s.Domain == "restaurant" {
			d = rest
		}
		c := Candidates(d, s)
		if len(c) == 0 {
			t.Errorf("setting %s has no candidates", s.Name)
		}
		if len(c) == len(d.Entities) && s.Name != "Amsterdam" {
			t.Errorf("setting %s filter selects everything", s.Name)
		}
	}
}

func TestSampleQueries(t *testing.T) {
	d := corpus.GenerateHotels(corpus.SmallConfig())
	rng := rand.New(rand.NewSource(3))
	qs := SampleQueries(d.Predicates, 20, 4, rng)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if len(q) != 4 {
			t.Fatalf("conjuncts = %d", len(q))
		}
		seen := map[int]bool{}
		for _, pi := range q {
			if seen[pi] {
				t.Error("duplicate predicate within a query")
			}
			seen[pi] = true
			if d.Predicates[pi].Kind == corpus.KindOutOfSchema {
				t.Error("out-of-schema predicate sampled into workload")
			}
		}
	}
}

func TestQueryQualityBounds(t *testing.T) {
	hotels, _, _, _ := fixtures(t)
	rng := rand.New(rand.NewSource(4))
	cands := Candidates(hotels, Settings()[0])
	var candList []string
	for id := range cands {
		candList = append(candList, id)
	}
	qs := SampleQueries(hotels.Predicates, 10, 3, rng)
	for _, q := range qs {
		v := QueryQuality(hotels, q, candList[:min(10, len(candList))], cands, 10)
		if v > 1 {
			t.Errorf("quality %v > 1", v)
		}
	}
}

func TestRunTable3(t *testing.T) {
	rows := RunTable3(7)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SubjectivePct < 50 || r.SubjectivePct > 90 {
			t.Errorf("%s = %.1f%%, outside Table 3 band", r.Domain, r.SubjectivePct)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Hotel") || !strings.Contains(out, "%Subj") {
		t.Error("FormatTable3 output malformed")
	}
}

func TestRunTable4(t *testing.T) {
	hotels, rest, _, _ := fixtures(t)
	rows := RunTable4(hotels, rest)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Setting] = r
		if r.Entities == 0 || r.Reviews == 0 {
			t.Errorf("setting %s empty: %+v", r.Setting, r)
		}
	}
	// Table 4 shape: restaurants have longer, more positive reviews.
	if byName["Low Price"].AvgWords <= byName["London,<$300"].AvgWords {
		t.Error("restaurant reviews should be longer than hotel reviews")
	}
	if byName["JP Cuisine"].AvgPolarity <= byName["Amsterdam"].AvgPolarity {
		t.Error("restaurant reviews should be more positive")
	}
	if !strings.Contains(FormatTable4(rows), "avg polarity") {
		t.Error("FormatTable4 malformed")
	}
}

func TestRunTable5SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 is slow")
	}
	hotels, rest, hdb, rdb := fixtures(t)
	cfg := Table5Config{QueriesPerSet: 8, Trials: 2, TopK: 10, Seed: 5}
	results := RunTable5(hotels, rest, hdb, rdb, cfg)
	if len(results) != 4 {
		t.Fatalf("settings = %d", len(results))
	}
	for _, res := range results {
		for _, m := range Table5Methods {
			for _, diff := range Difficulties {
				c, ok := res.Cells[m][diff.Name]
				if !ok {
					t.Fatalf("%s missing %s/%s", res.Setting, m, diff.Name)
				}
				if c.Mean < 0 || c.Mean > 1 {
					t.Errorf("%s %s/%s mean = %v", res.Setting, m, diff.Name, c.Mean)
				}
			}
		}
		// The headline claim: OpineDB beats the uninformed baselines.
		op := res.Cells["OpineDB"]["medium"].Mean
		if op <= res.Cells["ByPrice"]["medium"].Mean {
			t.Errorf("%s: OpineDB (%.2f) should beat ByPrice (%.2f)",
				res.Setting, op, res.Cells["ByPrice"]["medium"].Mean)
		}
	}
	if !strings.Contains(FormatTable5(results), "OpineDB") {
		t.Error("FormatTable5 malformed")
	}
}

func TestRunTable6(t *testing.T) {
	if testing.Short() {
		t.Skip("table 6 is slow")
	}
	rows := RunTable6(2, 17)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OurF1 <= r.SOTAF1 {
			t.Errorf("%s: our model %.2f should beat baseline %.2f", r.Dataset, r.OurF1, r.SOTAF1)
		}
		if r.OurF1 < 50 || r.OurF1 > 100 {
			t.Errorf("%s: F1 %.2f out of band", r.Dataset, r.OurF1)
		}
	}
	if !strings.Contains(FormatTable6(rows), "Booking.com Hotel") {
		t.Error("FormatTable6 malformed")
	}
}

func TestRunTable7SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table 7 is slow")
	}
	hotels, rest, hdb, rdb := fixtures(t)
	cfg := Table7Config{QueriesPerSet: 10, Conjuncts: 3, TopK: 10, Seed: 7}
	cols := RunTable7(hotels, rest, hdb, rdb, cfg)
	if len(cols) != 4 {
		t.Fatalf("cols = %d", len(cols))
	}
	for _, c := range cols {
		if c.RuntimeMkrs <= 0 || c.RuntimeNoMkrs <= 0 {
			t.Errorf("%s: zero runtimes", c.Setting)
		}
		// The headline: markers accelerate query processing.
		if c.Speedup <= 1 {
			t.Errorf("%s: speedup %.2fx, want > 1x", c.Setting, c.Speedup)
		}
	}
	if !strings.Contains(FormatTable7(cols), "Speedup") {
		t.Error("FormatTable7 malformed")
	}
}

func TestRunTable8SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table 8 is slow")
	}
	hotels, rest, hdb, rdb := fixtures(t)
	rows := RunTable8(hotels, rest, hdb, rdb, 9)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Size == 0 {
			t.Fatalf("%s: no predicates evaluated", r.QuerySet)
		}
		// Table 8 shape: w2v is the stronger single method; the combined
		// method does not fall below it materially.
		if r.W2V < 50 {
			t.Errorf("%s: w2v accuracy %.1f%% too low", r.QuerySet, r.W2V)
		}
		if r.Combined < r.W2V-10 {
			t.Errorf("%s: combined %.1f%% far below w2v %.1f%%", r.QuerySet, r.Combined, r.W2V)
		}
	}
	if !strings.Contains(FormatTable8(rows), "w2v+co-occur") {
		t.Error("FormatTable8 malformed")
	}
}

func TestRunFigure7(t *testing.T) {
	_, _, hdb, _ := fixtures(t)
	res := RunFigure7(hdb)
	if res.SelectedFuzzy == 0 {
		t.Fatal("fuzzy selected nothing")
	}
	// Appendix A's claim: the fuzzy region strictly contains near-boundary
	// entities the hard constraint rejects.
	if res.FuzzyOnly == 0 {
		t.Error("no entities in the shaded (fuzzy-only) region")
	}
	if !strings.Contains(FormatFigure7(res), "shaded region") {
		t.Error("FormatFigure7 malformed")
	}
}

func TestRunFigure8(t *testing.T) {
	hotels, _, hdb, _ := fixtures(t)
	res := RunFigure8(hotels, hdb)
	if res.OpineTop == "" || res.IRTop == "" {
		t.Fatal("missing top results")
	}
	// The Appendix D shape: OpineDB's top answer is at least as quiet as
	// the IR baseline's.
	if res.OpineQuietMass < res.IRQuietMass-0.05 {
		t.Errorf("OpineDB top quiet-mass %.2f should be >= IR's %.2f",
			res.OpineQuietMass, res.IRQuietMass)
	}
	if !strings.Contains(FormatFigure8(res), "quiet") {
		t.Error("FormatFigure8 malformed")
	}
}

func TestRunAppendixC(t *testing.T) {
	res := RunAppendixC(21)
	if res.Examples == 0 {
		t.Fatal("no examples")
	}
	if res.LearnedAcc < 70 {
		t.Errorf("learned pairer accuracy %.1f%% below band", res.LearnedAcc)
	}
	if res.RuleAccuracy < 70 {
		t.Errorf("rule pairer accuracy %.1f%% below band", res.RuleAccuracy)
	}
	if !strings.Contains(FormatAppendixC(res), "Supervised pairer") {
		t.Error("FormatAppendixC malformed")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
