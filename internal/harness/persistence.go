package harness

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/snapshot"
)

// PersistenceResult reports the build-once / serve-many experiment: how
// long a cold start takes by rebuilding the corpus versus loading a
// snapshot, and whether the loaded database answers the harness query
// set byte-identically to the built one (it must).
type PersistenceResult struct {
	// Entities / Reviews / Extractions size the corpus under test.
	Entities    int
	Reviews     int
	Extractions int
	// BuildSeconds is the full construction pipeline (parallel workers).
	BuildSeconds float64
	// SaveSeconds / LoadSeconds time snapshot.Save and snapshot.Load.
	SaveSeconds float64
	LoadSeconds float64
	// SnapshotBytes is the artifact size on disk.
	SnapshotBytes int64
	// Speedup is BuildSeconds / LoadSeconds — the cold-start win.
	Speedup float64
	// QueriesChecked counts fingerprinted interpretations, rankings and
	// top-k runs; Equivalent reports whether every one matched bit-for-bit
	// between the built and the loaded database.
	QueriesChecked int
	Equivalent     bool
	// Err is a non-empty description when the experiment itself failed.
	Err string
}

// RunPersistence builds a small hotel corpus, snapshots it, reloads it,
// and verifies load-vs-build equivalence over the full predicate bank.
func RunPersistence(seed int64) PersistenceResult {
	var res PersistenceResult
	genCfg := corpus.SmallConfig()
	genCfg.Seed = seed
	d := corpus.GenerateHotels(genCfg)

	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.UseSubstitutionIndex = true // exercise every snapshot section

	t0 := time.Now()
	db, err := BuildDB(d, cfg, 400, 300)
	if err != nil {
		res.Err = fmt.Sprintf("build: %v", err)
		return res
	}
	res.BuildSeconds = time.Since(t0).Seconds()
	res.Entities = len(d.Entities)
	res.Reviews = len(d.Reviews)
	res.Extractions = len(db.Extractions)

	f, err := os.CreateTemp("", "opinedb-persistence-*.snap")
	if err != nil {
		res.Err = fmt.Sprintf("tempfile: %v", err)
		return res
	}
	path := f.Name()
	_ = f.Close()
	defer os.Remove(path)

	t0 = time.Now()
	meta, err := snapshot.Save(path, db)
	if err != nil {
		res.Err = fmt.Sprintf("save: %v", err)
		return res
	}
	res.SaveSeconds = time.Since(t0).Seconds()
	res.SnapshotBytes = meta.FileBytes

	loaded, loadMeta, err := snapshot.Load(path)
	if err != nil {
		res.Err = fmt.Sprintf("load: %v", err)
		return res
	}
	res.LoadSeconds = loadMeta.LoadDuration.Seconds()
	if res.LoadSeconds > 0 {
		res.Speedup = res.BuildSeconds / res.LoadSeconds
	}

	builtFP, n := QueryFingerprint(d, db)
	loadedFP, _ := QueryFingerprint(d, loaded)
	res.QueriesChecked = n
	res.Equivalent = builtFP == loadedFP
	return res
}

// QueryEngine is the query surface QueryFingerprint drives: a *core.DB
// satisfies it directly, and router.Router implements it by scattering to
// shard backends — which is exactly how the sharding contract ("a sharded
// deployment answers byte-identically to the monolith") is enforced.
type QueryEngine interface {
	Interpret(text string) core.Interpretation
	RankPredicates(predicates []string, objective func(entityID string) bool, opts core.QueryOptions) (*core.QueryResult, error)
	TopKThreshold(predicates []string, k int) ([]core.ResultRow, core.TopKStats, error)
}

// QueryFingerprint serializes an engine's answers over the full harness
// query set with exact float bits: the interpretation of every bank
// predicate, the ranked Query result for every single predicate and
// adjacent pair, and TopKThreshold for the same workloads. Two engines
// answering byte-identically produce equal fingerprints. Work statistics
// (TA depth, sorted accesses) are deliberately excluded: they depend on
// the deployment shape (monolith vs shard fleet), not on the answers.
// It returns the fingerprint and the number of query-set entries covered.
func QueryFingerprint(d *corpus.Dataset, db QueryEngine) (string, int) {
	hexf := func(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }
	var b strings.Builder
	n := 0
	texts := make([]string, 0, len(d.Predicates))
	for _, p := range d.Predicates {
		texts = append(texts, p.Text)
	}
	for _, text := range texts {
		in := db.Interpret(text)
		fmt.Fprintf(&b, "interp %q method=%s terms=%v disj=%v sim=%s\n",
			text, in.Method, in.Terms, in.Disjunction, hexf(in.Similarity))
		n++
	}
	workloads := make([][]string, 0, 2*len(texts))
	for i, text := range texts {
		workloads = append(workloads, []string{text})
		if i+1 < len(texts) {
			workloads = append(workloads, []string{text, texts[i+1]})
		}
	}
	opts := core.DefaultQueryOptions()
	for _, q := range workloads {
		res, err := db.RankPredicates(q, nil, opts)
		if err != nil {
			fmt.Fprintf(&b, "query %v error=%v\n", q, err)
			n++
			continue
		}
		fmt.Fprintf(&b, "query %v:", q)
		for _, r := range res.Rows {
			fmt.Fprintf(&b, " %s=%s", r.EntityID, hexf(r.Score))
		}
		b.WriteByte('\n')
		n++

		rows, _, err := db.TopKThreshold(q, 10)
		if err != nil {
			fmt.Fprintf(&b, "topk %v error=%v\n", q, err)
			n++
			continue
		}
		fmt.Fprintf(&b, "topk %v:", q)
		for _, r := range rows {
			fmt.Fprintf(&b, " %s=%s", r.EntityID, hexf(r.Score))
		}
		b.WriteByte('\n')
		n++
	}
	return b.String(), n
}

// FormatPersistence renders the persistence experiment.
func FormatPersistence(r PersistenceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Persistence (snapshot build-once / serve-many; %d entities, %d reviews, %d extractions)\n",
		r.Entities, r.Reviews, r.Extractions)
	if r.Err != "" {
		fmt.Fprintf(&b, "  FAILED: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  cold start:  %8.2fs rebuild   %8.4fs snapshot load   (%.0fx faster)\n",
		r.BuildSeconds, r.LoadSeconds, r.Speedup)
	fmt.Fprintf(&b, "  artifact:    %8.2f MB on disk, written in %.2fs\n",
		float64(r.SnapshotBytes)/(1<<20), r.SaveSeconds)
	verdict := "IDENTICAL"
	if !r.Equivalent {
		verdict = "MISMATCH (snapshot round-trip is broken)"
	}
	fmt.Fprintf(&b, "  equivalence: %d query-set entries, loaded vs built: %s\n", r.QueriesChecked, verdict)
	return b.String()
}
