package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/embedding"
)

// threeBlobs generates three well-separated 2-D gaussian blobs.
func threeBlobs(rng *rand.Rand, perBlob int) ([]embedding.Vector, []int) {
	centers := []embedding.Vector{{0, 0}, {10, 0}, {0, 10}}
	var pts []embedding.Vector
	var labels []int
	for c, center := range centers {
		for i := 0; i < perBlob; i++ {
			pts = append(pts, embedding.Vector{
				center[0] + rng.NormFloat64()*0.5,
				center[1] + rng.NormFloat64()*0.5,
			})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts, labels := threeBlobs(rng, 30)
	res, err := KMeans(pts, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every ground-truth blob must map to exactly one cluster.
	blobToCluster := map[int]int{}
	for i, lab := range labels {
		if prev, ok := blobToCluster[lab]; ok {
			if prev != res.Assign[i] {
				t.Fatalf("blob %d split across clusters %d and %d", lab, prev, res.Assign[i])
			}
		} else {
			blobToCluster[lab] = res.Assign[i]
		}
	}
	if len(blobToCluster) != 3 {
		t.Errorf("expected 3 distinct clusters, got %d", len(blobToCluster))
	}
}

func TestKMeansMedoids(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, _ := threeBlobs(rng, 20)
	res, err := KMeans(pts, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c, m := range res.Medoids {
		if m < 0 || m >= len(pts) {
			t.Fatalf("medoid %d out of range: %d", c, m)
		}
		if res.Assign[m] != c {
			t.Errorf("medoid %d assigned to cluster %d, want %d", m, res.Assign[m], c)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := []embedding.Vector{{1, 2}, {3, 4}}
	if _, err := KMeans(pts, 3, 10, rng); err == nil {
		t.Error("k > n should error")
	}
	if _, err := KMeans(pts, 0, 10, rng); err == nil {
		t.Error("k=0 should error")
	}
	bad := []embedding.Vector{{1, 2}, {3}}
	if _, err := KMeans(bad, 1, 10, rng); err == nil {
		t.Error("inconsistent dims should error")
	}
}

func TestKMeansK1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := []embedding.Vector{{0, 0}, {2, 0}, {4, 0}}
	res, err := KMeans(pts, 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Single centroid must be the mean.
	if got := res.Centroids[0][0]; got < 1.99 || got > 2.01 {
		t.Errorf("centroid = %v, want mean 2", got)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Error("all points must be in cluster 0")
		}
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := []embedding.Vector{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	res, err := KMeans(pts, 2, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[1] != res.Assign[2] {
		t.Error("identical points assigned to different clusters")
	}
	if res.Assign[3] == res.Assign[0] {
		t.Error("outlier should form its own cluster")
	}
}

func TestKMeansAllIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := []embedding.Vector{{2, 2}, {2, 2}, {2, 2}}
	res, err := KMeans(pts, 2, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := Inertia(pts, res); got != 0 {
		t.Errorf("inertia on identical points = %v, want 0", got)
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := threeBlobs(rng, 25)
	r1, err := KMeans(pts, 1, 60, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := KMeans(pts, 3, 60, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if Inertia(pts, r3) >= Inertia(pts, r1) {
		t.Errorf("inertia(k=3)=%v should be < inertia(k=1)=%v",
			Inertia(pts, r3), Inertia(pts, r1))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := threeBlobs(rand.New(rand.NewSource(8)), 15)
	r1, _ := KMeans(pts, 3, 40, rand.New(rand.NewSource(9)))
	r2, _ := KMeans(pts, 3, 40, rand.New(rand.NewSource(9)))
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("same seed must give same clustering")
		}
	}
}
