// Package cluster implements k-means clustering with k-means++ seeding.
// OpineDB uses it to discover categorical markers (§4.2.1): the linguistic
// domain of a categorical attribute is clustered in embedding space and the
// phrase nearest each centroid is suggested as a marker.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/embedding"
)

// Result holds a clustering: the final centroids, each point's cluster
// assignment, and the index of the point closest to each centroid (the
// "medoid", which OpineDB uses as the suggested marker phrase).
type Result struct {
	Centroids []embedding.Vector
	Assign    []int
	Medoids   []int
}

// KMeans clusters points into k clusters using k-means++ initialization and
// Lloyd iterations until convergence or maxIter. It returns an error if
// there are fewer points than clusters or k < 1.
func KMeans(points []embedding.Vector, k, maxIter int, rng *rand.Rand) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if len(points) < k {
		return nil, fmt.Errorf("cluster: %d points < k=%d", len(points), k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		// Assignment step.
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Update step.
		counts := make([]int, k)
		sums := make([]embedding.Vector, k)
		for c := range sums {
			sums[c] = make(embedding.Vector, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			sums[c].Add(p)
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid, a standard fix that keeps k clusters alive.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = points[far].Clone()
				continue
			}
			sums[c].Scale(1 / float64(counts[c]))
			centroids[c] = sums[c]
		}
	}

	// Final assignment + medoids.
	medoids := make([]int, k)
	medoidD := make([]float64, k)
	for c := range medoidD {
		medoidD[c] = math.Inf(1)
		medoids[c] = -1
	}
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			if d := sqDist(p, cen); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		if bestD < medoidD[best] {
			medoidD[best] = bestD
			medoids[best] = i
		}
	}
	return &Result{Centroids: centroids, Assign: assign, Medoids: medoids}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points []embedding.Vector, k int, rng *rand.Rand) []embedding.Vector {
	centroids := make([]embedding.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))].Clone())
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, points[rng.Intn(len(points))].Clone())
			continue
		}
		r := rng.Float64() * total
		var acc float64
		picked := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				picked = i
				break
			}
		}
		centroids = append(centroids, points[picked].Clone())
	}
	return centroids
}

func sqDist(a, b embedding.Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Inertia returns the total within-cluster sum of squared distances, the
// quantity k-means locally minimizes; exposed for tests and diagnostics.
func Inertia(points []embedding.Vector, r *Result) float64 {
	var s float64
	for i, p := range points {
		s += sqDist(p, r.Centroids[r.Assign[i]])
	}
	return s
}
