package trace

// JSON exposition of the trace store, plus the pprof debug mux that the
// -debug-addr flag serves. GET /debug/traces returns every kept trace
// (retained slow/error traces first, newest first within each ring),
// filtered by ?min_ms=N (root duration at or above N milliseconds) and
// ?id=<trace id> (exact lookup, including still-pending traces so an
// in-flight request can be inspected).

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// SpanJSON is one span in the exposition.
type SpanJSON struct {
	SpanID         string  `json:"span_id"`
	ParentID       string  `json:"parent_id,omitempty"`
	Name           string  `json:"name"`
	StartUnixMicro int64   `json:"start_unix_micro"`
	DurationMS     float64 `json:"duration_ms"`
	Error          string  `json:"error,omitempty"`
	Attrs          []Attr  `json:"attrs,omitempty"`
	InFlight       bool    `json:"in_flight,omitempty"`
}

// TraceJSON is one kept trace in the exposition.
type TraceJSON struct {
	TraceID        string     `json:"trace_id"`
	StartUnixMicro int64      `json:"start_unix_micro"`
	DurationMS     float64    `json:"duration_ms"`
	Kept           string     `json:"kept"` // "slow" | "error" | "sampled" | "pending"
	Spans          []SpanJSON `json:"spans"`
}

// export renders one record. Caller holds c.mu; span state is read
// under each span's own lock, so spans that ended (or gained attrs)
// after the trace finalized still render correctly.
func (c *Collector) exportLocked(rec *record) TraceJSON {
	t := TraceJSON{
		TraceID:        rec.id,
		StartUnixMicro: rec.start.UnixMicro(),
		DurationMS:     rec.durMS,
		Kept:           rec.keep,
	}
	if t.Kept == "" {
		t.Kept = "pending"
	}
	for _, s := range rec.spans {
		s.mu.Lock()
		sj := SpanJSON{
			SpanID:         s.ID,
			ParentID:       s.Parent,
			Name:           s.Name,
			StartUnixMicro: s.start.UnixMicro(),
			DurationMS:     float64(s.dur.Microseconds()) / 1000,
			Error:          s.err,
			InFlight:       !s.ended,
		}
		if len(s.attrs) > 0 {
			sj.Attrs = append([]Attr(nil), s.attrs...)
		}
		s.mu.Unlock()
		t.Spans = append(t.Spans, sj)
	}
	sort.SliceStable(t.Spans, func(i, j int) bool {
		return t.Spans[i].StartUnixMicro < t.Spans[j].StartUnixMicro
	})
	return t
}

// Snapshot returns every kept trace: the retained ring first, then the
// sampled ring, each newest-first.
func (c *Collector) Snapshot() []TraceJSON {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TraceJSON, 0, len(c.retained)+len(c.sampled))
	for i := len(c.retained) - 1; i >= 0; i-- {
		out = append(out, c.exportLocked(c.retained[i]))
	}
	for i := len(c.sampled) - 1; i >= 0; i-- {
		out = append(out, c.exportLocked(c.sampled[i]))
	}
	return out
}

// Get looks up one trace by id — kept or still pending.
func (c *Collector) Get(id string) (TraceJSON, bool) {
	if c == nil {
		return TraceJSON{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.byID[id]
	if !ok {
		return TraceJSON{}, false
	}
	return c.exportLocked(rec), true
}

// Dropped reports how many finished traces the sampler discarded.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// tracesResponse is the /debug/traces payload.
type tracesResponse struct {
	Count   int         `json:"count"`
	Dropped uint64      `json:"dropped"`
	Traces  []TraceJSON `json:"traces"`
}

// TracesHandler serves GET /debug/traces.
func (c *Collector) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			t, ok := c.Get(id)
			if !ok {
				http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
				return
			}
			json.NewEncoder(w).Encode(tracesResponse{Count: 1, Dropped: c.Dropped(), Traces: []TraceJSON{t}})
			return
		}
		traces := c.Snapshot()
		if v := r.URL.Query().Get("min_ms"); v != "" {
			min, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, `{"error":"bad min_ms"}`, http.StatusBadRequest)
				return
			}
			kept := traces[:0]
			for _, t := range traces {
				if t.DurationMS >= min {
					kept = append(kept, t)
				}
			}
			traces = kept
		}
		json.NewEncoder(w).Encode(tracesResponse{Count: len(traces), Dropped: c.Dropped(), Traces: traces})
	})
}

// DebugMux builds the diagnostics surface the -debug-addr flag serves:
// the full net/http/pprof suite plus /debug/traces when a collector is
// wired. Handlers are registered explicitly — nothing here depends on
// http.DefaultServeMux.
func DebugMux(c *Collector) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if c != nil {
		mux.Handle("/debug/traces", c.TracesHandler())
	}
	return mux
}
