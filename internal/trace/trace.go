// Package trace is a dependency-free request-scoped tracing layer in
// the spirit of internal/obs: no third-party imports, cheap on the hot
// path, and deterministic to test. A Trace is a tree of Spans sharing a
// trace id; the active Span rides in context.Context and crosses
// process boundaries via the X-Opinedb-Trace / X-Opinedb-Span headers,
// so a hedged read or a group-committed write shows up end-to-end — on
// the router AND on the shard replica — under one id.
//
// Completed traces land in a bounded per-process store with TAIL
// sampling: the keep/drop decision happens after the trace finishes,
// when its latency and error outcome are known. Traces that exceed the
// slow cutoff or contain an errored span are always retained;
// everything else is sampled probabilistically by a seeded RNG (so
// tests are deterministic, and so tracing never touches the router's
// own seeded replica-pick RNG — tracing must not perturb results).
// Retained ("slow"/"error") and sampled traces live in separate FIFO
// rings, so a burst of healthy traffic can never evict the one slow
// request an operator is chasing.
//
// The store is exposed as JSON at GET /debug/traces (?min_ms= and ?id=
// filters) — see Collector.TracesHandler and DebugMux.
package trace

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Propagation header contract. The router front door mints a trace id
// and every outbound hop forwards it; the span header carries the
// caller's span id so the receiving process parents its root correctly.
const (
	TraceHeader = "X-Opinedb-Trace"
	SpanHeader  = "X-Opinedb-Span"
)

// Options configure a Collector. The zero value is usable.
type Options struct {
	// Capacity bounds each ring (retained and sampled separately).
	// 0 means 256.
	Capacity int
	// SlowCutoff is the tail-sampling latency threshold: any trace whose
	// root span meets or exceeds it is always retained. 0 means 50ms.
	SlowCutoff time.Duration
	// SampleRate is the probability a fast, error-free trace is kept in
	// the sampled ring. 0 means 0.01; pass a negative rate for "never".
	SampleRate float64
	// Seed seeds the collector's private RNG (trace/span ids and the
	// sampling coin). 0 means 1.
	Seed int64
}

// Collector records spans for one process and applies tail sampling
// when a trace completes. A nil *Collector is valid everywhere: Start
// returns a nil Span, and nil Spans accept (and ignore) every method —
// tracing disabled costs two nil checks per call site.
type Collector struct {
	opts Options

	mu       sync.Mutex
	rng      *rand.Rand
	pending  map[string]*record // live traces, by id
	byID     map[string]*record // pending + kept, for ?id= lookup
	retained []*record          // slow/error traces, FIFO
	sampled  []*record          // probabilistic keeps, FIFO
	dropped  uint64             // finished traces the sampler discarded
}

// record is one trace's server-side state: every span this process
// recorded for the id, plus the retention outcome once finalized.
type record struct {
	id    string
	start time.Time
	roots int // in-flight root spans; finalize when the last one ends
	spans []*Span
	keep  string  // "", then "slow" | "error" | "sampled"
	durMS float64 // max root-span duration
}

// New builds a Collector.
func New(opts Options) *Collector {
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.SlowCutoff == 0 {
		opts.SlowCutoff = 50 * time.Millisecond
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = 0.01
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Collector{
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		pending: make(map[string]*record),
		byID:    make(map[string]*record),
	}
}

// Span is one timed operation inside a trace. Attrs may be set after
// End — the hedging state machine stamps won/lost attribution onto leg
// spans once the race resolves — and late writes still surface at
// /debug/traces because the store holds live pointers.
type Span struct {
	c   *Collector
	rec *record

	Trace  string
	ID     string
	Parent string
	Name   string

	start time.Time
	root  bool

	mu    sync.Mutex
	attrs []Attr
	err   string
	ended bool
	dur   time.Duration
}

// Attr is one key=value annotation, in insertion order.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

type ctxKey int

const (
	spanKey ctxKey = iota
	remoteKey
)

type remoteRef struct{ trace, span string }

// hexDigits for id rendering without fmt on the hot path.
const hexDigits = "0123456789abcdef"

// newIDLocked renders 16 hex chars from the collector RNG. Caller
// holds c.mu.
func (c *Collector) newIDLocked() string {
	v := c.rng.Uint64()
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Start opens a span named name. The parent is resolved in priority
// order: an in-process active span from the SAME collector (the usual
// child case), then a remote parent extracted from headers (this span
// becomes a process-local root of a cross-process trace), else a brand
// new trace id is minted. The returned context carries the new span for
// downstream Start/Inject calls.
func (c *Collector) Start(ctx context.Context, name string) (context.Context, *Span) {
	if c == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	if parent != nil && parent.c != c {
		parent = nil // foreign collector: fall back to header linkage
	}
	remote, _ := ctx.Value(remoteKey).(remoteRef)

	s := &Span{c: c, Name: name, start: time.Now()}
	c.mu.Lock()
	switch {
	case parent != nil:
		s.Trace, s.Parent, s.rec = parent.Trace, parent.ID, parent.rec
	case remote.trace != "":
		s.Trace, s.Parent, s.root = remote.trace, remote.span, true
	default:
		s.Trace, s.root = c.newIDLocked(), true
	}
	s.ID = c.newIDLocked()
	rec := s.rec
	if rec == nil {
		rec = c.pending[s.Trace]
		if rec == nil {
			rec = &record{id: s.Trace, start: s.start}
			c.pending[s.Trace] = rec
			c.byID[s.Trace] = rec
		}
		s.rec = rec
	}
	if s.root {
		rec.roots++
	}
	rec.spans = append(rec.spans, s)
	c.mu.Unlock()
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr annotates the span. Safe on nil spans and after End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// SetError marks the span failed; any errored span forces the whole
// trace into the retained ring. Safe on nil spans.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	if msg == "" {
		msg = "error"
	}
	s.mu.Lock()
	s.err = msg
	s.mu.Unlock()
}

// End closes the span. When the last root span of a trace ends, the
// tail-sampling decision runs and the trace is kept or dropped.
// Idempotent; safe on nil spans.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	dur := s.dur
	s.mu.Unlock()
	if s.root {
		s.c.rootEnded(s.rec, dur)
	}
}

// rootEnded retires one root reference; the last one out finalizes the
// trace: errored → retained, slow → retained, else a seeded coin flip
// into the sampled ring or the void.
func (c *Collector) rootEnded(rec *record, dur time.Duration) {
	ms := float64(dur.Microseconds()) / 1000
	c.mu.Lock()
	defer c.mu.Unlock()
	if ms > rec.durMS {
		rec.durMS = ms
	}
	rec.roots--
	if rec.roots > 0 {
		return
	}
	delete(c.pending, rec.id)
	anyErr := false
	for _, sp := range rec.spans {
		sp.mu.Lock()
		if sp.err != "" {
			anyErr = true
		}
		sp.mu.Unlock()
		if anyErr {
			break
		}
	}
	switch {
	case anyErr:
		rec.keep = "error"
		c.push(&c.retained, rec)
	case rec.durMS >= float64(c.opts.SlowCutoff.Microseconds())/1000:
		rec.keep = "slow"
		c.push(&c.retained, rec)
	case c.opts.SampleRate > 0 && c.rng.Float64() < c.opts.SampleRate:
		rec.keep = "sampled"
		c.push(&c.sampled, rec)
	default:
		c.dropped++
		delete(c.byID, rec.id)
	}
}

// push appends rec to the ring, evicting the oldest entry past
// capacity. Caller holds c.mu.
func (c *Collector) push(ring *[]*record, rec *record) {
	*ring = append(*ring, rec)
	if len(*ring) > c.opts.Capacity {
		old := (*ring)[0]
		copy(*ring, (*ring)[1:])
		*ring = (*ring)[:len(*ring)-1]
		if c.byID[old.id] == old {
			delete(c.byID, old.id)
		}
	}
}

// FromContext returns the active span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ID returns the trace id carried by ctx — from the active span or a
// remote extract — or "". This is the log-correlation hook: slog lines
// tagged with ID(ctx) join logs to /debug/traces and to metric
// exemplars on one id.
func ID(ctx context.Context) string {
	if s, _ := ctx.Value(spanKey).(*Span); s != nil {
		return s.Trace
	}
	if r, _ := ctx.Value(remoteKey).(remoteRef); r.trace != "" {
		return r.trace
	}
	return ""
}

// Inject writes the propagation headers for the active span, if any.
func Inject(ctx context.Context, h http.Header) {
	if s, _ := ctx.Value(spanKey).(*Span); s != nil {
		h.Set(TraceHeader, s.Trace)
		h.Set(SpanHeader, s.ID)
	}
}

// Extract reads the propagation headers into ctx so the next Start in
// this process becomes a root span of the caller's trace. Collector-
// independent: extraction records only ids.
func Extract(ctx context.Context, h http.Header) context.Context {
	t := h.Get(TraceHeader)
	if t == "" {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, remoteRef{trace: t, span: h.Get(SpanHeader)})
}
