package trace

// Unit tests of the tracing layer's load-bearing properties: tail
// sampling keeps slow and errored traces unconditionally while fast
// ones live or die by a seeded (deterministic) coin; the retained and
// sampled rings rotate FIFO independently; propagation headers round-
// trip a trace id across collectors (processes); and post-End attribute
// stamping — the hedging attribution path — surfaces in the export.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestTailSamplingRetention: an errored trace and a slow trace are
// always retained; fast clean traces are dropped when sampling is off,
// and the drop is counted.
func TestTailSamplingRetention(t *testing.T) {
	c := New(Options{SlowCutoff: 5 * time.Millisecond, SampleRate: -1, Seed: 7})

	// Fast and clean: dropped.
	for i := 0; i < 3; i++ {
		_, s := c.Start(context.Background(), "fast")
		s.End()
	}
	// Errored: retained regardless of speed.
	_, errSpan := c.Start(context.Background(), "failing")
	errSpan.SetError("boom")
	errSpan.End()
	// Slow: retained because its duration clears the cutoff.
	_, slowSpan := c.Start(context.Background(), "slow")
	time.Sleep(8 * time.Millisecond)
	slowSpan.End()

	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("retained %d traces, want 2 (error + slow): %+v", len(snap), snap)
	}
	kept := map[string]bool{}
	for _, tr := range snap {
		kept[tr.Kept] = true
	}
	if !kept["error"] || !kept["slow"] {
		t.Fatalf("retention reasons = %v, want error and slow", kept)
	}
	if got := c.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
}

// TestSampledRingRotatesFIFO: with sample-everything, the sampled ring
// keeps exactly the newest Capacity traces; retained traces are never
// evicted by the healthy burst because the rings are separate.
func TestSampledRingRotatesFIFO(t *testing.T) {
	c := New(Options{Capacity: 3, SlowCutoff: time.Hour, SampleRate: 1, Seed: 1})

	_, bad := c.Start(context.Background(), "the-one-you-are-chasing")
	bad.SetError("oops")
	bad.End()
	chased := bad.Trace

	var ids []string
	for i := 0; i < 10; i++ {
		_, s := c.Start(context.Background(), "healthy")
		ids = append(ids, s.Trace)
		s.End()
	}

	snap := c.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d traces, want 4 (1 retained + capacity 3 sampled)", len(snap))
	}
	if snap[0].TraceID != chased || snap[0].Kept != "error" {
		t.Fatalf("retained trace missing or not first: %+v", snap[0])
	}
	// The sampled survivors are the NEWEST three, newest first.
	want := []string{ids[9], ids[8], ids[7]}
	for i, w := range want {
		if snap[i+1].TraceID != w {
			t.Fatalf("sampled ring slot %d = %s, want %s (FIFO rotation)", i, snap[i+1].TraceID, w)
		}
	}
	// Rotated-out traces are gone from the ?id= index too.
	if _, ok := c.Get(ids[0]); ok {
		t.Fatalf("evicted trace %s still resolvable by id", ids[0])
	}
	if _, ok := c.Get(chased); !ok {
		t.Fatal("retained trace lost its id lookup")
	}
}

// TestSamplerDeterministicUnderSeed: two collectors with the same seed
// make identical keep/drop decisions — the property that lets tests (and
// A/B runs) assert on sampled traces at all.
func TestSamplerDeterministicUnderSeed(t *testing.T) {
	decisions := func() []bool {
		c := New(Options{SlowCutoff: time.Hour, SampleRate: 0.4, Seed: 42})
		var out []bool
		for i := 0; i < 64; i++ {
			_, s := c.Start(context.Background(), "op")
			id := s.Trace
			s.End()
			_, kept := c.Get(id)
			out = append(out, kept)
		}
		return out
	}
	a, b := decisions(), decisions()
	anyKept, anyDropped := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under identical seeds", i)
		}
		anyKept = anyKept || a[i]
		anyDropped = anyDropped || !a[i]
	}
	if !anyKept || !anyDropped {
		t.Fatalf("sampler at 0.4 over 64 traces kept=%v dropped=%v — expected a mix", anyKept, anyDropped)
	}
}

// TestHeaderRoundTrip: Inject on the caller's collector, Extract on the
// callee's — the callee's root span joins the caller's trace id and is
// parented at the caller's span id, across distinct collectors exactly
// as across processes.
func TestHeaderRoundTrip(t *testing.T) {
	caller := New(Options{SampleRate: 1, SlowCutoff: time.Hour, Seed: 1})
	callee := New(Options{SampleRate: 1, SlowCutoff: time.Hour, Seed: 99})

	ctx, root := caller.Start(context.Background(), "router.topk")
	h := http.Header{}
	Inject(ctx, h)
	if h.Get(TraceHeader) != root.Trace || h.Get(SpanHeader) != root.ID {
		t.Fatalf("injected %q/%q, want %q/%q", h.Get(TraceHeader), h.Get(SpanHeader), root.Trace, root.ID)
	}

	remoteCtx := Extract(context.Background(), h)
	if got := ID(remoteCtx); got != root.Trace {
		t.Fatalf("ID after Extract = %q, want %q (log correlation before any span starts)", got, root.Trace)
	}
	_, child := callee.Start(remoteCtx, "server.topk")
	child.End()
	root.End()

	if child.Trace != root.Trace {
		t.Fatalf("callee trace %s != caller trace %s", child.Trace, root.Trace)
	}
	if child.Parent != root.ID {
		t.Fatalf("callee parent %s != caller span %s", child.Parent, root.ID)
	}
	// Both collectors independently kept their half under the shared id.
	if _, ok := caller.Get(root.Trace); !ok {
		t.Fatal("caller side of the cross-process trace was not kept")
	}
	if _, ok := callee.Get(root.Trace); !ok {
		t.Fatal("callee side of the cross-process trace was not kept")
	}
}

// TestPostEndAttrsSurface: attributes stamped after End (hedge won/lost
// attribution) must appear in the exported trace.
func TestPostEndAttrsSurface(t *testing.T) {
	c := New(Options{SampleRate: 1, SlowCutoff: time.Hour, Seed: 1})
	ctx, root := c.Start(context.Background(), "router.scatter")
	_, leg := c.Start(ctx, "router.leg")
	leg.End()
	root.End()
	leg.SetAttr("hedge_won", "true") // after the trace finalized

	tr, ok := c.Get(root.Trace)
	if !ok {
		t.Fatal("trace not kept")
	}
	found := false
	for _, s := range tr.Spans {
		for _, a := range s.Attrs {
			if a.Key == "hedge_won" && a.Value == "true" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("post-End attr missing from export: %+v", tr.Spans)
	}
}

// TestNilCollectorAndSpan: tracing off must be safe everywhere.
func TestNilCollectorAndSpan(t *testing.T) {
	var c *Collector
	ctx, s := c.Start(context.Background(), "noop")
	s.SetAttr("k", "v")
	s.SetError("boom")
	s.End()
	s.End()
	if s != nil {
		t.Fatal("nil collector returned a live span")
	}
	Inject(ctx, http.Header{}) // no active span: no headers, no panic
	if got := ID(ctx); got != "" {
		t.Fatalf("ID on a span-free context = %q", got)
	}
}

// TestTracesHandlerFilters: /debug/traces serves the store as JSON with
// ?min_ms= and ?id= filters, and 404s on unknown ids.
func TestTracesHandlerFilters(t *testing.T) {
	c := New(Options{SlowCutoff: 5 * time.Millisecond, SampleRate: -1, Seed: 3})
	_, slow := c.Start(context.Background(), "slow-op")
	time.Sleep(8 * time.Millisecond)
	slow.End()
	_, errSpan := c.Start(context.Background(), "err-op")
	errSpan.SetError("x")
	errSpan.End()

	srv := httptest.NewServer(c.TracesHandler())
	defer srv.Close()

	var all tracesPage
	getTraces(t, srv.URL+"/debug/traces", http.StatusOK, &all)
	if all.Count != 2 || len(all.Traces) != 2 {
		t.Fatalf("unfiltered count = %d (%d traces), want 2", all.Count, len(all.Traces))
	}

	var slowOnly tracesPage
	getTraces(t, srv.URL+"/debug/traces?min_ms=5", http.StatusOK, &slowOnly)
	if len(slowOnly.Traces) != 1 || slowOnly.Traces[0].TraceID != slow.Trace {
		t.Fatalf("min_ms filter returned %+v, want just the slow trace", slowOnly.Traces)
	}

	var byID tracesPage
	getTraces(t, srv.URL+"/debug/traces?id="+errSpan.Trace, http.StatusOK, &byID)
	if len(byID.Traces) != 1 || byID.Traces[0].Kept != "error" {
		t.Fatalf("id lookup returned %+v", byID.Traces)
	}

	resp, err := http.Get(srv.URL + "/debug/traces?id=deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id answered %d, want 404", resp.StatusCode)
	}
}

type tracesPage struct {
	Count   int         `json:"count"`
	Dropped uint64      `json:"dropped"`
	Traces  []TraceJSON `json:"traces"`
}

func getTraces(t *testing.T, url string, wantStatus int, out *tracesPage) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
