// Package embedding implements word2vec (skip-gram with negative sampling)
// and the IDF-weighted phrase representation of the paper (Eq. 1):
//
//	rep(p) = Σ_{w∈p} w2v(w) · idf(w)
//
// with phrase closeness measured by cosine similarity (Eq. 2). The paper
// trains word2vec on the review corpus itself so that domain-specific
// synonyms ("suite" ≈ "room") are captured; we do the same.
package embedding

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/textproc"
)

// Vector is a dense word embedding.
type Vector []float64

// Dot returns the inner product of v and o. The two vectors must have the
// same dimensionality.
func (v Vector) Dot(o Vector) float64 {
	var s float64
	for i := range v {
		s += v[i] * o[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Cosine returns the cosine similarity of a and b, or 0 if either is a zero
// vector.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// Add accumulates o into v in place.
func (v Vector) Add(o Vector) {
	for i := range v {
		v[i] += o[i]
	}
}

// Scale multiplies v by f in place.
func (v Vector) Scale(f float64) {
	for i := range v {
		v[i] *= f
	}
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// TrainConfig controls SGNS training.
type TrainConfig struct {
	Dim       int     // embedding dimensionality
	Window    int     // context window radius
	Negatives int     // negative samples per positive pair
	Epochs    int     // passes over the corpus
	LR        float64 // initial learning rate, linearly decayed
	MinCount  int     // discard words rarer than this
}

// DefaultTrainConfig returns the configuration used in the experiments:
// small dimensionality keeps training fast while preserving the synonym
// structure the interpreter needs.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Dim: 48, Window: 4, Negatives: 5, Epochs: 3, LR: 0.05, MinCount: 2}
}

// Model holds trained word vectors plus the corpus IDF statistics needed
// for phrase representations.
type Model struct {
	dim   int
	vecs  map[string]Vector
	stats *textproc.CorpusStats
}

// Dim returns the dimensionality of the model's vectors.
func (m *Model) Dim() int { return m.dim }

// Has reports whether word has a vector.
func (m *Model) Has(word string) bool {
	_, ok := m.vecs[word]
	return ok
}

// Vec returns the vector for word, or nil if the word is out of vocabulary.
func (m *Model) Vec(word string) Vector { return m.vecs[word] }

// Vocab returns all in-vocabulary words in unspecified order.
func (m *Model) Vocab() []string {
	out := make([]string, 0, len(m.vecs))
	for w := range m.vecs {
		out = append(out, w)
	}
	return out
}

// IDF exposes the corpus IDF used in phrase representations.
func (m *Model) IDF(word string) float64 { return m.stats.IDF(word) }

// Rep computes the IDF-weighted phrase representation of Eq. 1 for an
// arbitrary phrase. Stopwords and out-of-vocabulary words contribute
// nothing. The zero vector is returned for fully unknown phrases.
func (m *Model) Rep(phrase string) Vector {
	return m.RepTokens(textproc.Tokenize(phrase))
}

// repIDFCap bounds a single word's weight in a phrase representation, and
// repTrainedCount is the occurrence count at which a word's vector is
// considered fully trained. Ultra-rare words have the least-trained,
// noisiest vectors yet the highest IDF; an uncapped Eq. 1 lets one such
// word contribute most of the phrase mass and destroy the similarity to
// otherwise-identical variations ("serves delicious food" must still
// match "food delicious" when "serves" was seen a dozen times).
const (
	repIDFCap       = 4.0
	repTrainedCount = 50
)

// RepTokens is Rep over pre-tokenized input.
func (m *Model) RepTokens(tokens []string) Vector {
	rep := make(Vector, m.dim)
	for _, w := range tokens {
		if textproc.IsStopword(w) {
			continue
		}
		v, ok := m.vecs[w]
		if !ok {
			continue
		}
		idf := m.stats.IDF(w)
		if idf > repIDFCap {
			idf = repIDFCap
		}
		if cnt := m.stats.TermCount(w); cnt < repTrainedCount {
			idf *= float64(cnt) / repTrainedCount
		}
		for i := range rep {
			rep[i] += v[i] * idf
		}
	}
	return rep
}

// Similarity returns the Eq. 2 cosine similarity of two phrases.
func (m *Model) Similarity(a, b string) float64 {
	return Cosine(m.Rep(a), m.Rep(b))
}

// Neighbor is a word with its cosine similarity to a query.
type Neighbor struct {
	Word string
	Sim  float64
}

// MostSimilar returns the k in-vocabulary words most similar to phrase,
// excluding the phrase's own tokens. Used for seed expansion (§4.2).
func (m *Model) MostSimilar(phrase string, k int) []Neighbor {
	rep := m.Rep(phrase)
	if rep.Norm() == 0 || k <= 0 {
		return nil
	}
	exclude := make(map[string]bool)
	for _, t := range textproc.Tokenize(phrase) {
		exclude[t] = true
	}
	out := make([]Neighbor, 0, len(m.vecs))
	for w, v := range m.vecs {
		if exclude[w] {
			continue
		}
		out = append(out, Neighbor{Word: w, Sim: Cosine(rep, v)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Word < out[j].Word
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Train learns SGNS vectors over the token streams in docs. The rng makes
// training deterministic for a fixed seed. Stats must be the corpus
// statistics computed over the same documents (it supplies IDF weights and
// the vocabulary cut).
func Train(docs [][]string, stats *textproc.CorpusStats, cfg TrainConfig, rng *rand.Rand) (*Model, error) {
	if cfg.Dim <= 0 || cfg.Window <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("embedding: invalid config %+v", cfg)
	}
	vocabList := stats.Vocabulary(cfg.MinCount)
	sort.Strings(vocabList) // determinism
	if len(vocabList) == 0 {
		return nil, fmt.Errorf("embedding: empty vocabulary")
	}
	index := make(map[string]int, len(vocabList))
	for i, w := range vocabList {
		index[w] = i
	}
	V := len(vocabList)

	// Input and output embedding matrices, flat for locality.
	in := make([]float64, V*cfg.Dim)
	out := make([]float64, V*cfg.Dim)
	for i := range in {
		in[i] = (rng.Float64() - 0.5) / float64(cfg.Dim)
	}

	// Unigram^0.75 negative sampling table.
	table := buildUnigramTable(vocabList, stats, rng)

	// Pre-index documents; drop OOV and stopwords (standard practice:
	// stopwords dilute context windows).
	encoded := make([][]int, 0, len(docs))
	var totalTokens int
	for _, doc := range docs {
		enc := make([]int, 0, len(doc))
		for _, w := range doc {
			if textproc.IsStopword(w) {
				continue
			}
			if id, ok := index[w]; ok {
				enc = append(enc, id)
			}
		}
		if len(enc) > 1 {
			encoded = append(encoded, enc)
			totalTokens += len(enc)
		}
	}
	if totalTokens == 0 {
		return nil, fmt.Errorf("embedding: no trainable tokens")
	}

	totalSteps := float64(cfg.Epochs * totalTokens)
	step := 0.0
	grad := make([]float64, cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Shuffle document order each epoch.
		perm := rng.Perm(len(encoded))
		for _, di := range perm {
			doc := encoded[di]
			for pos, center := range doc {
				step++
				lr := cfg.LR * (1 - step/totalSteps)
				if lr < cfg.LR*0.0001 {
					lr = cfg.LR * 0.0001
				}
				w := 1 + rng.Intn(cfg.Window)
				lo, hi := pos-w, pos+w
				if lo < 0 {
					lo = 0
				}
				if hi >= len(doc) {
					hi = len(doc) - 1
				}
				cBase := center * cfg.Dim
				for cpos := lo; cpos <= hi; cpos++ {
					if cpos == pos {
						continue
					}
					ctx := doc[cpos]
					// Positive pair + negatives.
					for i := range grad {
						grad[i] = 0
					}
					trainPair(in[cBase:cBase+cfg.Dim], out, ctx*cfg.Dim, cfg.Dim, 1, lr, grad)
					for n := 0; n < cfg.Negatives; n++ {
						neg := table[rng.Intn(len(table))]
						if neg == ctx {
							continue
						}
						trainPair(in[cBase:cBase+cfg.Dim], out, neg*cfg.Dim, cfg.Dim, 0, lr, grad)
					}
					for i := 0; i < cfg.Dim; i++ {
						in[cBase+i] += grad[i]
					}
				}
			}
		}
	}

	vecs := make(map[string]Vector, V)
	for w, id := range index {
		v := make(Vector, cfg.Dim)
		copy(v, in[id*cfg.Dim:(id+1)*cfg.Dim])
		vecs[w] = v
	}
	centerVectors(vecs, cfg.Dim)
	return &Model{dim: cfg.Dim, vecs: vecs, stats: stats}, nil
}

// centerVectors removes the common component from every vector
// ("all-but-the-top" post-processing) and L2-normalizes the result.
// Raw SGNS vectors share a large common direction that drives all pairwise
// cosines toward 1, and rare words receive few updates and end up with
// tiny norms that vanish inside IDF-weighted phrase sums.
//
// The common component is removed as a projection onto the mean direction
// rather than by subtracting the mean itself: under-trained vectors are
// nearly orthogonal to the mean, so projection removal leaves them
// untouched, whereas full subtraction would replace every small vector
// with −mean and make all rare words spuriously parallel.
func centerVectors(vecs map[string]Vector, dim int) {
	words := make([]string, 0, len(vecs))
	for w := range vecs {
		words = append(words, w)
	}
	sort.Strings(words) // deterministic float summation order
	mean := make(Vector, dim)
	for _, w := range words {
		mean.Add(vecs[w])
	}
	if n := mean.Norm(); n > 0 {
		mean.Scale(1 / n) // unit common direction
	}
	for _, w := range words {
		v := vecs[w]
		proj := v.Dot(mean)
		for i := range v {
			v[i] -= proj * mean[i]
		}
		if n := v.Norm(); n > 0 {
			v.Scale(1 / n)
		}
	}
}

// trainPair applies one SGD step for (center, target) with the given label
// (1 = positive, 0 = negative). The center gradient is accumulated into
// grad; the output vector is updated in place.
func trainPair(center []float64, out []float64, tBase, dim int, label float64, lr float64, grad []float64) {
	var dot float64
	for i := 0; i < dim; i++ {
		dot += center[i] * out[tBase+i]
	}
	g := (label - sigmoid(dot)) * lr
	for i := 0; i < dim; i++ {
		grad[i] += g * out[tBase+i]
		out[tBase+i] += g * center[i]
	}
}

func sigmoid(x float64) float64 {
	if x > 20 {
		return 1
	}
	if x < -20 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// buildUnigramTable constructs the standard unigram^0.75 sampling table.
func buildUnigramTable(vocab []string, stats *textproc.CorpusStats, rng *rand.Rand) []int {
	const tableSize = 1 << 16
	pow := make([]float64, len(vocab))
	var total float64
	for i, w := range vocab {
		pow[i] = math.Pow(float64(stats.TermCount(w)), 0.75)
		total += pow[i]
	}
	table := make([]int, 0, tableSize)
	for i := range vocab {
		n := int(pow[i] / total * tableSize)
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			table = append(table, i)
		}
	}
	// Shuffle for cheap uniform sampling by index.
	rng.Shuffle(len(table), func(i, j int) { table[i], table[j] = table[j], table[i] })
	return table
}

// ModelState is the exported serialization seam for Model: trained
// vectors plus the corpus statistics that supply IDF weights. Vecs is
// shared with the live model, not copied — treat a state taken from a
// live Model as read-only.
type ModelState struct {
	Dim   int
	Vecs  map[string]Vector
	Stats textproc.CorpusStatsState
}

// State exports the model for serialization.
func (m *Model) State() ModelState {
	return ModelState{Dim: m.dim, Vecs: m.vecs, Stats: m.stats.State()}
}

// NewModelFromState reconstructs a model from exported state. Phrase
// representations computed by the reconstructed model are bit-identical
// to the original's: Rep is a pure function of the vectors and IDF counts
// restored here.
func NewModelFromState(st ModelState) (*Model, error) {
	if st.Dim <= 0 {
		return nil, fmt.Errorf("embedding: state has non-positive dim %d", st.Dim)
	}
	if st.Vecs == nil {
		st.Vecs = map[string]Vector{}
	}
	for w, v := range st.Vecs {
		if len(v) != st.Dim {
			return nil, fmt.Errorf("embedding: state vector %q has dim %d, want %d", w, len(v), st.Dim)
		}
	}
	return &Model{dim: st.Dim, vecs: st.Vecs, stats: textproc.NewCorpusStatsFromState(st.Stats)}, nil
}

// NewModelFromVectors builds a Model directly from precomputed vectors;
// used by tests and by the substitution index which needs small synthetic
// models.
func NewModelFromVectors(vecs map[string]Vector, stats *textproc.CorpusStats) (*Model, error) {
	dim := -1
	for _, v := range vecs {
		if dim == -1 {
			dim = len(v)
		} else if len(v) != dim {
			return nil, fmt.Errorf("embedding: inconsistent vector dims")
		}
	}
	if dim <= 0 {
		return nil, fmt.Errorf("embedding: no vectors")
	}
	return &Model{dim: dim, vecs: vecs, stats: stats}, nil
}
