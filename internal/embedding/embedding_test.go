package embedding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

// synonymCorpus builds a tiny corpus in which "clean"/"spotless" and
// "dirty"/"filthy" appear in interchangeable contexts, so SGNS must place
// synonyms near each other and antonym pairs in different contexts apart.
func synonymCorpus() ([][]string, *textproc.CorpusStats) {
	sentences := []string{
		"room clean fresh towels smelled lovely",
		"room spotless fresh towels smelled lovely",
		"room clean bed made towels folded",
		"room spotless bed made towels folded",
		"room dirty stains carpet smelled bad",
		"room filthy stains carpet smelled bad",
		"room dirty dust floor never vacuumed",
		"room filthy dust floor never vacuumed",
		"breakfast tasty eggs coffee croissant",
		"breakfast delicious eggs coffee croissant",
		"breakfast tasty pastries juice buffet",
		"breakfast delicious pastries juice buffet",
	}
	var docs [][]string
	stats := textproc.NewCorpusStats()
	for i := 0; i < 25; i++ { // replicate for enough training signal
		for _, s := range sentences {
			toks := textproc.Tokenize(s)
			docs = append(docs, toks)
			stats.AddDocument(toks)
		}
	}
	return docs, stats
}

func trainTest(t *testing.T) *Model {
	t.Helper()
	docs, stats := synonymCorpus()
	cfg := DefaultTrainConfig()
	cfg.Dim = 24
	cfg.Epochs = 8
	m, err := Train(docs, stats, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestTrainCapturesSynonyms(t *testing.T) {
	m := trainTest(t)
	synA := Cosine(m.Vec("clean"), m.Vec("spotless"))
	synB := Cosine(m.Vec("dirty"), m.Vec("filthy"))
	cross := Cosine(m.Vec("clean"), m.Vec("breakfast"))
	if synA < 0.4 {
		t.Errorf("clean~spotless similarity %v too low", synA)
	}
	if synB < 0.4 {
		t.Errorf("dirty~filthy similarity %v too low", synB)
	}
	if synA <= cross {
		t.Errorf("synonym sim %v should exceed cross-topic sim %v", synA, cross)
	}
}

func TestTrainDeterministic(t *testing.T) {
	docs, stats := synonymCorpus()
	cfg := DefaultTrainConfig()
	cfg.Dim = 16
	cfg.Epochs = 2
	m1, err := Train(docs, stats, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(docs, stats, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"clean", "dirty", "breakfast"} {
		v1, v2 := m1.Vec(w), m2.Vec(w)
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("nondeterministic training for %q at dim %d", w, i)
			}
		}
	}
}

func TestTrainErrors(t *testing.T) {
	stats := textproc.NewCorpusStats()
	if _, err := Train(nil, stats, DefaultTrainConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty corpus should error")
	}
	docs := [][]string{{"a", "b"}}
	stats.AddDocument(docs[0])
	bad := DefaultTrainConfig()
	bad.Dim = 0
	if _, err := Train(docs, stats, bad, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero dim should error")
	}
}

func TestRepIDFWeighting(t *testing.T) {
	// "spotless" rarer than "clean" → higher IDF → more weight (§3.2).
	// Both words appear often enough (>= repTrainedCount) for their
	// vectors to count as trained.
	stats := textproc.NewCorpusStats()
	for i := 0; i < 300; i++ {
		doc := []string{"clean"}
		if i < 60 {
			doc = append(doc, "spotless")
		}
		stats.AddDocument(doc)
	}
	vecs := map[string]Vector{
		"clean":    {1, 0},
		"spotless": {0, 1},
	}
	m, err := NewModelFromVectors(vecs, stats)
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Rep("clean spotless")
	if rep[1] <= rep[0] {
		t.Errorf("rarer word should get more weight: rep=%v", rep)
	}
}

func TestRepDownWeightsUndertrainedWords(t *testing.T) {
	// A word seen a handful of times must not dominate the phrase rep no
	// matter how high its IDF is.
	stats := textproc.NewCorpusStats()
	for i := 0; i < 500; i++ {
		doc := []string{"delicious", "food"}
		if i < 5 {
			doc = append(doc, "serves")
		}
		stats.AddDocument(doc)
	}
	vecs := map[string]Vector{
		"delicious": {1, 0},
		"food":      {0.9, 0.1},
		"serves":    {0, 1}, // noise direction
	}
	m, err := NewModelFromVectors(vecs, stats)
	if err != nil {
		t.Fatal(err)
	}
	with := m.Rep("serves delicious food")
	without := m.Rep("delicious food")
	if sim := Cosine(with, without); sim < 0.9 {
		t.Errorf("under-trained word dominated the rep: cos=%v", sim)
	}
}

func TestRepSkipsStopwordsAndOOV(t *testing.T) {
	m := trainTest(t)
	a := m.Rep("the clean room")
	b := m.Rep("clean room")
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("stopword changed rep at dim %d", i)
		}
	}
	zero := m.Rep("zzzunknown qqqword")
	if zero.Norm() != 0 {
		t.Errorf("fully-OOV phrase should have zero rep, norm=%v", zero.Norm())
	}
}

func TestSimilaritySymmetric(t *testing.T) {
	m := trainTest(t)
	phrases := []string{"clean room", "dirty carpet", "tasty breakfast", "spotless"}
	for _, a := range phrases {
		for _, b := range phrases {
			if d := math.Abs(m.Similarity(a, b) - m.Similarity(b, a)); d > 1e-12 {
				t.Errorf("similarity not symmetric for (%q,%q): diff %v", a, b, d)
			}
		}
	}
	if s := m.Similarity("clean room", "clean room"); math.Abs(s-1) > 1e-9 {
		t.Errorf("self-similarity = %v, want 1", s)
	}
}

func TestMostSimilar(t *testing.T) {
	m := trainTest(t)
	nbrs := m.MostSimilar("clean", 3)
	if len(nbrs) != 3 {
		t.Fatalf("got %d neighbors", len(nbrs))
	}
	if nbrs[0].Word == "clean" {
		t.Error("query word must be excluded")
	}
	found := false
	for _, n := range nbrs {
		if n.Word == "spotless" {
			found = true
		}
	}
	if !found {
		t.Errorf("'spotless' should be a top-3 neighbor of 'clean': %v", nbrs)
	}
	// Sorted descending.
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].Sim > nbrs[i-1].Sim {
			t.Error("neighbors not sorted by similarity")
		}
	}
	if got := m.MostSimilar("zzzunknown", 3); got != nil {
		t.Errorf("OOV query should return nil, got %v", got)
	}
	if got := m.MostSimilar("clean", 0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
}

func TestVectorOps(t *testing.T) {
	a := Vector{3, 4}
	if a.Norm() != 5 {
		t.Errorf("Norm = %v", a.Norm())
	}
	b := Vector{1, 0}
	if a.Dot(b) != 3 {
		t.Errorf("Dot = %v", a.Dot(b))
	}
	c := a.Clone()
	c.Scale(2)
	if a[0] != 3 || c[0] != 6 {
		t.Error("Clone/Scale aliasing bug")
	}
	c.Add(b)
	if c[0] != 7 {
		t.Errorf("Add: %v", c)
	}
}

func TestCosineProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		// Map arbitrary floats into a bounded range to avoid overflow to
		// Inf in the dot product, which is outside Cosine's domain.
		vals := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0.5
			}
			vals[i] = math.Mod(x, 100)
		}
		n := len(vals) / 2
		a, b := Vector(vals[:n]), Vector(vals[n:2*n])
		c := Cosine(a, b)
		if math.IsNaN(c) || c < -1.0000001 || c > 1.0000001 {
			return false
		}
		// scale invariance
		a2 := a.Clone()
		a2.Scale(3)
		c2 := Cosine(a2, b)
		return math.Abs(c-c2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineZeroVector(t *testing.T) {
	if c := Cosine(Vector{0, 0}, Vector{1, 2}); c != 0 {
		t.Errorf("zero-vector cosine = %v, want 0", c)
	}
}

func TestNewModelFromVectorsValidation(t *testing.T) {
	stats := textproc.NewCorpusStats()
	if _, err := NewModelFromVectors(map[string]Vector{}, stats); err == nil {
		t.Error("empty vectors should error")
	}
	bad := map[string]Vector{"a": {1, 2}, "b": {1}}
	if _, err := NewModelFromVectors(bad, stats); err == nil {
		t.Error("inconsistent dims should error")
	}
}

func TestVocabAndAccessors(t *testing.T) {
	m := trainTest(t)
	if m.Dim() != 24 {
		t.Errorf("Dim = %d", m.Dim())
	}
	if !m.Has("clean") || m.Has("zzz") {
		t.Error("Has misbehaves")
	}
	if len(m.Vocab()) == 0 {
		t.Error("empty vocab")
	}
	if m.IDF("clean") <= 0 {
		t.Error("IDF should be positive")
	}
}
