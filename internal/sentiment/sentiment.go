// Package sentiment implements a lexicon-based sentiment analyzer in the
// spirit of NLTK's rule-based analyzers, which the paper uses as senti(·)
// in three places: ranking reviews for the co-occurrence interpreter
// (Eq. 3: BM25(d,q)·senti(d)), ordering phrases into linearly-ordered
// markers (§4.2.1), and computing review polarity statistics (Table 4).
//
// The analyzer combines a valence lexicon with negation-scope and
// intensifier handling:
//
//	"clean"            → +0.8
//	"very clean"       → +1.0 (intensified, clamped)
//	"not clean"        → -0.6 (negation flips and damps)
//	"not very clean"   → -0.75
package sentiment

import (
	"strings"

	"repro/internal/textproc"
)

// valence maps opinion words to scores in [-1, 1]. The vocabulary covers
// the hotel and restaurant domains of the paper's evaluation.
var valence = map[string]float64{
	// strongly positive
	"spotless": 1.0, "immaculate": 1.0, "pristine": 1.0, "exceptional": 1.0,
	"outstanding": 1.0, "superb": 1.0, "luxurious": 0.9, "exquisite": 1.0,
	"fantastic": 0.95, "amazing": 0.95, "wonderful": 0.9, "excellent": 0.95,
	"perfect": 1.0, "delicious": 0.9, "divine": 0.95, "heavenly": 0.95,
	"flawless": 1.0, "stellar": 0.95, "sublime": 0.95, "impeccable": 1.0,
	"gorgeous": 0.9, "stunning": 0.9, "magnificent": 0.95, "marvelous": 0.9,
	"delightful": 0.85, "extravagant": 0.7, "plush": 0.8, "lavish": 0.8,
	// positive
	"clean": 0.8, "great": 0.8, "good": 0.6, "nice": 0.6, "lovely": 0.7,
	"friendly": 0.7, "helpful": 0.7, "comfortable": 0.7, "comfy": 0.7,
	"cozy": 0.65, "quiet": 0.6, "peaceful": 0.7, "tranquil": 0.75,
	"spacious": 0.6, "modern": 0.5, "stylish": 0.6, "charming": 0.7,
	"tasty": 0.7, "fresh": 0.6, "attentive": 0.7, "courteous": 0.7,
	"welcoming": 0.7, "warm": 0.5, "pleasant": 0.6, "relaxing": 0.7,
	"romantic": 0.7, "lively": 0.5, "fun": 0.6, "soft": 0.4, "firm": 0.3,
	"convenient": 0.5, "central": 0.4, "affordable": 0.5, "cheap": 0.2,
	"generous": 0.6, "fast": 0.4, "reliable": 0.5, "kind": 0.6,
	"polite": 0.6, "professional": 0.6, "tidy": 0.7, "neat": 0.6,
	"hygienic": 0.7, "bright": 0.4, "airy": 0.5, "gleaming": 0.8,
	"inviting": 0.6, "crisp": 0.5, "authentic": 0.6, "flavorful": 0.7,
	"flavourful": 0.7, "succulent": 0.8, "juicy": 0.6, "crispy": 0.5,
	"prompt": 0.5, "efficient": 0.6, "serene": 0.7, "elegant": 0.7,
	"refined": 0.6, "hip": 0.4, "trendy": 0.4, "vibrant": 0.5,
	"energetic": 0.4, "buzzing": 0.3, "happening": 0.3, "safe": 0.5,
	"smooth": 0.4, "speedy": 0.4, "decent": 0.3, "fine": 0.3,
	"okay": 0.1, "ok": 0.1, "adequate": 0.15, "acceptable": 0.15,
	"average": 0.0, "standard": 0.05, "ordinary": 0.0, "typical": 0.0,
	"passable": 0.1, "fair": 0.1, "moderate": 0.05, "plain": -0.05,
	// negative
	"dirty": -0.8, "stained": -0.7, "dusty": -0.6, "grimy": -0.8,
	"filthy": -1.0, "disgusting": -1.0, "gross": -0.85, "moldy": -0.9,
	"mouldy": -0.9, "smelly": -0.8, "stinky": -0.85, "musty": -0.6,
	"noisy": -0.7, "loud": -0.6, "annoying": -0.7, "disturbing": -0.7,
	"rude": -0.8, "unfriendly": -0.7, "unhelpful": -0.7, "slow": -0.5,
	"cold": -0.4, "stale": -0.6, "bland": -0.5, "tasteless": -0.7,
	"flavorless": -0.7, "greasy": -0.5, "soggy": -0.5, "burnt": -0.6,
	"undercooked": -0.7, "overcooked": -0.6, "hard": -0.4, "lumpy": -0.5,
	"worn": -0.5, "worn-out": -0.6, "saggy": -0.6, "broken": -0.7,
	"old": -0.3, "outdated": -0.4, "dated": -0.35, "shabby": -0.6,
	"cramped": -0.5, "tiny": -0.4, "small": -0.2, "dark": -0.3,
	"dingy": -0.6, "dim": -0.2, "uncomfortable": -0.7, "awful": -0.95,
	"terrible": -0.95, "horrible": -0.95, "dreadful": -0.9, "appalling": -0.95,
	"disappointing": -0.6, "mediocre": -0.4, "poor": -0.6, "bad": -0.6,
	"worst": -1.0, "unacceptable": -0.9, "overpriced": -0.6, "expensive": -0.3,
	"pricey": -0.3, "chaotic": -0.6, "crowded": -0.4, "unsafe": -0.7,
	"sketchy": -0.6, "inattentive": -0.6, "careless": -0.6, "arrogant": -0.7,
	"dismissive": -0.7, "lukewarm": -0.3, "weak": -0.4, "thin": -0.3,
	"unreliable": -0.6, "spotty": -0.5, "patchy": -0.4, "creaky": -0.4,
	"squeaky": -0.3, "drab": -0.4, "dull": -0.3, "grubby": -0.7,
	"unclean": -0.8, "messy": -0.6, "cluttered": -0.4, "sticky": -0.5,
	"rough": -0.4, "harsh": -0.5, "bumpy": -0.4, "faulty": -0.6,
	"leaky": -0.6, "rusty": -0.5, "peeling": -0.5, "cracked": -0.5,
}

// intensifiers scale the valence of the following opinion word.
var intensifiers = map[string]float64{
	"very": 1.35, "really": 1.3, "extremely": 1.5, "incredibly": 1.5,
	"absolutely": 1.4, "totally": 1.35, "remarkably": 1.35, "super": 1.3,
	"exceptionally": 1.45, "spotlessly": 1.4, "utterly": 1.4, "truly": 1.3,
	"perfectly": 1.35, "amazingly": 1.4, "wonderfully": 1.35, "quite": 1.1,
	"pretty": 1.1, "fairly": 0.9, "rather": 1.05, "meticulously": 1.4,
	"impressively": 1.3, "insanely": 1.45, "seriously": 1.25,
	// diminishers
	"somewhat": 0.7, "slightly": 0.55, "a": 1.0, "bit": 0.6, "mildly": 0.6,
	"kinda": 0.7, "sorta": 0.7, "barely": 0.4, "marginally": 0.5,
}

// negators flip the sign of valence within their scope (the next few
// tokens). "far from clean" and "anything but clean" are handled by the
// two-token negator phrases below.
var negators = map[string]bool{
	"not": true, "no": true, "never": true, "hardly": true, "isn't": true,
	"wasn't": true, "aren't": true, "weren't": true, "don't": true,
	"doesn't": true, "didn't": true, "cannot": true, "can't": true,
	"won't": true, "nothing": true, "neither": true, "nor": true,
	"lacks": true, "lacking": true, "without": true,
}

// negatorBigrams are two-token sequences acting as negators.
var negatorBigrams = map[string]bool{
	"far from": true, "anything but": true, "not at": true, "less than": true,
}

// negationScope is how many following tokens a negator affects.
const negationScope = 3

// negationDamp is the factor applied after flipping: "not clean" is less
// negative than "dirty" is; classic rule-based treatment.
const negationDamp = 0.75

// Score returns the sentiment of text in [-1, 1]. It tokenizes, then scans
// for opinion words, applying any preceding intensifier and any in-scope
// negator. The result is the damped average of matched word scores; text
// with no opinion words scores 0.
func Score(text string) float64 {
	return ScoreTokens(textproc.Tokenize(text))
}

// ScoreTokens is Score over a pre-tokenized input.
func ScoreTokens(tokens []string) float64 {
	var sum float64
	var n int
	negUntil := -1 // index until which negation is active
	intensity := 1.0
	for i, tok := range tokens {
		// Two-token negators ("far from").
		if i+1 < len(tokens) && negatorBigrams[tok+" "+tokens[i+1]] {
			negUntil = i + 1 + negationScope
			continue
		}
		if negators[tok] {
			negUntil = i + negationScope
			intensity = 1.0
			continue
		}
		if f, ok := intensifiers[tok]; ok && tok != "a" {
			intensity *= f
			continue
		}
		v, ok := valence[tok]
		if !ok {
			intensity = 1.0
			continue
		}
		v *= intensity
		if i <= negUntil {
			v = -v * negationDamp
		}
		sum += clamp(v)
		n++
		intensity = 1.0
	}
	if n == 0 {
		return 0
	}
	return clamp(sum / float64(n))
}

// ScorePhrase scores a short opinion phrase such as "very clean" or
// "not so friendly". It behaves like ScoreTokens but, for phrases that
// contain no known opinion word at all, falls back to scanning for any
// substring hit so hyphenated compounds ("old-fashioned") still score.
func ScorePhrase(phrase string) float64 {
	toks := textproc.Tokenize(phrase)
	s := ScoreTokens(toks)
	if s != 0 {
		return s
	}
	// Fallback: split hyphenated compounds and rescore.
	var expanded []string
	for _, t := range toks {
		expanded = append(expanded, strings.Split(t, "-")...)
	}
	if len(expanded) != len(toks) {
		return ScoreTokens(expanded)
	}
	return 0
}

// Polarity buckets a score into -1 (negative), 0 (neutral) or +1 (positive)
// using the symmetric dead zone (-threshold, +threshold).
func Polarity(score, threshold float64) int {
	switch {
	case score >= threshold:
		return 1
	case score <= -threshold:
		return -1
	default:
		return 0
	}
}

// HasOpinionWord reports whether any token of the phrase is in the valence
// lexicon; used by the extraction rule baseline.
func HasOpinionWord(tokens []string) bool {
	for _, t := range tokens {
		if _, ok := valence[t]; ok {
			return true
		}
	}
	return false
}

// Valence returns the lexicon score of a single token and whether the token
// is a known opinion word.
func Valence(tok string) (float64, bool) {
	v, ok := valence[tok]
	return v, ok
}

// IsIntensifier reports whether tok is an intensity modifier.
func IsIntensifier(tok string) bool {
	_, ok := intensifiers[tok]
	return ok && tok != "a"
}

// IsNegator reports whether tok negates following sentiment.
func IsNegator(tok string) bool { return negators[tok] }

func clamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}
