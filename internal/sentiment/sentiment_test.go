package sentiment

import (
	"testing"
	"testing/quick"
)

func TestPositiveNegative(t *testing.T) {
	cases := []struct {
		text string
		sign int
	}{
		{"the room was spotless", 1},
		{"the room was very clean", 1},
		{"the room was filthy", -1},
		{"the staff was rude and unhelpful", -1},
		{"exceptional service and luxurious bathrooms", 1},
		{"the carpet was stained and dusty", -1},
		{"delicious food, friendly staff", 1},
		{"bland tasteless food", -1},
	}
	for _, c := range cases {
		s := Score(c.text)
		if c.sign > 0 && s <= 0 {
			t.Errorf("Score(%q) = %v, want positive", c.text, s)
		}
		if c.sign < 0 && s >= 0 {
			t.Errorf("Score(%q) = %v, want negative", c.text, s)
		}
	}
}

func TestNegationFlips(t *testing.T) {
	pos := Score("the room was clean")
	neg := Score("the room was not clean")
	if pos <= 0 {
		t.Fatalf("baseline positive failed: %v", pos)
	}
	if neg >= 0 {
		t.Errorf("negated score = %v, want negative", neg)
	}
	// Negation is damped: |not clean| < |clean|.
	if -neg >= pos {
		t.Errorf("negation should damp: |%v| >= |%v|", neg, pos)
	}
}

func TestNegationBigram(t *testing.T) {
	if s := Score("the room was far from clean"); s >= 0 {
		t.Errorf("'far from clean' = %v, want negative", s)
	}
	if s := Score("anything but clean"); s >= 0 {
		t.Errorf("'anything but clean' = %v, want negative", s)
	}
}

func TestNegationScopeExpires(t *testing.T) {
	// Negator followed by several tokens before the opinion word: out of scope.
	s := Score("not the kind of place one expects but the room was clean anyway")
	if s <= 0 {
		t.Errorf("out-of-scope negation should not flip: %v", s)
	}
}

func TestIntensifiers(t *testing.T) {
	base := Score("clean room")
	very := Score("very clean room")
	extremely := Score("extremely clean room")
	if very <= base {
		t.Errorf("'very clean' (%v) should exceed 'clean' (%v)", very, base)
	}
	if extremely < very {
		t.Errorf("'extremely clean' (%v) should be >= 'very clean' (%v)", extremely, very)
	}
	slightly := Score("slightly dirty room")
	plain := Score("dirty room")
	if slightly <= plain {
		// both negative; slightly dirty should be closer to 0
		t.Errorf("'slightly dirty' (%v) should be milder than 'dirty' (%v)", slightly, plain)
	}
}

func TestIntensifiedNegation(t *testing.T) {
	s := Score("not very clean")
	if s >= 0 {
		t.Errorf("'not very clean' = %v, want negative", s)
	}
}

func TestNeutral(t *testing.T) {
	if s := Score("the hotel is in London near the station"); s != 0 {
		t.Errorf("objective text scored %v, want 0", s)
	}
	if s := Score(""); s != 0 {
		t.Errorf("empty text scored %v, want 0", s)
	}
}

func TestScoreBounded(t *testing.T) {
	f := func(text string) bool {
		s := Score(text)
		return s >= -1 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreOrderingOnScale(t *testing.T) {
	// The linearly-ordered marker discovery (§4.2.1) sorts phrases by
	// sentiment; verify the cleanliness scale is monotone.
	scale := []string{"filthy", "dirty", "average", "clean", "spotless"}
	prev := -2.0
	for _, p := range scale {
		s := ScorePhrase(p)
		if s < prev {
			t.Errorf("scale not monotone at %q: %v < %v", p, s, prev)
		}
		prev = s
	}
}

func TestScorePhraseHyphenFallback(t *testing.T) {
	if s := ScorePhrase("old-styled"); s >= 0 {
		t.Errorf("'old-styled' = %v, want negative via hyphen fallback", s)
	}
}

func TestPolarity(t *testing.T) {
	if Polarity(0.5, 0.1) != 1 {
		t.Error("0.5 should be positive")
	}
	if Polarity(-0.5, 0.1) != -1 {
		t.Error("-0.5 should be negative")
	}
	if Polarity(0.05, 0.1) != 0 {
		t.Error("0.05 should be neutral")
	}
}

func TestHasOpinionWord(t *testing.T) {
	if !HasOpinionWord([]string{"the", "clean", "room"}) {
		t.Error("should find 'clean'")
	}
	if HasOpinionWord([]string{"the", "room", "near", "station"}) {
		t.Error("no opinion words present")
	}
}

func TestValenceLookup(t *testing.T) {
	if v, ok := Valence("spotless"); !ok || v <= 0.9 {
		t.Errorf("Valence(spotless) = %v, %v", v, ok)
	}
	if _, ok := Valence("table"); ok {
		t.Error("'table' should not be an opinion word")
	}
}

func TestHelpers(t *testing.T) {
	if !IsIntensifier("very") || IsIntensifier("a") || IsIntensifier("room") {
		t.Error("IsIntensifier misbehaves")
	}
	if !IsNegator("not") || IsNegator("very") {
		t.Error("IsNegator misbehaves")
	}
}
