package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

// unit maps an arbitrary float into [0,1] for property tests.
func unit(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Abs(x) - math.Floor(math.Abs(x))
}

func TestProductSemantics(t *testing.T) {
	v := Product
	if got := v.And(0.5, 0.4); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("0.5 ⊗ 0.4 = %v, want 0.2", got)
	}
	if got := v.Or(0.5, 0.4); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("0.5 ⊕ 0.4 = %v, want 0.7", got)
	}
	if got := v.Not(0.3); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("¬0.3 = %v, want 0.7", got)
	}
}

func TestGoedelSemantics(t *testing.T) {
	v := Goedel
	if got := v.And(0.5, 0.4); got != 0.4 {
		t.Errorf("min(0.5,0.4) = %v", got)
	}
	if got := v.Or(0.5, 0.4); got != 0.5 {
		t.Errorf("max(0.5,0.4) = %v", got)
	}
}

func TestVariantString(t *testing.T) {
	if Product.String() != "product" || Goedel.String() != "goedel" {
		t.Error("variant names wrong")
	}
}

// De Morgan's law: ¬(x ⊗ y) = ¬x ⊕ ¬y, which the paper cites as the basis
// for the multiplication variant's ⊕ definition.
func TestDeMorgan(t *testing.T) {
	for _, v := range []Variant{Product, Goedel} {
		f := func(a, b float64) bool {
			x, y := unit(a), unit(b)
			lhs := v.Not(v.And(x, y))
			rhs := v.Or(v.Not(x), v.Not(y))
			return math.Abs(lhs-rhs) < 1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: De Morgan violated: %v", v, err)
		}
	}
}

func TestTNormLaws(t *testing.T) {
	for _, v := range []Variant{Product, Goedel} {
		// commutativity, associativity, identity, monotonicity, boundedness
		f := func(a, b, c float64) bool {
			x, y, z := unit(a), unit(b), unit(c)
			if math.Abs(v.And(x, y)-v.And(y, x)) > 1e-9 {
				return false
			}
			if math.Abs(v.And(v.And(x, y), z)-v.And(x, v.And(y, z))) > 1e-9 {
				return false
			}
			if math.Abs(v.And(x, 1)-x) > 1e-9 {
				return false
			}
			if v.And(x, 0) != 0 {
				return false
			}
			// monotone: y<=z → x⊗y <= x⊗z
			lo, hi := y, z
			if lo > hi {
				lo, hi = hi, lo
			}
			if v.And(x, lo) > v.And(x, hi)+1e-12 {
				return false
			}
			// bounded by min
			r := v.And(x, y)
			return r <= math.Min(x, y)+1e-12 && r >= 0
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v t-norm law violated: %v", v, err)
		}
	}
}

func TestTCoNormLaws(t *testing.T) {
	for _, v := range []Variant{Product, Goedel} {
		f := func(a, b float64) bool {
			x, y := unit(a), unit(b)
			if math.Abs(v.Or(x, 0)-x) > 1e-9 { // identity
				return false
			}
			if math.Abs(v.Or(x, y)-v.Or(y, x)) > 1e-9 { // commutative
				return false
			}
			r := v.Or(x, y)
			return r >= math.Max(x, y)-1e-12 && r <= 1 // bounded below by max
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v t-conorm law violated: %v", v, err)
		}
	}
}

func TestExprEval(t *testing.T) {
	env := func(id string) float64 {
		return map[string]float64{"p": 0.8, "q": 0.5, "r": 0.3}[id]
	}
	e := NewAnd(Pred{"p"}, NewOr(Pred{"q"}, Pred{"r"}))
	// product: 0.8 * (1 - 0.5*0.7) = 0.8 * 0.65 = 0.52
	if got := e.Eval(Product, env); math.Abs(got-0.52) > 1e-12 {
		t.Errorf("product eval = %v, want 0.52", got)
	}
	// goedel: min(0.8, max(0.5, 0.3)) = 0.5
	if got := e.Eval(Goedel, env); got != 0.5 {
		t.Errorf("goedel eval = %v, want 0.5", got)
	}
}

func TestExprWithNotAndConst(t *testing.T) {
	env := func(string) float64 { return 0.4 }
	e := NewAnd(Not{Pred{"x"}}, Const{1})
	if got := e.Eval(Product, env); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("¬0.4 ⊗ 1 = %v, want 0.6", got)
	}
	// Objective predicate as Const 0 zeroes the conjunction (hard filter).
	e2 := NewAnd(Pred{"x"}, Const{0})
	if got := e2.Eval(Product, env); got != 0 {
		t.Errorf("anything ⊗ 0 = %v, want 0", got)
	}
}

func TestEmptyConnectives(t *testing.T) {
	env := func(string) float64 { return 0.5 }
	if got := (And{}).Eval(Product, env); got != 1 {
		t.Errorf("empty And = %v, want 1", got)
	}
	if got := (Or{}).Eval(Product, env); got != 0 {
		t.Errorf("empty Or = %v, want 0", got)
	}
}

func TestEvalClampsEnv(t *testing.T) {
	// Membership functions could return slightly out-of-range values;
	// Eval must clamp.
	e := Pred{"wild"}
	if got := e.Eval(Product, func(string) float64 { return 1.7 }); got != 1 {
		t.Errorf("clamp high = %v", got)
	}
	if got := e.Eval(Product, func(string) float64 { return -0.3 }); got != 0 {
		t.Errorf("clamp low = %v", got)
	}
}

func TestEvalInUnitInterval(t *testing.T) {
	e := NewOr(
		NewAnd(Pred{"a"}, Not{Pred{"b"}}),
		NewAnd(Pred{"c"}, Const{0.9}, Pred{"a"}),
	)
	f := func(a, b, c float64) bool {
		env := func(id string) float64 {
			return map[string]float64{"a": unit(a), "b": unit(b), "c": unit(c)}[id]
		}
		for _, v := range []Variant{Product, Goedel} {
			r := e.Eval(v, env)
			if r < 0 || r > 1 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlattening(t *testing.T) {
	e := NewAnd(NewAnd(Pred{"a"}, Pred{"b"}), Pred{"c"})
	a, ok := e.(And)
	if !ok || len(a.Children) != 3 {
		t.Errorf("NewAnd did not flatten: %v", e)
	}
	o := NewOr(NewOr(Pred{"a"}, Pred{"b"}), Pred{"c"})
	oo, ok := o.(Or)
	if !ok || len(oo.Children) != 3 {
		t.Errorf("NewOr did not flatten: %v", o)
	}
	// Single child collapses.
	if _, ok := NewAnd(Pred{"only"}).(Pred); !ok {
		t.Error("single-child And should collapse to the child")
	}
}

func TestPreds(t *testing.T) {
	e := NewAnd(Pred{"a"}, NewOr(Pred{"b"}, Not{Pred{"a"}}), Const{1})
	got := Preds(e)
	want := []string{"a", "b"}
	if len(got) != len(want) {
		t.Fatalf("Preds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Preds[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestString(t *testing.T) {
	e := NewAnd(Pred{"price"}, NewOr(Pred{"svc.exceptional"}, Pred{"style.luxurious"}))
	s := e.String()
	want := "price ⊗ (svc.exceptional ⊕ style.luxurious)"
	if s != want {
		t.Errorf("String = %q, want %q", s, want)
	}
	if got := (Not{Pred{"x"}}).String(); got != "¬(x)" {
		t.Errorf("Not string = %q", got)
	}
	if got := (Const{0.25}).String(); got != "0.25" {
		t.Errorf("Const string = %q", got)
	}
}

// The paper's fuzzy-vs-hard argument (Appendix A): the fuzzy region
// {(x,y) : xy >= θ} strictly contains points failing a hard constraint
// slightly while passing overall.
func TestFuzzyMoreForgivingThanHard(t *testing.T) {
	x, y := 0.19, 0.9 // fails hard x>0.2 but xy = 0.171 > 0.06 threshold
	hard := x > 0.2 && y > 0.3
	fz := Product.And(x, y) >= 0.06
	if hard {
		t.Fatal("test point should fail the hard constraint")
	}
	if !fz {
		t.Error("fuzzy semantics should admit the near-boundary point")
	}
}
