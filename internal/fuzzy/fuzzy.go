// Package fuzzy implements the fuzzy-logic layer of OpineDB (§3.1).
//
// Degrees of truth are real numbers in [0, 1]. Query conditions form an
// expression tree whose connectives are interpreted under a t-norm variant:
//
//   - Product (the paper's choice, after Klement et al.):
//     x ⊗ y = x·y, ¬x = 1−x, x ⊕ y = 1−(1−x)(1−y)
//   - Gödel (the "most classic variant", after Fagin):
//     x ⊗ y = min(x,y), ¬x = 1−x, x ⊕ y = max(x,y)
//
// Objective predicates evaluate to exactly 0 or 1 and thus act as hard
// filters under either variant.
package fuzzy

import (
	"fmt"
	"strings"
)

// Variant selects the t-norm family used to combine degrees of truth.
type Variant int

const (
	// Product is the multiplication variant used by OpineDB.
	Product Variant = iota
	// Goedel is the min/max variant.
	Goedel
)

// String returns the variant name.
func (v Variant) String() string {
	switch v {
	case Product:
		return "product"
	case Goedel:
		return "goedel"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// And combines two degrees of truth under the variant's t-norm.
func (v Variant) And(x, y float64) float64 {
	if v == Goedel {
		if x < y {
			return x
		}
		return y
	}
	return x * y
}

// Or combines two degrees of truth under the variant's t-conorm.
func (v Variant) Or(x, y float64) float64 {
	if v == Goedel {
		if x > y {
			return x
		}
		return y
	}
	return 1 - (1-x)*(1-y)
}

// Not negates a degree of truth (same in both variants).
func (v Variant) Not(x float64) float64 { return 1 - x }

// Expr is a fuzzy logic expression evaluated against an environment that
// supplies the degree of truth of each leaf predicate.
type Expr interface {
	// Eval returns the degree of truth in [0,1] under the variant, looking
	// up leaf predicates through env.
	Eval(v Variant, env func(id string) float64) float64
	// String renders the expression with ⊗/⊕/¬ connectives.
	String() string
}

// Pred is a leaf predicate identified by an opaque id; its degree of truth
// comes from the evaluation environment (OpineDB's membership functions).
type Pred struct{ ID string }

// Eval implements Expr.
func (p Pred) Eval(_ Variant, env func(string) float64) float64 {
	return clamp(env(p.ID))
}

// String implements Expr.
func (p Pred) String() string { return p.ID }

// Const is a constant degree of truth; objective predicates compile to
// Const 0 or 1 per entity.
type Const struct{ Value float64 }

// Eval implements Expr.
func (c Const) Eval(Variant, func(string) float64) float64 { return clamp(c.Value) }

// String implements Expr.
func (c Const) String() string { return fmt.Sprintf("%.3g", c.Value) }

// And is the fuzzy conjunction ⊗ of its children.
type And struct{ Children []Expr }

// Eval implements Expr.
func (a And) Eval(v Variant, env func(string) float64) float64 {
	if len(a.Children) == 0 {
		return 1 // empty conjunction is true
	}
	acc := a.Children[0].Eval(v, env)
	for _, c := range a.Children[1:] {
		acc = v.And(acc, c.Eval(v, env))
	}
	return acc
}

// String implements Expr.
func (a And) String() string { return joinExpr(a.Children, " ⊗ ") }

// Or is the fuzzy disjunction ⊕ of its children.
type Or struct{ Children []Expr }

// Eval implements Expr.
func (o Or) Eval(v Variant, env func(string) float64) float64 {
	if len(o.Children) == 0 {
		return 0 // empty disjunction is false
	}
	acc := o.Children[0].Eval(v, env)
	for _, c := range o.Children[1:] {
		acc = v.Or(acc, c.Eval(v, env))
	}
	return acc
}

// String implements Expr.
func (o Or) String() string { return joinExpr(o.Children, " ⊕ ") }

// Not is fuzzy negation.
type Not struct{ Child Expr }

// Eval implements Expr.
func (n Not) Eval(v Variant, env func(string) float64) float64 {
	return v.Not(n.Child.Eval(v, env))
}

// String implements Expr.
func (n Not) String() string { return "¬(" + n.Child.String() + ")" }

// NewAnd builds a conjunction, flattening nested Ands.
func NewAnd(children ...Expr) Expr {
	flat := make([]Expr, 0, len(children))
	for _, c := range children {
		if a, ok := c.(And); ok {
			flat = append(flat, a.Children...)
		} else {
			flat = append(flat, c)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return And{Children: flat}
}

// NewOr builds a disjunction, flattening nested Ors.
func NewOr(children ...Expr) Expr {
	flat := make([]Expr, 0, len(children))
	for _, c := range children {
		if o, ok := c.(Or); ok {
			flat = append(flat, o.Children...)
		} else {
			flat = append(flat, c)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Or{Children: flat}
}

// Preds returns the ids of all leaf predicates in e, in depth-first order
// with duplicates removed.
func Preds(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(x Expr) {
		switch t := x.(type) {
		case Pred:
			if !seen[t.ID] {
				seen[t.ID] = true
				out = append(out, t.ID)
			}
		case And:
			for _, c := range t.Children {
				walk(c)
			}
		case Or:
			for _, c := range t.Children {
				walk(c)
			}
		case Not:
			walk(t.Child)
		}
	}
	walk(e)
	return out
}

func joinExpr(children []Expr, sep string) string {
	parts := make([]string, len(children))
	for i, c := range children {
		s := c.String()
		switch c.(type) {
		case And, Or:
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
