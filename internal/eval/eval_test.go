package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSatBasics(t *testing.T) {
	// 2 predicates, both satisfied by e1 only.
	satFn := func(pred int, e string) bool { return e == "e1" }
	// e1 at rank 1: 2/log2(2) = 2.
	if got := Sat(2, []string{"e1", "e2"}, satFn); math.Abs(got-2) > 1e-12 {
		t.Errorf("Sat = %v, want 2", got)
	}
	// e1 at rank 2: 2/log2(3).
	want := 2 / math.Log2(3)
	if got := Sat(2, []string{"e2", "e1"}, satFn); math.Abs(got-want) > 1e-12 {
		t.Errorf("Sat = %v, want %v", got, want)
	}
}

func TestSatRankDiscount(t *testing.T) {
	satFn := func(pred int, e string) bool { return e == "good" }
	top := Sat(1, []string{"good", "bad", "bad"}, satFn)
	bottom := Sat(1, []string{"bad", "bad", "good"}, satFn)
	if top <= bottom {
		t.Errorf("satisfying entity at rank 1 (%v) must beat rank 3 (%v)", top, bottom)
	}
}

func TestSatEmpty(t *testing.T) {
	if got := Sat(3, nil, func(int, string) bool { return true }); got != 0 {
		t.Errorf("empty ranking sat = %v", got)
	}
}

func TestSatMax(t *testing.T) {
	sat := map[string]int{"a": 2, "b": 1, "c": 0}
	satFn := func(pred int, e string) bool { return pred < sat[e] }
	got := SatMax(2, []string{"c", "a", "b"}, 2, satFn)
	want := 2/math.Log2(2) + 1/math.Log2(3) // best ranking: a then b
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SatMax = %v, want %v", got, want)
	}
	// k larger than candidate count.
	got = SatMax(2, []string{"a"}, 10, satFn)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("SatMax with big k = %v", got)
	}
}

// Property: Sat of any ranking never exceeds SatMax over the same pool.
func TestSatBoundedBySatMax(t *testing.T) {
	f := func(seed uint8) bool {
		entities := []string{"a", "b", "c", "d", "e"}
		satFn := func(pred int, e string) bool {
			return (int(seed)+pred+int(e[0]))%3 == 0
		}
		const k = 3
		ranking := entities[:k]
		s := Sat(4, ranking, satFn)
		m := SatMax(4, entities, k, satFn)
		return s <= m+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuality(t *testing.T) {
	got := Quality([]float64{1, 2, 3}, []float64{2, 2, 0})
	// Third query skipped (satmax 0): (0.5 + 1.0)/2
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Quality = %v, want 0.75", got)
	}
	if Quality(nil, nil) != 0 {
		t.Error("empty quality should be 0")
	}
	// Clamp at 1 on float slop.
	if got := Quality([]float64{2.0000001}, []float64{2}); got > 1 {
		t.Errorf("Quality exceeded 1: %v", got)
	}
}

func TestMeanCI(t *testing.T) {
	mean, ci := MeanCI([]float64{1, 2, 3, 4, 5})
	if mean != 3 {
		t.Errorf("mean = %v", mean)
	}
	if ci <= 0 {
		t.Errorf("ci = %v, want positive", ci)
	}
	// Identical values → zero CI.
	_, ci = MeanCI([]float64{2, 2, 2})
	if ci != 0 {
		t.Errorf("constant data ci = %v", ci)
	}
	mean, ci = MeanCI([]float64{7})
	if mean != 7 || ci != 0 {
		t.Errorf("single value = (%v, %v)", mean, ci)
	}
	mean, ci = MeanCI(nil)
	if mean != 0 || ci != 0 {
		t.Errorf("empty = (%v, %v)", mean, ci)
	}
}

func TestMeanCIShrinksWithN(t *testing.T) {
	small := []float64{1, 5, 1, 5}
	var big []float64
	for i := 0; i < 16; i++ {
		big = append(big, small[i%4])
	}
	_, ciSmall := MeanCI(small)
	_, ciBig := MeanCI(big)
	if ciBig >= ciSmall {
		t.Errorf("CI should shrink with n: %v vs %v", ciBig, ciSmall)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]bool{true, false, true, true}); got != 0.75 {
		t.Errorf("Accuracy = %v", got)
	}
	if Accuracy(nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}
