// Package eval implements the evaluation metrics of §5.2.3: the
// NDCG-style satisfaction score over ranked query results, its sat-max
// normalization, and mean ± confidence-interval aggregation used by every
// results table.
package eval

import (
	"math"
	"sort"
)

// Sat computes the satisfaction score of a ranked result list E for a
// query with predicates judged by sat(q_i, e_j):
//
//	sat(Q, E) = Σ_j ( Σ_i sat(q_i, e_j) ) / log2(j+1)
//
// where j is the 1-based rank. satFn(predicate index, entity id) must
// return 0 or 1.
func Sat(numPredicates int, ranking []string, satFn func(pred int, entity string) bool) float64 {
	var total float64
	for j, e := range ranking {
		var hit int
		for i := 0; i < numPredicates; i++ {
			if satFn(i, e) {
				hit++
			}
		}
		total += float64(hit) / math.Log2(float64(j)+2)
	}
	return total
}

// SatMax computes sat-max(Q) = max_E sat(Q, E) over all length-k rankings
// of the candidate entities: the best ranking sorts entities by their
// per-entity satisfied-predicate counts descending.
func SatMax(numPredicates int, candidates []string, k int, satFn func(pred int, entity string) bool) float64 {
	counts := make([]int, len(candidates))
	for ci, e := range candidates {
		for i := 0; i < numPredicates; i++ {
			if satFn(i, e) {
				counts[ci]++
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if k > len(counts) {
		k = len(counts)
	}
	var total float64
	for j := 0; j < k; j++ {
		total += float64(counts[j]) / math.Log2(float64(j)+2)
	}
	return total
}

// Quality computes the workload quality of §5.2.3: the mean of
// sat(Q_i, E_i)/sat-max(Q_i) over queries. Queries with sat-max 0 (no
// entity satisfies anything) are skipped, as they carry no signal.
func Quality(sats, satMaxes []float64) float64 {
	var sum float64
	var n int
	for i := range sats {
		if satMaxes[i] <= 0 {
			continue
		}
		r := sats[i] / satMaxes[i]
		if r > 1 {
			r = 1 // guard against float slop
		}
		sum += r
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanCI returns the mean of xs and the half-width of its 95% confidence
// interval (normal approximation, as the paper's ± figures use).
func MeanCI(xs []float64) (mean, ci float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 1.96 * sd / math.Sqrt(n)
}

// Accuracy returns the fraction of true values in hits.
func Accuracy(hits []bool) float64 {
	if len(hits) == 0 {
		return 0
	}
	c := 0
	for _, h := range hits {
		if h {
			c++
		}
	}
	return float64(c) / float64(len(hits))
}
