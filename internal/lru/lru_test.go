package lru

import (
	"reflect"
	"testing"
)

func TestPutGetEvictOrder(t *testing.T) {
	c := New[string, int](3)
	for i, k := range []string{"a", "b", "c"} {
		if _, ev := c.Put(k, i); ev {
			t.Fatalf("unexpected eviction inserting %q", k)
		}
	}
	// Touch "a" so "b" becomes the LRU victim.
	if v, ok := c.Get("a"); !ok || v != 0 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	k, ev := c.Put("d", 3)
	if !ev || k != "b" {
		t.Fatalf("evicted %q (%v), want b", k, ev)
	}
	if got, want := c.Keys(), []string{"d", "a", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("evicted key still readable")
	}
}

func TestUpdateRefreshesRecency(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // update, not insert: refreshes a, evicts nothing
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if k, ev := c.Put("c", 3); !ev || k != "b" {
		t.Fatalf("evicted %q (%v), want b", k, ev)
	}
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("Get(a) = %d, %v, want 10", v, ok)
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Peek("a"); !ok || v != 1 {
		t.Fatalf("Peek(a) = %d, %v", v, ok)
	}
	if k, ev := c.Put("c", 3); !ev || k != "a" {
		t.Fatalf("evicted %q (%v), want a — Peek must not promote", k, ev)
	}
}

func TestDeleteAndClear(t *testing.T) {
	c := New[int, string](4)
	for i := 0; i < 4; i++ {
		c.Put(i, "v")
	}
	c.Delete(2)
	if c.Len() != 3 {
		t.Fatalf("len after delete = %d", c.Len())
	}
	c.Clear()
	if c.Len() != 0 || len(c.Keys()) != 0 {
		t.Fatal("Clear left entries behind")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("cleared key still readable")
	}
}
