// Package lru is a small generic least-recently-used cache with
// deterministic eviction: when the cache is at capacity, Put evicts
// exactly the entry that was touched longest ago. It is deliberately
// not thread-safe — both call sites (the router's interpret memo and
// the shard server's topk fragment memo) already serialize access under
// their own mutexes, and pushing locking down here would just double
// the lock traffic.
package lru

import "container/list"

// entry is one key/value pair on the recency list.
type entry[K comparable, V any] struct {
	key K
	val V
}

// Cache is an LRU cache with a fixed capacity. The zero value is not
// usable; call New.
type Cache[K comparable, V any] struct {
	max   int
	ll    *list.List // front = most recently used
	index map[K]*list.Element
}

// New returns an empty cache holding at most max entries; max must be
// positive.
func New[K comparable, V any](max int) *Cache[K, V] {
	if max <= 0 {
		panic("lru: capacity must be positive")
	}
	return &Cache[K, V]{max: max, ll: list.New(), index: make(map[K]*list.Element)}
}

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Peek returns the value for key without touching recency.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.index[key]; ok {
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or updates key, marking it most recently used. If the
// insert pushed the cache past capacity, the least recently used entry
// is evicted and returned with evicted=true.
func (c *Cache[K, V]) Put(key K, val V) (evictedKey K, evicted bool) {
	if el, ok := c.index[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.ll.MoveToFront(el)
		return evictedKey, false
	}
	c.index[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
	if c.ll.Len() <= c.max {
		return evictedKey, false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	k := oldest.Value.(*entry[K, V]).key
	delete(c.index, k)
	return k, true
}

// Delete removes key if present.
func (c *Cache[K, V]) Delete(key K) {
	if el, ok := c.index[key]; ok {
		c.ll.Remove(el)
		delete(c.index, key)
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int { return c.ll.Len() }

// Clear drops every entry.
func (c *Cache[K, V]) Clear() {
	c.ll.Init()
	clear(c.index)
}

// Keys returns the cached keys from most to least recently used —
// the eviction order reversed. Intended for tests and introspection.
func (c *Cache[K, V]) Keys() []K {
	keys := make([]K, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry[K, V]).key)
	}
	return keys
}
