package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: Parse never panics on arbitrary input — it returns a query or
// an error.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Parse never panics on SQL-ish mutations of a valid query.
func TestParseNeverPanicsOnMutations(t *testing.T) {
	base := `select * from Hotels where price_pn < 150 and "clean rooms" or not (x = 'y') order by price_pn desc limit 10`
	tokens := strings.Fields(base)
	f := func(drop, dup uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		mut := make([]string, 0, len(tokens)+1)
		di := int(drop) % len(tokens)
		for i, tok := range tokens {
			if i == di {
				continue // drop one token
			}
			mut = append(mut, tok)
		}
		ui := int(dup) % len(mut)
		mut = append(mut[:ui+1], mut[ui:]...) // duplicate one token
		_, _ = Parse(strings.Join(mut, " "))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the number of subjective predicates equals the number of
// double-quoted strings for well-formed conjunctive queries.
func TestPredicateCountMatchesQuotes(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n%6) + 1
		var conds []string
		for i := 0; i < k; i++ {
			conds = append(conds, `"pred `+strings.Repeat("x", i+1)+`"`)
		}
		q, err := Parse(`select * from T where ` + strings.Join(conds, " and "))
		if err != nil {
			return false
		}
		return len(SubjectivePredicates(q.Where)) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AND/OR grouping is preserved under parenthesization — an
// explicitly parenthesized clause parses to the same tree as the
// precedence rules imply.
func TestPrecedenceEquivalence(t *testing.T) {
	a, err := Parse(`select * from T where "a" or "b" and "c"`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(`select * from T where "a" or ("b" and "c")`)
	if err != nil {
		t.Fatal(err)
	}
	if toString(a.Where) != toString(b.Where) {
		t.Errorf("precedence mismatch: %s vs %s", toString(a.Where), toString(b.Where))
	}
}

// toString canonically renders a condition tree for comparison.
func toString(c Cond) string {
	switch t := c.(type) {
	case SubjCond:
		return "«" + t.Text + "»"
	case CmpCond:
		return t.Column + t.Op + "?"
	case AndCond:
		parts := make([]string, len(t.Children))
		for i, ch := range t.Children {
			parts[i] = toString(ch)
		}
		return "AND(" + strings.Join(parts, ",") + ")"
	case OrCond:
		parts := make([]string, len(t.Children))
		for i, ch := range t.Children {
			parts[i] = toString(ch)
		}
		return "OR(" + strings.Join(parts, ",") + ")"
	case NotCond:
		return "NOT(" + toString(t.Child) + ")"
	default:
		return "?"
	}
}
