package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Query is the AST of a subjective SQL statement.
type Query struct {
	// Select lists selected column names; a single "*" means all.
	Select []string
	// From is the source relation name.
	From string
	// Alias is the optional relation alias (FROM Hotels h).
	Alias string
	// Where is the root condition, or nil for no WHERE clause.
	Where Cond
	// OrderBy is the ordering column ("" = rank by fuzzy score, the
	// default for subjective queries).
	OrderBy string
	// OrderDesc is true for DESC ordering.
	OrderDesc bool
	// Limit caps the result size; 0 means no limit.
	Limit int
}

// Cond is a node of the WHERE-clause condition tree.
type Cond interface{ condNode() }

// AndCond is a conjunction of conditions.
type AndCond struct{ Children []Cond }

// OrCond is a disjunction of conditions.
type OrCond struct{ Children []Cond }

// NotCond negates a condition.
type NotCond struct{ Child Cond }

// CmpCond is an objective comparison: column op literal.
type CmpCond struct {
	Column string
	Op     string // < <= > >= = !=
	// Value holds a float64 or string literal.
	Value interface{}
}

// SubjCond is a natural-language subjective predicate (double-quoted).
type SubjCond struct{ Text string }

func (AndCond) condNode()  {}
func (OrCond) condNode()   {}
func (NotCond) condNode()  {}
func (CmpCond) condNode()  {}
func (SubjCond) condNode() {}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one subjective SQL statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, fmt.Errorf("sqlparse: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return q, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tkKeyword && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sqlparse: expected %s at offset %d, got %q",
			strings.ToUpper(kw), p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	// Select list.
	for {
		t := p.peek()
		switch t.kind {
		case tkStar:
			p.next()
			q.Select = append(q.Select, "*")
		case tkIdent:
			p.next()
			col := t.text
			// Optional alias-qualified column (h.price_pn).
			if p.peek().kind == tkDot {
				p.next()
				f := p.next()
				if f.kind != tkIdent {
					return nil, fmt.Errorf("sqlparse: expected column after '.' at offset %d", f.pos)
				}
				col = f.text
			}
			q.Select = append(q.Select, col)
		default:
			return nil, fmt.Errorf("sqlparse: expected select item at offset %d, got %q", t.pos, t.text)
		}
		if p.peek().kind != tkComma {
			break
		}
		p.next()
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	rel := p.next()
	if rel.kind != tkIdent {
		return nil, fmt.Errorf("sqlparse: expected relation name at offset %d", rel.pos)
	}
	q.From = rel.text
	// Optional alias: FROM Hotels h  or  FROM Hotels AS h.
	p.keyword("as")
	if p.peek().kind == tkIdent {
		q.Alias = p.next().text
	}
	if p.keyword("where") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = cond
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		col := p.next()
		if col.kind != tkIdent {
			return nil, fmt.Errorf("sqlparse: expected order-by column at offset %d", col.pos)
		}
		q.OrderBy = col.text
		if p.keyword("desc") {
			q.OrderDesc = true
		} else {
			p.keyword("asc")
		}
	}
	if p.keyword("limit") {
		t := p.next()
		if t.kind != tkNumber {
			return nil, fmt.Errorf("sqlparse: expected limit count at offset %d", t.pos)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: bad limit %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseOr() (Cond, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []Cond{left}
	for p.keyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return OrCond{Children: children}, nil
}

func (p *parser) parseAnd() (Cond, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []Cond{left}
	for p.keyword("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return AndCond{Children: children}, nil
}

func (p *parser) parseUnary() (Cond, error) {
	if p.keyword("not") {
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotCond{Child: child}, nil
	}
	t := p.peek()
	switch t.kind {
	case tkLParen:
		p.next()
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tkRParen {
			return nil, fmt.Errorf("sqlparse: expected ')' at offset %d", p.peek().pos)
		}
		p.next()
		return cond, nil
	case tkString:
		p.next()
		if strings.TrimSpace(t.text) == "" {
			return nil, fmt.Errorf("sqlparse: empty subjective predicate at offset %d", t.pos)
		}
		return SubjCond{Text: t.text}, nil
	case tkIdent:
		return p.parseComparison()
	default:
		return nil, fmt.Errorf("sqlparse: expected condition at offset %d, got %q", t.pos, t.text)
	}
}

func (p *parser) parseComparison() (Cond, error) {
	col := p.next()
	name := col.text
	if p.peek().kind == tkDot {
		p.next()
		f := p.next()
		if f.kind != tkIdent {
			return nil, fmt.Errorf("sqlparse: expected column after '.' at offset %d", f.pos)
		}
		name = f.text
	}
	op := p.next()
	if op.kind != tkOp {
		return nil, fmt.Errorf("sqlparse: expected comparison operator at offset %d, got %q", op.pos, op.text)
	}
	opText := op.text
	if opText == "<>" {
		opText = "!="
	}
	val := p.next()
	switch val.kind {
	case tkNumber:
		f, err := strconv.ParseFloat(val.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad number %q", val.text)
		}
		return CmpCond{Column: name, Op: opText, Value: f}, nil
	case tkIdent:
		return CmpCond{Column: name, Op: opText, Value: val.text}, nil
	default:
		return nil, fmt.Errorf("sqlparse: expected literal at offset %d, got %q", val.pos, val.text)
	}
}

// SubjectivePredicates returns the texts of all subjective predicates in
// the condition tree, in left-to-right order.
func SubjectivePredicates(c Cond) []string {
	var out []string
	var walk func(Cond)
	walk = func(c Cond) {
		switch t := c.(type) {
		case SubjCond:
			out = append(out, t.Text)
		case AndCond:
			for _, ch := range t.Children {
				walk(ch)
			}
		case OrCond:
			for _, ch := range t.Children {
				walk(ch)
			}
		case NotCond:
			walk(t.Child)
		}
	}
	if c != nil {
		walk(c)
	}
	return out
}
