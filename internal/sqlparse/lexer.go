// Package sqlparse parses OpineDB's subjective SQL dialect (§2): standard
// single-block SELECT-FROM-WHERE queries whose WHERE clause may mix
// objective comparisons with natural-language subjective predicates in
// double quotes:
//
//	SELECT * FROM Hotels
//	WHERE price_pn < 150 AND "has really clean rooms"
//	  AND "is a romantic getaway"
//	LIMIT 10
//
// The parser produces an AST; interpretation of the quoted predicates is
// the query engine's job (§3), not the parser's.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString // double-quoted subjective predicate
	tkOp     // < > <= >= = != <>
	tkComma
	tkLParen
	tkRParen
	tkStar
	tkDot
)

// token is one lexical token with its source position (for error messages).
type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "limit": true, "order": true, "by": true, "asc": true,
	"desc": true, "as": true,
}

// lex tokenizes the input query string.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '"':
			j := i + 1
			for j < n && input[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tkString, text: input[i+1 : j], pos: i})
			i = j + 1
		case c == ',':
			toks = append(toks, token{kind: tkComma, text: ",", pos: i})
			i++
		case c == '(':
			toks = append(toks, token{kind: tkLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tkRParen, text: ")", pos: i})
			i++
		case c == '*':
			toks = append(toks, token{kind: tkStar, text: "*", pos: i})
			i++
		case c == '.':
			// Distinguish member access (h.price) from a decimal point,
			// which is handled in the number case below.
			toks = append(toks, token{kind: tkDot, text: ".", pos: i})
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < n && (input[j] == '=' || (input[i] == '<' && input[j] == '>')) {
				j++
			}
			op := input[i:j]
			if op == "!" {
				return nil, fmt.Errorf("sqlparse: bare '!' at offset %d", i)
			}
			toks = append(toks, token{kind: tkOp, text: op, pos: i})
			i = j
		case unicode.IsDigit(c):
			j := i
			seenDot := false
			for j < n && (unicode.IsDigit(rune(input[j])) || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					// A trailing dot ("5.") or "5.x" member access is not a
					// decimal; only consume the dot if a digit follows.
					if j+1 >= n || !unicode.IsDigit(rune(input[j+1])) {
						break
					}
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{kind: tkNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			kind := tkIdent
			if keywords[strings.ToLower(word)] {
				kind = tkKeyword
			}
			toks = append(toks, token{kind: kind, text: word, pos: i})
			i = j
		case c == '\'':
			// Single-quoted string literal (objective values).
			j := i + 1
			for j < n && input[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlparse: unterminated literal at offset %d", i)
			}
			toks = append(toks, token{kind: tkIdent, text: input[i+1 : j], pos: i})
			i = j + 1
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: n})
	return toks, nil
}
