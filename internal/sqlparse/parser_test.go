package sqlparse

import (
	"reflect"
	"testing"
)

func TestParsePaperQuery(t *testing.T) {
	// The paper's running example (§2).
	q, err := Parse(`select * from Hotels
		where price_pn < 150 and
		"has really clean rooms" and "is a romantic getaway"`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Select, []string{"*"}) {
		t.Errorf("Select = %v", q.Select)
	}
	if q.From != "Hotels" {
		t.Errorf("From = %q", q.From)
	}
	and, ok := q.Where.(AndCond)
	if !ok || len(and.Children) != 3 {
		t.Fatalf("Where = %#v", q.Where)
	}
	cmp, ok := and.Children[0].(CmpCond)
	if !ok || cmp.Column != "price_pn" || cmp.Op != "<" || cmp.Value != 150.0 {
		t.Errorf("first condition = %#v", and.Children[0])
	}
	preds := SubjectivePredicates(q.Where)
	want := []string{"has really clean rooms", "is a romantic getaway"}
	if !reflect.DeepEqual(preds, want) {
		t.Errorf("predicates = %v", preds)
	}
}

func TestParseAliasAndQualifiedColumns(t *testing.T) {
	q, err := Parse(`select h.hotelname, h.price_pn from Hotels h where h.price_pn <= 300`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Alias != "h" {
		t.Errorf("Alias = %q", q.Alias)
	}
	if !reflect.DeepEqual(q.Select, []string{"hotelname", "price_pn"}) {
		t.Errorf("Select = %v", q.Select)
	}
	cmp := q.Where.(CmpCond)
	if cmp.Column != "price_pn" || cmp.Op != "<=" {
		t.Errorf("cmp = %#v", cmp)
	}
}

func TestParseAsAlias(t *testing.T) {
	q, err := Parse(`select * from Restaurants as r where r.cuisine = 'japanese'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Alias != "r" {
		t.Errorf("Alias = %q", q.Alias)
	}
	cmp := q.Where.(CmpCond)
	if cmp.Column != "cuisine" || cmp.Value != "japanese" {
		t.Errorf("cmp = %#v", cmp)
	}
}

func TestParseOrNotParens(t *testing.T) {
	q, err := Parse(`select * from Hotels where ("quiet room" or "peaceful") and not price_pn > 400`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Where.(AndCond)
	if !ok || len(and.Children) != 2 {
		t.Fatalf("Where = %#v", q.Where)
	}
	or, ok := and.Children[0].(OrCond)
	if !ok || len(or.Children) != 2 {
		t.Fatalf("first child = %#v", and.Children[0])
	}
	not, ok := and.Children[1].(NotCond)
	if !ok {
		t.Fatalf("second child = %#v", and.Children[1])
	}
	if _, ok := not.Child.(CmpCond); !ok {
		t.Errorf("Not child = %#v", not.Child)
	}
}

func TestPrecedenceAndBindsTighter(t *testing.T) {
	q, err := Parse(`select * from T where "a" or "b" and "c"`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Where.(OrCond)
	if !ok || len(or.Children) != 2 {
		t.Fatalf("Where = %#v", q.Where)
	}
	if _, ok := or.Children[0].(SubjCond); !ok {
		t.Errorf("left of OR = %#v", or.Children[0])
	}
	if and, ok := or.Children[1].(AndCond); !ok || len(and.Children) != 2 {
		t.Errorf("right of OR = %#v", or.Children[1])
	}
}

func TestParseOrderLimit(t *testing.T) {
	q, err := Parse(`select * from Hotels where "clean rooms" order by price_pn desc limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderBy != "price_pn" || !q.OrderDesc {
		t.Errorf("order = %q desc=%v", q.OrderBy, q.OrderDesc)
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse(`select * from Hotels limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where != nil {
		t.Errorf("Where = %#v, want nil", q.Where)
	}
	if q.Limit != 5 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select * from",
		"select * from Hotels where",
		`select * from Hotels where "unterminated`,
		"select * from Hotels where price <",
		"select * from Hotels where price < and",
		"select * from Hotels where (price < 5",
		"select * from Hotels limit x",
		"select * from Hotels where price ! 5",
		`select * from Hotels where ""`,
		"select * from Hotels extra garbage",
		"delete from Hotels",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseNumberForms(t *testing.T) {
	q, err := Parse(`select * from T where x >= 3.25`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.(CmpCond).Value != 3.25 {
		t.Errorf("value = %v", q.Where.(CmpCond).Value)
	}
	// != and <> both normalize to !=.
	for _, op := range []string{"!=", "<>"} {
		q, err := Parse(`select * from T where x ` + op + ` 1`)
		if err != nil {
			t.Fatal(err)
		}
		if q.Where.(CmpCond).Op != "!=" {
			t.Errorf("op %q parsed as %q", op, q.Where.(CmpCond).Op)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`SELECT * FROM Hotels WHERE "clean" LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "Hotels" || q.Limit != 3 {
		t.Errorf("parsed %+v", q)
	}
}

func TestSubjectivePredicatesNil(t *testing.T) {
	if got := SubjectivePredicates(nil); got != nil {
		t.Errorf("nil cond = %v", got)
	}
}

func TestDeepNesting(t *testing.T) {
	q, err := Parse(`select * from T where not (not ("a" and (("b") or "c")))`)
	if err != nil {
		t.Fatal(err)
	}
	preds := SubjectivePredicates(q.Where)
	if !reflect.DeepEqual(preds, []string{"a", "b", "c"}) {
		t.Errorf("predicates = %v", preds)
	}
}
