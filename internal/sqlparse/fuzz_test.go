package sqlparse

// FuzzParseQuery: the parser must never panic — any byte sequence either
// parses to a non-nil Query or returns an error. Seed corpus: the shapes
// the engine and examples actually use (testdata/fuzz/FuzzParseQuery
// holds additional checked-in seeds).

import "testing"

func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		`SELECT * FROM Entities WHERE "has really clean rooms"`,
		`SELECT * FROM Hotels h WHERE h.price_pn < 150 AND "quiet room" LIMIT 5`,
		`select name, city from Entities where "friendly staff" or "great service" order by price_pn desc limit 3`,
		`SELECT * FROM Entities WHERE NOT ("noisy") AND price_pn >= 100.5`,
		`SELECT * FROM Entities WHERE city = 'london' AND "romantic vibe"`,
		`SELECT * FROM Entities WHERE ("a" AND "b") OR ("c" AND x != 'y')`,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM Entities WHERE`,
		`SELECT * FROM Entities WHERE "unterminated`,
		`SELECT * FROM Entities WHERE price_pn < `,
		`SELECT * FROM Entities LIMIT 999999999999999999999`,
		"SELECT * FROM Entities WHERE \"\x00\xff\"",
		``,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned neither a query nor an error", input)
		}
	})
}
