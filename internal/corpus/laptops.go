package corpus

import (
	"math/rand"

	"repro/internal/extract"
	"repro/internal/textproc"
)

// LaptopAspects returns a compact laptop-domain spec used only to generate
// the SemEval-2014 Laptop stand-in tagging dataset of Table 6 (the paper
// evaluates its extractor on laptop reviews; no laptop database is built).
func LaptopAspects() []AspectSpec {
	return []AspectSpec{
		{
			Name:        "battery",
			AspectTerms: []string{"battery", "battery life", "charge"},
			MentionProb: 0.6,
			Levels: []LevelSpec{
				{Name: "bad", Phrases: []string{"dreadful", "dies in an hour", "not lasting at all", "weak"}},
				{Name: "ok", Phrases: []string{"ok", "acceptable", "average", "decent"}},
				{Name: "great", Phrases: []string{"fantastic", "lasts all day", "excellent", "reliable"}},
			},
		},
		{
			Name:        "screen",
			AspectTerms: []string{"screen", "display", "panel"},
			MentionProb: 0.6,
			Levels: []LevelSpec{
				{Name: "bad", Phrases: []string{"dim", "washed out", "grainy", "far from sharp"}},
				{Name: "ok", Phrases: []string{"fine", "average", "adequate", "passable"}},
				{Name: "great", Phrases: []string{"gorgeous", "bright", "crisp", "stunning"}},
			},
		},
		{
			Name:        "keyboard",
			AspectTerms: []string{"keyboard", "keys", "trackpad"},
			MentionProb: 0.5,
			Levels: []LevelSpec{
				{Name: "bad", Phrases: []string{"mushy", "cramped", "not responsive at all", "sticky"}},
				{Name: "ok", Phrases: []string{"ok", "usable", "fine", "standard"}},
				{Name: "great", Phrases: []string{"comfortable", "satisfying", "excellent", "responsive"}},
			},
		},
		{
			Name:        "performance",
			AspectTerms: []string{"performance", "speed", "processor"},
			MentionProb: 0.6,
			Levels: []LevelSpec{
				{Name: "bad", Phrases: []string{"sluggish", "painfully slow", "anything but fast", "laggy"}},
				{Name: "ok", Phrases: []string{"adequate", "fine", "acceptable", "average"}},
				{Name: "great", Phrases: []string{"blazing fast", "snappy", "excellent", "smooth"}},
			},
		},
		{
			Name:        "build",
			AspectTerms: []string{"build", "chassis", "hinge", "case"},
			MentionProb: 0.45,
			Levels: []LevelSpec{
				{Name: "bad", Phrases: []string{"flimsy", "creaky", "cheap feeling", "fragile"}},
				{Name: "ok", Phrases: []string{"solid enough", "fine", "acceptable", "standard"}},
				{Name: "great", Phrases: []string{"rock solid", "premium", "beautifully made", "sturdy"}},
			},
		},
	}
}

// laptopFillers are objective filler sentences for laptop reviews.
var laptopFillers = []string{
	"I bought this laptop for university work",
	"It shipped within two days",
	"The box included a charger and a manual",
	"I mainly use it for documents and browsing",
	"It replaced my five year old machine",
}

// TaggedFromAspects generates n gold-labeled tagging sentences from
// arbitrary aspect specs — the dataset factory for the Table 6 extractor
// comparison across domains.
func TaggedFromAspects(aspects []AspectSpec, fillers []string, n int, rng *rand.Rand) []extract.Sentence {
	if len(fillers) == 0 {
		fillers = hotelFillers
	}
	var out []extract.Sentence
	for len(out) < n {
		a := &aspects[rng.Intn(len(aspects))]
		level := rng.Intn(len(a.Levels))
		phrase := pick(rng, a.Levels[level].Phrases)
		term := pick(rng, a.AspectTerms)
		sent := opinionSentence(rng, term, phrase)
		if rng.Intn(3) == 0 {
			sent += " and " + pick(rng, fillers)
		}
		toks := textproc.Tokenize(sent)
		tags := make([]extract.Tag, len(toks))
		markSpan(toks, textproc.Tokenize(term), tags, extract.AS)
		markSpan(toks, textproc.Tokenize(phrase), tags, extract.OP)
		out = append(out, extract.Sentence{Tokens: toks, Tags: tags})
	}
	return out
}

// TaggedSplit generates a train/test pair for the Table 6 extractor
// comparison. Training sentences draw only from a ~60% prefix of each
// level's phrase bank and each aspect's term list, and ~5% of training
// tags carry annotation noise; test sentences use the full banks. The
// tagger therefore meets unseen opinion phrasings and aspect nouns at test
// time and must generalize through its lexicon and shape features — as
// the paper's extractor must on real reviews annotated by humans.
func TaggedSplit(aspects []AspectSpec, fillers []string, trainN, testN int, rng *rand.Rand) (train, test []extract.Sentence) {
	trainAspects := make([]AspectSpec, len(aspects))
	for i, a := range aspects {
		ta := a
		ta.AspectTerms = prefix(a.AspectTerms, 0.6)
		ta.Levels = make([]LevelSpec, len(a.Levels))
		for j, l := range a.Levels {
			ta.Levels[j] = LevelSpec{Name: l.Name, Phrases: prefix(l.Phrases, 0.6)}
		}
		trainAspects[i] = ta
	}
	train = TaggedFromAspects(trainAspects, fillers, trainN, rng)
	for _, s := range train {
		for i := range s.Tags {
			if rng.Float64() < 0.05 {
				s.Tags[i] = extract.Tag(rng.Intn(extract.NumTags))
			}
		}
	}
	test = TaggedFromAspects(aspects, fillers, testN, rng)
	return train, test
}

// prefix keeps at least one and at most ceil(frac·len) leading items.
func prefix(items []string, frac float64) []string {
	n := int(float64(len(items))*frac + 0.999)
	if n < 1 {
		n = 1
	}
	if n > len(items) {
		n = len(items)
	}
	return items[:n]
}

// LaptopFillers exposes the laptop filler bank for harness use.
func LaptopFillers() []string { return laptopFillers }

// HotelFillers exposes the hotel filler bank.
func HotelFillers() []string { return hotelFillers }

// RestaurantFillers exposes the restaurant filler bank.
func RestaurantFillers() []string { return restaurantFillers }
