package corpus

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/sentiment"
	"repro/internal/textproc"
)

func TestGenerateHotelsShape(t *testing.T) {
	d := GenerateHotels(SmallConfig())
	if d.Domain != "hotel" {
		t.Errorf("Domain = %q", d.Domain)
	}
	if len(d.Entities) != 45 {
		t.Errorf("entities = %d, want 45", len(d.Entities))
	}
	if len(d.Reviews) == 0 {
		t.Fatal("no reviews generated")
	}
	cities := map[string]int{}
	for _, e := range d.Entities {
		cities[e.City]++
		if e.PricePerNight <= 0 {
			t.Errorf("entity %s has price %v", e.ID, e.PricePerNight)
		}
		for _, a := range d.Aspects {
			th, ok := e.Latent[a.Name]
			if !ok || th < 0 || th > 1 {
				t.Errorf("entity %s latent %s = %v, ok=%v", e.ID, a.Name, th, ok)
			}
			if a.Categorical && e.LatentCat[a.Name] == "" {
				t.Errorf("entity %s missing category for %s", e.ID, a.Name)
			}
		}
		if len(e.PlatformRatings) != len(hotelRatingAttrs) {
			t.Errorf("entity %s has %d platform ratings", e.ID, len(e.PlatformRatings))
		}
	}
	if cities["london"] != 30 || cities["amsterdam"] != 15 {
		t.Errorf("city split = %v", cities)
	}
}

func TestGenerateRestaurantsShape(t *testing.T) {
	d := GenerateRestaurants(SmallConfig())
	if len(d.Entities) != 40 {
		t.Errorf("entities = %d", len(d.Entities))
	}
	japanese, lowPrice := 0, 0
	for _, e := range d.Entities {
		if e.Cuisine == "japanese" {
			japanese++
		}
		if e.PriceRange == 1 {
			lowPrice++
		}
		if e.Stars < 1 || e.Stars > 5 {
			t.Errorf("stars = %v", e.Stars)
		}
		if len(e.CategoricalAttrs) != len(restaurantCategoricalAttrs) {
			t.Errorf("entity %s has %d categorical attrs", e.ID, len(e.CategoricalAttrs))
		}
	}
	if japanese < 5 {
		t.Errorf("only %d japanese restaurants", japanese)
	}
	if lowPrice < 5 {
		t.Errorf("only %d low-price restaurants", lowPrice)
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a := GenerateHotels(SmallConfig())
	b := GenerateHotels(SmallConfig())
	if len(a.Reviews) != len(b.Reviews) {
		t.Fatal("review counts differ across runs")
	}
	for i := range a.Reviews {
		if a.Reviews[i].Text != b.Reviews[i].Text {
			t.Fatalf("review %d differs", i)
		}
	}
}

// Reviews of high-quality entities must be more positive than reviews of
// low-quality entities — the signal every downstream experiment needs.
func TestLatentQualityDrivesSentiment(t *testing.T) {
	d := GenerateHotels(SmallConfig())
	var hiSum, loSum float64
	var hiN, loN int
	for _, e := range d.Entities {
		theta := e.Latent["room_cleanliness"]
		if theta < 0.35 && theta > 0.75 {
			continue
		}
		for _, r := range d.ReviewsOf(e.ID) {
			s := sentiment.Score(r.Text)
			if theta >= 0.75 {
				hiSum += s
				hiN++
			} else if theta <= 0.35 {
				loSum += s
				loN++
			}
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("small corpus lacks extreme entities")
	}
	if hiSum/float64(hiN) <= loSum/float64(loN) {
		t.Errorf("clean hotels avg sentiment %.3f should exceed dirty %.3f",
			hiSum/float64(hiN), loSum/float64(loN))
	}
}

// Restaurant reviews must be longer and more positive than hotel reviews
// (Table 4's shape).
func TestTable4Shape(t *testing.T) {
	h := GenerateHotels(SmallConfig())
	r := GenerateRestaurants(SmallConfig())
	avgWords := func(reviews []*Review) float64 {
		var total int
		for _, rv := range reviews {
			total += len(textproc.Tokenize(rv.Text))
		}
		return float64(total) / float64(len(reviews))
	}
	avgPolarity := func(reviews []*Review) float64 {
		var total float64
		for _, rv := range reviews {
			total += sentiment.Score(rv.Text)
		}
		return float64(total) / float64(len(reviews))
	}
	hw, rw := avgWords(h.Reviews), avgWords(r.Reviews)
	if rw <= hw*1.5 {
		t.Errorf("restaurant reviews (%.1f words) should be much longer than hotel (%.1f)", rw, hw)
	}
	hp, rp := avgPolarity(h.Reviews), avgPolarity(r.Reviews)
	if rp <= hp {
		t.Errorf("restaurant polarity %.3f should exceed hotel polarity %.3f", rp, hp)
	}
}

func TestCompositeSignalInReviews(t *testing.T) {
	cfg := SmallConfig()
	cfg.HotelsLondon, cfg.HotelsAmsterdam = 60, 0
	cfg.ReviewsPerHotel = 20
	d := GenerateHotels(cfg)
	romantic := 0
	for _, e := range d.Entities {
		qualifies := e.Latent["service"] >= 0.75 && e.LatentCat["style"] == "luxurious"
		mentions := 0
		for _, r := range d.ReviewsOf(e.ID) {
			if strings.Contains(r.Text, "romantic") {
				mentions++
			}
		}
		if qualifies && mentions > 0 {
			romantic++
		}
		if !qualifies && mentions > 0 {
			t.Errorf("non-qualifying entity %s mentions 'romantic' (%d times)", e.ID, mentions)
		}
	}
	if romantic == 0 {
		t.Error("no qualifying entity ever mentioned 'romantic'; co-occurrence signal missing")
	}
}

func TestFlagSignalInReviews(t *testing.T) {
	cfg := SmallConfig()
	cfg.HotelsLondon, cfg.ReviewsPerHotel = 80, 20
	d := GenerateHotels(cfg)
	flagged, mentioned := 0, 0
	for _, e := range d.Entities {
		if !e.Flags["motorcycle"] {
			continue
		}
		flagged++
		for _, r := range d.ReviewsOf(e.ID) {
			if strings.Contains(r.Text, "motorcycle") || strings.Contains(r.Text, "bikers") {
				mentioned++
				break
			}
		}
	}
	if flagged == 0 {
		t.Skip("no flagged entities at this scale")
	}
	if mentioned == 0 {
		t.Error("flagged entities never mention the amenity; IR fallback has no signal")
	}
}

func TestPredicateBankSizes(t *testing.T) {
	h := HotelPredicates()
	if len(h) != 190 {
		t.Errorf("hotel predicates = %d, want 190", len(h))
	}
	r := RestaurantPredicates()
	if len(r) != 185 {
		t.Errorf("restaurant predicates = %d, want 185", len(r))
	}
	// All texts distinct.
	for name, bank := range map[string][]Predicate{"hotel": h, "restaurant": r} {
		seen := map[string]bool{}
		for _, p := range bank {
			if seen[p.Text] {
				t.Errorf("%s: duplicate predicate %q", name, p.Text)
			}
			seen[p.Text] = true
			if p.Kind != KindOutOfSchema && p.GoldAttribute == "" {
				t.Errorf("%s: predicate %q lacks gold attribute", name, p.Text)
			}
		}
	}
}

func TestPredicateKindMix(t *testing.T) {
	counts := map[PredicateKind]int{}
	for _, p := range HotelPredicates() {
		counts[p.Kind]++
	}
	if counts[KindComposite] != 16 {
		t.Errorf("composite = %d, want 16", counts[KindComposite])
	}
	if counts[KindOutOfSchema] != 9 {
		t.Errorf("out-of-schema = %d, want 9", counts[KindOutOfSchema])
	}
	if counts[KindMarker] != 11 {
		t.Errorf("marker = %d, want 11 (one per attribute)", counts[KindMarker])
	}
}

func TestPredicateSatisfied(t *testing.T) {
	e := &Entity{
		Latent:    map[string]float64{"room_cleanliness": 0.8, "service": 0.9, "bar": 0.2},
		LatentCat: map[string]string{"style": "luxurious"},
		Flags:     map[string]bool{"motorcycle": true},
	}
	clean := Predicate{GoldAttribute: "room_cleanliness", MinQuality: 0.7}
	if !clean.Satisfied(e) {
		t.Error("clean predicate should hold")
	}
	bar := Predicate{GoldAttribute: "bar", MinQuality: 0.7}
	if bar.Satisfied(e) {
		t.Error("bar predicate should fail")
	}
	lux := Predicate{GoldAttribute: "style", WantCategory: "luxurious"}
	if !lux.Satisfied(e) {
		t.Error("categorical predicate should hold")
	}
	romantic := Predicate{
		Kind:         KindComposite,
		CompositeOf:  map[string]float64{"service": 0.75},
		CompositeCat: map[string]string{"style": "luxurious"},
	}
	if !romantic.Satisfied(e) {
		t.Error("composite predicate should hold")
	}
	romantic.CompositeCat["style"] = "modern"
	if romantic.Satisfied(e) {
		t.Error("composite with wrong category should fail")
	}
	moto := Predicate{Kind: KindOutOfSchema, Flag: "motorcycle"}
	if !moto.Satisfied(e) {
		t.Error("flag predicate should hold")
	}
}

func TestSeeds(t *testing.T) {
	d := GenerateHotels(SmallConfig())
	seeds := d.Seeds()
	if len(seeds) != len(d.Aspects) {
		t.Fatalf("seeds = %d, want %d", len(seeds), len(d.Aspects))
	}
	totalPhrases := 0
	for _, s := range seeds {
		if len(s.Aspects) == 0 || len(s.Opinions) == 0 {
			t.Errorf("seed %s is empty", s.Attribute)
		}
		totalPhrases += len(s.Aspects) + len(s.Opinions)
	}
	// The paper uses 277 seeds for 15 hotel attributes; ours should be in
	// the same ballpark for 12 attributes.
	if totalPhrases < 100 {
		t.Errorf("only %d total seed phrases", totalPhrases)
	}
}

func TestTaggedSentences(t *testing.T) {
	d := GenerateHotels(SmallConfig())
	rng := rand.New(rand.NewSource(3))
	sents := d.TaggedSentences(200, rng)
	if len(sents) != 200 {
		t.Fatalf("got %d sentences", len(sents))
	}
	hasAS, hasOP := 0, 0
	for _, s := range sents {
		if len(s.Tokens) != len(s.Tags) {
			t.Fatal("token/tag length mismatch")
		}
		for _, tag := range s.Tags {
			switch tag {
			case extract.AS:
				hasAS++
			case extract.OP:
				hasOP++
			}
		}
	}
	if hasAS == 0 || hasOP == 0 {
		t.Errorf("tag counts AS=%d OP=%d; gold labels missing", hasAS, hasOP)
	}
}

func TestLevelFor(t *testing.T) {
	a := &AspectSpec{Levels: []LevelSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}}}
	rng := rand.New(rand.NewSource(4))
	// θ=1 should concentrate on the top level; θ=0 on the bottom.
	hi, lo := 0, 0
	for i := 0; i < 500; i++ {
		if a.LevelFor(1.0, rng) >= 2 {
			hi++
		}
		if a.LevelFor(0.0, rng) <= 1 {
			lo++
		}
	}
	if hi < 450 || lo < 450 {
		t.Errorf("LevelFor concentration: hi=%d lo=%d of 500", hi, lo)
	}
	single := &AspectSpec{Levels: []LevelSpec{{Name: "only"}}}
	if single.LevelFor(0.5, rng) != 0 {
		t.Error("single-level aspect must return 0")
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := GenerateHotels(SmallConfig())
	e := d.Entities[0]
	if d.EntityByID(e.ID) != e {
		t.Error("EntityByID failed")
	}
	if d.EntityByID("nope") != nil {
		t.Error("unknown id should return nil")
	}
	if d.Aspect("room_cleanliness") == nil {
		t.Error("Aspect lookup failed")
	}
	if d.Aspect("nope") != nil {
		t.Error("unknown aspect should return nil")
	}
	if len(d.ReviewsOf(e.ID)) == 0 {
		t.Error("ReviewsOf returned nothing")
	}
}

func TestReviewerZipf(t *testing.T) {
	cfg := SmallConfig()
	cfg.ReviewsPerHotel = 20
	d := GenerateHotels(cfg)
	counts := map[string]int{}
	for _, r := range d.Reviews {
		counts[r.Reviewer]++
	}
	prolific := 0
	for _, c := range counts {
		if c >= 10 {
			prolific++
		}
	}
	if prolific == 0 {
		t.Error("no prolific reviewers; the review-qualification feature has nothing to filter")
	}
}

func TestPredicateKindString(t *testing.T) {
	if KindMarker.String() != "marker" || KindOutOfSchema.String() != "out-of-schema" {
		t.Error("kind names wrong")
	}
}
