package corpus

// HotelAspects returns the subjective-attribute specs of the hotel domain.
// The schema mirrors Figure 2 of the paper (room_cleanliness, bathroom
// style, service, bed comfort) extended with the further aspects the
// paper's hotel schema carries (15 attributes; we model 12). Levels are
// ordered worst → best. Low levels deliberately include negated positive
// words ("not clean at all") — the trap that defeats the IR baseline.
func HotelAspects() []AspectSpec {
	return []AspectSpec{
		{
			Name:        "room_cleanliness",
			AspectTerms: []string{"room", "carpet", "sheets", "floor", "bedroom"},
			MentionProb: 0.75,
			Levels: []LevelSpec{
				{Name: "very_dirty", Phrases: []string{
					"filthy", "absolutely filthy", "disgusting", "filthy dirty",
					"not clean at all", "anything but clean", "grimy and disgusting",
				}},
				{Name: "dirty", Phrases: []string{
					"dirty", "quite dirty", "stained", "dusty", "far from clean",
					"grubby", "stained carpet", "not very clean",
				}},
				{Name: "average", Phrases: []string{
					"average", "ok", "acceptable", "clean enough", "fairly tidy",
					"passable", "adequate",
				}},
				{Name: "very_clean", Phrases: []string{
					"very clean", "spotless", "spotlessly clean", "immaculate",
					"really clean", "extremely clean", "pristine", "meticulously clean",
					"clean and tidy", "gleaming",
				}},
			},
		},
		{
			Name:        "style",
			AspectTerms: []string{"bathroom", "shower", "faucets", "bathtub"},
			Categorical: true,
			MentionProb: 0.4,
			Levels: []LevelSpec{
				{Name: "old", Phrases: []string{
					"old", "old-fashioned", "dated", "outdated", "old-styled",
					"worn and dated", "from another era",
				}},
				{Name: "standard", Phrases: []string{
					"standard", "basic", "ordinary", "plain", "functional",
					"typical", "no-frills",
				}},
				{Name: "modern", Phrases: []string{
					"modern", "newly renovated", "sleek", "contemporary",
					"stylish", "modern faucets", "freshly updated",
				}},
				{Name: "luxurious", Phrases: []string{
					"luxurious", "five-star", "marble", "extravagant",
					"luxurious bath towels", "plush", "lavish", "spa-like",
				}},
			},
		},
		{
			Name:        "service",
			AspectTerms: []string{"service", "reception", "front desk", "concierge"},
			MentionProb: 0.65,
			Levels: []LevelSpec{
				{Name: "very_bad", Phrases: []string{
					"appalling", "dreadful", "the worst", "horrible",
					"not helpful at all", "anything but professional",
				}},
				{Name: "bad", Phrases: []string{
					"bad", "slow", "rude", "dismissive", "unhelpful",
					"far from friendly", "careless",
				}},
				{Name: "average", Phrases: []string{
					"average", "ok", "fine", "acceptable", "adequate", "standard",
				}},
				{Name: "good", Phrases: []string{
					"good", "friendly", "helpful", "professional", "attentive",
					"courteous", "welcoming", "prompt",
				}},
				{Name: "exceptional", Phrases: []string{
					"exceptional", "outstanding", "excellent", "impeccable",
					"went above and beyond", "truly exceptional", "five-star",
					"excellent service",
				}},
			},
		},
		{
			Name:        "comfort",
			AspectTerms: []string{"bed", "mattress", "pillows", "duvet"},
			MentionProb: 0.55,
			Levels: []LevelSpec{
				{Name: "worn_out", Phrases: []string{
					"worn out", "saggy", "lumpy", "broken springs",
					"not comfortable at all", "anything but comfortable",
				}},
				{Name: "uncomfortable", Phrases: []string{
					"uncomfortable", "too hard", "too soft", "creaky",
					"far from comfortable", "rock hard",
				}},
				{Name: "ok", Phrases: []string{
					"ok", "fine", "decent", "acceptable", "average",
				}},
				{Name: "comfortable", Phrases: []string{
					"comfortable", "comfy", "firm", "supportive", "cozy",
				}},
				{Name: "very_comfortable", Phrases: []string{
					"very comfortable", "heavenly", "like sleeping on a cloud",
					"extremely comfortable", "wonderfully soft", "plush",
				}},
			},
		},
		{
			Name:        "quietness",
			AspectTerms: []string{"room", "street", "walls", "neighborhood"},
			MentionProb: 0.45,
			Levels: []LevelSpec{
				{Name: "very_noisy", Phrases: []string{
					"very noisy", "extremely loud", "constant noise",
					"traffic noise all night", "not quiet at all",
					"anything but quiet", "unbearably loud",
				}},
				{Name: "noisy", Phrases: []string{
					"noisy", "loud", "annoying", "quite loud", "thin walls",
					"far from quiet", "street noise",
				}},
				{Name: "average", Phrases: []string{
					"average", "some noise", "mostly fine", "ok",
				}},
				{Name: "quiet", Phrases: []string{
					"quiet", "calm", "peaceful", "quiet room",
				}},
				{Name: "very_quiet", Phrases: []string{
					"very quiet", "extremely quiet", "utterly peaceful",
					"silent at night", "tranquil", "wonderfully peaceful",
				}},
			},
		},
		{
			Name:        "breakfast",
			AspectTerms: []string{"breakfast", "buffet", "coffee", "croissants"},
			MentionProb: 0.5,
			Levels: []LevelSpec{
				{Name: "bad", Phrases: []string{
					"stale", "cold", "disappointing", "awful", "not fresh at all",
					"bland", "far from tasty",
				}},
				{Name: "average", Phrases: []string{
					"average", "basic", "ok", "standard", "adequate", "limited",
				}},
				{Name: "good", Phrases: []string{
					"good", "tasty", "fresh", "nice", "decent", "good options",
				}},
				{Name: "excellent", Phrases: []string{
					"excellent", "delicious", "generous", "outstanding",
					"fantastic spread", "superb", "amazing variety",
				}},
			},
		},
		{
			Name:        "staff",
			AspectTerms: []string{"staff", "receptionist", "housekeeping", "porter"},
			MentionProb: 0.6,
			Levels: []LevelSpec{
				{Name: "rude", Phrases: []string{
					"rude", "unfriendly", "arrogant", "dismissive",
					"not friendly at all", "anything but helpful",
				}},
				{Name: "indifferent", Phrases: []string{
					"indifferent", "cold", "inattentive", "slow",
					"not so friendly", "far from welcoming",
				}},
				{Name: "friendly", Phrases: []string{
					"friendly", "kind", "polite", "helpful", "warm",
					"very kind staff", "helpful concierge",
				}},
				{Name: "wonderful", Phrases: []string{
					"wonderful", "amazing", "went out of their way",
					"incredibly welcoming", "exceptionally kind", "delightful",
				}},
			},
		},
		{
			Name:        "location",
			AspectTerms: []string{"location", "area", "spot", "position"},
			MentionProb: 0.55,
			Levels: []LevelSpec{
				{Name: "bad", Phrases: []string{
					"inconvenient", "sketchy", "far from everything", "unsafe",
					"not central at all", "in the middle of nowhere",
				}},
				{Name: "average", Phrases: []string{
					"ok", "average", "decent", "fine", "acceptable",
				}},
				{Name: "good", Phrases: []string{
					"good", "convenient", "central", "handy", "well placed",
					"close to public transportation",
				}},
				{Name: "great", Phrases: []string{
					"great", "perfect", "unbeatable", "fantastic",
					"great place", "ideal", "right in the heart of the city",
				}},
			},
		},
		{
			Name:        "wifi",
			AspectTerms: []string{"wifi", "internet", "connection", "signal"},
			MentionProb: 0.3,
			Levels: []LevelSpec{
				{Name: "unreliable", Phrases: []string{
					"unreliable", "spotty", "kept dropping", "barely worked",
					"not fast at all", "painfully slow",
				}},
				{Name: "slow", Phrases: []string{
					"slow", "weak", "patchy", "sluggish", "far from fast",
				}},
				{Name: "ok", Phrases: []string{
					"ok", "fine", "decent", "acceptable", "average",
				}},
				{Name: "fast", Phrases: []string{
					"fast", "reliable", "speedy", "excellent", "blazing fast",
				}},
			},
		},
		{
			Name:        "bar",
			AspectTerms: []string{"bar", "lounge", "rooftop bar", "cocktails"},
			MentionProb: 0.3,
			Levels: []LevelSpec{
				{Name: "dead", Phrases: []string{
					"dead", "empty", "closed early", "dull", "not lively at all",
					"boring", "lifeless",
				}},
				{Name: "average", Phrases: []string{
					"average", "ok", "fine", "quiet", "decent",
				}},
				{Name: "nice", Phrases: []string{
					"nice", "pleasant", "cozy", "charming", "inviting",
				}},
				{Name: "lively", Phrases: []string{
					"lively", "buzzing", "vibrant", "energetic", "happening",
					"lively bar scene", "great atmosphere",
				}},
			},
		},
		{
			Name:        "view",
			AspectTerms: []string{"view", "window", "balcony", "outlook"},
			MentionProb: 0.25,
			Levels: []LevelSpec{
				{Name: "bad", Phrases: []string{
					"of a brick wall", "dreary", "depressing", "of the parking lot",
					"not scenic at all",
				}},
				{Name: "ok", Phrases: []string{
					"ok", "fine", "decent", "average", "unremarkable",
				}},
				{Name: "nice", Phrases: []string{
					"nice", "pleasant", "lovely", "pretty",
				}},
				{Name: "stunning", Phrases: []string{
					"stunning", "breathtaking", "gorgeous", "magnificent",
					"spectacular", "panoramic",
				}},
			},
		},
		{
			Name:        "value",
			AspectTerms: []string{"price", "value", "rate", "cost"},
			MentionProb: 0.35,
			Levels: []LevelSpec{
				{Name: "overpriced", Phrases: []string{
					"overpriced", "a rip off", "not worth it", "far too expensive",
					"not worth the money",
				}},
				{Name: "pricey", Phrases: []string{
					"pricey", "expensive", "steep", "on the high side",
				}},
				{Name: "fair", Phrases: []string{
					"fair", "reasonable", "ok", "decent", "moderate",
				}},
				{Name: "great_value", Phrases: []string{
					"great value", "a bargain", "worth every penny", "affordable",
					"excellent value for money",
				}},
			},
		},
	}
}

// HotelComposites returns the combination concepts of the hotel domain.
// "romantic getaway" is the paper's running example: it never names a
// schema attribute, but co-occurs with exceptional service and luxurious
// bathrooms (§3.2).
func HotelComposites() []CompositeSpec {
	return []CompositeSpec{
		{
			Name:       "romantic getaway",
			Proxies:    map[string]float64{"service": 0.75},
			CatProxies: map[string]string{"style": "luxurious"},
			Phrases: []string{
				"a perfect romantic getaway", "so romantic",
				"ideal for a romantic escape", "a dream anniversary stay",
				"wonderfully romantic",
			},
			MentionProb: 0.3,
		},
		{
			Name:    "business trip",
			Proxies: map[string]float64{"location": 0.7, "wifi": 0.7},
			Phrases: []string{
				"great for business trips", "perfect for business travellers",
				"ideal for a work trip", "very business friendly",
			},
			MentionProb: 0.25,
		},
		{
			Name:    "family friendly",
			Proxies: map[string]float64{"staff": 0.7, "breakfast": 0.65},
			Phrases: []string{
				"very family friendly", "great for kids", "kid friendly",
				"perfect for families", "our children loved it",
			},
			MentionProb: 0.25,
		},
		{
			Name:    "night out",
			Proxies: map[string]float64{"bar": 0.75},
			Phrases: []string{
				"perfect for a night out", "great party vibe",
				"the place to be in the evening",
			},
			MentionProb: 0.25,
		},
	}
}

// HotelFlags returns the out-of-schema amenities of the hotel domain,
// including the paper's "good for motorcyclists" and "great towel art"
// examples.
func HotelFlags() []FlagSpec {
	return []FlagSpec{
		{
			Name: "motorcycle",
			Phrases: []string{
				"plenty of parking for motorcycles", "bikers welcome",
				"secure motorcycle parking", "great stop on a motorcycle tour",
				"perfect for motorcyclists", "motorcyclists will love the garage",
			},
			Prevalence:  0.08,
			MentionProb: 0.2,
		},
		{
			Name: "towel_art",
			Phrases: []string{
				"lovely towel art on the bed", "adorable towel animals",
				"the housekeeper folds amazing towel art",
			},
			Prevalence:  0.1,
			MentionProb: 0.15,
		},
		{
			Name: "pet_friendly",
			Phrases: []string{
				"they welcomed our dog", "very pet friendly",
				"water bowls for pets in the lobby", "dogs are welcome here",
				"travelling with a dog was no problem",
			},
			Prevalence:  0.12,
			MentionProb: 0.2,
		},
	}
}

// hotelFillers are objective sentences with no opinion content, mixed into
// reviews so extraction is non-trivial.
var hotelFillers = []string{
	"We arrived late in the evening after a long flight",
	"Check in took about ten minutes",
	"We stayed for three nights in June",
	"The hotel is a short walk from the station",
	"We booked through the website a month in advance",
	"Our room was on the fourth floor",
	"We travelled with two suitcases and a stroller",
	"The lobby has a small gift shop",
	"Breakfast is served from seven until ten",
	"Parking is available around the corner",
}

// hotelRatingAttrs are the 8 aggregate scores scraped from booking.com
// that the attribute-based baseline ranks by (§5.3), with the latent
// aspect each is derived from.
var hotelRatingAttrs = map[string]string{
	"Location":      "location",
	"Cleanliness":   "room_cleanliness",
	"Staff":         "staff",
	"Comfort":       "comfort",
	"Facilities":    "style",
	"ValueForMoney": "value",
	"Breakfast":     "breakfast",
	"FreeWifi":      "wifi",
}
