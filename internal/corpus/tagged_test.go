package corpus

import (
	"math/rand"
	"testing"

	"repro/internal/extract"
)

func TestTaggedSplitHeldOutPhrases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train, test := TaggedSplit(HotelAspects(), HotelFillers(), 400, 200, rng)
	if len(train) != 400 || len(test) != 200 {
		t.Fatalf("sizes = %d/%d", len(train), len(test))
	}
	// Collect opinion-span texts from both sides; the test side must use
	// phrasings absent from training (the held-out 40%).
	spanTexts := func(sents []extract.Sentence) map[string]bool {
		out := map[string]bool{}
		for _, s := range sents {
			for _, sp := range extract.Spans(s.Tags) {
				if sp.Tag == extract.OP {
					out[sp.Text(s.Tokens)] = true
				}
			}
		}
		return out
	}
	trainOps := spanTexts(train)
	testOps := spanTexts(test)
	unseen := 0
	for p := range testOps {
		if !trainOps[p] {
			unseen++
		}
	}
	if unseen == 0 {
		t.Error("no held-out phrasings in the test set; the split is not forcing generalization")
	}
}

func TestTaggedSplitLabelNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trainA, _ := TaggedSplit(HotelAspects(), HotelFillers(), 400, 10, rng)
	// Regenerate the same sentences without noise for comparison.
	cleanRng := rand.New(rand.NewSource(2))
	aspects := HotelAspects()
	trainClean := func() []extract.Sentence {
		trainAspects := make([]AspectSpec, len(aspects))
		for i, a := range aspects {
			ta := a
			ta.AspectTerms = prefix(a.AspectTerms, 0.6)
			ta.Levels = make([]LevelSpec, len(a.Levels))
			for j, l := range a.Levels {
				ta.Levels[j] = LevelSpec{Name: l.Name, Phrases: prefix(l.Phrases, 0.6)}
			}
			trainAspects[i] = ta
		}
		return TaggedFromAspects(trainAspects, HotelFillers(), 400, cleanRng)
	}()
	diff := 0
	total := 0
	for i := range trainA {
		for j := range trainA[i].Tags {
			total++
			if trainA[i].Tags[j] != trainClean[i].Tags[j] {
				diff++
			}
		}
	}
	frac := float64(diff) / float64(total)
	// ~5% positions get a random (possibly unchanged) tag → observed
	// change rate ~3.3%; accept a broad band.
	if frac < 0.01 || frac > 0.08 {
		t.Errorf("label-noise rate %.3f outside expected band", frac)
	}
}

func TestPrefixHelper(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	if got := prefix(items, 0.5); len(got) != 2 {
		t.Errorf("prefix(4, 0.5) = %v", got)
	}
	if got := prefix(items, 0.01); len(got) != 1 {
		t.Errorf("prefix should keep at least one item: %v", got)
	}
	if got := prefix(items, 2.0); len(got) != 4 {
		t.Errorf("prefix should clamp: %v", got)
	}
}

func TestTaggedFromAspectsDefaultFillers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sents := TaggedFromAspects(LaptopAspects(), nil, 50, rng)
	if len(sents) != 50 {
		t.Fatalf("got %d", len(sents))
	}
	for _, s := range sents {
		if len(s.Tokens) == 0 || len(s.Tokens) != len(s.Tags) {
			t.Fatal("malformed sentence")
		}
	}
}

func TestLaptopAspectsShape(t *testing.T) {
	aspects := LaptopAspects()
	if len(aspects) < 4 {
		t.Fatalf("only %d laptop aspects", len(aspects))
	}
	for _, a := range aspects {
		if len(a.AspectTerms) == 0 || len(a.Levels) < 2 {
			t.Errorf("aspect %s underspecified", a.Name)
		}
		for _, l := range a.Levels {
			if len(l.Phrases) == 0 {
				t.Errorf("aspect %s level %s has no phrases", a.Name, l.Name)
			}
		}
	}
}
