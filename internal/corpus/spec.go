// Package corpus generates the synthetic review corpora that stand in for
// the paper's Booking.com (515k hotel reviews) and Yelp (176k restaurant
// reviews) datasets, which are not redistributable here.
//
// The generator preserves the phenomena every OpineDB experiment depends
// on:
//
//   - Latent ground truth: every entity has a hidden quality θ ∈ [0,1] per
//     subjective aspect; review phrases are sampled from per-level phrase
//     banks conditioned on θ. This replaces the paper's manual sat(q,e)
//     labeling with exact labels.
//   - Linguistic variation: each (aspect, level) has many phrasings, so the
//     word2vec interpreter has real work to do.
//   - Negated positives: low-quality levels include phrases built from
//     positive words ("not clean at all", "far from quiet") which defeat
//     keyword search — the paper's qualitative argument for why OpineDB
//     beats the IR baseline (Appendix D).
//   - Composite concepts: phrases like "romantic getaway" are injected
//     only into reviews of entities whose *proxy aspects* are strong
//     (exceptional service + luxurious bathrooms), giving the
//     co-occurrence interpreter its signal.
//   - Out-of-schema aspects: rare boolean amenities ("motorcycle parking",
//     "towel art") appear only in raw text, exercising the IR fallback.
package corpus

import (
	"fmt"
	"math/rand"
)

// LevelSpec is one point on an aspect's quality scale: a marker-like name
// and the bank of opinion phrases expressing that level.
type LevelSpec struct {
	Name    string
	Phrases []string
}

// AspectSpec describes one subjective attribute of a domain.
type AspectSpec struct {
	// Name is the subjective attribute name, e.g. "room_cleanliness".
	Name string
	// AspectTerms are the nouns reviews use for this aspect ("room",
	// "carpet"); also the designer's E seed set.
	AspectTerms []string
	// Categorical marks non-linear domains (e.g. bathroom style); for
	// categorical aspects Levels are categories, not a scale.
	Categorical bool
	// Levels are ordered worst→best for linear aspects.
	Levels []LevelSpec
	// MentionProb is the chance a review discusses this aspect.
	MentionProb float64
}

// LevelFor maps a latent quality θ ∈ [0,1] to a level index with gaussian
// reviewer noise: individual reviewers disagree, the aggregate reflects θ.
func (a *AspectSpec) LevelFor(theta float64, rng *rand.Rand) int {
	n := len(a.Levels)
	if n == 1 {
		return 0
	}
	x := theta*float64(n-1) + rng.NormFloat64()*0.55
	i := int(x + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// CompositeSpec is a concept expressible only as a combination of aspects
// ("romantic getaway" ⇐ exceptional service ∧ luxurious bathroom). The
// generator mentions the concept's phrases in reviews of entities whose
// proxy thresholds hold, creating the co-occurrence signal of §3.2.
type CompositeSpec struct {
	Name string
	// Proxies maps aspect name → minimum latent quality for the concept to
	// apply. For categorical aspects the threshold is on the category
	// match (see CatProxies).
	Proxies map[string]float64
	// CatProxies maps categorical aspect name → required category.
	CatProxies map[string]string
	// Phrases are how reviews mention the concept.
	Phrases []string
	// MentionProb is the chance a qualifying entity's review mentions it.
	MentionProb float64
}

// Applies reports whether the composite concept holds for latent data.
func (c *CompositeSpec) Applies(latent map[string]float64, latentCat map[string]string) bool {
	for a, min := range c.Proxies {
		if latent[a] < min {
			return false
		}
	}
	for a, cat := range c.CatProxies {
		if latentCat[a] != cat {
			return false
		}
	}
	return true
}

// FlagSpec is an out-of-schema boolean amenity that only ever appears in
// raw review text ("good for motorcyclists"), never in the schema.
type FlagSpec struct {
	Name        string
	Phrases     []string
	Prevalence  float64 // fraction of entities with the flag
	MentionProb float64 // chance a flagged entity's review mentions it
}

// Entity is one hotel or restaurant with its latent ground truth.
type Entity struct {
	ID   string
	Name string
	City string

	// Hotel objective attributes.
	PricePerNight float64
	Capacity      int

	// Restaurant objective attributes.
	PriceRange int // 1..4 '$' signs
	Cuisine    string

	// Latent ground truth.
	Latent    map[string]float64 // linear aspect → θ
	LatentCat map[string]string  // categorical aspect → dominant category
	Flags     map[string]bool    // out-of-schema amenities

	// PlatformRatings simulates the aggregate scores scraped from
	// booking.com/yelp that the attribute-based baselines rank by
	// (noisy functions of the latent quality).
	PlatformRatings map[string]float64
	// CategoricalAttrs simulates yelp's filterable attributes
	// (NoiseLevel, GoodForGroups, ...).
	CategoricalAttrs map[string]string
	// Stars is the platform's overall star rating.
	Stars float64
	// ReviewCount is maintained by the generator.
	ReviewCount int
}

// Review is one generated review.
type Review struct {
	ID       string
	EntityID string
	Reviewer string
	// Day is days since an arbitrary epoch; supports date-qualified queries.
	Day  int
	Text string
}

// Dataset is everything the experiments need for one domain.
type Dataset struct {
	Domain     string
	Entities   []*Entity
	Reviews    []*Review
	Aspects    []AspectSpec
	Composites []CompositeSpec
	OOSFlags   []FlagSpec
	Predicates []Predicate
}

// EntityByID returns the entity with the given id, or nil.
func (d *Dataset) EntityByID(id string) *Entity {
	for _, e := range d.Entities {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// Aspect returns the named aspect spec, or nil.
func (d *Dataset) Aspect(name string) *AspectSpec {
	for i := range d.Aspects {
		if d.Aspects[i].Name == name {
			return &d.Aspects[i]
		}
	}
	return nil
}

// ReviewsOf returns all reviews of the entity, in generation order.
func (d *Dataset) ReviewsOf(entityID string) []*Review {
	var out []*Review
	for _, r := range d.Reviews {
		if r.EntityID == entityID {
			out = append(out, r)
		}
	}
	return out
}

// PredicateKind classifies query predicates by which interpreter stage
// should resolve them.
type PredicateKind int

const (
	// KindMarker predicates name a marker-like phrase directly
	// ("has firm beds").
	KindMarker PredicateKind = iota
	// KindParaphrase predicates use in-domain linguistic variation
	// ("meticulously clean rooms").
	KindParaphrase
	// KindComposite predicates need the co-occurrence method
	// ("is a romantic getaway").
	KindComposite
	// KindOutOfSchema predicates need the IR fallback
	// ("good for motorcyclists").
	KindOutOfSchema
)

// String names the kind.
func (k PredicateKind) String() string {
	switch k {
	case KindMarker:
		return "marker"
	case KindParaphrase:
		return "paraphrase"
	case KindComposite:
		return "composite"
	case KindOutOfSchema:
		return "out-of-schema"
	default:
		return fmt.Sprintf("PredicateKind(%d)", int(k))
	}
}

// Predicate is one subjective query predicate with its ground truth.
type Predicate struct {
	Text string
	Kind PredicateKind
	// GoldAttribute is the schema attribute the predicate should map to
	// (the Table 8 label); empty for out-of-schema predicates.
	GoldAttribute string
	// WantCategory, for predicates over categorical aspects, names the
	// category the user wants; otherwise empty and MinQuality applies.
	WantCategory string
	// MinQuality is the latent threshold defining ground-truth
	// satisfaction for linear aspects.
	MinQuality float64
	// CompositeOf lists the proxy thresholds for composite predicates.
	CompositeOf map[string]float64
	// CompositeCat lists categorical proxies for composite predicates.
	CompositeCat map[string]string
	// Flag names the out-of-schema amenity for KindOutOfSchema.
	Flag string
}

// Satisfied reports the ground-truth sat(q, e) of §5.2.3, computed from
// the entity's latent state rather than by human labeling.
func (p *Predicate) Satisfied(e *Entity) bool {
	switch p.Kind {
	case KindOutOfSchema:
		return e.Flags[p.Flag]
	case KindComposite:
		for a, min := range p.CompositeOf {
			if e.Latent[a] < min {
				return false
			}
		}
		for a, cat := range p.CompositeCat {
			if e.LatentCat[a] != cat {
				return false
			}
		}
		return true
	default:
		if p.WantCategory != "" {
			return e.LatentCat[p.GoldAttribute] == p.WantCategory
		}
		return e.Latent[p.GoldAttribute] >= p.MinQuality
	}
}
