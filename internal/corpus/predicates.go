package corpus

import "fmt"

// predSpec drives deterministic expansion of a predicate bank for one
// subjective attribute: every (pattern, phrase) combination yields one
// query predicate text, up to the per-attribute quota.
type predSpec struct {
	attr     string
	wantCat  string   // for categorical attributes
	minQ     float64  // ground-truth latent threshold
	phrases  []string // opinion phrasings, most marker-like first
	patterns []string // %s is replaced with the phrase
}

// expand generates quota predicates from the spec. The first generated
// predicate (exact head phrase) is KindMarker; the rest are paraphrases.
func (ps predSpec) expand(quota int) []Predicate {
	var out []Predicate
	seen := map[string]bool{}
	for _, pat := range ps.patterns {
		for _, ph := range ps.phrases {
			if len(out) >= quota {
				return out
			}
			text := fmt.Sprintf(pat, ph)
			if seen[text] {
				continue
			}
			seen[text] = true
			kind := KindParaphrase
			if len(out) == 0 {
				kind = KindMarker
			}
			out = append(out, Predicate{
				Text:          text,
				Kind:          kind,
				GoldAttribute: ps.attr,
				WantCategory:  ps.wantCat,
				MinQuality:    ps.minQ,
			})
		}
	}
	return out
}

// compositePredicates builds the predicates that require the
// co-occurrence interpreter; gold attribute is the primary proxy, matching
// the paper's "closest subjective attribute" labeling rule.
func compositePredicates(specs []struct {
	texts   []string
	gold    string
	proxies map[string]float64
	cats    map[string]string
}) []Predicate {
	var out []Predicate
	for _, s := range specs {
		for _, t := range s.texts {
			out = append(out, Predicate{
				Text:          t,
				Kind:          KindComposite,
				GoldAttribute: s.gold,
				CompositeOf:   s.proxies,
				CompositeCat:  s.cats,
			})
		}
	}
	return out
}

// flagPredicates builds the out-of-schema predicates (IR fallback).
func flagPredicates(pairs [][2]string) []Predicate {
	var out []Predicate
	for _, p := range pairs {
		out = append(out, Predicate{Text: p[0], Kind: KindOutOfSchema, Flag: p[1]})
	}
	return out
}

// HotelPredicates returns the 190-predicate hotel query bank of §5.2.2.
func HotelPredicates() []Predicate {
	const quota = 15
	specs := []predSpec{
		{
			attr: "room_cleanliness", minQ: 0.7,
			phrases:  []string{"very clean", "really clean", "spotless", "immaculate", "meticulously clean", "clean and tidy"},
			patterns: []string{"has %s rooms", "rooms that are %s", "%s rooms", "a room that is %s"},
		},
		{
			attr: "service", minQ: 0.7,
			phrases:  []string{"exceptional", "excellent", "outstanding", "impeccable", "top notch", "first class"},
			patterns: []string{"has %s service", "%s service", "service that is %s", "staff providing %s service"},
		},
		{
			attr: "style", wantCat: "luxurious",
			phrases:  []string{"luxurious", "five-star", "marble", "lavish", "plush", "spa-like"},
			patterns: []string{"has %s bathrooms", "%s bathrooms", "a bathroom that is %s", "bathrooms that feel %s"},
		},
		{
			attr: "comfort", minQ: 0.65,
			phrases:  []string{"very comfortable", "comfortable", "comfy", "firm", "heavenly", "supportive"},
			patterns: []string{"has %s beds", "%s beds", "beds that are %s", "a bed that is %s"},
		},
		{
			attr: "quietness", minQ: 0.7,
			phrases:  []string{"very quiet", "quiet", "peaceful", "tranquil", "calm", "silent at night"},
			patterns: []string{"has %s rooms", "a %s room", "rooms that are %s", "%s at night"},
		},
		{
			attr: "breakfast", minQ: 0.7,
			phrases:  []string{"excellent", "delicious", "generous", "tasty", "fresh", "outstanding"},
			patterns: []string{"serves %s breakfast", "%s breakfast", "a breakfast that is %s", "breakfast that tastes %s"},
		},
		{
			attr: "staff", minQ: 0.7,
			phrases:  []string{"friendly", "wonderful", "helpful", "kind", "welcoming", "polite"},
			patterns: []string{"has %s staff", "%s staff", "staff who are %s", "a team that is %s"},
		},
		{
			attr: "location", minQ: 0.7,
			phrases:  []string{"great", "convenient", "central", "perfect", "ideal", "unbeatable"},
			patterns: []string{"has a %s location", "%s location", "a location that is %s", "situated in a %s spot"},
		},
		{
			attr: "wifi", minQ: 0.7,
			phrases:  []string{"fast", "reliable", "speedy", "excellent", "blazing fast", "strong"},
			patterns: []string{"has %s wifi", "%s wifi", "wifi that is %s", "%s internet"},
		},
		{
			attr: "bar", minQ: 0.7,
			phrases:  []string{"lively", "buzzing", "vibrant", "energetic", "happening", "great"},
			patterns: []string{"has a %s bar scene", "a %s bar", "a bar that is %s", "%s lounge"},
		},
		{
			attr: "view", minQ: 0.7,
			phrases:  []string{"stunning", "breathtaking", "gorgeous", "nice", "spectacular", "panoramic"},
			patterns: []string{"has a %s view", "%s views", "a view that is %s", "rooms with %s views"},
		},
	}
	var out []Predicate
	for _, s := range specs {
		out = append(out, s.expand(quota)...)
	}
	out = append(out, compositePredicates([]struct {
		texts   []string
		gold    string
		proxies map[string]float64
		cats    map[string]string
	}{
		{
			texts:   []string{"is a romantic getaway", "good for a romantic weekend", "perfect for our anniversary", "a romantic escape for two"},
			gold:    "service",
			proxies: map[string]float64{"service": 0.75},
			cats:    map[string]string{"style": "luxurious"},
		},
		{
			texts:   []string{"good for business trips", "ideal for a work trip", "suits business travellers", "convenient for conferences"},
			gold:    "location",
			proxies: map[string]float64{"location": 0.7, "wifi": 0.7},
		},
		{
			texts:   []string{"kid friendly hotel", "great for families with children", "perfect for a family vacation", "good for kids"},
			gold:    "staff",
			proxies: map[string]float64{"staff": 0.7, "breakfast": 0.65},
		},
		{
			texts:   []string{"good for a night out", "a place with party vibes", "fun place to stay for nightlife", "lively evening atmosphere"},
			gold:    "bar",
			proxies: map[string]float64{"bar": 0.75},
		},
	})...)
	out = append(out, flagPredicates([][2]string{
		{"good for motorcyclists", "motorcycle"},
		{"has secure motorcycle parking", "motorcycle"},
		{"bikers are welcome", "motorcycle"},
		{"has great towel art", "towel_art"},
		{"towel animals on the bed", "towel_art"},
		{"housekeeping folds towel art", "towel_art"},
		{"welcomes dogs", "pet_friendly"},
		{"pet friendly rooms", "pet_friendly"},
		{"good for travelling with a dog", "pet_friendly"},
	})...)
	return out
}

// RestaurantPredicates returns the 185-predicate restaurant query bank.
func RestaurantPredicates() []Predicate {
	const quota = 16
	specs := []predSpec{
		{
			attr: "food", minQ: 0.7,
			phrases:  []string{"delicious", "tasty", "amazing", "fresh", "authentic", "exquisite"},
			patterns: []string{"serves %s food", "%s food", "dishes that are %s", "food that tastes %s"},
		},
		{
			attr: "service", minQ: 0.7,
			phrases:  []string{"friendly", "attentive", "impeccable", "helpful", "warm", "outstanding"},
			patterns: []string{"has %s service", "%s service", "servers who are %s", "waiters that are %s"},
		},
		{
			attr: "ambience", minQ: 0.7,
			phrases:  []string{"charming", "cozy", "elegant", "beautiful", "stylish", "pleasant"},
			patterns: []string{"has a %s ambience", "%s atmosphere", "a dining room that is %s", "%s decor"},
		},
		{
			attr: "vibe", minQ: 0.7,
			phrases:  []string{"quiet", "relaxing", "peaceful", "calm", "intimate", "serene"},
			patterns: []string{"a %s place", "%s dining", "a spot that is %s", "an evening that is %s"},
		},
		{
			attr: "value", minQ: 0.7,
			phrases:  []string{"great value", "a bargain", "affordable", "reasonable", "worth every penny", "fair"},
			patterns: []string{"is %s", "%s for the money", "prices that are %s", "meals that are %s"},
		},
		{
			attr: "cleanliness", minQ: 0.7,
			phrases:  []string{"spotless", "very clean", "immaculate", "pristine", "gleaming", "tidy"},
			patterns: []string{"has %s tables", "a %s dining area", "restrooms that are %s", "%s throughout"},
		},
		{
			attr: "portions", minQ: 0.7,
			phrases:  []string{"generous", "huge", "hearty", "enormous", "filling", "big"},
			patterns: []string{"serves %s portions", "%s portions", "plates that are %s", "servings that are %s"},
		},
		{
			attr: "speed", minQ: 0.7,
			phrases:  []string{"fast", "quick", "prompt", "speedy", "efficient", "swift"},
			patterns: []string{"has %s service at the table", "%s kitchen", "orders arriving %s", "a wait that is %s"},
		},
		{
			attr: "drinks", minQ: 0.7,
			phrases:  []string{"excellent", "inventive", "superb", "good", "outstanding", "well chosen"},
			patterns: []string{"has %s cocktails", "%s drinks", "a wine list that is %s", "%s sake selection"},
		},
		{
			attr: "table", minQ: 0.65,
			phrases:  []string{"spacious", "comfortable", "roomy", "generous", "pleasant", "ample"},
			patterns: []string{"has %s seating", "%s tables", "booths that are %s", "seating that feels %s"},
		},
	}
	var out []Predicate
	for _, s := range specs {
		out = append(out, s.expand(quota)...)
	}
	out = append(out, compositePredicates([]struct {
		texts   []string
		gold    string
		proxies map[string]float64
		cats    map[string]string
	}{
		{
			texts:   []string{"perfect for a romantic dinner", "good date night spot", "ideal for an anniversary dinner", "a romantic evening out"},
			gold:    "ambience",
			proxies: map[string]float64{"ambience": 0.75, "vibe": 0.7},
		},
		{
			texts:   []string{"good for groups", "fits a big party", "works for ten people", "group friendly dining"},
			gold:    "table",
			proxies: map[string]float64{"table": 0.7, "portions": 0.65},
		},
		{
			texts:   []string{"good for a business lunch", "private dinner with clients", "suits a quick work meeting", "quiet business meetings"},
			gold:    "speed",
			proxies: map[string]float64{"speed": 0.7, "vibe": 0.65},
		},
		{
			texts:   []string{"dinner with kids", "family friendly restaurant", "great with children", "good for a family outing"},
			gold:    "service",
			proxies: map[string]float64{"service": 0.7, "table": 0.65},
		},
	})...)
	out = append(out, flagPredicates([][2]string{
		{"a sunset view from the terrace", "sunset_view"},
		{"watch the sunset while dining", "sunset_view"},
		{"terrace with a view of the sunset", "sunset_view"},
		{"live jazz music", "live_jazz"},
		{"a jazz band playing", "live_jazz"},
		{"music on the weekends", "live_jazz"},
		{"open late at night", "late_night"},
		{"kitchen serving after midnight", "late_night"},
		{"dinner after a late show", "late_night"},
	})...)
	return out
}
