package corpus

// RestaurantAspects returns the subjective-attribute specs of the
// restaurant domain (the paper models 11 attributes; we model 10).
func RestaurantAspects() []AspectSpec {
	return []AspectSpec{
		{
			Name:        "food",
			AspectTerms: []string{"food", "dishes", "sushi", "ramen", "menu"},
			MentionProb: 0.9,
			Levels: []LevelSpec{
				{Name: "awful", Phrases: []string{
					"awful", "inedible", "disgusting", "not tasty at all",
					"anything but fresh", "terrible",
				}},
				{Name: "bland", Phrases: []string{
					"bland", "tasteless", "stale", "greasy", "far from delicious",
					"underwhelming", "flavorless",
				}},
				{Name: "decent", Phrases: []string{
					"decent", "ok", "fine", "average", "acceptable", "passable",
				}},
				{Name: "tasty", Phrases: []string{
					"tasty", "good", "fresh", "flavorful", "well prepared",
					"nicely seasoned", "authentic",
				}},
				{Name: "delicious", Phrases: []string{
					"delicious", "amazing", "exquisite", "divine", "outstanding",
					"melt in your mouth", "the best we ever had", "superb",
				}},
			},
		},
		{
			Name:        "service",
			AspectTerms: []string{"service", "waiter", "waitress", "server"},
			MentionProb: 0.7,
			Levels: []LevelSpec{
				{Name: "terrible", Phrases: []string{
					"terrible", "appalling", "the worst", "not attentive at all",
					"anything but friendly",
				}},
				{Name: "slow", Phrases: []string{
					"slow", "rude", "inattentive", "forgetful", "dismissive",
					"far from attentive",
				}},
				{Name: "fine", Phrases: []string{
					"fine", "ok", "average", "acceptable", "standard",
				}},
				{Name: "friendly", Phrases: []string{
					"friendly", "attentive", "helpful", "warm", "courteous",
					"welcoming",
				}},
				{Name: "impeccable", Phrases: []string{
					"impeccable", "outstanding", "exceptional", "flawless",
					"anticipated our every need",
				}},
			},
		},
		{
			Name:        "ambience",
			AspectTerms: []string{"ambience", "atmosphere", "decor", "interior"},
			MentionProb: 0.55,
			Levels: []LevelSpec{
				{Name: "dreary", Phrases: []string{
					"dreary", "drab", "depressing", "dingy", "not inviting at all",
				}},
				{Name: "plain", Phrases: []string{
					"plain", "dull", "dated", "ordinary", "far from charming",
				}},
				{Name: "pleasant", Phrases: []string{
					"pleasant", "nice", "cozy", "comfortable", "warm",
				}},
				{Name: "charming", Phrases: []string{
					"charming", "beautiful", "elegant", "stylish", "enchanting",
					"gorgeous", "romantic",
				}},
			},
		},
		{
			Name:        "vibe",
			AspectTerms: []string{"place", "room", "dining room", "crowd"},
			MentionProb: 0.45,
			Levels: []LevelSpec{
				{Name: "chaotic", Phrases: []string{
					"chaotic", "deafening", "unbearably loud", "not quiet at all",
					"anything but relaxing",
				}},
				{Name: "loud", Phrases: []string{
					"loud", "noisy", "crowded", "hectic", "far from peaceful",
				}},
				{Name: "lively", Phrases: []string{
					"lively", "buzzing", "energetic", "vibrant", "fun",
				}},
				{Name: "quiet", Phrases: []string{
					"quiet", "calm", "peaceful", "relaxing", "quiet place",
					"serene", "intimate",
				}},
			},
		},
		{
			Name:        "value",
			AspectTerms: []string{"prices", "bill", "portions for the price", "cost"},
			MentionProb: 0.5,
			Levels: []LevelSpec{
				{Name: "rip_off", Phrases: []string{
					"a rip off", "outrageous", "not worth it", "far too expensive",
					"not worth the money",
				}},
				{Name: "overpriced", Phrases: []string{
					"overpriced", "steep", "pricey", "on the high side",
				}},
				{Name: "fair", Phrases: []string{
					"fair", "reasonable", "ok", "decent", "moderate",
				}},
				{Name: "great_value", Phrases: []string{
					"great value", "a bargain", "cheap and generous",
					"worth every penny", "unbeatable prices",
				}},
			},
		},
		{
			Name:        "cleanliness",
			AspectTerms: []string{"tables", "restroom", "kitchen", "cutlery"},
			MentionProb: 0.35,
			Levels: []LevelSpec{
				{Name: "dirty", Phrases: []string{
					"dirty", "sticky", "grimy", "not clean at all", "filthy",
					"far from spotless",
				}},
				{Name: "average", Phrases: []string{
					"ok", "acceptable", "average", "fine",
				}},
				{Name: "spotless", Phrases: []string{
					"spotless", "very clean", "immaculate", "gleaming",
					"pristine",
				}},
			},
		},
		{
			Name:        "portions",
			AspectTerms: []string{"portions", "servings", "plates", "helpings"},
			MentionProb: 0.4,
			Levels: []LevelSpec{
				{Name: "tiny", Phrases: []string{
					"tiny", "minuscule", "laughably small", "not filling at all",
				}},
				{Name: "small", Phrases: []string{
					"small", "modest", "on the small side", "far from generous",
				}},
				{Name: "decent", Phrases: []string{
					"decent", "fair", "reasonable", "average",
				}},
				{Name: "generous", Phrases: []string{
					"generous", "huge", "enormous", "more than enough",
					"hearty",
				}},
			},
		},
		{
			Name:        "speed",
			AspectTerms: []string{"wait", "kitchen", "orders", "turnaround"},
			MentionProb: 0.4,
			Levels: []LevelSpec{
				{Name: "glacial", Phrases: []string{
					"glacial", "endless", "over an hour", "not quick at all",
					"anything but fast",
				}},
				{Name: "slow", Phrases: []string{
					"slow", "sluggish", "long", "far from prompt",
				}},
				{Name: "reasonable", Phrases: []string{
					"reasonable", "ok", "average", "acceptable",
				}},
				{Name: "fast", Phrases: []string{
					"fast", "quick", "prompt", "speedy", "efficient",
				}},
			},
		},
		{
			Name:        "drinks",
			AspectTerms: []string{"drinks", "cocktails", "sake", "wine list"},
			MentionProb: 0.35,
			Levels: []LevelSpec{
				{Name: "poor", Phrases: []string{
					"poor", "watered down", "limited", "not impressive at all",
				}},
				{Name: "basic", Phrases: []string{
					"basic", "ordinary", "short", "unremarkable",
				}},
				{Name: "good", Phrases: []string{
					"good", "solid", "nice", "well chosen",
				}},
				{Name: "excellent", Phrases: []string{
					"excellent", "superb", "inventive", "outstanding",
					"an amazing selection",
				}},
			},
		},
		{
			Name:        "table",
			AspectTerms: []string{"seating", "tables", "booths", "chairs"},
			MentionProb: 0.3,
			Levels: []LevelSpec{
				{Name: "cramped", Phrases: []string{
					"cramped", "packed in", "squeezed together",
					"not comfortable at all",
				}},
				{Name: "tight", Phrases: []string{
					"tight", "close together", "a bit cramped", "far from spacious",
				}},
				{Name: "fine", Phrases: []string{
					"fine", "ok", "adequate", "average",
				}},
				{Name: "spacious", Phrases: []string{
					"spacious", "comfortable", "roomy", "generous",
					"high chair available for kids", "high chair",
				}},
			},
		},
	}
}

// RestaurantComposites returns the combination concepts of the restaurant
// domain.
func RestaurantComposites() []CompositeSpec {
	return []CompositeSpec{
		{
			Name:    "romantic dinner",
			Proxies: map[string]float64{"ambience": 0.75, "vibe": 0.7},
			Phrases: []string{
				"perfect for a romantic dinner", "ideal date night spot",
				"so romantic", "took my partner for our anniversary",
			},
			MentionProb: 0.3,
		},
		{
			Name:    "good for groups",
			Proxies: map[string]float64{"table": 0.7, "portions": 0.65},
			Phrases: []string{
				"great for groups", "perfect for a big party",
				"came with ten friends and fit easily",
			},
			MentionProb: 0.25,
		},
		{
			Name:    "business lunch",
			Proxies: map[string]float64{"speed": 0.7, "vibe": 0.65},
			Phrases: []string{
				"great for a business lunch", "perfect for a quick work meeting",
				"ideal for a private dinner with clients",
			},
			MentionProb: 0.25,
		},
		{
			Name:    "family outing",
			Proxies: map[string]float64{"service": 0.7, "table": 0.65},
			Phrases: []string{
				"great with kids", "very family friendly",
				"they were wonderful with our children",
			},
			MentionProb: 0.25,
		},
	}
}

// RestaurantFlags returns the out-of-schema amenities of the restaurant
// domain, including the paper's "sunset view of Tokyo Tower"-style
// example.
func RestaurantFlags() []FlagSpec {
	return []FlagSpec{
		{
			Name: "sunset_view",
			Phrases: []string{
				"beautiful sunset view from the terrace",
				"watched the sunset over the skyline",
				"the terrace has a stunning sunset view",
			},
			Prevalence:  0.08,
			MentionProb: 0.2,
		},
		{
			Name: "live_jazz",
			Phrases: []string{
				"live jazz on weekends", "a jazz trio plays on fridays",
				"loved the live jazz band",
			},
			Prevalence:  0.1,
			MentionProb: 0.2,
		},
		{
			Name: "late_night",
			Phrases: []string{
				"open until two in the morning", "perfect after a late show",
				"the kitchen serves until midnight", "open late into the night",
			},
			Prevalence:  0.12,
			MentionProb: 0.2,
		},
	}
}

// restaurantFillers are objective sentences mixed into restaurant reviews.
var restaurantFillers = []string{
	"We came on a Friday evening around eight",
	"The restaurant is on a side street near the market",
	"We made a reservation two days before",
	"They brought the menu right away",
	"We ordered the tasting course and two appetizers",
	"The place seats maybe forty people",
	"We paid by card and split the bill",
	"Street parking was easy to find",
	"They have an english menu as well",
	"We waited about five minutes for a table",
	"The chef trained in osaka according to the menu",
	"Our group ordered several dishes to share",
}

// restaurantRatingAttrs simulates yelp's filterable categorical attributes
// used by the attribute-based baseline; each derives from a latent aspect
// with the category cut at the given threshold.
var restaurantCategoricalAttrs = []struct {
	Name   string
	Aspect string
	Low    string // category when latent < threshold
	High   string // category when latent >= threshold
	Cut    float64
}{
	{"NoiseLevel", "vibe", "loud", "quiet", 0.6},
	{"GoodForGroups", "table", "no", "yes", 0.6},
	{"Ambience", "ambience", "casual", "classy", 0.65},
	{"Attire", "ambience", "casual", "dressy", 0.75},
	{"GoodForKids", "service", "no", "yes", 0.55},
	{"OutdoorSeating", "table", "no", "yes", 0.7},
	{"TakesReservations", "speed", "no", "yes", 0.5},
	{"HasTV", "drinks", "no", "yes", 0.5},
}
