package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/classify"
	"repro/internal/extract"
)

// GenConfig controls corpus generation. Scale defaults reproduce the
// entity counts of Table 4 (189 London hotels under $300, 91 Amsterdam
// hotels, 112 low-price and 108 Japanese restaurants) with review volumes
// scaled down from the paper's 515k/176k to keep experiments laptop-fast;
// the shape (hotels have more, shorter, less positive reviews than
// restaurants) is preserved.
type GenConfig struct {
	Seed int64

	// Hotels.
	HotelsLondon    int
	HotelsAmsterdam int
	ReviewsPerHotel int // mean; actual counts vary ±40%

	// Restaurants.
	Restaurants          int
	ReviewsPerRestaurant int

	// ReviewerPool is the number of distinct reviewers; review authorship
	// is Zipf-distributed so some reviewers are prolific (needed by the
	// "reviewers with >= 10 reviews" qualification feature).
	ReviewerPool int
}

// DefaultConfig returns the experiment-scale configuration.
func DefaultConfig() GenConfig {
	return GenConfig{
		Seed:                 1,
		HotelsLondon:         220, // ~189 land under $300/night
		HotelsAmsterdam:      91,
		ReviewsPerHotel:      40,
		Restaurants:          400, // ~112 low-price, ~108 japanese
		ReviewsPerRestaurant: 18,
		ReviewerPool:         3000,
	}
}

// SmallConfig returns a reduced configuration for unit tests.
func SmallConfig() GenConfig {
	return GenConfig{
		Seed:                 1,
		HotelsLondon:         30,
		HotelsAmsterdam:      15,
		ReviewsPerHotel:      12,
		Restaurants:          40,
		ReviewsPerRestaurant: 8,
		ReviewerPool:         200,
	}
}

// hotelNameParts generate plausible entity names.
var (
	hotelAdjectives = []string{"Grand", "Royal", "Crown", "Park", "Garden", "River", "Harbor", "Victoria", "Windsor", "Summit", "Plaza", "Imperial", "Golden", "Silver", "Maple", "Cedar", "Ivy", "Abbey", "Regent", "Sterling"}
	hotelNouns      = []string{"Hotel", "Inn", "Lodge", "Suites", "House", "Court", "Arms", "Palace", "Residence", "Stay"}
	restAdjectives  = []string{"Sakura", "Golden", "Jade", "Lucky", "Blue", "Crimson", "Umami", "Hana", "Kiku", "Zen", "Momo", "Yuzu", "Kobe", "Aki", "Nori", "Miso", "Tora", "Kaze", "Sora", "Taki"}
	restNouns       = []string{"Kitchen", "House", "Table", "Garden", "Bistro", "Diner", "Grill", "Bar", "Izakaya", "Cafe"}
	cuisines        = []string{"japanese", "italian", "mexican", "thai", "canadian", "indian", "french", "chinese"}
)

// GenerateHotels builds the hotel dataset (Booking.com stand-in).
func GenerateHotels(cfg GenConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	aspects := HotelAspects()
	composites := HotelComposites()
	flags := HotelFlags()
	d := &Dataset{
		Domain:     "hotel",
		Aspects:    aspects,
		Composites: composites,
		OOSFlags:   flags,
	}
	total := cfg.HotelsLondon + cfg.HotelsAmsterdam
	for i := 0; i < total; i++ {
		city := "london"
		if i >= cfg.HotelsLondon {
			city = "amsterdam"
		}
		e := &Entity{
			ID:   fmt.Sprintf("h%04d", i),
			Name: entityName(rng, hotelAdjectives, hotelNouns, i),
			City: city,
			// London prices skew high so a meaningful fraction lands above
			// the $300 filter of the Table 4/5 "London, <$300" setting.
			PricePerNight:    60 + rng.Float64()*rng.Float64()*440,
			Capacity:         40 + rng.Intn(360),
			Latent:           map[string]float64{},
			LatentCat:        map[string]string{},
			Flags:            map[string]bool{},
			PlatformRatings:  map[string]float64{},
			CategoricalAttrs: map[string]string{},
		}
		// Latent qualities: hotels are mixed (Table 4's polarity ~0.2).
		for _, a := range aspects {
			theta := clamp01(0.55 + rng.NormFloat64()*0.22)
			e.Latent[a.Name] = theta
			if a.Categorical {
				e.LatentCat[a.Name] = categoryFor(&a, theta, rng)
			}
		}
		for _, f := range flags {
			if rng.Float64() < f.Prevalence {
				e.Flags[f.Name] = true
			}
		}
		// Platform ratings (booking.com style 0..10 scores). These are
		// noisy proxies of the latent quality: scraped aggregate ratings
		// blend many reviewers' disagreements, rating-scale compression
		// and recency effects, so the attribute-based baseline cannot
		// read the latent state directly.
		for attr, aspect := range hotelRatingAttrs {
			e.PlatformRatings[attr] = clamp(e.Latent[aspect]*10+rng.NormFloat64()*1.6, 0, 10)
		}
		d.Entities = append(d.Entities, e)
	}
	generateReviews(d, rng, cfg.ReviewsPerHotel, cfg.ReviewerPool, 3, 6, hotelFillers)
	d.Predicates = HotelPredicates()
	return d
}

// GenerateRestaurants builds the restaurant dataset (Yelp stand-in,
// Toronto restaurants).
func GenerateRestaurants(cfg GenConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	aspects := RestaurantAspects()
	composites := RestaurantComposites()
	flags := RestaurantFlags()
	d := &Dataset{
		Domain:     "restaurant",
		Aspects:    aspects,
		Composites: composites,
		OOSFlags:   flags,
	}
	for i := 0; i < cfg.Restaurants; i++ {
		cuisine := cuisines[rng.Intn(len(cuisines))]
		// Pin the Table 4 subpopulations: ~27% japanese, ~28% low-price.
		if i%4 == 1 {
			cuisine = "japanese"
		}
		priceRange := 1 + rng.Intn(4)
		if i%4 == 2 {
			priceRange = 1
		}
		e := &Entity{
			ID:               fmt.Sprintf("r%04d", i),
			Name:             entityName(rng, restAdjectives, restNouns, i),
			City:             "toronto",
			Cuisine:          cuisine,
			PriceRange:       priceRange,
			Latent:           map[string]float64{},
			LatentCat:        map[string]string{},
			Flags:            map[string]bool{},
			PlatformRatings:  map[string]float64{},
			CategoricalAttrs: map[string]string{},
		}
		// Restaurants skew positive (Table 4's polarity ~0.7).
		for _, a := range aspects {
			theta := clamp01(0.68 + rng.NormFloat64()*0.18)
			e.Latent[a.Name] = theta
			if a.Categorical {
				e.LatentCat[a.Name] = categoryFor(&a, theta, rng)
			}
		}
		for _, f := range flags {
			if rng.Float64() < f.Prevalence {
				e.Flags[f.Name] = true
			}
		}
		// Yelp-style attributes.
		var sum float64
		for _, a := range aspects {
			sum += e.Latent[a.Name]
		}
		e.Stars = clamp(sum/float64(len(aspects))*5+rng.NormFloat64()*0.6, 1, 5)
		for _, ca := range restaurantCategoricalAttrs {
			v := ca.Low
			// The cut is noisy: yelp's filter attributes are owner- or
			// crowd-supplied and frequently stale or wrong.
			if e.Latent[ca.Aspect]+rng.NormFloat64()*0.2 >= ca.Cut {
				v = ca.High
			}
			e.CategoricalAttrs[ca.Name] = v
		}
		d.Entities = append(d.Entities, e)
	}
	generateReviews(d, rng, cfg.ReviewsPerRestaurant, cfg.ReviewerPool, 10, 16, restaurantFillers)
	d.Predicates = RestaurantPredicates()
	return d
}

// generateReviews populates d.Reviews for every entity. Sentence counts per
// review are uniform in [minSent, maxSent]; hotels get short reviews,
// restaurants long ones, reproducing Table 4's word-count gap.
func generateReviews(d *Dataset, rng *rand.Rand, meanReviews, reviewerPool, minSent, maxSent int, fillers []string) {
	zipf := rand.NewZipf(rng, 1.4, 4, uint64(reviewerPool-1))
	rid := 0
	for _, e := range d.Entities {
		n := int(float64(meanReviews) * (0.6 + rng.Float64()*0.8))
		if n < 1 {
			n = 1
		}
		e.ReviewCount = n
		for r := 0; r < n; r++ {
			text := generateReviewText(d, e, rng, minSent, maxSent, fillers)
			d.Reviews = append(d.Reviews, &Review{
				ID:       fmt.Sprintf("%s-rv%05d", e.ID, rid),
				EntityID: e.ID,
				Reviewer: fmt.Sprintf("rev%04d", zipf.Uint64()),
				Day:      rng.Intn(3650),
				Text:     text,
			})
			rid++
		}
	}
}

// generateReviewText builds one review: a shuffled mix of aspect-opinion
// sentences (sampled by each aspect's mention probability, with the level
// driven by the entity's latent quality), composite-concept mentions,
// out-of-schema flag mentions, and objective filler.
func generateReviewText(d *Dataset, e *Entity, rng *rand.Rand, minSent, maxSent int, fillers []string) string {
	target := minSent + rng.Intn(maxSent-minSent+1)
	var sentences []string

	// Composite concepts first: a review that calls the hotel "a perfect
	// romantic getaway" also gushes about the concept's proxy aspects in
	// the same breath — this within-review co-occurrence is exactly the
	// signal the §3.2 co-occurrence interpreter mines.
	forced := map[string]bool{}
	var compositeSentences []string
	for i := range d.Composites {
		c := &d.Composites[i]
		if c.Applies(e.Latent, e.LatentCat) && rng.Float64() < c.MentionProb {
			compositeSentences = append(compositeSentences, pick(rng, c.Phrases))
			for a := range c.Proxies {
				forced[a] = true
			}
			for a := range c.CatProxies {
				forced[a] = true
			}
		}
	}

	for i := range d.Aspects {
		a := &d.Aspects[i]
		if !forced[a.Name] && rng.Float64() > a.MentionProb {
			continue
		}
		var level int
		if a.Categorical {
			level = categoryIndex(a, e.LatentCat[a.Name])
			// Occasional off-category mention (reviewer noise).
			if rng.Float64() < 0.15 {
				level = rng.Intn(len(a.Levels))
			}
		} else {
			level = a.LevelFor(e.Latent[a.Name], rng)
		}
		phrase := pick(rng, a.Levels[level].Phrases)
		term := pick(rng, a.AspectTerms)
		sentences = append(sentences, opinionSentence(rng, term, phrase))
	}
	sentences = append(sentences, compositeSentences...)
	for i := range d.OOSFlags {
		f := &d.OOSFlags[i]
		if e.Flags[f.Name] && rng.Float64() < f.MentionProb {
			sentences = append(sentences, pick(rng, f.Phrases))
		}
	}
	for len(sentences) < target {
		sentences = append(sentences, pick(rng, fillers))
	}
	rng.Shuffle(len(sentences), func(i, j int) {
		sentences[i], sentences[j] = sentences[j], sentences[i]
	})
	if len(sentences) > maxSent+2 {
		sentences = sentences[:maxSent+2]
	}
	return strings.Join(sentences, ". ") + "."
}

// sentence templates; index 1 is the "direct opinion" form of §2
// ("very clean room") where the opinion precedes the aspect noun.
func opinionSentence(rng *rand.Rand, term, phrase string) string {
	switch rng.Intn(5) {
	case 0:
		return "The " + term + " was " + phrase
	case 1:
		return capitalize(phrase) + " " + term
	case 2:
		return "We found the " + term + " " + phrase
	case 3:
		return "The " + term + " is " + phrase
	default:
		return "I thought the " + term + " was " + phrase
	}
}

// Seeds derives the designer's seed sets (§4.2) from the domain spec:
// E = the aspect terms, P = four phrases per level (≈18 seeds per
// attribute, matching the paper's 277-seed hotel / 235-seed restaurant
// workload for 15 / 11 attributes).
func (d *Dataset) Seeds() []classify.SeedSet {
	out := make([]classify.SeedSet, 0, len(d.Aspects))
	for _, a := range d.Aspects {
		s := classify.SeedSet{Attribute: a.Name, Aspects: a.AspectTerms}
		for _, l := range a.Levels {
			for i, p := range l.Phrases {
				if i >= 4 {
					break
				}
				s.Opinions = append(s.Opinions, p)
			}
		}
		out = append(out, s)
	}
	return out
}

// TaggedSentences generates gold-labeled tagging data from the same
// templates as the reviews, for training and evaluating the extractor
// (Table 6). Tokens of the aspect term are AS, tokens of the opinion
// phrase OP, everything else O.
func (d *Dataset) TaggedSentences(n int, rng *rand.Rand) []extract.Sentence {
	fillers := hotelFillers
	if d.Domain == "restaurant" {
		fillers = restaurantFillers
	}
	return TaggedFromAspects(d.Aspects, fillers, n, rng)
}

// markSpan finds the first occurrence of sub in toks and tags it.
func markSpan(toks, sub []string, tags []extract.Tag, tag extract.Tag) {
	if len(sub) == 0 {
		return
	}
	for i := 0; i+len(sub) <= len(toks); i++ {
		match := true
		for j := range sub {
			if toks[i+j] != sub[j] {
				match = false
				break
			}
		}
		if match {
			for j := range sub {
				tags[i+j] = tag
			}
			return
		}
	}
}

// categoryFor picks a categorical label consistent with the latent quality
// (higher θ → later categories, matching how the rating attribute derives).
func categoryFor(a *AspectSpec, theta float64, rng *rand.Rand) string {
	return a.Levels[a.LevelFor(theta, rng)].Name
}

func categoryIndex(a *AspectSpec, cat string) int {
	for i, l := range a.Levels {
		if l.Name == cat {
			return i
		}
	}
	return 0
}

func entityName(rng *rand.Rand, adjs, nouns []string, i int) string {
	return fmt.Sprintf("%s %s %d", pick(rng, adjs), pick(rng, nouns), i)
}

func pick(rng *rand.Rand, items []string) string {
	return items[rng.Intn(len(items))]
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func clamp01(x float64) float64 { return clamp(x, 0, 1) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
