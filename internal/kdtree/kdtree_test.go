package kdtree

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/embedding"
	"repro/internal/textproc"
)

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, dim = 200, 5
	labels := make([]string, n)
	points := make([]embedding.Vector, n)
	for i := 0; i < n; i++ {
		labels[i] = fmt.Sprintf("p%03d", i)
		v := make(embedding.Vector, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		points[i] = v
	}
	tree := Build(labels, points)
	if tree.Size() != n {
		t.Fatalf("Size = %d, want %d", tree.Size(), n)
	}
	for trial := 0; trial < 50; trial++ {
		q := make(embedding.Vector, dim)
		for d := range q {
			q[d] = rng.NormFloat64() * 2
		}
		gotLabel, gotD := tree.Nearest(q)
		// brute force
		bestD, bestLabel := math.Inf(1), ""
		for i, p := range points {
			if d := math.Sqrt(sqDist(q, p)); d < bestD {
				bestD, bestLabel = d, labels[i]
			}
		}
		if math.Abs(gotD-bestD) > 1e-9 {
			t.Errorf("trial %d: kd dist %v != brute %v (labels %s vs %s)",
				trial, gotD, bestD, gotLabel, bestLabel)
		}
	}
}

func TestBuildEdgeCases(t *testing.T) {
	if Build(nil, nil) != nil {
		t.Error("empty build should return nil")
	}
	if Build([]string{"a"}, nil) != nil {
		t.Error("mismatched lengths should return nil")
	}
	var empty *Tree
	if empty.Size() != 0 {
		t.Error("nil tree size should be 0")
	}
	label, d := empty.Nearest(embedding.Vector{1})
	if label != "" || !math.IsInf(d, 1) {
		t.Error("nil tree Nearest should return empty/Inf")
	}
}

func TestNearestSinglePoint(t *testing.T) {
	tree := Build([]string{"only"}, []embedding.Vector{{1, 2, 3}})
	label, d := tree.Nearest(embedding.Vector{1, 2, 3})
	if label != "only" || d != 0 {
		t.Errorf("Nearest = (%q, %v)", label, d)
	}
}

func TestNearestDeterministicTies(t *testing.T) {
	// Two identical points: tie must break toward the smaller label.
	tree := Build([]string{"b", "a"}, []embedding.Vector{{0, 0}, {0, 0}})
	label, _ := tree.Nearest(embedding.Vector{0, 0})
	if label != "a" {
		t.Errorf("tie broke to %q, want a", label)
	}
}

// subModel builds a model for substitution-index tests where
// "really"≈"very" and phrases are over a tiny vocabulary.
func subModel(t *testing.T) *embedding.Model {
	t.Helper()
	stats := textproc.NewCorpusStats()
	words := []string{"very", "really", "clean", "dirty", "room", "quiet"}
	for _, w := range words {
		stats.AddDocument([]string{w})
	}
	vecs := map[string]embedding.Vector{
		"very":   {1, 0, 0, 0},
		"really": {0.97, 0.03, 0, 0},
		"clean":  {0, 1, 0, 0},
		"dirty":  {0, -1, 0.1, 0},
		"room":   {0, 0, 1, 0},
		"quiet":  {0, 0, 0, 1},
	}
	m, err := embedding.NewModelFromVectors(vecs, stats)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubstitutionExactHit(t *testing.T) {
	m := subModel(t)
	ix := NewSubstitutionIndex([]string{"very clean", "dirty room"}, m)
	match, fast := ix.Lookup("very clean")
	if match != "very clean" || !fast {
		t.Errorf("exact lookup = (%q, %v)", match, fast)
	}
	if ix.ExactHits() != 1 {
		t.Errorf("ExactHits = %d", ix.ExactHits())
	}
}

func TestSubstitutionFastPath(t *testing.T) {
	m := subModel(t)
	ix := NewSubstitutionIndex([]string{"very clean", "dirty room"}, m)
	// "really clean" → substitute really→very → "very clean" in dictionary.
	match, fast := ix.Lookup("really clean")
	if match != "very clean" {
		t.Errorf("match = %q, want 'very clean'", match)
	}
	if !fast {
		t.Error("substitution should avoid the tree search")
	}
	if ix.FastHits() != 1 || ix.SlowHits() != 0 {
		t.Errorf("counter state: fast=%d slow=%d", ix.FastHits(), ix.SlowHits())
	}
}

func TestSubstitutionSlowPathFallback(t *testing.T) {
	m := subModel(t)
	ix := NewSubstitutionIndex([]string{"very clean", "dirty room"}, m)
	// "quiet room": no single substitution produces a known phrase; the
	// k-d tree must resolve it to the nearest phrase rep.
	match, fast := ix.Lookup("quiet room")
	if fast {
		t.Error("expected slow path")
	}
	if match != "dirty room" { // shares the high-IDF "room" component
		t.Errorf("slow-path match = %q, want 'dirty room'", match)
	}
	if ix.SlowHits() != 1 {
		t.Errorf("SlowHits = %d", ix.SlowHits())
	}
}

func TestFastFraction(t *testing.T) {
	m := subModel(t)
	ix := NewSubstitutionIndex([]string{"very clean"}, m)
	if ix.FastFraction() != 0 {
		t.Error("initial FastFraction should be 0")
	}
	ix.Lookup("really clean") // fast
	ix.Lookup("quiet room")   // slow
	if f := ix.FastFraction(); f != 0.5 {
		t.Errorf("FastFraction = %v, want 0.5", f)
	}
}

func TestNormalizePhrase(t *testing.T) {
	norm, toks := normalizePhrase("has really clean Rooms")
	if norm != "clean really room" {
		t.Errorf("normalized = %q", norm)
	}
	if len(toks) != 3 {
		t.Errorf("tokens = %v", toks)
	}
	// Word order insensitive.
	n2, _ := normalizePhrase("rooms really clean")
	if n2 != norm {
		t.Errorf("order sensitivity: %q vs %q", n2, norm)
	}
	if got, _ := normalizePhrase(""); got != "" {
		t.Errorf("empty = %q", got)
	}
}

func TestSingular(t *testing.T) {
	cases := map[string]string{
		"rooms": "room", "beds": "bed", "class": "class", "is": "is",
		"was": "was", "bus": "bus", "views": "view",
	}
	for in, want := range cases {
		if got := singular(in); got != want {
			t.Errorf("singular(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLookupWordOrderAndPlural(t *testing.T) {
	m := subModel(t)
	// Stored variation in extraction form: aspect + opinion.
	ix := NewSubstitutionIndex([]string{"room very clean"}, m)
	match, fast := ix.Lookup("very clean rooms")
	if !fast || match != "room very clean" {
		t.Errorf("Lookup = (%q, %v), want normalized exact hit", match, fast)
	}
	// One substitution away after normalization.
	match, fast = ix.Lookup("really clean rooms")
	if !fast || match != "room very clean" {
		t.Errorf("substituted Lookup = (%q, %v)", match, fast)
	}
}

// TestSubstitutionConcurrentLookup hammers Lookup from many goroutines:
// the serving path interprets predicates concurrently, so the hit
// counters must be race-free and the matches stable (run under -race).
func TestSubstitutionConcurrentLookup(t *testing.T) {
	m := subModel(t)
	ix := NewSubstitutionIndex([]string{"very clean", "dirty room"}, m)
	queries := []string{"very clean", "really clean", "quiet room", "dirty room"}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i], _ = ix.Lookup(q)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := i % len(queries)
				if match, _ := ix.Lookup(queries[q]); match != want[q] {
					t.Errorf("Lookup(%q) = %q, want %q", queries[q], match, want[q])
				}
			}
		}()
	}
	wg.Wait()
	if total := ix.ExactHits() + ix.FastHits() + ix.SlowHits(); total != len(queries)+8*50 {
		t.Errorf("counters sum to %d, want %d", total, len(queries)+8*50)
	}
}
