// Package kdtree implements the similarity-search index of Appendix B:
// a k-d tree (Bentley 1975) over phrase-embedding vectors plus a
// word-substitution index.
//
// The observation behind the substitution index is that a short query
// predicate's most similar linguistic variation typically differs from it
// by at most one word ("really clean room" vs "very clean room"). For each
// word w in the linguistic domain the index precomputes the closest word
// w'; at query time each word of the query is tentatively replaced by its
// precomputed substitute and the result is looked up in a phrase
// dictionary. Only when no substitution hits does the engine pay for a
// full k-d tree similarity search.
package kdtree

import (
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/embedding"
	"repro/internal/textproc"
)

// Tree is a k-d tree over labeled vectors.
type Tree struct {
	root *node
	dim  int
}

type node struct {
	label       string
	point       embedding.Vector
	axis        int
	left, right *node
}

// item pairs a label and vector during construction.
type item struct {
	label string
	point embedding.Vector
}

// Build constructs a balanced k-d tree from labels and their vectors.
// Labels and points must be parallel slices of equal length; Build returns
// nil for empty input.
func Build(labels []string, points []embedding.Vector) *Tree {
	if len(labels) == 0 || len(labels) != len(points) {
		return nil
	}
	items := make([]item, len(labels))
	for i := range labels {
		items[i] = item{label: labels[i], point: points[i]}
	}
	dim := len(points[0])
	t := &Tree{dim: dim}
	t.root = build(items, 0, dim)
	return t
}

func build(items []item, depth, dim int) *node {
	if len(items) == 0 {
		return nil
	}
	axis := depth % dim
	sort.Slice(items, func(i, j int) bool {
		if items[i].point[axis] != items[j].point[axis] {
			return items[i].point[axis] < items[j].point[axis]
		}
		return items[i].label < items[j].label // determinism
	})
	mid := len(items) / 2
	return &node{
		label: items[mid].label,
		point: items[mid].point,
		axis:  axis,
		left:  build(items[:mid], depth+1, dim),
		right: build(items[mid+1:], depth+1, dim),
	}
}

// Size returns the number of points in the tree.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	var count func(*node) int
	count = func(n *node) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.left) + count(n.right)
	}
	return count(t.root)
}

// Nearest returns the label and Euclidean distance of the point nearest to
// q, or ("", +Inf) on an empty tree.
func (t *Tree) Nearest(q embedding.Vector) (string, float64) {
	if t == nil || t.root == nil {
		return "", math.Inf(1)
	}
	best := struct {
		label string
		d2    float64
	}{"", math.Inf(1)}
	var search func(*node)
	search = func(n *node) {
		if n == nil {
			return
		}
		d2 := sqDist(q, n.point)
		if d2 < best.d2 || (d2 == best.d2 && n.label < best.label) {
			best.label, best.d2 = n.label, d2
		}
		diff := q[n.axis] - n.point[n.axis]
		near, far := n.left, n.right
		if diff > 0 {
			near, far = n.right, n.left
		}
		search(near)
		if diff*diff <= best.d2 {
			search(far)
		}
	}
	search(t.root)
	return best.label, math.Sqrt(best.d2)
}

func sqDist(a, b embedding.Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SubstitutionIndex implements the Appendix B fast path. It holds, for each
// word seen in a linguistic domain, the precomputed closest other word
// under the IDF-weighted embedding metric, together with a dictionary of
// known phrases and a k-d tree for the slow path.
//
// Phrases are matched under a normal form — stopword-stripped, naively
// singularized, alphabetically sorted content words — so that "has really
// clean rooms" is one word substitution (really → very) away from the
// stored variation "room very clean".
type SubstitutionIndex struct {
	substitute map[string]string
	// phrases maps normalized phrase → original phrase.
	phrases map[string]string
	tree    *Tree
	// treeLabels records the tree's phrase labels in construction order;
	// the tree's points are model.Rep of these labels, which is what lets
	// the serialization seam skip the tree itself.
	treeLabels []string
	model      *embedding.Model

	// Stats counts fast-path vs slow-path lookups, reported in the
	// Appendix B experiment. Updated atomically: Lookup is called from
	// concurrent query-serving goroutines. Read via the *Hits accessors
	// (or FastFraction) for a consistent snapshot.
	fastHits  atomic.Int64
	slowHits  atomic.Int64
	exactHits atomic.Int64
}

// FastHits counts lookups resolved by word substitution or dropping.
func (ix *SubstitutionIndex) FastHits() int { return int(ix.fastHits.Load()) }

// SlowHits counts lookups that fell back to the k-d tree search.
func (ix *SubstitutionIndex) SlowHits() int { return int(ix.slowHits.Load()) }

// ExactHits counts lookups resolved by an exact normalized-form hit.
func (ix *SubstitutionIndex) ExactHits() int { return int(ix.exactHits.Load()) }

// NewSubstitutionIndex builds the index over the phrases of a linguistic
// domain. The model supplies vectors and IDF weights.
func NewSubstitutionIndex(phrases []string, model *embedding.Model) *SubstitutionIndex {
	ix := &SubstitutionIndex{
		substitute: make(map[string]string),
		phrases:    make(map[string]string, len(phrases)),
		model:      model,
	}
	wordSet := map[string]bool{}
	var labels []string
	var points []embedding.Vector
	for _, p := range phrases {
		norm, normToks := normalizePhrase(p)
		if _, dup := ix.phrases[norm]; !dup {
			ix.phrases[norm] = p
		}
		labels = append(labels, p)
		points = append(points, model.Rep(p))
		for _, w := range normToks {
			wordSet[w] = true
		}
	}
	ix.tree = Build(labels, points)
	ix.treeLabels = labels

	// Precompute, for every vocabulary word w, the closest domain word w'
	// by |w2v(w)·idf(w) − w2v(w')·idf(w')| (Appendix B's metric). Query
	// words are drawn from the whole vocabulary ("really"), while
	// substitutes must come from the linguistic domain ("very") for the
	// substituted phrase to have a chance of a dictionary hit.
	domainWords := make([]string, 0, len(wordSet))
	for w := range wordSet {
		domainWords = append(domainWords, w)
	}
	sort.Strings(domainWords)
	weight := func(w string) (embedding.Vector, bool) {
		v := model.Vec(w)
		if v == nil {
			return nil, false
		}
		wv := v.Clone()
		wv.Scale(model.IDF(w))
		return wv, true
	}
	domainVecs := make(map[string]embedding.Vector, len(domainWords))
	for _, w := range domainWords {
		if wv, ok := weight(w); ok {
			domainVecs[w] = wv
		}
	}
	allWords := model.Vocab()
	sort.Strings(allWords)
	for _, w := range allWords {
		wv, ok := weight(w)
		if !ok {
			continue
		}
		bestW, bestD := "", math.Inf(1)
		for _, o := range domainWords {
			if o == w {
				continue
			}
			ov, ok := domainVecs[o]
			if !ok {
				continue
			}
			if d := sqDist(wv, ov); d < bestD {
				bestW, bestD = o, d
			}
		}
		if bestW != "" {
			ix.substitute[w] = bestW
		}
	}
	return ix
}

// Lookup resolves a query phrase to its most similar known phrase.
// It returns the matched phrase and whether the expensive k-d tree search
// was avoided (exact normalized hit or single-word substitution hit).
func (ix *SubstitutionIndex) Lookup(query string) (match string, fast bool) {
	norm, toks := normalizePhrase(query)
	if orig, ok := ix.phrases[norm]; ok {
		ix.exactHits.Add(1)
		return orig, true
	}
	// Try replacing each word with its precomputed substitute.
	for i, w := range toks {
		sub, ok := ix.substitute[w]
		if !ok {
			continue
		}
		if orig, ok := ix.phrases[joinReplaceSorted(toks, i, sub)]; ok {
			ix.fastHits.Add(1)
			return orig, true
		}
	}
	// Try dropping one word: queries often add a verb or noun the stored
	// variation lacks ("HAS firm beds" vs "beds firm").
	for i := range toks {
		if orig, ok := ix.phrases[joinDropSorted(toks, i)]; ok {
			ix.fastHits.Add(1)
			return orig, true
		}
		// Drop + substitute another word.
		for j, w := range toks {
			if j == i {
				continue
			}
			if sub, ok := ix.substitute[w]; ok {
				dropped := append(append([]string{}, toks[:i]...), toks[i+1:]...)
				k := j
				if j > i {
					k = j - 1
				}
				if orig, ok := ix.phrases[joinReplaceSorted(dropped, k, sub)]; ok {
					ix.fastHits.Add(1)
					return orig, true
				}
			}
		}
	}
	// Slow path: full k-d tree similarity search.
	ix.slowHits.Add(1)
	label, _ := ix.tree.Nearest(ix.model.Rep(query))
	return label, false
}

// normalizePhrase maps a phrase to its normal form: lowercase tokens,
// stopwords removed, naive singularization, sorted. Returns the joined
// form and the token list.
func normalizePhrase(p string) (string, []string) {
	raw := textproc.Tokenize(p)
	toks := make([]string, 0, len(raw))
	for _, t := range raw {
		if textproc.IsStopword(t) {
			continue
		}
		toks = append(toks, singular(t))
	}
	sort.Strings(toks)
	return strings.Join(toks, " "), toks
}

// singular strips a plural 's' from words longer than 3 runes ("rooms" →
// "room") while leaving short words and double-s endings alone.
func singular(w string) string {
	if len(w) > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") {
		return w[:len(w)-1]
	}
	return w
}

// joinReplaceSorted substitutes toks[i] with sub, re-sorts, and joins.
func joinReplaceSorted(toks []string, i int, sub string) string {
	out := append([]string{}, toks...)
	out[i] = singular(sub)
	sort.Strings(out)
	return strings.Join(out, " ")
}

// joinDropSorted removes toks[i] and joins the (already sorted) rest.
func joinDropSorted(toks []string, i int) string {
	out := append(append([]string{}, toks[:i]...), toks[i+1:]...)
	return strings.Join(out, " ")
}

// SubstitutionIndexState is the exported serialization seam for
// SubstitutionIndex: the precomputed word-substitution table, the
// normalized-phrase dictionary, and the original phrase labels. The k-d
// tree itself is not serialized — its points are model.Rep of the labels,
// so NewSubstitutionIndexFromState rebuilds it deterministically, which is
// far cheaper than the nearest-word precomputation the stored Substitute
// table avoids. Maps/slices are shared with the live index, not copied —
// treat a state taken from a live index as read-only. The fast/slow hit
// counters are runtime telemetry and reset to zero on reconstruction.
type SubstitutionIndexState struct {
	Substitute map[string]string
	Phrases    map[string]string
	Labels     []string
}

// State exports the index for serialization.
func (ix *SubstitutionIndex) State() SubstitutionIndexState {
	return SubstitutionIndexState{Substitute: ix.substitute, Phrases: ix.phrases, Labels: ix.treeLabels}
}

// NewSubstitutionIndexFromState reconstructs a substitution index from
// exported state plus the embedding model that supplies phrase vectors.
// Lookup results are identical to the original index's: the substitution
// table and phrase dictionary are restored verbatim and the k-d tree is
// rebuilt over the same labeled points.
func NewSubstitutionIndexFromState(st SubstitutionIndexState, model *embedding.Model) *SubstitutionIndex {
	ix := &SubstitutionIndex{
		substitute: st.Substitute,
		phrases:    st.Phrases,
		treeLabels: st.Labels,
		model:      model,
	}
	if ix.substitute == nil {
		ix.substitute = map[string]string{}
	}
	if ix.phrases == nil {
		ix.phrases = map[string]string{}
	}
	points := make([]embedding.Vector, len(st.Labels))
	for i, p := range st.Labels {
		points[i] = model.Rep(p)
	}
	ix.tree = Build(st.Labels, points)
	return ix
}

// FastFraction returns the fraction of non-exact lookups resolved without
// a tree search (the paper reports 54.5%).
func (ix *SubstitutionIndex) FastFraction() float64 {
	fast, slow := ix.fastHits.Load(), ix.slowHits.Load()
	if fast+slow == 0 {
		return 0
	}
	return float64(fast) / float64(fast+slow)
}
