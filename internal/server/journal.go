package server

// Journal introspection surface: the node-local half of the fleet
// control plane (internal/fleet). Every shard of a routed fleet journals
// every replicated write in one fleet-wide order, so "last applied
// sequence + prefix hash" identifies exactly how far this node got and
// whether it is a pure prefix of a healthier peer, and /journal/records
// streams the tail a repair pass backfills through the ordinary
// replica-write path (POST /reviews). Both endpoints run under the
// reader half of the server's lock, so they observe a consistent journal
// — appends hold the writer half.

import (
	"errors"
	"net/http"
	"strconv"

	"repro/internal/journal"
)

// JournalStatusResponse is the GET /journal/status payload.
type JournalStatusResponse struct {
	// Journal is true when this node journals its writes.
	Journal bool `json:"journal"`
	// LastAppliedSeq is the sequence of the last review applied to the
	// serving database.
	LastAppliedSeq uint64 `json:"last_applied_seq"`
	// LastSeq, Records and Segments describe the on-disk journal; LastSeq
	// can exceed LastAppliedSeq only in the narrow window where an append
	// succeeded and the apply failed.
	LastSeq  uint64 `json:"last_seq"`
	Records  int    `json:"records"`
	Segments int    `json:"segments"`
	// PrefixHash is the SHA-256 chain over records 1..HashSeq. Without an
	// ?at= bound, HashSeq == LastSeq and the hash covers the whole
	// journal; with ?at=K it covers min(K, LastSeq) — how a repair pass
	// asks a longer journal "what did your first K records look like".
	PrefixHash string `json:"prefix_hash"`
	HashSeq    uint64 `json:"hash_seq"`
}

// JournalRecordJSON is one journal record on the wire.
type JournalRecordJSON struct {
	Seq      uint64 `json:"seq"`
	ID       string `json:"id"`
	EntityID string `json:"entity"`
	Reviewer string `json:"reviewer,omitempty"`
	Day      int    `json:"day"`
	Text     string `json:"text"`
}

// JournalRecordsResponse is the GET /journal/records payload: up to
// `limit` records starting at ?from, in sequence order.
type JournalRecordsResponse struct {
	Records []JournalRecordJSON `json:"records"`
	// LastSeq is the journal's final sequence; More is true when records
	// past this page remain.
	LastSeq uint64 `json:"last_seq"`
	More    bool   `json:"more,omitempty"`
}

// journalDir returns the configured journal directory, or "" when the
// node has no journal introspection surface.
func (s *Server) journalDir() string {
	if s.opts.Ingest == nil {
		return ""
	}
	return s.opts.Ingest.JournalDir
}

// prefixHashes returns the journal's in-memory prefix-hash chain,
// building it from one disk scan on first use. nil when the node has no
// journal, the initial scan failed, or the chain was dropped after a
// desync — every caller falls back to on-disk scans in that case.
// Safe under the read lock: the sync.Once serializes construction and
// the chain carries its own mutex.
func (s *Server) prefixHashes() *journal.PrefixHashes {
	s.phInit.Do(func() {
		dir := s.journalDir()
		if dir == "" {
			return
		}
		if ph, err := journal.NewPrefixHashes(dir); err == nil {
			s.ph.Store(ph)
		}
	})
	return s.ph.Load()
}

// journalHealth builds the /healthz journal-position report. Callers hold
// at least the reader lock.
func (s *Server) journalHealth() *JournalHealth {
	dir := s.journalDir()
	if dir == "" {
		return nil
	}
	segments := 0
	if _, n, err := journal.TailInfo(dir); err == nil {
		segments = n
	}
	return &JournalHealth{LastAppliedSeq: s.appliedSeq, Segments: segments}
}

func (s *Server) handleJournalStatus(w http.ResponseWriter, r *http.Request) {
	dir := s.journalDir()
	if dir == "" {
		WriteError(w, http.StatusNotFound, "this node has no journal")
		return
	}
	var at uint64
	if as := r.URL.Query().Get("at"); as != "" {
		v, err := strconv.ParseUint(as, 10, 64)
		if err != nil {
			WriteError(w, http.StatusBadRequest, "bad at: %v", err)
			return
		}
		at = v
	}
	// Fast path: answer every hash probe from the in-memory chain —
	// O(1) per probe instead of a segment rescan, which is what keeps
	// the fleet repair loop's heal-before-write cheap. Segment count
	// still comes from the bounded final-segment probe.
	if ph := s.prefixHashes(); ph != nil {
		hash, last := ph.Last()
		segments := 0
		if _, n, err := journal.TailInfo(dir); err == nil {
			segments = n
		}
		resp := JournalStatusResponse{
			Journal:        true,
			LastAppliedSeq: s.appliedSeq,
			LastSeq:        last,
			Records:        int(last),
			Segments:       segments,
			PrefixHash:     hash,
			HashSeq:        last,
		}
		if at > 0 && at < last {
			resp.PrefixHash, resp.HashSeq = ph.At(at)
		}
		WriteJSON(w, http.StatusOK, resp)
		return
	}
	full, err := journal.StatDir(dir)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, "journal stat: %v", err)
		return
	}
	resp := JournalStatusResponse{
		Journal:        true,
		LastAppliedSeq: s.appliedSeq,
		LastSeq:        full.LastSeq,
		Records:        full.Records,
		Segments:       full.Segments,
		PrefixHash:     full.PrefixHash,
		HashSeq:        full.LastSeq,
	}
	if at > 0 && at < full.LastSeq {
		hash, hashSeq, err := journal.PrefixHashAt(dir, at)
		if err != nil {
			WriteError(w, http.StatusInternalServerError, "journal hash: %v", err)
			return
		}
		resp.PrefixHash, resp.HashSeq = hash, hashSeq
	}
	WriteJSON(w, http.StatusOK, resp)
}

// DefaultJournalRecordsLimit sizes one /journal/records page when the
// request does not ask for a limit; MaxJournalRecordsLimit bounds what a
// request may ask for — the page is materialized in memory under the
// read lock, so the client must not be able to demand the whole journal
// in one response.
const (
	DefaultJournalRecordsLimit = 512
	MaxJournalRecordsLimit     = 4096
)

func (s *Server) handleJournalRecords(w http.ResponseWriter, r *http.Request) {
	dir := s.journalDir()
	if dir == "" {
		WriteError(w, http.StatusNotFound, "this node has no journal")
		return
	}
	from := uint64(1)
	if fs := r.URL.Query().Get("from"); fs != "" {
		v, err := strconv.ParseUint(fs, 10, 64)
		if err != nil || v == 0 {
			WriteError(w, http.StatusBadRequest, "bad from: must be a sequence number >= 1")
			return
		}
		from = v
	}
	limit := DefaultJournalRecordsLimit
	if ls := r.URL.Query().Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v <= 0 {
			WriteError(w, http.StatusBadRequest, "bad limit")
			return
		}
		if v > MaxJournalRecordsLimit {
			v = MaxJournalRecordsLimit // clamp; pagers just take more pages
		}
		limit = v
	}
	resp := JournalRecordsResponse{Records: []JournalRecordJSON{}}
	stats, err := journal.ReplayFrom(dir, from, func(seq uint64, rv journal.Review) error {
		if len(resp.Records) >= limit {
			resp.More = true
			return errPageFull
		}
		resp.Records = append(resp.Records, JournalRecordJSON{
			Seq: seq, ID: rv.ID, EntityID: rv.EntityID,
			Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
		})
		return nil
	})
	if err != nil && !errors.Is(err, errPageFull) {
		WriteError(w, http.StatusInternalServerError, "journal read: %v", err)
		return
	}
	resp.LastSeq = stats.LastSeq
	if resp.More || len(resp.Records) == 0 {
		// The page stopped early (or delivered nothing), so the scan never
		// reached the journal's end; report the real end — from the cheap
		// final-segment probe, not a full rescan, so paged backfills stay
		// linear in the journal — so pagers know how far they still have
		// to go.
		if last, _, err := journal.TailInfo(dir); err == nil {
			resp.LastSeq = last
		}
	}
	WriteJSON(w, http.StatusOK, resp)
}

// errPageFull stops a records scan once the page limit is reached.
var errPageFull = errors.New("server: journal records page full")
