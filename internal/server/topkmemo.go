package server

// Per-shard /topk fragment memoization. A sharded /topk scatters the
// same predicate set to every shard and merges the per-shard fragments;
// the fragments are partition-stable — a shard's top-k for a predicate
// set depends only on that shard's entities — so between writes the
// same (predicates, k) request recomputes the same Threshold-Algorithm
// answer. The memo caches those fragments under deterministic LRU
// eviction and drops everything on any applied write (interpretation
// state is corpus-global, so a single review can move any score; the
// wholesale drop is what keeps the byte-identity contract trivially
// intact). Results are returned by reference and never mutated after
// insertion.

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/lru"
	"repro/internal/obs"
)

// DefaultTopKMemoEntries bounds the per-shard fragment memo.
const DefaultTopKMemoEntries = 4096

// topkFragment is one memoized /topk answer.
type topkFragment struct {
	rows  []core.ResultRow
	stats core.TopKStats
}

// topkMemo is safe for concurrent use: /topk readers run concurrently
// under the server's read lock, so the memo carries its own mutex.
type topkMemo struct {
	mu           sync.Mutex
	cache        *lru.Cache[string, topkFragment]
	hits, misses *obs.Counter
}

func newTopKMemo(hits, misses *obs.Counter) *topkMemo {
	return &topkMemo{cache: lru.New[string, topkFragment](DefaultTopKMemoEntries), hits: hits, misses: misses}
}

// topkKey canonicalizes a request; 0x1f never appears in predicates or
// rendered integers, so the key is injective.
func topkKey(preds []string, k int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(k))
	for _, p := range preds {
		b.WriteByte(0x1f)
		b.WriteString(p)
	}
	return b.String()
}

func (m *topkMemo) get(key string) (topkFragment, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cache.Get(key)
	if ok {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
	return f, ok
}

func (m *topkMemo) put(key string, f topkFragment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache.Put(key, f)
}

// invalidate drops every fragment; called after any review is applied.
func (m *topkMemo) invalidate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache.Clear()
}
