package server_test

// Tests of the journal introspection surface: /journal/status,
// /journal/records and the /healthz journal position — the node-local
// half of the anti-entropy control plane.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/snapshot"
)

// journaledServer clones the shared fixture database (snapshot round
// trip, so the package fixture stays unmutated) and serves it with a
// fresh journal.
func journaledServer(t *testing.T) (*core.DB, string, *httptest.Server) {
	t.Helper()
	_, db, _ := testServer(t)
	dir := t.TempDir()
	snap := filepath.Join(dir, "clone.snap")
	if _, err := snapshot.Save(snap, db); err != nil {
		t.Fatal(err)
	}
	clone, _, err := snapshot.Load(snap)
	if err != nil {
		t.Fatal(err)
	}
	jdir := filepath.Join(dir, "wal")
	j, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	srv := httptest.NewServer(server.New(clone, server.Options{
		Ingest: &server.IngestOptions{
			JournalDir: jdir,
			Append: func(rv core.ReviewData) (uint64, error) {
				return j.Append(journal.Review{
					ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
				})
			},
		},
	}))
	t.Cleanup(srv.Close)
	return clone, jdir, srv
}

func postReview(t *testing.T, url string, req server.ReviewRequest) server.ReviewResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/reviews", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack server.ReviewResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /reviews: status %d (%v)", resp.StatusCode, err)
	}
	return ack
}

func TestJournalStatusAndRecords(t *testing.T) {
	db, _, srv := journaledServer(t)
	entity := db.EntityIDs()[0]
	for i := 0; i < 3; i++ {
		ack := postReview(t, srv.URL, server.ReviewRequest{
			ID: fmt.Sprintf("jrn-%d", i), EntityID: entity, Reviewer: "op", Day: i,
			Text: "The room was spotless and the staff was friendly.",
		})
		if ack.Seq != uint64(i+1) {
			t.Fatalf("write %d acked seq %d", i, ack.Seq)
		}
	}

	var st server.JournalStatusResponse
	getJSON(t, srv.URL+"/journal/status", http.StatusOK, &st)
	if !st.Journal || st.LastSeq != 3 || st.Records != 3 || st.LastAppliedSeq != 3 {
		t.Fatalf("status = %+v, want 3 records applied", st)
	}
	if st.PrefixHash == "" || st.HashSeq != 3 || st.Segments < 1 {
		t.Fatalf("status = %+v, want full prefix hash", st)
	}

	// ?at=2 hashes the 2-record prefix — different hash, hash_seq 2, but
	// the same journal totals.
	var at2 server.JournalStatusResponse
	getJSON(t, srv.URL+"/journal/status?at=2", http.StatusOK, &at2)
	if at2.HashSeq != 2 || at2.PrefixHash == st.PrefixHash || at2.LastSeq != 3 {
		t.Fatalf("status?at=2 = %+v", at2)
	}

	// /healthz exposes the same position.
	var h server.HealthResponse
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &h)
	if h.Journal == nil || h.Journal.LastAppliedSeq != 3 || h.Journal.Segments < 1 {
		t.Fatalf("healthz journal = %+v", h.Journal)
	}

	// Records from seq 2: exactly records 2 and 3 in order.
	var recs server.JournalRecordsResponse
	getJSON(t, srv.URL+"/journal/records?from=2", http.StatusOK, &recs)
	if len(recs.Records) != 2 || recs.More || recs.LastSeq != 3 {
		t.Fatalf("records from 2 = %+v", recs)
	}
	for i, r := range recs.Records {
		if r.Seq != uint64(i+2) || r.ID != fmt.Sprintf("jrn-%d", i+1) || r.EntityID != entity {
			t.Fatalf("record %d = %+v", i, r)
		}
	}

	// Paging: limit=1 reports more work and the journal's real end.
	getJSON(t, srv.URL+"/journal/records?from=1&limit=1", http.StatusOK, &recs)
	if len(recs.Records) != 1 || !recs.More || recs.LastSeq != 3 {
		t.Fatalf("paged records = %+v", recs)
	}

	// Parameter validation.
	getJSON(t, srv.URL+"/journal/records?from=0", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/journal/records?limit=-2", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/journal/status?at=x", http.StatusBadRequest, nil)
}

func TestJournalEndpointsWithoutJournal(t *testing.T) {
	_, _, srv := testServer(t) // read-only fixture server, no journal
	getJSON(t, srv.URL+"/journal/status", http.StatusNotFound, nil)
	getJSON(t, srv.URL+"/journal/records", http.StatusNotFound, nil)
	var h server.HealthResponse
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &h)
	if h.Journal != nil {
		t.Fatalf("unjournaled healthz reports journal %+v", h.Journal)
	}
}
