package server_test

// Tracing through the shard server: the group-commit pipeline's stage
// spans (prepare, wait with leader/follower attribution, journal,
// apply) land in the collector with batch accounting, and a client-sent
// X-Opinedb-Trace header makes the server span join the client's trace.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

type batchFn = func([]core.ReviewData) (uint64, error)

// tracedIngestServer clones the shared fixture (snapshot round trip, so
// the package fixture stays unmutated) and serves it with a journal, the
// group-commit pipeline's shared-fsync AppendBatch — optionally wrapped
// by the caller, e.g. to gate a leader mid-journal — and a sample-
// everything trace collector.
func tracedIngestServer(t *testing.T, wrapBatch func(batchFn) batchFn) (*core.DB, *trace.Collector, *httptest.Server) {
	t.Helper()
	_, db, _ := testServer(t)
	dir := t.TempDir()
	snap := filepath.Join(dir, "clone.snap")
	if _, err := snapshot.Save(snap, db); err != nil {
		t.Fatal(err)
	}
	clone, _, err := snapshot.Load(snap)
	if err != nil {
		t.Fatal(err)
	}
	jdir := filepath.Join(dir, "wal")
	j, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	appendBatch := func(rvs []core.ReviewData) (uint64, error) {
		recs := make([]journal.Review, len(rvs))
		for i, rv := range rvs {
			recs[i] = journal.Review{
				ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
			}
		}
		return j.AppendBatch(recs)
	}
	if wrapBatch != nil {
		appendBatch = wrapBatch(appendBatch)
	}
	col := trace.New(trace.Options{SampleRate: 1, SlowCutoff: time.Hour, Capacity: 4096, Seed: 1})
	srv := httptest.NewServer(server.New(clone, server.Options{
		Trace: col,
		Ingest: &server.IngestOptions{
			JournalDir: jdir,
			Append: func(rv core.ReviewData) (uint64, error) {
				return j.Append(journal.Review{
					ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
				})
			},
			AppendBatch: appendBatch,
		},
	}))
	t.Cleanup(srv.Close)
	return clone, col, srv
}

func spanAttr(s trace.SpanJSON, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestGroupCommitSpans pins the pipeline's trace shape with a
// deterministic batch: the first write leads alone and blocks inside its
// journal fsync, two more writes stage behind it and commit together in
// the handoff batch. The initial leader's wait span says role=leader; a
// write that rode another's fsync says role=follower with batch_size 2
// and its leader's trace id; and that leader's trace shows the journal
// and apply stages with the same batch accounting.
func TestGroupCommitSpans(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	first := true
	db, col, srv := tracedIngestServer(t, func(inner batchFn) batchFn {
		return func(rvs []core.ReviewData) (uint64, error) {
			// Single-threaded by construction: only the one in-flight
			// leader calls AppendBatch.
			if first {
				first = false
				close(entered)
				<-release
			}
			return inner(rvs)
		}
	})
	entity := db.EntityIDs()[0]

	post := func(id string) chan error {
		errc := make(chan error, 1)
		go func() {
			body, _ := json.Marshal(server.ReviewRequest{
				ID: id, EntityID: entity, Reviewer: "op", Day: 1,
				Text: "The room was spotless and the staff was friendly.",
			})
			resp, err := http.Post(srv.URL+"/reviews", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = io.ErrUnexpectedEOF
				}
			}
			errc <- err
		}()
		return errc
	}

	// The first write drains the empty queue alone and blocks mid-fsync.
	aErr := post("gc-a")
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached AppendBatch")
	}
	// Two more writes stage behind the blocked leader; the queue-depth
	// gauge reaching 2 is the signal both are committed to the next batch.
	bErr, cErr := post("gc-b"), post("gc-c")
	waitForGauge(t, srv.URL, server.MetricCommitQueueDepth, "2")
	close(release)
	for _, errc := range []chan error{aErr, bErr, cErr} {
		if err := <-errc; err != nil {
			t.Fatalf("write failed: %v", err)
		}
	}

	// The root span ends a hair after the response is written; poll
	// briefly so the assertions never race the handler teardown.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if follower := findSharedBatchFollower(col); follower != nil {
			assertGroupCommitTraces(t, col, *follower)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no follower span for the shared batch in %+v", col.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// findSharedBatchFollower returns a finished commit.wait span for a
// write that rode a 2-write batch led by a DIFFERENT request — the
// handoff leader also reports role=follower (it inherited, not won,
// leadership at stage time) but names its own trace as leader.
func findSharedBatchFollower(col *trace.Collector) *trace.SpanJSON {
	for _, tr := range col.Snapshot() {
		for _, s := range tr.Spans {
			if s.Name == "commit.wait" && !s.InFlight &&
				spanAttr(s, "role") == "follower" &&
				spanAttr(s, "batch_size") == "2" &&
				spanAttr(s, "leader_trace") != "" &&
				spanAttr(s, "leader_trace") != tr.TraceID {
				cp := s
				return &cp
			}
		}
	}
	return nil
}

func assertGroupCommitTraces(t *testing.T, col *trace.Collector, follower trace.SpanJSON) {
	t.Helper()
	// The gated first write led its own batch of one.
	foundLeaderRole := false
	for _, tr := range col.Snapshot() {
		for _, s := range tr.Spans {
			if s.Name == "commit.wait" && spanAttr(s, "role") == "leader" {
				foundLeaderRole = true
				if got := spanAttr(s, "batch_size"); got != "1" {
					t.Errorf("initial leader batch_size = %q, want 1 (it drained alone)", got)
				}
			}
		}
	}
	if !foundLeaderRole {
		t.Error("no commit.wait span with role=leader")
	}

	// The batch leader the follower names has the full pipeline trace.
	leader, ok := col.Get(spanAttr(follower, "leader_trace"))
	if !ok {
		t.Fatalf("leader trace %s not in the collector", spanAttr(follower, "leader_trace"))
	}
	stages := map[string]trace.SpanJSON{}
	for _, s := range leader.Spans {
		stages[s.Name] = s
	}
	for _, name := range []string{"server.reviews", "commit.prepare", "commit.wait", "commit.journal", "commit.apply"} {
		if _, found := stages[name]; !found {
			t.Fatalf("leader trace missing %s: %+v", name, leader.Spans)
		}
	}
	if got := spanAttr(stages["commit.journal"], "batch_size"); got != "2" {
		t.Errorf("commit.journal batch_size = %q, want 2 (shared fsync)", got)
	}
	if got := spanAttr(stages["commit.apply"], "batch_size"); got != "2" {
		t.Errorf("commit.apply batch_size = %q, want 2", got)
	}
}

// waitForGauge polls /metrics until the series reports the wanted value.
func waitForGauge(t *testing.T, base, series, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, line := range strings.Split(string(body), "\n") {
			if line == series+" "+want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %s:\n%s", series, want, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClientTraceHeaderJoinsServerSpan: a request arriving with
// X-Opinedb-Trace continues the client's trace — the server span lands
// under the client's id, queryable at /debug/traces?id=.
func TestClientTraceHeaderJoinsServerSpan(t *testing.T) {
	_, col, srv := tracedIngestServer(t, nil)

	const clientTrace = "feedfacecafef00d"
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.TraceHeader, clientTrace)
	req.Header.Set(trace.SpanHeader, "0123456789abcdef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	tr, ok := col.Get(clientTrace)
	if !ok {
		t.Fatalf("client trace id never reached the collector: %+v", col.Snapshot())
	}
	found := false
	for _, s := range tr.Spans {
		if s.Name == "server.healthz" && s.ParentID == "0123456789abcdef" {
			found = true
		}
	}
	if !found {
		t.Fatalf("server span not parented under the client's span: %+v", tr.Spans)
	}

	// The debug surface resolves the same id.
	var page struct {
		Traces []trace.TraceJSON `json:"traces"`
	}
	getJSON(t, srv.URL+"/debug/traces?id="+clientTrace, http.StatusOK, &page)
	if len(page.Traces) != 1 || page.Traces[0].TraceID != clientTrace {
		t.Fatalf("/debug/traces?id= returned %+v", page.Traces)
	}
}
