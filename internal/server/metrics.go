package server

// Shard-server observability: every request, engine stage, and journal
// interaction feeds a dependency-free obs.Registry that GET /metrics
// renders in the Prometheus text format. The registry is injectable
// (Options.Metrics) so a single-process fleet — the daemon's -router
// role, the harness's in-process deployments — can share one registry
// across the front door and every shard; label sets keep the series
// distinct. Instrument updates are single atomic ops, so the request
// path cost is negligible next to a query.

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Metric family names served by GET /metrics; the router (internal/
// router) adds its own opinedb_router_* families on top. Exported so
// operators, tests and the load harness address series by one shared
// vocabulary.
const (
	// MetricRequestSeconds: per-endpoint wall time, lock wait included —
	// labeled {endpoint="query"|"topk"|...}.
	MetricRequestSeconds = "opinedb_http_request_seconds"
	// MetricRequestsTotal: per-endpoint request counter.
	MetricRequestsTotal = "opinedb_http_requests_total"
	// MetricStageSeconds: engine/journal stage latency — labeled
	// {stage="engine_query"|"engine_topk"|"apply"|"journal_append"}.
	MetricStageSeconds = "opinedb_stage_seconds"
	// MetricFsyncSeconds: journal fsync latency (fed through
	// journal.Options.SyncObserver; see FsyncObserver).
	MetricFsyncSeconds = "opinedb_journal_fsync_seconds"
	// MetricTopKMemoHits / MetricTopKMemoMisses: /topk fragment memo
	// effectiveness.
	MetricTopKMemoHits   = "opinedb_topk_memo_hits_total"
	MetricTopKMemoMisses = "opinedb_topk_memo_misses_total"
	// MetricAppliedSeq: journal sequence of the last applied review.
	MetricAppliedSeq = "opinedb_journal_last_applied_seq"
	// MetricCommitBatchSize: how many staged writes each group commit
	// drained — 1 under light load, rising toward the queue depth as
	// concurrent writers pile up behind one fsync.
	MetricCommitBatchSize = "opinedb_commit_batch_size"
	// MetricCommitWaitSeconds: how long a write waited from staging until
	// its commit completed (fsync shared, delta applied, waiter woken).
	MetricCommitWaitSeconds = "opinedb_commit_wait_seconds"
	// MetricCommitQueueDepth: staged writes awaiting the next group
	// commit, sampled at every stage/drain transition.
	MetricCommitQueueDepth = "opinedb_commit_queue_depth"
	// MetricCommitBackpressureTotal: writes refused with 503 because the
	// commit queue was full.
	MetricCommitBackpressureTotal = "opinedb_commit_backpressure_total"
	// MetricPrefixChainDroppedTotal: times the in-memory prefix-hash
	// chain desynced and was dropped, degrading /journal/status probes to
	// on-disk segment scans until restart.
	MetricPrefixChainDroppedTotal = "opinedb_prefix_chain_dropped_total"
)

// metricEndpoints are the instrumented endpoint labels, fixed up front
// so every scrape exposes the full set (zeroed, not absent).
var metricEndpoints = []string{
	"healthz", "schema", "query", "interpret", "evidence", "topk",
	"reviews", "journal_status", "journal_records",
}

// serverMetrics holds the server's pre-resolved instruments so the
// request path never takes the registry lock.
type serverMetrics struct {
	reg            *obs.Registry
	requestSeconds map[string]*obs.Histogram
	requestsTotal  map[string]*obs.Counter
	engineQuery    *obs.Histogram
	engineTopK     *obs.Histogram
	apply          *obs.Histogram
	journalAppend  *obs.Histogram
	topkHits       *obs.Counter
	topkMisses     *obs.Counter
	appliedSeq     *obs.Gauge
	commitBatch    *obs.Histogram
	commitWait     *obs.Histogram
	queueDepth     *obs.Gauge
	backpressure   *obs.Counter
	chainDropped   *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &serverMetrics{
		reg:            reg,
		requestSeconds: make(map[string]*obs.Histogram, len(metricEndpoints)),
		requestsTotal:  make(map[string]*obs.Counter, len(metricEndpoints)),
	}
	for _, ep := range metricEndpoints {
		m.requestSeconds[ep] = reg.Histogram(MetricRequestSeconds,
			"Per-endpoint request wall time in seconds (lock wait included).",
			obs.L("endpoint", ep))
		m.requestsTotal[ep] = reg.Counter(MetricRequestsTotal,
			"Requests served, by endpoint.", obs.L("endpoint", ep))
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram(MetricStageSeconds,
			"Engine and journal stage latency in seconds.", obs.L("stage", name))
	}
	m.engineQuery = stage("engine_query")
	m.engineTopK = stage("engine_topk")
	m.apply = stage("apply")
	m.journalAppend = stage("journal_append")
	m.topkHits = reg.Counter(MetricTopKMemoHits, "Topk fragment memo hits.")
	m.topkMisses = reg.Counter(MetricTopKMemoMisses, "Topk fragment memo misses.")
	m.appliedSeq = reg.Gauge(MetricAppliedSeq,
		"Journal sequence of the last review applied to the serving database.")
	m.commitBatch = reg.Histogram(MetricCommitBatchSize,
		"Writes drained per group commit (shared-fsync batch size).")
	m.commitWait = reg.Histogram(MetricCommitWaitSeconds,
		"Seconds a write waited from staging to commit completion.")
	m.queueDepth = reg.Gauge(MetricCommitQueueDepth,
		"Writes staged and awaiting the next group commit.")
	m.backpressure = reg.Counter(MetricCommitBackpressureTotal,
		"Writes refused with 503 because the commit queue was full.")
	m.chainDropped = reg.Counter(MetricPrefixChainDroppedTotal,
		"Prefix-hash chain desyncs; probes fall back to segment scans.")
	return m
}

// timed wraps a handler with the endpoint's counter and latency
// histogram. It sits outside read()'s lock acquisition on purpose: lock
// wait is exactly the latency a caller experiences, so it belongs in
// the histogram. With tracing enabled it is also the process's trace
// front door: the propagation headers are extracted and a root span
// opened before the handler runs, and the histogram observation carries
// the trace id as an exemplar so metrics and traces join on one id.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.requestSeconds[endpoint]
	total := s.metrics.requestsTotal[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		total.Inc()
		t0 := time.Now()
		if c := s.opts.Trace; c != nil {
			ctx := trace.Extract(r.Context(), r.Header)
			ctx, sp := c.Start(ctx, "server."+endpoint)
			sw := &statusWriter{ResponseWriter: w}
			h(sw, r.WithContext(ctx))
			sp.SetAttr("status", strconv.Itoa(sw.status()))
			if sw.status() >= http.StatusInternalServerError {
				sp.SetError(http.StatusText(sw.status()))
			}
			sp.End()
			hist.ObserveSinceWithExemplar(t0, sp.Trace)
			return
		}
		h(w, r)
		hist.ObserveSince(t0)
	}
}

// statusWriter captures the response status so the request span can be
// annotated (and error-marked on 5xx) after the handler returns.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (s *statusWriter) WriteHeader(c int) {
	if s.code == 0 {
		s.code = c
	}
	s.ResponseWriter.WriteHeader(c)
}

func (s *statusWriter) Write(p []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(p)
}

func (s *statusWriter) status() int {
	if s.code == 0 {
		return http.StatusOK
	}
	return s.code
}

// Metrics returns the registry backing GET /metrics — the daemon and
// the harness read it to wire cross-cutting observers (journal fsync)
// and to assert on series in tests.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// FsyncObserver returns a journal.Options.SyncObserver feeding reg's
// fsync-latency histogram. A helper rather than a server method because
// the journal is opened before the server exists.
func FsyncObserver(reg *obs.Registry) func(d time.Duration) {
	h := reg.Histogram(MetricFsyncSeconds, "Journal fsync latency in seconds.")
	return func(d time.Duration) { h.Observe(d.Seconds()) }
}
