// Package server puts an HTTP JSON serving surface in front of a built
// subjective database. The query path of a built core.DB is safe for
// unlimited concurrent readers (see internal/core's package doc), so the
// server dispatches every request straight into the engine with no
// serialization — the process serves as many parallel subjective queries
// as the hardware allows.
//
// Endpoints (mirroring cmd/opinedb's subcommands):
//
//	GET  /healthz                       liveness + database shape
//	GET  /schema                        subjective attributes and markers
//	POST /query                         {"sql": ..., "k": ...} → ranked rows
//	GET  /query?sql=...&k=...           same, for quick curls
//	GET  /interpret?predicate=...       Figure 5 interpretation chain
//	GET  /evidence?entity=&attribute=   marker summary with provenance
//	GET  /topk?predicate=...&k=...      Threshold-Algorithm top-k
//
// Every response is JSON; errors are {"error": "..."} with a 4xx/5xx
// status.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// SnapshotInfo describes the snapshot artifact a server was loaded from;
// it is reported verbatim by /healthz so a fleet operator can confirm
// every replica serves the same build. The daemon fills it from
// snapshot.Meta; the server package stays decoupled from the snapshot
// format itself.
type SnapshotInfo struct {
	Path          string  `json:"path"`
	FormatVersion uint32  `json:"format_version"`
	BuildSeed     int64   `json:"build_seed"`
	Entities      int     `json:"entities"`
	Reviews       int     `json:"reviews"`
	Extractions   int     `json:"extractions"`
	FileBytes     int64   `json:"file_bytes"`
	LoadMillis    float64 `json:"load_ms"`
}

// Options configure a Server.
type Options struct {
	// EntityName, when non-nil, resolves an entity id to a display name
	// included in query results (e.g. the generated hotel name).
	EntityName func(id string) string
	// DefaultTopK caps rankings when a request does not specify k.
	// 0 means core's default of 10.
	DefaultTopK int
	// Snapshot, when non-nil, records that the database was loaded from a
	// snapshot artifact rather than built in process; /healthz reports it.
	Snapshot *SnapshotInfo
}

// Server is an http.Handler serving one built subjective database.
type Server struct {
	db      *core.DB
	opts    Options
	mux     *http.ServeMux
	started time.Time
}

// New wraps a built database in an HTTP serving surface. The database
// must not be mutated (AddReview, RebuildSummaries, ...) while the server
// is accepting traffic; readers need no locking.
func New(db *core.DB, opts Options) *Server {
	s := &Server{db: db, opts: opts, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/schema", s.handleSchema)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/interpret", s.handleInterpret)
	s.mux.HandleFunc("/evidence", s.handleEvidence)
	s.mux.HandleFunc("/topk", s.handleTopK)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError emits {"error": msg}.
func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// HealthResponse is the /healthz payload: liveness, database shape, and
// provenance — whether the process built its database in memory or loaded
// a snapshot artifact, and if so which one.
type HealthResponse struct {
	Status        string  `json:"status"`
	Database      string  `json:"database"`
	Entities      int     `json:"entities"`
	Extractions   int     `json:"extractions"`
	Attributes    int     `json:"attributes"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Source is "snapshot" when the database was loaded from an artifact,
	// "built" when constructed in process.
	Source string `json:"source"`
	// Snapshot carries the artifact metadata when Source is "snapshot".
	Snapshot *SnapshotInfo `json:"snapshot,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	source := "built"
	if s.opts.Snapshot != nil {
		source = "snapshot"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Database:      s.db.Name,
		Entities:      len(s.db.EntityIDs()),
		Extractions:   len(s.db.Extractions),
		Attributes:    len(s.db.Attrs),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Source:        source,
		Snapshot:      s.opts.Snapshot,
	})
}

// MarkerJSON is one marker of a subjective attribute.
type MarkerJSON struct {
	Index     int     `json:"index"`
	Name      string  `json:"name"`
	Sentiment float64 `json:"sentiment"`
}

// AttributeJSON is one subjective attribute of the schema.
type AttributeJSON struct {
	Name          string       `json:"name"`
	Categorical   bool         `json:"categorical"`
	DomainPhrases int          `json:"domain_phrases"`
	Markers       []MarkerJSON `json:"markers"`
}

// SchemaResponse is the /schema payload.
type SchemaResponse struct {
	Database   string          `json:"database"`
	Attributes []AttributeJSON `json:"attributes"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	resp := SchemaResponse{Database: s.db.Name}
	for _, a := range s.db.Attrs {
		aj := AttributeJSON{
			Name:          a.Name,
			Categorical:   a.Categorical,
			DomainPhrases: len(a.DomainPhrases),
		}
		for i, m := range a.Markers {
			aj.Markers = append(aj.Markers, MarkerJSON{Index: i, Name: m.Name, Sentiment: m.Sentiment})
		}
		resp.Attributes = append(resp.Attributes, aj)
	}
	writeJSON(w, http.StatusOK, resp)
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	SQL string `json:"sql"`
	K   int    `json:"k"`
}

// InterpretationJSON renders one predicate interpretation.
type InterpretationJSON struct {
	Predicate     string   `json:"predicate"`
	Method        string   `json:"method"`
	Rendered      string   `json:"rendered"`
	Terms         []string `json:"terms,omitempty"`
	Disjunction   bool     `json:"disjunction,omitempty"`
	MatchedPhrase string   `json:"matched_phrase,omitempty"`
	Similarity    float64  `json:"similarity"`
}

func interpretationJSON(in core.Interpretation) InterpretationJSON {
	out := InterpretationJSON{
		Predicate:     in.Predicate,
		Method:        string(in.Method),
		Rendered:      in.String(),
		Disjunction:   in.Disjunction,
		MatchedPhrase: in.MatchedPhrase,
		Similarity:    in.Similarity,
	}
	for _, t := range in.Terms {
		out.Terms = append(out.Terms, t.String())
	}
	return out
}

// RowJSON is one ranked entity.
type RowJSON struct {
	EntityID        string             `json:"entity_id"`
	Name            string             `json:"name,omitempty"`
	Score           float64            `json:"score"`
	PredicateScores map[string]float64 `json:"predicate_scores,omitempty"`
}

// QueryResponse is the /query payload.
type QueryResponse struct {
	Rewritten       string                        `json:"rewritten"`
	Interpretations map[string]InterpretationJSON `json:"interpretations"`
	Rows            []RowJSON                     `json:"rows"`
	ElapsedMs       float64                       `json:"elapsed_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	case http.MethodGet:
		req.SQL = r.URL.Query().Get("sql")
		if ks := r.URL.Query().Get("k"); ks != "" {
			k, err := strconv.Atoi(ks)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad k: %v", err)
				return
			}
			req.K = k
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, "missing sql")
		return
	}
	opts := core.DefaultQueryOptions()
	if s.opts.DefaultTopK > 0 {
		opts.TopK = s.opts.DefaultTopK
	}
	if req.K > 0 {
		opts.TopK = req.K
	}
	start := time.Now()
	res, err := s.db.QueryWithOptions(req.SQL, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	resp := QueryResponse{
		Rewritten:       res.Rewritten,
		Interpretations: map[string]InterpretationJSON{},
		Rows:            []RowJSON{},
		ElapsedMs:       float64(time.Since(start).Microseconds()) / 1000,
	}
	for text, in := range res.Interpretations {
		resp.Interpretations[text] = interpretationJSON(in)
	}
	for _, row := range res.Rows {
		rj := RowJSON{EntityID: row.EntityID, Score: row.Score, PredicateScores: row.PredicateScores}
		if s.opts.EntityName != nil {
			rj.Name = s.opts.EntityName(row.EntityID)
		}
		resp.Rows = append(resp.Rows, rj)
	}
	writeJSON(w, http.StatusOK, resp)
}

// InterpretResponse is the /interpret payload: the chosen interpretation
// plus the per-stage diagnostics cmd/opinedb's \interpret prints.
type InterpretResponse struct {
	Chosen      InterpretationJSON `json:"chosen"`
	W2VOnly     InterpretationJSON `json:"w2v_only"`
	CooccurOnly InterpretationJSON `json:"cooccur_only"`
}

func (s *Server) handleInterpret(w http.ResponseWriter, r *http.Request) {
	pred := strings.Trim(r.URL.Query().Get("predicate"), `"' `)
	if pred == "" {
		writeError(w, http.StatusBadRequest, "missing predicate")
		return
	}
	writeJSON(w, http.StatusOK, InterpretResponse{
		Chosen:      interpretationJSON(s.db.Interpret(pred)),
		W2VOnly:     interpretationJSON(s.db.InterpretW2VOnly(pred)),
		CooccurOnly: interpretationJSON(s.db.InterpretCooccurOnly(pred)),
	})
}

// EvidenceExtraction is one provenance record.
type EvidenceExtraction struct {
	ReviewID string `json:"review_id"`
	Aspect   string `json:"aspect,omitempty"`
	Phrase   string `json:"phrase"`
}

// EvidenceMarker is one marker row of an evidence response.
type EvidenceMarker struct {
	Index        int                  `json:"index"`
	Name         string               `json:"name"`
	Count        float64              `json:"count"`
	AvgSentiment float64              `json:"avg_sentiment"`
	Extractions  []EvidenceExtraction `json:"extractions,omitempty"`
}

// EvidenceResponse is the /evidence payload: the marker summary of one
// (entity, attribute) pair with the reviews backing each marker — the
// paper's "any result returned can be supported with evidence from the
// reviews".
type EvidenceResponse struct {
	EntityID  string           `json:"entity_id"`
	Attribute string           `json:"attribute"`
	Total     float64          `json:"total"`
	Markers   []EvidenceMarker `json:"markers"`
}

func (s *Server) handleEvidence(w http.ResponseWriter, r *http.Request) {
	entity := r.URL.Query().Get("entity")
	attribute := r.URL.Query().Get("attribute")
	if entity == "" || attribute == "" {
		writeError(w, http.StatusBadRequest, "missing entity or attribute")
		return
	}
	attr := s.db.Attr(attribute)
	if attr == nil {
		writeError(w, http.StatusNotFound, "no attribute %q", attribute)
		return
	}
	sum := s.db.Summary(attribute, entity)
	if sum == nil {
		writeError(w, http.StatusNotFound, "no summary for %s/%s", entity, attribute)
		return
	}
	limit := 3
	if ls := r.URL.Query().Get("limit"); ls != "" {
		l, err := strconv.Atoi(ls)
		if err != nil || l < 0 {
			writeError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = l
	}
	resp := EvidenceResponse{EntityID: entity, Attribute: attribute, Total: sum.Total}
	for i, m := range attr.Markers {
		em := EvidenceMarker{
			Index:        i,
			Name:         m.Name,
			Count:        sum.Counts[i],
			AvgSentiment: sum.AvgSentiment(i),
		}
		for j, ext := range s.db.ProvenanceOf(attribute, entity, i) {
			if j >= limit {
				break
			}
			em.Extractions = append(em.Extractions, EvidenceExtraction{
				ReviewID: ext.ReviewID, Aspect: ext.Aspect, Phrase: ext.Phrase,
			})
		}
		resp.Markers = append(resp.Markers, em)
	}
	writeJSON(w, http.StatusOK, resp)
}

// TopKResponse is the /topk payload.
type TopKResponse struct {
	Rows           []RowJSON `json:"rows"`
	SortedAccesses int       `json:"sorted_accesses"`
	Depth          int       `json:"depth"`
	Candidates     int       `json:"candidates"`
	ElapsedMs      float64   `json:"elapsed_ms"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	preds := r.URL.Query()["predicate"]
	if len(preds) == 0 {
		writeError(w, http.StatusBadRequest, "missing predicate (repeatable)")
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil || k <= 0 {
			writeError(w, http.StatusBadRequest, "bad k")
			return
		}
	}
	start := time.Now()
	rows, stats, err := s.db.TopKThreshold(preds, k)
	if err != nil {
		writeError(w, http.StatusBadRequest, "topk: %v", err)
		return
	}
	resp := TopKResponse{
		Rows:           []RowJSON{},
		SortedAccesses: stats.SortedAccesses,
		Depth:          stats.Depth,
		Candidates:     stats.Candidates,
		ElapsedMs:      float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, row := range rows {
		rj := RowJSON{EntityID: row.EntityID, Score: row.Score}
		if s.opts.EntityName != nil {
			rj.Name = s.opts.EntityName(row.EntityID)
		}
		resp.Rows = append(resp.Rows, rj)
	}
	writeJSON(w, http.StatusOK, resp)
}
