// Package server puts an HTTP JSON serving surface in front of a built
// subjective database. The query path of a built core.DB is safe for
// unlimited concurrent readers (see internal/core's package doc), so the
// server dispatches every request straight into the engine with no
// serialization — the process serves as many parallel subjective queries
// as the hardware allows.
//
// Endpoints (mirroring cmd/opinedb's subcommands):
//
//	GET  /healthz                       liveness + database shape
//	GET  /schema                        subjective attributes and markers
//	POST /query                         {"sql": ..., "k": ...} → ranked rows
//	GET  /query?sql=...&k=...           same, for quick curls
//	GET  /interpret?predicate=...       Figure 5 interpretation chain
//	GET  /evidence?entity=&attribute=   marker summary with provenance
//	GET  /topk?predicate=...&k=...      Threshold-Algorithm top-k
//	POST /reviews                       ingest one review (journaled live enrichment)
//	GET  /journal/status                journal position + prefix hash (anti-entropy)
//	GET  /journal/records?from=&limit=  stream journal records (anti-entropy backfill)
//	GET  /metrics                       Prometheus text exposition (see metrics.go)
//
// Every response is JSON; errors are {"error": "..."} with a 4xx/5xx
// status.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/trace"
)

// SnapshotInfo describes the snapshot artifact a server was loaded from;
// it is reported verbatim by /healthz so a fleet operator can confirm
// every replica serves the same build. The daemon fills it from
// snapshot.Meta; the server package stays decoupled from the snapshot
// format itself.
type SnapshotInfo struct {
	Path          string  `json:"path"`
	FormatVersion uint32  `json:"format_version"`
	BuildSeed     int64   `json:"build_seed"`
	Entities      int     `json:"entities"`
	Reviews       int     `json:"reviews"`
	Extractions   int     `json:"extractions"`
	FileBytes     int64   `json:"file_bytes"`
	LoadMillis    float64 `json:"load_ms"`
	// Shard identifies the entity partition when the process serves one
	// shard of a sharded build; nil for a monolithic snapshot.
	Shard *ShardInfo `json:"shard,omitempty"`
}

// ShardInfo is the shard identity reported by a shard replica's /healthz.
type ShardInfo struct {
	Index         int    `json:"index"`
	Count         int    `json:"count"`
	Entities      int    `json:"entities"`
	TotalEntities int    `json:"total_entities"`
	FirstEntity   string `json:"first_entity"`
	LastEntity    string `json:"last_entity"`
}

// IngestOptions enable the POST /reviews write endpoint: live incremental
// enrichment of a serving database (§4.2.2's "the marker summaries can be
// incrementally computed", journaled for durability).
type IngestOptions struct {
	// Append records a review delta before it is applied — the journal's
	// append-then-apply contract: once the client is acked, a crash
	// replays the delta from the journal. It returns the journal sequence
	// number. nil ingests without journaling (volatile: test and
	// in-process-build servers).
	Append func(rv core.ReviewData) (seq uint64, err error)
	// AppendBatch journals a whole commit batch before it is applied:
	// records land in order, one fsync covers the batch, and the first
	// record's sequence is returned (the batch is seq, seq+1, ...). The
	// call must be atomic — every record journaled and durable, or none —
	// which journal.Journal.AppendBatch guarantees. When non-nil, the
	// group-commit pipeline uses it so N concurrent writers share one
	// fsync; when nil, the pipeline falls back to per-record Append.
	AppendBatch func(rvs []core.ReviewData) (firstSeq uint64, err error)
	// AppendDurable declares that Append's return already implies
	// durability (the journal runs with SyncEvery <= 1). It only affects
	// the Durable field reported to clients on the per-record fallback
	// path; AppendBatch acks are durable by contract.
	AppendDurable bool
	// DisableGroupCommit serializes the write path the pre-group-commit
	// way: validate → append → fsync → apply under one exclusive lock per
	// request. It exists as the control arm of the benchall "groupcommit"
	// experiment and as an operator escape hatch.
	DisableGroupCommit bool
	// MaxQueueDepth bounds the staged commit queue; a write arriving at a
	// full queue is refused with 503 + Retry-After instead of growing the
	// backlog without bound. <= 0 means DefaultCommitQueueDepth.
	MaxQueueDepth int
	// AcceptUnowned accepts router-replicated writes (ReviewRequest.
	// Replica) for entities this instance does not serve. Shard replicas
	// set it: a replicated write for another shard's entity still updates
	// the corpus-global model state (review index, sentiment and
	// co-occurrence statistics) that keeps interpretations byte-identical
	// fleet-wide. Direct writes for unserved entities are 404 regardless,
	// so ghosts are rejected by the range owner before anything mutates.
	AcceptUnowned bool
	// JournalDir, when non-empty, exposes the node's journal introspection
	// surface — GET /journal/status and GET /journal/records — and the
	// journal position in /healthz. It is the one surface operators and
	// the anti-entropy repair loop (internal/fleet) share: the status
	// reports how far this node's fleet-ordered delta log reaches and a
	// prefix hash over it, and the records endpoint streams the tail a
	// lagging peer needs. Empty for volatile (unjournaled) ingestion.
	JournalDir string
	// JournalLastSeq seeds the last-applied sequence reported by /healthz:
	// the sequence of the final journal record replayed at load. The
	// server advances it as /reviews appends.
	JournalLastSeq uint64
}

// Options configure a Server.
type Options struct {
	// EntityName, when non-nil, resolves an entity id to a display name
	// included in query results (e.g. the generated hotel name).
	EntityName func(id string) string
	// DefaultTopK caps rankings when a request does not specify k.
	// 0 means core's default of 10.
	DefaultTopK int
	// Snapshot, when non-nil, records that the database was loaded from a
	// snapshot artifact rather than built in process; /healthz reports it.
	Snapshot *SnapshotInfo
	// Ingest, when non-nil, enables POST /reviews. Without it the server
	// is read-only and /reviews answers 403.
	Ingest *IngestOptions
	// Metrics, when non-nil, is the registry GET /metrics renders and
	// every instrument feeds; nil creates a private one. A single-process
	// fleet passes one shared registry to every shard and the router so
	// one scrape sees the whole deployment.
	Metrics *obs.Registry
	// DisableTopKMemo turns off the per-shard /topk fragment memo (see
	// topkmemo.go). The memo is on by default: fragments are partition-
	// stable between writes and every applied write invalidates wholesale,
	// so answers stay byte-identical either way.
	DisableTopKMemo bool
	// Trace, when non-nil, records a span per request (continuing a trace
	// propagated in X-Opinedb-Trace/X-Opinedb-Span headers) plus the
	// group-commit pipeline stages, and serves GET /debug/traces. nil
	// disables tracing at zero cost. A single-process fleet passes one
	// shared collector so router and shard spans land in one trace store.
	Trace *trace.Collector
}

// Server is an http.Handler serving one built subjective database.
//
// Locking: the engine's read path needs no coordination, but live
// ingestion mutates the database, so the server holds a stop-the-world
// RWMutex — every read handler runs under RLock and the /reviews writer
// takes the exclusive lock for its append-then-apply critical section.
// With ingestion disabled the RLocks are uncontended and the server
// behaves exactly as the lock-free reader it used to be.
type Server struct {
	db      *core.DB
	opts    Options
	mux     *http.ServeMux
	started time.Time
	// mu is the reader/writer exclusion around db. See the type comment.
	mu sync.RWMutex
	// appliedSeq is the journal sequence of the last applied review
	// (guarded by mu): seeded from the load-time replay, advanced by
	// /reviews. /healthz and /journal/status report it.
	appliedSeq uint64
	// metrics backs GET /metrics; always non-nil after New.
	metrics *serverMetrics
	// topkMemo caches partition-stable /topk fragments; nil when
	// Options.DisableTopKMemo is set.
	topkMemo *topkMemo
	// ph is the journal's in-memory prefix-hash chain, built lazily on
	// the first /journal/status or journaled append and extended under
	// the write lock. It makes every prefix-hash probe O(1) instead of a
	// segment rescan. Stored atomically: a chain that desyncs (never in
	// normal operation) is dropped to nil and the handlers fall back to
	// on-disk scans.
	phInit sync.Once
	ph     atomic.Pointer[journal.PrefixHashes]
	// cq is the group-commit staging queue (see groupcommit.go): /reviews
	// handlers stage prepared deltas here and one of them — the leader —
	// drains, journals and applies the batch with a single shared fsync.
	cq commitQueue
}

// New wraps a built database in an HTTP serving surface. The database
// must not be mutated by anyone else (ApplyReview, RebuildSummaries, ...)
// while the server is accepting traffic; the only supported mutation path
// is the server's own /reviews endpoint, which serializes against every
// reader through the server's lock.
func New(db *core.DB, opts Options) *Server {
	s := &Server{db: db, opts: opts, mux: http.NewServeMux(), started: time.Now()}
	if opts.Ingest != nil {
		s.appliedSeq = opts.Ingest.JournalLastSeq
		s.cq.depth = opts.Ingest.MaxQueueDepth
		if s.cq.depth <= 0 {
			s.cq.depth = DefaultCommitQueueDepth
		}
	}
	s.metrics = newServerMetrics(opts.Metrics)
	s.metrics.appliedSeq.Set(float64(s.appliedSeq))
	if !opts.DisableTopKMemo {
		s.topkMemo = newTopKMemo(s.metrics.topkHits, s.metrics.topkMisses)
	}
	s.mux.HandleFunc("/healthz", s.timed("healthz", s.read(get(s.handleHealth))))
	s.mux.HandleFunc("/schema", s.timed("schema", s.read(get(s.handleSchema))))
	s.mux.HandleFunc("/query", s.timed("query", s.read(s.handleQuery)))
	s.mux.HandleFunc("/interpret", s.timed("interpret", s.read(get(s.handleInterpret))))
	s.mux.HandleFunc("/evidence", s.timed("evidence", s.read(get(s.handleEvidence))))
	s.mux.HandleFunc("/topk", s.timed("topk", s.read(get(s.handleTopK))))
	s.mux.HandleFunc("/reviews", s.timed("reviews", buffered(s.handleReviews)))
	s.mux.HandleFunc("/journal/status", s.timed("journal_status", s.read(get(s.handleJournalStatus))))
	s.mux.HandleFunc("/journal/records", s.timed("journal_records", s.read(get(s.handleJournalRecords))))
	// The scrape endpoint deliberately bypasses the server lock: it reads
	// only atomics, so metrics stay observable even mid-ingest.
	s.mux.Handle("/metrics", s.metrics.reg.Handler())
	if opts.Trace != nil {
		// The trace store bypasses the server lock the same way.
		s.mux.Handle("/debug/traces", opts.Trace.TracesHandler())
	}
	// Unknown paths get the JSON error envelope too, not the mux's
	// plain-text 404.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	return s
}

// read runs a handler under the reader half of the server's lock.
func (s *Server) read(h http.HandlerFunc) http.HandlerFunc {
	return buffered(func(w http.ResponseWriter, r *http.Request) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		h(w, r)
	})
}

// buffered composes a handler's response in memory and flushes it to the
// client only after the handler — and therefore any lock it holds —
// returns. Without it, a handler holding (R)Lock across a write to a
// slow client would stall the lock: sync.RWMutex blocks new readers once
// a writer waits, so one stalled connection plus one pending ingest
// would freeze every endpoint, health probes included.
func buffered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		buf := &bufferedResponse{header: http.Header{}}
		h(buf, r)
		dst := w.Header()
		for k, v := range buf.header {
			dst[k] = v
		}
		w.WriteHeader(buf.status())
		_, _ = w.Write(buf.buf.Bytes())
	}
}

// bufferedResponse is a minimal in-memory http.ResponseWriter backing
// read()'s compose-under-lock, flush-after-unlock split.
type bufferedResponse struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }
func (b *bufferedResponse) WriteHeader(c int) {
	if b.code == 0 {
		b.code = c
	}
}
func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.buf.Write(p)
}
func (b *bufferedResponse) status() int {
	if b.code == 0 {
		return http.StatusOK
	}
	return b.code
}

// get wraps a read-only handler with a 405 + JSON envelope for every verb
// other than GET and HEAD (HEAD stays allowed — net/http strips the body —
// so load-balancer health probes keep working). Every response this
// server writes — success or failure — is a JSON document with a status
// code that matches it.
func get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			WriteError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		h(w, r)
	}
}

// DecodeJSONBody strictly decodes one JSON document into out: unknown
// fields, syntax errors, wrong types and trailing garbage all yield a
// descriptive error (handlers turn it into a 400 envelope) instead of a
// silently half-parsed request.
func DecodeJSONBody(r *http.Request, out interface{}) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the JSON body")
	}
	return nil
}

// ErrQueryMethod is returned by DecodeQueryRequest for a verb other than
// GET or POST; handlers map it to 405 with an Allow header.
var ErrQueryMethod = errors.New("use GET or POST")

// DecodeQueryRequest parses a /query request — strict-JSON POST body or
// GET query parameters — including the missing-sql check. It is shared by
// the shard server and the router so the two tiers accept and reject
// exactly the same requests.
func DecodeQueryRequest(r *http.Request) (QueryRequest, error) {
	var req QueryRequest
	switch r.Method {
	case http.MethodPost:
		if err := DecodeJSONBody(r, &req); err != nil {
			return req, fmt.Errorf("bad request body: %v", err)
		}
	case http.MethodGet:
		req.SQL = r.URL.Query().Get("sql")
		if ks := r.URL.Query().Get("k"); ks != "" {
			k, err := strconv.Atoi(ks)
			if err != nil {
				return req, fmt.Errorf("bad k: %v", err)
			}
			req.K = k
		}
	default:
		return req, ErrQueryMethod
	}
	if strings.TrimSpace(req.SQL) == "" {
		return req, fmt.Errorf("missing sql")
	}
	return req, nil
}

// DecodeTopKRequest parses /topk parameters: the repeatable predicate
// plus k (defaultK when absent). Shared by the shard server and the
// router so both tiers accept and reject exactly the same requests.
func DecodeTopKRequest(r *http.Request, defaultK int) (predicates []string, k int, err error) {
	predicates = r.URL.Query()["predicate"]
	if len(predicates) == 0 {
		return nil, 0, fmt.Errorf("missing predicate (repeatable)")
	}
	k = defaultK
	if k <= 0 {
		k = 10
	}
	if ks := r.URL.Query().Get("k"); ks != "" {
		if k, err = strconv.Atoi(ks); err != nil || k <= 0 {
			return nil, 0, fmt.Errorf("bad k")
		}
	}
	return predicates, k, nil
}

// DecodeEvidenceRequest parses /evidence parameters. limit is -1 when the
// request does not specify one (callers apply their default). Shared by
// the shard server and the router.
func DecodeEvidenceRequest(r *http.Request) (entity, attribute string, limit int, err error) {
	entity = r.URL.Query().Get("entity")
	attribute = r.URL.Query().Get("attribute")
	if entity == "" || attribute == "" {
		return "", "", 0, fmt.Errorf("missing entity or attribute")
	}
	limit = -1
	if ls := r.URL.Query().Get("limit"); ls != "" {
		l, lerr := strconv.Atoi(ls)
		if lerr != nil || l < 0 {
			return "", "", 0, fmt.Errorf("bad limit")
		}
		limit = l
	}
	return entity, attribute, limit, nil
}

// DecodeInterpretRequest parses /interpret's predicate parameter
// (surrounding quotes tolerated). Shared by the shard server and the
// router.
func DecodeInterpretRequest(r *http.Request) (string, error) {
	pred := strings.Trim(r.URL.Query().Get("predicate"), `"' `)
	if pred == "" {
		return "", fmt.Errorf("missing predicate")
	}
	return pred, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// WriteJSON emits one JSON response.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// WriteError emits {"error": msg}.
func WriteError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	WriteJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// HealthResponse is the /healthz payload: liveness, database shape, and
// provenance — whether the process built its database in memory or loaded
// a snapshot artifact, and if so which one.
type HealthResponse struct {
	Status        string  `json:"status"`
	Database      string  `json:"database"`
	Entities      int     `json:"entities"`
	Extractions   int     `json:"extractions"`
	Attributes    int     `json:"attributes"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Source is "snapshot" when the database was loaded from an artifact,
	// "built" when constructed in process.
	Source string `json:"source"`
	// Snapshot carries the artifact metadata when Source is "snapshot".
	Snapshot *SnapshotInfo `json:"snapshot,omitempty"`
	// Journal reports the node's position in the fleet-ordered delta log
	// when journaled ingestion is enabled — the same introspection surface
	// the anti-entropy repair loop reads through /journal/status.
	Journal *JournalHealth `json:"journal,omitempty"`
}

// JournalHealth is the /healthz journal-position report.
type JournalHealth struct {
	// LastAppliedSeq is the journal sequence of the last review applied to
	// the serving database (replayed at load or ingested since).
	LastAppliedSeq uint64 `json:"last_applied_seq"`
	// Segments is the number of on-disk journal segment files.
	Segments int `json:"segments"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	source := "built"
	if s.opts.Snapshot != nil {
		source = "snapshot"
	}
	WriteJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Database:      s.db.Name,
		Entities:      len(s.db.EntityIDs()),
		Extractions:   len(s.db.Extractions),
		Attributes:    len(s.db.Attrs),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Source:        source,
		Snapshot:      s.opts.Snapshot,
		Journal:       s.journalHealth(),
	})
}

// MarkerJSON is one marker of a subjective attribute.
type MarkerJSON struct {
	Index     int     `json:"index"`
	Name      string  `json:"name"`
	Sentiment float64 `json:"sentiment"`
}

// AttributeJSON is one subjective attribute of the schema.
type AttributeJSON struct {
	Name          string       `json:"name"`
	Categorical   bool         `json:"categorical"`
	DomainPhrases int          `json:"domain_phrases"`
	Markers       []MarkerJSON `json:"markers"`
}

// SchemaResponse is the /schema payload.
type SchemaResponse struct {
	Database   string          `json:"database"`
	Attributes []AttributeJSON `json:"attributes"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	resp := SchemaResponse{Database: s.db.Name}
	for _, a := range s.db.Attrs {
		aj := AttributeJSON{
			Name:          a.Name,
			Categorical:   a.Categorical,
			DomainPhrases: len(a.DomainPhrases),
		}
		for i, m := range a.Markers {
			aj.Markers = append(aj.Markers, MarkerJSON{Index: i, Name: m.Name, Sentiment: m.Sentiment})
		}
		resp.Attributes = append(resp.Attributes, aj)
	}
	WriteJSON(w, http.StatusOK, resp)
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	SQL string `json:"sql"`
	K   int    `json:"k"`
}

// InterpretationJSON renders one predicate interpretation.
type InterpretationJSON struct {
	Predicate     string   `json:"predicate"`
	Method        string   `json:"method"`
	Rendered      string   `json:"rendered"`
	Terms         []string `json:"terms,omitempty"`
	Disjunction   bool     `json:"disjunction,omitempty"`
	MatchedPhrase string   `json:"matched_phrase,omitempty"`
	Similarity    float64  `json:"similarity"`
}

func interpretationJSON(in core.Interpretation) InterpretationJSON {
	out := InterpretationJSON{
		Predicate:     in.Predicate,
		Method:        string(in.Method),
		Rendered:      in.String(),
		Disjunction:   in.Disjunction,
		MatchedPhrase: in.MatchedPhrase,
		Similarity:    in.Similarity,
	}
	for _, t := range in.Terms {
		out.Terms = append(out.Terms, t.String())
	}
	return out
}

// RowJSON is one ranked entity.
type RowJSON struct {
	EntityID        string             `json:"entity_id"`
	Name            string             `json:"name,omitempty"`
	Score           float64            `json:"score"`
	PredicateScores map[string]float64 `json:"predicate_scores,omitempty"`
}

// QueryResponse is the /query payload.
type QueryResponse struct {
	Rewritten       string                        `json:"rewritten"`
	Interpretations map[string]InterpretationJSON `json:"interpretations"`
	Rows            []RowJSON                     `json:"rows"`
	ElapsedMs       float64                       `json:"elapsed_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeQueryRequest(r)
	if err != nil {
		if errors.Is(err, ErrQueryMethod) {
			w.Header().Set("Allow", "GET, POST")
			WriteError(w, http.StatusMethodNotAllowed, "%v", err)
		} else {
			WriteError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	opts := core.DefaultQueryOptions()
	if s.opts.DefaultTopK > 0 {
		opts.TopK = s.opts.DefaultTopK
	}
	if req.K > 0 {
		opts.TopK = req.K
	}
	start := time.Now()
	res, err := s.db.QueryWithOptions(req.SQL, opts)
	s.metrics.engineQuery.ObserveSince(start)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	resp := QueryResponse{
		Rewritten:       res.Rewritten,
		Interpretations: map[string]InterpretationJSON{},
		Rows:            []RowJSON{},
		ElapsedMs:       float64(time.Since(start).Microseconds()) / 1000,
	}
	for text, in := range res.Interpretations {
		resp.Interpretations[text] = interpretationJSON(in)
	}
	for _, row := range res.Rows {
		rj := RowJSON{EntityID: row.EntityID, Score: row.Score, PredicateScores: row.PredicateScores}
		if s.opts.EntityName != nil {
			rj.Name = s.opts.EntityName(row.EntityID)
		}
		resp.Rows = append(resp.Rows, rj)
	}
	WriteJSON(w, http.StatusOK, resp)
}

// InterpretResponse is the /interpret payload: the chosen interpretation
// plus the per-stage diagnostics cmd/opinedb's \interpret prints.
type InterpretResponse struct {
	Chosen      InterpretationJSON `json:"chosen"`
	W2VOnly     InterpretationJSON `json:"w2v_only"`
	CooccurOnly InterpretationJSON `json:"cooccur_only"`
}

func (s *Server) handleInterpret(w http.ResponseWriter, r *http.Request) {
	pred, err := DecodeInterpretRequest(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	WriteJSON(w, http.StatusOK, InterpretResponse{
		Chosen:      interpretationJSON(s.db.Interpret(pred)),
		W2VOnly:     interpretationJSON(s.db.InterpretW2VOnly(pred)),
		CooccurOnly: interpretationJSON(s.db.InterpretCooccurOnly(pred)),
	})
}

// EvidenceExtraction is one provenance record.
type EvidenceExtraction struct {
	ReviewID string `json:"review_id"`
	Aspect   string `json:"aspect,omitempty"`
	Phrase   string `json:"phrase"`
}

// EvidenceMarker is one marker row of an evidence response.
type EvidenceMarker struct {
	Index        int                  `json:"index"`
	Name         string               `json:"name"`
	Count        float64              `json:"count"`
	AvgSentiment float64              `json:"avg_sentiment"`
	Extractions  []EvidenceExtraction `json:"extractions,omitempty"`
}

// EvidenceResponse is the /evidence payload: the marker summary of one
// (entity, attribute) pair with the reviews backing each marker — the
// paper's "any result returned can be supported with evidence from the
// reviews".
type EvidenceResponse struct {
	EntityID  string           `json:"entity_id"`
	Attribute string           `json:"attribute"`
	Total     float64          `json:"total"`
	Markers   []EvidenceMarker `json:"markers"`
}

func (s *Server) handleEvidence(w http.ResponseWriter, r *http.Request) {
	entity, attribute, limit, err := DecodeEvidenceRequest(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if limit < 0 {
		limit = 3
	}
	attr := s.db.Attr(attribute)
	if attr == nil {
		WriteError(w, http.StatusNotFound, "no attribute %q", attribute)
		return
	}
	sum := s.db.Summary(attribute, entity)
	if sum == nil {
		WriteError(w, http.StatusNotFound, "no summary for %s/%s", entity, attribute)
		return
	}
	resp := EvidenceResponse{EntityID: entity, Attribute: attribute, Total: sum.Total}
	for i, m := range attr.Markers {
		em := EvidenceMarker{
			Index:        i,
			Name:         m.Name,
			Count:        sum.Counts[i],
			AvgSentiment: sum.AvgSentiment(i),
		}
		for j, ext := range s.db.ProvenanceOf(attribute, entity, i) {
			if j >= limit {
				break
			}
			em.Extractions = append(em.Extractions, EvidenceExtraction{
				ReviewID: ext.ReviewID, Aspect: ext.Aspect, Phrase: ext.Phrase,
			})
		}
		resp.Markers = append(resp.Markers, em)
	}
	WriteJSON(w, http.StatusOK, resp)
}

// TopKResponse is the /topk payload.
type TopKResponse struct {
	Rows           []RowJSON `json:"rows"`
	SortedAccesses int       `json:"sorted_accesses"`
	Depth          int       `json:"depth"`
	Candidates     int       `json:"candidates"`
	ElapsedMs      float64   `json:"elapsed_ms"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	// Same default as /query: the operator's -k flag, else 10 — so a
	// shard, a monolith and the router answer a no-k request identically.
	preds, k, err := DecodeTopKRequest(r, s.opts.DefaultTopK)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	var rows []core.ResultRow
	var stats core.TopKStats
	var key string
	hit := false
	if s.topkMemo != nil {
		key = topkKey(preds, k)
		if f, ok := s.topkMemo.get(key); ok {
			rows, stats, hit = f.rows, f.stats, true
			w.Header().Set("X-Topk-Memo", "hit")
		} else {
			w.Header().Set("X-Topk-Memo", "miss")
		}
	}
	if !hit {
		t0 := time.Now()
		rows, stats, err = s.db.TopKThreshold(preds, k)
		s.metrics.engineTopK.ObserveSince(t0)
		if err != nil {
			WriteError(w, http.StatusBadRequest, "topk: %v", err)
			return
		}
		if s.topkMemo != nil {
			s.topkMemo.put(key, topkFragment{rows: rows, stats: stats})
		}
	}
	resp := TopKResponse{
		Rows:           []RowJSON{},
		SortedAccesses: stats.SortedAccesses,
		Depth:          stats.Depth,
		Candidates:     stats.Candidates,
		ElapsedMs:      float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, row := range rows {
		rj := RowJSON{EntityID: row.EntityID, Score: row.Score}
		if s.opts.EntityName != nil {
			rj.Name = s.opts.EntityName(row.EntityID)
		}
		resp.Rows = append(resp.Rows, rj)
	}
	WriteJSON(w, http.StatusOK, resp)
}

// ReviewRequest is the POST /reviews body: one raw review to ingest.
type ReviewRequest struct {
	ID       string `json:"id"`
	EntityID string `json:"entity"`
	Reviewer string `json:"reviewer"`
	Day      int    `json:"day"`
	Text     string `json:"text"`
	// Replica marks a router-replicated write: the receiving shard should
	// absorb the corpus-global state even though it does not serve the
	// entity. Only honored when the server was configured with
	// IngestOptions.AcceptUnowned; a direct (non-replica) write for an
	// unserved entity is always a 404, so a client cannot bypass the
	// router's owner-first ordering and ghost-entity rejection.
	Replica bool `json:"replica,omitempty"`
}

// ReviewResponse acknowledges one ingested review.
type ReviewResponse struct {
	ReviewID string `json:"review_id"`
	EntityID string `json:"entity_id"`
	// Owned is true when this instance serves the entity and therefore
	// materialized its marker-summary update; false on a shard replica
	// that only absorbed the corpus-global state of a replicated write.
	Owned bool `json:"owned"`
	// Extractions is how many opinions the extractor materialized from
	// the review on this instance.
	Extractions int `json:"extractions"`
	// Seq is the journal sequence number assigned to this review. Always
	// present: 0 means the server ingests without a journal (volatile),
	// never "field omitted" — clients must be able to tell the two apart.
	Seq uint64 `json:"seq"`
	// Durable is true when the journaled record was fsynced before this
	// acknowledgement was written — the group-commit contract. False only
	// on volatile (journal-less) ingestion or a journal configured with a
	// lazy sync batch (SyncEvery > 1) on the per-record append path.
	Durable bool `json:"durable"`
}

// DecodeReviewRequest parses a POST /reviews body with the missing-field
// checks. Shared by the shard server and the router so both tiers accept
// and reject exactly the same requests.
func DecodeReviewRequest(r *http.Request) (ReviewRequest, error) {
	var req ReviewRequest
	if err := DecodeJSONBody(r, &req); err != nil {
		return req, fmt.Errorf("bad request body: %v", err)
	}
	if strings.TrimSpace(req.ID) == "" || strings.TrimSpace(req.EntityID) == "" {
		return req, fmt.Errorf("missing id or entity")
	}
	if strings.TrimSpace(req.Text) == "" {
		return req, fmt.Errorf("missing text")
	}
	return req, nil
}

// handleReviews is the live-enrichment write path. The default pipeline
// is group commit (see groupcommit.go): the handler prepares the delta
// outside every lock, stages it on the commit queue, and one staged
// writer — the leader — journals the whole queue with a single shared
// fsync before applying it in sequence order, so every 200 response
// implies durability regardless of how many writers arrived together.
// Append-before-apply is what makes a crash safe — an acknowledged
// review is either in the served state or replayed from the journal at
// the next load.
func (s *Server) handleReviews(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		WriteError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.opts.Ingest == nil {
		WriteError(w, http.StatusForbidden, "read-only server: ingestion is not enabled (serve with a journal)")
		return
	}
	req, err := DecodeReviewRequest(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rv := core.ReviewData{ID: req.ID, EntityID: req.EntityID, Reviewer: req.Reviewer, Day: req.Day, Text: req.Text}
	if s.opts.Ingest.DisableGroupCommit {
		s.handleReviewSerialized(w, r.Context(), req, rv)
		return
	}
	s.handleReviewGrouped(w, r.Context(), req, rv)
}

// handleReviewSerialized is the pre-group-commit write path, kept as the
// DisableGroupCommit control arm: validate → append → apply, all under
// one exclusive lock per request.
func (s *Server) handleReviewSerialized(w http.ResponseWriter, ctx context.Context, req ReviewRequest, rv core.ReviewData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.db.HasReview(rv.ID) {
		WriteError(w, http.StatusConflict, "review %q already ingested", rv.ID)
		return
	}
	owned := s.db.ServesEntity(rv.EntityID)
	if !owned && !(req.Replica && s.opts.Ingest.AcceptUnowned) {
		WriteError(w, http.StatusNotFound, "no entity %q served here", rv.EntityID)
		return
	}
	var seq uint64
	var durable bool
	var err error
	if s.opts.Ingest.Append != nil || s.opts.Ingest.AppendBatch != nil {
		t0 := time.Now()
		if s.opts.Ingest.Append != nil {
			seq, err = s.opts.Ingest.Append(rv)
			durable = s.opts.Ingest.AppendDurable
		} else {
			seq, err = s.opts.Ingest.AppendBatch([]core.ReviewData{rv})
			durable = true
		}
		s.metrics.journalAppend.ObserveSince(t0)
		if err != nil {
			WriteError(w, http.StatusInternalServerError, "journal append: %v", err)
			return
		}
		// Extend the in-memory prefix-hash chain with exactly what was
		// journaled — the chain mirrors the journal, not the applied
		// state, so it advances before the apply below.
		s.extendPrefixChain(seq, rv, trace.ID(ctx))
	}
	before := len(s.db.Extractions)
	t0 := time.Now()
	err = s.db.ApplyReview(rv)
	s.metrics.apply.ObserveSince(t0)
	if err != nil {
		// The delta is journaled but not applied; the next load replays it.
		// Surfacing the inconsistency beats hiding it. The apply may have
		// mutated state before failing, so memoized fragments are
		// conservatively dropped — a stale fragment would serve wrong bytes.
		if s.topkMemo != nil {
			s.topkMemo.invalidate()
		}
		WriteError(w, http.StatusInternalServerError, "apply (journaled at seq %d): %v", seq, err)
		return
	}
	if s.topkMemo != nil {
		// Any applied review can move any score (interpretation state is
		// corpus-global); drop every memoized fragment.
		s.topkMemo.invalidate()
	}
	if seq > 0 {
		s.appliedSeq = seq
		s.metrics.appliedSeq.Set(float64(seq))
	}
	WriteJSON(w, http.StatusOK, ReviewResponse{
		ReviewID:    rv.ID,
		EntityID:    rv.EntityID,
		Owned:       owned,
		Extractions: len(s.db.Extractions) - before,
		Seq:         seq,
		Durable:     durable,
	})
}

// extendPrefixChain advances the in-memory prefix-hash chain with one
// journaled record. A chain error (cannot happen while this server owns
// the journal) drops the chain with an operator signal — a counter and a
// structured log line carrying the sequence and the trace id of the
// request that hit it — and status probes fall back to on-disk scans.
func (s *Server) extendPrefixChain(seq uint64, rv core.ReviewData, traceID string) {
	ph := s.prefixHashes()
	if ph == nil {
		return
	}
	if err := ph.Append(seq, journal.Review{
		ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
	}); err != nil {
		s.ph.Store(nil)
		s.metrics.chainDropped.Inc()
		slog.Warn("server: prefix-hash chain dropped; journal/status probes degrade to segment scans until restart",
			"seq", seq, "trace", traceID, "err", err)
	}
}
