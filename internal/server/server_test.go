package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/server"
)

// The test fixture builds one small hotel database shared by all tests.
var (
	fixOnce sync.Once
	fixData *corpus.Dataset
	fixDB   *core.DB
	fixErr  error
)

func testServer(t *testing.T) (*corpus.Dataset, *core.DB, *httptest.Server) {
	t.Helper()
	fixOnce.Do(func() {
		cfg := corpus.SmallConfig()
		cfg.HotelsLondon, cfg.HotelsAmsterdam = 40, 15
		cfg.ReviewsPerHotel = 16
		fixData = corpus.GenerateHotels(cfg)
		c := core.DefaultConfig()
		c.MarkersPerAttr = 6
		fixDB, fixErr = harness.BuildDB(fixData, c, 600, 400)
	})
	if fixErr != nil {
		t.Fatalf("fixture build: %v", fixErr)
	}
	srv := httptest.NewServer(server.New(fixDB, server.Options{
		EntityName: func(id string) string {
			if e := fixData.EntityByID(id); e != nil {
				return e.Name
			}
			return ""
		},
	}))
	t.Cleanup(srv.Close)
	return fixData, fixDB, srv
}

// getJSON fetches url and decodes the response into out, asserting the
// expected status.
func getJSON(t *testing.T, url string, wantStatus int, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: Content-Type %q", url, ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, db, srv := testServer(t)
	var h server.HealthResponse
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.Entities != len(db.EntityIDs()) || h.Extractions != len(db.Extractions) || h.Attributes != len(db.Attrs) {
		t.Errorf("shape mismatch: %+v", h)
	}
}

func TestSchema(t *testing.T) {
	_, db, srv := testServer(t)
	var sc server.SchemaResponse
	getJSON(t, srv.URL+"/schema", http.StatusOK, &sc)
	if len(sc.Attributes) != len(db.Attrs) {
		t.Fatalf("%d attributes, want %d", len(sc.Attributes), len(db.Attrs))
	}
	for i, a := range sc.Attributes {
		if a.Name != db.Attrs[i].Name || len(a.Markers) != len(db.Attrs[i].Markers) {
			t.Errorf("attribute %d mismatch: %+v", i, a)
		}
	}
}

func TestQueryPostMatchesEngine(t *testing.T) {
	_, db, srv := testServer(t)
	sql := `select * from Entities where price_pn < 300 and "has really clean rooms" limit 5`
	body, _ := json.Marshal(server.QueryRequest{SQL: sql})
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}

	want, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Rewritten != want.Rewritten {
		t.Errorf("rewritten = %q, want %q", qr.Rewritten, want.Rewritten)
	}
	if len(qr.Rows) != len(want.Rows) {
		t.Fatalf("%d rows, want %d", len(qr.Rows), len(want.Rows))
	}
	for i, row := range qr.Rows {
		if row.EntityID != want.Rows[i].EntityID || row.Score != want.Rows[i].Score {
			t.Errorf("row %d = %s/%v, want %s/%v",
				i, row.EntityID, row.Score, want.Rows[i].EntityID, want.Rows[i].Score)
		}
		if row.Name == "" {
			t.Errorf("row %d missing entity name", i)
		}
	}
	if len(qr.Interpretations) == 0 {
		t.Error("no interpretations returned")
	}
}

func TestQueryGet(t *testing.T) {
	_, _, srv := testServer(t)
	var qr server.QueryResponse
	getJSON(t, srv.URL+`/query?sql=select+*+from+Entities+where+"has+friendly+staff"&k=3`,
		http.StatusOK, &qr)
	if len(qr.Rows) == 0 || len(qr.Rows) > 3 {
		t.Errorf("%d rows, want 1..3", len(qr.Rows))
	}
}

func TestQueryErrors(t *testing.T) {
	_, _, srv := testServer(t)
	var e map[string]string
	getJSON(t, srv.URL+"/query", http.StatusBadRequest, &e)
	if e["error"] == "" {
		t.Error("missing error message for empty sql")
	}
	getJSON(t, srv.URL+"/query?sql=not+sql+at+all", http.StatusBadRequest, &e)
	if e["error"] == "" {
		t.Error("missing error message for a parse failure")
	}
}

func TestInterpret(t *testing.T) {
	_, db, srv := testServer(t)
	var ir server.InterpretResponse
	getJSON(t, srv.URL+"/interpret?predicate=has+really+clean+rooms", http.StatusOK, &ir)
	want := db.Interpret("has really clean rooms")
	if ir.Chosen.Method != string(want.Method) || ir.Chosen.Rendered != want.String() {
		t.Errorf("chosen = %+v, want %s via %s", ir.Chosen, want.String(), want.Method)
	}
	if ir.W2VOnly.Method != string(core.MethodW2V) {
		t.Errorf("w2v_only method = %q", ir.W2VOnly.Method)
	}
}

func TestEvidence(t *testing.T) {
	_, db, srv := testServer(t)
	// Find an (entity, attribute) pair with a summary.
	var entity, attribute string
	for _, a := range db.Attrs {
		for _, id := range db.EntityIDs() {
			if s := db.Summary(a.Name, id); s != nil && s.Total > 0 {
				entity, attribute = id, a.Name
				break
			}
		}
		if entity != "" {
			break
		}
	}
	if entity == "" {
		t.Fatal("no summaries in fixture")
	}
	var ev server.EvidenceResponse
	getJSON(t, fmt.Sprintf("%s/evidence?entity=%s&attribute=%s", srv.URL, entity, attribute),
		http.StatusOK, &ev)
	if ev.Total == 0 || len(ev.Markers) == 0 {
		t.Fatalf("empty evidence: %+v", ev)
	}
	var contributing int
	for _, m := range ev.Markers {
		if m.Count > 0 {
			contributing++
			if len(m.Extractions) == 0 {
				t.Errorf("marker %d has count %v but no provenance", m.Index, m.Count)
			}
		}
	}
	if contributing == 0 {
		t.Error("no contributing markers")
	}

	getJSON(t, srv.URL+"/evidence?entity=nope&attribute="+attribute, http.StatusNotFound, nil)
	getJSON(t, srv.URL+"/evidence?entity="+entity+"&attribute=nope", http.StatusNotFound, nil)
}

func TestTopK(t *testing.T) {
	_, db, srv := testServer(t)
	var tk server.TopKResponse
	getJSON(t, srv.URL+"/topk?predicate=has+really+clean+rooms&predicate=has+friendly+staff&k=5",
		http.StatusOK, &tk)
	rows, _, err := db.TopKThreshold([]string{"has really clean rooms", "has friendly staff"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tk.Rows) != len(rows) {
		t.Fatalf("%d rows, want %d", len(tk.Rows), len(rows))
	}
	for i := range rows {
		if tk.Rows[i].EntityID != rows[i].EntityID || tk.Rows[i].Score != rows[i].Score {
			t.Errorf("row %d mismatch", i)
		}
	}
	if tk.SortedAccesses == 0 {
		t.Error("no TA stats reported")
	}
}

// TestConcurrentServing hammers the server from many goroutines and
// checks every response matches the sequential baseline — the serving
// layer's half of the concurrent-reader guarantee (run under -race).
func TestConcurrentServing(t *testing.T) {
	d, db, srv := testServer(t)
	sql := `select * from Entities where "has really clean rooms" limit 5`
	baseline, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	var preds []string
	for _, p := range d.Predicates {
		preds = append(preds, p.Text)
		if len(preds) == 6 {
			break
		}
	}

	const goroutines = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var qr server.QueryResponse
				resp, err := http.Get(srv.URL + "/query?sql=" + "select+*+from+Entities+where+%22has+really+clean+rooms%22+limit+5")
				if err != nil {
					errs <- err
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if len(qr.Rows) != len(baseline.Rows) {
					errs <- fmt.Errorf("goroutine %d: %d rows, want %d", g, len(qr.Rows), len(baseline.Rows))
					return
				}
				for j, row := range qr.Rows {
					if row.EntityID != baseline.Rows[j].EntityID || row.Score != baseline.Rows[j].Score {
						errs <- fmt.Errorf("goroutine %d row %d diverged", g, j)
						return
					}
				}
				// Mix in interpretation traffic on a rotating predicate.
				var ir server.InterpretResponse
				resp, err = http.Get(srv.URL + "/interpret?predicate=" + "romantic+getaway")
				if err != nil {
					errs <- err
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&ir)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				_ = preds[i%len(preds)]
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The interpretation cache must serve identical values afterwards.
	if got := db.Interpret("romantic getaway"); !reflect.DeepEqual(got, db.Interpret("romantic getaway")) {
		t.Error("unstable interpretation after concurrent serving")
	}
}
