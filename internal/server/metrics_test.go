package server_test

// Tests of the serving-side observability surface: the /metrics
// exposition, the /topk fragment memo (hit/miss/invalidate and
// byte-identical answers), and the incremental /journal/status path
// agreeing with the on-disk scans it replaced.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/snapshot"
)

// metricsServer clones the shared fixture (so writes stay local to the
// test) and serves it with volatile ingestion and a caller-owned
// registry.
func metricsServer(t *testing.T) (*core.DB, *obs.Registry, *httptest.Server) {
	t.Helper()
	_, db, _ := testServer(t)
	snap := filepath.Join(t.TempDir(), "clone.snap")
	if _, err := snapshot.Save(snap, db); err != nil {
		t.Fatal(err)
	}
	clone, _, err := snapshot.Load(snap)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := httptest.NewServer(server.New(clone, server.Options{
		Ingest:  &server.IngestOptions{},
		Metrics: reg,
	}))
	t.Cleanup(srv.Close)
	return clone, reg, srv
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpointServesInstrumentedFamilies(t *testing.T) {
	db, _, srv := metricsServer(t)
	// Drive each instrumented path once.
	getJSON(t, srv.URL+"/query?sql="+`select+*+from+Entities+where+"clean+rooms"+limit+3`, http.StatusOK, nil)
	getJSON(t, srv.URL+"/topk?predicate=clean+rooms&k=3", http.StatusOK, nil)
	postReview(t, srv.URL, server.ReviewRequest{
		ID: "m-1", EntityID: db.EntityIDs()[0], Text: "spotless rooms and friendly staff",
	})

	text := scrape(t, srv.URL)
	for _, want := range []string{
		`opinedb_http_request_seconds_bucket{endpoint="query",le="+Inf"}`,
		`opinedb_http_request_seconds_bucket{endpoint="topk",le="+Inf"}`,
		`opinedb_http_request_seconds_bucket{endpoint="reviews",le="+Inf"}`,
		`opinedb_http_request_seconds_p99{endpoint="query"}`,
		`opinedb_stage_seconds_bucket{le="+Inf",stage="engine_query"}`,
		`opinedb_stage_seconds_bucket{le="+Inf",stage="engine_topk"}`,
		`opinedb_stage_seconds_bucket{le="+Inf",stage="apply"}`,
		"opinedb_topk_memo_misses_total 1",
		"opinedb_http_requests_total{endpoint=\"query\"} 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestTopKMemoHitMissInvalidate(t *testing.T) {
	db, reg, srv := metricsServer(t)
	url := srv.URL + "/topk?predicate=clean+rooms&predicate=friendly+staff&k=5"

	fetch := func(wantMemo string) server.TopKResponse {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Topk-Memo"); got != wantMemo {
			t.Fatalf("X-Topk-Memo = %q, want %q", got, wantMemo)
		}
		var tr server.TopKResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	first := fetch("miss")
	second := fetch("hit")
	// The memoized answer must be identical, ElapsedMs aside.
	first.ElapsedMs, second.ElapsedMs = 0, 0
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("memo hit diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
	if hits := reg.Counter(server.MetricTopKMemoHits, "").Value(); hits != 1 {
		t.Fatalf("memo hits = %d, want 1", hits)
	}

	// Any applied write — including one for an entity this request never
	// ranked — drops every fragment.
	postReview(t, srv.URL, server.ReviewRequest{
		ID: "m-inv", EntityID: db.EntityIDs()[1], Text: "dirty rooms, rude staff",
	})
	third := fetch("miss")
	if misses := reg.Counter(server.MetricTopKMemoMisses, "").Value(); misses != 2 {
		t.Fatalf("memo misses = %d, want 2", misses)
	}
	// After the write the recomputed fragment reflects the new state —
	// rows come back (the predicate set still ranks) but via the engine.
	if len(third.Rows) == 0 {
		t.Fatal("post-invalidation topk returned no rows")
	}
}

func TestTopKMemoDisabled(t *testing.T) {
	_, db, _ := testServer(t)
	srv := httptest.NewServer(server.New(db, server.Options{DisableTopKMemo: true}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/topk?predicate=clean+rooms&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if h := resp.Header.Get("X-Topk-Memo"); h != "" {
		t.Fatalf("X-Topk-Memo = %q with the memo disabled", h)
	}
}

// TestJournalStatusIncrementalMatchesScan: the chain-served status must
// agree exactly with the on-disk scans it replaced, full-journal and
// ?at=K alike.
func TestJournalStatusIncrementalMatchesScan(t *testing.T) {
	db, jdir, srv := journaledServer(t)
	ids := db.EntityIDs()
	for i := 0; i < 5; i++ {
		postReview(t, srv.URL, server.ReviewRequest{
			ID: fmt.Sprintf("inc-%d", i), EntityID: ids[i%len(ids)],
			Text: "quiet rooms, lovely breakfast, gorgeous view",
		})
	}

	st, err := journal.StatDir(jdir)
	if err != nil {
		t.Fatal(err)
	}
	var full server.JournalStatusResponse
	getJSON(t, srv.URL+"/journal/status", http.StatusOK, &full)
	if full.LastSeq != st.LastSeq || full.Records != st.Records ||
		full.Segments != st.Segments || full.PrefixHash != st.PrefixHash || full.HashSeq != st.LastSeq {
		t.Fatalf("incremental status %+v disagrees with StatDir %+v", full, st)
	}

	for at := uint64(1); at <= st.LastSeq+2; at++ {
		wantHash, wantSeq, err := journal.PrefixHashAt(jdir, at)
		if err != nil {
			t.Fatal(err)
		}
		var got server.JournalStatusResponse
		getJSON(t, fmt.Sprintf("%s/journal/status?at=%d", srv.URL, at), http.StatusOK, &got)
		if got.PrefixHash != wantHash || got.HashSeq != wantSeq {
			t.Fatalf("at=%d: (%s, %d), want (%s, %d)", at, got.PrefixHash, got.HashSeq, wantHash, wantSeq)
		}
	}
}
