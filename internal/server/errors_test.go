package server_test

// Error-envelope audit: every endpoint, for every malformed input and
// wrong verb, must answer with a matching 4xx status and the JSON
// {"error": ...} envelope — never 200 with an empty or half-parsed body,
// never the mux's plain-text 404.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestErrorEnvelopes(t *testing.T) {
	_, _, srv := testServer(t)
	client := srv.Client()

	cases := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
		wantErr    string // substring of the envelope's error field
	}{
		// /query GET
		{"query get missing sql", http.MethodGet, "/query", "", http.StatusBadRequest, "missing sql"},
		{"query get bad k", http.MethodGet, "/query?sql=select+*+from+Entities&k=ten", "", http.StatusBadRequest, "bad k"},
		{"query get unparseable sql", http.MethodGet, "/query?sql=selec", "", http.StatusBadRequest, "query"},
		// /query POST: malformed JSON in all its flavors
		{"query post empty body", http.MethodPost, "/query", "", http.StatusBadRequest, "bad request body"},
		{"query post syntax error", http.MethodPost, "/query", "{", http.StatusBadRequest, "bad request body"},
		{"query post not an object", http.MethodPost, "/query", `"just a string"`, http.StatusBadRequest, "bad request body"},
		{"query post wrong type", http.MethodPost, "/query", `{"sql": 7}`, http.StatusBadRequest, "bad request body"},
		{"query post unknown field", http.MethodPost, "/query", `{"sql": "select * from Entities", "sqll": "typo"}`, http.StatusBadRequest, "bad request body"},
		{"query post trailing garbage", http.MethodPost, "/query", `{"sql": "select * from Entities"} {"second": "doc"}`, http.StatusBadRequest, "trailing data"},
		{"query post missing sql", http.MethodPost, "/query", `{"k": 3}`, http.StatusBadRequest, "missing sql"},
		// /query wrong verb
		{"query delete", http.MethodDelete, "/query", "", http.StatusMethodNotAllowed, "use GET or POST"},
		{"query put", http.MethodPut, "/query", "{}", http.StatusMethodNotAllowed, "use GET or POST"},
		// /interpret
		{"interpret missing predicate", http.MethodGet, "/interpret", "", http.StatusBadRequest, "missing predicate"},
		{"interpret post", http.MethodPost, "/interpret?predicate=clean", "", http.StatusMethodNotAllowed, "use GET"},
		// /evidence
		{"evidence missing params", http.MethodGet, "/evidence", "", http.StatusBadRequest, "missing entity or attribute"},
		{"evidence missing attribute", http.MethodGet, "/evidence?entity=h0001", "", http.StatusBadRequest, "missing entity or attribute"},
		{"evidence unknown attribute", http.MethodGet, "/evidence?entity=h0001&attribute=nope", "", http.StatusNotFound, "no attribute"},
		{"evidence unknown entity", http.MethodGet, "/evidence?entity=zzz&attribute=room_cleanliness", "", http.StatusNotFound, "no summary"},
		{"evidence bad limit", http.MethodGet, "/evidence?entity=h0001&attribute=room_cleanliness&limit=-2", "", http.StatusBadRequest, "bad limit"},
		{"evidence post", http.MethodPost, "/evidence?entity=h0001&attribute=room_cleanliness", "", http.StatusMethodNotAllowed, "use GET"},
		// /topk
		{"topk missing predicate", http.MethodGet, "/topk", "", http.StatusBadRequest, "missing predicate"},
		{"topk bad k", http.MethodGet, "/topk?predicate=clean&k=0", "", http.StatusBadRequest, "bad k"},
		{"topk post", http.MethodPost, "/topk?predicate=clean", "", http.StatusMethodNotAllowed, "use GET"},
		// /schema and /healthz wrong verb
		{"schema post", http.MethodPost, "/schema", "", http.StatusMethodNotAllowed, "use GET"},
		{"healthz delete", http.MethodDelete, "/healthz", "", http.StatusMethodNotAllowed, "use GET"},
		// unknown paths: JSON envelope, not the mux's text 404
		{"unknown path", http.MethodGet, "/nope", "", http.StatusNotFound, "no such endpoint"},
		{"root path", http.MethodGet, "/", "", http.StatusNotFound, "no such endpoint"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, srv.URL+tc.target, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if len(raw) == 0 {
				t.Fatal("empty body (the bug this audit exists to prevent)")
			}
			var env struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("body is not a JSON envelope: %q", raw)
			}
			if env.Error == "" || !strings.Contains(env.Error, tc.wantErr) {
				t.Errorf("error %q does not contain %q", env.Error, tc.wantErr)
			}
		})
	}
}

// TestHeadAllowedOnReadEndpoints: HEAD must keep working on the GET
// endpoints (net/http strips the body) so load-balancer health probes do
// not take replicas out of rotation.
func TestHeadAllowedOnReadEndpoints(t *testing.T) {
	_, _, srv := testServer(t)
	for _, target := range []string{"/healthz", "/schema"} {
		resp, err := srv.Client().Head(srv.URL + target)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("HEAD %s: status %d, want 200", target, resp.StatusCode)
		}
	}
}

// TestMethodNotAllowedSetsAllow: 405 responses advertise the allowed
// verbs.
func TestMethodNotAllowedSetsAllow(t *testing.T) {
	_, _, srv := testServer(t)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/query", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Allow"); got != "GET, POST" {
		t.Errorf("Allow = %q, want \"GET, POST\"", got)
	}
}
