package server

// Group commit: the concurrent write pipeline behind POST /reviews.
//
// Handlers run the expensive linguistic half of ingestion concurrently
// (core.PrepareReview reads only the frozen model) and stage the
// prepared delta on a bounded commit queue. The first writer to stage
// while no commit is running becomes the LEADER: it drains the whole
// queue as one batch, journals the batch with a single shared fsync
// (journal.Journal.AppendBatch), extends the prefix-hash chain, folds
// the deltas into the serving state in sequence order under the write
// lock, and wakes every waiter with its outcome. Durability is never
// weakened — a 200 means the review is fsynced — but N writers arriving
// together pay one fsync and one lock acquisition instead of N.
//
// There is no background committer goroutine: leadership is handed from
// batch to batch by closing the next staged waiter's lead channel, so
// the pipeline is quiescent whenever no write is in flight and the
// server needs no Close/lifecycle management.
//
// A full queue refuses the write with 503 + Retry-After instead of
// growing the backlog without bound (IngestOptions.MaxQueueDepth).

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// DefaultCommitQueueDepth bounds the staged commit queue when
// IngestOptions.MaxQueueDepth is unset. 256 staged writes is far beyond
// the fsync batching sweet spot; past it the server is not keeping up
// and shedding load beats queueing it.
const DefaultCommitQueueDepth = 256

// commitRequest is one staged write awaiting its group commit. The
// handler fills prepared/replica, the leader fills the outcome, and the
// closed done channel publishes it (channel close is the happens-before
// edge that makes the leader's writes visible to the waiter).
type commitRequest struct {
	prepared *core.PreparedReview
	replica  bool
	staged   time.Time

	// Outcome, written by the leader before close(done).
	status int            // HTTP status; 200 means resp is valid
	errMsg string         // error body for non-200
	resp   ReviewResponse // success body
	// batchSize and leaderTrace attribute the commit for tracing: how
	// many writes shared the fsync, and the trace id of the request that
	// led the batch — a follower's queue-wait span points at the leader
	// whose fsync it rode.
	batchSize   int
	leaderTrace string

	done chan struct{} // closed when the outcome is ready
	lead chan struct{} // closed to hand this waiter leadership
}

// commitQueue is the staging area between concurrent handlers and the
// single in-flight group commit. leading is true while some goroutine
// is committing (or has been handed leadership and not yet drained).
type commitQueue struct {
	mu      sync.Mutex
	staged  []*commitRequest
	leading bool
	depth   int
}

// stage enqueues a request. ok is false when the queue is full; lead is
// true when the caller must run the next commit itself; n is the staged
// depth after the enqueue (for the queue-depth gauge).
func (q *commitQueue) stage(cr *commitRequest) (ok, lead bool, n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.staged) >= q.depth {
		return false, false, len(q.staged)
	}
	q.staged = append(q.staged, cr)
	if !q.leading {
		q.leading = true
		return true, true, len(q.staged)
	}
	return true, false, len(q.staged)
}

// handleReviewGrouped is the group-commit write path: prepare outside
// every lock, stage, commit (as leader or waiter), respond.
func (s *Server) handleReviewGrouped(w http.ResponseWriter, ctx context.Context, req ReviewRequest, rv core.ReviewData) {
	_, prepSpan := s.opts.Trace.Start(ctx, "commit.prepare")
	p, err := s.db.PrepareReview(rv)
	if err != nil {
		prepSpan.SetError(err.Error())
		prepSpan.End()
		WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prepSpan.End()
	cr := &commitRequest{
		prepared: p,
		replica:  req.Replica,
		staged:   time.Now(),
		done:     make(chan struct{}),
		lead:     make(chan struct{}),
	}
	ok, lead, depth := s.cq.stage(cr)
	if !ok {
		s.metrics.backpressure.Inc()
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusServiceUnavailable,
			"write queue full (%d staged); retry shortly", s.cq.depth)
		return
	}
	s.metrics.queueDepth.Set(float64(depth))
	// commit.wait covers staging → published outcome: for the leader this
	// is the commit it ran itself; for a follower it is the queue wait
	// plus the leader's batch, attributed via batch_size + leader_trace.
	waitCtx, waitSpan := s.opts.Trace.Start(ctx, "commit.wait")
	s.awaitCommit(waitCtx, cr, lead)
	if waitSpan != nil {
		if lead {
			waitSpan.SetAttr("role", "leader")
		} else {
			waitSpan.SetAttr("role", "follower")
		}
		waitSpan.SetAttr("batch_size", strconv.Itoa(cr.batchSize))
		waitSpan.SetAttr("leader_trace", cr.leaderTrace)
	}
	waitSpan.End()
	s.metrics.commitWait.ObserveSince(cr.staged)
	if cr.status != http.StatusOK {
		WriteError(w, cr.status, "%s", cr.errMsg)
		return
	}
	WriteJSON(w, http.StatusOK, cr.resp)
}

// awaitCommit blocks until cr's outcome is published, leading exactly one
// commit if leadership lands on this goroutine. A goroutine leads at most
// once: cr is staged before leadership can reach it, so its own drain
// always includes cr and closes cr.done. (It must not loop on cr.lead —
// after its own commit both channels are closed, and re-entering
// leadCommit would run a second leader concurrently with the goroutine
// the handoff actually chose.)
func (s *Server) awaitCommit(ctx context.Context, cr *commitRequest, lead bool) {
	if !lead {
		select {
		case <-cr.done:
			return
		case <-cr.lead:
		}
	}
	s.leadCommit(ctx)
	<-cr.done
}

// leadCommit drains the staged queue, commits it as one batch, and
// hands leadership to the first writer that staged during the commit
// (if any). The handoff via close(lead) sequences batches: the next
// leader's validation reads happen after this batch's fold completes.
func (s *Server) leadCommit(ctx context.Context) {
	s.cq.mu.Lock()
	batch := s.cq.staged
	s.cq.staged = nil
	s.cq.mu.Unlock()
	s.metrics.queueDepth.Set(0)

	s.commitBatch(ctx, batch)

	s.cq.mu.Lock()
	var next *commitRequest
	if len(s.cq.staged) > 0 {
		next = s.cq.staged[0]
	} else {
		s.cq.leading = false
	}
	s.cq.mu.Unlock()
	if next != nil {
		close(next.lead)
	}
}

// commitBatch runs one group commit end-to-end: validate in staging
// order, journal every accepted delta with one shared fsync, extend the
// prefix-hash chain, fold in sequence order under the write lock, and
// publish each waiter's outcome. Validation and the journal append run
// outside the server lock — only this goroutine mutates the database
// (single leader at a time, batches sequenced by the leadership
// handoff), so its lock-free reads cannot race the fold.
func (s *Server) commitBatch(ctx context.Context, batch []*commitRequest) {
	leaderTrace := trace.ID(ctx)
	for _, cr := range batch {
		cr.batchSize = len(batch)
		cr.leaderTrace = leaderTrace
	}
	defer func() {
		for _, cr := range batch {
			close(cr.done)
		}
	}()
	s.metrics.commitBatch.Observe(float64(len(batch)))
	ing := s.opts.Ingest

	// Validate in staging order; pendingIDs catches duplicates within
	// the batch itself (HasReview only knows applied reviews).
	accepted := make([]*commitRequest, 0, len(batch))
	owned := make([]bool, 0, len(batch))
	pendingIDs := make(map[string]bool, len(batch))
	for _, cr := range batch {
		rv := cr.prepared.Review()
		if pendingIDs[rv.ID] || s.db.HasReview(rv.ID) {
			cr.status = http.StatusConflict
			cr.errMsg = fmt.Sprintf("review %q already ingested", rv.ID)
			continue
		}
		own := s.db.ServesEntity(rv.EntityID)
		if !own && !(cr.replica && ing.AcceptUnowned) {
			cr.status = http.StatusNotFound
			cr.errMsg = fmt.Sprintf("no entity %q served here", rv.EntityID)
			continue
		}
		pendingIDs[rv.ID] = true
		accepted = append(accepted, cr)
		owned = append(owned, own)
	}
	if len(accepted) == 0 {
		return
	}

	// Journal the accepted deltas: one AppendBatch, one fsync. The
	// per-record fallback exists for configurations that only wire
	// Append; a failure there fails the unjournaled remainder while the
	// already-journaled prefix still folds (it is durable and must be
	// served — replay would apply it anyway).
	var firstSeq uint64
	durable := false
	if ing.AppendBatch != nil {
		rvs := make([]core.ReviewData, len(accepted))
		for i, cr := range accepted {
			rvs[i] = cr.prepared.Review()
		}
		_, jSpan := s.opts.Trace.Start(ctx, "commit.journal")
		jSpan.SetAttr("batch_size", strconv.Itoa(len(accepted)))
		t0 := time.Now()
		seq, err := ing.AppendBatch(rvs)
		s.metrics.journalAppend.ObserveSince(t0)
		if err != nil {
			jSpan.SetError(err.Error())
			jSpan.End()
			for _, cr := range accepted {
				cr.status = http.StatusInternalServerError
				cr.errMsg = fmt.Sprintf("journal append: %v", err)
			}
			return
		}
		jSpan.End()
		firstSeq, durable = seq, true
	} else if ing.Append != nil {
		_, jSpan := s.opts.Trace.Start(ctx, "commit.journal")
		jSpan.SetAttr("batch_size", strconv.Itoa(len(accepted)))
		t0 := time.Now()
		journaled := accepted[:0]
		for i, cr := range accepted {
			seq, err := ing.Append(cr.prepared.Review())
			if err != nil {
				jSpan.SetError(err.Error())
				for _, c := range accepted[i:] {
					c.status = http.StatusInternalServerError
					c.errMsg = fmt.Sprintf("journal append: %v", err)
				}
				break
			}
			if i == 0 {
				firstSeq = seq
			}
			journaled = append(journaled, cr)
		}
		s.metrics.journalAppend.ObserveSince(t0)
		jSpan.End()
		durable = ing.AppendDurable
		accepted, owned = journaled, owned[:len(journaled)]
		if len(accepted) == 0 {
			return
		}
	}

	// The chain mirrors the journal, not the applied state, so it
	// advances before the fold. PrefixHashes locks internally, so
	// concurrent /journal/status probes stay consistent.
	if firstSeq > 0 {
		for i, cr := range accepted {
			s.extendPrefixChain(firstSeq+uint64(i), cr.prepared.Review(), leaderTrace)
		}
	}

	// Fold in sequence order under the write lock. A fold error cannot
	// un-journal the delta — the next load replays it — so the failure
	// is surfaced (500) and the rest of the batch still folds; memoized
	// fragments are invalidated either way.
	_, applySpan := s.opts.Trace.Start(ctx, "commit.apply")
	applySpan.SetAttr("batch_size", strconv.Itoa(len(accepted)))
	defer applySpan.End()
	s.mu.Lock()
	for i, cr := range accepted {
		var seq uint64
		if firstSeq > 0 {
			seq = firstSeq + uint64(i)
		}
		rv := cr.prepared.Review()
		before := len(s.db.Extractions)
		t0 := time.Now()
		err := s.db.ApplyPrepared(cr.prepared)
		s.metrics.apply.ObserveSince(t0)
		if err != nil {
			cr.status = http.StatusInternalServerError
			cr.errMsg = fmt.Sprintf("apply (journaled at seq %d): %v", seq, err)
			continue
		}
		if seq > 0 {
			s.appliedSeq = seq
			s.metrics.appliedSeq.Set(float64(seq))
		}
		cr.status = http.StatusOK
		cr.resp = ReviewResponse{
			ReviewID:    rv.ID,
			EntityID:    rv.EntityID,
			Owned:       owned[i],
			Extractions: len(s.db.Extractions) - before,
			Seq:         seq,
			Durable:     durable,
		}
	}
	if s.topkMemo != nil {
		s.topkMemo.invalidate()
	}
	s.mu.Unlock()
}
