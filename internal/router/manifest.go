package router

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/snapshot"
)

// ManifestOptions configure FromManifest.
type ManifestOptions struct {
	// Options are the router options.
	Options
	// Replicas overrides the manifest's replica count when > 0: each
	// shard range is served by that many independently loaded in-process
	// backends (each replica loads its own verified copy of the shard
	// snapshot, so replicas share no mutable state — exactly like a
	// remote fleet). 0 follows the manifest.
	Replicas int
	// ReplicasPerRange overrides the replica count per shard range
	// (index-aligned with the manifest's shards; entries <= 0 mean 1).
	// Takes precedence over Replicas and the manifest. Hot ranges can
	// run R=3 while cold ranges stay at R=1.
	ReplicasPerRange []int
	// ShardServer, when non-nil, customizes each in-process shard's server
	// options (entity naming, /healthz snapshot report, journaling); path
	// is the shard's resolved snapshot file and replica the backend's
	// position in the range's replica set. nil serves each shard with
	// zero options.
	ShardServer func(shard, replica int, path string, db *core.DB, meta *snapshot.Meta) server.Options
	// WrapBackend, when non-nil, wraps each node's backend before the
	// router sees it — the fault-injection seam (DelayBackend, kill
	// switches) the load harness and the replica smoke use.
	WrapBackend func(shard, replica int, b Backend) Backend
}

// FromManifest assembles a single-process sharded deployment from a shard
// manifest: every shard snapshot is digest-verified against the manifest,
// loaded (once per replica), checked for the shard identity it claims,
// and served through an in-process backend behind a router. This is the
// `opinedbd -router` (no -router-backends) path and the builder's
// -verify path. Backend names are "shard<i>" for single-replica fleets
// (unchanged from the pre-replication router) and "shard<i>.r<j>"
// otherwise.
func FromManifest(manifestPath string, opts ManifestOptions) (*Router, *snapshot.Manifest, error) {
	m, err := snapshot.LoadManifest(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	if n := len(opts.ReplicasPerRange); n > 0 && n != m.Shards {
		return nil, nil, fmt.Errorf("router: ReplicasPerRange lists %d ranges for %d shards", n, m.Shards)
	}
	countFor := func(shard int) int {
		if shard < len(opts.ReplicasPerRange) {
			if n := opts.ReplicasPerRange[shard]; n > 0 {
				return n
			}
			return 1
		}
		if opts.Replicas > 0 {
			return opts.Replicas
		}
		return m.ReplicaCount(shard)
	}
	multi := false
	for i := 0; i < m.Shards; i++ {
		if countFor(i) > 1 {
			multi = true
		}
	}
	shards := make([]Shard, 0, m.Shards)
	for _, ms := range m.Shard {
		sh := Shard{FirstEntity: ms.FirstEntity, LastEntity: ms.LastEntity}
		replicas := countFor(ms.Index)
		for j := 0; j < replicas; j++ {
			db, meta, err := snapshot.LoadVerifiedShard(manifestPath, m, ms.Index)
			if err != nil {
				return nil, nil, err
			}
			var srvOpts server.Options
			if opts.ShardServer != nil {
				srvOpts = opts.ShardServer(ms.Index, j, snapshot.ShardPath(manifestPath, ms), db, meta)
			}
			name := fmt.Sprintf("shard%d", ms.Index)
			if multi {
				name = fmt.Sprintf("shard%d.r%d", ms.Index, j)
			}
			var b Backend = NewLocalBackend(name, db, srvOpts)
			if opts.WrapBackend != nil {
				b = opts.WrapBackend(ms.Index, j, b)
			}
			if j == 0 {
				sh.Backend = b
			} else {
				sh.Replicas = append(sh.Replicas, b)
			}
		}
		shards = append(shards, sh)
	}
	rt, err := New(shards, opts.Options)
	if err != nil {
		return nil, nil, err
	}
	return rt, m, nil
}
