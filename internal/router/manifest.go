package router

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/snapshot"
)

// ManifestOptions configure FromManifest.
type ManifestOptions struct {
	// Options are the router options.
	Options
	// ShardServer, when non-nil, customizes each in-process shard's server
	// options (entity naming, /healthz snapshot report); path is the
	// shard's resolved snapshot file. nil serves each shard with zero
	// options.
	ShardServer func(index int, path string, db *core.DB, meta *snapshot.Meta) server.Options
}

// FromManifest assembles a single-process sharded deployment from a shard
// manifest: every shard snapshot is digest-verified against the manifest,
// loaded, checked for the shard identity it claims, and served through an
// in-process backend behind a router. This is the `opinedbd -router`
// (no -router-backends) path and the builder's -verify path.
func FromManifest(manifestPath string, opts ManifestOptions) (*Router, *snapshot.Manifest, error) {
	m, err := snapshot.LoadManifest(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	shards := make([]Shard, 0, m.Shards)
	for _, ms := range m.Shard {
		db, meta, err := snapshot.LoadVerifiedShard(manifestPath, m, ms.Index)
		if err != nil {
			return nil, nil, err
		}
		var srvOpts server.Options
		if opts.ShardServer != nil {
			srvOpts = opts.ShardServer(ms.Index, snapshot.ShardPath(manifestPath, ms), db, meta)
		}
		shards = append(shards, Shard{
			Backend:     NewLocalBackend(fmt.Sprintf("shard%d", ms.Index), db, srvOpts),
			FirstEntity: ms.FirstEntity,
			LastEntity:  ms.LastEntity,
		})
	}
	rt, err := New(shards, opts.Options)
	if err != nil {
		return nil, nil, err
	}
	return rt, m, nil
}
