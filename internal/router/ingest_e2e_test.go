package router_test

// End-to-end test of sharded live ingestion: a base build is held short
// of its last reviews, sharded onto disk, served over real HTTP with a
// journal per shard, and the held-out reviews are written through the
// router's POST /reviews. The acceptance contract: the fleet answers the
// full 948-entry harness fingerprint byte-identically to a monolith that
// ingested the same reviews — both live and after every shard restarts
// from its snapshot + journal — because writes are owner-first,
// replicated to every shard's corpus-global state, and journaled in one
// fleet-wide order.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/snapshot"
)

const (
	ingestShards = 3
	ingestDeltas = 12
)

var (
	ingestOnce     sync.Once
	ingestData     *corpus.Dataset
	ingestDeltaRvs []core.ReviewData
	ingestBaseSnap string // monolithic base snapshot (reference loads)
	ingestManifest string
	ingestURLs     []string
	ingestJournals []*journal.Journal // live shard journals (closed before compaction)
	ingestErr      error
)

// ingestFixture builds the base corpus (minus the delta tail), writes a
// monolithic base snapshot plus a 3-shard fleet with journals, and serves
// every shard over HTTP with ingestion enabled.
func ingestFixture(t *testing.T) (*corpus.Dataset, []core.ReviewData, *snapshot.Manifest) {
	t.Helper()
	ingestOnce.Do(func() { ingestErr = buildIngestFleet() })
	if ingestErr != nil {
		t.Fatalf("ingest fixture: %v", ingestErr)
	}
	m, err := snapshot.LoadManifest(ingestManifest)
	if err != nil {
		t.Fatalf("ingest fixture manifest: %v", err)
	}
	return ingestData, ingestDeltaRvs, m
}

func buildIngestFleet() error {
	genCfg := corpus.SmallConfig()
	genCfg.Seed = 1
	ingestData = corpus.GenerateHotels(genCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.UseSubstitutionIndex = true
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	in := harness.BuildInputFromDataset(ingestData, 400, 300, rng)
	split := len(in.Reviews) - ingestDeltas
	ingestDeltaRvs = append([]core.ReviewData(nil), in.Reviews[split:]...)
	in.Reviews = in.Reviews[:split]
	base, err := core.Build(in, cfg)
	if err != nil {
		return fmt.Errorf("base build: %w", err)
	}

	dir, err := os.MkdirTemp("", "router-ingest-*")
	if err != nil {
		return err
	}
	// The dir outlives the fixture deliberately (shared by the package
	// run); the OS temp cleaner reclaims it.
	ingestBaseSnap = filepath.Join(dir, "hotel-base.snap")
	if _, err := snapshot.Save(ingestBaseSnap, base); err != nil {
		return err
	}

	shardDBs, parts, err := base.Shards(ingestShards)
	if err != nil {
		return err
	}
	manifest := &snapshot.Manifest{
		FormatVersion: snapshot.FormatVersion,
		Name:          base.Name,
		BuildSeed:     1,
		Shards:        ingestShards,
		TotalEntities: len(base.EntityIDs()),
		CreatedUnix:   1,
	}
	for i, sdb := range shardDBs {
		ids := parts[i]
		path := filepath.Join(dir, fmt.Sprintf("hotel-shard%d.snap", i))
		meta, err := snapshot.SaveShard(path, sdb, &snapshot.ShardMeta{
			Index: i, Count: ingestShards,
			Entities: len(ids), TotalEntities: len(base.EntityIDs()),
			FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
		})
		if err != nil {
			return fmt.Errorf("shard %d save: %w", i, err)
		}
		manifest.Shard = append(manifest.Shard, snapshot.ManifestShard{
			Index: i, Path: filepath.Base(path),
			Entities: len(ids), FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
			SnapshotSHA256: meta.SHA256, SnapshotBytes: meta.FileBytes,
		})
	}
	ingestManifest = filepath.Join(dir, "hotel.manifest.json")
	if err := snapshot.WriteManifest(ingestManifest, manifest); err != nil {
		return err
	}

	for i := range manifest.Shard {
		srv, err := serveShardWithJournal(i)
		if err != nil {
			return err
		}
		ingestURLs = append(ingestURLs, srv.URL)
	}
	return nil
}

// serveShardWithJournal is the opinedbd shard role in miniature: load the
// digest-verified shard, replay its journal, serve with append-then-apply
// ingestion.
func serveShardWithJournal(index int) (*httptest.Server, error) {
	m, err := snapshot.LoadManifest(ingestManifest)
	if err != nil {
		return nil, err
	}
	db, _, err := snapshot.LoadVerifiedShard(ingestManifest, m, index)
	if err != nil {
		return nil, fmt.Errorf("shard %d load: %w", index, err)
	}
	jdir := journal.Dir(snapshot.ShardPath(ingestManifest, m.Shard[index]))
	j, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		return nil, err
	}
	ingestJournals = append(ingestJournals, j)
	if _, err := journal.ApplyAll(db, jdir); err != nil {
		return nil, fmt.Errorf("shard %d replay: %w", index, err)
	}
	return httptest.NewServer(server.New(db, server.Options{
		Ingest: &server.IngestOptions{
			AcceptUnowned: true,
			Append: func(rv core.ReviewData) (uint64, error) {
				return j.Append(journal.Review{
					ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
				})
			},
		},
	})), nil
}

// dirExists reports whether path exists as a directory.
func dirExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// ingestRouter assembles a router (and front handler) over the fixture's
// shard servers.
func ingestRouter(t *testing.T, m *snapshot.Manifest) (*router.Router, *httptest.Server) {
	t.Helper()
	shards := make([]router.Shard, len(ingestURLs))
	for i, u := range ingestURLs {
		shards[i] = router.Shard{
			Backend:     &router.HTTPBackend{BaseURL: u},
			FirstEntity: m.Shard[i].FirstEntity,
			LastEntity:  m.Shard[i].LastEntity,
		}
	}
	rt, err := router.New(shards, router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(router.NewHandler(rt))
	t.Cleanup(front.Close)
	return rt, front
}

// TestShardedIngestion runs the whole lifecycle in order: route writes,
// verify fleet-vs-monolith identity, restart from snapshot+journal,
// verify again, then the write-path error contract.
func TestShardedIngestion(t *testing.T) {
	d, deltas, m := ingestFixture(t)
	rt, front := ingestRouter(t, m)

	ownerOf := func(id string) int {
		for i := range m.Shard {
			if id >= m.Shard[i].FirstEntity && id <= m.Shard[i].LastEntity {
				return i
			}
		}
		return -1
	}

	t.Run("route writes", func(t *testing.T) {
		for _, rv := range deltas {
			body, _ := json.Marshal(server.ReviewRequest{
				ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
			})
			resp, err := http.Post(front.URL+"/reviews", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var ack router.ReviewResult
			decErr := json.NewDecoder(resp.Body).Decode(&ack)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || decErr != nil {
				t.Fatalf("write %s: status %d (%v)", rv.ID, resp.StatusCode, decErr)
			}
			if !ack.Owned || ack.OwnerShard != ownerOf(rv.EntityID) {
				t.Fatalf("write %s: owner %d owned=%v, manifest says %d", rv.ID, ack.OwnerShard, ack.Owned, ownerOf(rv.EntityID))
			}
			if ack.Replicated != ingestShards-1 || ack.Partial {
				t.Fatalf("write %s: replicated %d partial=%v", rv.ID, ack.Replicated, ack.Partial)
			}
		}
	})

	// The monolith that ingested the same deltas in the same order.
	reference, _, err := snapshot.Load(ingestBaseSnap)
	if err != nil {
		t.Fatal(err)
	}
	for _, rv := range deltas {
		if err := reference.ApplyReview(rv); err != nil {
			t.Fatal(err)
		}
	}
	wantFP, n := harness.QueryFingerprint(d, reference)
	if n != 948 {
		t.Errorf("fingerprint covers %d query-set entries, want the full 948", n)
	}

	t.Run("fleet answers like the monolith", func(t *testing.T) {
		gotFP, _ := harness.QueryFingerprint(d, rt.Engine(context.Background()))
		if gotFP != wantFP {
			t.Fatal("ingesting fleet diverges from the monolith over the union corpus")
		}
	})

	t.Run("restart from snapshot+journal", func(t *testing.T) {
		// Note the shard snapshots on disk still carry only the base build
		// — their manifest digests stay valid — and the journals alone
		// carry the enrichment.
		shards := make([]router.Shard, ingestShards)
		for i := range shards {
			db, _, err := snapshot.LoadVerifiedShard(ingestManifest, m, i)
			if err != nil {
				t.Fatalf("shard %d reload: %v", i, err)
			}
			jdir := journal.Dir(snapshot.ShardPath(ingestManifest, m.Shard[i]))
			st, err := journal.ApplyAll(db, jdir)
			if err != nil {
				t.Fatalf("shard %d replay: %v", i, err)
			}
			if st.Applied != len(deltas) {
				t.Fatalf("shard %d replayed %d deltas, want %d (every shard journals every write)", i, st.Applied, len(deltas))
			}
			shards[i] = router.Shard{
				Backend:     router.NewLocalBackend(fmt.Sprintf("reloaded%d", i), db, server.Options{}),
				FirstEntity: m.Shard[i].FirstEntity,
				LastEntity:  m.Shard[i].LastEntity,
			}
		}
		reloaded, err := router.New(shards, router.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotFP, _ := harness.QueryFingerprint(d, reloaded.Engine(context.Background()))
		if gotFP != wantFP {
			t.Fatal("restarted fleet diverges from the monolith")
		}
	})

	t.Run("write errors", func(t *testing.T) {
		post := func(t *testing.T, req server.ReviewRequest) (int, []byte) {
			t.Helper()
			body, _ := json.Marshal(req)
			resp, err := http.Post(front.URL+"/reviews", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			_, _ = buf.ReadFrom(resp.Body)
			return resp.StatusCode, buf.Bytes()
		}
		// Duplicate: the owner rejects, nothing mutates.
		if status, _ := post(t, server.ReviewRequest{
			ID: deltas[0].ID, EntityID: deltas[0].EntityID, Text: deltas[0].Text,
		}); status != http.StatusConflict {
			t.Errorf("duplicate: status %d, want 409", status)
		}
		// Ghost entity inside a shard's range: the range owner vetoes it
		// before any shard mutates (the replica flag is router-internal).
		ghost := m.Shard[1].FirstEntity + "0"
		if ownerOf(ghost) != 1 {
			t.Fatalf("test ghost %q not inside shard 1's range", ghost)
		}
		if status, body := post(t, server.ReviewRequest{ID: "ghost-1", EntityID: ghost, Text: "nice room"}); status != http.StatusNotFound {
			t.Errorf("in-range ghost: status %d (%s), want 404", status, body)
		}
		// Entity beyond every range: rejected by the router itself.
		if status, _ := post(t, server.ReviewRequest{ID: "ghost-2", EntityID: "zzzz-beyond", Text: "nice room"}); status != http.StatusNotFound {
			t.Errorf("out-of-range ghost: status %d, want 404", status)
		}
		// No journal grew: every shard still holds exactly the real deltas.
		for i := range m.Shard {
			jdir := journal.Dir(snapshot.ShardPath(ingestManifest, m.Shard[i]))
			stats, err := journal.Replay(jdir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Records != len(deltas) {
				t.Errorf("shard %d journal has %d records after rejected writes, want %d", i, stats.Records, len(deltas))
			}
		}
	})

	t.Run("compact fleet and refresh digests", func(t *testing.T) {
		// Compaction refuses to run under a live journal writer (it holds
		// the same directory lock a serving Journal does) — prove that,
		// then stop the fleet's journals as an operator would.
		if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
			if _, _, err := journal.CompactManifest(ingestManifest); err == nil {
				t.Fatal("compaction should refuse while the fleet holds its journals")
			}
		}
		for _, j := range ingestJournals {
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
		}
		m2, folded, err := journal.CompactManifest(ingestManifest)
		if err != nil {
			t.Fatal(err)
		}
		if len(folded) != ingestShards {
			t.Fatalf("compacted %d shards, want %d", len(folded), ingestShards)
		}
		for _, s := range folded {
			if s.Applied != len(deltas) {
				t.Errorf("shard %d folded %d deltas, want %d", s.Index, s.Applied, len(deltas))
			}
			if s.Digest != m2.Shard[s.Index].SnapshotSHA256 {
				t.Errorf("shard %d manifest digest not refreshed", s.Index)
			}
			if jdir := journal.Dir(snapshot.ShardPath(ingestManifest, m2.Shard[s.Index])); dirExists(jdir) {
				t.Errorf("shard %d journal survived compaction", s.Index)
			}
		}
		// The refreshed manifest verifies and the compacted fleet still
		// answers exactly like the enriched monolith — now with empty
		// journals.
		shards := make([]router.Shard, ingestShards)
		for i := range shards {
			db, _, err := snapshot.LoadVerifiedShard(ingestManifest, m2, i)
			if err != nil {
				t.Fatalf("shard %d load after compaction: %v", i, err)
			}
			shards[i] = router.Shard{
				Backend:     router.NewLocalBackend(fmt.Sprintf("compacted%d", i), db, server.Options{}),
				FirstEntity: m2.Shard[i].FirstEntity,
				LastEntity:  m2.Shard[i].LastEntity,
			}
		}
		compacted, err := router.New(shards, router.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotFP, _ := harness.QueryFingerprint(d, compacted.Engine(context.Background()))
		if gotFP != wantFP {
			t.Fatal("compacted fleet diverges from the monolith")
		}
	})

	t.Run("partial replication is reported", func(t *testing.T) {
		// A throwaway in-memory fleet (volatile ingestion, fresh loads of
		// the compacted snapshots) with one replica pointed at a dead
		// server: the owner still commits, the dead replica is named, and
		// nothing durable is contaminated.
		rv := deltas[0]
		owner := ownerOf(rv.EntityID)
		deadIdx := (owner + 1) % ingestShards
		deadSrv := httptest.NewServer(http.NotFoundHandler())
		deadURL := deadSrv.URL
		deadSrv.Close()
		m2, err := snapshot.LoadManifest(ingestManifest)
		if err != nil {
			t.Fatal(err)
		}
		shards := make([]router.Shard, ingestShards)
		for i := range shards {
			if i == deadIdx {
				shards[i] = router.Shard{Backend: &router.HTTPBackend{BaseURL: deadURL},
					FirstEntity: m2.Shard[i].FirstEntity, LastEntity: m2.Shard[i].LastEntity}
				continue
			}
			db, _, err := snapshot.LoadVerifiedShard(ingestManifest, m2, i)
			if err != nil {
				t.Fatal(err)
			}
			shards[i] = router.Shard{
				Backend: router.NewLocalBackend(fmt.Sprintf("volatile%d", i), db, server.Options{
					Ingest: &server.IngestOptions{AcceptUnowned: true},
				}),
				FirstEntity: m2.Shard[i].FirstEntity,
				LastEntity:  m2.Shard[i].LastEntity,
			}
		}
		rt2, err := router.New(shards, router.Options{})
		if err != nil {
			t.Fatal(err)
		}
		front2 := httptest.NewServer(router.NewHandler(rt2))
		defer front2.Close()
		body, _ := json.Marshal(server.ReviewRequest{
			ID: "partial-1", EntityID: rv.EntityID, Reviewer: "p", Day: 1, Text: "The staff was friendly.",
		})
		resp, err := http.Post(front2.URL+"/reviews", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ack router.ReviewResult
		decErr := json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			t.Fatalf("partial write: status %d (%v)", resp.StatusCode, decErr)
		}
		if !ack.Partial || ack.Replicated != ingestShards-2 {
			t.Fatalf("partial write ack = %+v, want partial with %d replicas", ack, ingestShards-2)
		}
		if _, ok := ack.ShardErrors[deadIdx]; !ok {
			t.Fatalf("dead replica %d not reported: %+v", deadIdx, ack.ShardErrors)
		}
	})
}
