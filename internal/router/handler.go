package router

// HTTP surface: the router serves the same JSON API as a single shard
// (internal/server), so clients need not know whether they talk to a
// monolith, one shard, or a routed fleet. Responses add partial/
// shard_errors fields when shards are down, and /healthz aggregates the
// fleet.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
)

// Handler wraps a Router in the shard-compatible HTTP JSON API.
type Handler struct {
	r   *Router
	mux *http.ServeMux
}

// NewHandler builds the router's HTTP surface. Every endpoint is
// wrapped in its request counter and latency histogram; /metrics
// serves the registry itself and is deliberately left uninstrumented
// (scrapes should not pollute the series they read).
func NewHandler(r *Router) *Handler {
	h := &Handler{r: r, mux: http.NewServeMux()}
	h.handle("healthz", "/healthz", h.handleHealth)
	h.handle("schema", "/schema", h.handleSchema)
	h.handle("query", "/query", h.handleQuery)
	h.handle("interpret", "/interpret", h.handleInterpret)
	h.handle("evidence", "/evidence", h.handleEvidence)
	h.handle("topk", "/topk", h.handleTopK)
	h.handle("reviews", "/reviews", h.handleReviews)
	h.handle("repair", "/repair", h.handleRepair)
	h.handle("admin", "/admin/replicas", h.handleAdminReplicas)
	h.mux.Handle("/metrics", r.metrics.reg.Handler())
	if r.tracer != nil {
		h.mux.Handle("/debug/traces", r.tracer.TracesHandler())
	}
	h.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		server.WriteError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	return h
}

// handle registers fn wrapped in the endpoint's counter and latency
// histogram. With tracing enabled this is the fleet's trace front door:
// the root span (or, for traced clients, the continuation of their
// trace) starts here, and the latency observation carries the trace id
// as an exemplar.
func (h *Handler) handle(endpoint, path string, fn http.HandlerFunc) {
	hist := h.r.metrics.requestSeconds[endpoint]
	total := h.r.metrics.requestsTotal[endpoint]
	h.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		total.Inc()
		t0 := time.Now()
		if c := h.r.tracer; c != nil {
			ctx := trace.Extract(r.Context(), r.Header)
			ctx, sp := c.Start(ctx, "router."+endpoint)
			sw := &statusWriter{ResponseWriter: w}
			fn(sw, r.WithContext(ctx))
			sp.SetAttr("status", strconv.Itoa(sw.status()))
			if sw.status() >= http.StatusInternalServerError {
				sp.SetError(http.StatusText(sw.status()))
			}
			sp.End()
			hist.ObserveSinceWithExemplar(t0, sp.Trace)
			return
		}
		fn(w, r)
		hist.ObserveSince(t0)
	})
}

// statusWriter captures the response status so the front-door span can
// be annotated (and error-marked on 5xx) after the handler returns.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (s *statusWriter) WriteHeader(c int) {
	if s.code == 0 {
		s.code = c
	}
	s.ResponseWriter.WriteHeader(c)
}

func (s *statusWriter) Write(p []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(p)
}

func (s *statusWriter) status() int {
	if s.code == 0 {
		return http.StatusOK
	}
	return s.code
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// requireMethod guards an endpoint's verb set, emitting the JSON error
// envelope on mismatch. HEAD is accepted wherever GET is (net/http strips
// the body), keeping health probes working.
func requireMethod(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m || (m == http.MethodGet && r.Method == http.MethodHead) {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	server.WriteError(w, http.StatusMethodNotAllowed, "use %s", strings.Join(methods, " or "))
	return false
}

// RouterHealthResponse is the router's /healthz payload.
type RouterHealthResponse struct {
	// Status is "ok" with every node live and in the pick, "degraded"
	// otherwise — a probe failure OR an ejection degrades the fleet,
	// so a hedged-around brownout can no longer hide behind green
	// probes.
	Status string `json:"status"`
	// Role distinguishes the router from a shard server's /healthz.
	Role string `json:"role"`
	// Shards is the number of shard ranges; Nodes the fleet's total
	// backend count (every replica of every range). Shard carries one
	// probe entry per node.
	Shards   int `json:"shards"`
	Nodes    int `json:"nodes,omitempty"`
	Entities int `json:"entities"`
	// Degraded rolls the per-node state up: true when any probe failed
	// or any replica is currently ejected from the pick. EjectedNodes
	// counts the replicas sitting out.
	Degraded     bool          `json:"degraded,omitempty"`
	EjectedNodes int           `json:"ejected_nodes,omitempty"`
	Shard        []ShardHealth `json:"shard"`
}

func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	ok, nodes := h.r.Health(r.Context())
	resp := RouterHealthResponse{Status: "ok", Role: "router", Shards: h.r.NumShards(), Shard: nodes}
	if h.r.NumNodes() > h.r.NumShards() {
		resp.Nodes = h.r.NumNodes()
	}
	// Entities counts each range once — replicas serve copies of the same
	// entities, not more of them. The first live replica of each range
	// speaks for it.
	counted := map[int]bool{}
	for _, s := range nodes {
		if s.OK && !counted[s.Index] {
			counted[s.Index] = true
			resp.Entities += s.Entities
		}
		if s.Ejected {
			resp.EjectedNodes++
		}
	}
	resp.Degraded = !ok || resp.EjectedNodes > 0
	if resp.Degraded {
		resp.Status = "degraded"
	}
	server.WriteJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleSchema(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	resp, err := h.r.Schema(r.Context())
	if err != nil {
		server.WriteError(w, http.StatusBadGateway, "%v", err)
		return
	}
	server.WriteJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Decoding is shared with the shard servers (server.DecodeQueryRequest),
	// so the two tiers accept and reject exactly the same requests.
	req, err := server.DecodeQueryRequest(r)
	if err != nil {
		if errors.Is(err, server.ErrQueryMethod) {
			// Shard servers 405 everything but GET/POST here (including
			// HEAD — /query is not a probe target); mirror them exactly
			// rather than using requireMethod's HEAD-as-GET leniency.
			w.Header().Set("Allow", "GET, POST")
			server.WriteError(w, http.StatusMethodNotAllowed, "%v", err)
		} else {
			server.WriteError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	res, err := h.r.Query(r.Context(), req.SQL, req.K)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, ErrBadQuery) {
			status = http.StatusBadRequest
		}
		server.WriteError(w, status, "%v", err)
		return
	}
	server.WriteJSON(w, http.StatusOK, res)
}

func (h *Handler) handleInterpret(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	pred, err := server.DecodeInterpretRequest(r)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, cached, err := h.r.InterpretChain(r.Context(), pred)
	if err != nil {
		server.WriteError(w, http.StatusBadGateway, "%v", err)
		return
	}
	// Surface the front-door memo cache's behavior: interpretation state
	// is replicated, so the router may answer without a shard hop.
	verdict := "miss"
	if cached {
		verdict = "hit"
	}
	hits, misses := h.r.InterpretCacheStats()
	w.Header().Set("X-Interpret-Cache", verdict)
	w.Header().Set("X-Interpret-Cache-Hits", strconv.FormatUint(hits, 10))
	w.Header().Set("X-Interpret-Cache-Misses", strconv.FormatUint(misses, 10))
	server.WriteJSON(w, http.StatusOK, resp)
}

// handleRepair is the operator trigger for one fleet-wide anti-entropy
// pass (see internal/fleet): diff journal positions, backfill laggards,
// report per-node outcomes.
func (h *Handler) handleRepair(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	report, err := h.r.RunRepair(r.Context())
	if err != nil {
		server.WriteError(w, http.StatusBadGateway, "%v", err)
		return
	}
	server.WriteJSON(w, http.StatusOK, report)
}

// handleAdminReplicas is the replica lifecycle surface. POST joins a
// fresh node into a range's replica set (two-phase catch-up with a
// byte-identity gate — Router.AdmitReplica); DELETE retires one
// (drain-then-remove — Router.RetireReplica).
func (h *Handler) handleAdminReplicas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Shard int    `json:"shard"`
			URL   string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			server.WriteError(w, http.StatusBadRequest, "bad join request: %v", err)
			return
		}
		if req.URL == "" {
			server.WriteError(w, http.StatusBadRequest, "join needs the new replica's base url")
			return
		}
		report, err := h.r.AdmitReplica(r.Context(), req.Shard, &HTTPBackend{BaseURL: req.URL})
		if err != nil {
			server.WriteError(w, http.StatusBadGateway, "%v", err)
			return
		}
		server.WriteJSON(w, http.StatusOK, report)
	case http.MethodDelete:
		shard, err1 := strconv.Atoi(r.URL.Query().Get("shard"))
		idx, err2 := strconv.Atoi(r.URL.Query().Get("replica"))
		if err1 != nil || err2 != nil {
			server.WriteError(w, http.StatusBadRequest, "retire needs integer shard and replica query parameters")
			return
		}
		report, err := h.r.RetireReplica(r.Context(), shard, idx)
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		server.WriteJSON(w, http.StatusOK, report)
	default:
		w.Header().Set("Allow", "POST, DELETE")
		server.WriteError(w, http.StatusMethodNotAllowed, "use POST to join or DELETE to retire")
	}
}

func (h *Handler) handleEvidence(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	// limit stays -1 when unspecified: the owning shard applies its
	// default, keeping the two tiers identical for the same request.
	entity, attribute, limit, err := server.DecodeEvidenceRequest(r)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := h.r.Evidence(r.Context(), entity, attribute, limit)
	if err != nil {
		server.WriteError(w, http.StatusBadGateway, "%v", err)
		return
	}
	// Pass the owning shard's status and body through verbatim.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
}

// handleReviews is the fleet's write front door: decode exactly as a
// shard would, route owner-first with replication (Router.AddReview), and
// pass deliberate shard rejections through verbatim.
func (h *Handler) handleReviews(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	req, err := server.DecodeReviewRequest(r)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := h.r.AddReview(r.Context(), req)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) {
			if se.Heal != nil {
				// A duplicate write's retry doubles as replication healing;
				// merge the fan-out outcome into the rejection envelope so
				// the client can tell convergence from continued partiality.
				var env map[string]interface{}
				if json.Unmarshal(se.Body, &env) != nil || env == nil {
					env = map[string]interface{}{}
				}
				env["owner_shard"] = se.Heal.OwnerShard
				env["replicated"] = se.Heal.Replicated
				if len(se.Heal.Healed) > 0 {
					env["healed"] = se.Heal.Healed
				}
				if se.Heal.Partial {
					env["partial"] = true
					env["shard_errors"] = se.Heal.ShardErrors
				}
				server.WriteJSON(w, se.Status, env)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(se.Status)
			_, _ = w.Write(se.Body)
			return
		}
		server.WriteError(w, http.StatusBadGateway, "%v", err)
		return
	}
	server.WriteJSON(w, http.StatusOK, res)
}

func (h *Handler) handleTopK(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	preds, k, err := server.DecodeTopKRequest(r, h.r.defaultK)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := h.r.TopK(r.Context(), preds, k)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, ErrBadQuery) {
			status = http.StatusBadRequest
		}
		server.WriteError(w, status, "%v", err)
		return
	}
	server.WriteJSON(w, http.StatusOK, res)
}
