package router

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/trace"
)

// defaultClient is shared by every HTTPBackend without an explicit
// Client. http.DefaultClient would carry no timeout at all — one shard
// that accepts the TCP connection and then hangs would pin a scatter
// goroutine forever once its context is gone — so the shared client
// bounds every phase: dial, response headers, and the whole exchange.
// The overall timeout is deliberately generous (scatters carry their
// own per-round-trip context deadlines; this is the backstop for
// callers that forget one), and the pooled transport keeps connections
// warm across the fan-out instead of re-dialing every shard per
// request.
var defaultClient = &http.Client{
	Timeout: 60 * time.Second,
	Transport: &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          128,
		MaxIdleConnsPerHost:   32,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ResponseHeaderTimeout: 30 * time.Second,
		ExpectContinueTimeout: time.Second,
	},
}

// HTTPBackend talks to a remote opinedbd shard replica over its HTTP JSON
// API.
type HTTPBackend struct {
	// BaseURL is the replica's base address ("http://10.0.0.7:8080").
	BaseURL string
	// Client is the HTTP client; nil uses a shared pooled client with
	// sane dial/header/overall timeouts (never http.DefaultClient,
	// which has none).
	Client *http.Client
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return b.BaseURL }

// Do implements Backend.
func (b *HTTPBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(b.BaseURL, "/")+target, rd)
	if err != nil {
		return 0, nil, fmt.Errorf("router: %s %s: %w", method, target, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the active trace so the replica's spans join this
	// request's trace id across the process boundary.
	trace.Inject(ctx, req.Header)
	client := b.Client
	if client == nil {
		client = defaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}

// LocalBackend serves one in-process shard database through the exact
// same HTTP handler a remote replica runs, so local and remote fleets are
// behaviorally indistinguishable (single-binary sharded serving, tests,
// and the benchall sharding experiment all use it).
type LocalBackend struct {
	name    string
	handler http.Handler
}

// NewLocalBackend wraps a shard database in an in-process backend.
func NewLocalBackend(name string, db *core.DB, opts server.Options) *LocalBackend {
	return &LocalBackend{name: name, handler: server.New(db, opts)}
}

// Name implements Backend.
func (b *LocalBackend) Name() string { return b.name }

// Do implements Backend.
func (b *LocalBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, target, rd)
	if err != nil {
		return 0, nil, fmt.Errorf("router: %s %s: %w", method, target, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Same propagation contract as the HTTP backend: in-process fleets
	// are behaviorally indistinguishable from remote ones, headers
	// included.
	trace.Inject(ctx, req.Header)
	rec := &memResponse{header: http.Header{}}
	b.handler.ServeHTTP(rec, req)
	return rec.status(), rec.buf.Bytes(), nil
}

// DelayBackend injects a fixed per-request delay in front of an inner
// backend — the fault-injection seam behind `opinedbload -slow-replica`,
// the benchall replication experiment's degraded-replica arm, and the
// hedging tests. The delay honors context cancellation, so a hedge
// winner cancels the delayed loser without waiting out the injected
// latency.
type DelayBackend struct {
	Inner Backend
	Delay time.Duration
}

// Name implements Backend.
func (b *DelayBackend) Name() string { return b.Inner.Name() + "+delay" }

// Do implements Backend.
func (b *DelayBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	if b.Delay > 0 {
		t := time.NewTimer(b.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
	return b.Inner.Do(ctx, method, target, body)
}

// memResponse is a minimal in-memory http.ResponseWriter for LocalBackend
// (httptest's recorder, without importing a testing package into the
// serving path).
type memResponse struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (m *memResponse) Header() http.Header { return m.header }
func (m *memResponse) WriteHeader(c int) {
	if m.code == 0 {
		m.code = c
	}
}
func (m *memResponse) Write(b []byte) (int, error) {
	if m.code == 0 {
		m.code = http.StatusOK
	}
	return m.buf.Write(b)
}
func (m *memResponse) status() int {
	if m.code == 0 {
		return http.StatusOK
	}
	return m.code
}
