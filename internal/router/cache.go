package router

// Front-door /interpret memo cache. A predicate's interpretation is a
// pure function of corpus-global model state, which is REPLICATED and
// byte-identical on every shard — so once any shard has answered, the
// router may answer the same predicate from memory without a hop. The
// cache is invalidated wholesale on any accepted write (and on repair
// backfills): new evidence can shift interpretations, and correctness
// beats hit rate. A generation counter closes the stale-fill race — a
// fetch that started before a write must not memoize its pre-write
// answer after the invalidation — and a size cap bounds memory against
// unbounded distinct predicates (the predicate string is arbitrary
// client input). Hit/miss counters surface in the HTTP response headers
// (X-Interpret-Cache*) so operators can watch the cache work.

import "repro/internal/server"

// maxInterpretCacheEntries bounds the memo; reaching it drops the whole
// map (epoch eviction — the cache refills from the hot predicates, and
// correctness never depends on residency).
const maxInterpretCacheEntries = 4096

// interpretCached returns the memoized response for a predicate (nil on
// a miss) and the cache generation the caller must hand back to
// interpretStore.
func (r *Router) interpretCached(predicate string) (*server.InterpretResponse, uint64) {
	r.interpMu.Lock()
	defer r.interpMu.Unlock()
	if resp, ok := r.interpCache[predicate]; ok {
		r.interpHits++
		return resp, r.interpGen
	}
	r.interpMisses++
	return nil, r.interpGen
}

// interpretStore memoizes a shard's response, unless the cache moved to
// a new generation since the caller's lookup — then the response was
// computed against pre-invalidation state and memoizing it would serve
// a stale interpretation indefinitely. Stored responses are treated as
// immutable.
func (r *Router) interpretStore(predicate string, resp *server.InterpretResponse, gen uint64) {
	r.interpMu.Lock()
	defer r.interpMu.Unlock()
	if gen != r.interpGen {
		return
	}
	if len(r.interpCache) >= maxInterpretCacheEntries {
		r.interpCache = map[string]*server.InterpretResponse{}
	}
	r.interpCache[predicate] = resp
}

// invalidateInterpret drops the whole memo cache and advances the
// generation — called on every write the fleet accepted and on every
// repair backfill.
func (r *Router) invalidateInterpret() {
	r.interpMu.Lock()
	defer r.interpMu.Unlock()
	r.interpGen++
	if len(r.interpCache) > 0 {
		r.interpCache = map[string]*server.InterpretResponse{}
	}
}

// InterpretCacheStats reports the cache's lifetime hit/miss counters.
func (r *Router) InterpretCacheStats() (hits, misses uint64) {
	r.interpMu.Lock()
	defer r.interpMu.Unlock()
	return r.interpHits, r.interpMisses
}
