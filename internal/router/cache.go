package router

// Front-door /interpret memo cache. A predicate's interpretation is a
// pure function of corpus-global model state, which is REPLICATED and
// byte-identical on every shard — so once any shard has answered, the
// router may answer the same predicate from memory without a hop. The
// cache is invalidated wholesale on any accepted write (and on repair
// backfills): new evidence can shift interpretations, and correctness
// beats hit rate. A generation counter closes the stale-fill race — a
// fetch that started before a write must not memoize its pre-write
// answer after the invalidation — and a deterministic LRU bound keeps
// memory finite against unbounded distinct predicates (the predicate
// string is arbitrary client input) while keeping exactly the hot
// predicates resident: reaching the cap evicts the single
// least-recently-used entry, never a nondeterministic wholesale drop.
// Hit/miss counters surface in the HTTP response headers
// (X-Interpret-Cache*) and on /metrics so operators can watch the
// cache work.

import "repro/internal/server"

// maxInterpretCacheEntries bounds the memo; reaching it evicts the
// least-recently-used predicate (correctness never depends on
// residency).
const maxInterpretCacheEntries = 4096

// interpretCached returns the memoized response for a predicate (nil on
// a miss) and the cache generation the caller must hand back to
// interpretStore. A hit promotes the predicate to most-recently-used.
func (r *Router) interpretCached(predicate string) (*server.InterpretResponse, uint64) {
	r.interpMu.Lock()
	defer r.interpMu.Unlock()
	if resp, ok := r.interpCache.Get(predicate); ok {
		r.metrics.interpretHits.Inc()
		return resp, r.interpGen
	}
	r.metrics.interpretMiss.Inc()
	return nil, r.interpGen
}

// interpretStore memoizes a shard's response, unless the cache moved to
// a new generation since the caller's lookup — then the response was
// computed against pre-invalidation state and memoizing it would serve
// a stale interpretation indefinitely. Stored responses are treated as
// immutable.
func (r *Router) interpretStore(predicate string, resp *server.InterpretResponse, gen uint64) {
	r.interpMu.Lock()
	defer r.interpMu.Unlock()
	if gen != r.interpGen {
		return
	}
	r.interpCache.Put(predicate, resp)
}

// invalidateInterpret drops the whole memo cache and advances the
// generation — called on every write the fleet accepted and on every
// repair backfill.
func (r *Router) invalidateInterpret() {
	r.interpMu.Lock()
	defer r.interpMu.Unlock()
	r.interpGen++
	r.interpCache.Clear()
}

// InterpretCacheStats reports the cache's lifetime hit/miss counters
// (the same values /metrics exposes).
func (r *Router) InterpretCacheStats() (hits, misses uint64) {
	return r.metrics.interpretHits.Value(), r.metrics.interpretMiss.Value()
}
