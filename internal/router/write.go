package router

// Write path: the router scatter-routes POST /reviews over the fleet.
// Per-entity state lives on exactly one shard (the manifest-range owner),
// but corpus-global model state — the review BM25 index, sentiment and
// co-occurrence statistics — is REPLICATED, and a write must reach every
// replica of it or interpretations would diverge across shards. So a
// routed write is owner-first (the owner validates and journals the
// authoritative copy; its rejection aborts the write fleet-wide with
// nothing mutated), then replicated to every other shard, which absorbs
// the global half of the delta and journals it for its own recovery.
//
// Writes are serialized fleet-wide by the router's write mutex: every
// shard journals and applies reviews in one total order, which is what
// keeps the floating-point accumulations of the marker summaries — and
// therefore the whole query fingerprint — byte-identical between a
// monolith and any sharded deployment ingesting the same sequence.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/server"
)

// StatusError carries a shard's deliberate HTTP rejection through the
// router so the front door can pass status and JSON envelope to the
// client verbatim (a 409 duplicate or 404 unknown entity is a valid
// routed answer, not a fleet failure).
type StatusError struct {
	Status int
	Body   []byte
	// Shard is the shard index that rejected.
	Shard int
	// Heal carries the replica fan-out outcome of a 409 duplicate (a
	// retry's purpose is healing a previously partial replication); nil
	// for every other rejection. The handler merges it into the response
	// so a client can see whether its retry actually converged the fleet
	// or must be retried again.
	Heal *ReviewResult
}

// Error implements error.
func (e *StatusError) Error() string {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(e.Body, &env) == nil && env.Error != "" {
		return fmt.Sprintf("router: shard %d rejected write: status %d: %s", e.Shard, e.Status, env.Error)
	}
	return fmt.Sprintf("router: shard %d rejected write: status %d", e.Shard, e.Status)
}

// ReviewResult is the router's answer to a routed write: the owning
// shard's acknowledgement plus how replication to the rest of the fleet
// went.
type ReviewResult struct {
	server.ReviewResponse
	// OwnerShard is the manifest-range owner that materialized the
	// per-entity state.
	OwnerShard int `json:"owner_shard"`
	// Replicated counts the other shards that absorbed the write's
	// corpus-global state.
	Replicated int `json:"replicated"`
	// Partial is true when at least one replica failed to absorb the
	// write; its interpretations may drift until it recovers or is
	// re-synced by compaction. ShardErrors names the failures.
	Partial     bool           `json:"partial,omitempty"`
	ShardErrors map[int]string `json:"shard_errors,omitempty"`
}

// writeBody renders the shard-API request body for one review; replica
// marks the fan-out copies so non-owning shards absorb the global state
// (a non-replica write for an unserved entity is rejected by every
// shard, which is how the range owner vetoes ghost entities before
// anything mutates).
func writeBody(req server.ReviewRequest, replica bool) ([]byte, error) {
	req.Replica = replica
	b, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("router: encode review: %w", err)
	}
	return b, nil
}

// AddReview routes one review write through the fleet: owner-first, then
// replication (see the file comment for why every shard sees the write).
// The owner's deliberate rejections come back as *StatusError so the HTTP
// layer can pass them through; transport failures are plain errors.
func (r *Router) AddReview(ctx context.Context, req server.ReviewRequest) (*ReviewResult, error) {
	owner := r.ownerOf(req.EntityID)
	if owner < 0 {
		body, _ := json.Marshal(map[string]string{
			"error": fmt.Sprintf("no shard owns entity %q (write routing needs manifest entity ranges)", req.EntityID),
		})
		return nil, &StatusError{Status: http.StatusNotFound, Body: body, Shard: -1}
	}
	body, err := writeBody(req, false)
	if err != nil {
		return nil, err
	}
	replicaBody, err := writeBody(req, true)
	if err != nil {
		return nil, err
	}

	// One total write order across the fleet; see the file comment.
	r.writeMu.Lock()
	defer r.writeMu.Unlock()

	ownerCtx, cancel := context.WithTimeout(ctx, r.timeout)
	status, respBody, err := r.shards[owner].Backend.Do(ownerCtx, "POST", "/reviews", body)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("router: write: owner shard %d (%s): %w", owner, r.shards[owner].Backend.Name(), err)
	}
	if status == http.StatusConflict {
		// The owner already committed this review — the signature of a
		// client retry after a partial replication failure. The retry's
		// purpose is healing, so run the replica fan-out anyway (replicas
		// that have the review answer 409 and are counted replicated;
		// ones that missed it backfill now) and report the outcome with
		// the duplicate so the client knows whether the fleet converged.
		heal := &ReviewResult{OwnerShard: owner}
		r.replicate(ctx, owner, replicaBody, heal)
		heal.Partial = len(heal.ShardErrors) > 0
		return nil, &StatusError{Status: status, Body: respBody, Shard: owner, Heal: heal}
	}
	if status != http.StatusOK {
		return nil, &StatusError{Status: status, Body: respBody, Shard: owner}
	}
	var ack server.ReviewResponse
	if err := json.Unmarshal(respBody, &ack); err != nil {
		return nil, fmt.Errorf("router: write: owner shard %d: bad response: %v", owner, err)
	}

	res := &ReviewResult{ReviewResponse: ack, OwnerShard: owner}
	r.replicate(ctx, owner, replicaBody, res)
	res.Partial = len(res.ShardErrors) > 0
	return res, nil
}

// replicate fans the global half of a committed write out to every
// non-owner shard, accumulating the outcome into res. The fan-out is
// concurrent — replicas commute for a single review, and the write mutex
// already orders distinct reviews.
func (r *Router) replicate(ctx context.Context, owner int, replicaBody []byte, res *ReviewResult) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := range r.shards {
		if i == owner {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			repCtx, cancel := context.WithTimeout(ctx, r.timeout)
			defer cancel()
			status, b, err := r.shards[i].Backend.Do(repCtx, "POST", "/reviews", replicaBody)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				if res.ShardErrors == nil {
					res.ShardErrors = map[int]string{}
				}
				res.ShardErrors[i] = err.Error()
			case status == http.StatusOK, status == http.StatusConflict:
				// 409 means the replica already journaled this review (a
				// retried write after a partial failure); that is the
				// desired end state, not an error.
				res.Replicated++
			default:
				if res.ShardErrors == nil {
					res.ShardErrors = map[int]string{}
				}
				res.ShardErrors[i] = replyError(shardReply{status: status, body: b})
			}
		}(i)
	}
	wg.Wait()
}
