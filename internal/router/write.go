package router

// Write path: the router scatter-routes POST /reviews over the fleet.
// Per-entity state lives on exactly one shard range (the manifest-range
// owner), but corpus-global model state — the review BM25 index,
// sentiment and co-occurrence statistics — is REPLICATED, and a write
// must reach every node of it or interpretations would diverge across
// the fleet. So a routed write is owner-first (one replica of the owning
// range validates and journals the authoritative copy; its rejection
// aborts the write fleet-wide with nothing mutated — if that replica is
// unreachable the hop fails over to the next replica of the range), then
// replicated to EVERY other node — every replica of every shard,
// including the owner range's peer replicas, which serve the entity and
// so materialize the full write, not just its global half. That is what
// lets a hedged read land on any replica and still see the exact bytes
// the primary would produce.
//
// Writes are serialized fleet-wide by the router's write mutex: every
// shard journals and applies reviews in one total order, which is what
// keeps the floating-point accumulations of the marker summaries — and
// therefore the whole query fingerprint — byte-identical between a
// monolith and any sharded deployment ingesting the same sequence.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/server"
)

// StatusError carries a shard's deliberate HTTP rejection through the
// router so the front door can pass status and JSON envelope to the
// client verbatim (a 409 duplicate or 404 unknown entity is a valid
// routed answer, not a fleet failure).
type StatusError struct {
	Status int
	Body   []byte
	// Shard is the shard index that rejected; Replica the replica within
	// its set that answered (-1 when no backend answered).
	Shard   int
	Replica int
	// Heal carries the replica fan-out outcome of a 409 duplicate (a
	// retry's purpose is healing a previously partial replication); nil
	// for every other rejection. The handler merges it into the response
	// so a client can see whether its retry actually converged the fleet
	// or must be retried again.
	Heal *ReviewResult
}

// Error implements error.
func (e *StatusError) Error() string {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(e.Body, &env) == nil && env.Error != "" {
		return fmt.Sprintf("router: shard %d rejected write: status %d: %s", e.Shard, e.Status, env.Error)
	}
	return fmt.Sprintf("router: shard %d rejected write: status %d", e.Shard, e.Status)
}

// ReviewResult is the router's answer to a routed write: the owning
// shard's acknowledgement plus how replication to the rest of the fleet
// went.
type ReviewResult struct {
	server.ReviewResponse
	// OwnerShard is the manifest-range owner that materialized the
	// per-entity state; OwnerReplica the replica of that range that took
	// the authoritative write (non-zero after an owner failover).
	OwnerShard   int `json:"owner_shard"`
	OwnerReplica int `json:"owner_replica,omitempty"`
	// Replicated counts the other fleet nodes (every replica of every
	// shard) that absorbed the write.
	Replicated int `json:"replicated"`
	// Partial is true when at least one node failed to absorb the
	// write. ShardErrors names the failures by shard range (one combined
	// message per range); FailedNodes attributes each failed leg to the
	// exact replica. Unless auto-repair is disabled, the router
	// immediately runs an anti-entropy pass against the failed nodes;
	// Healed lists the flat node indexes that converged before this
	// response was sent (the rest stay dirty and are retried on
	// subsequent writes). With single-replica shards node indexes ARE
	// shard indexes.
	Partial     bool           `json:"partial,omitempty"`
	ShardErrors map[int]string `json:"shard_errors,omitempty"`
	FailedNodes []NodeError    `json:"failed_nodes,omitempty"`
	Healed      []int          `json:"healed,omitempty"`
	// fresh counts replicas that newly applied the write (200, not a 409
	// no-op) — it decides whether the interpret memo must invalidate.
	fresh int
}

// writeBody renders the shard-API request body for one review; replica
// marks the fan-out copies so non-owning shards absorb the global state
// (a non-replica write for an unserved entity is rejected by every
// shard, which is how the range owner vetoes ghost entities before
// anything mutates).
func writeBody(req server.ReviewRequest, replica bool) ([]byte, error) {
	req.Replica = replica
	b, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("router: encode review: %w", err)
	}
	return b, nil
}

// AddReview routes one review write through the fleet: owner-first, then
// replication (see the file comment for why every shard sees the write).
// The owner's deliberate rejections come back as *StatusError so the HTTP
// layer can pass them through; transport failures are plain errors.
func (r *Router) AddReview(ctx context.Context, req server.ReviewRequest) (*ReviewResult, error) {
	owner := r.ownerOf(req.EntityID)
	if owner < 0 {
		body, _ := json.Marshal(map[string]string{
			"error": fmt.Sprintf("no shard owns entity %q (write routing needs manifest entity ranges)", req.EntityID),
		})
		return nil, &StatusError{Status: http.StatusNotFound, Body: body, Shard: -1}
	}
	body, err := writeBody(req, false)
	if err != nil {
		return nil, err
	}
	replicaBody, err := writeBody(req, true)
	if err != nil {
		return nil, err
	}

	// One total write order across the fleet; see the file comment.
	r.writeMu.Lock()
	defer r.writeMu.Unlock()

	// Heal-before-write: if earlier replications left shards dirty, run
	// the repair pass BEFORE this write fans out, so a shard that just
	// came back receives its missed suffix first and then this write —
	// its journal keeps the fleet order and its state stays
	// byte-identical (repair.go).
	var healedBefore []int
	if r.autoRepair && len(r.dirty) > 0 {
		healedBefore = r.repairDirtyLocked(ctx)
	}

	// Owner hop with failover: replicas of the owning range are
	// equivalent, so any of them can take the authoritative write. Try
	// them in index order; the first that answers at all (any status) is
	// authoritative — a deliberate rejection must abort, not hop to a
	// peer that would accept. A replica skipped here still receives the
	// replicate fan-out below (it answers 409 if the failed attempt
	// actually landed server-side). The view is stable for the whole
	// write: joins and retires serialize on writeMu, which we hold.
	v := r.view.Load()
	ownerSet := v.reps[owner]
	var ownerRep *replica
	var status int
	var respBody []byte
	var firstErr error
	ctx, ownerSpan := r.tracer.Start(ctx, "write.owner")
	ownerSpan.SetAttr("shard", strconv.Itoa(owner))
	for _, rep := range ownerSet {
		ownerCtx, cancel := context.WithTimeout(ctx, r.timeout)
		st, b, err := rep.backend.Do(ownerCtx, "POST", "/reviews", body)
		cancel()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("router: write: owner shard %d (%s): %w", owner, rep.backend.Name(), err)
			}
			if ctx.Err() == nil {
				rep.recordFailure(r.ejectFor)
			}
			continue
		}
		// Health accounting mirrors the read path (doReplica): a 5xx is
		// authoritative for THIS write (failing over could double-apply a
		// review that landed before the failure) but still a strike; any
		// deliberate answer — 200, 409 dup, 404 ghost — proves the replica
		// alive and must never strike.
		if st >= 500 {
			rep.recordFailure(r.ejectFor)
		} else {
			rep.recordSuccess()
		}
		ownerRep, status, respBody = rep, st, b
		break
	}
	if ownerRep == nil {
		ownerSpan.SetError(firstErr.Error())
		ownerSpan.End()
		return nil, firstErr
	}
	ownerSpan.SetAttr("replica", strconv.Itoa(ownerRep.idx))
	ownerSpan.SetAttr("status", strconv.Itoa(status))
	ownerSpan.End()
	ownerNode := v.nodeIndex(ownerRep)
	if status == http.StatusConflict {
		// The owner already committed this review — the signature of a
		// client retry after a partial replication failure. The retry's
		// purpose is healing, so run the replica fan-out anyway (replicas
		// that have the review answer 409 and are counted replicated;
		// ones that missed it backfill now) and report the outcome with
		// the duplicate so the client knows whether the fleet converged.
		heal := &ReviewResult{OwnerShard: owner, OwnerReplica: ownerRep.idx}
		failed := r.replicate(ctx, v, ownerNode, replicaBody, heal)
		heal.Partial = len(failed) > 0
		if heal.fresh > 0 {
			// Only a node that newly absorbed the write changes
			// replicated state; an all-409 duplicate retry is a no-op and
			// must not wipe the hot memo.
			r.invalidateInterpret()
		}
		if heal.Partial && r.autoRepair {
			r.markDirtyLocked(failed)
			heal.Healed = mergeHealed(healedBefore, r.repairDirtyLocked(ctx))
		} else {
			heal.Healed = healedBefore
		}
		return nil, &StatusError{Status: status, Body: respBody, Shard: owner, Replica: ownerRep.idx, Heal: heal}
	}
	if status != http.StatusOK {
		return nil, &StatusError{Status: status, Body: respBody, Shard: owner, Replica: ownerRep.idx}
	}
	var ack server.ReviewResponse
	if err := json.Unmarshal(respBody, &ack); err != nil {
		return nil, fmt.Errorf("router: write: owner shard %d: bad response: %v", owner, err)
	}

	res := &ReviewResult{ReviewResponse: ack, OwnerShard: owner, OwnerReplica: ownerRep.idx}
	failed := r.replicate(ctx, v, ownerNode, replicaBody, res)
	res.Partial = len(failed) > 0
	// The fleet accepted new evidence; the front door's interpretation
	// memo is stale.
	r.invalidateInterpret()
	res.Healed = healedBefore
	if r.autoRepair && res.Partial {
		// A node missed THIS write: one immediate repair attempt while
		// the write mutex is still held — a transient fault heals before
		// any later write can land, keeping the fleet order intact.
		r.markDirtyLocked(failed)
		res.Healed = mergeHealed(res.Healed, r.repairDirtyLocked(ctx))
	}
	return res, nil
}

// mergeHealed concatenates two healed-shard lists without duplicates (a
// shard can converge in the heal-before-write pass, fail THIS write's
// fan-out, and converge again in the post-write pass — one entry, not
// two).
func mergeHealed(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, lst := range [][]int{a, b} {
		for _, i := range lst {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out
}

// replicate fans the committed write out to every fleet node except the
// one that took the authoritative copy — every replica of every shard,
// so no node's journal misses a sequence. It accumulates the outcome
// into res and returns the raw failures keyed by flat node index (the
// key space the dirty set and repair use). The fan-out is concurrent —
// nodes commute for a single review, and the write mutex already orders
// distinct reviews.
func (r *Router) replicate(ctx context.Context, v *fleetView, ownerNode int, replicaBody []byte, res *ReviewResult) map[int]string {
	ctx, span := r.tracer.Start(ctx, "write.replicate")
	defer func() {
		span.SetAttr("replicated", strconv.Itoa(res.Replicated))
		span.SetAttr("failed", strconv.Itoa(len(res.FailedNodes)))
		span.End()
	}()
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := map[int]string{}
	for i, n := range v.nodes {
		if i == ownerNode {
			continue
		}
		wg.Add(1)
		go func(i int, n *replica) {
			defer wg.Done()
			repCtx, cancel := context.WithTimeout(ctx, r.timeout)
			defer cancel()
			status, b, err := n.backend.Do(repCtx, "POST", "/reviews", replicaBody)
			mu.Lock()
			defer mu.Unlock()
			// Strike accounting matches the read path: transport failures
			// (unless we gave up) and 5xx strike; every deliberate status —
			// including the 4xx rejections below — proves the node alive.
			switch {
			case err != nil:
				if repCtx.Err() == nil && ctx.Err() == nil {
					n.recordFailure(r.ejectFor)
				}
				failed[i] = err.Error()
			case status == http.StatusOK, status == http.StatusConflict:
				// 409 means the node already journaled this review (a
				// retried write after a partial failure); that is the
				// desired end state, not an error.
				n.recordSuccess()
				res.Replicated++
				if status == http.StatusOK {
					res.fresh++
				}
			default:
				if status >= 500 {
					n.recordFailure(r.ejectFor)
				} else {
					n.recordSuccess()
				}
				failed[i] = replyError(shardReply{status: status, body: b})
			}
		}(i, n)
	}
	wg.Wait()
	r.foldNodeFailures(v, failed, res)
	return failed
}

// foldNodeFailures renders node-keyed replication failures into the
// result's two error views: FailedNodes (exact per-replica attribution,
// in node order) and ShardErrors (one message per shard range — the raw
// message when a single replica of the range failed, so single-replica
// fleets report byte-identically to the pre-replication router, else a
// joined message naming each replica).
func (r *Router) foldNodeFailures(v *fleetView, failed map[int]string, res *ReviewResult) {
	if len(failed) == 0 {
		return
	}
	perShard := map[int][]string{}
	for i, n := range v.nodes {
		msg, ok := failed[i]
		if !ok {
			continue
		}
		res.FailedNodes = append(res.FailedNodes, NodeError{
			Shard: n.shard, Replica: n.idx, Backend: n.backend.Name(), Error: msg,
		})
		part := msg
		if len(v.reps[n.shard]) > 1 {
			part = fmt.Sprintf("replica %d (%s): %s", n.idx, n.backend.Name(), msg)
		}
		perShard[n.shard] = append(perShard[n.shard], part)
	}
	res.ShardErrors = make(map[int]string, len(perShard))
	for s, parts := range perShard {
		res.ShardErrors[s] = strings.Join(parts, "; ")
	}
}
