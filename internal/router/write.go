package router

// Write path: the router scatter-routes POST /reviews over the fleet.
// Per-entity state lives on exactly one shard (the manifest-range owner),
// but corpus-global model state — the review BM25 index, sentiment and
// co-occurrence statistics — is REPLICATED, and a write must reach every
// replica of it or interpretations would diverge across shards. So a
// routed write is owner-first (the owner validates and journals the
// authoritative copy; its rejection aborts the write fleet-wide with
// nothing mutated), then replicated to every other shard, which absorbs
// the global half of the delta and journals it for its own recovery.
//
// Writes are serialized fleet-wide by the router's write mutex: every
// shard journals and applies reviews in one total order, which is what
// keeps the floating-point accumulations of the marker summaries — and
// therefore the whole query fingerprint — byte-identical between a
// monolith and any sharded deployment ingesting the same sequence.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/server"
)

// StatusError carries a shard's deliberate HTTP rejection through the
// router so the front door can pass status and JSON envelope to the
// client verbatim (a 409 duplicate or 404 unknown entity is a valid
// routed answer, not a fleet failure).
type StatusError struct {
	Status int
	Body   []byte
	// Shard is the shard index that rejected.
	Shard int
	// Heal carries the replica fan-out outcome of a 409 duplicate (a
	// retry's purpose is healing a previously partial replication); nil
	// for every other rejection. The handler merges it into the response
	// so a client can see whether its retry actually converged the fleet
	// or must be retried again.
	Heal *ReviewResult
}

// Error implements error.
func (e *StatusError) Error() string {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(e.Body, &env) == nil && env.Error != "" {
		return fmt.Sprintf("router: shard %d rejected write: status %d: %s", e.Shard, e.Status, env.Error)
	}
	return fmt.Sprintf("router: shard %d rejected write: status %d", e.Shard, e.Status)
}

// ReviewResult is the router's answer to a routed write: the owning
// shard's acknowledgement plus how replication to the rest of the fleet
// went.
type ReviewResult struct {
	server.ReviewResponse
	// OwnerShard is the manifest-range owner that materialized the
	// per-entity state.
	OwnerShard int `json:"owner_shard"`
	// Replicated counts the other shards that absorbed the write's
	// corpus-global state.
	Replicated int `json:"replicated"`
	// Partial is true when at least one replica failed to absorb the
	// write. ShardErrors names the failures. Unless auto-repair is
	// disabled, the router immediately runs an anti-entropy pass against
	// the failed shards; Healed lists the ones that converged before this
	// response was sent (the rest stay dirty and are retried on
	// subsequent writes).
	Partial     bool           `json:"partial,omitempty"`
	ShardErrors map[int]string `json:"shard_errors,omitempty"`
	Healed      []int          `json:"healed,omitempty"`
	// fresh counts replicas that newly applied the write (200, not a 409
	// no-op) — it decides whether the interpret memo must invalidate.
	fresh int
}

// writeBody renders the shard-API request body for one review; replica
// marks the fan-out copies so non-owning shards absorb the global state
// (a non-replica write for an unserved entity is rejected by every
// shard, which is how the range owner vetoes ghost entities before
// anything mutates).
func writeBody(req server.ReviewRequest, replica bool) ([]byte, error) {
	req.Replica = replica
	b, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("router: encode review: %w", err)
	}
	return b, nil
}

// AddReview routes one review write through the fleet: owner-first, then
// replication (see the file comment for why every shard sees the write).
// The owner's deliberate rejections come back as *StatusError so the HTTP
// layer can pass them through; transport failures are plain errors.
func (r *Router) AddReview(ctx context.Context, req server.ReviewRequest) (*ReviewResult, error) {
	owner := r.ownerOf(req.EntityID)
	if owner < 0 {
		body, _ := json.Marshal(map[string]string{
			"error": fmt.Sprintf("no shard owns entity %q (write routing needs manifest entity ranges)", req.EntityID),
		})
		return nil, &StatusError{Status: http.StatusNotFound, Body: body, Shard: -1}
	}
	body, err := writeBody(req, false)
	if err != nil {
		return nil, err
	}
	replicaBody, err := writeBody(req, true)
	if err != nil {
		return nil, err
	}

	// One total write order across the fleet; see the file comment.
	r.writeMu.Lock()
	defer r.writeMu.Unlock()

	// Heal-before-write: if earlier replications left shards dirty, run
	// the repair pass BEFORE this write fans out, so a shard that just
	// came back receives its missed suffix first and then this write —
	// its journal keeps the fleet order and its state stays
	// byte-identical (repair.go).
	var healedBefore []int
	if r.autoRepair && len(r.dirty) > 0 {
		healedBefore = r.repairDirtyLocked(ctx)
	}

	ownerCtx, cancel := context.WithTimeout(ctx, r.timeout)
	status, respBody, err := r.shards[owner].Backend.Do(ownerCtx, "POST", "/reviews", body)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("router: write: owner shard %d (%s): %w", owner, r.shards[owner].Backend.Name(), err)
	}
	if status == http.StatusConflict {
		// The owner already committed this review — the signature of a
		// client retry after a partial replication failure. The retry's
		// purpose is healing, so run the replica fan-out anyway (replicas
		// that have the review answer 409 and are counted replicated;
		// ones that missed it backfill now) and report the outcome with
		// the duplicate so the client knows whether the fleet converged.
		heal := &ReviewResult{OwnerShard: owner}
		r.replicate(ctx, owner, replicaBody, heal)
		heal.Partial = len(heal.ShardErrors) > 0
		if heal.fresh > 0 {
			// Only a replica that newly absorbed the write changes
			// replicated state; an all-409 duplicate retry is a no-op and
			// must not wipe the hot memo.
			r.invalidateInterpret()
		}
		if heal.Partial && r.autoRepair {
			r.markDirtyLocked(heal.ShardErrors)
			heal.Healed = mergeHealed(healedBefore, r.repairDirtyLocked(ctx))
		} else {
			heal.Healed = healedBefore
		}
		return nil, &StatusError{Status: status, Body: respBody, Shard: owner, Heal: heal}
	}
	if status != http.StatusOK {
		return nil, &StatusError{Status: status, Body: respBody, Shard: owner}
	}
	var ack server.ReviewResponse
	if err := json.Unmarshal(respBody, &ack); err != nil {
		return nil, fmt.Errorf("router: write: owner shard %d: bad response: %v", owner, err)
	}

	res := &ReviewResult{ReviewResponse: ack, OwnerShard: owner}
	r.replicate(ctx, owner, replicaBody, res)
	res.Partial = len(res.ShardErrors) > 0
	// The fleet accepted new evidence; the front door's interpretation
	// memo is stale.
	r.invalidateInterpret()
	res.Healed = healedBefore
	if r.autoRepair && res.Partial {
		// A replica missed THIS write: one immediate repair attempt while
		// the write mutex is still held — a transient fault heals before
		// any later write can land, keeping the fleet order intact.
		r.markDirtyLocked(res.ShardErrors)
		res.Healed = mergeHealed(res.Healed, r.repairDirtyLocked(ctx))
	}
	return res, nil
}

// mergeHealed concatenates two healed-shard lists without duplicates (a
// shard can converge in the heal-before-write pass, fail THIS write's
// fan-out, and converge again in the post-write pass — one entry, not
// two).
func mergeHealed(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, lst := range [][]int{a, b} {
		for _, i := range lst {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out
}

// replicate fans the global half of a committed write out to every
// non-owner shard, accumulating the outcome into res. The fan-out is
// concurrent — replicas commute for a single review, and the write mutex
// already orders distinct reviews.
func (r *Router) replicate(ctx context.Context, owner int, replicaBody []byte, res *ReviewResult) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := range r.shards {
		if i == owner {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			repCtx, cancel := context.WithTimeout(ctx, r.timeout)
			defer cancel()
			status, b, err := r.shards[i].Backend.Do(repCtx, "POST", "/reviews", replicaBody)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				if res.ShardErrors == nil {
					res.ShardErrors = map[int]string{}
				}
				res.ShardErrors[i] = err.Error()
			case status == http.StatusOK, status == http.StatusConflict:
				// 409 means the replica already journaled this review (a
				// retried write after a partial failure); that is the
				// desired end state, not an error.
				res.Replicated++
				if status == http.StatusOK {
					res.fresh++
				}
			default:
				if res.ShardErrors == nil {
					res.ShardErrors = map[int]string{}
				}
				res.ShardErrors[i] = replyError(shardReply{status: status, body: b})
			}
		}(i)
	}
	wg.Wait()
}
