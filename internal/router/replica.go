package router

// Replica-set serving: each shard range may be backed by R equivalent
// backends (Shard.Backend plus Shard.Replicas). Reads are load-balanced
// across the set with power-of-two-choices on in-flight count, failing
// replicas are ejected from the pick and reinstated after a cooldown,
// and slow scatter legs are hedged — after an adaptive delay derived
// from the shard's scatter-latency histogram (~p95), the same fragment
// fires at a second replica, the first authoritative reply wins, and
// the loser's context is cancelled. At most two legs ever run for one
// fragment, so hedging bounds tail latency without doubling fleet load.
//
// Correctness: every replica of a range serves the same snapshot and
// journals the same fleet-wide write order (write.go fans writes out to
// every replica of every range; repair.go heals the ones that miss),
// so any replica's answer carries the exact bytes any other's would —
// the byte-identity contract survives load balancing and hedging.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

const (
	// ejectAfterFailures consecutive transport failures or 5xx replies
	// eject a replica from the load-balanced pick.
	ejectAfterFailures = 3
	// defaultEjectFor is how long an ejected replica sits out before the
	// pick considers it again (reinstatement is lazy: the next pick after
	// the cooldown may probe it, and a success clears the strike count).
	defaultEjectFor = 2 * time.Second
	// hedgeMinSamples is how many scatter observations a shard's
	// histogram needs before its p95 is trusted; colder shards hedge at
	// hedgeColdDelay.
	hedgeMinSamples = 32
	hedgeColdDelay  = 10 * time.Millisecond
	// hedgeMinDelay floors the adaptive delay so a microsecond-fast
	// fleet does not hedge virtually every request.
	hedgeMinDelay = time.Millisecond
)

// replica is one backend of a shard's replica set plus the mutable
// balancing state the pick reads: in-flight count (power-of-two-choices
// compares these), consecutive-failure strikes, and the ejection
// deadline. Its position in the fleet is (shard, idx); the flat node
// index is a property of the current fleetView, not of the replica —
// join and retire renumber the flat space, never the replica itself.
type replica struct {
	backend Backend
	shard   int // shard (range) index
	idx     int // position within the shard's replica set

	inflight     atomic.Int64
	fails        atomic.Int64
	ejectedUntil atomic.Int64 // unix nanos; 0 = healthy
	ejections    atomic.Uint64

	// Pre-resolved per-replica instruments (metrics.go). They live on
	// the replica — not in shard×replica arrays — so a joined replica
	// brings its own series and a retired one simply stops moving.
	seconds   *obs.Histogram
	picked    *obs.Counter
	hedgeWins *obs.Counter
	repairLag *obs.Gauge
}

// healthy reports whether the replica is currently in the pick.
func (rep *replica) healthy(now int64) bool { return rep.ejectedUntil.Load() <= now }

// recordSuccess clears the strike count and any ejection — one good
// reply fully reinstates a replica.
func (rep *replica) recordSuccess() {
	rep.fails.Store(0)
	rep.ejectedUntil.Store(0)
}

// recordFailure adds a strike and ejects the replica once it
// accumulates ejectAfterFailures of them. Arming an ejection resets the
// strike count, so a reinstated replica faces a fresh
// ejectAfterFailures budget — not an instant re-ejection on its first
// post-cooldown wobble. Failures recorded while the replica is already
// ejected are ignored: they come from full-set fallback traffic (on a
// single-replica range every leg keeps failing for as long as the node
// is down), and extending ejectedUntil on each one would push the lazy
// reinstatement probe out indefinitely.
func (rep *replica) recordFailure(ejectFor time.Duration) {
	now := time.Now().UnixNano()
	if !rep.healthy(now) {
		return
	}
	if rep.fails.Add(1) >= ejectAfterFailures {
		rep.fails.Store(0)
		rep.ejectedUntil.Store(now + ejectFor.Nanoseconds())
		rep.ejections.Add(1)
	}
}

// NodeError attributes one failed request leg to the exact replica that
// failed it, so operators can tell a dead replica from a dead range.
type NodeError struct {
	// Shard is the range index; Replica the backend's position in that
	// range's replica set.
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Backend string `json:"backend,omitempty"`
	Error   string `json:"error"`
}

// pickReplica chooses a replica of shard for one request leg from the
// current fleet view. Kept as the single-call form for tests and
// callers that do not already hold a view.
func (r *Router) pickReplica(shard, exclude int) *replica {
	rep, _ := r.pickFrom(r.view.Load().reps[shard], exclude)
	return rep
}

// pickFrom chooses a replica from one range's replica set:
// power-of-two-choices on in-flight count among the healthy replicas,
// excluding replica index exclude (-1 excludes nothing). When every
// candidate is ejected the pick falls back to the full set — ejection
// sheds load from a flapping replica, it must not turn a degraded
// shard into a dead one; fallback reports that this happened so the
// leg's span can say so. Returns nil only when exclusion empties the
// set.
func (r *Router) pickFrom(set []*replica, exclude int) (chosen *replica, fallback bool) {
	now := time.Now().UnixNano()
	cands := make([]*replica, 0, len(set))
	for _, rep := range set {
		if rep.idx == exclude || !rep.healthy(now) {
			continue
		}
		cands = append(cands, rep)
	}
	if len(cands) == 0 {
		fallback = true
		for _, rep := range set {
			if rep.idx != exclude {
				cands = append(cands, rep)
			}
		}
	}
	switch len(cands) {
	case 0:
		return nil, fallback
	case 1:
		chosen = cands[0]
	default:
		r.pickMu.Lock()
		a := r.pickRng.Intn(len(cands))
		b := r.pickRng.Intn(len(cands) - 1)
		r.pickMu.Unlock()
		if b >= a {
			b++
		}
		// Lower in-flight wins; a tie goes to the first sample (itself a
		// uniform draw, so ties spread evenly and deterministically under a
		// seeded RNG).
		chosen = cands[a]
		if cands[b].inflight.Load() < chosen.inflight.Load() {
			chosen = cands[b]
		}
	}
	chosen.picked.Inc()
	return chosen, fallback
}

// authoritative reports whether a leg's reply settles the fragment: any
// transport-level success with a non-5xx status. A 4xx is a deliberate
// answer (replicas serve the same engine, so rejections are unanimous)
// and must not trigger a futile retry on a peer.
func authoritative(rep shardReply) bool {
	return rep.err == nil && rep.status < 500
}

// doReplica runs one request leg against a replica, maintaining its
// in-flight count and health state. A leg cancelled by its own context
// (a hedge loser, or the caller giving up) is neither a success nor a
// strike — cancellation says nothing about the replica; its span is
// marked cancelled, never errored, so a hedge loser cannot force its
// trace into the error-retained ring. fallback annotates legs served
// through the all-ejected full-set fallback.
func (r *Router) doReplica(legCtx context.Context, rep *replica, fallback bool, method, target string, body []byte) shardReply {
	legCtx, span := r.tracer.Start(legCtx, "router.leg")
	span.SetAttr("shard", strconv.Itoa(rep.shard))
	span.SetAttr("replica", strconv.Itoa(rep.idx))
	span.SetAttr("backend", rep.backend.Name())
	if fallback {
		span.SetAttr("ejection_fallback", "true")
	}
	rep.inflight.Add(1)
	t0 := time.Now()
	status, b, err := rep.backend.Do(legCtx, method, target, body)
	rep.inflight.Add(-1)
	out := shardReply{status: status, body: b, err: err, replica: rep.idx, span: span}
	if err != nil && legCtx.Err() != nil {
		span.SetAttr("cancelled", "true")
		span.End()
		return out
	}
	if err != nil || status >= 500 {
		if err != nil {
			span.SetError(err.Error())
		} else {
			span.SetError(fmt.Sprintf("status %d", status))
		}
		span.End()
		rep.recordFailure(r.ejectFor)
		return out
	}
	span.SetAttr("status", strconv.Itoa(status))
	span.End()
	rep.recordSuccess()
	rep.seconds.ObserveSince(t0)
	return out
}

// hedgeDelayFor derives the hedge delay for one shard: the fixed
// Options.HedgeDelay when set, otherwise ~p95 of the shard's scatter
// fragment histogram (clamped to [hedgeMinDelay, timeout/2]), falling
// back to hedgeColdDelay until enough samples accumulate. Adapting to
// the measured tail means the fleet hedges roughly the slowest 5% of
// legs — enough to flatten the tail, too few to matter for load.
func (r *Router) hedgeDelayFor(shard int) time.Duration {
	if r.hedgeDelay > 0 {
		return r.hedgeDelay
	}
	h := r.metrics.shardSeconds[shard]
	if h.Count() < hedgeMinSamples {
		return hedgeColdDelay
	}
	d := time.Duration(h.Quantile(0.95) * float64(time.Second))
	if d < hedgeMinDelay {
		d = hedgeMinDelay
	}
	if max := r.timeout / 2; d > max {
		d = max
	}
	return d
}

// shardRequest serves one fragment from a shard's replica set: pick a
// replica, hedge to a second one if the first is slow (or fail over
// immediately if it errors fast), return the first authoritative reply
// and cancel the losing leg. Single-replica sets take the plain path —
// the R=1 fleet pays nothing for the machinery.
func (r *Router) shardRequest(ctx context.Context, shard int, method, target string, body []byte) shardReply {
	// One view per fragment: both legs of a hedged pair come from the
	// same topology even if a join or retire swaps the view mid-flight.
	set := r.view.Load().reps[shard]
	first, firstFallback := r.pickFrom(set, -1)
	if first == nil {
		return shardReply{err: fmt.Errorf("shard %d has no replicas", shard), replica: -1}
	}
	if len(set) == 1 {
		return r.doReplica(ctx, first, firstFallback, method, target, body)
	}

	// Legs get individually cancellable contexts under one parent; the
	// results channel is buffered so an abandoned leg's goroutine can
	// always deliver and exit.
	legCtx, cancelLegs := context.WithCancel(ctx)
	defer cancelLegs()
	results := make(chan shardReply, 2)
	launch := func(rep *replica, fallback bool) {
		go func() {
			results <- r.doReplica(legCtx, rep, fallback, method, target, body)
		}()
	}
	launch(first, firstFallback)
	pending := 1

	var hedgeCh <-chan time.Time
	if r.hedge {
		t := time.NewTimer(r.hedgeDelayFor(shard))
		defer t.Stop()
		hedgeCh = t.C
	}
	secondLaunched := false
	hedged := false
	var secondRep *replica
	launchSecond := func(isHedge bool) {
		if secondLaunched {
			return
		}
		second, secondFallback := r.pickFrom(set, first.idx)
		if second == nil {
			return
		}
		secondLaunched = true
		secondRep = second
		pending++
		if isHedge {
			hedged = true
			r.metrics.hedgeFired.Inc()
		}
		launch(second, secondFallback)
	}

	var fails []shardReply
	for {
		select {
		case rep := <-results:
			pending--
			if authoritative(rep) {
				// Cancel the losing leg promptly; its goroutine drains into
				// the buffered channel and exits on its own.
				cancelLegs()
				if hedged {
					// Stamp hedge attribution onto the winning leg's span —
					// deliberately after End(); the collector renders live
					// span state, so the attribution shows up in the trace.
					rep.span.SetAttr("hedge_fired", "true")
					if rep.replica != first.idx {
						rep.span.SetAttr("hedge_won", "true")
					} else {
						rep.span.SetAttr("hedge_won", "false")
					}
				}
				if hedged && rep.replica != first.idx {
					r.metrics.hedgeWins.Inc()
					if secondRep != nil {
						secondRep.hedgeWins.Inc()
					}
				}
				return rep
			}
			fails = append(fails, rep)
			if !secondLaunched {
				// The first leg failed outright before any hedge fired: fail
				// over to a second replica immediately.
				hedgeCh = nil
				launchSecond(false)
			}
			if pending == 0 {
				return r.combineLegFailures(shard, fails)
			}
		case <-hedgeCh:
			hedgeCh = nil
			launchSecond(true)
		case <-ctx.Done():
			return shardReply{err: ctx.Err(), replica: -1, fails: legFailures(r, shard, fails)}
		}
	}
}

// combineLegFailures folds every failed leg of one fragment into a
// single reply whose error names each replica, and whose fails list
// carries the structured per-replica attribution for FailedNodes.
func (r *Router) combineLegFailures(shard int, fails []shardReply) shardReply {
	nodeErrs := legFailures(r, shard, fails)
	parts := make([]string, 0, len(nodeErrs))
	for _, ne := range nodeErrs {
		parts = append(parts, fmt.Sprintf("replica %d (%s): %s", ne.Replica, ne.Backend, ne.Error))
	}
	return shardReply{
		err:     fmt.Errorf("%s", strings.Join(parts, "; ")),
		replica: -1,
		fails:   nodeErrs,
	}
}

// legFailures renders failed legs as NodeErrors.
func legFailures(r *Router, shard int, fails []shardReply) []NodeError {
	out := make([]NodeError, 0, len(fails))
	for _, f := range fails {
		out = append(out, NodeError{
			Shard:   shard,
			Replica: f.replica,
			Backend: r.backendName(shard, f.replica),
			Error:   replyError(f),
		})
	}
	return out
}

// backendName resolves a replica's display name by its in-set index;
// unknown indexes (synthetic replies, or a replica retired since the
// reply was produced) get the shard's primary.
func (r *Router) backendName(shard, replicaIdx int) string {
	for _, rep := range r.view.Load().reps[shard] {
		if rep.idx == replicaIdx {
			return rep.backend.Name()
		}
	}
	return r.shards[shard].Backend.Name()
}

// nodeFailures converts a failed shard reply into replica-attributed
// NodeErrors: the structured per-leg list when the reply carries one,
// otherwise the single leg that produced the reply.
func (r *Router) nodeFailures(shard int, rep shardReply) []NodeError {
	if len(rep.fails) > 0 {
		return rep.fails
	}
	return []NodeError{{
		Shard:   shard,
		Replica: rep.replica,
		Backend: r.backendName(shard, rep.replica),
		Error:   replyError(rep),
	}}
}

// scatterNodes probes every node of the fleet — every replica of every
// shard — concurrently. Health and identity checks use it: they are
// about the nodes themselves, so load balancing and hedging must not
// hide one.
func (r *Router) scatterNodes(ctx context.Context, method, target string) (*fleetView, []shardReply) {
	ctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	v := r.view.Load()
	replies := make([]shardReply, len(v.nodes))
	done := make(chan int, len(v.nodes))
	for i := range v.nodes {
		go func(i int) {
			rep := v.nodes[i]
			status, b, err := rep.backend.Do(ctx, method, target, nil)
			replies[i] = shardReply{status: status, body: b, err: err, replica: rep.idx}
			done <- i
		}(i)
	}
	for range v.nodes {
		<-done
	}
	return v, replies
}

// HedgeStats reports how many hedge legs the router has fired and how
// many of them beat the original leg — the observability hook behind
// the benchall replication experiment and the hedging tests.
func (r *Router) HedgeStats() (fired, wins uint64) {
	return r.metrics.hedgeFired.Value(), r.metrics.hedgeWins.Value()
}
