package router_test

// End-to-end test of the sharded serving stack, exactly as a production
// fleet runs it: build a monolithic database → partition it into 4 shard
// databases → write per-shard snapshots + checksummed manifest → reload
// every shard from disk → serve each on its own httptest HTTP server →
// scatter-gather through the router — asserting the acceptance contract:
// the routed fleet answers byte-identically to the monolith over the full
// 948-entry harness query fingerprint, under the race detector, and
// degrades to correct partial results when a shard is down.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/snapshot"
)

const e2eShards = 4

// Shared fixture: one small hotel build, sharded onto disk once, with one
// live httptest server per reloaded shard.
var (
	e2eOnce     sync.Once
	e2eData     *corpus.Dataset
	e2eDB       *core.DB
	e2eManifest string // manifest path
	e2eURLs     []string
	e2eErr      error
)

func e2eFixture(t *testing.T) (*corpus.Dataset, *core.DB, *snapshot.Manifest, []string) {
	t.Helper()
	e2eOnce.Do(func() {
		e2eErr = buildE2EFleet()
	})
	if e2eErr != nil {
		t.Fatalf("e2e fixture: %v", e2eErr)
	}
	m, err := snapshot.LoadManifest(e2eManifest)
	if err != nil {
		t.Fatalf("e2e fixture manifest: %v", err)
	}
	return e2eData, e2eDB, m, e2eURLs
}

func buildE2EFleet() error {
	genCfg := corpus.SmallConfig()
	genCfg.Seed = 1
	e2eData = corpus.GenerateHotels(genCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.UseSubstitutionIndex = true // exercise every snapshot section
	var err error
	e2eDB, err = harness.BuildDB(e2eData, cfg, 400, 300)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}

	dir, err := os.MkdirTemp("", "router-e2e-*")
	if err != nil {
		return err
	}
	// The dir outlives the fixture deliberately (shared by all tests in
	// the package run); the OS temp cleaner reclaims it.
	shardDBs, parts, err := e2eDB.Shards(e2eShards)
	if err != nil {
		return err
	}
	manifest := &snapshot.Manifest{
		FormatVersion: snapshot.FormatVersion,
		Name:          e2eDB.Name,
		BuildSeed:     1,
		Shards:        e2eShards,
		TotalEntities: len(e2eDB.EntityIDs()),
		CreatedUnix:   1,
	}
	for i, sdb := range shardDBs {
		ids := parts[i]
		path := filepath.Join(dir, fmt.Sprintf("hotel-shard%d.snap", i))
		meta, err := snapshot.SaveShard(path, sdb, &snapshot.ShardMeta{
			Index: i, Count: e2eShards,
			Entities: len(ids), TotalEntities: len(e2eDB.EntityIDs()),
			FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
		})
		if err != nil {
			return fmt.Errorf("shard %d save: %w", i, err)
		}
		manifest.Shard = append(manifest.Shard, snapshot.ManifestShard{
			Index: i, Path: filepath.Base(path),
			Entities: len(ids), FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
			SnapshotSHA256: meta.SHA256, SnapshotBytes: meta.FileBytes,
		})
	}
	e2eManifest = filepath.Join(dir, "hotel.manifest.json")
	if err := snapshot.WriteManifest(e2eManifest, manifest); err != nil {
		return err
	}

	// Reload every shard from disk (digest-verified, single read) and
	// serve it over real HTTP — the exact opinedbd -shard-manifest path.
	loaded, err := snapshot.LoadManifest(e2eManifest)
	if err != nil {
		return err
	}
	for _, ms := range loaded.Shard {
		sdb, _, err := snapshot.LoadVerifiedShard(e2eManifest, loaded, ms.Index)
		if err != nil {
			return fmt.Errorf("shard %d load: %w", ms.Index, err)
		}
		srv := httptest.NewServer(server.New(sdb, server.Options{}))
		e2eURLs = append(e2eURLs, srv.URL)
	}
	return nil
}

// fleetRouter assembles a router over the fixture's HTTP shard servers.
func fleetRouter(t *testing.T, m *snapshot.Manifest, urls []string) *router.Router {
	t.Helper()
	shards := make([]router.Shard, len(urls))
	for i, u := range urls {
		shards[i] = router.Shard{
			Backend:     &router.HTTPBackend{BaseURL: u},
			FirstEntity: m.Shard[i].FirstEntity,
			LastEntity:  m.Shard[i].LastEntity,
		}
	}
	rt, err := router.New(shards, router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestShardedByteIdentity is the acceptance criterion: the 4-shard fleet,
// served from reloaded snapshots over real HTTP, answers the full harness
// query fingerprint byte-identically to the monolithic database.
func TestShardedByteIdentity(t *testing.T) {
	d, db, m, urls := e2eFixture(t)
	rt := fleetRouter(t, m, urls)

	monolithFP, n := harness.QueryFingerprint(d, db)
	routedFP, _ := harness.QueryFingerprint(d, rt.Engine(context.Background()))
	if n != 948 {
		t.Errorf("fingerprint covers %d query-set entries, want the full 948", n)
	}
	if monolithFP != routedFP {
		t.Fatalf("sharded fleet diverges from monolith over %d query-set entries:\n%s",
			n, firstDiff(monolithFP, routedFP))
	}
	t.Logf("4-shard fleet byte-identical to monolith over %d query-set entries", n)
}

// TestShardedConcurrentQueries drives the router from many goroutines
// under -race while comparing every answer against the monolith.
func TestShardedConcurrentQueries(t *testing.T) {
	d, db, m, urls := e2eFixture(t)
	rt := fleetRouter(t, m, urls)
	eng := rt.Engine(context.Background())
	var preds []string
	for _, p := range d.Predicates {
		if p.Kind != corpus.KindOutOfSchema {
			preds = append(preds, p.Text)
			if len(preds) == 12 {
				break
			}
		}
	}
	opts := core.DefaultQueryOptions()
	want := make([]string, len(preds))
	for i, p := range preds {
		res, err := db.RankPredicates([]string{p}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderRows(res.Rows)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2*len(preds); i++ {
				pi := (g + i) % len(preds)
				res, err := eng.RankPredicates([]string{preds[pi]}, nil, opts)
				if err != nil {
					errs <- err
					return
				}
				if got := renderRows(res.Rows); got != want[pi] {
					errs <- fmt.Errorf("concurrent routed result diverged for %q:\n got %s\nwant %s", preds[pi], got, want[pi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestOneShardDown kills one shard and asserts graceful degradation: the
// router still answers, marks the result partial, names the dead shard,
// and the rows are exactly the monolith's ranking restricted to the live
// shards' entity ranges (bit-identical scores).
func TestOneShardDown(t *testing.T) {
	d, db, m, urls := e2eFixture(t)

	// Shard 2's backend points at a server that is already gone.
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadSrv.URL
	deadSrv.Close()
	const dead = 2

	shards := make([]router.Shard, len(urls))
	for i, u := range urls {
		if i == dead {
			u = deadURL
		}
		shards[i] = router.Shard{Backend: &router.HTTPBackend{BaseURL: u},
			FirstEntity: m.Shard[i].FirstEntity, LastEntity: m.Shard[i].LastEntity}
	}
	rt, err := router.New(shards, router.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var pred string
	for _, p := range d.Predicates {
		if p.Kind != corpus.KindOutOfSchema {
			pred = p.Text
			break
		}
	}
	res, err := rt.Query(context.Background(), `SELECT * FROM Entities WHERE "`+pred+`"`, 10)
	if err != nil {
		t.Fatalf("partial fleet should still answer: %v", err)
	}
	if !res.Partial {
		t.Error("result not marked partial")
	}
	if _, ok := res.ShardErrors[dead]; !ok {
		t.Errorf("dead shard not reported: %v", res.ShardErrors)
	}
	// Expected: the monolith's ranking with the dead shard's entity range
	// filtered out — exactly what a live 3-shard fleet merges to.
	inDead := func(id string) bool {
		return id >= m.Shard[dead].FirstEntity && id <= m.Shard[dead].LastEntity
	}
	opts := core.DefaultQueryOptions()
	wantRes, err := db.RankPredicates([]string{pred}, func(id string) bool { return !inDead(id) }, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := renderJSONRows(res.Rows)
	want := renderRows(wantRes.Rows)
	if got != want {
		t.Fatalf("partial rows diverge from monolith-minus-dead-shard:\n got %s\nwant %s", got, want)
	}

	// Health reports the degradation.
	ok, shardHealth := rt.Health(context.Background())
	if ok {
		t.Error("health should be degraded with a dead shard")
	}
	if shardHealth[dead].OK || shardHealth[dead].Error == "" {
		t.Errorf("dead shard health = %+v", shardHealth[dead])
	}
}

// TestRouterHTTPSurface exercises the router's own HTTP handler: merged
// query results, aggregate health, evidence pass-through, and the JSON
// error envelope.
func TestRouterHTTPSurface(t *testing.T) {
	d, db, m, urls := e2eFixture(t)
	rt := fleetRouter(t, m, urls)
	front := httptest.NewServer(router.NewHandler(rt))
	defer front.Close()

	var pred string
	for _, p := range d.Predicates {
		if p.Kind != corpus.KindOutOfSchema {
			pred = p.Text
			break
		}
	}

	t.Run("query", func(t *testing.T) {
		resp, err := http.Get(front.URL + "/query?sql=" + strings.ReplaceAll(`select * from Entities where "`+pred+`"`, " ", "+"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var qr router.QueryResult
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		wantRes, err := db.RankPredicates([]string{pred}, nil, core.DefaultQueryOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderJSONRows(qr.Rows), renderRows(wantRes.Rows); got != want {
			t.Fatalf("HTTP rows diverge:\n got %s\nwant %s", got, want)
		}
		if qr.Partial {
			t.Error("healthy fleet marked partial")
		}
	})

	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(front.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h router.RouterHealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if h.Status != "ok" || h.Role != "router" || h.Shards != e2eShards {
			t.Errorf("health = %+v", h)
		}
		if h.Entities != len(db.EntityIDs()) {
			t.Errorf("fleet reports %d entities, want %d", h.Entities, len(db.EntityIDs()))
		}
	})

	t.Run("evidence", func(t *testing.T) {
		// An entity owned by the last shard: targeted routing must find it.
		id := m.Shard[e2eShards-1].FirstEntity
		attr := db.Attrs[0].Name
		resp, err := http.Get(front.URL + "/evidence?entity=" + id + "&attribute=" + attr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var ev server.EvidenceResponse
		if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.EntityID != id || ev.Attribute != attr {
			t.Errorf("evidence = %s/%s", ev.EntityID, ev.Attribute)
		}
	})

	t.Run("limit", func(t *testing.T) {
		// An explicit SQL LIMIT must win over the request k on the router
		// exactly as it does on the engine (the monolith returns 3 rows
		// here no matter what k says).
		sql := `select * from Entities where "` + pred + `" limit 3`
		res, err := rt.Query(context.Background(), sql, 10)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := db.QueryWithOptions(sql, core.DefaultQueryOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(wantRes.Rows) != 3 {
			t.Fatalf("monolith returned %d rows for LIMIT 3", len(wantRes.Rows))
		}
		if got, want := renderJSONRows(res.Rows), renderRows(wantRes.Rows); got != want {
			t.Fatalf("LIMIT rows diverge:\n got %s\nwant %s", got, want)
		}
	})

	t.Run("errors", func(t *testing.T) {
		for _, tc := range []struct {
			target string
			status int
		}{
			{"/query", http.StatusBadRequest},                                // missing sql
			{"/query?sql=select+*+from+E+order+by+x", http.StatusBadRequest}, // unmergeable
			{"/topk", http.StatusBadRequest},                                 // missing predicate
			{"/nope", http.StatusNotFound},
		} {
			resp, err := http.Get(front.URL + tc.target)
			if err != nil {
				t.Fatal(err)
			}
			var env struct {
				Error string `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&env)
			resp.Body.Close()
			if resp.StatusCode != tc.status || err != nil || env.Error == "" {
				t.Errorf("GET %s: status %d (want %d), envelope error %q (decode err %v)",
					tc.target, resp.StatusCode, tc.status, env.Error, err)
			}
		}
	})
}

// renderRows serializes engine rows with exact float bits.
func renderRows(rows []core.ResultRow) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s=%x ", r.EntityID, r.Score)
	}
	return b.String()
}

// renderJSONRows serializes wire rows with exact float bits.
func renderJSONRows(rows []server.RowJSON) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s=%x ", r.EntityID, r.Score)
	}
	return b.String()
}

// firstDiff returns the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  monolith: %s\n  routed:   %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(al), len(bl))
}
