package router

// Unit tests of the scatter-gather mechanics against scripted fake
// backends: heap-merge correctness (vs a naive reference merge), partial
// failure reporting, targeted evidence routing, and input validation.
// The real-fleet byte-identity contract is enforced in e2e_test.go.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

// fakeBackend answers from a canned target → (status, body) table.
type fakeBackend struct {
	name    string
	replies map[string]fakeReply
	err     error // transport-level failure for every request
}

type fakeReply struct {
	status int
	body   interface{}
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	if f.err != nil {
		return 0, nil, f.err
	}
	key := method + " " + target
	rep, ok := f.replies[key]
	if !ok {
		return 404, []byte(`{"error":"no such endpoint"}`), nil
	}
	b, err := json.Marshal(rep.body)
	if err != nil {
		return 0, nil, err
	}
	return rep.status, b, nil
}

// refMerge is the naive reference: concatenate, sort, truncate.
func refMerge(lists [][]server.RowJSON, k int) []server.RowJSON {
	var all []server.RowJSON
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].EntityID < all[j].EntityID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestMergeRankedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nLists := 1 + rng.Intn(8)
		lists := make([][]server.RowJSON, nLists)
		id := 0
		for i := range lists {
			n := rng.Intn(12)
			for j := 0; j < n; j++ {
				score := float64(rng.Intn(6)) / 5 // deliberately collide scores to hit tie-breaks
				lists[i] = append(lists[i], server.RowJSON{EntityID: fmt.Sprintf("e%04d", id), Score: score})
				id++
			}
			sort.Slice(lists[i], func(a, b int) bool {
				if lists[i][a].Score != lists[i][b].Score {
					return lists[i][a].Score > lists[i][b].Score
				}
				return lists[i][a].EntityID < lists[i][b].EntityID
			})
		}
		k := 1 + rng.Intn(15)
		got := mergeRanked(lists, k)
		want := refMerge(lists, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d rows, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].EntityID != want[i].EntityID || got[i].Score != want[i].Score {
				t.Fatalf("trial %d row %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMergeRankedEmpty(t *testing.T) {
	if rows := mergeRanked(nil, 10); len(rows) != 0 {
		t.Fatalf("merged %d rows from nothing", len(rows))
	}
	if rows := mergeRanked([][]server.RowJSON{{}, {}}, 10); len(rows) != 0 {
		t.Fatalf("merged %d rows from empty lists", len(rows))
	}
}

func TestMergeRankedHugeKDoesNotAllocate(t *testing.T) {
	// k is attacker-controlled (?k=, {"k":...}); the merge must allocate
	// by available rows, not by k — a 9e18 cap would panic outright.
	lists := [][]server.RowJSON{{{EntityID: "a", Score: 0.5}}, {{EntityID: "b", Score: 0.4}}}
	rows := mergeRanked(lists, 1<<62)
	if len(rows) != 2 {
		t.Fatalf("merged %d rows, want 2", len(rows))
	}
}

// topkBackend builds a fake backend serving one /topk reply.
func topkBackend(name, target string, rows []server.RowJSON) *fakeBackend {
	return &fakeBackend{
		name: name,
		replies: map[string]fakeReply{
			"GET " + target: {status: 200, body: server.TopKResponse{Rows: rows, SortedAccesses: 5, Depth: 3, Candidates: len(rows)}},
		},
	}
}

func TestTopKPartialFailure(t *testing.T) {
	target := "/topk?predicate=clean&k=2"
	live := topkBackend("s0", target, []server.RowJSON{
		{EntityID: "a", Score: 0.9}, {EntityID: "b", Score: 0.5},
	})
	dead := &fakeBackend{name: "s1", err: fmt.Errorf("connection refused")}
	rt, err := New([]Shard{{Backend: live}, {Backend: dead}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.TopK(context.Background(), []string{"clean"}, 2)
	if err != nil {
		t.Fatalf("partial fleet should still answer: %v", err)
	}
	if !res.Partial {
		t.Error("result not marked partial")
	}
	if msg, ok := res.ShardErrors[1]; !ok || !strings.Contains(msg, "connection refused") {
		t.Errorf("shard 1 error not reported: %v", res.ShardErrors)
	}
	if len(res.Rows) != 2 || res.Rows[0].EntityID != "a" {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestTopKAllShardsDown(t *testing.T) {
	dead := func(n string) *fakeBackend { return &fakeBackend{name: n, err: fmt.Errorf("down")} }
	rt, _ := New([]Shard{{Backend: dead("s0")}, {Backend: dead("s1")}}, Options{})
	if _, err := rt.TopK(context.Background(), []string{"clean"}, 2); err == nil {
		t.Fatal("total failure should error")
	} else if !strings.Contains(err.Error(), "every shard") {
		t.Fatalf("error %v should name the total failure", err)
	}
}

func TestQueryRejectsOrderBy(t *testing.T) {
	rt, _ := New([]Shard{{Backend: &fakeBackend{name: "s0"}}}, Options{})
	// Detection is from the parsed AST, so whitespace variants and casing
	// are all caught, and the typed error maps to a 400.
	for _, sql := range []string{
		`SELECT * FROM Entities WHERE "clean" ORDER BY price_pn`,
		"select * from Entities where \"clean\" order \t  by price_pn desc",
	} {
		_, err := rt.Query(context.Background(), sql, 5)
		if err == nil {
			t.Fatalf("%q: ORDER BY should be rejected", sql)
		}
		if !errors.Is(err, ErrBadQuery) {
			t.Fatalf("%q: got %v, want ErrBadQuery", sql, err)
		}
	}
	// Unparseable SQL is a client error too, not a fleet failure.
	if _, err := rt.Query(context.Background(), "selec nonsense", 5); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("parse failure: got %v, want ErrBadQuery", err)
	}
	// A predicate merely containing the words is fine (no substring
	// false positive); the fake backend answers with an empty result.
	fb := &fakeBackend{name: "s0", replies: map[string]fakeReply{}}
	body, _ := json.Marshal(server.QueryResponse{Rows: []server.RowJSON{}})
	fb.replies["POST /query"] = fakeReply{status: 200, body: json.RawMessage(body)}
	rt2, _ := New([]Shard{{Backend: fb}}, Options{})
	if _, err := rt2.Query(context.Background(), `SELECT * FROM Entities WHERE "lets you order by phone"`, 5); err != nil {
		t.Fatalf("predicate containing 'order by' was wrongly rejected: %v", err)
	}
}

func TestUnanimousRejectionIsClientError(t *testing.T) {
	// Shards replicate the same engine: when every shard answers 4xx, the
	// router must surface the monolith's 400, not a 502 fleet failure.
	reject := func(n string) *fakeBackend {
		return &fakeBackend{name: n, replies: map[string]fakeReply{}} // 404 for everything
	}
	rt, _ := New([]Shard{{Backend: reject("s0")}, {Backend: reject("s1")}}, Options{})
	_, err := rt.TopK(context.Background(), []string{"clean"}, 2)
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("unanimous 4xx: got %v, want ErrBadQuery", err)
	}
	// Mixed transport failure + 4xx stays a fleet failure (the dead shard
	// might have answered differently).
	rt2, _ := New([]Shard{
		{Backend: reject("s0")},
		{Backend: &fakeBackend{name: "s1", err: fmt.Errorf("down")}},
	}, Options{})
	if _, err := rt2.TopK(context.Background(), []string{"clean"}, 2); errors.Is(err, ErrBadQuery) {
		t.Fatalf("mixed failure wrongly classified as client error: %v", err)
	}
}

func TestEvidenceForwardsExplicitZeroLimit(t *testing.T) {
	// limit=0 is a real mode (summary without extractions); the router
	// must forward it rather than letting the shard default to 3.
	target := "/evidence?entity=h0005&attribute=service&limit=0"
	owner := &fakeBackend{
		name: "s0",
		replies: map[string]fakeReply{
			"GET " + target: {status: 200, body: server.EvidenceResponse{EntityID: "h0005", Attribute: "service"}},
		},
	}
	rt, _ := New([]Shard{{Backend: owner, FirstEntity: "h0000", LastEntity: "h0009"}}, Options{})
	res, err := rt.Evidence(context.Background(), "h0005", "service", 0)
	if err != nil || res.Status != 200 {
		t.Fatalf("explicit limit=0 was not forwarded: res=%+v err=%v", res, err)
	}
}

func TestEvidenceServerErrorIsNotAMiss(t *testing.T) {
	// A shard answering 500 might be the owner; its failure must not be
	// folded into a confident 404.
	target := "/evidence?entity=h0005&attribute=service"
	broken := &fakeBackend{
		name: "s0",
		replies: map[string]fakeReply{
			"GET " + target: {status: 500, body: map[string]string{"error": "internal"}},
		},
	}
	miss := &fakeBackend{
		name: "s1",
		replies: map[string]fakeReply{
			"GET " + target: {status: 404, body: map[string]string{"error": "no summary"}},
		},
	}
	rt, _ := New([]Shard{{Backend: broken}, {Backend: miss}}, Options{})
	if _, err := rt.Evidence(context.Background(), "h0005", "service", -1); err == nil {
		t.Fatal("a 404 with a 500-ing shard should be an error, not a definitive miss")
	}
}

func TestEvidenceMissWithDeadShardIsNotDefinitive(t *testing.T) {
	// Without ownership ranges, a 404 is only trustworthy when every
	// shard answered; a dead shard might own the entity.
	target := "/evidence?entity=h0005&attribute=service"
	miss := &fakeBackend{
		name: "s0",
		replies: map[string]fakeReply{
			"GET " + target: {status: 404, body: map[string]string{"error": "no summary"}},
		},
	}
	dead := &fakeBackend{name: "s1", err: fmt.Errorf("connection refused")}
	rt, _ := New([]Shard{{Backend: miss}, {Backend: dead}}, Options{})
	if _, err := rt.Evidence(context.Background(), "h0005", "service", -1); err == nil {
		t.Fatal("a miss with an unreachable shard should be an error, not a confident 404")
	} else if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("error %v should explain the unreachable shard", err)
	}
}

func TestRankPredicatesRejectsUnroutableOptions(t *testing.T) {
	rt, _ := New([]Shard{{Backend: &fakeBackend{name: "s0"}}}, Options{})
	cases := map[string]func(*core.QueryOptions){
		"scan path": func(o *core.QueryOptions) { o.UseMarkers = false },
		"filter":    func(o *core.QueryOptions) { o.ReviewFilter = func(string, int) bool { return true } },
		"weights":   func(o *core.QueryOptions) { o.AttributeWeights = map[string]float64{"service": 2} },
	}
	for name, mutate := range cases {
		opts := core.DefaultQueryOptions()
		mutate(&opts)
		if _, err := rt.Engine(context.Background()).RankPredicates([]string{"clean"}, nil, opts); err == nil {
			t.Errorf("%s: unroutable option silently accepted", name)
		}
	}
}

func TestEvidenceRoutesToOwner(t *testing.T) {
	target := "/evidence?entity=h0005&attribute=service"
	owner := &fakeBackend{
		name: "s1",
		replies: map[string]fakeReply{
			"GET " + target: {status: 200, body: server.EvidenceResponse{EntityID: "h0005", Attribute: "service"}},
		},
	}
	wrong := &fakeBackend{name: "s0", err: fmt.Errorf("must not be asked")}
	rt, _ := New([]Shard{
		{Backend: wrong, FirstEntity: "h0000", LastEntity: "h0004"},
		{Backend: owner, FirstEntity: "h0005", LastEntity: "h0009"},
	}, Options{})
	res, err := rt.Evidence(context.Background(), "h0005", "service", -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shard != 1 || res.Status != 200 {
		t.Fatalf("routed to shard %d status %d, want owner 1/200", res.Shard, res.Status)
	}
}

func TestEvidenceScattersWithoutRanges(t *testing.T) {
	target := "/evidence?entity=h0005&attribute=service"
	owner := &fakeBackend{
		name: "s1",
		replies: map[string]fakeReply{
			"GET " + target: {status: 200, body: server.EvidenceResponse{EntityID: "h0005", Attribute: "service"}},
		},
	}
	miss := &fakeBackend{
		name: "s0",
		replies: map[string]fakeReply{
			"GET " + target: {status: 404, body: map[string]string{"error": "no summary"}},
		},
	}
	rt, _ := New([]Shard{{Backend: miss}, {Backend: owner}}, Options{})
	res, err := rt.Evidence(context.Background(), "h0005", "service", -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || res.Shard != 1 {
		t.Fatalf("scatter picked shard %d status %d, want 1/200", res.Shard, res.Status)
	}
}

func TestVerifyShardIdentities(t *testing.T) {
	shardBackend := func(name string, index, count int) *fakeBackend {
		return &fakeBackend{
			name: name,
			replies: map[string]fakeReply{
				"GET /healthz": {status: 200, body: server.HealthResponse{
					Status: "ok", Source: "snapshot",
					Snapshot: &server.SnapshotInfo{Shard: &server.ShardInfo{Index: index, Count: count}},
				}},
			},
		}
	}
	// Correct order passes.
	rt, _ := New([]Shard{
		{Backend: shardBackend("s0", 0, 2)},
		{Backend: shardBackend("s1", 1, 2)},
	}, Options{})
	if err := rt.VerifyShardIdentities(context.Background()); err != nil {
		t.Fatalf("ordered fleet rejected: %v", err)
	}
	// Swapped backends are caught before they can misroute /evidence.
	rt2, _ := New([]Shard{
		{Backend: shardBackend("s1", 1, 2)},
		{Backend: shardBackend("s0", 0, 2)},
	}, Options{})
	if err := rt2.VerifyShardIdentities(context.Background()); err == nil {
		t.Fatal("misordered backend list accepted")
	}
	// A backend from a different fleet size is caught too.
	rt3, _ := New([]Shard{
		{Backend: shardBackend("s0", 0, 4)},
		{Backend: shardBackend("s1", 1, 4)},
	}, Options{})
	if err := rt3.VerifyShardIdentities(context.Background()); err == nil {
		t.Fatal("wrong-fleet backend accepted")
	}
	// Unreachable backends are skipped (replicas may still be starting).
	rt4, _ := New([]Shard{
		{Backend: shardBackend("s0", 0, 2)},
		{Backend: &fakeBackend{name: "s1", err: fmt.Errorf("starting up")}},
	}, Options{})
	if err := rt4.VerifyShardIdentities(context.Background()); err != nil {
		t.Fatalf("unreachable backend should be skipped: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("no shards should fail")
	}
	if _, err := New([]Shard{{}}, Options{}); err == nil {
		t.Error("nil backend should fail")
	}
}
