package router

// Strike-accounting audit of the write path: deliberate 4xx rejections
// (409 duplicate, 404 ghost entity) are valid answers from a healthy
// replica and must never count toward ejection — only transport
// failures and 5xx may strike, on the owner hop and on the replicate
// fan-out alike. A replica that rejects three duplicate retries in a
// row is doing its job; ejecting it would shed load from the healthiest
// node in the set.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/server"
)

// writeFixture builds a single-shard two-replica router owning the
// whole entity range, with auto-repair off so the write path is the
// only health-accounting actor.
func writeFixture(t *testing.T, primary, peer Backend) *Router {
	t.Helper()
	rt, err := New([]Shard{{
		Backend: primary, Replicas: []Backend{peer},
		FirstEntity: "h0000", LastEntity: "h9999",
	}}, Options{PickSeed: 21, DisableAutoRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func postReview(rt *Router) (*ReviewResult, error) {
	return rt.AddReview(context.Background(), server.ReviewRequest{
		ID: "rv1", EntityID: "h0001", Reviewer: "u1", Day: 1, Text: "spotless room",
	})
}

// TestOwnerRejectionNeverStrikes: 409 dup and 404 ghost from the owner
// replica are deliberate answers — repeated rejections must leave the
// replica unstruck and in the pick.
func TestOwnerRejectionNeverStrikes(t *testing.T) {
	for _, status := range []int{409, 404} {
		owner := &fakeBackend{name: "r0", replies: map[string]fakeReply{
			"POST /reviews": {status: status, body: map[string]string{"error": "deliberate rejection"}},
		}}
		peer := &fakeBackend{name: "r1", replies: map[string]fakeReply{
			"POST /reviews": {status: 409, body: map[string]string{"error": "duplicate"}},
		}}
		rt := writeFixture(t, owner, peer)
		for i := 0; i < ejectAfterFailures+1; i++ {
			_, err := postReview(rt)
			var se *StatusError
			if !errors.As(err, &se) || se.Status != status {
				t.Fatalf("status %d: want StatusError passthrough, got %v", status, err)
			}
		}
		rep := rt.view.Load().reps[0][0]
		if got := rep.fails.Load(); got != 0 {
			t.Fatalf("owner answering %d took %d strikes — 4xx rejections must never strike", status, got)
		}
		if !rep.healthy(time.Now().UnixNano()) {
			t.Fatalf("owner answering %d was ejected", status)
		}
	}
}

// TestOwner5xxStrikesButStaysAuthoritative: a 5xx from the owner is
// still this write's authoritative outcome (no failover hop that could
// double-apply), but it must count as a health strike.
func TestOwner5xxStrikesButStaysAuthoritative(t *testing.T) {
	owner := &fakeBackend{name: "r0", replies: map[string]fakeReply{
		"POST /reviews": {status: 500, body: map[string]string{"error": "disk full"}},
	}}
	peer := &fakeBackend{name: "r1", replies: map[string]fakeReply{
		"POST /reviews": {status: 200, body: server.ReviewResponse{}},
	}}
	rt := writeFixture(t, owner, peer)
	_, err := postReview(rt)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 500 || se.Replica != 0 {
		t.Fatalf("want the owner's 500 passed through (no failover), got %v", err)
	}
	if got := rt.view.Load().reps[0][0].fails.Load(); got != 1 {
		t.Fatalf("owner 500 recorded %d strikes, want 1", got)
	}
}

// TestReplicateFanOutStrikeAccounting: on the fan-out, a transport
// failure strikes, a 5xx strikes, and a 409 duplicate clears — mirrors
// the read path exactly.
func TestReplicateFanOutStrikeAccounting(t *testing.T) {
	okBody := server.ReviewResponse{}
	owner := &fakeBackend{name: "s0-r0", replies: map[string]fakeReply{
		"POST /reviews": {status: 200, body: okBody},
	}}
	dup := &fakeBackend{name: "s0-r1", replies: map[string]fakeReply{
		"POST /reviews": {status: 409, body: map[string]string{"error": "duplicate"}},
	}}
	down := &fakeBackend{name: "s1-r0", err: fmt.Errorf("connection refused")}
	broken := &fakeBackend{name: "s1-r1", replies: map[string]fakeReply{
		"POST /reviews": {status: 503, body: map[string]string{"error": "overloaded"}},
	}}
	rt, err := New([]Shard{
		{Backend: owner, Replicas: []Backend{dup}, FirstEntity: "h0000", LastEntity: "h4999"},
		{Backend: down, Replicas: []Backend{broken}, FirstEntity: "h5000", LastEntity: "h9999"},
	}, Options{PickSeed: 23, DisableAutoRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-load a strike on the duplicate-answering replica: its 409 must
	// clear it, proving rejections reset health like any good answer.
	v := rt.view.Load()
	v.reps[0][1].fails.Store(1)

	res, err := postReview(rt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Replicated != 1 {
		t.Fatalf("result = %+v, want partial with 1 replicated (the 409 dup)", res)
	}
	if got := v.reps[0][1].fails.Load(); got != 0 {
		t.Fatalf("409 on fan-out left %d strikes, want 0 (and cleared)", got)
	}
	if got := v.reps[1][0].fails.Load(); got != 1 {
		t.Fatalf("transport failure on fan-out recorded %d strikes, want 1", got)
	}
	if got := v.reps[1][1].fails.Load(); got != 1 {
		t.Fatalf("503 on fan-out recorded %d strikes, want 1", got)
	}
}
