package router

// Tracing-through-the-router tests: hedged legs are attributed on the
// winning and losing spans without error-retaining the trace, and the
// propagation headers carry one trace id from the router front door
// through a real HTTP scatter into the shard side.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// legSpans pulls the "router.leg" spans out of a trace export.
func legSpans(tr *trace.TraceJSON) []trace.SpanJSON {
	var legs []trace.SpanJSON
	for _, s := range tr.Spans {
		if s.Name == "router.leg" {
			legs = append(legs, s)
		}
	}
	return legs
}

func attr(s trace.SpanJSON, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestHedgedLegSpans: a hedged request produces one trace holding both
// legs — the winner stamped hedge_fired/hedge_won with its shard and
// replica, the cancelled loser marked cancelled with NO error — and the
// trace is kept as an ordinary sample, not error-retained, because a
// hedge loser being cancelled is the mechanism working, not a failure.
func TestHedgedLegSpans(t *testing.T) {
	col := trace.New(trace.Options{SampleRate: 1, SlowCutoff: time.Hour, Seed: 1})
	var calls atomic.Int64
	unblocked := make(chan struct{}, 2)
	rt := newReplicatedRouter(t, Options{PickSeed: 1, HedgeDelay: 2 * time.Millisecond, Trace: col},
		&orderedBackend{name: "r0", calls: &calls, unblocked: unblocked},
		&orderedBackend{name: "r1", calls: &calls, unblocked: unblocked})

	if _, err := rt.TopK(context.Background(), []string{"x"}, 1); err != nil {
		t.Fatalf("hedged topk: %v", err)
	}
	// The losing leg ends asynchronously after its cancel; wait for it so
	// the span assertions below are not racing the leg teardown.
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("losing leg was never cancelled")
	}

	// The loser's span End and the post-End winner stamping land moments
	// after TopK returns; poll the live export until both legs are fully
	// attributed.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if tr := findHedgedTrace(col); tr != nil {
			assertHedgedTrace(t, tr)
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no fully-attributed hedged trace in %+v", col.Snapshot())
}

// findHedgedTrace returns the trace once it holds two finished legs,
// one of them stamped as the hedge winner.
func findHedgedTrace(col *trace.Collector) *trace.TraceJSON {
	for _, tr := range col.Snapshot() {
		legs := legSpans(&tr)
		if len(legs) != 2 {
			continue
		}
		done := 0
		won := false
		for _, leg := range legs {
			if !leg.InFlight {
				done++
			}
			if attr(leg, "hedge_won") == "true" {
				won = true
			}
		}
		if done == 2 && won {
			cp := tr
			return &cp
		}
	}
	return nil
}

func assertHedgedTrace(t *testing.T, tr *trace.TraceJSON) {
	t.Helper()
	if tr.Kept != "sampled" {
		t.Fatalf("hedged trace kept as %q — a cancelled loser must not error-retain", tr.Kept)
	}
	var winner, loser *trace.SpanJSON
	for i := range tr.Spans {
		s := &tr.Spans[i]
		if s.Name != "router.leg" {
			continue
		}
		if attr(*s, "hedge_won") == "true" {
			winner = s
		} else {
			loser = s
		}
	}
	if winner == nil || loser == nil {
		t.Fatalf("winner/loser legs not both present: %+v", tr.Spans)
	}
	if attr(*winner, "hedge_fired") != "true" {
		t.Errorf("winner missing hedge_fired: %+v", winner.Attrs)
	}
	if attr(*winner, "shard") == "" || attr(*winner, "replica") == "" {
		t.Errorf("winner missing shard/replica attribution: %+v", winner.Attrs)
	}
	if attr(*loser, "cancelled") != "true" {
		t.Errorf("loser not marked cancelled: %+v", loser.Attrs)
	}
	if loser.Error != "" {
		t.Errorf("cancelled loser carries error %q — cancellation is not failure", loser.Error)
	}
	// Both legs hang off the scatter span inside the same trace.
	names := map[string]bool{}
	for _, s := range tr.Spans {
		names[s.Name] = true
	}
	if !names["router.scatter"] {
		t.Errorf("trace lacks the scatter span: %v", names)
	}
}

// TestTraceHeaderRoundTripHTTPScatter: a request through the router's
// HTTP front door scatters over real HTTP to shard servers with their
// own collectors, and the SAME trace id shows up on both sides — the
// shard span parented at a router-side leg span.
func TestTraceHeaderRoundTripHTTPScatter(t *testing.T) {
	shardCol := trace.New(trace.Options{SampleRate: 1, SlowCutoff: time.Hour, Seed: 7})
	newShard := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx := trace.Extract(r.Context(), r.Header)
			_, sp := shardCol.Start(ctx, "server.topk")
			defer sp.End()
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"rows":[]}`))
		}))
	}
	s0, s1 := newShard(), newShard()
	defer s0.Close()
	defer s1.Close()

	routerCol := trace.New(trace.Options{SampleRate: 1, SlowCutoff: time.Hour, Seed: 3})
	rt, err := New([]Shard{
		{Backend: &HTTPBackend{BaseURL: s0.URL}},
		{Backend: &HTTPBackend{BaseURL: s1.URL}},
	}, Options{PickSeed: 1, DisableHedging: true, Trace: routerCol})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewHandler(rt))
	defer front.Close()

	resp, err := http.Get(front.URL + "/topk?predicate=x&k=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("front door answered %d", resp.StatusCode)
	}

	routed := routerCol.Snapshot()
	if len(routed) == 0 {
		t.Fatal("router collector kept nothing")
	}
	// The front-door span roots the trace; find it and its leg span ids.
	var traceID string
	legIDs := map[string]bool{}
	for _, tr := range routed {
		for _, s := range tr.Spans {
			if s.Name == "router.topk" {
				traceID = tr.TraceID
			}
		}
		for _, leg := range legSpans(&tr) {
			legIDs[leg.SpanID] = true
		}
	}
	if traceID == "" {
		t.Fatalf("no router.topk root span in %+v", routed)
	}

	shardSide, ok := shardCol.Get(traceID)
	if !ok {
		t.Fatalf("trace %s never reached the shard collector: %+v", traceID, shardCol.Snapshot())
	}
	found := false
	for _, s := range shardSide.Spans {
		if s.Name == "server.topk" && legIDs[s.ParentID] {
			found = true
		}
	}
	if !found {
		t.Fatalf("shard span not parented at a router leg span: shard=%+v legs=%v", shardSide.Spans, legIDs)
	}
}
