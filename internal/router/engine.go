package router

// Engine adapter: the router exposes the same Go-level query surface as
// *core.DB (harness.QueryEngine), which is how the sharding correctness
// contract is enforced — harness.QueryFingerprint drives a monolith and a
// router with identical calls and the fingerprints must match byte for
// byte. harness.QueryEngine's methods carry no context (they mirror the
// embedded engine), so the adapter binds one at construction: callers
// hand Engine the context whose cancellation and deadline should govern
// every routed call the harness makes, instead of the calls silently
// running on context.Background and outliving the caller.

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/server"
)

// Engine is the router bound to a caller's context, satisfying
// harness.QueryEngine.
type Engine struct {
	r   *Router
	ctx context.Context
}

// Engine binds the router to ctx. Every call through the returned
// adapter inherits ctx's cancellation and deadline (each scatter still
// applies the router's own per-round-trip timeout underneath).
func (r *Router) Engine(ctx context.Context) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Engine{r: r, ctx: ctx}
}

// Interpret implements the engine surface by asking the fleet
// (interpretation state is replicated; see InterpretChain). A fleet-wide
// failure returns the zero Interpretation — fingerprint comparisons
// surface it as a mismatch rather than a hidden skip.
func (e *Engine) Interpret(text string) core.Interpretation {
	resp, _, err := e.r.InterpretChain(e.ctx, text)
	if err != nil {
		return core.Interpretation{}
	}
	in, err := interpretationFromJSON(resp.Chosen)
	if err != nil {
		return core.Interpretation{}
	}
	return in
}

// RankPredicates implements the engine surface over the scatter-gather
// /query path: the predicate conjunction is rendered as subjective SQL,
// fanned out, and the merged ranking converted back to engine rows. The
// objective callback cannot cross process boundaries; only nil is
// supported (exactly what the harness fingerprint passes).
func (e *Engine) RankPredicates(predicates []string, objective func(entityID string) bool, opts core.QueryOptions) (*core.QueryResult, error) {
	if objective != nil {
		return nil, fmt.Errorf("router: objective callbacks cannot be routed; filter with SQL comparisons instead")
	}
	// The wire protocol carries only SQL + k; every other option would be
	// silently dropped, so divergence from DefaultQueryOptions is an
	// explicit error rather than quietly different scores. (ReviewFilter
	// is a func and unroutable like objective; UseMarkers=false and
	// AttributeWeights are ablation/personalization knobs the shard API
	// does not expose yet.)
	if opts.ReviewFilter != nil {
		return nil, fmt.Errorf("router: ReviewFilter callbacks cannot be routed")
	}
	if !opts.UseMarkers {
		return nil, fmt.Errorf("router: the no-marker scan path is not exposed by the shard API")
	}
	if len(opts.AttributeWeights) > 0 {
		return nil, fmt.Errorf("router: AttributeWeights are not exposed by the shard API")
	}
	sql, err := predicatesSQL(predicates)
	if err != nil {
		return nil, err
	}
	k := opts.TopK
	if k <= 0 {
		k = 10
	}
	res, err := e.r.Query(e.ctx, sql, k)
	if err != nil {
		return nil, err
	}
	out := &core.QueryResult{Rewritten: res.Rewritten}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, core.ResultRow{
			EntityID:        row.EntityID,
			Score:           row.Score,
			PredicateScores: row.PredicateScores,
		})
	}
	if len(res.Interpretations) > 0 {
		out.Interpretations = map[string]core.Interpretation{}
		for text, ij := range res.Interpretations {
			in, err := interpretationFromJSON(ij)
			if err != nil {
				return nil, err
			}
			out.Interpretations[text] = in
		}
	}
	return out, nil
}

// TopKThreshold implements the engine surface over the scatter-gather
// /topk path. The returned stats are fleet totals (see TopKResult).
func (e *Engine) TopKThreshold(predicates []string, k int) ([]core.ResultRow, core.TopKStats, error) {
	var stats core.TopKStats
	res, err := e.r.TopK(e.ctx, predicates, k)
	if err != nil {
		return nil, stats, err
	}
	stats.SortedAccesses = res.SortedAccesses
	stats.Depth = res.Depth
	stats.Candidates = res.Candidates
	rows := make([]core.ResultRow, 0, len(res.Rows))
	for _, row := range res.Rows {
		rows = append(rows, core.ResultRow{EntityID: row.EntityID, Score: row.Score})
	}
	return rows, stats, nil
}

// predicatesSQL renders a bare predicate conjunction as subjective SQL.
func predicatesSQL(predicates []string) (string, error) {
	if len(predicates) == 0 {
		return "", fmt.Errorf("router: no predicates")
	}
	parts := make([]string, 0, len(predicates))
	for _, p := range predicates {
		if strings.Contains(p, `"`) {
			return "", fmt.Errorf("router: predicate %q contains a double quote and cannot be rendered as SQL", p)
		}
		parts = append(parts, `"`+p+`"`)
	}
	return "SELECT * FROM Entities WHERE " + strings.Join(parts, " AND "), nil
}

// interpretationFromJSON reconstructs an engine Interpretation from the
// server's wire form. Terms arrive rendered as "attr.markerIndex"; the
// attribute name may itself contain dots, so the split is at the last
// one.
func interpretationFromJSON(ij server.InterpretationJSON) (core.Interpretation, error) {
	in := core.Interpretation{
		Predicate:     ij.Predicate,
		Method:        core.Method(ij.Method),
		Disjunction:   ij.Disjunction,
		MatchedPhrase: ij.MatchedPhrase,
		Similarity:    ij.Similarity,
	}
	for _, t := range ij.Terms {
		dot := strings.LastIndex(t, ".")
		if dot <= 0 || dot == len(t)-1 {
			return core.Interpretation{}, fmt.Errorf("router: malformed interpretation term %q", t)
		}
		marker, err := strconv.Atoi(t[dot+1:])
		if err != nil {
			return core.Interpretation{}, fmt.Errorf("router: malformed interpretation term %q: %v", t, err)
		}
		in.Terms = append(in.Terms, core.AttrMarker{Attr: t[:dot], Marker: marker})
	}
	return in, nil
}
