package router

// Retirement contracts: a retired replica disappears from the pick set
// immediately, the drain completes once its in-flight legs finish, and
// a range can never lose its only server.

import (
	"context"
	"testing"
)

func TestRetireReplicaRemovesFromPickSet(t *testing.T) {
	rt := newReplicatedRouter(t, Options{PickSeed: 7},
		&fakeBackend{name: "r0"}, &fakeBackend{name: "r1"}, &fakeBackend{name: "r2"})

	report, err := rt.RetireReplica(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Backend != "r1" || report.Nodes != 2 || !report.Drained {
		t.Fatalf("report = %+v, want r1 retired, 2 nodes, drained", report)
	}
	if got := rt.NumNodes(); got != 2 {
		t.Fatalf("NumNodes = %d after retire, want 2", got)
	}
	for i := 0; i < 200; i++ {
		if rep := rt.pickReplica(0, -1); rep == nil || rep.backend.Name() == "r1" {
			t.Fatalf("pick %d returned retired replica (got %v)", i, rep)
		}
	}
}

func TestRetireReplicaDrainWaitsForInflight(t *testing.T) {
	rt := newReplicatedRouter(t, Options{},
		&fakeBackend{name: "r0"}, &fakeBackend{name: "r1"})
	target := rt.view.Load().reps[0][1]
	target.inflight.Store(1)
	go func() {
		// A straggler leg finishing shortly after the view swap.
		target.inflight.Store(0)
	}()
	report, err := rt.RetireReplica(context.Background(), 0, target.idx)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Drained {
		t.Fatalf("report = %+v, want drained once in-flight hit zero", report)
	}
}

func TestRetireReplicaRefusals(t *testing.T) {
	rt := newReplicatedRouter(t, Options{},
		&fakeBackend{name: "r0"}, &fakeBackend{name: "r1"})

	if _, err := rt.RetireReplica(context.Background(), 5, 0); err == nil {
		t.Fatal("retire accepted an out-of-range shard")
	}
	if _, err := rt.RetireReplica(context.Background(), 0, 9); err == nil {
		t.Fatal("retire accepted an unknown replica index")
	}
	if _, err := rt.RetireReplica(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	// r0 is now shard 0's last server.
	if _, err := rt.RetireReplica(context.Background(), 0, 0); err == nil {
		t.Fatal("retire removed a range's last replica")
	}
	if got := rt.NumNodes(); got != 1 {
		t.Fatalf("NumNodes = %d, want 1", got)
	}
}
