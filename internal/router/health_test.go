package router

// Table-driven /healthz contract for the per-replica ejection payload:
// the router's health report must expose the load balancer's own view
// (ejected, remaining cooldown, strikes, picks, hedge wins) and roll it
// up into degraded/ejected_nodes — a node that answers probes while the
// pick routes around it is a brownout, and it must not look green.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func healthzBackend(name string, entities int) *fakeBackend {
	return &fakeBackend{name: name, replies: map[string]fakeReply{
		"GET /healthz": {status: 200, body: map[string]interface{}{
			"status": "ok", "entities": entities,
		}},
	}}
}

func TestHealthzReportsEjectionState(t *testing.T) {
	const ejectFor = time.Minute
	eject := func(rep *replica) {
		for i := 0; i < ejectAfterFailures; i++ {
			rep.recordFailure(ejectFor)
		}
	}
	cases := []struct {
		name string
		// arrange ejects replicas before the probe.
		arrange func(set []*replica)
		// wantEjected maps replica index -> expected ejected flag.
		wantEjected  map[int]bool
		wantDegraded bool
		wantStatus   string
	}{
		{
			name:         "healthy",
			arrange:      func([]*replica) {},
			wantEjected:  map[int]bool{0: false, 1: false},
			wantDegraded: false,
			wantStatus:   "ok",
		},
		{
			name:         "one ejected",
			arrange:      func(set []*replica) { eject(set[1]) },
			wantEjected:  map[int]bool{0: false, 1: true},
			wantDegraded: true,
			wantStatus:   "degraded",
		},
		{
			name:         "all ejected, pick falls back",
			arrange:      func(set []*replica) { eject(set[0]); eject(set[1]) },
			wantEjected:  map[int]bool{0: true, 1: true},
			wantDegraded: true,
			wantStatus:   "degraded",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := newReplicatedRouter(t, Options{PickSeed: 19},
				healthzBackend("r0", 5), healthzBackend("r1", 5))
			set := rt.view.Load().reps[0]
			// A few picks so the payload's pick counters have signal.
			for i := 0; i < 8; i++ {
				rt.pickReplica(0, -1)
			}
			tc.arrange(set)

			// Even with every replica ejected the fleet must keep serving:
			// the pick falls back to the full set.
			if rt.pickReplica(0, -1) == nil {
				t.Fatal("pick returned nil — ejection must never kill a shard")
			}

			rec := httptest.NewRecorder()
			NewHandler(rt).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("/healthz status %d", rec.Code)
			}
			var resp RouterHealthResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("bad /healthz payload: %v", err)
			}

			if resp.Status != tc.wantStatus || resp.Degraded != tc.wantDegraded {
				t.Fatalf("status=%q degraded=%v, want %q/%v", resp.Status, resp.Degraded, tc.wantStatus, tc.wantDegraded)
			}
			wantEjectedCount := 0
			for _, e := range tc.wantEjected {
				if e {
					wantEjectedCount++
				}
			}
			if resp.EjectedNodes != wantEjectedCount {
				t.Fatalf("ejected_nodes=%d, want %d", resp.EjectedNodes, wantEjectedCount)
			}
			if len(resp.Shard) != 2 {
				t.Fatalf("want one entry per node, got %d", len(resp.Shard))
			}
			var picks uint64
			for _, sh := range resp.Shard {
				want, known := tc.wantEjected[sh.Replica]
				if !known {
					t.Fatalf("unexpected replica %d in payload", sh.Replica)
				}
				if sh.Ejected != want {
					t.Errorf("replica %d ejected=%v, want %v", sh.Replica, sh.Ejected, want)
				}
				if want && sh.EjectedForMs <= 0 {
					t.Errorf("replica %d ejected without a remaining cooldown", sh.Replica)
				}
				if !want && sh.EjectedForMs != 0 {
					t.Errorf("healthy replica %d reports cooldown %v", sh.Replica, sh.EjectedForMs)
				}
				if want && sh.Ejections == 0 {
					t.Errorf("replica %d ejected but ejections counter is 0", sh.Replica)
				}
				// Probes bypass the pick, so even ejected nodes answer.
				if !sh.OK {
					t.Errorf("replica %d probe failed: %s", sh.Replica, sh.Error)
				}
				picks += sh.Picks
			}
			if picks == 0 {
				t.Error("payload carries no pick counts despite prior picks")
			}
		})
	}
}

// TestHealthzProbeFailureStillDegrades: the pre-existing contract — a
// node that fails its probe degrades the fleet even with nothing
// ejected — must survive the rollup change.
func TestHealthzProbeFailureStillDegrades(t *testing.T) {
	down := &fakeBackend{name: "r1"} // 404s /healthz: a live process without the surface
	rt := newReplicatedRouter(t, Options{PickSeed: 19}, healthzBackend("r0", 5), down)
	rec := httptest.NewRecorder()
	NewHandler(rt).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var resp RouterHealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad /healthz payload: %v", err)
	}
	if resp.Status != "degraded" || !resp.Degraded || resp.EjectedNodes != 0 {
		t.Fatalf("probe failure: status=%q degraded=%v ejected=%d, want degraded/true/0",
			resp.Status, resp.Degraded, resp.EjectedNodes)
	}
}
