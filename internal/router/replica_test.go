package router

// Unit tests of the replica-set machinery: power-of-two-choices picking
// under a pinned seed, hedge firing and prompt loser cancellation
// (including in-flight accounting — no leaked legs), fast failover, and
// ejection/reinstatement. The replicated byte-identity contract over a
// real fleet is enforced in replica_e2e_test.go.

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// newReplicatedRouter builds a single-shard router whose replica set is
// exactly the given backends.
func newReplicatedRouter(t *testing.T, opts Options, backends ...Backend) *Router {
	t.Helper()
	rt, err := New([]Shard{{Backend: backends[0], Replicas: backends[1:]}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestPickReplicaPrefersLowInFlight: with one replica carrying queued
// work, power-of-two-choices must never hand it another leg — either
// sample pair includes an idle peer, and the lower in-flight count wins.
func TestPickReplicaPrefersLowInFlight(t *testing.T) {
	rt := newReplicatedRouter(t, Options{PickSeed: 42},
		&fakeBackend{name: "r0"}, &fakeBackend{name: "r1"}, &fakeBackend{name: "r2"})
	loaded := rt.view.Load().reps[0][1]
	loaded.inflight.Store(5)
	for i := 0; i < 500; i++ {
		if got := rt.pickReplica(0, -1); got.idx == loaded.idx {
			t.Fatalf("pick %d chose the loaded replica (inflight 5) over two idle peers", i)
		}
	}
}

// TestPickReplicaDeterministicUnderSeed: the same PickSeed must produce
// the same pick sequence — the property that makes balancing behaviour
// reproducible in tests and A/B runs.
func TestPickReplicaDeterministicUnderSeed(t *testing.T) {
	mk := func() *Router {
		return newReplicatedRouter(t, Options{PickSeed: 7},
			&fakeBackend{name: "r0"}, &fakeBackend{name: "r1"}, &fakeBackend{name: "r2"})
	}
	a, b := mk(), mk()
	var seqA, seqB []int
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.pickReplica(0, -1).idx)
		seqB = append(seqB, b.pickReplica(0, -1).idx)
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("pick %d diverged under identical seeds: %d vs %d", i, seqA[i], seqB[i])
		}
	}
	// All replicas participate: an idle balanced set must not starve
	// anyone.
	seen := map[int]bool{}
	for _, idx := range seqA {
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("200 idle picks used only replicas %v", seen)
	}
}

// orderedBackend serves a replica set where the FIRST leg to arrive
// anywhere in the set blocks until its context is cancelled, and every
// later leg succeeds instantly — so whichever replica the balancer
// picks first becomes the slow one, deterministically forcing a hedge.
type orderedBackend struct {
	name      string
	calls     *atomic.Int64
	unblocked chan struct{}
}

func (b *orderedBackend) Name() string { return b.name }

func (b *orderedBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	if b.calls.Add(1) == 1 {
		<-ctx.Done()
		b.unblocked <- struct{}{}
		return 0, nil, ctx.Err()
	}
	return 200, []byte(`{"rows":[]}`), nil
}

// TestHedgeFiresAndCancelsLoser is the hedging contract: a slow first
// leg triggers a second one after the hedge delay, the fast reply wins,
// the losing leg's context is cancelled promptly (not at the 15s scatter
// timeout), in-flight accounting drains to zero, and being hedged away
// from does not count as a health strike.
func TestHedgeFiresAndCancelsLoser(t *testing.T) {
	var calls atomic.Int64
	unblocked := make(chan struct{}, 2)
	rt := newReplicatedRouter(t, Options{PickSeed: 1, HedgeDelay: 2 * time.Millisecond},
		&orderedBackend{name: "r0", calls: &calls, unblocked: unblocked},
		&orderedBackend{name: "r1", calls: &calls, unblocked: unblocked})

	start := time.Now()
	rep := rt.shardRequest(context.Background(), 0, "GET", "/topk?predicate=x&k=1", nil)
	if rep.err != nil || rep.status != 200 {
		t.Fatalf("hedged request failed: status %d err %v", rep.status, rep.err)
	}
	if fired, wins := rt.HedgeStats(); fired != 1 || wins != 1 {
		t.Fatalf("hedge stats = fired %d wins %d, want 1/1", fired, wins)
	}

	// The loser must be cancelled promptly — it was blocked on ctx.Done,
	// so it unblocking at all proves the cancel, and the elapsed bound
	// proves "promptly".
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("losing leg was never cancelled")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("losing leg cancelled after %v — that is the timeout, not the hedge", elapsed)
	}

	// No leaked legs: both replicas' in-flight counts drain to zero.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rt.view.Load().reps[0][0].inflight.Load() == 0 && rt.view.Load().reps[0][1].inflight.Load() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight counts did not drain: r0=%d r1=%d",
				rt.view.Load().reps[0][0].inflight.Load(), rt.view.Load().reps[0][1].inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Cancellation says nothing about replica health: no strikes anywhere.
	for _, rep := range rt.view.Load().reps[0] {
		if rep.fails.Load() != 0 {
			t.Fatalf("replica %d took a strike for being hedged away from", rep.idx)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("%d legs launched, want exactly 2 (hedging must bound fan-out)", calls.Load())
	}
}

// TestFastFailureFailsOverWithoutHedging: a first leg that errors
// immediately fails over to a peer replica even with hedging disabled —
// failover is availability, hedging is latency, and turning off the
// latter must not lose the former.
func TestFastFailureFailsOverWithoutHedging(t *testing.T) {
	target := "/topk?predicate=clean&k=1"
	down := &fakeBackend{name: "r0-down", err: fmt.Errorf("connection refused")}
	up := topkBackend("r1-up", target, []server.RowJSON{{EntityID: "a", Score: 0.9}})
	// Try both orderings so the test does not depend on which replica the
	// seeded pick tries first.
	for _, set := range [][]Backend{{down, up}, {up, down}} {
		rt := newReplicatedRouter(t, Options{PickSeed: 3, DisableHedging: true}, set...)
		res, err := rt.TopK(context.Background(), []string{"clean"}, 1)
		if err != nil {
			t.Fatalf("replica failover should have saved the request: %v", err)
		}
		if res.Partial || len(res.Rows) != 1 || res.Rows[0].EntityID != "a" {
			t.Fatalf("failover result = %+v", res)
		}
		if fired, _ := rt.HedgeStats(); fired != 0 {
			t.Fatalf("hedges fired with hedging disabled")
		}
	}
}

// TestReplicaEjectionAndReinstatement: three strikes eject a replica
// from the pick; the cooldown elapsing readmits it, and one success
// clears its record entirely.
func TestReplicaEjectionAndReinstatement(t *testing.T) {
	const ejectFor = 40 * time.Millisecond
	rt := newReplicatedRouter(t, Options{PickSeed: 9, EjectFor: ejectFor},
		&fakeBackend{name: "r0"}, &fakeBackend{name: "r1"})
	bad := rt.view.Load().reps[0][1]

	bad.recordFailure(ejectFor)
	bad.recordFailure(ejectFor)
	if !bad.healthy(time.Now().UnixNano()) {
		t.Fatal("two strikes should not eject")
	}
	bad.recordFailure(ejectFor)
	if bad.healthy(time.Now().UnixNano()) {
		t.Fatal("three strikes should eject")
	}
	for i := 0; i < 200; i++ {
		if rt.pickReplica(0, -1).idx == bad.idx {
			t.Fatalf("pick %d chose an ejected replica while a healthy peer exists", i)
		}
	}

	// Cooldown over: the pick may probe it again (lazy reinstatement).
	time.Sleep(ejectFor + 10*time.Millisecond)
	picked := false
	for i := 0; i < 500 && !picked; i++ {
		picked = rt.pickReplica(0, -1).idx == bad.idx
	}
	if !picked {
		t.Fatal("replica never reinstated after its cooldown")
	}
	bad.recordSuccess()
	if bad.fails.Load() != 0 || !bad.healthy(time.Now().UnixNano()) {
		t.Fatal("a success should clear strikes and ejection")
	}
}

// TestReinstatedReplicaGetsFreshStrikeBudget pins the 3-strike
// contract across an ejection cycle: arming an ejection resets the
// strike counter, so a replica reinstated after its cooldown must
// survive a single failure — it takes a fresh ejectAfterFailures
// strikes to eject it again. (The old behaviour left fails >= 3
// forever, so one post-cooldown wobble re-ejected the replica
// instantly.)
func TestReinstatedReplicaGetsFreshStrikeBudget(t *testing.T) {
	const ejectFor = 30 * time.Millisecond
	rt := newReplicatedRouter(t, Options{PickSeed: 13, EjectFor: ejectFor},
		&fakeBackend{name: "r0"}, &fakeBackend{name: "r1"})
	bad := rt.view.Load().reps[0][1]

	for i := 0; i < ejectAfterFailures; i++ {
		bad.recordFailure(ejectFor)
	}
	if bad.healthy(time.Now().UnixNano()) {
		t.Fatal("three strikes should eject")
	}
	time.Sleep(ejectFor + 10*time.Millisecond)
	if !bad.healthy(time.Now().UnixNano()) {
		t.Fatal("cooldown elapsed, replica should be back in the pick")
	}

	// One failure after reinstatement: still healthy — the budget is
	// fresh, not carried over from before the ejection.
	bad.recordFailure(ejectFor)
	if !bad.healthy(time.Now().UnixNano()) {
		t.Fatal("a single post-cooldown failure re-ejected the replica — strike budget not reset")
	}
	// Two more complete the fresh budget and eject again.
	bad.recordFailure(ejectFor)
	bad.recordFailure(ejectFor)
	if bad.healthy(time.Now().UnixNano()) {
		t.Fatal("a full fresh strike budget should eject again")
	}
	if got := bad.ejections.Load(); got != 2 {
		t.Fatalf("ejections counter = %d, want 2", got)
	}
}

// TestEjectionCooldownNotExtendedWhileEjected: failures recorded while
// a replica is already ejected (full-set fallback traffic) must not
// push ejectedUntil out — otherwise a single-replica range under
// sustained load never reaches its lazy reinstatement probe.
func TestEjectionCooldownNotExtendedWhileEjected(t *testing.T) {
	const ejectFor = 50 * time.Millisecond
	rt := newReplicatedRouter(t, Options{PickSeed: 17, EjectFor: ejectFor},
		&fakeBackend{name: "r0"}, &fakeBackend{name: "r1"})
	bad := rt.view.Load().reps[0][1]

	for i := 0; i < ejectAfterFailures; i++ {
		bad.recordFailure(ejectFor)
	}
	armed := bad.ejectedUntil.Load()
	if armed == 0 {
		t.Fatal("ejection did not arm")
	}
	// Hammer it the way fallback traffic does while the node is down.
	for i := 0; i < 100; i++ {
		bad.recordFailure(ejectFor)
	}
	if got := bad.ejectedUntil.Load(); got != armed {
		t.Fatalf("cooldown extended while ejected: %d -> %d", armed, got)
	}
	time.Sleep(ejectFor + 10*time.Millisecond)
	if !bad.healthy(time.Now().UnixNano()) {
		t.Fatal("replica never reinstated despite continuous fallback failures")
	}
}

// TestPickFallsBackWhenAllEjected: ejection sheds load, it must not
// turn a fully-struck replica set into a dead shard — with everyone
// ejected the pick uses the full set anyway.
func TestPickFallsBackWhenAllEjected(t *testing.T) {
	rt := newReplicatedRouter(t, Options{PickSeed: 5, EjectFor: time.Minute},
		&fakeBackend{name: "r0"}, &fakeBackend{name: "r1"})
	for _, rep := range rt.view.Load().reps[0] {
		for i := 0; i < ejectAfterFailures; i++ {
			rep.recordFailure(time.Minute)
		}
	}
	if got := rt.pickReplica(0, -1); got == nil {
		t.Fatal("pick returned nil with every replica ejected — must fall back to the full set")
	}
}

// TestAllReplicasDownAttributesEveryLeg: when a whole replica set is
// dead the combined error and the structured attribution must name each
// replica, not just the range.
func TestAllReplicasDownAttributesEveryLeg(t *testing.T) {
	target := "/topk?predicate=clean&k=2"
	live := topkBackend("s0", target, []server.RowJSON{{EntityID: "a", Score: 0.9}})
	rt, err := New([]Shard{
		{Backend: live},
		{Backend: &fakeBackend{name: "s1-r0", err: fmt.Errorf("connection refused")},
			Replicas: []Backend{&fakeBackend{name: "s1-r1", err: fmt.Errorf("no route to host")}}},
	}, Options{PickSeed: 11, DisableHedging: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.TopK(context.Background(), []string{"clean"}, 2)
	if err != nil {
		t.Fatalf("partial fleet should still answer: %v", err)
	}
	if !res.Partial {
		t.Fatal("result not marked partial")
	}
	msg := res.ShardErrors[1]
	for _, want := range []string{"replica 0 (s1-r0): connection refused", "replica 1 (s1-r1): no route to host"} {
		if !strings.Contains(msg, want) {
			t.Errorf("shard error %q missing %q", msg, want)
		}
	}
	if len(res.FailedNodes) != 2 {
		t.Fatalf("FailedNodes = %+v, want both replicas of shard 1", res.FailedNodes)
	}
	// Legs launch in pick order, so attribution order is not fixed —
	// assert the set.
	seen := map[int]bool{}
	for _, ne := range res.FailedNodes {
		if ne.Shard != 1 || ne.Backend == "" || ne.Error == "" {
			t.Errorf("FailedNodes entry = %+v", ne)
		}
		seen[ne.Replica] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("FailedNodes %+v does not attribute both replicas", res.FailedNodes)
	}
}
