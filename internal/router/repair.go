package router

// Post-partial-write healing: the router's integration with the
// anti-entropy control plane (internal/fleet). A routed write whose
// replica fan-out partially failed used to leave the failed shard
// drifting — its corpus-global interpretation state missing a review —
// until compaction or a restart. Now the router marks such shards dirty
// and, while still holding the write mutex, runs a repair pass scoped to
// them: the backfill re-delivers exactly the missed deltas through the
// replica-write path before any later write can land, so a healed
// replica's journal keeps the fleet order and its state stays
// byte-identical to its peers'. Shards that are fully down stay dirty
// and the hook retries on subsequent writes; RunRepair offers the same
// pass to operators (POST /repair, opinedbd -repair-interval).

import (
	"context"
	"errors"
	"strconv"

	"repro/internal/fleet"
)

// fleetBackends adapts one view of the router's fleet — every replica
// of every shard, in flat node order — to the control plane's Backend
// interface (structurally identical). Repair is a per-node concern:
// each node journals the fleet write order independently, so each
// converges (or lags) independently of its set-mates.
func fleetBackends(v *fleetView) []fleet.Backend {
	out := make([]fleet.Backend, len(v.nodes))
	for i, n := range v.nodes {
		out[i] = n.backend
	}
	return out
}

// markDirtyLocked records nodes (flat indexes) whose replication failed.
// Caller holds writeMu.
func (r *Router) markDirtyLocked(failed map[int]string) {
	for i := range failed {
		r.dirty[i] = true
	}
	r.metrics.dirtyShards.Set(float64(len(r.dirty)))
}

// repairDirtyLocked runs one repair pass scoped to the dirty nodes,
// clearing the ones that converged. Caller holds writeMu. It returns the
// node indexes healed by this pass (nil when there was nothing to do or
// the pass could not run).
func (r *Router) repairDirtyLocked(ctx context.Context) (healed []int) {
	if len(r.dirty) == 0 {
		return nil
	}
	only := make(map[int]bool, len(r.dirty))
	for i := range r.dirty {
		only[i] = true
	}
	ctx, span := r.tracer.Start(ctx, "repair.pass")
	span.SetAttr("dirty", strconv.Itoa(len(only)))
	defer func() {
		span.SetAttr("healed", strconv.Itoa(len(healed)))
		span.End()
	}()
	// The pass runs under writeMu: bound it by the router's timeout so a
	// hung dirty shard cannot stall every subsequent routed write (the
	// backends themselves carry no deadline of their own).
	ctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	v := r.view.Load()
	report, err := fleet.Repair(ctx, fleetBackends(v), fleet.RepairOptions{Only: only})
	if errors.Is(err, fleet.ErrNoJournalSurface) {
		// Volatile ingestion: there is no fleet-ordered log to heal from,
		// so a repair pass can never succeed. Stop paying the probe cost
		// on every write.
		r.autoRepair = false
		r.dirty = map[int]bool{}
		r.metrics.dirtyShards.Set(0)
		return nil
	}
	if err != nil {
		return nil
	}
	r.metrics.observeRepair(report, v.nodes)
	for i := range only {
		if report.Converged(i) {
			delete(r.dirty, i)
			healed = append(healed, i)
		}
	}
	r.metrics.dirtyShards.Set(float64(len(r.dirty)))
	if len(healed) > 0 {
		// Backfills changed replicated state behind the memo cache.
		r.invalidateInterpret()
	}
	return healed
}

// DirtyShards reports the flat node indexes whose last replication
// failed and that no repair pass has converged yet (with single-replica
// shards a node index IS the shard index).
func (r *Router) DirtyShards() []int {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	out := make([]int, 0, len(r.dirty))
	for i := range r.dirty {
		out = append(out, i)
	}
	return out
}

// RunRepair runs one fleet-wide anti-entropy pass, serialized against
// routed writes. Every node is probed; every laggard (dirty or not) is
// repaired. This is the operator surface behind POST /repair and the
// opinedbd repair interval.
func (r *Router) RunRepair(ctx context.Context) (*fleet.RepairReport, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	v := r.view.Load()
	ctx, span := r.tracer.Start(ctx, "repair.pass")
	span.SetAttr("nodes", strconv.Itoa(len(v.nodes)))
	report, err := fleet.Repair(ctx, fleetBackends(v), fleet.RepairOptions{})
	if err != nil {
		span.SetError(err.Error())
		span.End()
		return nil, err
	}
	backfilled := 0
	for _, n := range report.Nodes {
		backfilled += n.Backfilled
	}
	span.SetAttr("backfilled", strconv.Itoa(backfilled))
	span.End()
	r.metrics.observeRepair(report, v.nodes)
	repaired := false
	for i := range v.nodes {
		if report.Converged(i) {
			delete(r.dirty, i)
		}
	}
	r.metrics.dirtyShards.Set(float64(len(r.dirty)))
	for _, n := range report.Nodes {
		if n.Backfilled > 0 {
			repaired = true
		}
	}
	if repaired {
		r.invalidateInterpret()
	}
	return report, nil
}
