package router

// Replica-set administration: the fleet topology behind the router is a
// fleetView — per-shard replica sets plus the same set flattened in
// shard-major node order — held in an atomic pointer. Read paths load
// the view once per operation and never take a lock; AdmitReplica and
// RetireReplica build a fresh view and swap it in under the write
// mutex, so topology changes serialize with writes (and with each
// other) while reads continue uninterrupted.
//
// Admission is two-phase so the fleet never pauses writes for a bulk
// transfer: phase 1 streams the journal suffix to the joiner WITHOUT
// the write mutex (writes keep landing; the joiner chases the moving
// position), then phase 2 takes the mutex — freezing the fleet journal
// position — syncs the small delta that landed during phase 1, and
// verifies byte identity (the joiner's journal must hash as exactly
// the fleet's record sequence at the fleet's position) before the
// joiner enters the pick. Writes queue on the mutex for the delta
// sync only, never for the bulk transfer, and no read is ever served
// by a node that has not proven identity.

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

// fleetView is one immutable snapshot of the fleet topology. reps
// mirrors Router.shards with per-replica balancing state; nodes is the
// same set flattened fleet-wide in shard-major order (the indexing
// writes, repair and the dirty set use — with single-replica shards a
// node index IS the shard index).
type fleetView struct {
	reps  [][]*replica
	nodes []*replica
}

// nodeIndex returns rep's flat node index under this view, or -1 when
// the replica is not part of it (retired since the caller found it).
func (v *fleetView) nodeIndex(rep *replica) int {
	for i, n := range v.nodes {
		if n == rep {
			return i
		}
	}
	return -1
}

// withReplica returns a new view with nr appended to shard's replica
// set; without returns a new view with target removed. Both rebuild
// the flat node list — replica pointers are shared, so balancing state
// (in-flight counts, strikes) carries across the swap.
func (v *fleetView) withReplica(shard int, nr *replica) *fleetView {
	return v.rebuild(func(s int, set []*replica) []*replica {
		if s != shard {
			return set
		}
		return append(append([]*replica(nil), set...), nr)
	})
}

func (v *fleetView) without(target *replica) *fleetView {
	return v.rebuild(func(s int, set []*replica) []*replica {
		out := make([]*replica, 0, len(set))
		for _, rep := range set {
			if rep != target {
				out = append(out, rep)
			}
		}
		return out
	})
}

func (v *fleetView) rebuild(mod func(shard int, set []*replica) []*replica) *fleetView {
	nv := &fleetView{reps: make([][]*replica, len(v.reps))}
	for s, set := range v.reps {
		nv.reps[s] = mod(s, set)
		nv.nodes = append(nv.nodes, nv.reps[s]...)
	}
	return nv
}

// remapDirtyLocked rewrites the dirty set's flat node indexes from the
// old view's numbering to the new one's, dropping entries for retired
// nodes. Caller holds writeMu.
func (r *Router) remapDirtyLocked(old, next *fleetView) {
	if len(r.dirty) == 0 {
		return
	}
	nd := make(map[int]bool, len(r.dirty))
	for i := range r.dirty {
		if i < 0 || i >= len(old.nodes) {
			continue
		}
		if j := next.nodeIndex(old.nodes[i]); j >= 0 {
			nd[j] = true
		}
	}
	r.dirty = nd
	r.metrics.dirtyShards.Set(float64(len(r.dirty)))
}

// AdmitReport describes one replica admission.
type AdmitReport struct {
	// Shard is the range joined; Replica the in-set index assigned to
	// the joiner; Backend its display name.
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Backend string `json:"backend"`
	// Presync is the bulk catch-up run before the write mutex was taken
	// (writes kept flowing); Final the delta sync and byte-identity
	// verification run under it.
	Presync *fleet.JoinReport `json:"presync"`
	Final   *fleet.JoinReport `json:"final"`
	// Nodes is the fleet's total backend count after the join.
	Nodes int `json:"nodes"`
}

// AdmitReplica brings a fresh node into shard's replica set: verify it
// serves this build's shard range (when it reports an identity), catch
// it up to the fleet journal position via fleet.JoinReplica, and swap
// it into the pick. See the file comment for the two-phase protocol.
func (r *Router) AdmitReplica(ctx context.Context, shard int, b Backend) (*AdmitReport, error) {
	if shard < 0 || shard >= len(r.shards) {
		return nil, fmt.Errorf("router: admit: shard %d out of range [0,%d)", shard, len(r.shards))
	}
	if b == nil {
		return nil, fmt.Errorf("router: admit: nil backend")
	}
	if err := r.verifyJoinerIdentity(ctx, shard, b); err != nil {
		return nil, err
	}

	// Phase 1: bulk catch-up with writes still flowing. The fleet
	// position may advance while this streams; phase 2 closes the gap.
	// Each phase gets its own span — the presync/final duration split is
	// exactly the "how long did writes queue" question an operator asks
	// about a join.
	preCtx, preSpan := r.tracer.Start(ctx, "admin.presync")
	preSpan.SetAttr("shard", strconv.Itoa(shard))
	preSpan.SetAttr("backend", b.Name())
	pre, err := fleet.JoinReplica(preCtx, fleetBackends(r.view.Load()), b, fleet.JoinOptions{})
	if err != nil {
		preSpan.SetError(err.Error())
		preSpan.End()
		return nil, fmt.Errorf("router: admit shard %d (%s): presync: %w", shard, b.Name(), err)
	}
	preSpan.SetAttr("backfilled", strconv.Itoa(pre.Backfilled))
	preSpan.End()

	// Phase 2: freeze the fleet journal position, sync the delta, prove
	// byte identity, then enter the pick. Writes queue on the mutex for
	// this delta only.
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	v := r.view.Load()
	finCtx, finSpan := r.tracer.Start(ctx, "admin.final")
	finSpan.SetAttr("shard", strconv.Itoa(shard))
	finSpan.SetAttr("backend", b.Name())
	fin, err := fleet.JoinReplica(finCtx, fleetBackends(v), b, fleet.JoinOptions{})
	if err != nil {
		finSpan.SetError(err.Error())
		finSpan.End()
		return nil, fmt.Errorf("router: admit shard %d (%s): final sync: %w", shard, b.Name(), err)
	}
	finSpan.SetAttr("backfilled", strconv.Itoa(fin.Backfilled))
	finSpan.SetAttr("identical", strconv.FormatBool(fin.Identical))
	finSpan.End()
	if !fin.Identical {
		return nil, fmt.Errorf("router: admit shard %d (%s): joiner stopped at seq %d of %d without proving identity — not admitted",
			shard, b.Name(), fin.After, fin.ReferenceSeq)
	}
	idx := 0
	for _, rep := range v.reps[shard] {
		if rep.idx >= idx {
			idx = rep.idx + 1
		}
	}
	nr := r.newReplica(shard, idx, b)
	nv := v.withReplica(shard, nr)
	r.remapDirtyLocked(v, nv)
	r.view.Store(nv)
	return &AdmitReport{
		Shard: shard, Replica: idx, Backend: b.Name(),
		Presync: pre, Final: fin, Nodes: len(nv.nodes),
	}, nil
}

// verifyJoinerIdentity probes the joiner's /healthz and, when the node
// reports a snapshot shard identity, requires it to serve exactly this
// shard range of this build — admitting shard 2's snapshot into shard
// 0's replica set would break byte identity silently. Nodes without an
// identity (in-process builds) are trusted to the journal proof.
func (r *Router) verifyJoinerIdentity(ctx context.Context, shard int, b Backend) error {
	probeCtx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	status, body, err := b.Do(probeCtx, "GET", "/healthz", nil)
	if err != nil {
		return fmt.Errorf("router: admit shard %d (%s): joiner unreachable: %w", shard, b.Name(), err)
	}
	if status != 200 {
		return fmt.Errorf("router: admit shard %d (%s): joiner /healthz answered %d", shard, b.Name(), status)
	}
	var h server.HealthResponse
	if err := json.Unmarshal(body, &h); err != nil || h.Snapshot == nil || h.Snapshot.Shard == nil {
		return nil // no identity to check; the journal proof still gates admission
	}
	id := h.Snapshot.Shard
	if id.Index != shard {
		return fmt.Errorf("router: admit shard %d (%s): joiner serves shard %d", shard, b.Name(), id.Index)
	}
	if id.Count != len(r.shards) {
		return fmt.Errorf("router: admit shard %d (%s): joiner belongs to a %d-shard build, this fleet has %d",
			shard, b.Name(), id.Count, len(r.shards))
	}
	return nil
}

// RetireReport describes one replica retirement.
type RetireReport struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Backend string `json:"backend"`
	// Drained is true when every in-flight leg against the retired node
	// finished before the drain deadline; false means the node should
	// stay up briefly before decommissioning.
	Drained bool `json:"drained"`
	// Nodes is the fleet's total backend count after the retirement.
	Nodes int `json:"nodes"`
}

// retireDrainTimeout bounds the post-swap wait for in-flight legs.
const retireDrainTimeout = 5 * time.Second

// RetireReplica removes a replica from shard's set: swap in a view
// without it (new picks never see it), then drain its in-flight legs.
// The last replica of a range cannot be retired — a range must always
// have a server.
func (r *Router) RetireReplica(ctx context.Context, shard, idx int) (*RetireReport, error) {
	r.writeMu.Lock()
	if shard < 0 || shard >= len(r.shards) {
		r.writeMu.Unlock()
		return nil, fmt.Errorf("router: retire: shard %d out of range [0,%d)", shard, len(r.shards))
	}
	v := r.view.Load()
	var target *replica
	for _, rep := range v.reps[shard] {
		if rep.idx == idx {
			target = rep
			break
		}
	}
	if target == nil {
		r.writeMu.Unlock()
		return nil, fmt.Errorf("router: retire: shard %d has no replica %d", shard, idx)
	}
	if len(v.reps[shard]) == 1 {
		r.writeMu.Unlock()
		return nil, fmt.Errorf("router: retire: replica %d is shard %d's last — a range cannot lose its only server", idx, shard)
	}
	nv := v.without(target)
	r.remapDirtyLocked(v, nv)
	r.view.Store(nv)
	r.writeMu.Unlock()

	// Drain outside the mutex: legs picked from the old view finish
	// against the retired backend; new picks already cannot see it.
	report := &RetireReport{Shard: shard, Replica: idx, Backend: target.backend.Name(), Nodes: len(nv.nodes)}
	deadline := time.Now().Add(retireDrainTimeout)
	for target.inflight.Load() > 0 {
		if ctx.Err() != nil || time.Now().After(deadline) {
			return report, nil
		}
		time.Sleep(time.Millisecond)
	}
	report.Drained = true
	return report, nil
}
