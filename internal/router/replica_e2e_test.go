package router_test

// End-to-end tests of replicated serving over the shared e2e fixture's
// real HTTP shard servers: the full-fingerprint byte-identity contract
// must survive load balancing and hedging at R=2, a degraded (slow)
// replica with hedging rescuing the tail, and an outright dead replica
// with failover carrying the set — and partial results must attribute
// failures to the exact replica.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/router"
	"repro/internal/snapshot"
)

// namedBackend gives a backend a stable display name independent of
// its ephemeral httptest URL.
type namedBackend struct {
	router.Backend
	name string
}

func (b namedBackend) Name() string { return b.name }

// replicatedRouter assembles an R=2 router over the fixture: both
// replicas of each range point at the same shard server through
// independent backends — equivalent replicas by construction, which is
// exactly the property the balancer and hedger rely on.
func replicatedRouter(t *testing.T, m *snapshot.Manifest, urls []string, opts router.Options,
	wrap func(shard, replica int, b router.Backend) router.Backend) *router.Router {
	t.Helper()
	shards := make([]router.Shard, len(urls))
	for i, u := range urls {
		b0 := router.Backend(namedBackend{&router.HTTPBackend{BaseURL: u}, fmt.Sprintf("shard%d.r0", i)})
		b1 := router.Backend(namedBackend{&router.HTTPBackend{BaseURL: u}, fmt.Sprintf("shard%d.r1", i)})
		if wrap != nil {
			b0, b1 = wrap(i, 0, b0), wrap(i, 1, b1)
		}
		shards[i] = router.Shard{
			Backend:     b0,
			Replicas:    []router.Backend{b1},
			FirstEntity: m.Shard[i].FirstEntity,
			LastEntity:  m.Shard[i].LastEntity,
		}
	}
	rt, err := router.New(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestReplicatedByteIdentity: the R=2 fleet with hedging enabled answers
// the full harness fingerprint byte-identically to the monolith — load
// balancing must be invisible in the bytes.
func TestReplicatedByteIdentity(t *testing.T) {
	d, db, m, urls := e2eFixture(t)
	rt := replicatedRouter(t, m, urls, router.Options{PickSeed: 1}, nil)
	monolithFP, n := harness.QueryFingerprint(d, db)
	routedFP, _ := harness.QueryFingerprint(d, rt.Engine(context.Background()))
	if monolithFP != routedFP {
		t.Fatalf("R=2 fleet diverges from monolith over %d query-set entries:\n%s",
			n, firstDiff(monolithFP, routedFP))
	}
}

// TestReplicatedSlowReplicaByteIdentity degrades one replica of one
// range and pins a short hedge delay: hedging must fire (the slow legs
// exceed the delay by construction) and the bytes must not move.
func TestReplicatedSlowReplicaByteIdentity(t *testing.T) {
	d, db, m, urls := e2eFixture(t)
	const slow = 15 * time.Millisecond
	rt := replicatedRouter(t, m, urls,
		router.Options{PickSeed: 1, HedgeDelay: 2 * time.Millisecond},
		func(shard, replica int, b router.Backend) router.Backend {
			if shard == 1 && replica == 1 {
				return &router.DelayBackend{Inner: b, Delay: slow}
			}
			return b
		})
	monolithFP, n := harness.QueryFingerprint(d, db)
	routedFP, _ := harness.QueryFingerprint(d, rt.Engine(context.Background()))
	if monolithFP != routedFP {
		t.Fatalf("fleet with a slow replica diverges from monolith over %d query-set entries:\n%s",
			n, firstDiff(monolithFP, routedFP))
	}
	if fired, wins := rt.HedgeStats(); fired == 0 || wins == 0 {
		t.Fatalf("hedge stats = fired %d wins %d; a 15ms replica behind a 2ms hedge delay must hedge", fired, wins)
	}
}

// TestReplicatedOneReplicaDown kills one replica of one range outright:
// failover keeps every request whole (no partials anywhere in the
// fingerprint — it would diverge if any went partial) and byte-identity
// holds.
func TestReplicatedOneReplicaDown(t *testing.T) {
	d, db, m, urls := e2eFixture(t)
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadSrv.URL
	deadSrv.Close()
	rt := replicatedRouter(t, m, urls, router.Options{PickSeed: 1},
		func(shard, replica int, b router.Backend) router.Backend {
			if shard == 2 && replica == 0 {
				return namedBackend{&router.HTTPBackend{BaseURL: deadURL}, "shard2.r0-dead"}
			}
			return b
		})
	monolithFP, n := harness.QueryFingerprint(d, db)
	routedFP, _ := harness.QueryFingerprint(d, rt.Engine(context.Background()))
	if monolithFP != routedFP {
		t.Fatalf("fleet with a dead replica diverges from monolith over %d query-set entries:\n%s",
			n, firstDiff(monolithFP, routedFP))
	}
}

// TestHandlerReportsFailedNodes: when a whole replica set is down, the
// front door's JSON attributes the failure to each replica — operators
// must be able to tell a dead replica from a dead range.
func TestHandlerReportsFailedNodes(t *testing.T) {
	d, _, m, urls := e2eFixture(t)
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadSrv.URL
	deadSrv.Close()
	rt := replicatedRouter(t, m, urls, router.Options{PickSeed: 1},
		func(shard, replica int, b router.Backend) router.Backend {
			if shard == 3 {
				return namedBackend{&router.HTTPBackend{BaseURL: deadURL},
					fmt.Sprintf("shard3.r%d-dead", replica)}
			}
			return b
		})
	front := httptest.NewServer(router.NewHandler(rt))
	defer front.Close()

	var pred string
	for _, p := range d.Predicates {
		pred = p.Text
		break
	}
	resp, err := http.Get(front.URL + "/query?sql=" +
		strings.ReplaceAll(`select * from Entities where "`+pred+`"`, " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		Partial     bool `json:"partial"`
		FailedNodes []struct {
			Shard   int    `json:"shard"`
			Replica int    `json:"replica"`
			Backend string `json:"backend"`
			Error   string `json:"error"`
		} `json:"failed_nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Partial {
		t.Fatal("result not marked partial with a whole replica set down")
	}
	if len(qr.FailedNodes) != 2 {
		t.Fatalf("failed_nodes = %+v, want both replicas of shard 3", qr.FailedNodes)
	}
	seen := map[int]bool{}
	for _, ne := range qr.FailedNodes {
		if ne.Shard != 3 || ne.Backend == "" || ne.Error == "" {
			t.Errorf("failed_nodes entry = %+v", ne)
		}
		seen[ne.Replica] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("failed_nodes %+v does not attribute both replicas", qr.FailedNodes)
	}
}
