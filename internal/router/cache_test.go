package router

// Unit tests of the front-door /interpret memo cache: interpretation
// state is replicated fleet-wide, so the router may answer repeat
// predicates from memory — until any accepted write invalidates the
// memo.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
)

func cacheRouter(t *testing.T) (*Router, *fakeBackend) {
	t.Helper()
	b := &fakeBackend{name: "s0", replies: map[string]fakeReply{
		"GET /interpret?predicate=clean+rooms": {200, server.InterpretResponse{
			Chosen: server.InterpretationJSON{Predicate: "clean rooms", Method: "w2v", Similarity: 0.9},
		}},
		"POST /reviews": {200, server.ReviewResponse{ReviewID: "r-c1", EntityID: "e5", Owned: true}},
	}}
	r, err := New([]Shard{{Backend: b, FirstEntity: "a", LastEntity: "z"}}, Options{DisableAutoRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	return r, b
}

func TestInterpretCacheHitMissInvalidate(t *testing.T) {
	r, _ := cacheRouter(t)
	ctx := context.Background()

	resp, cached, err := r.InterpretChain(ctx, "clean rooms")
	if err != nil || cached || resp.Chosen.Predicate != "clean rooms" {
		t.Fatalf("first call: resp=%+v cached=%v err=%v", resp, cached, err)
	}
	again, cached, err := r.InterpretChain(ctx, "clean rooms")
	if err != nil || !cached || again != resp {
		t.Fatalf("second call should hit the memo: cached=%v err=%v", cached, err)
	}
	if hits, misses := r.InterpretCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1 hit / 1 miss", hits, misses)
	}

	// Any accepted write drops the memo.
	if _, err := r.AddReview(ctx, server.ReviewRequest{ID: "r-c1", EntityID: "e5", Text: "spotless"}); err != nil {
		t.Fatal(err)
	}
	_, cached, err = r.InterpretChain(ctx, "clean rooms")
	if err != nil || cached {
		t.Fatalf("post-write call should miss: cached=%v err=%v", cached, err)
	}
	if hits, misses := r.InterpretCacheStats(); hits != 1 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 1 hit / 2 misses", hits, misses)
	}
}

// TestInterpretCacheStaleFillFenced: a response fetched against
// pre-write state must not be memoized after an invalidation — the
// generation counter fences the store.
func TestInterpretCacheStaleFillFenced(t *testing.T) {
	r, _ := cacheRouter(t)
	_, gen := r.interpretCached("clean rooms") // miss; remember the generation
	r.invalidateInterpret()                    // a write lands mid-fetch
	r.interpretStore("clean rooms", &server.InterpretResponse{}, gen)
	if resp, _ := r.interpretCached("clean rooms"); resp != nil {
		t.Fatal("stale fill survived the invalidation fence")
	}
}

func TestInterpretCacheBounded(t *testing.T) {
	r, _ := cacheRouter(t)
	for i := 0; i < maxInterpretCacheEntries+10; i++ {
		_, gen := r.interpretCached(fmt.Sprintf("p%d", i))
		r.interpretStore(fmt.Sprintf("p%d", i), &server.InterpretResponse{}, gen)
	}
	r.interpMu.Lock()
	n := r.interpCache.Len()
	r.interpMu.Unlock()
	if n > maxInterpretCacheEntries {
		t.Fatalf("cache grew to %d entries past the %d cap", n, maxInterpretCacheEntries)
	}
}

// TestInterpretCacheEvictionOrder: the bound is a deterministic LRU —
// overflow evicts exactly the least-recently-used predicate, and a hit
// refreshes recency. (The old cache dropped an arbitrary epoch of
// entries on overflow, so which predicates survived depended on map
// iteration order.)
func TestInterpretCacheEvictionOrder(t *testing.T) {
	r, _ := cacheRouter(t)
	fill := func(pred string) {
		_, gen := r.interpretCached(pred)
		r.interpretStore(pred, &server.InterpretResponse{}, gen)
	}
	for i := 0; i < maxInterpretCacheEntries; i++ {
		fill(fmt.Sprintf("p%d", i))
	}
	// Touch the oldest entry so it is no longer the eviction candidate.
	if resp, _ := r.interpretCached("p0"); resp == nil {
		t.Fatal("p0 missing before any eviction")
	}
	// One past the cap: exactly p1 (now the LRU) must go.
	fill("overflow")
	r.interpMu.Lock()
	n := r.interpCache.Len()
	r.interpMu.Unlock()
	if n != maxInterpretCacheEntries {
		t.Fatalf("cache holds %d entries after overflow, want %d", n, maxInterpretCacheEntries)
	}
	if resp, _ := r.interpretCached("p1"); resp != nil {
		t.Fatal("p1 survived overflow; it was the least recently used entry")
	}
	for _, keep := range []string{"p0", "p2", "overflow"} {
		if resp, _ := r.interpretCached(keep); resp == nil {
			t.Fatalf("%s was evicted; only the LRU entry (p1) should go", keep)
		}
	}
}

func TestInterpretCacheHeaders(t *testing.T) {
	r, _ := cacheRouter(t)
	front := httptest.NewServer(NewHandler(r))
	defer front.Close()

	get := func() (verdict string) {
		resp, err := http.Get(front.URL + "/interpret?predicate=clean+rooms")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if resp.Header.Get("X-Interpret-Cache-Hits") == "" || resp.Header.Get("X-Interpret-Cache-Misses") == "" {
			t.Fatal("cache counters missing from response headers")
		}
		return resp.Header.Get("X-Interpret-Cache")
	}
	if v := get(); v != "miss" {
		t.Fatalf("first request: %q, want miss", v)
	}
	if v := get(); v != "hit" {
		t.Fatalf("second request: %q, want hit", v)
	}
}
