package router

// Front-door observability. The router feeds the same dependency-free
// registry (internal/obs) as the shard servers and serves it at GET
// /metrics: per-endpoint request histograms, the three routed-read
// stages (parse, scatter, merge), per-shard scatter round-trip latency
// (the series that shows a straggler shard), the /interpret memo
// cache's hit/miss counters, and the anti-entropy loop's repair
// counters plus per-shard replication lag. A single-process fleet can
// pass the same registry to the router and every shard
// (Options.Metrics); label sets keep the families distinct.

import (
	"strconv"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// Metric family names served by the router's GET /metrics, alongside
// the shard servers' opinedb_* families when the registry is shared.
const (
	// MetricRouterRequestSeconds / MetricRouterRequestsTotal: per-
	// endpoint front-door latency and volume — labeled
	// {endpoint="query"|"topk"|...}.
	MetricRouterRequestSeconds = "opinedb_router_request_seconds"
	MetricRouterRequestsTotal  = "opinedb_router_requests_total"
	// MetricRouterStageSeconds: routed-read stage latency — labeled
	// {stage="parse"|"scatter"|"merge"}.
	MetricRouterStageSeconds = "opinedb_router_stage_seconds"
	// MetricRouterShardSeconds: one shard's scatter round-trip — labeled
	// {shard="0"...}; the gap between a shard's p99 and its peers' is a
	// straggler.
	MetricRouterShardSeconds = "opinedb_router_shard_scatter_seconds"
	// MetricRouterInterpretHits / MetricRouterInterpretMisses: the
	// front-door /interpret memo cache (cache.go).
	MetricRouterInterpretHits   = "opinedb_router_interpret_cache_hits_total"
	MetricRouterInterpretMisses = "opinedb_router_interpret_cache_misses_total"
	// MetricRouterDirtyShards: shards whose last replication failed and
	// that no repair pass has converged yet.
	MetricRouterDirtyShards = "opinedb_router_dirty_shards"
	// MetricRouterRepairPasses / MetricRouterRepairBackfilled:
	// anti-entropy passes run and records backfilled by them.
	MetricRouterRepairPasses     = "opinedb_router_repair_passes_total"
	MetricRouterRepairBackfilled = "opinedb_router_repair_backfilled_total"
	// MetricRouterRepairLag: per-node journal sequences behind the
	// repair reference after the last pass — labeled {shard,replica};
	// non-zero means the node did not converge.
	MetricRouterRepairLag = "opinedb_router_repair_lag"
	// MetricRouterReplicaSeconds: one replica's successful request-leg
	// latency — labeled {shard,replica}; a replica whose percentiles
	// drift from its set-mates' is degraded.
	MetricRouterReplicaSeconds = "opinedb_router_replica_seconds"
	// MetricRouterReplicaPicked: how often the load balancer picked each
	// replica — labeled {shard,replica}; a starved replica is ejected or
	// persistently loaded.
	MetricRouterReplicaPicked = "opinedb_router_replica_picked_total"
	// MetricRouterReplicaHedgeWins: hedge legs won, attributed to the
	// replica whose second leg beat the original — labeled
	// {shard,replica}.
	MetricRouterReplicaHedgeWins = "opinedb_router_replica_hedge_wins_total"
	// MetricRouterHedgesFired / MetricRouterHedgeWins: hedge legs
	// launched and hedge legs that beat the original.
	MetricRouterHedgesFired = "opinedb_router_hedges_fired_total"
	MetricRouterHedgeWins   = "opinedb_router_hedge_wins_total"
)

// routerEndpoints are the instrumented front-door endpoints, fixed up
// front so every scrape exposes the full set.
var routerEndpoints = []string{
	"healthz", "schema", "query", "interpret", "evidence", "topk",
	"reviews", "repair", "admin",
}

// routerMetrics pre-resolves the router's instruments so the request
// path never takes the registry lock. Per-replica series (leg latency,
// picks, hedge wins, repair lag) are NOT held here: each replica
// carries its own handles (replica.go), resolved by the replica*
// methods below when the replica is built — so a live-joined replica
// brings new series into the same families without the router keeping
// shard×replica arrays that a join would have to grow.
type routerMetrics struct {
	reg            *obs.Registry
	requestSeconds map[string]*obs.Histogram
	requestsTotal  map[string]*obs.Counter
	parse          *obs.Histogram
	scatter        *obs.Histogram
	merge          *obs.Histogram
	shardSeconds   []*obs.Histogram
	interpretHits  *obs.Counter
	interpretMiss  *obs.Counter
	dirtyShards    *obs.Gauge
	repairPasses   *obs.Counter
	repairBackfill *obs.Counter
	hedgeFired     *obs.Counter
	hedgeWins      *obs.Counter
}

// newRouterMetrics resolves the router's fixed instruments; shards is
// the range count (immutable — only replica sets grow and shrink).
func newRouterMetrics(reg *obs.Registry, shards int) *routerMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &routerMetrics{
		reg:            reg,
		requestSeconds: make(map[string]*obs.Histogram, len(routerEndpoints)),
		requestsTotal:  make(map[string]*obs.Counter, len(routerEndpoints)),
	}
	for _, ep := range routerEndpoints {
		m.requestSeconds[ep] = reg.Histogram(MetricRouterRequestSeconds,
			"Per-endpoint front-door request wall time in seconds.",
			obs.L("endpoint", ep))
		m.requestsTotal[ep] = reg.Counter(MetricRouterRequestsTotal,
			"Front-door requests served, by endpoint.", obs.L("endpoint", ep))
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram(MetricRouterStageSeconds,
			"Routed-read stage latency in seconds.", obs.L("stage", name))
	}
	m.parse = stage("parse")
	m.scatter = stage("scatter")
	m.merge = stage("merge")
	m.shardSeconds = make([]*obs.Histogram, shards)
	for i := 0; i < shards; i++ {
		m.shardSeconds[i] = reg.Histogram(MetricRouterShardSeconds,
			"One shard's scatter round-trip in seconds.",
			obs.L("shard", strconv.Itoa(i)))
	}
	m.hedgeFired = reg.Counter(MetricRouterHedgesFired,
		"Hedge legs launched against a second replica.")
	m.hedgeWins = reg.Counter(MetricRouterHedgeWins,
		"Hedge legs that beat the original leg.")
	m.interpretHits = reg.Counter(MetricRouterInterpretHits,
		"Front-door interpret memo cache hits.")
	m.interpretMiss = reg.Counter(MetricRouterInterpretMisses,
		"Front-door interpret memo cache misses.")
	m.dirtyShards = reg.Gauge(MetricRouterDirtyShards,
		"Shards whose last replication failed and repair has not converged.")
	m.repairPasses = reg.Counter(MetricRouterRepairPasses,
		"Anti-entropy repair passes run.")
	m.repairBackfill = reg.Counter(MetricRouterRepairBackfilled,
		"Journal records backfilled by repair passes.")
	return m
}

// replicaLabels renders one node's {shard,replica} label pair.
func replicaLabels(shard, idx int) []obs.Label {
	return []obs.Label{obs.L("shard", strconv.Itoa(shard)), obs.L("replica", strconv.Itoa(idx))}
}

// replicaSeconds / replicaPicked / replicaHedgeWins / replicaRepairLag
// get-or-create one node's series; the registry returns the same
// instance for the same (shard, replica), so a joiner reusing a retired
// slot continues its series.
func (m *routerMetrics) replicaSeconds(shard, idx int) *obs.Histogram {
	return m.reg.Histogram(MetricRouterReplicaSeconds,
		"One replica's successful request-leg latency in seconds.",
		replicaLabels(shard, idx)...)
}

func (m *routerMetrics) replicaPicked(shard, idx int) *obs.Counter {
	return m.reg.Counter(MetricRouterReplicaPicked,
		"Load-balancer picks, by replica.", replicaLabels(shard, idx)...)
}

func (m *routerMetrics) replicaHedgeWins(shard, idx int) *obs.Counter {
	return m.reg.Counter(MetricRouterReplicaHedgeWins,
		"Hedge legs won, by the replica that served the winning leg.",
		replicaLabels(shard, idx)...)
}

func (m *routerMetrics) replicaRepairLag(shard, idx int) *obs.Gauge {
	return m.reg.Gauge(MetricRouterRepairLag,
		"Journal sequences behind the repair reference after the last pass.",
		replicaLabels(shard, idx)...)
}

// observeRepair folds one anti-entropy report into the repair families:
// the pass counter, the backfilled-record counter, and each probed
// node's lag behind the reference journal. nodes is the flat node list
// the report's indexes refer to (the view the pass ran against).
func (m *routerMetrics) observeRepair(report *fleet.RepairReport, nodes []*replica) {
	m.repairPasses.Inc()
	for _, n := range report.Nodes {
		if n.Backfilled > 0 {
			m.repairBackfill.Add(uint64(n.Backfilled))
		}
		if n.Index < 0 || n.Index >= len(nodes) {
			continue
		}
		lag := 0.0
		if report.ReferenceSeq > n.After {
			lag = float64(report.ReferenceSeq - n.After)
		}
		nodes[n.Index].repairLag.Set(lag)
	}
}

// Metrics returns the registry backing the router's GET /metrics, for
// the daemon, the load harness and tests.
func (r *Router) Metrics() *obs.Registry { return r.metrics.reg }
