// Package router is the scatter-gather query layer over a sharded
// OpineDB fleet. Each shard serves a contiguous range of the entity space
// (built by opinedbb -shards and described by a snapshot.Manifest); the
// router fans /query, /topk, /interpret and /evidence out to the shard
// backends, merges ranked results into the exact global answer, and
// degrades gracefully — partial results plus per-shard error reporting —
// when shards are down.
//
// Correctness contract: because every shard replicates the corpus-global
// model state and partitions only per-entity serving state (see
// core.ShardDB), a shard's scores carry the exact float bits the
// monolithic database produces. Merging the per-shard rankings under the
// engine's own ordering (score descending, entity id ascending) therefore
// reproduces the monolithic answer byte-for-byte — enforced end to end by
// internal/router/e2e_test.go over the full harness query fingerprint.
//
// The merge is a bounded k-way heap merge: O((k + s) log s) for k results
// over s shards, never a concatenate-and-sort.
package router

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lru"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sqlparse"
	"repro/internal/trace"
)

// Backend executes one shard-API request (the HTTP JSON API of
// internal/server) and returns the status code and response body. The two
// implementations are HTTPBackend (a remote opinedbd replica) and
// LocalBackend (an in-process shard behind the same handler).
type Backend interface {
	// Name identifies the backend in error reports ("shard 2 @ :8082").
	Name() string
	// Do performs method on target (path + raw query, e.g. "/topk?k=5")
	// with an optional JSON body.
	Do(ctx context.Context, method, target string, body []byte) (status int, respBody []byte, err error)
}

// Shard pairs a replica set with the entity range it owns. The range
// bounds come from the shard manifest; they let the router route point
// lookups (/evidence) straight to the owner. Empty bounds disable
// targeted routing for that shard (the router falls back to
// scattering).
type Shard struct {
	// Backend is the range's primary (replica 0).
	Backend Backend
	// Replicas lists additional equivalent backends for the range; the
	// full replica set is [Backend, Replicas...]. Reads load-balance and
	// hedge across the set (replica.go); writes and repair reach every
	// member (write.go, repair.go).
	Replicas    []Backend
	FirstEntity string
	LastEntity  string
}

// set returns the shard's full replica set.
func (s Shard) set() []Backend {
	return append([]Backend{s.Backend}, s.Replicas...)
}

// Options configure a Router.
type Options struct {
	// Timeout bounds each scatter round-trip. 0 means 15s.
	Timeout time.Duration
	// DefaultTopK caps merged rankings when a request does not specify k.
	// 0 means 10, matching the engine and shard servers.
	DefaultTopK int
	// DisableAutoRepair turns off the post-partial-write healing hook: by
	// default a write whose replication partially failed marks the failed
	// shards dirty and the router runs an anti-entropy repair pass
	// (internal/fleet) against them — under the write mutex, so the
	// backfill lands before any later write and the healed replica keeps
	// the fleet order — retrying on subsequent writes until the shards
	// come back. Disable it only when an external repair loop owns
	// convergence.
	DisableAutoRepair bool
	// Metrics is the registry behind the front door's GET /metrics
	// (metrics.go). nil gets the router a private registry; a
	// single-process fleet passes one registry to the router and every
	// shard so one scrape covers both tiers.
	Metrics *obs.Registry
	// DisableHedging turns off hedged scatter legs (replica.go). Load
	// balancing and failover across replicas stay on; only the
	// latency-triggered second leg is suppressed — the control arm of
	// the hedging A/B.
	DisableHedging bool
	// HedgeDelay fixes the hedge delay instead of adapting it to each
	// shard's scatter-latency p95. 0 means adaptive.
	HedgeDelay time.Duration
	// PickSeed seeds the replica load-balancer's RNG so tests can pin
	// the power-of-two-choices sample sequence. 0 uses a random seed.
	PickSeed int64
	// EjectFor overrides how long a failing replica sits out of the
	// load-balanced pick. 0 means 2s.
	EjectFor time.Duration
	// Trace, when non-nil, records request-scoped spans — front door,
	// parse/scatter/merge, one child span per scatter leg with hedge
	// attribution, the write path, repair and join phases — and serves
	// GET /debug/traces on the handler. nil disables tracing at zero
	// cost. The collector's sampler uses its own seeded RNG, never the
	// router's pick RNG, so tracing cannot perturb replica selection or
	// results.
	Trace *trace.Collector
}

// ErrBadQuery marks client-side query errors — unparseable SQL or a
// query shape the router cannot merge — as opposed to fleet failures.
// The HTTP handler maps it to 400; everything else to 502.
var ErrBadQuery = errors.New("router: bad query")

// Router scatters queries over shard backends and gathers exact merged
// answers. Safe for concurrent use.
type Router struct {
	shards   []Shard
	timeout  time.Duration
	defaultK int
	// view is the current fleet topology (admin.go): per-shard replica
	// sets plus the same set flattened in shard-major node order. Reads
	// load it once per operation; AdmitReplica/RetireReplica swap in a
	// fresh view under writeMu, so the pick hot path never takes a lock
	// to see the fleet and a mid-flight request keeps a consistent
	// topology.
	view atomic.Pointer[fleetView]
	// pickRng drives power-of-two-choices sampling (replica.go), guarded
	// by pickMu — the pick is two Intn calls, never worth a sharded RNG.
	pickMu  sync.Mutex
	pickRng *rand.Rand
	// hedge/hedgeDelay/ejectFor resolve the Options knobs.
	hedge      bool
	hedgeDelay time.Duration
	ejectFor   time.Duration
	// writeMu serializes routed writes into one fleet-wide total order
	// (see write.go). The repair hook and the dirty set below are
	// guarded by it too: repair must not interleave with writes.
	writeMu sync.Mutex
	// autoRepair enables the post-partial-write healing hook; dirty holds
	// the flat node indexes whose last replication failed and that repair
	// has not yet converged.
	autoRepair bool
	dirty      map[int]bool
	// interpMu guards the front-door /interpret memo cache (cache.go);
	// interpGen is the invalidation generation that fences stale fills.
	interpMu    sync.Mutex
	interpCache *lru.Cache[string, *server.InterpretResponse]
	interpGen   uint64
	// metrics backs GET /metrics (metrics.go).
	metrics *routerMetrics
	// tracer records request-scoped spans; nil disables tracing.
	tracer *trace.Collector
}

// New builds a router over the given shards (ordered by shard index).
func New(shards []Shard, opts Options) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("router: no shards")
	}
	for i, s := range shards {
		if s.Backend == nil {
			return nil, fmt.Errorf("router: shard %d has no backend", i)
		}
		for j, b := range s.Replicas {
			if b == nil {
				return nil, fmt.Errorf("router: shard %d replica %d has no backend", i, j+1)
			}
		}
	}
	t := opts.Timeout
	if t <= 0 {
		t = 15 * time.Second
	}
	k := opts.DefaultTopK
	if k <= 0 {
		k = 10
	}
	ejectFor := opts.EjectFor
	if ejectFor <= 0 {
		ejectFor = defaultEjectFor
	}
	pickSeed := opts.PickSeed
	if pickSeed == 0 {
		pickSeed = time.Now().UnixNano()
	}
	r := &Router{
		shards:      append([]Shard(nil), shards...),
		timeout:     t,
		defaultK:    k,
		pickRng:     rand.New(rand.NewSource(pickSeed)),
		hedge:       !opts.DisableHedging,
		hedgeDelay:  opts.HedgeDelay,
		ejectFor:    ejectFor,
		autoRepair:  !opts.DisableAutoRepair,
		dirty:       map[int]bool{},
		interpCache: lru.New[string, *server.InterpretResponse](maxInterpretCacheEntries),
		tracer:      opts.Trace,
	}
	r.metrics = newRouterMetrics(opts.Metrics, len(shards))
	v := &fleetView{}
	for i, s := range shards {
		set := make([]*replica, 0, 1+len(s.Replicas))
		for j, b := range s.set() {
			set = append(set, r.newReplica(i, j, b))
		}
		v.reps = append(v.reps, set)
		v.nodes = append(v.nodes, set...)
	}
	r.view.Store(v)
	return r, nil
}

// newReplica builds one node's balancing state with its per-replica
// instruments pre-resolved (the registry get-or-creates, so a joiner
// taking a retired replica's (shard, idx) slot shares its series).
func (r *Router) newReplica(shard, idx int, b Backend) *replica {
	return &replica{
		backend:   b,
		shard:     shard,
		idx:       idx,
		seconds:   r.metrics.replicaSeconds(shard, idx),
		picked:    r.metrics.replicaPicked(shard, idx),
		hedgeWins: r.metrics.replicaHedgeWins(shard, idx),
		repairLag: r.metrics.replicaRepairLag(shard, idx),
	}
}

// NumShards returns the number of shard ranges.
func (r *Router) NumShards() int { return len(r.shards) }

// NumNodes returns the fleet's total backend count — every replica of
// every shard — under the current view.
func (r *Router) NumNodes() int { return len(r.view.Load().nodes) }

// shardReply is one shard fragment's raw outcome.
type shardReply struct {
	status int
	body   []byte
	err    error
	// replica is the replica index that produced the reply; -1 for a
	// synthetic reply (every leg failed, or the context died).
	replica int
	// fails carries per-replica attribution when more than one leg
	// failed behind this reply.
	fails []NodeError
	// span is the leg's trace span (nil when tracing is off). The
	// hedging state machine stamps won/lost attribution onto it after
	// the race resolves — attrs may be set post-End by design.
	span *trace.Span
}

// scatter fans one request out to every shard concurrently; each
// fragment is served by the shard's replica set with load balancing,
// failover and hedging (shardRequest, replica.go). The whole fan-out
// lands in the scatter-stage histogram and each shard's fragment in its
// own per-shard series — the same series the adaptive hedge delay reads
// its p95 from — so a straggler shard is visible as the gap between its
// percentiles and its peers'.
func (r *Router) scatter(ctx context.Context, method, target string, body []byte) []shardReply {
	ctx, span := r.tracer.Start(ctx, "router.scatter")
	span.SetAttr("shards", fmt.Sprintf("%d", len(r.shards)))
	defer span.End()
	ctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	start := time.Now()
	replies := make([]shardReply, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			replies[i] = r.shardRequest(ctx, i, method, target, body)
			r.metrics.shardSeconds[i].ObserveSince(t0)
		}(i)
	}
	wg.Wait()
	r.metrics.scatter.ObserveSince(start)
	return replies
}

// replyError renders a shard reply as an error string, or "" for success.
func replyError(rep shardReply) string {
	if rep.err != nil {
		return rep.err.Error()
	}
	if rep.status != 200 {
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(rep.body, &env) == nil && env.Error != "" {
			return fmt.Sprintf("status %d: %s", rep.status, env.Error)
		}
		return fmt.Sprintf("status %d", rep.status)
	}
	return ""
}

// gather decodes every successful reply into outs[i] (a pointer) and
// returns per-shard error strings keyed by shard index plus the
// replica-attributed failure list. outs[i] stays nil for failed shards.
func gatherInto[T any](r *Router, replies []shardReply) ([]*T, map[int]string, []NodeError) {
	outs := make([]*T, len(replies))
	errs := map[int]string{}
	var nodeErrs []NodeError
	for i, rep := range replies {
		if msg := replyError(rep); msg != "" {
			errs[i] = msg
			nodeErrs = append(nodeErrs, r.nodeFailures(i, rep)...)
			continue
		}
		v := new(T)
		if err := json.Unmarshal(rep.body, v); err != nil {
			errs[i] = fmt.Sprintf("bad response: %v", err)
			nodeErrs = append(nodeErrs, NodeError{
				Shard: i, Replica: rep.replica,
				Backend: r.backendName(i, rep.replica),
				Error:   errs[i],
			})
			continue
		}
		outs[i] = v
	}
	return outs, errs, nodeErrs
}

// ---- bounded-heap ranked merge ----

// rowCursor walks one shard's ranked row list.
type rowCursor struct {
	rows []server.RowJSON
	pos  int
}

// rowHeap orders cursors by their head row: score descending, entity id
// ascending — the engine's own ranking order, so the merge reproduces the
// monolithic sort exactly.
type rowHeap []*rowCursor

func (h rowHeap) Len() int { return len(h) }
func (h rowHeap) Less(i, j int) bool {
	a, b := h[i].rows[h[i].pos], h[j].rows[h[j].pos]
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.EntityID < b.EntityID
}
func (h rowHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rowHeap) Push(x interface{}) { *h = append(*h, x.(*rowCursor)) }
func (h *rowHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRanked merges per-shard ranked lists (each already sorted by score
// desc, entity asc) into the global top k. The heap holds at most one
// cursor per shard, so the merge is O((k + s) log s) — it never
// concatenates and re-sorts.
func mergeRanked(lists [][]server.RowJSON, k int) []server.RowJSON {
	h := make(rowHeap, 0, len(lists))
	total := 0
	for _, l := range lists {
		total += len(l)
		if len(l) > 0 {
			h = append(h, &rowCursor{rows: l})
		}
	}
	heap.Init(&h)
	// Allocate by what can actually be merged, not by k: k comes straight
	// from the request, and make(..., 0, 9e18) would panic while a merely
	// huge k would allocate unbounded memory per request.
	capHint := k
	if total < capHint {
		capHint = total
	}
	out := make([]server.RowJSON, 0, capHint)
	for len(h) > 0 && len(out) < k {
		c := h[0]
		out = append(out, c.rows[c.pos])
		c.pos++
		if c.pos < len(c.rows) {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// ---- merged endpoint results ----

// QueryResult is the router's merged /query answer.
type QueryResult struct {
	Rewritten       string                               `json:"rewritten"`
	Interpretations map[string]server.InterpretationJSON `json:"interpretations"`
	Rows            []server.RowJSON                     `json:"rows"`
	// Partial is true when at least one shard failed; Rows then covers
	// only the live shards' entity ranges.
	Partial bool `json:"partial,omitempty"`
	// ShardErrors maps failed shard index → error description.
	ShardErrors map[int]string `json:"shard_errors,omitempty"`
	// FailedNodes attributes each failed request leg to the exact
	// replica behind it, so a dead replica is distinguishable from a
	// dead range.
	FailedNodes []NodeError `json:"failed_nodes,omitempty"`
	ElapsedMs   float64     `json:"elapsed_ms"`
}

// TopKResult is the router's merged /topk answer. Work statistics are
// summed over shards (Depth takes the deepest shard) — they describe the
// fleet's total effort, not any single TA run.
type TopKResult struct {
	Rows           []server.RowJSON `json:"rows"`
	SortedAccesses int              `json:"sorted_accesses"`
	Depth          int              `json:"depth"`
	Candidates     int              `json:"candidates"`
	Partial        bool             `json:"partial,omitempty"`
	ShardErrors    map[int]string   `json:"shard_errors,omitempty"`
	FailedNodes    []NodeError      `json:"failed_nodes,omitempty"`
	ElapsedMs      float64          `json:"elapsed_ms"`
}

// errAllShardsFailed renders a total scatter failure. When every shard
// answered with a client-error status (shards replicate the same engine,
// so a deterministic rejection is unanimous), the error is classified as
// ErrBadQuery and the handler returns the 400 a monolith would — 502 is
// reserved for actual fleet failures.
func (r *Router) errAllShardsFailed(op string, replies []shardReply, errs map[int]string) error {
	parts := make([]string, 0, len(errs))
	for i := 0; i < len(r.shards); i++ {
		if msg, ok := errs[i]; ok {
			parts = append(parts, fmt.Sprintf("shard %d (%s): %s", i, r.shards[i].Backend.Name(), msg))
		}
	}
	detail := strings.Join(parts, "; ")
	allClientErr := len(replies) > 0
	for _, rep := range replies {
		if rep.err != nil || rep.status < 400 || rep.status >= 500 {
			allClientErr = false
			break
		}
	}
	if allClientErr {
		return fmt.Errorf("%w: rejected by every shard: %s", ErrBadQuery, detail)
	}
	return fmt.Errorf("router: %s failed on every shard: %s", op, detail)
}

// Query scatters a subjective SQL query and merges the per-shard rankings
// into the exact global top k, mirroring the engine's limit semantics (an
// explicit SQL LIMIT wins over the request's k). The query is parsed up
// front: unparseable SQL fails here exactly as it would on every shard,
// and ORDER BY is rejected — shards return (entity, score) rows without
// the ordering column, so an objective ordering cannot be merged
// correctly at this layer.
func (r *Router) Query(ctx context.Context, sql string, k int) (*QueryResult, error) {
	parseStart := time.Now()
	_, parseSpan := r.tracer.Start(ctx, "router.parse")
	q, err := sqlparse.Parse(sql)
	if err != nil {
		parseSpan.SetError(err.Error())
	}
	parseSpan.End()
	r.metrics.parse.ObserveSince(parseStart)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if q.OrderBy != "" {
		return nil, fmt.Errorf("%w: ORDER BY is not supported in sharded serving (rows merge by subjective score); query a single shard or the monolith", ErrBadQuery)
	}
	if k <= 0 {
		k = r.defaultK
	}
	if q.Limit > 0 {
		// Same precedence as core's execute(): the SQL LIMIT overrides the
		// request-level default, and every shard applies it identically.
		k = q.Limit
	}
	start := time.Now()
	body, err := json.Marshal(server.QueryRequest{SQL: sql, K: k})
	if err != nil {
		return nil, fmt.Errorf("router: encode query: %w", err)
	}
	replies := r.scatter(ctx, "POST", "/query", body)
	outs, errs, nodeErrs := gatherInto[server.QueryResponse](r, replies)

	res := &QueryResult{Rows: []server.RowJSON{}}
	lists := make([][]server.RowJSON, 0, len(outs))
	for _, o := range outs {
		if o == nil {
			continue
		}
		lists = append(lists, o.Rows)
		if res.Interpretations == nil {
			// Interpretation is a function of replicated global state, so
			// any shard's diagnostics are the fleet's.
			res.Interpretations = o.Interpretations
			res.Rewritten = o.Rewritten
		}
	}
	if len(lists) == 0 {
		return nil, r.errAllShardsFailed("query", replies, errs)
	}
	mergeStart := time.Now()
	_, mergeSpan := r.tracer.Start(ctx, "router.merge")
	res.Rows = mergeRanked(lists, k)
	mergeSpan.End()
	r.metrics.merge.ObserveSince(mergeStart)
	res.Partial = len(errs) > 0
	if len(errs) > 0 {
		res.ShardErrors = errs
		res.FailedNodes = nodeErrs
	}
	res.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

// TopK scatters a conjunction of predicates to every shard's
// Threshold-Algorithm endpoint and heap-merges the shard top-ks into the
// exact global top k.
func (r *Router) TopK(ctx context.Context, predicates []string, k int) (*TopKResult, error) {
	if len(predicates) == 0 {
		return nil, fmt.Errorf("%w: topk needs at least one predicate", ErrBadQuery)
	}
	if k <= 0 {
		k = r.defaultK
	}
	start := time.Now()
	q := make([]string, 0, len(predicates)+1)
	for _, p := range predicates {
		q = append(q, "predicate="+queryEscape(p))
	}
	q = append(q, fmt.Sprintf("k=%d", k))
	replies := r.scatter(ctx, "GET", "/topk?"+strings.Join(q, "&"), nil)
	outs, errs, nodeErrs := gatherInto[server.TopKResponse](r, replies)

	res := &TopKResult{Rows: []server.RowJSON{}}
	lists := make([][]server.RowJSON, 0, len(outs))
	for _, o := range outs {
		if o == nil {
			continue
		}
		lists = append(lists, o.Rows)
		res.SortedAccesses += o.SortedAccesses
		res.Candidates += o.Candidates
		if o.Depth > res.Depth {
			res.Depth = o.Depth
		}
	}
	if len(lists) == 0 {
		return nil, r.errAllShardsFailed("topk", replies, errs)
	}
	mergeStart := time.Now()
	_, mergeSpan := r.tracer.Start(ctx, "router.merge")
	res.Rows = mergeRanked(lists, k)
	mergeSpan.End()
	r.metrics.merge.ObserveSince(mergeStart)
	res.Partial = len(errs) > 0
	if len(errs) > 0 {
		res.ShardErrors = errs
		res.FailedNodes = nodeErrs
	}
	res.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

// firstSuccess tries shards in index order and decodes the first
// successful reply — the failover (not fan-out) pattern for endpoints
// whose answer comes from replicated global state, so any one shard is
// authoritative. Within each shard the request is served by the replica
// set (load-balanced, hedged), so a single dead replica never forces
// the hop to the next shard.
func firstSuccess[T any](r *Router, ctx context.Context, op, target string) (*T, error) {
	errs := map[int]string{}
	for i := range r.shards {
		if err := ctx.Err(); err != nil {
			errs[i] = err.Error()
			break
		}
		reqCtx, cancel := context.WithTimeout(ctx, r.timeout)
		rep := r.shardRequest(reqCtx, i, "GET", target, nil)
		cancel()
		if msg := replyError(rep); msg != "" {
			errs[i] = msg
			continue
		}
		out := new(T)
		if err := json.Unmarshal(rep.body, out); err != nil {
			errs[i] = fmt.Sprintf("bad response: %v", err)
			continue
		}
		return out, nil
	}
	return nil, r.errAllShardsFailed(op, nil, errs)
}

// InterpretChain asks the fleet for a predicate's interpretation
// diagnostics, answering from the router's memo cache when it can (see
// cache.go — interpretation state is replicated and identical on every
// shard, so the front door may answer without a hop). cached reports
// whether the answer came from the cache. On a miss the router tries
// shards in index order and memoizes the first success.
func (r *Router) InterpretChain(ctx context.Context, predicate string) (resp *server.InterpretResponse, cached bool, err error) {
	memo, gen := r.interpretCached(predicate)
	if memo != nil {
		return memo, true, nil
	}
	resp, err = firstSuccess[server.InterpretResponse](r, ctx, "interpret", "/interpret?predicate="+queryEscape(predicate))
	if err != nil {
		return nil, false, err
	}
	r.interpretStore(predicate, resp, gen)
	return resp, false, nil
}

// ownerOf returns the index of the shard whose entity range contains id,
// or -1 when ranges are unknown or no shard owns it.
func (r *Router) ownerOf(id string) int {
	for i, s := range r.shards {
		if s.FirstEntity == "" && s.LastEntity == "" {
			return -1 // ranges not configured; caller scatters
		}
		if id >= s.FirstEntity && id <= s.LastEntity {
			return i
		}
	}
	return -1
}

// EvidenceStatus is Evidence's outcome: the owning shard's status code
// and body are passed through (a 404 for an unknown entity is a valid
// routed answer, not a router failure).
type EvidenceStatus struct {
	Status int
	Body   []byte
	// Shard is the shard index that answered; Replica the replica within
	// its set (-1 when unknown).
	Shard   int
	Replica int
}

// Evidence routes a marker-summary lookup to the shard owning the entity
// (by manifest range), falling back to a scatter when ranges are unknown.
// limit < 0 means unspecified (the shard applies its default); an
// explicit 0 is forwarded, matching the monolith's zero-extraction mode.
func (r *Router) Evidence(ctx context.Context, entity, attribute string, limit int) (*EvidenceStatus, error) {
	target := "/evidence?entity=" + queryEscape(entity) + "&attribute=" + queryEscape(attribute)
	if limit >= 0 {
		target += fmt.Sprintf("&limit=%d", limit)
	}
	if owner := r.ownerOf(entity); owner >= 0 {
		reqCtx, cancel := context.WithTimeout(ctx, r.timeout)
		defer cancel()
		rep := r.shardRequest(reqCtx, owner, "GET", target, nil)
		if rep.err != nil {
			return nil, fmt.Errorf("router: evidence: shard %d (%s): %w", owner, r.backendName(owner, rep.replica), rep.err)
		}
		return &EvidenceStatus{Status: rep.status, Body: rep.body, Shard: owner, Replica: rep.replica}, nil
	}
	// Unknown ownership: scatter; the owner answers 200, everyone else
	// 4xx. Prefer the 200. A miss is only a definitive not-found when
	// every shard actually answered with a deliberate client-error status
	// — a transport failure or 5xx means the entity may live on a shard
	// that could not say so, so report the failure instead of a confident
	// 404 a client would cache.
	replies := r.scatter(ctx, "GET", target, nil)
	errs := map[int]string{}
	var firstMiss *EvidenceStatus
	for i, rep := range replies {
		switch {
		case rep.err != nil:
			errs[i] = rep.err.Error()
		case rep.status == 200:
			return &EvidenceStatus{Status: rep.status, Body: rep.body, Shard: i, Replica: rep.replica}, nil
		case rep.status >= 400 && rep.status < 500:
			if firstMiss == nil {
				firstMiss = &EvidenceStatus{Status: rep.status, Body: rep.body, Shard: i, Replica: rep.replica}
			}
		default:
			errs[i] = replyError(rep)
		}
	}
	if len(errs) > 0 {
		parts := make([]string, 0, len(errs))
		for i := 0; i < len(r.shards); i++ {
			if msg, ok := errs[i]; ok {
				parts = append(parts, fmt.Sprintf("shard %d (%s): %s", i, r.shards[i].Backend.Name(), msg))
			}
		}
		return nil, fmt.Errorf("router: evidence: no shard answered 200 and the entity may live on an unreachable shard: %s",
			strings.Join(parts, "; "))
	}
	return firstMiss, nil
}

// ShardHealth is one node's health probe result — with replica sets the
// fleet health report carries one entry per node (every replica of every
// shard), not one per range.
type ShardHealth struct {
	// Index is the node's shard (range) index; Replica its position in
	// that range's replica set.
	Index    int                    `json:"index"`
	Replica  int                    `json:"replica"`
	Backend  string                 `json:"backend"`
	OK       bool                   `json:"ok"`
	Error    string                 `json:"error,omitempty"`
	Entities int                    `json:"entities"`
	Health   *server.HealthResponse `json:"health,omitempty"`
	// Ejection state from the router's own load balancer — the honest
	// view a probe cannot give: a node can answer /healthz while the
	// pick is routing around it. Ejected is true while the replica sits
	// out of the pick; EjectedForMs is the remaining cooldown; Strikes
	// the current consecutive-failure count toward the next ejection;
	// Ejections how many times this replica has been ejected in total.
	Ejected      bool    `json:"ejected,omitempty"`
	EjectedForMs float64 `json:"ejected_for_ms,omitempty"`
	Strikes      int64   `json:"strikes,omitempty"`
	Ejections    uint64  `json:"ejections,omitempty"`
	// Picks and HedgeWins mirror the per-replica balancer counters so an
	// operator can see starvation (an ejected or slow replica stops
	// getting picked) without scraping /metrics.
	Picks     uint64 `json:"picks"`
	HedgeWins uint64 `json:"hedge_wins,omitempty"`
}

// Health probes every node's /healthz — directly, not through the
// load-balanced pick, which exists to route around exactly the nodes a
// health probe must expose — and aggregates, folding in each replica's
// balancer state (ejection, strikes, picks, hedge wins). ok is true
// only when every replica of every shard answered.
func (r *Router) Health(ctx context.Context) (ok bool, shards []ShardHealth) {
	v, replies := r.scatterNodes(ctx, "GET", "/healthz")
	now := time.Now().UnixNano()
	ok = true
	for i, rep := range replies {
		node := v.nodes[i]
		sh := ShardHealth{Index: node.shard, Replica: node.idx, Backend: node.backend.Name()}
		if msg := replyError(rep); msg != "" {
			ok = false
			sh.Error = msg
		} else {
			var h server.HealthResponse
			if err := json.Unmarshal(rep.body, &h); err != nil {
				ok = false
				sh.Error = fmt.Sprintf("bad response: %v", err)
			} else {
				sh.OK = true
				sh.Entities = h.Entities
				hc := h
				sh.Health = &hc
			}
		}
		if until := node.ejectedUntil.Load(); until > now {
			sh.Ejected = true
			sh.EjectedForMs = float64(until-now) / 1e6
		}
		sh.Strikes = node.fails.Load()
		sh.Ejections = node.ejections.Load()
		sh.Picks = node.picked.Value()
		sh.HedgeWins = node.hedgeWins.Value()
		shards = append(shards, sh)
	}
	return ok, shards
}

// VerifyShardIdentities probes every node's /healthz and checks that a
// backend reporting a shard identity actually serves the shard range at
// its position — catching a misordered -router-backends list, which would
// otherwise misroute /evidence silently (scatters still work, so nothing
// else complains). Unreachable backends and backends without shard
// identity (in-process builds) are skipped; they cannot prove a mismatch.
func (r *Router) VerifyShardIdentities(ctx context.Context) error {
	_, nodes := r.Health(ctx)
	for _, sh := range nodes {
		if !sh.OK || sh.Health == nil || sh.Health.Snapshot == nil || sh.Health.Snapshot.Shard == nil {
			continue
		}
		id := sh.Health.Snapshot.Shard
		if id.Index != sh.Index {
			return fmt.Errorf("router: shard %d replica %d (%s) serves shard %d — the backend list must follow manifest order",
				sh.Index, sh.Replica, sh.Backend, id.Index)
		}
		if id.Count != len(r.shards) {
			return fmt.Errorf("router: shard %d replica %d (%s) belongs to a %d-shard build, this fleet has %d",
				sh.Index, sh.Replica, sh.Backend, id.Count, len(r.shards))
		}
	}
	return nil
}

// Schema returns the fleet's schema (replicated state; first live shard
// answers).
func (r *Router) Schema(ctx context.Context) (*server.SchemaResponse, error) {
	return firstSuccess[server.SchemaResponse](r, ctx, "schema", "/schema")
}

// queryEscape percent-encodes a query-string value.
func queryEscape(s string) string { return url.QueryEscape(s) }
