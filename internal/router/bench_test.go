package router

// Router micro-benchmarks: scatter + decode + bounded-heap merge over
// synthetic shard backends (no engine work, isolating the router's own
// overhead), and the heap merge alone. The end-to-end router-vs-monolith
// overhead on a real corpus is measured by the benchall "sharding"
// experiment (harness.RunSharding).

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/server"
)

// rawBackend answers every request with fixed pre-marshaled bytes.
type rawBackend struct {
	name string
	body []byte
}

func (b *rawBackend) Name() string { return b.name }
func (b *rawBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	return 200, b.body, nil
}

// shardRows fabricates one shard's ranked top-k list.
func shardRows(rng *rand.Rand, shard, k int) []server.RowJSON {
	rows := make([]server.RowJSON, k)
	score := 1.0
	for i := range rows {
		score *= 0.9 + 0.1*rng.Float64()
		rows[i] = server.RowJSON{EntityID: fmt.Sprintf("h%02d%04d", shard, i), Score: score}
	}
	return rows
}

func BenchmarkRouterTopK(b *testing.B) {
	const k = 10
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			fleet := make([]Shard, shards)
			for i := range fleet {
				body, err := json.Marshal(server.TopKResponse{
					Rows: shardRows(rng, i, k), SortedAccesses: 40, Depth: 12, Candidates: 30,
				})
				if err != nil {
					b.Fatal(err)
				}
				fleet[i] = Shard{Backend: &rawBackend{name: fmt.Sprintf("s%d", i), body: body}}
			}
			rt, err := New(fleet, Options{})
			if err != nil {
				b.Fatal(err)
			}
			preds := []string{"spotless rooms", "friendly staff"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := rt.TopK(context.Background(), preds, k)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != k {
					b.Fatalf("merged %d rows", len(res.Rows))
				}
			}
		})
	}
}

func BenchmarkMergeRanked(b *testing.B) {
	for _, shards := range []int{2, 4, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			lists := make([][]server.RowJSON, shards)
			for i := range lists {
				lists[i] = shardRows(rng, i, 1000)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rows := mergeRanked(lists, 10); len(rows) != 10 {
					b.Fatal("bad merge")
				}
			}
		})
	}
}
