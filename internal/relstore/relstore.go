// Package relstore is the relational storage substrate underneath OpineDB.
// The paper implements its query engine "on top of PostgreSQL", storing the
// extraction results in relations and computing subjective predicates as
// user-defined aggregates; relstore provides the same capabilities in
// process: typed schemas, tables with a hash index on the key, scans with
// predicate pushdown, projection, and gob persistence.
package relstore

import (
	"encoding/gob"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Type enumerates column types.
type Type int

const (
	// TString is a UTF-8 string column.
	TString Type = iota
	// TInt is an int64 column.
	TInt
	// TFloat is a float64 column.
	TFloat
	// TBool is a boolean column.
	TBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema describes a relation: its name, columns, and which column is the
// key. Following the paper's data model, every relation has a single-column
// key.
type Schema struct {
	Name    string
	Columns []Column
	Key     string // name of the key column
}

// colIndex returns the position of the named column, or -1.
func (s *Schema) colIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks internal consistency.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relstore: schema has no name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("relstore: schema %s has no columns", s.Name)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if seen[c.Name] {
			return fmt.Errorf("relstore: schema %s has duplicate column %s", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if s.Key != "" && s.colIndex(s.Key) < 0 {
		return fmt.Errorf("relstore: schema %s key %s is not a column", s.Name, s.Key)
	}
	return nil
}

// Row is one tuple, ordered as the schema's columns.
type Row []interface{}

// Table is a relation instance. Access is goroutine-safe for concurrent
// reads with exclusive writes.
type Table struct {
	mu     sync.RWMutex
	schema Schema
	rows   []Row
	// keyIdx maps key value → row positions (non-unique: subjective
	// relations hold one row per (entity, extraction)).
	keyIdx map[interface{}][]int
}

// NewTable creates an empty table for the schema.
func NewTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &Table{schema: schema, keyIdx: make(map[interface{}][]int)}, nil
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// checkRow validates arity and column types.
func (t *Table) checkRow(r Row) error {
	if len(r) != len(t.schema.Columns) {
		return fmt.Errorf("relstore: %s: row arity %d, want %d", t.schema.Name, len(r), len(t.schema.Columns))
	}
	for i, c := range t.schema.Columns {
		if r[i] == nil {
			continue // NULL allowed
		}
		ok := false
		switch c.Type {
		case TString:
			_, ok = r[i].(string)
		case TInt:
			_, ok = r[i].(int64)
		case TFloat:
			_, ok = r[i].(float64)
		case TBool:
			_, ok = r[i].(bool)
		}
		if !ok {
			return fmt.Errorf("relstore: %s: column %s expects %s, got %T",
				t.schema.Name, c.Name, c.Type, r[i])
		}
	}
	return nil
}

// Insert appends a row after validating it against the schema.
func (t *Table) Insert(r Row) error {
	if err := t.checkRow(r); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := len(t.rows)
	cp := make(Row, len(r))
	copy(cp, r)
	t.rows = append(t.rows, cp)
	if t.schema.Key != "" {
		k := cp[t.schema.colIndex(t.schema.Key)]
		t.keyIdx[k] = append(t.keyIdx[k], pos)
	}
	return nil
}

// Get returns the value of column col in row r, or an error for an unknown
// column.
func (t *Table) Get(r Row, col string) (interface{}, error) {
	i := t.schema.colIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("relstore: %s has no column %s", t.schema.Name, col)
	}
	return r[i], nil
}

// MustGet is Get for known-valid columns; it panics on unknown columns and
// is intended for internal query plans compiled against the schema.
func (t *Table) MustGet(r Row, col string) interface{} {
	v, err := t.Get(r, col)
	if err != nil {
		panic(err)
	}
	return v
}

// ByKey returns all rows whose key equals k (using the hash index).
func (t *Table) ByKey(k interface{}) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	positions := t.keyIdx[k]
	out := make([]Row, 0, len(positions))
	for _, p := range positions {
		out = append(out, t.rows[p])
	}
	return out
}

// Scan invokes fn on every row; fn returning false stops the scan.
func (t *Table) Scan(fn func(Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if !fn(r) {
			return
		}
	}
}

// Select returns all rows satisfying pred. A nil pred selects everything.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(r Row) bool {
		if pred == nil || pred(r) {
			out = append(out, r)
		}
		return true
	})
	return out
}

// Keys returns the distinct key values in sorted order (string keys) or
// insertion order otherwise. It returns nil for keyless tables.
func (t *Table) Keys() []interface{} {
	if t.schema.Key == "" {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]interface{}, 0, len(t.keyIdx))
	allStrings := true
	for k := range t.keyIdx {
		if _, ok := k.(string); !ok {
			allStrings = false
		}
		out = append(out, k)
	}
	if allStrings {
		sort.Slice(out, func(i, j int) bool { return out[i].(string) < out[j].(string) })
	}
	return out
}

// DB is a named collection of tables.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Create adds a new empty table; it errors if the name exists.
func (db *DB) Create(schema Schema) (*Table, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[schema.Name]; exists {
		return nil, fmt.Errorf("relstore: table %s already exists", schema.Name)
	}
	db.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table or an error.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", name)
	}
	return t, nil
}

// Names returns the sorted table names.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DBState is the exported serialization seam for a relational DB: every
// table's schema (in sorted name order) and rows (in insertion order).
// Row values are the basic column types (string, int64, float64, bool),
// which encoding/gob handles without registration. State copies row
// slices (not the rows themselves), so a state taken under State's locks
// stays consistent if the live DB keeps inserting.
type DBState struct {
	Schemas []Schema
	Rows    map[string][]Row
}

// State exports the database for serialization.
func (db *DB) State() DBState {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := DBState{Rows: make(map[string][]Row)}
	for _, name := range db.namesLocked() {
		t := db.tables[name]
		t.mu.RLock()
		st.Schemas = append(st.Schemas, t.schema)
		st.Rows[name] = append([]Row(nil), t.rows...)
		t.mu.RUnlock()
	}
	return st
}

// FromState reconstructs a database from exported state, re-validating
// every schema and row exactly as the original inserts did.
func FromState(st DBState) (*DB, error) {
	db := NewDB()
	for _, schema := range st.Schemas {
		t, err := db.Create(schema)
		if err != nil {
			return nil, err
		}
		for _, r := range st.Rows[schema.Name] {
			if err := t.Insert(r); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// Save persists the database to path with encoding/gob.
func (db *DB) Save(path string) error {
	snap := db.State()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("relstore: save: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(snap); err != nil {
		return fmt.Errorf("relstore: encode: %w", err)
	}
	return f.Close()
}

func (db *DB) namesLocked() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Load reads a database previously written by Save.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	defer f.Close()
	var snap DBState
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("relstore: decode: %w", err)
	}
	return FromState(snap)
}
