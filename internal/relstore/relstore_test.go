package relstore

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func hotelSchema() Schema {
	return Schema{
		Name: "Hotels",
		Columns: []Column{
			{Name: "hotelname", Type: TString},
			{Name: "capacity", Type: TInt},
			{Name: "price_pn", Type: TFloat},
			{Name: "open", Type: TBool},
		},
		Key: "hotelname",
	}
}

func TestSchemaValidate(t *testing.T) {
	s := hotelSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Schema{Name: "", Columns: []Column{{Name: "a", Type: TString}}}
	if err := bad.Validate(); err == nil {
		t.Error("nameless schema should fail")
	}
	dup := Schema{Name: "X", Columns: []Column{{Name: "a"}, {Name: "a"}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate column should fail")
	}
	noKey := Schema{Name: "X", Columns: []Column{{Name: "a"}}, Key: "b"}
	if err := noKey.Validate(); err == nil {
		t.Error("missing key column should fail")
	}
	empty := Schema{Name: "X"}
	if err := empty.Validate(); err == nil {
		t.Error("columnless schema should fail")
	}
}

func TestInsertAndTypeChecking(t *testing.T) {
	tbl, err := NewTable(hotelSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{"Ritz", int64(200), 450.0, true}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	// Wrong arity.
	if err := tbl.Insert(Row{"Ritz"}); err == nil {
		t.Error("short row should fail")
	}
	// Wrong type.
	if err := tbl.Insert(Row{"Ritz", "not-an-int", 450.0, true}); err == nil {
		t.Error("type mismatch should fail")
	}
	// int (not int64) must be rejected: gob round-trips int64.
	if err := tbl.Insert(Row{"Ritz", 200, 450.0, true}); err == nil {
		t.Error("plain int should fail (require int64)")
	}
	// NULLs allowed.
	if err := tbl.Insert(Row{"Savoy", nil, nil, nil}); err != nil {
		t.Errorf("nil values should be allowed: %v", err)
	}
}

func TestInsertCopiesRow(t *testing.T) {
	tbl, _ := NewTable(hotelSchema())
	r := Row{"Ritz", int64(1), 1.0, true}
	if err := tbl.Insert(r); err != nil {
		t.Fatal(err)
	}
	r[0] = "Mutated"
	got := tbl.ByKey("Ritz")
	if len(got) != 1 {
		t.Fatal("row lost after caller mutation")
	}
}

func TestByKeyNonUnique(t *testing.T) {
	schema := Schema{
		Name:    "HRoomCleanliness",
		Columns: []Column{{Name: "hotelname", Type: TString}, {Name: "phrase", Type: TString}},
		Key:     "hotelname",
	}
	tbl, _ := NewTable(schema)
	for _, p := range []string{"very clean", "spotless", "dirty"} {
		if err := tbl.Insert(Row{"Ritz", p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Insert(Row{"Savoy", "average"}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.ByKey("Ritz"); len(got) != 3 {
		t.Errorf("ByKey(Ritz) = %d rows, want 3", len(got))
	}
	if got := tbl.ByKey("Unknown"); len(got) != 0 {
		t.Errorf("ByKey(Unknown) = %d rows", len(got))
	}
}

func TestGetAndMustGet(t *testing.T) {
	tbl, _ := NewTable(hotelSchema())
	r := Row{"Ritz", int64(200), 450.0, true}
	v, err := tbl.Get(r, "price_pn")
	if err != nil || v != 450.0 {
		t.Errorf("Get = %v, %v", v, err)
	}
	if _, err := tbl.Get(r, "nope"); err == nil {
		t.Error("unknown column should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet should panic on unknown column")
		}
	}()
	tbl.MustGet(r, "nope")
}

func TestSelectAndScan(t *testing.T) {
	tbl, _ := NewTable(hotelSchema())
	prices := []float64{100, 200, 300}
	for i, p := range prices {
		name := string(rune('A' + i))
		if err := tbl.Insert(Row{name, int64(10), p, true}); err != nil {
			t.Fatal(err)
		}
	}
	cheap := tbl.Select(func(r Row) bool { return r[2].(float64) < 250 })
	if len(cheap) != 2 {
		t.Errorf("Select(<250) = %d rows", len(cheap))
	}
	all := tbl.Select(nil)
	if len(all) != 3 {
		t.Errorf("Select(nil) = %d rows", len(all))
	}
	// Early termination.
	count := 0
	tbl.Scan(func(Row) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("Scan stopped after %d rows, want 2", count)
	}
}

func TestKeys(t *testing.T) {
	tbl, _ := NewTable(hotelSchema())
	for _, n := range []string{"zeta", "alpha", "mid", "alpha"} {
		if err := tbl.Insert(Row{n, int64(1), 1.0, true}); err != nil {
			t.Fatal(err)
		}
	}
	keys := tbl.Keys()
	want := []interface{}{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("Keys = %v, want %v", keys, want)
	}
	noKey, _ := NewTable(Schema{Name: "K", Columns: []Column{{Name: "x", Type: TInt}}})
	if noKey.Keys() != nil {
		t.Error("keyless table should return nil Keys")
	}
}

func TestDBCreateAndLookup(t *testing.T) {
	db := NewDB()
	if _, err := db.Create(hotelSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create(hotelSchema()); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := db.Table("Hotels"); err != nil {
		t.Error(err)
	}
	if _, err := db.Table("Nope"); err == nil {
		t.Error("missing table should error")
	}
	if got := db.Names(); !reflect.DeepEqual(got, []string{"Hotels"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	tbl, _ := db.Create(hotelSchema())
	rows := []Row{
		{"Ritz", int64(200), 450.0, true},
		{"Savoy", int64(150), 380.5, false},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "db.gob")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := loaded.Table("Hotels")
	if err != nil {
		t.Fatal(err)
	}
	if lt.Len() != 2 {
		t.Fatalf("loaded %d rows", lt.Len())
	}
	got := lt.ByKey("Savoy")
	if len(got) != 1 || !reflect.DeepEqual(got[0], rows[1]) {
		t.Errorf("round trip mismatch: %v", got)
	}
	// Index must be rebuilt.
	if len(lt.ByKey("Ritz")) != 1 {
		t.Error("key index not rebuilt on load")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.gob")); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	tbl, _ := NewTable(hotelSchema())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			name := string(rune('A' + i%26))
			_ = tbl.Insert(Row{name, int64(i), float64(i), true})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tbl.Select(func(r Row) bool { return r[2].(float64) > 50 })
			tbl.ByKey("A")
			tbl.Len()
		}
	}()
	wg.Wait() // run with -race to validate locking
	if tbl.Len() != 100 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{TString: "string", TInt: "int", TFloat: "float", TBool: "bool"} {
		if ty.String() != want {
			t.Errorf("%v.String() = %q", int(ty), ty.String())
		}
	}
}
