package relstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: ByKey(k) returns exactly the rows Select(key == k) returns,
// in insertion order.
func TestByKeyMatchesSelect(t *testing.T) {
	f := func(keys []uint8) bool {
		tbl, err := NewTable(Schema{
			Name:    "P",
			Columns: []Column{{Name: "k", Type: relTString()}, {Name: "seq", Type: TInt}},
			Key:     "k",
		})
		if err != nil {
			return false
		}
		for i, k := range keys {
			key := fmt.Sprintf("k%d", k%5) // force collisions
			if err := tbl.Insert(Row{key, int64(i)}); err != nil {
				return false
			}
		}
		for kv := 0; kv < 5; kv++ {
			key := fmt.Sprintf("k%d", kv)
			byKey := tbl.ByKey(key)
			scanned := tbl.Select(func(r Row) bool { return r[0] == key })
			if len(byKey) != len(scanned) {
				return false
			}
			for i := range byKey {
				if byKey[i][1] != scanned[i][1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func relTString() Type { return TString }

// Property: Len equals inserted row count for arbitrary insert sequences.
func TestLenMatchesInserts(t *testing.T) {
	f := func(n uint8) bool {
		tbl, err := NewTable(Schema{
			Name:    "L",
			Columns: []Column{{Name: "x", Type: TInt}},
		})
		if err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			if err := tbl.Insert(Row{int64(i)}); err != nil {
				return false
			}
		}
		return tbl.Len() == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: gob save/load round-trips arbitrary typed rows exactly.
func TestSaveLoadRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		db := NewDB()
		tbl, err := db.Create(Schema{
			Name: "T",
			Columns: []Column{
				{Name: "id", Type: TString},
				{Name: "n", Type: TInt},
				{Name: "f", Type: TFloat},
				{Name: "b", Type: TBool},
			},
			Key: "id",
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			row := Row{fmt.Sprintf("id%03d", i), int64(rng.Intn(1000)), rng.NormFloat64(), rng.Intn(2) == 0}
			if rng.Intn(10) == 0 {
				row[2] = nil // NULLs survive too
			}
			if err := tbl.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		path := t.TempDir() + "/t.gob"
		if err := db.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		lt, err := loaded.Table("T")
		if err != nil {
			t.Fatal(err)
		}
		if lt.Len() != n {
			t.Fatalf("trial %d: %d rows, want %d", trial, lt.Len(), n)
		}
		orig := tbl.Select(nil)
		got := lt.Select(nil)
		for i := range orig {
			for c := range orig[i] {
				if orig[i][c] != got[i][c] {
					t.Fatalf("trial %d row %d col %d: %v != %v", trial, i, c, got[i][c], orig[i][c])
				}
			}
		}
	}
}
