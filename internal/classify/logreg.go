// Package classify provides the supervised learning components of OpineDB:
//
//   - LogReg: binary logistic regression trained with SGD + L2, whose
//     probability output is used directly as the paper's membership
//     function (§3.3: "we can directly use the probability output as the
//     membership function").
//   - Softmax: a multiclass linear classifier over bag-of-words features,
//     used to assign extracted (aspect, opinion) pairs to subjective
//     attributes (§4.2).
//   - ExpandSeeds: word2vec-based seed expansion that builds the weakly
//     supervised training set for Softmax from a handful of designer seeds.
package classify

import (
	"fmt"
	"math"
	"math/rand"
)

// Example is one binary-labeled training instance.
type Example struct {
	Features []float64
	Label    int // 0 or 1
}

// LogReg is a binary logistic regression model.
type LogReg struct {
	W    []float64
	Bias float64
}

// LogRegConfig controls SGD training.
type LogRegConfig struct {
	Epochs int
	LR     float64
	L2     float64
}

// DefaultLogRegConfig returns the settings used for membership-function
// training (1,000 labeled tuples per the paper).
func DefaultLogRegConfig() LogRegConfig {
	return LogRegConfig{Epochs: 60, LR: 0.1, L2: 1e-4}
}

// TrainLogReg fits a logistic regression on examples. All examples must
// share a feature dimensionality. The rng shuffles example order per epoch.
func TrainLogReg(examples []Example, cfg LogRegConfig, rng *rand.Rand) (*LogReg, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("classify: no training examples")
	}
	dim := len(examples[0].Features)
	for i, ex := range examples {
		if len(ex.Features) != dim {
			return nil, fmt.Errorf("classify: example %d has dim %d, want %d", i, len(ex.Features), dim)
		}
		if ex.Label != 0 && ex.Label != 1 {
			return nil, fmt.Errorf("classify: example %d label %d not binary", i, ex.Label)
		}
	}
	m := &LogReg{W: make([]float64, dim)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(examples))
		lr := cfg.LR / (1 + 0.05*float64(epoch))
		for _, i := range perm {
			ex := examples[i]
			p := m.Prob(ex.Features)
			g := p - float64(ex.Label)
			for j, x := range ex.Features {
				m.W[j] -= lr * (g*x + cfg.L2*m.W[j])
			}
			m.Bias -= lr * g
		}
	}
	return m, nil
}

// Prob returns P(label=1 | features), the degree of truth when the model is
// used as a membership function.
func (m *LogReg) Prob(features []float64) float64 {
	z := m.Bias
	for i, x := range features {
		if i >= len(m.W) {
			break
		}
		z += m.W[i] * x
	}
	return sigmoid(z)
}

// Predict returns the hard 0/1 decision at threshold 0.5.
func (m *LogReg) Predict(features []float64) int {
	if m.Prob(features) >= 0.5 {
		return 1
	}
	return 0
}

// Accuracy returns the fraction of examples Predict classifies correctly.
func (m *LogReg) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if m.Predict(ex.Features) == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

func sigmoid(z float64) float64 {
	if z > 20 {
		return 1
	}
	if z < -20 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
