package classify

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/sentiment"
	"repro/internal/textproc"
)

// TextExample is one labeled short text for attribute classification,
// e.g. ("room very clean", "room_cleanliness").
type TextExample struct {
	Text  string
	Label string
}

// Softmax is a multiclass bag-of-words linear classifier. It maps
// concatenated (aspect, opinion) phrases to subjective attribute names.
type Softmax struct {
	Labels []string
	vocab  map[string]int
	W      [][]float64 // [class][feature]; feature len(vocab) is the bias
}

// SoftmaxConfig controls training.
type SoftmaxConfig struct {
	Epochs int
	LR     float64
	L2     float64
}

// DefaultSoftmaxConfig returns the attribute-classifier settings.
func DefaultSoftmaxConfig() SoftmaxConfig {
	return SoftmaxConfig{Epochs: 40, LR: 0.2, L2: 1e-5}
}

// TrainSoftmax fits the classifier on the labeled texts.
func TrainSoftmax(examples []TextExample, cfg SoftmaxConfig, rng *rand.Rand) (*Softmax, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("classify: no training examples")
	}
	labelSet := map[string]bool{}
	vocab := map[string]int{}
	for _, ex := range examples {
		labelSet[ex.Label] = true
		for _, tok := range textproc.Tokenize(ex.Text) {
			if _, ok := vocab[tok]; !ok {
				vocab[tok] = len(vocab)
			}
		}
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	labelIdx := map[string]int{}
	for i, l := range labels {
		labelIdx[l] = i
	}

	m := &Softmax{Labels: labels, vocab: vocab}
	dim := len(vocab) + 1 // +1 bias
	m.W = make([][]float64, len(labels))
	for c := range m.W {
		m.W[c] = make([]float64, dim)
	}

	feats := make([][]int, len(examples))
	ys := make([]int, len(examples))
	for i, ex := range examples {
		feats[i] = m.featurize(ex.Text)
		ys[i] = labelIdx[ex.Label]
	}

	probs := make([]float64, len(labels))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(examples))
		lr := cfg.LR / (1 + 0.05*float64(epoch))
		for _, i := range perm {
			m.scores(feats[i], probs)
			softmaxInPlace(probs)
			for c := range m.W {
				g := probs[c]
				if c == ys[i] {
					g -= 1
				}
				if g == 0 {
					continue
				}
				w := m.W[c]
				for _, f := range feats[i] {
					w[f] -= lr * (g + cfg.L2*w[f])
				}
				w[dim-1] -= lr * g // bias
			}
		}
	}
	return m, nil
}

// KnownTokenFraction returns the fraction of the text's content tokens the
// classifier was trained on. Stopwords are ignored; intensity and negation
// words count as known (they modify rather than carry aspect meaning).
// OpineDB uses this as a schema gate: an extracted phrase mostly made of
// words outside every seed expansion is out-of-schema and must not be
// forced into an attribute (§4.2).
func (m *Softmax) KnownTokenFraction(text string) float64 {
	var known, total float64
	for _, tok := range textproc.Tokenize(text) {
		if textproc.IsStopword(tok) {
			continue
		}
		total++
		if _, ok := m.vocab[tok]; ok {
			known++
			continue
		}
		if sentiment.IsIntensifier(tok) || sentiment.IsNegator(tok) {
			known++
		}
	}
	if total == 0 {
		return 0
	}
	return known / total
}

// featurize maps text to the indices of present vocabulary words (bag of
// words, binary features). Unknown words are dropped.
func (m *Softmax) featurize(text string) []int {
	seen := map[int]bool{}
	var out []int
	for _, tok := range textproc.Tokenize(text) {
		if id, ok := m.vocab[tok]; ok && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// scores fills out[c] with the linear score of class c.
func (m *Softmax) scores(feats []int, out []float64) {
	bias := len(m.vocab)
	for c, w := range m.W {
		s := w[bias]
		for _, f := range feats {
			s += w[f]
		}
		out[c] = s
	}
}

// Classify returns the most probable label for text and its probability.
func (m *Softmax) Classify(text string) (string, float64) {
	feats := m.featurize(text)
	probs := make([]float64, len(m.Labels))
	m.scores(feats, probs)
	softmaxInPlace(probs)
	best := 0
	for c := range probs {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return m.Labels[best], probs[best]
}

// Accuracy returns the fraction of examples classified correctly.
func (m *Softmax) Accuracy(examples []TextExample) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if got, _ := m.Classify(ex.Text); got == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

func softmaxInPlace(scores []float64) {
	max := math.Inf(-1)
	for _, s := range scores {
		if s > max {
			max = s
		}
	}
	var sum float64
	for i, s := range scores {
		scores[i] = math.Exp(s - max)
		sum += scores[i]
	}
	for i := range scores {
		scores[i] /= sum
	}
}
