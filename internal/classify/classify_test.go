package classify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embedding"
	"repro/internal/textproc"
)

// linearlySeparable builds 2-D examples separated by x0 + x1 > 1.
func linearlySeparable(rng *rand.Rand, n int) []Example {
	out := make([]Example, n)
	for i := range out {
		x0, x1 := rng.Float64()*2, rng.Float64()*2
		label := 0
		if x0+x1 > 2 {
			label = 1
		}
		out[i] = Example{Features: []float64{x0, x1}, Label: label}
	}
	return out
}

func TestLogRegLearnsSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := linearlySeparable(rng, 400)
	test := linearlySeparable(rng, 200)
	m, err := TrainLogReg(train, DefaultLogRegConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.9 {
		t.Errorf("accuracy %v < 0.9 on separable data", acc)
	}
}

func TestLogRegProbRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := TrainLogReg(linearlySeparable(rng, 100), DefaultLogRegConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Bound the magnitude: the linear score overflows to Inf for
		// astronomically large inputs, which is outside the model's domain.
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		p := m.Prob([]float64{a, b})
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogRegMonotoneInPositiveFeature(t *testing.T) {
	// With data where feature 0 alone decides the label, probability must
	// increase with feature 0.
	rng := rand.New(rand.NewSource(3))
	var train []Example
	for i := 0; i < 300; i++ {
		x := rng.Float64()*2 - 1
		label := 0
		if x > 0 {
			label = 1
		}
		train = append(train, Example{Features: []float64{x}, Label: label})
	}
	m, err := TrainLogReg(train, DefaultLogRegConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.Prob([]float64{1}) <= m.Prob([]float64{-1}) {
		t.Error("probability should increase with the decisive feature")
	}
}

func TestLogRegErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := TrainLogReg(nil, DefaultLogRegConfig(), rng); err == nil {
		t.Error("empty training set should error")
	}
	bad := []Example{{Features: []float64{1}, Label: 0}, {Features: []float64{1, 2}, Label: 1}}
	if _, err := TrainLogReg(bad, DefaultLogRegConfig(), rng); err == nil {
		t.Error("inconsistent dims should error")
	}
	badLabel := []Example{{Features: []float64{1}, Label: 2}}
	if _, err := TrainLogReg(badLabel, DefaultLogRegConfig(), rng); err == nil {
		t.Error("non-binary label should error")
	}
}

func TestLogRegAccuracyEmpty(t *testing.T) {
	m := &LogReg{W: []float64{1}}
	if m.Accuracy(nil) != 0 {
		t.Error("accuracy of empty set should be 0")
	}
}

func attributeExamples() []TextExample {
	return []TextExample{
		{"room clean", "room_cleanliness"},
		{"room dirty", "room_cleanliness"},
		{"carpet stained", "room_cleanliness"},
		{"bedroom spotless", "room_cleanliness"},
		{"furniture dusty", "room_cleanliness"},
		{"room filthy", "room_cleanliness"},
		{"staff friendly", "staff"},
		{"staff rude", "staff"},
		{"concierge helpful", "staff"},
		{"receptionist kind", "staff"},
		{"staff unhelpful", "staff"},
		{"service attentive", "staff"},
		{"breakfast delicious", "breakfast"},
		{"breakfast stale", "breakfast"},
		{"coffee cold", "breakfast"},
		{"eggs tasty", "breakfast"},
		{"buffet generous", "breakfast"},
		{"pastries fresh", "breakfast"},
	}
}

func TestSoftmaxLearnsAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	examples := attributeExamples()
	m, err := TrainSoftmax(examples, DefaultSoftmaxConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(examples); acc < 0.95 {
		t.Errorf("training accuracy %v < 0.95", acc)
	}
	// Generalization to unseen combinations of seen words.
	label, p := m.Classify("carpet filthy")
	if label != "room_cleanliness" {
		t.Errorf("Classify(carpet filthy) = %q (p=%v)", label, p)
	}
	label, _ = m.Classify("receptionist rude")
	if label != "staff" {
		t.Errorf("Classify(receptionist rude) = %q", label)
	}
}

func TestSoftmaxProbabilitySumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := TrainSoftmax(attributeExamples(), DefaultSoftmaxConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	feats := m.featurize("room clean staff")
	probs := make([]float64, len(m.Labels))
	m.scores(feats, probs)
	softmaxInPlace(probs)
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probability %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestSoftmaxUnknownWords(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := TrainSoftmax(attributeExamples(), DefaultSoftmaxConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// All-unknown text must still return a valid label without panicking.
	label, p := m.Classify("zzz qqq www")
	found := false
	for _, l := range m.Labels {
		if l == label {
			found = true
		}
	}
	if !found || p <= 0 {
		t.Errorf("Classify on unknown text = (%q, %v)", label, p)
	}
}

func TestSoftmaxErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := TrainSoftmax(nil, DefaultSoftmaxConfig(), rng); err == nil {
		t.Error("empty training set should error")
	}
}

func TestSoftmaxDeterministic(t *testing.T) {
	ex := attributeExamples()
	m1, _ := TrainSoftmax(ex, DefaultSoftmaxConfig(), rand.New(rand.NewSource(9)))
	m2, _ := TrainSoftmax(ex, DefaultSoftmaxConfig(), rand.New(rand.NewSource(9)))
	for _, e := range ex {
		l1, p1 := m1.Classify(e.Text)
		l2, p2 := m2.Classify(e.Text)
		if l1 != l2 || p1 != p2 {
			t.Fatal("same seed must give identical classifiers")
		}
	}
}

// seedModel builds a small embedding model where "room"≈"suite" and
// "clean"≈"spotless" for expansion tests.
func seedModel(t *testing.T) *embedding.Model {
	t.Helper()
	stats := textproc.NewCorpusStats()
	for _, d := range [][]string{{"room"}, {"suite"}, {"clean"}, {"spotless"}, {"staff"}} {
		stats.AddDocument(d)
	}
	vecs := map[string]embedding.Vector{
		"room":     {1, 0, 0},
		"suite":    {0.95, 0.05, 0},
		"clean":    {0, 1, 0},
		"spotless": {0, 0.9, 0.1},
		"staff":    {0, 0, 1},
	}
	m, err := embedding.NewModelFromVectors(vecs, stats)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExpandSeeds(t *testing.T) {
	m := seedModel(t)
	seeds := []SeedSet{{
		Attribute: "room_cleanliness",
		Aspects:   []string{"room"},
		Opinions:  []string{"clean"},
	}}
	cfg := ExpandConfig{SynonymsPerSeed: 2, MinSim: 0.8, MaxExamples: 100}
	rng := rand.New(rand.NewSource(10))
	got := ExpandSeeds(seeds, m, cfg, rng)
	// room expands to suite; clean expands to spotless → 2×2 cross product.
	if len(got) != 4 {
		t.Fatalf("got %d examples, want 4: %v", len(got), got)
	}
	texts := map[string]bool{}
	for _, ex := range got {
		if ex.Label != "room_cleanliness" {
			t.Errorf("wrong label %q", ex.Label)
		}
		texts[ex.Text] = true
	}
	for _, want := range []string{"room clean", "room spotless", "suite clean", "suite spotless"} {
		if !texts[want] {
			t.Errorf("missing expanded example %q", want)
		}
	}
}

func TestExpandSeedsCap(t *testing.T) {
	m := seedModel(t)
	seeds := []SeedSet{{
		Attribute: "a",
		Aspects:   []string{"room", "suite", "staff"},
		Opinions:  []string{"clean", "spotless"},
	}}
	cfg := ExpandConfig{SynonymsPerSeed: 0, MinSim: 0.9, MaxExamples: 3}
	got := ExpandSeeds(seeds, m, cfg, rand.New(rand.NewSource(11)))
	if len(got) != 3 {
		t.Errorf("cap not applied: %d examples", len(got))
	}
}

func TestExpandSeedsNilModel(t *testing.T) {
	seeds := []SeedSet{{Attribute: "a", Aspects: []string{"x"}, Opinions: []string{"y"}}}
	got := ExpandSeeds(seeds, nil, DefaultExpandConfig(), rand.New(rand.NewSource(12)))
	if len(got) != 1 || got[0].Text != "x y" {
		t.Errorf("nil model expansion = %v", got)
	}
}

// End-to-end weak supervision: expand seeds, train, verify the paper's
// claimed behaviour (a high-accuracy classifier from a handful of seeds).
func TestSeedExpansionTrainsClassifier(t *testing.T) {
	m := seedModel(t)
	seeds := []SeedSet{
		{Attribute: "room_cleanliness", Aspects: []string{"room"}, Opinions: []string{"clean"}},
		{Attribute: "staff", Aspects: []string{"staff"}, Opinions: []string{"clean"}},
	}
	cfg := ExpandConfig{SynonymsPerSeed: 2, MinSim: 0.8, MaxExamples: 0}
	rng := rand.New(rand.NewSource(13))
	examples := ExpandSeeds(seeds, m, cfg, rng)
	clf, err := TrainSoftmax(examples, DefaultSoftmaxConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if label, _ := clf.Classify("suite spotless"); label != "room_cleanliness" {
		t.Errorf("expanded classifier failed on synonym pair: %q", label)
	}
}
