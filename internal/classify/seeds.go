package classify

import (
	"math/rand"
	"sort"

	"repro/internal/embedding"
)

// SeedSet is the designer's weak supervision for one subjective attribute
// (§4.2): E is a set of aspect terms the attribute describes, P a set of
// opinion terms that refer to those aspects.
type SeedSet struct {
	Attribute string
	Aspects   []string // E
	Opinions  []string // P
}

// ExpandConfig controls seed expansion.
type ExpandConfig struct {
	// SynonymsPerSeed is how many word2vec neighbours to add per seed term.
	SynonymsPerSeed int
	// MinSim is the minimum cosine similarity for an expansion to be kept.
	MinSim float64
	// MaxExamples caps the generated training set size (cross products can
	// explode); examples are sampled uniformly when the cap binds.
	MaxExamples int
}

// DefaultExpandConfig matches the paper's scale: a few hundred seeds expand
// into a training set of ~5,000 tuples.
func DefaultExpandConfig() ExpandConfig {
	return ExpandConfig{SynonymsPerSeed: 3, MinSim: 0.55, MaxExamples: 5000}
}

// ExpandSeeds builds a weakly supervised training set from seed sets by
// (1) expanding each aspect and opinion term with its word2vec synonyms
// mined from the review corpus and (2) emitting one labeled example per
// (aspect, opinion) pair in the expanded cross product, labeled with the
// attribute (the paper's concat(e, p) construction).
func ExpandSeeds(seeds []SeedSet, model *embedding.Model, cfg ExpandConfig, rng *rand.Rand) []TextExample {
	var out []TextExample
	for _, s := range seeds {
		aspects := expandTerms(s.Aspects, model, cfg)
		opinions := expandTerms(s.Opinions, model, cfg)
		for _, e := range aspects {
			for _, p := range opinions {
				out = append(out, TextExample{Text: e + " " + p, Label: s.Attribute})
			}
		}
	}
	if cfg.MaxExamples > 0 && len(out) > cfg.MaxExamples {
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		out = out[:cfg.MaxExamples]
	}
	return out
}

// expandTerms returns the seed terms plus their qualifying synonyms,
// deduplicated, in deterministic order.
func expandTerms(terms []string, model *embedding.Model, cfg ExpandConfig) []string {
	seen := make(map[string]bool, len(terms))
	var out []string
	add := func(t string) {
		if t != "" && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range terms {
		add(t)
	}
	if model == nil || cfg.SynonymsPerSeed <= 0 {
		return out
	}
	var expansions []string
	for _, t := range terms {
		for _, nb := range model.MostSimilar(t, cfg.SynonymsPerSeed) {
			if nb.Sim >= cfg.MinSim {
				expansions = append(expansions, nb.Word)
			}
		}
	}
	sort.Strings(expansions)
	for _, e := range expansions {
		add(e)
	}
	return out
}
