package textproc

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"The room was very clean!", []string{"the", "room", "was", "very", "clean"}},
		{"Old-fashioned bathrooms, don't you think?", []string{"old-fashioned", "bathrooms", "don't", "you", "think"}},
		{"", nil},
		{"   ", nil},
		{"£180 per night", []string{"180", "per", "night"}},
		{"WiFi was FAST", []string{"wifi", "was", "fast"}},
		{"'quoted'", []string{"quoted"}},
		{"--dash--", []string{"dash"}},
		{"a-b-c", []string{"a-b-c"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("MIXED Case TeXt") {
		if tok != strings.ToLower(tok) {
			t.Errorf("token %q not lowercased", tok)
		}
	}
}

func TestTokenizeNeverEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeIdempotentOnJoined(t *testing.T) {
	// Tokenizing the space-joined token stream must yield the same stream.
	f := func(s string) bool {
		first := Tokenize(s)
		second := Tokenize(strings.Join(first, " "))
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("The room was clean. The staff was friendly! Would you return? Yes")
	want := []string{"The room was clean", "The staff was friendly", "Would you return", "Yes"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Sentences = %v, want %v", got, want)
	}
}

func TestSentencesEmpty(t *testing.T) {
	if got := Sentences(""); got != nil {
		t.Errorf("Sentences(\"\") = %v, want nil", got)
	}
	if got := Sentences("..."); got != nil {
		t.Errorf("Sentences(\"...\") = %v, want nil", got)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") {
		t.Error("'the' should be a stopword")
	}
	if IsStopword("not") {
		t.Error("'not' must NOT be a stopword (negation carries signal)")
	}
	if IsStopword("clean") {
		t.Error("'clean' should not be a stopword")
	}
	got := RemoveStopwords([]string{"the", "room", "was", "not", "clean"})
	want := []string{"room", "not", "clean"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RemoveStopwords = %v, want %v", got, want)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"very", "clean", "room"}
	if got := NGrams(toks, 1); !reflect.DeepEqual(got, []string{"very", "clean", "room"}) {
		t.Errorf("1-grams = %v", got)
	}
	if got := NGrams(toks, 2); !reflect.DeepEqual(got, []string{"very clean", "clean room"}) {
		t.Errorf("2-grams = %v", got)
	}
	if got := NGrams(toks, 3); !reflect.DeepEqual(got, []string{"very clean room"}) {
		t.Errorf("3-grams = %v", got)
	}
	if got := NGrams(toks, 4); got != nil {
		t.Errorf("4-grams on 3 tokens = %v, want nil", got)
	}
	if got := NGrams(toks, 0); got != nil {
		t.Errorf("0-grams = %v, want nil", got)
	}
}

func TestNGramCount(t *testing.T) {
	f := func(raw []string, n uint8) bool {
		k := int(n%5) + 1
		toks := make([]string, 0, len(raw))
		for _, r := range raw {
			toks = append(toks, Tokenize(r)...)
		}
		grams := NGrams(toks, k)
		if len(toks) < k {
			return grams == nil
		}
		return len(grams) == len(toks)-k+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorpusStats(t *testing.T) {
	cs := NewCorpusStats()
	cs.AddDocument([]string{"clean", "room", "clean"})
	cs.AddDocument([]string{"dirty", "room"})
	if cs.DocCount() != 2 {
		t.Fatalf("DocCount = %d", cs.DocCount())
	}
	if cs.DF("room") != 2 {
		t.Errorf("DF(room) = %d, want 2", cs.DF("room"))
	}
	if cs.DF("clean") != 1 {
		t.Errorf("DF(clean) = %d, want 1 (document frequency, not term count)", cs.DF("clean"))
	}
	if cs.TermCount("clean") != 2 {
		t.Errorf("TermCount(clean) = %d, want 2", cs.TermCount("clean"))
	}
	if cs.TotalTokens() != 5 {
		t.Errorf("TotalTokens = %d, want 5", cs.TotalTokens())
	}
}

func TestIDFOrdering(t *testing.T) {
	cs := NewCorpusStats()
	for i := 0; i < 10; i++ {
		doc := []string{"common"}
		if i == 0 {
			doc = append(doc, "rare")
		}
		cs.AddDocument(doc)
	}
	if cs.IDF("rare") <= cs.IDF("common") {
		t.Errorf("IDF(rare)=%v should exceed IDF(common)=%v", cs.IDF("rare"), cs.IDF("common"))
	}
	if cs.IDF("unseen") <= cs.IDF("rare") {
		t.Errorf("IDF(unseen)=%v should exceed IDF(rare)=%v", cs.IDF("unseen"), cs.IDF("rare"))
	}
}

func TestIDFPositive(t *testing.T) {
	cs := NewCorpusStats()
	cs.AddDocument([]string{"a", "b"})
	f := func(term string) bool {
		v := cs.IDF(term)
		return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVocabulary(t *testing.T) {
	cs := NewCorpusStats()
	cs.AddDocument([]string{"x", "x", "y"})
	vocab := cs.Vocabulary(2)
	if len(vocab) != 1 || vocab[0] != "x" {
		t.Errorf("Vocabulary(2) = %v, want [x]", vocab)
	}
	if got := len(cs.Vocabulary(1)); got != 2 {
		t.Errorf("Vocabulary(1) size = %d, want 2", got)
	}
}
