// Package textproc provides the low-level text processing primitives used
// throughout OpineDB: tokenization, sentence splitting, stopword filtering,
// n-gram extraction, and corpus-level term statistics (TF, DF, IDF).
//
// The paper relies on standard IR preprocessing (Okapi BM25 over tf-idf,
// IDF-weighted phrase embeddings); this package supplies those statistics
// without external dependencies.
package textproc

import (
	"math"
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase word tokens. Letters and digits are
// kept; intra-word apostrophes and hyphens are preserved ("don't",
// "old-fashioned") so that opinion phrases survive tokenization intact.
func Tokenize(text string) []string {
	tokens := make([]string, 0, len(text)/5)
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := strings.Trim(b.String(), "'-")
		if tok != "" {
			tokens = append(tokens, tok)
		}
		b.Reset()
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'' || r == '-':
			// Keep only if inside a word; leading marks are trimmed on flush.
			if b.Len() > 0 {
				b.WriteRune(r)
			}
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Sentences splits text into sentences on '.', '!', '?' and newlines.
// It is deliberately simple: review text in our corpora is generated with
// well-formed sentence boundaries, and the paper's pipeline operates at the
// sentence level.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	emit := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			out = append(out, s)
		}
		b.Reset()
	}
	for _, r := range text {
		switch r {
		case '.', '!', '?', '\n':
			emit()
		default:
			b.WriteRune(r)
		}
	}
	emit()
	return out
}

// stopwords is the filter list applied before computing embeddings and
// index statistics. Negation words ("not", "no", "never") are deliberately
// NOT stopwords: they carry the sentiment-flipping signal that the paper's
// qualitative comparison with the IR baseline depends on.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "is": true, "was": true, "are": true,
	"were": true, "be": true, "been": true, "being": true, "am": true,
	"i": true, "we": true, "you": true, "he": true, "she": true, "it": true,
	"they": true, "my": true, "our": true, "your": true, "his": true,
	"her": true, "its": true, "their": true, "this": true, "that": true,
	"these": true, "those": true, "and": true, "or": true, "but": true,
	"of": true, "in": true, "on": true, "at": true, "to": true, "for": true,
	"with": true, "from": true, "by": true, "as": true, "had": true,
	"has": true, "have": true, "do": true, "does": true, "did": true,
	"will": true, "would": true, "there": true, "here": true, "so": true,
	"than": true, "then": true, "too": true, "also": true, "just": true,
	"about": true, "into": true, "over": true, "after": true, "before": true,
	"during": true, "while": true, "when": true, "where": true, "which": true,
	"who": true, "whom": true, "what": true, "because": true, "if": true,
	"s": true, "t": true, "us": true, "me": true, "him": true, "them": true,
}

// IsStopword reports whether tok is in the stopword list.
func IsStopword(tok string) bool { return stopwords[tok] }

// RemoveStopwords returns tokens with stopwords filtered out, preserving
// order. The input slice is not modified.
func RemoveStopwords(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// NGrams returns all contiguous n-grams of tokens joined by a space.
// It returns nil when n is larger than len(tokens) or n < 1.
func NGrams(tokens []string, n int) []string {
	if n < 1 || len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+n], " "))
	}
	return out
}

// CorpusStats accumulates document frequency statistics over a corpus and
// answers IDF queries. A "document" is whatever unit the caller passes to
// AddDocument (reviews in OpineDB).
type CorpusStats struct {
	docCount int
	df       map[string]int
	termCnt  map[string]int
	total    int64 // total token occurrences
}

// NewCorpusStats returns an empty statistics accumulator.
func NewCorpusStats() *CorpusStats {
	return &CorpusStats{df: make(map[string]int), termCnt: make(map[string]int)}
}

// AddDocument records one document's tokens into the statistics.
func (c *CorpusStats) AddDocument(tokens []string) {
	c.docCount++
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		c.termCnt[t]++
		c.total++
		if !seen[t] {
			seen[t] = true
			c.df[t]++
		}
	}
}

// DocCount returns the number of documents added.
func (c *CorpusStats) DocCount() int { return c.docCount }

// DF returns the document frequency of term.
func (c *CorpusStats) DF(term string) int { return c.df[term] }

// TermCount returns the total number of occurrences of term.
func (c *CorpusStats) TermCount(term string) int { return c.termCnt[term] }

// TotalTokens returns the total number of token occurrences across all
// documents.
func (c *CorpusStats) TotalTokens() int64 { return c.total }

// IDF returns the smoothed inverse document frequency
// log((N+1)/(df+1)) + 1, which is strictly positive and defined for
// unseen terms. This is the idf(w) of Eq. 1 in the paper.
func (c *CorpusStats) IDF(term string) float64 {
	return math.Log(float64(c.docCount+1)/float64(c.df[term]+1)) + 1
}

// Vocabulary returns every term seen at least minCount times.
func (c *CorpusStats) Vocabulary(minCount int) []string {
	out := make([]string, 0, len(c.termCnt))
	for t, n := range c.termCnt {
		if n >= minCount {
			out = append(out, t)
		}
	}
	return out
}

// CorpusStatsState is the exported serialization seam for CorpusStats:
// the complete accumulator state, suitable for gob/JSON encoding by the
// snapshot layer. Maps are shared with the live accumulator, not copied —
// treat a state taken from a live CorpusStats as read-only.
type CorpusStatsState struct {
	DocCount  int
	DF        map[string]int
	TermCount map[string]int
	Total     int64
}

// State exports the accumulator for serialization.
func (c *CorpusStats) State() CorpusStatsState {
	return CorpusStatsState{DocCount: c.docCount, DF: c.df, TermCount: c.termCnt, Total: c.total}
}

// NewCorpusStatsFromState reconstructs an accumulator from exported state.
// Nil maps (possible after decoding an empty corpus) are replaced by empty
// ones so the accumulator stays usable.
func NewCorpusStatsFromState(st CorpusStatsState) *CorpusStats {
	if st.DF == nil {
		st.DF = make(map[string]int)
	}
	if st.TermCount == nil {
		st.TermCount = make(map[string]int)
	}
	return &CorpusStats{docCount: st.DocCount, df: st.DF, termCnt: st.TermCount, total: st.Total}
}
