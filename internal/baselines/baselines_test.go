package baselines

import (
	"testing"

	"repro/internal/corpus"
)

func smallHotels(t *testing.T) *corpus.Dataset {
	t.Helper()
	return corpus.GenerateHotels(corpus.SmallConfig())
}

func TestGZ12RanksKeywordMatches(t *testing.T) {
	d := smallHotels(t)
	g := NewGZ12(d)
	ranking := g.Rank([]string{"spotless rooms"}, nil, 10)
	if len(ranking) == 0 {
		t.Fatal("empty ranking")
	}
	// The top entity's reviews should actually contain cleanliness talk
	// more than a random entity. Verify scores decrease.
	// (GZ12's known weakness — matching "clean" in "not clean" — is
	// demonstrated at the harness level, not here.)
	seen := map[string]bool{}
	for _, id := range ranking {
		if seen[id] {
			t.Fatalf("duplicate entity %s in ranking", id)
		}
		seen[id] = true
		if d.EntityByID(id) == nil {
			t.Fatalf("unknown entity %s", id)
		}
	}
}

func TestGZ12CandidateFilter(t *testing.T) {
	d := smallHotels(t)
	g := NewGZ12(d)
	candidates := map[string]bool{d.Entities[0].ID: true, d.Entities[1].ID: true}
	ranking := g.Rank([]string{"clean rooms"}, candidates, 10)
	for _, id := range ranking {
		if !candidates[id] {
			t.Errorf("entity %s not in candidate set", id)
		}
	}
	if len(ranking) > 2 {
		t.Errorf("ranking larger than candidate set: %d", len(ranking))
	}
}

func TestGZ12MultiPredicateSum(t *testing.T) {
	d := smallHotels(t)
	g := NewGZ12(d)
	a := g.Rank([]string{"clean rooms"}, nil, 5)
	b := g.Rank([]string{"clean rooms", "friendly staff"}, nil, 5)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty rankings")
	}
	// Not necessarily different, but must both be valid top-5 lists.
	if len(a) > 5 || len(b) > 5 {
		t.Error("k not respected")
	}
}

func TestRankByRating(t *testing.T) {
	d := smallHotels(t)
	// ByPrice: ascending price = descending negated price.
	ranking := RankByRating(d, func(e *corpus.Entity) float64 { return -e.PricePerNight }, nil, 5)
	if len(ranking) != 5 {
		t.Fatalf("got %d", len(ranking))
	}
	prev := -1.0
	for _, id := range ranking {
		p := d.EntityByID(id).PricePerNight
		if prev >= 0 && p < prev {
			t.Error("ByPrice ranking not ascending in price")
		}
		prev = p
	}
}

func TestBestAttributeCombo(t *testing.T) {
	attrScores := map[string]map[string]float64{
		"A": {"e1": 1, "e2": 0, "e3": 0},
		"B": {"e1": 0, "e2": 1, "e3": 0},
		"C": {"e1": 0, "e2": 0, "e3": 1},
	}
	// Quality rewards rankings whose first element is e3 → combo must be C.
	quality := func(r []string) float64 {
		if len(r) > 0 && r[0] == "e3" {
			return 1
		}
		return 0
	}
	best := BestAttributeCombo(attrScores, 1, 3, nil, quality)
	if len(best) == 0 || best[0] != "e3" {
		t.Errorf("1-attr best = %v", best)
	}
	// 2-attribute: quality rewards e1 and e2 both in top-2 → combo A+B.
	quality2 := func(r []string) float64 {
		if len(r) >= 2 {
			top := map[string]bool{r[0]: true, r[1]: true}
			if top["e1"] && top["e2"] {
				return 1
			}
		}
		return 0
	}
	best2 := BestAttributeCombo(attrScores, 2, 3, nil, quality2)
	top := map[string]bool{}
	for i, id := range best2 {
		if i < 2 {
			top[id] = true
		}
	}
	if !top["e1"] || !top["e2"] {
		t.Errorf("2-attr best = %v", best2)
	}
	// Unsupported n.
	if got := BestAttributeCombo(attrScores, 3, 3, nil, quality); got != nil {
		t.Error("n=3 should return nil")
	}
}

func TestHotelAttributeScores(t *testing.T) {
	d := smallHotels(t)
	scores := HotelAttributeScores(d)
	if len(scores) != 8 {
		t.Fatalf("got %d attributes, want 8 (booking.com set)", len(scores))
	}
	for attr, byEntity := range scores {
		if len(byEntity) != len(d.Entities) {
			t.Errorf("%s covers %d entities", attr, len(byEntity))
		}
	}
}

func TestRestaurantAttributeScores(t *testing.T) {
	d := corpus.GenerateRestaurants(corpus.SmallConfig())
	scores := RestaurantAttributeScores(d)
	if _, ok := scores["Stars"]; !ok {
		t.Error("missing Stars")
	}
	if _, ok := scores["ReviewCount"]; !ok {
		t.Error("missing ReviewCount")
	}
	// Categorical filters become attr=value score maps.
	found := false
	for name := range scores {
		if name == "NoiseLevel=quiet" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing categorical filter attributes: have %d maps", len(scores))
	}
}

func TestTopKByScoreDeterministic(t *testing.T) {
	scores := map[string]float64{"b": 1, "a": 1, "c": 2}
	got := topKByScore(scores, 3)
	if got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Errorf("ordering = %v", got)
	}
}
