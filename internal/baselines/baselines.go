// Package baselines implements the two comparison systems of §5.3:
//
//   - GZ12, the IR-based opinion entity-ranking baseline (Ganesan & Zhai
//     2012): each entity is one concatenated review document, ranked by
//     BM25 against the query predicates, with scores summed over
//     predicates (their "multiple query predicate" combination).
//   - The attribute-based (AB) baseline family: what a user gets from
//     booking.com/yelp by ranking on scraped aggregate attributes —
//     ByPrice, ByRating, and the best 1- or 2-attribute combination
//     (picked oracle-style to maximize sat, exactly as §5.3 does).
package baselines

import (
	"sort"

	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/textproc"
)

// GZ12 is the IR baseline over per-entity documents.
type GZ12 struct {
	index *ir.Index
	ids   []string
}

// NewGZ12 indexes the dataset's reviews as one document per entity.
func NewGZ12(d *corpus.Dataset) *GZ12 {
	docs := map[string][]string{}
	for _, rv := range d.Reviews {
		docs[rv.EntityID] = append(docs[rv.EntityID], rv.Text)
	}
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return &GZ12{index: ir.EntityDocs(docs), ids: ids}
}

// Rank returns the top-k entities among candidates for a conjunction of
// predicate texts: per-predicate BM25 scores are summed (with simple
// query expansion: every token of every predicate contributes).
func (g *GZ12) Rank(predicates []string, candidates map[string]bool, k int) []string {
	scores := map[string]float64{}
	for _, p := range predicates {
		toks := textproc.Tokenize(p)
		for _, id := range g.ids {
			if candidates != nil && !candidates[id] {
				continue
			}
			scores[id] += g.index.Score(id, toks)
		}
	}
	return topKByScore(scores, k)
}

// RankByRating ranks candidates by a numeric per-entity score (descending)
// — the ByPrice (ascending price = negated score) and ByRating baselines.
func RankByRating(d *corpus.Dataset, score func(*corpus.Entity) float64, candidates map[string]bool, k int) []string {
	scores := map[string]float64{}
	for _, e := range d.Entities {
		if candidates != nil && !candidates[e.ID] {
			continue
		}
		scores[e.ID] = score(e)
	}
	return topKByScore(scores, k)
}

// BestAttributeCombo implements the 1-Attribute and 2-Attribute baselines:
// the user ranks entities by the sum of n scraped attribute scores, trying
// every combination; the combination maximizing the provided quality
// functional is reported (§5.3 picks the max over combinations).
//
// attrScores maps attribute name → entity id → score. quality evaluates a
// ranking. It returns the best ranking found.
func BestAttributeCombo(attrScores map[string]map[string]float64, n, k int, candidates map[string]bool, quality func(ranking []string) float64) []string {
	names := make([]string, 0, len(attrScores))
	for a := range attrScores {
		names = append(names, a)
	}
	sort.Strings(names)
	var best []string
	bestQ := -1.0
	var combos [][]string
	switch n {
	case 1:
		for _, a := range names {
			combos = append(combos, []string{a})
		}
	case 2:
		for i := range names {
			for j := i + 1; j < len(names); j++ {
				combos = append(combos, []string{names[i], names[j]})
			}
		}
	default:
		return nil
	}
	for _, combo := range combos {
		scores := map[string]float64{}
		for _, a := range combo {
			for id, s := range attrScores[a] {
				if candidates != nil && !candidates[id] {
					continue
				}
				scores[id] += s
			}
		}
		ranking := topKByScore(scores, k)
		if q := quality(ranking); q > bestQ {
			bestQ = q
			best = ranking
		}
	}
	return best
}

// HotelAttributeScores extracts the scraped booking.com-style rating
// attributes from a hotel dataset for the AB baseline.
func HotelAttributeScores(d *corpus.Dataset) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, e := range d.Entities {
		for attr, v := range e.PlatformRatings {
			if out[attr] == nil {
				out[attr] = map[string]float64{}
			}
			out[attr][e.ID] = v
		}
	}
	return out
}

// RestaurantAttributeScores builds the yelp-style attribute scores:
// stars, review count, and each categorical filter attribute as a 0/1
// score (filter match = 1).
func RestaurantAttributeScores(d *corpus.Dataset) map[string]map[string]float64 {
	out := map[string]map[string]float64{
		"Stars":       {},
		"ReviewCount": {},
	}
	for _, e := range d.Entities {
		out["Stars"][e.ID] = e.Stars
		out["ReviewCount"][e.ID] = float64(e.ReviewCount)
		for attr, val := range e.CategoricalAttrs {
			key := attr + "=" + val
			if out[key] == nil {
				out[key] = map[string]float64{}
			}
			out[key][e.ID] = 1
		}
	}
	return out
}

// topKByScore sorts ids by descending score with deterministic ties.
func topKByScore(scores map[string]float64, k int) []string {
	ids := make([]string, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] > scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}
