//go:build unix

package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on the journal directory (a
// LOCK file inside it), so two processes — or two in-process shards
// misconfigured onto one directory — can never interleave appends into
// the same segment chain, which would corrupt the sequence ordering for
// both. The lock is held for the life of the returned file and released
// by closing it.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: directory %s is already locked by another writer: %w", dir, err)
	}
	return f, nil
}
