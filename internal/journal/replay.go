package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"syscall"
)

// ReplayStats describes one replay pass over a journal directory.
type ReplayStats struct {
	// Segments is how many segment files were read.
	Segments int
	// Records is how many records were decoded and delivered.
	Records int
	// LastSeq is the sequence number of the last delivered record (0 when
	// the journal is empty).
	LastSeq uint64
	// DroppedBytes counts trailing bytes of the final segment that were
	// skipped because of tail damage; TailErr is the typed reason
	// (ErrTornRecord or ErrJournalChecksum), nil for a clean journal.
	DroppedBytes int64
	TailErr      error
}

// scanResult is one segment's scan outcome.
type scanResult struct {
	records   int   // valid records delivered
	goodBytes int64 // prefix of the file covered by header + valid records
	tailErr   error // typed tail damage (recoverable when this is the final segment)
	headerBad bool  // the segment header itself was torn
}

// scanSegmentFile validates one segment and streams its records to fn
// (which may be nil). nameSeq is the sequence number encoded in the file
// name, wantFirstSeq the sequence the journal-wide chain expects next.
// Recoverable tail damage comes back in scanResult.tailErr; structural
// damage (bad magic on a complete header, a broken sequence chain, an
// undecodable CRC-valid payload) is a hard error.
func scanSegmentFile(path string, nameSeq, wantFirstSeq uint64, fn func(seq uint64, rv Review) error) (scanResult, error) {
	var res scanResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, fmt.Errorf("journal: read segment: %w", err)
	}
	base := filepath.Base(path)
	if len(data) < segmentHeaderLen {
		// A crash while creating the segment leaves a short header; no
		// record can have been acknowledged from it.
		res.headerBad = true
		res.tailErr = fmt.Errorf("%w: segment %s header is %d of %d bytes", ErrTornRecord, base, len(data), segmentHeaderLen)
		return res, nil
	}
	if string(data[:8]) != SegmentMagic {
		return res, fmt.Errorf("%w: segment %s has bad magic %q", ErrJournalFormat, base, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != FormatVersion {
		return res, fmt.Errorf("%w: segment %s has version %d, this build reads %d", ErrJournalFormat, base, v, FormatVersion)
	}
	firstSeq := binary.LittleEndian.Uint64(data[12:])
	if firstSeq != nameSeq {
		return res, fmt.Errorf("%w: segment %s declares first seq %d", ErrJournalFormat, base, firstSeq)
	}
	if firstSeq != wantFirstSeq {
		return res, fmt.Errorf("%w: segment %s starts at seq %d, journal chain expects %d", ErrJournalFormat, base, firstSeq, wantFirstSeq)
	}
	res.goodBytes = segmentHeaderLen

	off := segmentHeaderLen
	next := firstSeq
	for off < len(data) {
		if len(data)-off < recordHeaderLen {
			res.tailErr = fmt.Errorf("%w: segment %s record header cut at byte %d", ErrTornRecord, base, off)
			return res, nil
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		seq := binary.LittleEndian.Uint64(data[off+8:])
		if payloadLen > maxRecordBytes {
			res.tailErr = fmt.Errorf("%w: segment %s record at byte %d declares %d payload bytes (limit %d)",
				ErrTornRecord, base, off, payloadLen, maxRecordBytes)
			return res, nil
		}
		if payloadLen > len(data)-off-recordHeaderLen {
			res.tailErr = fmt.Errorf("%w: segment %s record at byte %d declares %d payload bytes but %d remain",
				ErrTornRecord, base, off, payloadLen, len(data)-off-recordHeaderLen)
			return res, nil
		}
		payload := data[off+recordHeaderLen : off+recordHeaderLen+payloadLen]
		h := crc32.NewIEEE()
		h.Write(data[off+8 : off+16]) // seq bytes, as written
		h.Write(payload)
		if h.Sum32() != crc {
			// A torn write can only damage the final record ever written —
			// nothing follows it. A checksum mismatch on a record with more
			// bytes after it is therefore not a crash signature but
			// corruption of durable data, which must never be silently
			// dropped.
			if off+recordHeaderLen+payloadLen != len(data) {
				return res, fmt.Errorf("%w: segment %s record at byte %d has crc %08x, want %08x, with %d durable bytes after it",
					ErrJournalChecksum, base, off, h.Sum32(), crc, len(data)-off-recordHeaderLen-payloadLen)
			}
			res.tailErr = fmt.Errorf("%w: segment %s record at byte %d has crc %08x, want %08x",
				ErrJournalChecksum, base, off, h.Sum32(), crc)
			return res, nil
		}
		if seq != next {
			return res, fmt.Errorf("%w: segment %s record at byte %d carries seq %d, chain expects %d",
				ErrJournalFormat, base, off, seq, next)
		}
		rv, err := decodeReview(payload)
		if err != nil {
			return res, fmt.Errorf("journal: segment %s record seq %d: %w", base, seq, err)
		}
		if fn != nil {
			if err := fn(seq, rv); err != nil {
				return res, err
			}
		}
		off += recordHeaderLen + payloadLen
		res.goodBytes = int64(off)
		res.records++
		next++
	}
	return res, nil
}

// Replay reads a journal directory in sequence order, delivering every
// intact record to fn. A missing directory is an empty journal (nothing
// has been ingested since the snapshot), not an error. Tail damage on the
// final segment is skipped and reported in the stats — the crash-recovery
// contract — while damage in any fully durable position is a hard typed
// error. Replay never modifies the journal; Open is what truncates a
// damaged tail before new appends.
func Replay(dir string, fn func(seq uint64, rv Review) error) (ReplayStats, error) {
	var stats ReplayStats
	paths, seqs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || isNotDir(err) {
			return stats, nil
		}
		return stats, fmt.Errorf("journal: replay: %w", err)
	}
	next := uint64(1)
	for i, path := range paths {
		last := i == len(paths)-1
		res, err := scanSegmentFile(path, seqs[i], next, fn)
		if err != nil {
			return stats, err
		}
		if res.tailErr != nil && !last {
			return stats, fmt.Errorf("journal: segment %s: %w", filepath.Base(path), res.tailErr)
		}
		stats.Segments++
		stats.Records += res.records
		next += uint64(res.records)
		if res.tailErr != nil {
			fi, statErr := os.Stat(path)
			if statErr == nil {
				stats.DroppedBytes = fi.Size() - res.goodBytes
			}
			stats.TailErr = res.tailErr
			break
		}
	}
	if stats.Records > 0 {
		stats.LastSeq = next - 1
	}
	return stats, nil
}

// isNotDir reports whether err came from treating a non-directory as a
// directory (a stray file where the journal dir should be).
func isNotDir(err error) bool {
	return errors.Is(err, syscall.ENOTDIR)
}
