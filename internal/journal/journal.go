// Package journal is the durable delta log of the incremental-enrichment
// path: a checksummed, length-prefixed, append-only record of AddReview
// deltas written next to a snapshot artifact. The snapshot is the *base*;
// the journal is everything ingested since it was built. A serving
// process loads snapshot → replays journal → serves, so the expensive
// §4 construction pipeline runs offline while the database keeps
// absorbing new experiential data online (the crowdsourced-KB direction
// of Meng et al.), and a crash mid-ingest loses at most the
// unfsynced tail — never a loadable-but-corrupt state.
//
// # On-disk format (journal version 1)
//
// A journal is a directory of segment files named <firstSeq>.wal with
// zero-padded decimal sequence numbers. All integers are little-endian.
//
//	segment header (20 bytes):
//	  offset 0   magic "OPDBWAL1" (8 bytes)
//	  offset 8   uint32 journal format version
//	  offset 12  uint64 sequence number of the segment's first record
//	records, concatenated:
//	  uint32 payload length
//	  uint32 CRC-32 (IEEE) over seq bytes + payload
//	  uint64 seq (consecutive, starting at the header's firstSeq)
//	  payload (opcode byte + body; see record.go)
//
// Records are fsynced in batches (Options.SyncEvery): an append is
// acknowledged when written to the OS, and durable once the batch
// syncs. Segments roll at Options.SegmentMaxBytes so compaction and
// recovery never rescan unbounded files.
//
// # Crash recovery
//
// Damage is classified with typed errors — ErrTornRecord (framing cut
// short: a truncated header, length prefix, or a record extending past
// EOF), ErrJournalChecksum (a record's CRC does not match its bytes) and
// ErrJournalFormat (bad magic/version or a broken sequence chain). A
// damaged *tail* of the final segment is the expected crash signature —
// a torn write can only affect the last record ever written, so tail
// means framing that runs out of file, or a checksum mismatch on a
// record that ends exactly at EOF. Open truncates such a tail away and
// keeps serving (the loss is bounded by the sync batch); Replay skips it
// and reports it in ReplayStats. The same damage anywhere else — an
// earlier segment, or a record with durable bytes after it — means
// previously-synced data was corrupted, which is never silently dropped:
// it surfaces as a hard typed error.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SegmentMagic identifies a journal segment file; it is the first 8 bytes.
const SegmentMagic = "OPDBWAL1"

// FormatVersion is the journal format this package writes and the only
// one it accepts.
const FormatVersion uint32 = 1

const (
	segmentHeaderLen = 20
	recordHeaderLen  = 16 // uint32 len + uint32 crc + uint64 seq
	// maxRecordBytes bounds a record's declared payload so a corrupt
	// length prefix cannot drive a huge allocation.
	maxRecordBytes = 1 << 24
	// DefaultSegmentMaxBytes rolls segments at 4 MiB.
	DefaultSegmentMaxBytes = 4 << 20
)

// Typed errors for damaged journals; match with errors.Is.
var (
	// ErrTornRecord: a segment ends mid-record (truncated header, length
	// prefix, or payload) — the signature of a torn write.
	ErrTornRecord = errors.New("journal: torn record")
	// ErrJournalChecksum: a record's payload does not match its stored CRC.
	ErrJournalChecksum = errors.New("journal: record checksum mismatch")
	// ErrJournalFormat: a segment has a bad magic/version or the sequence
	// chain across records or segments is broken.
	ErrJournalFormat = errors.New("journal: invalid segment format")
)

// Options configure a Journal opened for appending.
type Options struct {
	// SyncEvery fsyncs the active segment after every Nth append; values
	// <= 1 sync every append (fully durable acknowledgements). Larger
	// batches trade the crash-loss window for throughput; replayed state
	// is byte-identical for every batch size.
	SyncEvery int
	// SegmentMaxBytes rolls to a new segment file once the active one
	// exceeds this size. 0 means DefaultSegmentMaxBytes.
	SegmentMaxBytes int64
	// SyncObserver, when non-nil, is called after every real fsync of the
	// active segment with the time the fsync took. It runs under the
	// journal's internal lock and must not call back into the journal;
	// it exists so a serving process can feed an fsync-latency histogram
	// without this package importing a metrics dependency.
	SyncObserver func(d time.Duration)
}

// RecoveryInfo describes what Open found (and removed) at the tail of the
// final segment.
type RecoveryInfo struct {
	// DroppedBytes is how many trailing bytes were truncated away.
	DroppedBytes int64
	// Err is the typed reason the tail was unusable (ErrTornRecord or
	// ErrJournalChecksum), nil when the journal was clean.
	Err error
}

// Journal is an append-only review log opened on a directory. Appends are
// serialized internally; Append/Sync/Close are safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	size     int64    // bytes written to the active segment
	nextSeq  uint64
	synced   uint64 // highest sequence number known durable
	unsynced int    // appends since the last fsync
	recovery RecoveryInfo
	// broken is set when a failed append left bytes of indeterminate
	// shape in the active segment that could not be truncated away;
	// appending after them would bury durable records behind mid-file
	// damage, so the journal refuses further writes instead.
	broken error
	// lock holds the exclusive directory lock (lockDir) for the life of
	// the journal.
	lock *os.File
}

// segPath names the segment whose first record is seq.
func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d.wal", seq))
}

// listSegments returns the journal's segment paths sorted by first
// sequence number (the zero-padded name sorts correctly, but the parsed
// value is what orders and validates them).
func listSegments(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var paths []string
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: segment name %q is not a sequence number", ErrJournalFormat, name)
		}
		paths = append(paths, filepath.Join(dir, name))
		seqs = append(seqs, seq)
	}
	sort.Sort(&segmentSort{paths: paths, seqs: seqs})
	return paths, seqs, nil
}

type segmentSort struct {
	paths []string
	seqs  []uint64
}

func (s *segmentSort) Len() int           { return len(s.paths) }
func (s *segmentSort) Less(i, j int) bool { return s.seqs[i] < s.seqs[j] }
func (s *segmentSort) Swap(i, j int) {
	s.paths[i], s.paths[j] = s.paths[j], s.paths[i]
	s.seqs[i], s.seqs[j] = s.seqs[j], s.seqs[i]
}

// Open opens (creating if needed) a journal directory for appending. Every
// segment is scanned: damage at the tail of the final segment is
// truncated away (crash recovery; see Recovery), damage anywhere else is
// a hard typed error. The next append continues the sequence where the
// recovered journal ends.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	if opts.SyncEvery < 1 {
		opts.SyncEvery = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok && lock != nil {
			lock.Close()
		}
	}()
	j := &Journal{dir: dir, opts: opts, nextSeq: 1, lock: lock}

	paths, seqs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	for i, path := range paths {
		last := i == len(paths)-1
		res, err := scanSegmentFile(path, seqs[i], j.nextSeq, nil)
		if err != nil {
			return nil, err
		}
		if res.tailErr != nil && !last {
			// Damage followed by a whole later segment is not a crash tail.
			return nil, fmt.Errorf("journal: segment %s: %w", filepath.Base(path), res.tailErr)
		}
		if res.tailErr != nil {
			if res.goodBytes == 0 && res.records == 0 && res.headerBad {
				// A torn segment header (crash during roll): no acknowledged
				// record can live here, drop the file entirely.
				fi, _ := os.Stat(path)
				if fi != nil {
					j.recovery.DroppedBytes += fi.Size()
				}
				if err := os.Remove(path); err != nil {
					return nil, fmt.Errorf("journal: open: drop torn segment: %w", err)
				}
				j.recovery.Err = res.tailErr
				paths = paths[:i]
				seqs = seqs[:i]
				break
			}
			fi, err := os.Stat(path)
			if err != nil {
				return nil, fmt.Errorf("journal: open: %w", err)
			}
			j.recovery.DroppedBytes += fi.Size() - res.goodBytes
			j.recovery.Err = res.tailErr
			if err := os.Truncate(path, res.goodBytes); err != nil {
				return nil, fmt.Errorf("journal: open: truncate torn tail: %w", err)
			}
		}
		j.nextSeq += uint64(res.records)
	}

	if len(paths) == 0 {
		if err := j.rollLocked(); err != nil {
			return nil, err
		}
	} else {
		// Reopen the final segment for appending.
		active := paths[len(paths)-1]
		f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("journal: open: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: open: %w", err)
		}
		j.f = f
		j.size = fi.Size()
	}
	j.synced = j.nextSeq - 1 // everything on disk at open time is durable
	ok = true
	return j, nil
}

// Recovery reports what Open had to drop from the journal's tail.
func (j *Journal) Recovery() RecoveryInfo { return j.recovery }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// NextSeq returns the sequence number the next append will get.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// SyncedSeq returns the highest sequence number known durable (fsynced).
func (j *Journal) SyncedSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.synced
}

// rollLocked syncs and closes the active segment and starts the next one.
// The new segment's header is written and fsynced (file and directory)
// before any record lands in it, so a crash during the roll leaves either
// a complete header or a torn one that recovery drops wholesale.
func (j *Journal) rollLocked() error {
	if j.f != nil {
		if err := j.syncLocked(); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			return fmt.Errorf("journal: roll: %w", err)
		}
		j.f = nil
	}
	path := segPath(j.dir, j.nextSeq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: roll: %w", err)
	}
	var hdr [segmentHeaderLen]byte
	copy(hdr[:8], SegmentMagic)
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], j.nextSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("journal: roll: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: roll: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.size = segmentHeaderLen
	return nil
}

// syncDir fsyncs a directory so freshly created segment files survive a
// crash of the containing filesystem metadata.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

// Append writes one review delta and returns its sequence number. The
// record is acknowledged once in the OS; it is durable after the current
// sync batch completes (SyncEvery appends, an explicit Sync, or Close).
func (j *Journal) Append(rv Review) (uint64, error) {
	payload, err := encodeReview(rv)
	if err != nil {
		return 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, fmt.Errorf("journal: append on closed journal")
	}
	if j.broken != nil {
		return 0, fmt.Errorf("journal: refusing append after unrecovered write failure: %w", j.broken)
	}
	recLen := int64(recordHeaderLen + len(payload))
	if j.size+recLen > j.opts.SegmentMaxBytes && j.size > segmentHeaderLen {
		if err := j.rollLocked(); err != nil {
			return 0, err
		}
	}
	seq := j.nextSeq
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	var seqBytes [8]byte
	binary.LittleEndian.PutUint64(seqBytes[:], seq)
	crc := crc32.NewIEEE()
	crc.Write(seqBytes[:])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc.Sum32())
	copy(hdr[8:], seqBytes[:])
	if _, err := j.f.Write(hdr[:]); err != nil {
		return 0, j.abortAppendLocked(err)
	}
	if _, err := j.f.Write(payload); err != nil {
		return 0, j.abortAppendLocked(err)
	}
	j.size += recLen
	j.nextSeq++
	j.unsynced++
	if j.unsynced >= j.opts.SyncEvery {
		if err := j.syncLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// AppendBatch writes a batch of review deltas as one contiguous write
// and fsyncs once for the whole batch, returning the first record's
// sequence number (the batch occupies firstSeq..firstSeq+len(rvs)-1).
// This is the group-commit primitive: when AppendBatch returns nil,
// every record of the batch is durable — regardless of Options.SyncEvery,
// which only batches the per-record Append path. The batch is atomic on
// failure: a failed write truncates the segment back to the batch start,
// so either every record is journaled or none is, and no caller is ever
// acknowledged on a half-written batch. The whole batch lands in one
// segment (the journal rolls first if the active segment cannot hold
// it), and SyncObserver fires exactly once, for the shared fsync.
func (j *Journal) AppendBatch(rvs []Review) (uint64, error) {
	if len(rvs) == 0 {
		return 0, fmt.Errorf("journal: empty batch")
	}
	payloads := make([][]byte, len(rvs))
	var total int64
	for i, rv := range rvs {
		p, err := encodeReview(rv)
		if err != nil {
			return 0, err
		}
		payloads[i] = p
		total += int64(recordHeaderLen + len(p))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, fmt.Errorf("journal: append on closed journal")
	}
	if j.broken != nil {
		return 0, fmt.Errorf("journal: refusing append after unrecovered write failure: %w", j.broken)
	}
	if j.size+total > j.opts.SegmentMaxBytes && j.size > segmentHeaderLen {
		if err := j.rollLocked(); err != nil {
			return 0, err
		}
	}
	firstSeq := j.nextSeq
	buf := make([]byte, 0, total)
	for i, payload := range payloads {
		var hdr [recordHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
		var seqBytes [8]byte
		binary.LittleEndian.PutUint64(seqBytes[:], firstSeq+uint64(i))
		crc := crc32.NewIEEE()
		crc.Write(seqBytes[:])
		crc.Write(payload)
		binary.LittleEndian.PutUint32(hdr[4:], crc.Sum32())
		copy(hdr[8:], seqBytes[:])
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	// One write, one fsync. j.size only advances after the write succeeds,
	// so abortAppendLocked's truncate-to-size discards the whole batch.
	if _, err := j.f.Write(buf); err != nil {
		return 0, j.abortAppendLocked(err)
	}
	j.size += total
	j.nextSeq += uint64(len(rvs))
	j.unsynced += len(rvs)
	if err := j.syncLocked(); err != nil {
		return 0, err
	}
	return firstSeq, nil
}

// abortAppendLocked handles a failed record write (short write, ENOSPC):
// the segment may now carry a partial record that a later append would
// bury behind itself, turning recoverable tail damage into hard mid-file
// damage at the next open. Truncating back to the last good offset
// restores the invariant; if even that fails, the journal marks itself
// broken and refuses further appends.
func (j *Journal) abortAppendLocked(cause error) error {
	if terr := j.f.Truncate(j.size); terr != nil {
		j.broken = fmt.Errorf("append failed (%v) and truncate to %d failed (%v)", cause, j.size, terr)
		return fmt.Errorf("journal: append: %w (journal now read-only: %v)", cause, terr)
	}
	return fmt.Errorf("journal: append: %w", cause)
}

// Sync flushes every acknowledged append to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.f == nil {
		return fmt.Errorf("journal: sync on closed journal")
	}
	if j.unsynced == 0 && j.synced == j.nextSeq-1 {
		return nil
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	if j.opts.SyncObserver != nil {
		j.opts.SyncObserver(time.Since(start))
	}
	j.synced = j.nextSeq - 1
	j.unsynced = 0
	return nil
}

// Close syncs and closes the active segment and releases the directory
// lock. The journal cannot append afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if j.lock != nil {
		if cerr := j.lock.Close(); err == nil {
			err = cerr
		}
		j.lock = nil
	}
	return err
}
