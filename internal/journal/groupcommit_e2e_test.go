package journal_test

// End-to-end tests of the group-commit write pipeline: N concurrent
// writers share one fsync per batch, yet the journal records one
// serialized order whose replay — and whose re-journaled bytes — are
// indistinguishable from sequential ingestion; the bounded commit queue
// sheds load with 503 + Retry-After; duplicates within one batch get the
// same 409 a replayed duplicate would; and a SIGKILL mid-batch loses
// nothing that was acknowledged (ack ⇒ fsynced).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/server"
)

// batchIngest returns IngestOptions whose AppendBatch feeds j — the
// group-commit pipeline's canonical wiring (one fsync per batch).
func batchIngest(j *journal.Journal) *server.IngestOptions {
	return &server.IngestOptions{
		AppendBatch: func(rvs []core.ReviewData) (uint64, error) {
			batch := make([]journal.Review, len(rvs))
			for i, rv := range rvs {
				batch[i] = journal.Review{
					ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
					Day: rv.Day, Text: rv.Text,
				}
			}
			return j.AppendBatch(batch)
		},
	}
}

// postReview posts one review and decodes the ack (or the error body).
func postReview(t *testing.T, url string, req server.ReviewRequest) (int, server.ReviewResponse, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/reviews", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack server.ReviewResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatalf("decode ack: %v", err)
		}
	}
	return resp.StatusCode, ack, resp.Header
}

// journalBytes concatenates every segment file's bytes in order (the
// zero-padded names sort correctly).
func journalBytes(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	var all []byte
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, data...)
	}
	return all
}

// TestGroupCommitDeterminism is the pipeline's core contract: 16
// concurrent writers, batch boundaries falling wherever scheduling puts
// them, and yet (a) every ack is durable, (b) the journal's bytes are
// exactly what sequential appends of the recovered order would write,
// and (c) snapshot + replay fingerprints byte-identically to the live,
// concurrently mutated database over the full 948-entry query set.
func TestGroupCommitDeterminism(t *testing.T) {
	d, _, snap := e2eFixture(t)
	db := loadBase(t, snap)
	jdir := filepath.Join(t.TempDir(), "group.journal")
	j, err := journal.Open(jdir, journal.Options{SyncEvery: 1000}) // batches fsync regardless
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(db, server.Options{Ingest: batchIngest(j)}))
	defer srv.Close()

	entities := db.EntityIDs()
	texts := []string{
		"The room was very clean and the staff was friendly.",
		"Dirty bathroom and rude service, terrible stay.",
		"Comfortable bed, excellent breakfast, great location.",
		"The pool area was noisy but the view was amazing.",
	}
	const writers, perWriter = 16, 6
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				req := server.ReviewRequest{
					ID:       fmt.Sprintf("gc-%d-%d", w, i),
					EntityID: entities[(w*perWriter+i)%len(entities)],
					Reviewer: fmt.Sprintf("writer%d", w),
					Day:      4100 + i,
					Text:     texts[(w+i)%len(texts)],
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(srv.URL+"/reviews", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var ack server.ReviewResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					errs <- fmt.Errorf("write %s: status %d (%v)", req.ID, resp.StatusCode, decErr)
					return
				}
				if !ack.Owned || ack.Seq == 0 || !ack.Durable {
					errs <- fmt.Errorf("write %s: ack %+v, want owned durable nonzero seq", req.ID, ack)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// (b) Re-journal the recovered order with plain sequential appends;
	// the bytes must match what the batched commits wrote.
	var order []journal.Review
	if _, err := journal.Replay(jdir, func(seq uint64, rv journal.Review) error {
		order = append(order, rv)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != writers*perWriter {
		t.Fatalf("journal holds %d records, want %d", len(order), writers*perWriter)
	}
	seqDir := filepath.Join(t.TempDir(), "seq.journal")
	js, err := journal.Open(seqDir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rv := range order {
		if _, err := js.Append(rv); err != nil {
			t.Fatal(err)
		}
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(journalBytes(t, jdir), journalBytes(t, seqDir)) {
		t.Fatal("group-committed journal bytes differ from sequential appends of the same order")
	}

	// (c) Replay-vs-live fingerprint identity over the full query set.
	liveFP, n := harness.QueryFingerprint(d, db)
	if n != 948 {
		t.Errorf("fingerprint covers %d query-set entries, want the full 948", n)
	}
	replayed := loadBase(t, snap)
	st, err := journal.ApplyAll(replayed, jdir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != writers*perWriter {
		t.Fatalf("replay applied %d, want %d", st.Applied, writers*perWriter)
	}
	replayFP, _ := harness.QueryFingerprint(d, replayed)
	if replayFP != liveFP {
		t.Fatal("snapshot+journal replay diverges from the group-committed live database")
	}
}

// gatedIngest wraps batchIngest so the FIRST AppendBatch call signals
// entered and blocks until gate closes — a deterministic way to hold a
// leader mid-commit while the test stages writes behind it.
func gatedIngest(j *journal.Journal, entered chan<- struct{}, gate <-chan struct{}) *server.IngestOptions {
	inner := batchIngest(j)
	var once sync.Once
	return &server.IngestOptions{
		MaxQueueDepth: 1,
		AppendBatch: func(rvs []core.ReviewData) (uint64, error) {
			blocked := false
			once.Do(func() { blocked = true })
			if blocked {
				close(entered)
				<-gate
			}
			return inner.AppendBatch(rvs)
		},
	}
}

// metricValue scrapes one un-labeled series from /metrics.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestGroupCommitBackpressureAndBatchDuplicates holds a leader mid-fsync
// and drives the two queue-edge contracts behind it: a write arriving at
// the full queue is refused with 503 + Retry-After (never silently
// dropped, never unbounded), and two writes with the same ID staged into
// one batch resolve exactly like a write-then-duplicate: one 200, one
// 409.
func TestGroupCommitBackpressureAndBatchDuplicates(t *testing.T) {
	_, _, snap := e2eFixture(t)
	db := loadBase(t, snap)
	jdir := filepath.Join(t.TempDir(), "gated.journal")
	j, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	entered := make(chan struct{})
	gate := make(chan struct{})
	srv := httptest.NewServer(server.New(db, server.Options{
		Ingest: gatedIngest(j, entered, gate),
	}))
	defer srv.Close()
	entities := db.EntityIDs()
	mkReq := func(id string, day int) server.ReviewRequest {
		return server.ReviewRequest{
			ID: id, EntityID: entities[0], Reviewer: "gate", Day: day,
			Text: "The room was very clean and the staff was friendly.",
		}
	}

	// Leader: commits alone, then blocks inside AppendBatch.
	type result struct {
		status int
		ack    server.ReviewResponse
	}
	leaderDone := make(chan result)
	go func() {
		status, ack, _ := postReview(t, srv.URL, mkReq("gate-leader", 1))
		leaderDone <- result{status, ack}
	}()
	<-entered // the leader has drained the queue and is inside the fsync

	// Stage a duplicate pair behind it; the queue (depth 1) admits only
	// the first.
	stagedDone := make(chan result)
	go func() {
		status, ack, _ := postReview(t, srv.URL, mkReq("gate-dup", 2))
		stagedDone <- result{status, ack}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for metricValue(t, srv.URL, server.MetricCommitQueueDepth) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("staged write never appeared on the commit queue")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Queue full: the next write must be refused, not queued.
	status, _, hdr := postReview(t, srv.URL, mkReq("gate-overflow", 3))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("write at full queue: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After header")
	}
	if v := metricValue(t, srv.URL, server.MetricCommitBackpressureTotal); v < 1 {
		t.Fatalf("backpressure counter = %v after a refused write", v)
	}

	// Release the leader; the staged write commits in the next batch.
	close(gate)
	if r := <-leaderDone; r.status != http.StatusOK || !r.ack.Durable {
		t.Fatalf("leader: status %d ack %+v, want durable 200", r.status, r.ack)
	}
	if r := <-stagedDone; r.status != http.StatusOK || !r.ack.Durable {
		t.Fatalf("staged write: status %d ack %+v, want durable 200", r.status, r.ack)
	}

	// Batch-internal duplicate: the id already committed above answers
	// 409 whether it is validated against applied state or within its own
	// batch.
	if status, _, _ := postReview(t, srv.URL, mkReq("gate-dup", 4)); status != http.StatusConflict {
		t.Fatalf("duplicate write: status %d, want 409", status)
	}
}

// TestGroupCommitVolatileAck pins the ack semantics without a journal:
// the pipeline still serializes and applies, but Seq stays 0 and Durable
// false — a client can always distinguish a durable ack from a volatile
// one.
func TestGroupCommitVolatileAck(t *testing.T) {
	_, _, snap := e2eFixture(t)
	db := loadBase(t, snap)
	srv := httptest.NewServer(server.New(db, server.Options{
		Ingest: &server.IngestOptions{},
	}))
	defer srv.Close()
	status, ack, _ := postReview(t, srv.URL, server.ReviewRequest{
		ID: "volatile-1", EntityID: db.EntityIDs()[0], Reviewer: "v", Day: 1,
		Text: "The room was very clean.",
	})
	if status != http.StatusOK {
		t.Fatalf("volatile write: status %d", status)
	}
	if ack.Seq != 0 || ack.Durable {
		t.Fatalf("volatile ack %+v, want seq 0 and durable false", ack)
	}
}

// TestGroupCommitSIGKILLMidBatch crash-kills a real group-committing
// server (re-executing this test binary) while 8 concurrent writers
// stream reviews, then asserts the durability contract: every
// acknowledged write survives — acks imply fsync even when the fsync was
// shared with a whole batch — and the surviving journal replays cleanly
// into the base snapshot.
func TestGroupCommitSIGKILLMidBatch(t *testing.T) {
	if dir := os.Getenv("GROUPCOMMIT_CRASH_DIR"); dir != "" {
		groupCommitCrashChild(dir, os.Getenv("GROUPCOMMIT_CRASH_SNAP"))
		return
	}
	if testing.Short() {
		t.Skip("subprocess crash drill skipped in -short")
	}
	_, _, snap := e2eFixture(t)
	dir := filepath.Join(t.TempDir(), "crash.journal")
	cmd := exec.Command(os.Args[0], "-test.run", "TestGroupCommitSIGKILLMidBatch")
	cmd.Env = append(os.Environ(),
		"GROUPCOMMIT_CRASH_DIR="+dir, "GROUPCOMMIT_CRASH_SNAP="+snap)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var maxAcked uint64
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(60 * time.Second)
	for sc.Scan() {
		if s, ok := strings.CutPrefix(sc.Text(), "acked "); ok {
			if seq, err := strconv.ParseUint(s, 10, 64); err == nil && seq > maxAcked {
				maxAcked = seq
			}
		}
		if maxAcked >= 48 || time.Now().After(deadline) {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	_ = cmd.Wait()
	if maxAcked < 48 {
		t.Fatalf("worker only acknowledged %d writes", maxAcked)
	}

	// Every acknowledged sequence must survive. Acks are contiguous from
	// 1 (the journal assigns them), so recovering through maxAcked covers
	// them all; a torn unacknowledged tail beyond it is fine.
	var lastSeq uint64
	stats, err := journal.Replay(dir, func(seq uint64, rv journal.Review) error {
		lastSeq = seq
		return nil
	})
	if err != nil {
		t.Fatalf("replay after SIGKILL: %v", err)
	}
	if lastSeq < maxAcked {
		t.Fatalf("recovered through seq %d, but seq %d was acknowledged durable", lastSeq, maxAcked)
	}
	if stats.TailErr != nil {
		t.Logf("torn unacknowledged tail dropped: %d bytes (%v)", stats.DroppedBytes, stats.TailErr)
	}
	// The surviving journal replays cleanly into the base.
	db := loadBase(t, snap)
	st, err := journal.ApplyAll(db, dir)
	if err != nil {
		t.Fatalf("apply after SIGKILL: %v", err)
	}
	if uint64(st.Applied) != lastSeq {
		t.Fatalf("applied %d deltas, journal holds %d", st.Applied, lastSeq)
	}
}

// groupCommitCrashChild is the worker half of the SIGKILL drill: a
// group-committing server fed by 8 concurrent writers, printing every
// durable ack's sequence until killed.
func groupCommitCrashChild(dir, snap string) {
	db, _, _, err := journal.LoadWithJournal(snap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child load:", err)
		os.Exit(1)
	}
	j, err := journal.Open(dir, journal.Options{SyncEvery: 1000, SegmentMaxBytes: 8 << 10})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child journal:", err)
		os.Exit(1)
	}
	srv := httptest.NewServer(server.New(db, server.Options{Ingest: batchIngest(j)}))
	entities := db.EntityIDs()
	var mu sync.Mutex
	w := bufio.NewWriter(os.Stdout)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; ; i++ {
				req := server.ReviewRequest{
					ID:       fmt.Sprintf("crash-%d-%d", g, i),
					EntityID: entities[(g+i)%len(entities)],
					Reviewer: fmt.Sprintf("w%d", g),
					Day:      4000 + i,
					Text:     "The room was very clean and the staff was friendly.",
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(srv.URL+"/reviews", "application/json", bytes.NewReader(body))
				if err != nil {
					fmt.Fprintln(os.Stderr, "crash child post:", err)
					os.Exit(1)
				}
				var ack server.ReviewResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil || !ack.Durable {
					fmt.Fprintf(os.Stderr, "crash child ack: status %d durable %v (%v)\n",
						resp.StatusCode, ack.Durable, decErr)
					os.Exit(1)
				}
				mu.Lock()
				fmt.Fprintf(w, "acked %d\n", ack.Seq)
				w.Flush()
				mu.Unlock()
			}
		}(g)
	}
	select {} // killed by the parent
}
