package journal

// Incremental prefix hashes: the in-memory sibling of PrefixHashAt.
//
// The anti-entropy control plane (internal/fleet) proves "node B's
// journal is a pure prefix of node A's" by comparing SHA-256 chain
// hashes at matching sequence numbers. StatDir/PrefixHashAt compute
// those hashes by re-reading journal segments from disk — fine for a
// one-shot probe, but the router's heal-before-write path probes the
// reference node once per repair pass, so a busy fleet rescans the same
// megabytes over and over while holding the fleet-wide write lock.
//
// PrefixHashes keeps the whole chain in memory: one scan at startup
// captures the hash after every record, and each subsequent append
// extends the chain with exactly the bytes statUpTo would have hashed.
// After that, any prefix hash — full-journal or ?at=K — is an O(1)
// lookup. Memory cost is one 64-hex string per record (~100 B), so even
// a million-record journal stays under ~100 MB and a typical one is
// negligible; compaction replaces the journal wholesale and builds a
// fresh chain.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
)

// PrefixHashes is a journal's SHA-256 prefix-hash chain held in memory
// and extended append-by-append. Safe for concurrent use.
type PrefixHashes struct {
	mu    sync.Mutex
	chain hash.Hash
	// sums[i] is the hex hash over records 1..i; sums[0] is the empty
	// journal's hash. Journal sequences start at 1 and are consecutive,
	// so len(sums)-1 is the last covered sequence.
	sums []string
}

// NewPrefixHashes scans dir once and returns the chain covering every
// intact record currently on disk. A missing directory is the empty
// journal. Tail damage is not an error (the truncated records simply
// are not part of the chain, matching what Open would recover).
func NewPrefixHashes(dir string) (*PrefixHashes, error) {
	p := &PrefixHashes{chain: sha256.New()}
	p.sums = append(p.sums, hex.EncodeToString(p.chain.Sum(nil)))
	var lenBuf [4]byte
	_, err := scanPrefix(dir, 0, func(seq uint64, payload []byte) error {
		if seq != uint64(len(p.sums)) {
			return fmt.Errorf("%w: record sequence %d after %d", ErrJournalFormat, seq, len(p.sums)-1)
		}
		// Identical hashing to statUpTo: length-prefix then payload.
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
		p.chain.Write(lenBuf[:])
		p.chain.Write(payload)
		p.sums = append(p.sums, hex.EncodeToString(p.chain.Sum(nil)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Append extends the chain with the record journaled at seq. A sequence
// the chain already covers is a no-op (the startup scan may have read a
// record whose append is only now being reported); a sequence past the
// next expected one means the caller skipped a record and the chain can
// no longer vouch for the journal — that is an error, and the caller
// should fall back to on-disk scans.
func (p *PrefixHashes) Append(seq uint64, rv Review) error {
	payload, err := encodeReview(rv)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	next := uint64(len(p.sums))
	if seq < next {
		return nil // already covered
	}
	if seq > next {
		return fmt.Errorf("journal: prefix hash chain ends at %d, cannot absorb seq %d", next-1, seq)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	p.chain.Write(lenBuf[:])
	p.chain.Write(payload)
	p.sums = append(p.sums, hex.EncodeToString(p.chain.Sum(nil)))
	return nil
}

// At returns the hash covering records 1..seq and the sequence actually
// covered — min(seq, last), exactly PrefixHashAt's contract. At(0)
// covers the whole chain.
func (p *PrefixHashes) At(seq uint64) (hash string, covered uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	last := uint64(len(p.sums) - 1)
	if seq == 0 || seq > last {
		seq = last
	}
	return p.sums[seq], seq
}

// Last returns the full-chain hash and the last covered sequence.
func (p *PrefixHashes) Last() (hash string, seq uint64) {
	return p.At(0)
}
